//===- perf_constraints.cpp - Constraint evaluation ablations -----------===//
///
/// Ablation (DESIGN.md): AnyOf short-circuiting (match position matters),
/// the cost of constraint-variable binding with backtracking, and the
/// compiled constraint engine (docs/constraint-compiler.md) against the
/// tree interpreter on the same workloads. The phase breakdown emits
/// paired `<workload>-interpreted` / `<workload>-compiled` timing nodes;
/// tools/check_constraint_bench.py consumes the JSON and fails CI when
/// the compiled engine stops being faster on the large workload.

#include "PerfHarness.h"

#include "irdl/Constraint.h"
#include "irdl/ConstraintCompiler.h"

#include <benchmark/benchmark.h>

using namespace irdl;

namespace {

struct Fixture {
  IRContext Ctx;
  std::vector<ConstraintPtr> Branches;

  Fixture() {
    for (unsigned W = 1; W <= 16; ++W)
      Branches.push_back(Constraint::typeEq(Ctx.getIntegerType(W)));
  }
};

/// An AnyOf-heavy fixture where every alternative is rooted in a
/// *distinct* type definition, the shape dispatch tables are built for
/// (a dialect's "one of our N types" constraint).
struct DispatchFixture {
  IRContext Ctx;
  std::vector<TypeDefinition *> Defs;
  std::vector<ConstraintPtr> Branches;
  std::vector<Type> Values;

  explicit DispatchFixture(unsigned N = 16) {
    Dialect *D = Ctx.getOrCreateDialect("dsp");
    for (unsigned I = 0; I != N; ++I) {
      TypeDefinition *T = D->addType("t" + std::to_string(I));
      T->setParamNames({"elem"});
      Defs.push_back(T);
      Branches.push_back(Constraint::typeConstraint(
          T, {Constraint::typeEq(Ctx.getFloatType(32))},
          /*BaseOnly=*/false));
      Values.push_back(
          Ctx.getType(T, {ParamValue(Ctx.getFloatType(32))}));
    }
  }
};

void BM_AnyOf_MatchFirst(benchmark::State &State) {
  Fixture F;
  ConstraintPtr C = Constraint::anyOf(F.Branches);
  ParamValue V(F.Ctx.getIntegerType(1));
  for (auto _ : State) {
    MatchContext MC;
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_MatchFirst);

void BM_AnyOf_MatchLast(benchmark::State &State) {
  Fixture F;
  ConstraintPtr C = Constraint::anyOf(F.Branches);
  ParamValue V(F.Ctx.getIntegerType(16));
  for (auto _ : State) {
    MatchContext MC;
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_MatchLast);

void BM_AnyOf_NoMatch(benchmark::State &State) {
  Fixture F;
  ConstraintPtr C = Constraint::anyOf(F.Branches);
  ParamValue V(F.Ctx.getFloatType(32));
  for (auto _ : State) {
    MatchContext MC;
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_NoMatch);

void BM_VarBind_FirstUse(benchmark::State &State) {
  Fixture F;
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr C = Constraint::var(0, "T");
  ParamValue V(F.Ctx.getIntegerType(32));
  for (auto _ : State) {
    MatchContext MC(&Vars);
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VarBind_FirstUse);

void BM_VarBind_UnifyThreeUses(benchmark::State &State) {
  // The cmath.mul pattern: one var, three uses.
  Fixture F;
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr C = Constraint::var(0, "T");
  ParamValue V(F.Ctx.getIntegerType(32));
  for (auto _ : State) {
    MatchContext MC(&Vars);
    bool R = C->matches(V, MC) && C->matches(V, MC) && C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VarBind_UnifyThreeUses);

void BM_AnyOf_BacktrackingWithVars(benchmark::State &State) {
  // Branches that bind a var before failing exercise the trail.
  Fixture F;
  Dialect *D = F.Ctx.getOrCreateDialect("bt");
  TypeDefinition *Pair = D->addType("pair");
  Pair->setParamNames({"a", "b"});
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr T = Constraint::var(0, "T");
  std::vector<ConstraintPtr> Branches;
  for (unsigned W = 1; W <= 8; ++W)
    Branches.push_back(Constraint::typeConstraint(
        Pair, {T, Constraint::typeEq(F.Ctx.getIntegerType(W))},
        /*BaseOnly=*/false));
  ConstraintPtr C = Constraint::anyOf(Branches);
  Type V = F.Ctx.getType(Pair, {ParamValue(F.Ctx.getFloatType(32)),
                                ParamValue(F.Ctx.getIntegerType(8))});
  ParamValue PV(V);
  for (auto _ : State) {
    MatchContext MC(&Vars);
    bool R = C->matches(PV, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_BacktrackingWithVars);

//===----------------------------------------------------------------------===//
// Compiled-engine counterparts
//===----------------------------------------------------------------------===//

void BM_Compiled_AnyOf_MatchLast(benchmark::State &State) {
  Fixture F;
  ConstraintProgramPtr P =
      ConstraintCompiler::compile(Constraint::anyOf(F.Branches));
  ParamValue V(F.Ctx.getIntegerType(16));
  for (auto _ : State) {
    MatchContext MC;
    bool R = P->run(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Compiled_AnyOf_MatchLast);

void BM_Compiled_DispatchTable_MatchLast(benchmark::State &State) {
  DispatchFixture F;
  ConstraintProgramPtr P =
      ConstraintCompiler::compile(Constraint::anyOf(F.Branches));
  ParamValue V(F.Values.back());
  for (auto _ : State) {
    MatchContext MC;
    bool R = P->run(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Compiled_DispatchTable_MatchLast);

void BM_Interpreted_DispatchShape_MatchLast(benchmark::State &State) {
  DispatchFixture F;
  ConstraintPtr C = Constraint::anyOf(F.Branches);
  ParamValue V(F.Values.back());
  for (auto _ : State) {
    MatchContext MC;
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Interpreted_DispatchShape_MatchLast);

void BM_Compiled_AnyOf_BacktrackingWithVars(benchmark::State &State) {
  Fixture F;
  Dialect *D = F.Ctx.getOrCreateDialect("bt");
  TypeDefinition *Pair = D->addType("pair");
  Pair->setParamNames({"a", "b"});
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr T = Constraint::var(0, "T");
  std::vector<ConstraintPtr> Branches;
  for (unsigned W = 1; W <= 8; ++W)
    Branches.push_back(Constraint::typeConstraint(
        Pair, {T, Constraint::typeEq(F.Ctx.getIntegerType(W))},
        /*BaseOnly=*/false));
  ConstraintProgramPtr P = ConstraintCompiler::compile(
      Constraint::anyOf(Branches),
      ConstraintCompiler::compileVarPrograms(Vars));
  Type V = F.Ctx.getType(Pair, {ParamValue(F.Ctx.getFloatType(32)),
                                ParamValue(F.Ctx.getIntegerType(8))});
  ParamValue PV(V);
  for (auto _ : State) {
    MatchContext MC(&Vars);
    bool R = P->run(PV, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Compiled_AnyOf_BacktrackingWithVars);

//===----------------------------------------------------------------------===//
// Phase breakdown
//===----------------------------------------------------------------------===//

/// Phase breakdown (PerfHarness.h): each ablation scenario runs a fixed
/// number of evaluations under its own timing scope; the statistics
/// table then shows per-kind eval counts, variable bindings, AnyOf
/// rollbacks, and the compiled engine's cache/dispatch counters for the
/// whole run. The `*-interpreted` / `*-compiled` pairs run the *same*
/// workload through both engines (tools/check_constraint_bench.py keys
/// on these names).
void runPhaseBreakdown() {
  Fixture F;
  ConstraintPtr AnyOfC = Constraint::anyOf(F.Branches);
  auto RunMatches = [](const char *Phase, const ConstraintPtr &C,
                       const ParamValue &V,
                       const std::vector<ConstraintPtr> *Vars) {
    (void)Phase; // unused when IRDL_ENABLE_TIMING=0
    IRDL_TIME_SCOPE(Phase);
    for (int I = 0; I != 1000; ++I) {
      MatchContext MC(Vars);
      bool R = C->matches(V, MC);
      benchmark::DoNotOptimize(R);
    }
  };
  RunMatches("anyof-match-first-x1000", AnyOfC,
             ParamValue(F.Ctx.getIntegerType(1)), nullptr);
  RunMatches("anyof-match-last-x1000", AnyOfC,
             ParamValue(F.Ctx.getIntegerType(16)), nullptr);
  RunMatches("anyof-no-match-x1000", AnyOfC,
             ParamValue(F.Ctx.getFloatType(32)), nullptr);

  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  RunMatches("var-bind-first-use-x1000", Constraint::var(0, "T"),
             ParamValue(F.Ctx.getIntegerType(32)), &Vars);

  {
    // The backtracking scenario of BM_AnyOf_BacktrackingWithVars.
    Dialect *D = F.Ctx.getOrCreateDialect("bt");
    TypeDefinition *Pair = D->addType("pair");
    Pair->setParamNames({"a", "b"});
    ConstraintPtr T = Constraint::var(0, "T");
    std::vector<ConstraintPtr> Branches;
    for (unsigned W = 1; W <= 8; ++W)
      Branches.push_back(Constraint::typeConstraint(
          Pair, {T, Constraint::typeEq(F.Ctx.getIntegerType(W))},
          /*BaseOnly=*/false));
    ConstraintPtr C = Constraint::anyOf(Branches);
    Type V = F.Ctx.getType(Pair, {ParamValue(F.Ctx.getFloatType(32)),
                                  ParamValue(F.Ctx.getIntegerType(8))});
    RunMatches("anyof-backtracking-vars-x1000", C, ParamValue(V), &Vars);
  }

  // Compiled-vs-interpreted pairs. Each pair evaluates the same values
  // against the same constraint; only the engine differs.
  auto RunPair = [](const char *Workload, const ConstraintPtr &C,
                    const std::vector<ConstraintProgramPtr> &VarProgs,
                    const std::vector<ParamValue> &Values,
                    const std::vector<ConstraintPtr> *Vars, int Iters) {
    ConstraintProgramPtr P = ConstraintCompiler::compile(C, VarProgs);
    std::string Interp = std::string(Workload) + "-interpreted";
    std::string Compiled = std::string(Workload) + "-compiled";
    // Per-iteration samples alongside the aggregate timing scopes, so
    // the --json summary carries p50/p90/p99 for each engine
    // (check_constraint_bench.py prefers the p50s when both are there).
    PhaseSampler InterpSampler(Interp);
    PhaseSampler CompiledSampler(Compiled);
    {
      IRDL_TIME_SCOPE(Interp.c_str());
      for (int I = 0; I != Iters; ++I)
        InterpSampler.sample([&] {
          for (const ParamValue &V : Values) {
            MatchContext MC(Vars);
            bool R = C->matches(V, MC);
            benchmark::DoNotOptimize(R);
          }
        });
    }
    {
      IRDL_TIME_SCOPE(Compiled.c_str());
      for (int I = 0; I != Iters; ++I)
        CompiledSampler.sample([&] {
          for (const ParamValue &V : Values) {
            MatchContext MC(Vars);
            bool R = P->run(V, MC);
            benchmark::DoNotOptimize(R);
          }
        });
    }
  };

  {
    // AnyOf-heavy: 16 parametric alternatives over distinct definitions;
    // the values rotate over every alternative plus a miss.
    DispatchFixture DF;
    std::vector<ParamValue> Values;
    for (Type T : DF.Values)
      Values.emplace_back(T);
    Values.emplace_back(DF.Ctx.getFloatType(32));
    RunPair("anyof-heavy", Constraint::anyOf(DF.Branches), {}, Values,
            nullptr, 1000);
  }

  {
    // Variable-heavy: every branch binds !T then mostly fails, with a
    // var-free inner AnyOf the compiled engine can memoize.
    Dialect *D = F.Ctx.getOrCreateDialect("vh");
    TypeDefinition *Pair = D->addType("pair");
    Pair->setParamNames({"a", "b"});
    ConstraintPtr T = Constraint::var(0, "T");
    ConstraintPtr Widths = Constraint::anyOf(F.Branches); // 16 int widths
    std::vector<ConstraintPtr> Branches;
    for (unsigned W = 1; W <= 8; ++W)
      Branches.push_back(Constraint::typeConstraint(
          Pair,
          {T, Constraint::conjunction(
                  {Constraint::typeEq(F.Ctx.getIntegerType(W)), Widths})},
          /*BaseOnly=*/false));
    ConstraintPtr C = Constraint::anyOf(Branches);
    std::vector<ParamValue> Values;
    for (unsigned W = 1; W <= 8; ++W)
      Values.emplace_back(
          F.Ctx.getType(Pair, {ParamValue(F.Ctx.getFloatType(32)),
                               ParamValue(F.Ctx.getIntegerType(W))}));
    std::vector<ConstraintProgramPtr> VarProgs =
        ConstraintCompiler::compileVarPrograms(Vars);
    RunPair("variable-heavy", C, VarProgs, Values, &Vars, 1000);
  }

  {
    // Large: a 64-way dispatchable AnyOf over parametric types, every
    // value hit repeatedly — the aggregate workload the CI regression
    // guard compares across engines.
    DispatchFixture DF(64);
    std::vector<ParamValue> Values;
    for (Type T : DF.Values)
      Values.emplace_back(T);
    RunPair("large", Constraint::anyOf(DF.Branches), {}, Values, nullptr,
            500);
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_constraints", runPhaseBreakdown);
}
