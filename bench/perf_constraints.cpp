//===- perf_constraints.cpp - Constraint evaluation ablations -----------===//
///
/// Ablation (DESIGN.md): AnyOf short-circuiting (match position matters)
/// and the cost of constraint-variable binding with backtracking.

#include "PerfHarness.h"

#include "irdl/Constraint.h"

#include <benchmark/benchmark.h>

using namespace irdl;

namespace {

struct Fixture {
  IRContext Ctx;
  std::vector<ConstraintPtr> Branches;

  Fixture() {
    for (unsigned W = 1; W <= 16; ++W)
      Branches.push_back(Constraint::typeEq(Ctx.getIntegerType(W)));
  }
};

void BM_AnyOf_MatchFirst(benchmark::State &State) {
  Fixture F;
  ConstraintPtr C = Constraint::anyOf(F.Branches);
  ParamValue V(F.Ctx.getIntegerType(1));
  for (auto _ : State) {
    MatchContext MC;
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_MatchFirst);

void BM_AnyOf_MatchLast(benchmark::State &State) {
  Fixture F;
  ConstraintPtr C = Constraint::anyOf(F.Branches);
  ParamValue V(F.Ctx.getIntegerType(16));
  for (auto _ : State) {
    MatchContext MC;
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_MatchLast);

void BM_AnyOf_NoMatch(benchmark::State &State) {
  Fixture F;
  ConstraintPtr C = Constraint::anyOf(F.Branches);
  ParamValue V(F.Ctx.getFloatType(32));
  for (auto _ : State) {
    MatchContext MC;
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_NoMatch);

void BM_VarBind_FirstUse(benchmark::State &State) {
  Fixture F;
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr C = Constraint::var(0, "T");
  ParamValue V(F.Ctx.getIntegerType(32));
  for (auto _ : State) {
    MatchContext MC(&Vars);
    bool R = C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VarBind_FirstUse);

void BM_VarBind_UnifyThreeUses(benchmark::State &State) {
  // The cmath.mul pattern: one var, three uses.
  Fixture F;
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr C = Constraint::var(0, "T");
  ParamValue V(F.Ctx.getIntegerType(32));
  for (auto _ : State) {
    MatchContext MC(&Vars);
    bool R = C->matches(V, MC) && C->matches(V, MC) && C->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VarBind_UnifyThreeUses);

void BM_AnyOf_BacktrackingWithVars(benchmark::State &State) {
  // Branches that bind a var before failing exercise snapshot/rollback.
  Fixture F;
  Dialect *D = F.Ctx.getOrCreateDialect("bt");
  TypeDefinition *Pair = D->addType("pair");
  Pair->setParamNames({"a", "b"});
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr T = Constraint::var(0, "T");
  std::vector<ConstraintPtr> Branches;
  for (unsigned W = 1; W <= 8; ++W)
    Branches.push_back(Constraint::typeConstraint(
        Pair, {T, Constraint::typeEq(F.Ctx.getIntegerType(W))},
        /*BaseOnly=*/false));
  ConstraintPtr C = Constraint::anyOf(Branches);
  Type V = F.Ctx.getType(Pair, {ParamValue(F.Ctx.getFloatType(32)),
                                ParamValue(F.Ctx.getIntegerType(8))});
  ParamValue PV(V);
  for (auto _ : State) {
    MatchContext MC(&Vars);
    bool R = C->matches(PV, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AnyOf_BacktrackingWithVars);

/// Phase breakdown (PerfHarness.h): each ablation scenario runs a fixed
/// number of evaluations under its own timing scope; the statistics
/// table then shows per-kind eval counts, variable bindings, and AnyOf
/// rollbacks for the whole run.
void runPhaseBreakdown() {
  Fixture F;
  ConstraintPtr AnyOfC = Constraint::anyOf(F.Branches);
  auto RunMatches = [](const char *Phase, const ConstraintPtr &C,
                       const ParamValue &V,
                       const std::vector<ConstraintPtr> *Vars) {
    (void)Phase; // unused when IRDL_ENABLE_TIMING=0
    IRDL_TIME_SCOPE(Phase);
    for (int I = 0; I != 1000; ++I) {
      MatchContext MC(Vars);
      bool R = C->matches(V, MC);
      benchmark::DoNotOptimize(R);
    }
  };
  RunMatches("anyof-match-first-x1000", AnyOfC,
             ParamValue(F.Ctx.getIntegerType(1)), nullptr);
  RunMatches("anyof-match-last-x1000", AnyOfC,
             ParamValue(F.Ctx.getIntegerType(16)), nullptr);
  RunMatches("anyof-no-match-x1000", AnyOfC,
             ParamValue(F.Ctx.getFloatType(32)), nullptr);

  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  RunMatches("var-bind-first-use-x1000", Constraint::var(0, "T"),
             ParamValue(F.Ctx.getIntegerType(32)), &Vars);

  {
    // The backtracking scenario of BM_AnyOf_BacktrackingWithVars.
    Dialect *D = F.Ctx.getOrCreateDialect("bt");
    TypeDefinition *Pair = D->addType("pair");
    Pair->setParamNames({"a", "b"});
    ConstraintPtr T = Constraint::var(0, "T");
    std::vector<ConstraintPtr> Branches;
    for (unsigned W = 1; W <= 8; ++W)
      Branches.push_back(Constraint::typeConstraint(
          Pair, {T, Constraint::typeEq(F.Ctx.getIntegerType(W))},
          /*BaseOnly=*/false));
    ConstraintPtr C = Constraint::anyOf(Branches);
    Type V = F.Ctx.getType(Pair, {ParamValue(F.Ctx.getFloatType(32)),
                                  ParamValue(F.Ctx.getIntegerType(8))});
    RunMatches("anyof-backtracking-vars-x1000", C, ParamValue(V), &Vars);
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_constraints", runPhaseBreakdown);
}
