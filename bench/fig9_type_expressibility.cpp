//===- fig9_type_expressibility.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure9(std::cout, Fixture);
  return 0;
}
