//===- fig12_cpp_constraint_kinds.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure12(std::cout, Fixture);
  return 0;
}
