//===- perf_threading.cpp - Threading infrastructure benchmarks ---------===//
///
/// Measures the multithreading layer itself: parallelFor dispatch
/// overhead, concurrent type uniquing through the sharded pools, and the
/// end-to-end speedup of parallel verification and function-pass
/// execution over the sequential paths. Run with --mt=1 and
/// --mt=$(nproc) to compare; the phase breakdown runs both in one
/// process.

#include "PerfHarness.h"

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Pass.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"
#include "support/Threading.h"

#include <benchmark/benchmark.h>

#include <atomic>

using namespace irdl;

namespace {

std::string makeModuleText(unsigned NumFuncs, unsigned ChainLen) {
  std::string Text;
  Text.reserve(NumFuncs * (ChainLen + 3) * 48);
  for (unsigned F = 0; F != NumFuncs; ++F) {
    Text += "std.func @f" + std::to_string(F) +
            "(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)"
            " -> !cmath.complex<f32> {\n";
    std::string Prev = "%p";
    for (unsigned I = 0; I != ChainLen; ++I) {
      std::string Cur = "%v" + std::to_string(I);
      Text += "  " + Cur + " = cmath.mul " + Prev + ", %q : f32\n";
      Prev = Cur;
    }
    Text += "  std.return " + Prev + " : !cmath.complex<f32>\n}\n";
  }
  return Text;
}

struct Fixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  std::unique_ptr<IRDLModule> Module;
  OwningOpRef IR;

  Fixture(unsigned NumFuncs = 64, unsigned ChainLen = 64) {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/cmath.irdl",
                          SrcMgr, Diags);
    IR = parseSourceString(Ctx, makeModuleText(NumFuncs, ChainLen),
                           SrcMgr, Diags);
  }
};

void BM_ParallelForDispatch(benchmark::State &State) {
  const size_t N = State.range(0);
  std::vector<unsigned> Out(N);
  for (auto _ : State) {
    parallelFor(0, N, [&](size_t I) { Out[I] = (unsigned)(I * 2654435761u); });
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(16)->Arg(1024)->Arg(65536);

void BM_ConcurrentUniquing(benchmark::State &State) {
  IRContext Ctx;
  // Distinct widths land in distinct shards; repeats exercise the
  // shared-lock hit path under contention.
  for (auto _ : State) {
    parallelFor(0, 256, [&](size_t I) {
      Type T = Ctx.getIntegerType(1 + (unsigned)(I % 64));
      benchmark::DoNotOptimize(T);
    });
  }
}
BENCHMARK(BM_ConcurrentUniquing);

void BM_VerifyModule(benchmark::State &State) {
  Fixture F;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    LogicalResult R = F.IR->verify(Diags);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VerifyModule)->Unit(benchmark::kMillisecond);

void BM_FunctionPassPipeline(benchmark::State &State) {
  Fixture F;
  for (auto _ : State) {
    // A read-mostly function pass: count the ops of each function.
    LambdaFunctionPass Pass("count-ops", [](Operation *Func,
                                            DiagnosticEngine &) {
      std::atomic<unsigned> Count{0};
      Func->walk([&](Operation *) { ++Count; });
      benchmark::DoNotOptimize(Count.load());
      return success();
    });
    DiagnosticEngine Diags;
    LogicalResult R = Pass.run(F.IR.get(), Diags);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_FunctionPassPipeline)->Unit(benchmark::kMillisecond);

/// Phase breakdown: runs the headline workloads under --mt=1 and the
/// configured thread count back to back, so one JSON summary carries the
/// sequential/parallel comparison.
void runPhaseBreakdown() {
  unsigned Configured = getGlobalThreadCount();
  std::unique_ptr<Fixture> F;
  {
    IRDL_TIME_SCOPE("fixture-setup");
    F = std::make_unique<Fixture>();
  }
  {
    IRDL_TIME_SCOPE("parallel-for-overhead-x100");
    std::vector<unsigned> Out(4096);
    for (int I = 0; I != 100; ++I)
      parallelFor(0, Out.size(),
                  [&](size_t J) { Out[J] = (unsigned)(J * 2654435761u); });
    benchmark::DoNotOptimize(Out.data());
  }
  {
    IRDL_TIME_SCOPE("uniquing-mt-x100");
    for (int I = 0; I != 100; ++I)
      parallelFor(0, 256, [&](size_t J) {
        Type T = F->Ctx.getIntegerType(1 + (unsigned)(J % 64));
        benchmark::DoNotOptimize(T);
      });
  }
  {
    IRDL_TIME_SCOPE("verify-mt1-x10");
    setGlobalThreadCount(1);
    for (int I = 0; I != 10; ++I) {
      DiagnosticEngine Diags;
      LogicalResult R = F->IR->verify(Diags);
      benchmark::DoNotOptimize(R);
    }
  }
  {
    IRDL_TIME_SCOPE("verify-mtN-x10");
    setGlobalThreadCount(Configured);
    for (int I = 0; I != 10; ++I) {
      DiagnosticEngine Diags;
      LogicalResult R = F->IR->verify(Diags);
      benchmark::DoNotOptimize(R);
    }
  }
  {
    IRDL_TIME_SCOPE("pass-pipeline-mt-x10");
    LambdaFunctionPass Pass("count-ops", [](Operation *Func,
                                            DiagnosticEngine &) {
      unsigned Count = 0;
      Func->walk([&](Operation *) { ++Count; });
      benchmark::DoNotOptimize(Count);
      return success();
    });
    for (int I = 0; I != 10; ++I) {
      DiagnosticEngine Diags;
      LogicalResult R = Pass.run(F->IR.get(), Diags);
      benchmark::DoNotOptimize(R);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_threading", runPhaseBreakdown);
}
