//===- perf_verifier.cpp - Generated-verifier microbenchmarks -----------===//
///
/// Measures the IRDL-generated verifiers: per-op verification (constraint
/// variable unification included), constraint matching, and the IRDL-C++
/// expression interpreter.

#include "PerfHarness.h"

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "irdl/ConstraintCompiler.h"
#include "irdl/IRDL.h"

#include <benchmark/benchmark.h>

using namespace irdl;

namespace {

struct Fixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  std::unique_ptr<IRDLModule> Module;
  OwningOpRef IR;
  Operation *Mul = nullptr;

  Fixture() {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/cmath.irdl",
                          SrcMgr, Diags);
    IR = parseSourceString(Ctx, R"(
      std.func @f(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)
          -> !cmath.complex<f32> {
        %r = cmath.mul %p, %q : f32
        std.return %r : !cmath.complex<f32>
      }
    )",
                           SrcMgr, Diags);
    IR->walk([&](Operation *Op) {
      if (Op->getName().str() == "cmath.mul")
        Mul = Op;
    });
  }
};

/// Builds the textual form of a module with \p NumFuncs functions, each a
/// chain of \p ChainLen cmath.mul ops. The workload for the multithreaded
/// verifier: many isolated single-block functions of equal weight.
std::string makeLargeModuleText(unsigned NumFuncs, unsigned ChainLen) {
  std::string Text;
  Text.reserve(NumFuncs * (ChainLen + 3) * 48);
  for (unsigned F = 0; F != NumFuncs; ++F) {
    Text += "std.func @f" + std::to_string(F) +
            "(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)"
            " -> !cmath.complex<f32> {\n";
    std::string Prev = "%p";
    for (unsigned I = 0; I != ChainLen; ++I) {
      std::string Cur = "%v" + std::to_string(I);
      Text += "  " + Cur + " = cmath.mul " + Prev + ", %q : f32\n";
      Prev = Cur;
    }
    Text += "  std.return " + Prev + " : !cmath.complex<f32>\n}\n";
  }
  return Text;
}

/// A module large enough that verification dominates thread-pool
/// overhead: 64 functions x 64 ops.
struct LargeModuleFixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  std::unique_ptr<IRDLModule> Module;
  OwningOpRef IR;

  LargeModuleFixture(unsigned NumFuncs = 64, unsigned ChainLen = 64) {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/cmath.irdl",
                          SrcMgr, Diags);
    IR = parseSourceString(Ctx, makeLargeModuleText(NumFuncs, ChainLen),
                           SrcMgr, Diags);
  }
};

void BM_VerifyOp_CmathMul(benchmark::State &State) {
  Fixture F;
  const auto &Verifier = F.Mul->getDef()->getVerifier();
  for (auto _ : State) {
    DiagnosticEngine Diags;
    LogicalResult R = Verifier(F.Mul, Diags);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VerifyOp_CmathMul);

void BM_VerifyModule_Recursive(benchmark::State &State) {
  Fixture F;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    LogicalResult R = F.IR->verify(Diags);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VerifyModule_Recursive);

/// The headline --mt workload: run with --mt=1 and --mt=$(nproc) to
/// compare sequential and parallel verification of the same module.
void BM_VerifyLargeModule(benchmark::State &State) {
  LargeModuleFixture F;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    LogicalResult R = F.IR->verify(Diags);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VerifyLargeModule)->Unit(benchmark::kMillisecond);

/// The same large-module workload through the tree interpreter (the
/// compiled engine is the default; this is the ablation baseline).
void BM_VerifyLargeModule_Interpreted(benchmark::State &State) {
  LargeModuleFixture F;
  bool Prev = compiledConstraintsEnabled();
  setCompiledConstraintsEnabled(false);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    LogicalResult R = F.IR->verify(Diags);
    benchmark::DoNotOptimize(R);
  }
  setCompiledConstraintsEnabled(Prev);
}
BENCHMARK(BM_VerifyLargeModule_Interpreted)->Unit(benchmark::kMillisecond);

void BM_ConstraintMatch_Parametric(benchmark::State &State) {
  Fixture F;
  const DialectSpec *Cmath = F.Module->lookupDialect("cmath");
  const OpSpec *Norm = Cmath->lookupOp("norm");
  ParamValue V(F.Mul->getOperand(0).getType());
  for (auto _ : State) {
    MatchContext MC(&Norm->VarConstraints);
    bool R = Norm->Operands[0].Constr->matches(V, MC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ConstraintMatch_Parametric);

void BM_CppExprEval(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto Expr = CppExpr::parse(
      "$_self * 2 + 1 <= 65 && $_self % 2 == 0", Diags);
  CppExpr::EvalContext Ctx;
  Ctx.Self = cppEvalFromParam(ParamValue(IntVal{32, {}, 16}));
  for (auto _ : State) {
    auto R = Expr->evaluateBool(Ctx);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CppExprEval);

void BM_TypeVerifier_Checked(benchmark::State &State) {
  Fixture F;
  TypeDefinition *Complex = F.Ctx.resolveTypeDef("cmath.complex");
  // Alternate between two element types so the uniquer cache does not
  // absorb the verifier cost entirely... it does for repeats; measure the
  // cached path explicitly (first-creation cost shows in frontend bench).
  Type F32 = F.Ctx.getFloatType(32);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    Type T = F.Ctx.getTypeChecked(Complex, {ParamValue(F32)}, Diags);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_TypeVerifier_Checked);

/// Phase breakdown (PerfHarness.h): runs each measured path a fixed
/// number of times under named timing scopes. The library's own scopes
/// (irdl-frontend, ir-parse, verify) nest inside.
void runPhaseBreakdown() {
  std::unique_ptr<Fixture> F;
  {
    IRDL_TIME_SCOPE("fixture-setup");
    F = std::make_unique<Fixture>();
  }
  {
    IRDL_TIME_SCOPE("op-verifier-x1000");
    const auto &Verifier = F->Mul->getDef()->getVerifier();
    for (int I = 0; I != 1000; ++I) {
      DiagnosticEngine Diags;
      LogicalResult R = Verifier(F->Mul, Diags);
      benchmark::DoNotOptimize(R);
    }
  }
  {
    IRDL_TIME_SCOPE("module-verify-x1000");
    for (int I = 0; I != 1000; ++I) {
      DiagnosticEngine Diags;
      LogicalResult R = F->IR->verify(Diags);
      benchmark::DoNotOptimize(R);
    }
  }
  {
    std::unique_ptr<LargeModuleFixture> LF;
    {
      IRDL_TIME_SCOPE("large-module-setup");
      LF = std::make_unique<LargeModuleFixture>();
    }
    {
      IRDL_TIME_SCOPE("large-module-verify-x10");
      for (int I = 0; I != 10; ++I) {
        DiagnosticEngine Diags;
        LogicalResult R = LF->IR->verify(Diags);
        benchmark::DoNotOptimize(R);
      }
    }
    // The same module through both constraint engines, for the
    // compiled-vs-interpreted JSON fields (the default engine above is
    // whatever --compiled-constraints selected).
    bool Prev = compiledConstraintsEnabled();
    {
      setCompiledConstraintsEnabled(false);
      IRDL_TIME_SCOPE("large-module-verify-interpreted-x30");
      PhaseSampler Sampler("large-module-verify-interpreted-x30");
      for (int I = 0; I != 30; ++I)
        Sampler.sample([&] {
          DiagnosticEngine Diags;
          LogicalResult R = LF->IR->verify(Diags);
          benchmark::DoNotOptimize(R);
        });
    }
    {
      setCompiledConstraintsEnabled(true);
      IRDL_TIME_SCOPE("large-module-verify-compiled-x30");
      PhaseSampler Sampler("large-module-verify-compiled-x30");
      for (int I = 0; I != 30; ++I)
        Sampler.sample([&] {
          DiagnosticEngine Diags;
          LogicalResult R = LF->IR->verify(Diags);
          benchmark::DoNotOptimize(R);
        });
    }
    setCompiledConstraintsEnabled(Prev);
  }
  {
    IRDL_TIME_SCOPE("constraint-match-x1000");
    const DialectSpec *Cmath = F->Module->lookupDialect("cmath");
    const OpSpec *Norm = Cmath->lookupOp("norm");
    ParamValue V(F->Mul->getOperand(0).getType());
    for (int I = 0; I != 1000; ++I) {
      MatchContext MC(&Norm->VarConstraints);
      bool R = Norm->Operands[0].Constr->matches(V, MC);
      benchmark::DoNotOptimize(R);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_verifier", runPhaseBreakdown);
}
