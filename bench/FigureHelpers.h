//===- FigureHelpers.h - Shared harness code for figure benches ---*- C++ -*-===//
///
/// \file
/// Loads the synthetic corpus once and renders each table/figure of the
/// paper's evaluation section, printing paper-reported vs measured values
/// side by side. Shared by the per-figure binaries and fig_all.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_BENCH_FIGUREHELPERS_H
#define IRDL_BENCH_FIGUREHELPERS_H

#include "analysis/DialectStatistics.h"
#include "analysis/Render.h"
#include "corpus/Corpus.h"

#include <cstdlib>
#include <iostream>

namespace irdl::bench {

struct CorpusFixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  CorpusLoadResult Corpus;
  CorpusStatistics Stats;

  CorpusFixture() {
    Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
    if (!Corpus) {
      std::cerr << "failed to load the synthetic corpus:\n"
                << Diags.renderAll();
      std::exit(1);
    }
    Stats = CorpusStatistics::compute(Corpus.AnalysisDialects);
  }
};

inline void printPaperVsMeasured(std::ostream &OS, const std::string &What,
                                 double Paper, double Measured,
                                 bool AsPercent = true) {
  OS << "  " << What << ": paper "
     << (AsPercent ? formatPercent(Paper) : std::to_string(Paper))
     << ", measured "
     << (AsPercent ? formatPercent(Measured, 1) : std::to_string(Measured))
     << "\n";
}

//===----------------------------------------------------------------------===//
// Table 1
//===----------------------------------------------------------------------===//

inline void printTable1(std::ostream &OS, const CorpusFixture &F) {
  OS << "== Table 1: the 28 MLIR dialects ==\n";
  TextTable T({"dialect", "ops", "types", "attrs", "description"});
  for (const DialectProfile &P : getDialectProfiles()) {
    const DialectStatistics *D = F.Stats.lookup(P.Name);
    T.addRow({P.Name, std::to_string(D ? D->numOps() : 0),
              std::to_string(D ? D->numTypes() : 0),
              std::to_string(D ? D->numAttrs() : 0), P.Description});
  }
  T.addRow({"total", std::to_string(F.Stats.totalOps()),
            std::to_string(F.Stats.totalTypes()),
            std::to_string(F.Stats.totalAttrs()), ""});
  T.print(OS);
  PaperAggregates Paper;
  OS << "  paper: " << Paper.NumDialects << " dialects, " << Paper.NumOps
     << " operations, " << Paper.NumTypes << " types, " << Paper.NumAttrs
     << " attributes\n\n";
}

//===----------------------------------------------------------------------===//
// Figure 3
//===----------------------------------------------------------------------===//

inline void printFigure3(std::ostream &OS, const CorpusFixture &F) {
  OS << "== Figure 3: operations defined in MLIR over 20 months ==\n";
  const auto &Timeline = getGrowthTimeline();
  unsigned Max = Timeline.back().NumOps;
  for (const GrowthPoint &P : Timeline)
    OS << "  " << P.Month << " " << countBar(P.NumOps, Max, 50) << " "
       << P.NumOps << "\n";
  double Growth = static_cast<double>(Timeline.back().NumOps) /
                  Timeline.front().NumOps;
  OS << "  growth: paper 2.1x, measured " << formatPercent(Growth / 2.1, 1)
     << " of 2.1x (" << Timeline.front().NumOps << " -> "
     << Timeline.back().NumOps << ")\n";
  OS << "  today's corpus (measured): " << F.Stats.totalOps()
     << " operations\n\n";
}

//===----------------------------------------------------------------------===//
// Figure 4
//===----------------------------------------------------------------------===//

inline void printFigure4(std::ostream &OS, const CorpusFixture &F) {
  OS << "== Figure 4: operations per dialect (log scale) ==\n";
  unsigned Max = 0;
  for (const DialectStatistics &D : F.Stats.getDialects())
    Max = std::max(Max, D.numOps());
  for (const DialectStatistics &D : F.Stats.getDialects())
    OS << "  " << D.Name
       << std::string(D.Name.size() < 14 ? 14 - D.Name.size() : 1, ' ')
       << countBar(D.numOps(), Max, 40, /*LogScale=*/true) << " "
       << D.numOps() << "\n";
  OS << "  paper: 3 ops in the smallest dialects (arm_neon, builtin), "
        ">100 in llvm and spv\n\n";
}

//===----------------------------------------------------------------------===//
// Figures 5-7: stacked per-dialect distributions
//===----------------------------------------------------------------------===//

template <typename DistFn>
inline void printStackedDistribution(
    std::ostream &OS, const CorpusFixture &F, const std::string &Title,
    const std::vector<std::string> &Buckets, DistFn Fn) {
  std::vector<std::pair<std::string, std::vector<double>>> Rows;
  for (const DialectStatistics &D : F.Stats.getDialects()) {
    Distribution Dist = Fn(D.Name);
    std::vector<double> Fracs;
    for (size_t B = 0; B < Buckets.size(); ++B)
      Fracs.push_back(Dist.fraction(B));
    Rows.emplace_back(D.Name, std::move(Fracs));
  }
  // Paper panels sort dialects by the share of the last bucket.
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    return A.second.back() > B.second.back();
  });
  Distribution Overall = Fn("");
  std::vector<double> OverallFracs;
  for (size_t B = 0; B < Buckets.size(); ++B)
    OverallFracs.push_back(Overall.fraction(B));
  printStackedFigure(OS, Title, Buckets, Rows, OverallFracs);
}

inline void printFigure5(std::ostream &OS, const CorpusFixture &F) {
  PaperAggregates Paper;
  printStackedDistribution(
      OS, F, "== Figure 5a: operand definitions per op ==",
      {"0", "1", "2", "3+"}, [&](std::string_view D) {
        return D.empty() ? F.Stats.operandCountDist()
                         : F.Stats.operandCountDist(D);
      });
  Distribution O = F.Stats.operandCountDist();
  printPaperVsMeasured(OS, "ops with 0 operands", Paper.Operands0,
                       O.fraction(0));
  printPaperVsMeasured(OS, "ops with 1 operand", Paper.Operands1,
                       O.fraction(1));
  printPaperVsMeasured(OS, "ops with 2 operands", Paper.Operands2,
                       O.fraction(2));
  printPaperVsMeasured(OS, "ops with 3+ operands", Paper.Operands3Plus,
                       O.fraction(3));
  OS << "\n";

  printStackedDistribution(
      OS, F, "== Figure 5b: variadic operand definitions per op ==",
      {"0", "1", "2+"}, [&](std::string_view D) {
        return D.empty() ? F.Stats.variadicOperandDist()
                         : F.Stats.variadicOperandDist(D);
      });
  Distribution V = F.Stats.variadicOperandDist();
  printPaperVsMeasured(OS, "ops with a variadic operand",
                       Paper.OpsWithVariadicOperand, 1.0 - V.fraction(0));
  printPaperVsMeasured(
      OS, "dialects with a variadic-operand op",
      Paper.DialectsWithVariadicOperand,
      F.Stats.dialectFractionWithOp([](const OpRecord &R) {
        return R.NumVariadicOperandDefs > 0;
      }));
  OS << "\n";
}

inline void printFigure6(std::ostream &OS, const CorpusFixture &F) {
  PaperAggregates Paper;
  printStackedDistribution(
      OS, F, "== Figure 6a: result definitions per op ==",
      {"0", "1", "2"}, [&](std::string_view D) {
        return D.empty() ? F.Stats.resultCountDist()
                         : F.Stats.resultCountDist(D);
      });
  Distribution R = F.Stats.resultCountDist();
  printPaperVsMeasured(OS, "ops with 0 results", Paper.Results0,
                       R.fraction(0));
  printPaperVsMeasured(OS, "ops with 1 result", Paper.Results1,
                       R.fraction(1));
  OS << "\n";

  printStackedDistribution(
      OS, F, "== Figure 6b: variadic result definitions per op ==",
      {"0", "1"}, [&](std::string_view D) {
        return D.empty() ? F.Stats.variadicResultDist()
                         : F.Stats.variadicResultDist(D);
      });
  Distribution V = F.Stats.variadicResultDist();
  printPaperVsMeasured(OS, "ops with a variadic result",
                       Paper.OpsWithVariadicResult, 1.0 - V.fraction(0));
  OS << "\n";
}

inline void printFigure7(std::ostream &OS, const CorpusFixture &F) {
  PaperAggregates Paper;
  printStackedDistribution(
      OS, F, "== Figure 7a: attribute definitions per op ==",
      {"0", "1", "2+"}, [&](std::string_view D) {
        return D.empty() ? F.Stats.attrCountDist()
                         : F.Stats.attrCountDist(D);
      });
  Distribution A = F.Stats.attrCountDist();
  printPaperVsMeasured(OS, "ops without attributes", Paper.OpsWithNoAttr,
                       A.fraction(0));
  OS << "\n";

  printStackedDistribution(
      OS, F, "== Figure 7b: region definitions per op ==",
      {"0", "1", "2"}, [&](std::string_view D) {
        return D.empty() ? F.Stats.regionCountDist()
                         : F.Stats.regionCountDist(D);
      });
  Distribution R = F.Stats.regionCountDist();
  printPaperVsMeasured(OS, "ops with a region", Paper.OpsWithRegion,
                       1.0 - R.fraction(0));
  printPaperVsMeasured(
      OS, "dialects with a region op", Paper.DialectsWithRegionOp,
      F.Stats.dialectFractionWithOp(
          [](const OpRecord &Rec) { return Rec.NumRegionDefs > 0; }));
  OS << "\n";
}

//===----------------------------------------------------------------------===//
// Figure 8
//===----------------------------------------------------------------------===//

inline void printFigure8(std::ostream &OS, const CorpusFixture &F) {
  OS << "== Figure 8: type and attribute parameter kinds ==\n";
  auto PrintPanel = [&OS](const std::string &Title,
                          const std::map<ParamKind, unsigned> &Kinds) {
    OS << Title << "\n";
    unsigned Max = 0;
    for (const auto &[K, N] : Kinds)
      Max = std::max(Max, N);
    for (const auto &[K, N] : Kinds) {
      std::string Name(paramKindName(K));
      OS << "  " << Name
         << std::string(Name.size() < 16 ? 16 - Name.size() : 1, ' ')
         << countBar(N, Max, 30) << " " << N << "\n";
    }
  };
  PrintPanel("(a) type parameters", F.Stats.typeParamKinds());
  PrintPanel("(b) attribute parameters", F.Stats.attrParamKinds());
  OS << "  paper: only a few parameters (3%) are domain-specific\n\n";
}

//===----------------------------------------------------------------------===//
// Figures 9-11
//===----------------------------------------------------------------------===//

inline void printExpressibility(std::ostream &OS, const std::string &Title,
                                CorpusStatistics::Expressibility Defs,
                                CorpusStatistics::Expressibility Verifiers,
                                double PaperDefsIRDL,
                                double PaperVerifierCpp) {
  OS << Title << "\n";
  OS << "  definitions:  " << Defs.PureIRDL << " IRDL / " << Defs.NeedsCpp
     << " IRDL-C++\n";
  printPaperVsMeasured(OS, "definable in pure IRDL", PaperDefsIRDL,
                       1.0 - Defs.cppFraction());
  OS << "  verifiers:    " << Verifiers.PureIRDL << " IRDL / "
     << Verifiers.NeedsCpp << " IRDL-C++\n";
  printPaperVsMeasured(OS, "needing a C++ verifier", PaperVerifierCpp,
                       Verifiers.cppFraction());
  OS << "\n";
}

inline void printFigure9(std::ostream &OS, const CorpusFixture &F) {
  PaperAggregates Paper;
  printExpressibility(OS, "== Figure 9: type expressibility ==",
                      F.Stats.typeParamExpressibility(),
                      F.Stats.typeVerifierExpressibility(),
                      Paper.TypesParamsInIRDL, Paper.TypesWithCppVerifier);
}

inline void printFigure10(std::ostream &OS, const CorpusFixture &F) {
  PaperAggregates Paper;
  printExpressibility(OS, "== Figure 10: attribute expressibility ==",
                      F.Stats.attrParamExpressibility(),
                      F.Stats.attrVerifierExpressibility(),
                      Paper.AttrsParamsInIRDL, Paper.AttrsWithCppVerifier);
}

inline void printFigure11(std::ostream &OS, const CorpusFixture &F) {
  PaperAggregates Paper;
  OS << "== Figure 11: operation expressibility ==\n";
  // Per-dialect panels (fraction needing IRDL-C++, descending).
  auto PrintPanel = [&](const std::string &Title, bool Local) {
    OS << Title << "\n";
    std::vector<std::pair<std::string, double>> Rows;
    for (const DialectStatistics &D : F.Stats.getDialects()) {
      auto E = Local
                   ? F.Stats.opLocalConstraintExpressibility(D.Name)
                   : F.Stats.opVerifierExpressibility(D.Name);
      Rows.emplace_back(D.Name, E.cppFraction());
    }
    std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
      return A.second > B.second;
    });
    for (const auto &[Name, Frac] : Rows) {
      if (Frac == 0)
        continue;
      OS << "  " << Name
         << std::string(Name.size() < 14 ? 14 - Name.size() : 1, ' ')
         << stackedBar({1.0 - Frac, Frac}, 30) << " "
         << formatPercent(Frac, 1) << " IRDL-C++\n";
    }
  };
  PrintPanel("(a) local constraints", /*Local=*/true);
  auto Local = F.Stats.opLocalConstraintExpressibility();
  printPaperVsMeasured(OS, "local constraints in pure IRDL",
                       Paper.OpsLocalConstraintsInIRDL,
                       1.0 - Local.cppFraction());
  PrintPanel("(b) verifiers", /*Local=*/false);
  auto Verifiers = F.Stats.opVerifierExpressibility();
  printPaperVsMeasured(OS, "ops needing a C++ verifier",
                       Paper.OpsNeedingCppVerifier,
                       Verifiers.cppFraction());
  OS << "\n";
}

//===----------------------------------------------------------------------===//
// Figure 12
//===----------------------------------------------------------------------===//

inline void printFigure12(std::ostream &OS, const CorpusFixture &F) {
  OS << "== Figure 12: local constraints requiring IRDL-C++ ==\n";
  auto Kinds = F.Stats.localCppConstraintKinds();
  unsigned Max = 0;
  for (const auto &[K, N] : Kinds)
    Max = std::max(Max, N);
  for (CppConstraintKind K :
       {CppConstraintKind::IntegerInequality,
        CppConstraintKind::StrideCheck, CppConstraintKind::StructOpacity,
        CppConstraintKind::Other}) {
    unsigned N = Kinds.count(K) ? Kinds[K] : 0;
    if (K == CppConstraintKind::Other && N == 0)
      continue;
    std::string Name(cppConstraintKindName(K));
    OS << "  " << Name
       << std::string(Name.size() < 20 ? 20 - Name.size() : 1, ' ')
       << countBar(N, Max, 30) << " " << N << "\n";
  }
  OS << "  paper: only three kinds of operation constraints require "
        "IRDL-C++\n\n";
}

} // namespace irdl::bench

#endif // IRDL_BENCH_FIGUREHELPERS_H
