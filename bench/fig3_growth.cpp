//===- fig3_growth.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure3(std::cout, Fixture);
  return 0;
}
