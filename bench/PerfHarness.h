//===- PerfHarness.h - Shared main() for the perf_* suites ------*- C++ -*-===//
///
/// \file
/// Wraps the google-benchmark suites with the instrumentation layer
/// (support/Timing.h, support/Statistic.h): before the registered
/// benchmarks run, a phase-breakdown callback executes a representative
/// workload under an active TimerGroup, and the harness prints the
/// resulting timing tree and statistics table to stderr — so a perf run
/// reports *where* time goes, not one opaque number.
///
/// Flags handled before google-benchmark sees the command line:
///   --json        print the machine-readable summary (timing tree +
///                 statistics) to stdout and exit without running the
///                 google-benchmark suites (stdout stays pure JSON)
///   --json=FILE   write the summary to FILE, then run the suites
///   --mt=N        set the global thread count before anything runs
///                 (0 = auto, 1 = disable multithreading); applies to the
///                 phase breakdown and the google-benchmark suites
///   --compiled-constraints=0|1
///                 select the constraint engine (1 = compiled programs,
///                 the default; 0 = the tree interpreter oracle)
///
/// The JSON shape, for BENCH_*.json trajectory tracking:
///   {"bench": NAME, "timing": <TimerGroup::renderJsonSummary()>,
///    "statistics": <StatisticRegistry::renderJson()>}
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_BENCH_PERFHARNESS_H
#define IRDL_BENCH_PERFHARNESS_H

#include "irdl/ConstraintCompiler.h"
#include "support/Statistic.h"
#include "support/Threading.h"
#include "support/Timing.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace irdl {

inline int runPerfMain(int argc, char **argv, const char *BenchName,
                       const std::function<void()> &PhaseBreakdown) {
  bool JsonToStdout = false;
  std::string JsonFile;
  std::vector<char *> BenchArgs{argv[0]};
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json")
      JsonToStdout = true;
    else if (Arg.rfind("--json=", 0) == 0)
      JsonFile = Arg.substr(std::string("--json=").size());
    else if (Arg.rfind("--mt=", 0) == 0) {
      auto N = parseThreadCountValue(Arg.substr(std::string("--mt=").size()));
      if (!N) {
        std::cerr << "invalid thread count in '" << Arg << "'\n";
        return 1;
      }
      setGlobalThreadCount(*N);
    } else if (Arg.rfind("--compiled-constraints=", 0) == 0) {
      std::string V = Arg.substr(std::string("--compiled-constraints=").size());
      if (V != "0" && V != "1") {
        std::cerr << "invalid value '" << V
                  << "' for --compiled-constraints (expected 0 or 1)\n";
        return 1;
      }
      setCompiledConstraintsEnabled(V == "1");
    } else
      BenchArgs.push_back(argv[I]);
  }

  TimerGroup Timers(BenchName);
  StatisticRegistry::instance().resetAll();
  setActiveTimerGroup(&Timers);
  PhaseBreakdown();
  setActiveTimerGroup(nullptr);

  std::string Summary = std::string("{\"bench\":\"") + BenchName +
                        "\",\"timing\":" + Timers.renderJsonSummary() +
                        ",\"statistics\":" +
                        StatisticRegistry::instance().renderJson() + "}\n";
  if (JsonToStdout) {
    std::cout << Summary;
    return 0;
  }
  std::cerr << Timers.renderTree()
            << StatisticRegistry::instance().renderTable();
  if (!JsonFile.empty()) {
    std::ofstream Out(JsonFile);
    if (!Out) {
      std::cerr << "cannot write " << JsonFile << "\n";
      return 1;
    }
    Out << Summary;
  }

  int BenchArgc = (int)BenchArgs.size();
  benchmark::Initialize(&BenchArgc, BenchArgs.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, BenchArgs.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace irdl

#endif // IRDL_BENCH_PERFHARNESS_H
