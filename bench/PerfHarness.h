//===- PerfHarness.h - Shared main() for the perf_* suites ------*- C++ -*-===//
///
/// \file
/// Wraps the google-benchmark suites with the instrumentation layer
/// (support/Timing.h, support/Statistic.h, support/Metrics.h): before
/// the registered benchmarks run, a phase-breakdown callback executes a
/// representative workload under an active TimerGroup, and the harness
/// prints the resulting timing tree and statistics table to stderr — so
/// a perf run reports *where* time goes, not one opaque number. Phase
/// callbacks record per-iteration samples through PhaseSampler, so the
/// JSON summary also carries p50/p90/p99 latency distributions.
///
/// Flags handled before google-benchmark sees the command line:
///   --json        print the machine-readable summary (timing tree +
///                 statistics + metrics) to stdout and exit without
///                 running the google-benchmark suites (stdout stays
///                 pure JSON)
///   --json=FILE   write the summary to FILE, then run the suites
///   --metrics     enable library metrics collection (the memo-cache /
///                 dispatch / verifier instrumentation) and print the
///                 Prometheus exposition to stderr
///   --metrics-json=FILE
///                 enable library metrics collection and write the
///                 registry as JSON to FILE (also honored on the --json
///                 short-circuit path, so CI collects both in one run)
///   --mt=N        set the global thread count before anything runs
///                 (0 = auto, 1 = disable multithreading); applies to the
///                 phase breakdown and the google-benchmark suites
///   --compiled-constraints=0|1
///                 select the constraint engine (1 = compiled programs,
///                 the default; 0 = the tree interpreter oracle)
///   --seed=N      RNG seed for benches that synthesize their workload
///                 through ModuleSynthesizer (perf_bytecode, perf_serve),
///                 so a corpus is reproducible across runs and CI
///                 machines; read via perfSeed(), default 1
///
/// The JSON shape, for BENCH_*.json trajectory tracking:
///   {"bench": NAME, "timing": <TimerGroup::renderJsonSummary()>,
///    "statistics": <StatisticRegistry::renderJson()>,
///    "metrics": <MetricsRegistry::renderJson()>}
///
/// Note the split: PhaseSampler records its bench_phase_duration_ns
/// histograms *unconditionally* (so p50/p90/p99 appear in every --json
/// run), while the library's own instrumentation stays behind --metrics
/// — keeping the disabled-overhead guarantee the CI perf gate measures.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_BENCH_PERFHARNESS_H
#define IRDL_BENCH_PERFHARNESS_H

#include "irdl/ConstraintCompiler.h"
#include "support/Metrics.h"
#include "support/Statistic.h"
#include "support/Threading.h"
#include "support/Timing.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace irdl {

/// The workload RNG seed from --seed=N (default 1). Benches that
/// synthesize modules pass `perfSeed()` (plus a per-module offset) into
/// ModuleSynthOptions::Seed.
inline uint64_t &perfSeedSlot() {
  static uint64_t Seed = 1;
  return Seed;
}
inline uint64_t perfSeed() { return perfSeedSlot(); }

/// Per-iteration sampling for a phase-breakdown workload: construct one
/// per phase, call sample() around each iteration (or record() with a
/// measured duration). Samples land in the process metrics registry as
/// `bench_phase_duration_ns{phase="<name>"}`, which the harness summary
/// serializes with p50/p90/p99.
class PhaseSampler {
public:
  explicit PhaseSampler(std::string PhaseName)
      : Hist(MetricsRegistry::instance().getHistogram(
            "bench_phase_duration_ns",
            "per-iteration wall time of one bench phase",
            {{"phase", std::move(PhaseName)}})) {}

  /// Runs \p Fn once and records its wall time.
  template <typename FnT> void sample(FnT &&Fn) {
    uint64_t Begin = steadyNowNs();
    Fn();
    Hist.record(steadyNowNs() - Begin);
  }

  void record(uint64_t Nanos) { Hist.record(Nanos); }

private:
  Histogram &Hist;
};

inline int runPerfMain(int argc, char **argv, const char *BenchName,
                       const std::function<void()> &PhaseBreakdown) {
  bool JsonToStdout = false;
  bool Metrics = false;
  std::string JsonFile;
  std::string MetricsJsonFile;
  std::vector<char *> BenchArgs{argv[0]};
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json")
      JsonToStdout = true;
    else if (Arg.rfind("--json=", 0) == 0)
      JsonFile = Arg.substr(std::string("--json=").size());
    else if (Arg == "--metrics")
      Metrics = true;
    else if (Arg.rfind("--metrics-json=", 0) == 0)
      MetricsJsonFile = Arg.substr(std::string("--metrics-json=").size());
    else if (Arg.rfind("--mt=", 0) == 0) {
      auto N = parseThreadCountValue(Arg.substr(std::string("--mt=").size()));
      if (!N) {
        std::cerr << "invalid thread count in '" << Arg << "'\n";
        return 1;
      }
      setGlobalThreadCount(*N);
    } else if (Arg.rfind("--seed=", 0) == 0) {
      std::string V = Arg.substr(std::string("--seed=").size());
      char *End = nullptr;
      unsigned long long Seed = std::strtoull(V.c_str(), &End, 10);
      if (V.empty() || !End || *End != '\0') {
        std::cerr << "invalid value '" << V
                  << "' for --seed (expected a non-negative integer)\n";
        return 1;
      }
      perfSeedSlot() = Seed;
    } else if (Arg.rfind("--compiled-constraints=", 0) == 0) {
      std::string V = Arg.substr(std::string("--compiled-constraints=").size());
      if (V != "0" && V != "1") {
        std::cerr << "invalid value '" << V
                  << "' for --compiled-constraints (expected 0 or 1)\n";
        return 1;
      }
      setCompiledConstraintsEnabled(V == "1");
    } else
      BenchArgs.push_back(argv[I]);
  }

  if (Metrics || !MetricsJsonFile.empty())
    setMetricsEnabled(true);

  TimerGroup Timers(BenchName);
  StatisticRegistry::instance().resetAll();
  MetricsRegistry::instance().resetAll();
  setActiveTimerGroup(&Timers);
  PhaseBreakdown();
  setActiveTimerGroup(nullptr);

  std::string Summary = std::string("{\"bench\":\"") + BenchName +
                        "\",\"timing\":" + Timers.renderJsonSummary() +
                        ",\"statistics\":" +
                        StatisticRegistry::instance().renderJson() +
                        ",\"metrics\":" +
                        MetricsRegistry::instance().renderJson() + "}\n";
  auto WriteMetricsJson = [&]() -> bool {
    if (MetricsJsonFile.empty())
      return true;
    std::ofstream Out(MetricsJsonFile);
    if (!Out) {
      std::cerr << "cannot write " << MetricsJsonFile << "\n";
      return false;
    }
    Out << MetricsRegistry::instance().renderJson() << "\n";
    return true;
  };
  if (JsonToStdout) {
    std::cout << Summary;
    return WriteMetricsJson() ? 0 : 1;
  }
  std::cerr << Timers.renderTree()
            << StatisticRegistry::instance().renderTable();
  if (Metrics)
    std::cerr << MetricsRegistry::instance().renderPrometheus();
  if (!WriteMetricsJson())
    return 1;
  if (!JsonFile.empty()) {
    std::ofstream Out(JsonFile);
    if (!Out) {
      std::cerr << "cannot write " << JsonFile << "\n";
      return 1;
    }
    Out << Summary;
  }

  int BenchArgc = (int)BenchArgs.size();
  benchmark::Initialize(&BenchArgc, BenchArgs.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, BenchArgs.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace irdl

#endif // IRDL_BENCH_PERFHARNESS_H
