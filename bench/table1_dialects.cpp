//===- table1_dialects.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printTable1(std::cout, Fixture);
  return 0;
}
