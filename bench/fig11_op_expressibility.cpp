//===- fig11_op_expressibility.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure11(std::cout, Fixture);
  return 0;
}
