//===- fig4_ops_per_dialect.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure4(std::cout, Fixture);
  return 0;
}
