//===- fig8_param_kinds.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure8(std::cout, Fixture);
  return 0;
}
