//===- perf_bytecode.cpp - Bytecode vs textual loading ------------------===//
///
/// The serialization ablation (docs/serialization.md): loading a module
/// from `.irbc` bytecode vs parsing its textual form, and loading dialect
/// specs from bytecode vs running the full IRDL frontend. Modules come
/// from the deterministic synthesizer over corpus dialects, so the
/// encoded surface covers parametric types, attributes, regions, and
/// block arguments at realistic shapes.

#include "PerfHarness.h"

#include "bytecode/Bytecode.h"
#include "corpus/Corpus.h"
#include "corpus/ModuleSynthesizer.h"
#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <benchmark/benchmark.h>

using namespace irdl;

namespace {

/// One context holding the whole synthetic corpus, a synthesized module
/// over its dialects, and both serialized forms of that module.
struct Fixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  CorpusLoadResult Corpus;
  OwningOpRef M;
  std::string Text;
  std::string Bytes;
  std::string SpecText;
  std::string SpecBytes;

  Fixture() {
    Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
    // One parent module holding a synthesized module per corpus dialect
    // (nested whole so block-argument operands stay owned).
    M = parseSourceString(Ctx, "builtin.module {\n}\n", SrcMgr, Diags);
    if (M->getRegion(0).empty())
      M->getRegion(0).push_back(new Block());
    Block *Body = &M->getRegion(0).front();
    for (size_t I = 0, N = Corpus.Module->getDialects().size(); I != N;
         ++I) {
      OwningOpRef Part =
          synthesizeModule(Ctx, *Corpus.Module->getDialects()[I],
                           {/*Seed=*/perfSeed() + I});
      Body->push_back(Part.release());
    }

    PrintOptions Generic;
    Generic.GenericForm = true;
    Text = printOpToString(M.get(), Generic);

    BytecodeWriter Writer;
    Writer.setModule(M.get());
    Bytes = Writer.write();

    SpecText = synthesizeCorpusIRDL();
    BytecodeWriter SpecWriter;
    SpecWriter.addModuleSpecs(*Corpus.Module);
    SpecBytes = SpecWriter.write();
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_LoadModule_TextualParse(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    OwningOpRef M = parseSourceString(F.Ctx, F.Text, SM, Diags);
    benchmark::DoNotOptimize(M.get());
  }
  State.SetBytesProcessed(State.iterations() * F.Text.size());
}
BENCHMARK(BM_LoadModule_TextualParse)->Unit(benchmark::kMillisecond);

void BM_LoadModule_Bytecode(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    DiagnosticEngine Diags;
    BytecodeReader Reader(F.Ctx, Diags);
    BytecodeReadResult Result;
    LogicalResult R = Reader.read(F.Bytes, Result);
    benchmark::DoNotOptimize(R);
  }
  State.SetBytesProcessed(State.iterations() * F.Bytes.size());
}
BENCHMARK(BM_LoadModule_Bytecode)->Unit(benchmark::kMillisecond);

void BM_WriteModule_Bytecode(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    BytecodeWriter Writer;
    Writer.setModule(F.M.get());
    std::string Bytes = Writer.write();
    benchmark::DoNotOptimize(Bytes);
  }
}
BENCHMARK(BM_WriteModule_Bytecode)->Unit(benchmark::kMillisecond);

void BM_PrintModule_Textual(benchmark::State &State) {
  Fixture &F = fixture();
  PrintOptions Generic;
  Generic.GenericForm = true;
  for (auto _ : State) {
    std::string Text = printOpToString(F.M.get(), Generic);
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_PrintModule_Textual)->Unit(benchmark::kMillisecond);

void BM_LoadSpecs_IRDLFrontend(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    IRContext Ctx;
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    auto Module =
        loadIRDL(Ctx, F.SpecText, SM, Diags, corpusNativeOptions());
    benchmark::DoNotOptimize(Module);
  }
  State.SetBytesProcessed(State.iterations() * F.SpecText.size());
}
BENCHMARK(BM_LoadSpecs_IRDLFrontend)->Unit(benchmark::kMillisecond);

void BM_LoadSpecs_Bytecode(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    IRContext Ctx;
    DiagnosticEngine Diags;
    BytecodeReader Reader(Ctx, Diags, corpusNativeOptions());
    BytecodeReadResult Result;
    LogicalResult R = Reader.read(F.SpecBytes, Result);
    benchmark::DoNotOptimize(R);
  }
  State.SetBytesProcessed(State.iterations() * F.SpecBytes.size());
}
BENCHMARK(BM_LoadSpecs_Bytecode)->Unit(benchmark::kMillisecond);

/// Phase breakdown (PerfHarness.h): both load paths under named timing
/// scopes; the bytecode library's own scopes (bytecode-read, read-specs,
/// read-pool, read-ir) nest inside, and the Bytecode statistics group
/// reports op/pool/byte counts.
void runPhaseBreakdown() {
  Fixture *F;
  {
    IRDL_TIME_SCOPE("fixture-setup");
    F = &fixture();
  }
  {
    IRDL_TIME_SCOPE("textual-parse-x20");
    for (int I = 0; I != 20; ++I) {
      SourceMgr SM;
      DiagnosticEngine Diags(&SM);
      OwningOpRef M = parseSourceString(F->Ctx, F->Text, SM, Diags);
      benchmark::DoNotOptimize(M.get());
    }
  }
  {
    IRDL_TIME_SCOPE("bytecode-load-x20");
    for (int I = 0; I != 20; ++I) {
      DiagnosticEngine Diags;
      BytecodeReader Reader(F->Ctx, Diags);
      BytecodeReadResult Result;
      LogicalResult R = Reader.read(F->Bytes, Result);
      benchmark::DoNotOptimize(R);
    }
  }
  {
    IRDL_TIME_SCOPE("spec-frontend-x3");
    for (int I = 0; I != 3; ++I) {
      IRContext Ctx;
      SourceMgr SM;
      DiagnosticEngine Diags(&SM);
      auto Module =
          loadIRDL(Ctx, F->SpecText, SM, Diags, corpusNativeOptions());
      benchmark::DoNotOptimize(Module);
    }
  }
  {
    IRDL_TIME_SCOPE("spec-bytecode-x3");
    for (int I = 0; I != 3; ++I) {
      IRContext Ctx;
      DiagnosticEngine Diags;
      BytecodeReader Reader(Ctx, Diags, corpusNativeOptions());
      BytecodeReadResult Result;
      LogicalResult R = Reader.read(F->SpecBytes, Result);
      benchmark::DoNotOptimize(R);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_bytecode", runPhaseBreakdown);
}
