//===- perf_bytecode.cpp - Bytecode vs textual loading ------------------===//
///
/// The serialization ablation (docs/serialization.md): loading a module
/// from `.irbc` bytecode vs parsing its textual form, and loading dialect
/// specs from bytecode vs running the full IRDL frontend. Modules come
/// from the deterministic synthesizer over corpus dialects, so the
/// encoded surface covers parametric types, attributes, regions, and
/// block arguments at realistic shapes.

#include "PerfHarness.h"

#include "bytecode/Bytecode.h"
#include "bytecode/SpecCache.h"
#include "corpus/Corpus.h"
#include "corpus/ModuleSynthesizer.h"
#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

using namespace irdl;

namespace {

/// One context holding the whole synthetic corpus, a synthesized module
/// over its dialects, and both serialized forms of that module.
struct Fixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  CorpusLoadResult Corpus;
  OwningOpRef M;
  std::string Text;
  std::string Bytes;
  std::string SpecText;
  std::string SpecBytes;

  Fixture() {
    Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
    // One parent module holding a synthesized module per corpus dialect
    // (nested whole so block-argument operands stay owned).
    M = parseSourceString(Ctx, "builtin.module {\n}\n", SrcMgr, Diags);
    if (M->getRegion(0).empty())
      M->getRegion(0).emplaceBlock();
    Block *Body = &M->getRegion(0).front();
    for (size_t I = 0, N = Corpus.Module->getDialects().size(); I != N;
         ++I) {
      OwningOpRef Part =
          synthesizeModule(Ctx, *Corpus.Module->getDialects()[I],
                           {/*Seed=*/perfSeed() + I});
      Body->push_back(Part.release());
    }

    PrintOptions Generic;
    Generic.GenericForm = true;
    Text = printOpToString(M.get(), Generic);

    BytecodeWriter Writer;
    Writer.setModule(M.get());
    Bytes = Writer.write();

    SpecText = synthesizeCorpusIRDL();
    BytecodeWriter SpecWriter;
    SpecWriter.addModuleSpecs(*Corpus.Module);
    SpecBytes = SpecWriter.write();
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_LoadModule_TextualParse(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    OwningOpRef M = parseSourceString(F.Ctx, F.Text, SM, Diags);
    benchmark::DoNotOptimize(M.get());
  }
  State.SetBytesProcessed(State.iterations() * F.Text.size());
}
BENCHMARK(BM_LoadModule_TextualParse)->Unit(benchmark::kMillisecond);

void BM_LoadModule_Bytecode(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    DiagnosticEngine Diags;
    BytecodeReader Reader(F.Ctx, Diags);
    BytecodeReadResult Result;
    LogicalResult R = Reader.read(F.Bytes, Result);
    benchmark::DoNotOptimize(R);
  }
  State.SetBytesProcessed(State.iterations() * F.Bytes.size());
}
BENCHMARK(BM_LoadModule_Bytecode)->Unit(benchmark::kMillisecond);

void BM_WriteModule_Bytecode(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    BytecodeWriter Writer;
    Writer.setModule(F.M.get());
    std::string Bytes = Writer.write();
    benchmark::DoNotOptimize(Bytes);
  }
}
BENCHMARK(BM_WriteModule_Bytecode)->Unit(benchmark::kMillisecond);

void BM_PrintModule_Textual(benchmark::State &State) {
  Fixture &F = fixture();
  PrintOptions Generic;
  Generic.GenericForm = true;
  for (auto _ : State) {
    std::string Text = printOpToString(F.M.get(), Generic);
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_PrintModule_Textual)->Unit(benchmark::kMillisecond);

void BM_LoadSpecs_IRDLFrontend(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    IRContext Ctx;
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    auto Module =
        loadIRDL(Ctx, F.SpecText, SM, Diags, corpusNativeOptions());
    benchmark::DoNotOptimize(Module);
  }
  State.SetBytesProcessed(State.iterations() * F.SpecText.size());
}
BENCHMARK(BM_LoadSpecs_IRDLFrontend)->Unit(benchmark::kMillisecond);

void BM_LoadSpecs_Bytecode(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    IRContext Ctx;
    DiagnosticEngine Diags;
    BytecodeReader Reader(Ctx, Diags, corpusNativeOptions());
    BytecodeReadResult Result;
    LogicalResult R = Reader.read(F.SpecBytes, Result);
    benchmark::DoNotOptimize(R);
  }
  State.SetBytesProcessed(State.iterations() * F.SpecBytes.size());
}
BENCHMARK(BM_LoadSpecs_Bytecode)->Unit(benchmark::kMillisecond);

/// Phase breakdown (PerfHarness.h): both load paths under named timing
/// scopes; the bytecode library's own scopes (bytecode-read, read-specs,
/// read-pool, read-ir) nest inside, and the Bytecode statistics group
/// reports op/pool/byte counts.
void runPhaseBreakdown() {
  Fixture *F;
  {
    IRDL_TIME_SCOPE("fixture-setup");
    F = &fixture();
  }
  {
    IRDL_TIME_SCOPE("textual-parse-x20");
    for (int I = 0; I != 20; ++I) {
      SourceMgr SM;
      DiagnosticEngine Diags(&SM);
      OwningOpRef M = parseSourceString(F->Ctx, F->Text, SM, Diags);
      benchmark::DoNotOptimize(M.get());
    }
  }
  {
    IRDL_TIME_SCOPE("bytecode-load-x20");
    for (int I = 0; I != 20; ++I) {
      DiagnosticEngine Diags;
      BytecodeReader Reader(F->Ctx, Diags);
      BytecodeReadResult Result;
      LogicalResult R = Reader.read(F->Bytes, Result);
      benchmark::DoNotOptimize(R);
    }
  }
  {
    IRDL_TIME_SCOPE("spec-frontend-x3");
    PhaseSampler Sampler("spec-frontend");
    for (int I = 0; I != 3; ++I)
      Sampler.sample([&] {
        IRContext Ctx;
        SourceMgr SM;
        DiagnosticEngine Diags(&SM);
        auto Module =
            loadIRDL(Ctx, F->SpecText, SM, Diags, corpusNativeOptions());
        benchmark::DoNotOptimize(Module);
      });
  }
  {
    IRDL_TIME_SCOPE("spec-bytecode-x3");
    PhaseSampler Sampler("spec-bytecode");
    for (int I = 0; I != 3; ++I)
      Sampler.sample([&] {
        IRContext Ctx;
        DiagnosticEngine Diags;
        BytecodeReader Reader(Ctx, Diags, corpusNativeOptions());
        BytecodeReadResult Result;
        LogicalResult R = Reader.read(F->SpecBytes, Result);
        benchmark::DoNotOptimize(R);
      });
  }

  // The v2 zero-copy pair (check_bytecode.py gates on these): loading the
  // corpus specs from an mmap'd .irbc — compiled programs alias the
  // mapping — and re-"loading" an already cached spec, which is just a
  // content hash plus one cache probe.
  std::string MappedPath = "perf_bytecode_specs_" +
                           std::to_string(::getpid()) + ".irbc";
  {
    std::ofstream Out(MappedPath, std::ios::binary | std::ios::trunc);
    Out.write(F->SpecBytes.data(),
              static_cast<std::streamsize>(F->SpecBytes.size()));
  }
  {
    IRDL_TIME_SCOPE("spec-mmap-load-x10");
    PhaseSampler Sampler("spec-mmap-load");
    for (int I = 0; I != 10; ++I)
      Sampler.sample([&] {
        IRContext Ctx;
        DiagnosticEngine Diags;
        BytecodeReadResult Result;
        LogicalResult R = readBytecodeFileMapped(
            MappedPath, Ctx, Diags, Result, corpusNativeOptions());
        if (failed(R)) {
          std::fprintf(stderr, "spec-mmap-load failed:\n%s",
                       Diags.renderAll().c_str());
          std::exit(1);
        }
        benchmark::DoNotOptimize(Result.Specs.get());
      });
  }
  std::remove(MappedPath.c_str());
  {
    // Prime the in-process cache with one full load, keyed by the
    // textual source's content hash — the verification-service shape,
    // where re-registering an identical spec must cost hash + probe.
    uint64_t SpecHash = hashSpecBuffer(F->SpecText);
    {
      CachedSpecs Entry;
      Entry.Ctx = std::make_shared<IRContext>();
      SourceMgr SM;
      DiagnosticEngine Diags(&SM);
      Entry.Module = loadIRDL(*Entry.Ctx, F->SpecText, SM, Diags,
                              corpusNativeOptions());
      if (!Entry.Module) {
        std::fprintf(stderr, "spec-cache-hit priming failed:\n%s",
                     Diags.renderAll().c_str());
        std::exit(1);
      }
      SpecLoadCache::instance().insert(SpecHash, std::move(Entry));
    }
    IRDL_TIME_SCOPE("spec-cache-hit-x50");
    PhaseSampler Sampler("spec-cache-hit");
    for (int I = 0; I != 50; ++I)
      Sampler.sample([&] {
        uint64_t H = hashSpecBuffer(F->SpecText);
        auto Entry = SpecLoadCache::instance().lookup(H);
        if (!Entry) {
          std::fprintf(stderr, "spec-cache-hit: lookup missed\n");
          std::exit(1);
        }
        benchmark::DoNotOptimize(Entry.get());
      });
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_bytecode", runPhaseBreakdown);
}
