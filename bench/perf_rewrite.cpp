//===- perf_rewrite.cpp - Greedy pattern rewriting ----------------------===//
///
/// Measures the pattern-based compilation flow of Section 3: the Listing 1
/// conorm peephole applied over chains of norm/mul operations defined by a
/// dynamically loaded dialect.

#include "PerfHarness.h"

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "ir/Rewrite.h"
#include "irdl/IRDL.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace irdl;

namespace {

/// norm(p) * norm(q) => norm(mul(p, q)) — Listing 1.
struct ConormPattern : RewritePattern {
  ConormPattern() : RewritePattern("std.mulf") {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    Operation *L = Op->getOperand(0).getDefiningOp();
    Operation *R = Op->getOperand(1).getDefiningOp();
    auto IsNorm = [](Operation *N) {
      return N && N->getName().str() == "cmath.norm";
    };
    if (!IsNorm(L) || !IsNorm(R))
      return failure();
    IRContext *Ctx = Rewriter.getContext();

    OperationState MulState(*Ctx, Ctx->resolveOpDef("cmath.mul"), Op->getLoc());
    MulState.Operands = {L->getOperand(0), R->getOperand(0)};
    MulState.ResultTypes = {L->getOperand(0).getType()};
    Operation *Mul = Rewriter.createOp(MulState);

    OperationState NormState(*Ctx, Ctx->resolveOpDef("cmath.norm"),
                             Op->getLoc());
    NormState.Operands = {Mul->getResult(0)};
    NormState.ResultTypes = {Op->getResult(0).getType()};
    Operation *Norm = Rewriter.createOp(NormState);

    Rewriter.replaceOp(Op, {Norm->getResult(0)});
    return success();
  }
};

std::string buildConormChain(unsigned N) {
  std::ostringstream OS;
  OS << "std.func @f(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>) "
        "-> f32 {\n";
  OS << "  %acc0 = std.constant 1.0 : f32\n";
  for (unsigned I = 0; I != N; ++I) {
    OS << "  %np" << I << " = cmath.norm %p : f32\n";
    OS << "  %nq" << I << " = cmath.norm %q : f32\n";
    OS << "  %m" << I << " = std.mulf %np" << I << ", %nq" << I
       << " : f32\n";
    OS << "  %acc" << I + 1 << " = std.addf %acc" << I << ", %m" << I
       << " : f32\n";
  }
  OS << "  std.return %acc" << N << " : f32\n}\n";
  return OS.str();
}

void BM_GreedyRewrite_Conorm(benchmark::State &State) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto Module = loadIRDLFile(
      Ctx, std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl", SrcMgr, Diags);
  std::string Text = buildConormChain(
      static_cast<unsigned>(State.range(0)));

  for (auto _ : State) {
    State.PauseTiming();
    SourceMgr SM;
    DiagnosticEngine D(&SM);
    OwningOpRef M = parseSourceString(Ctx, Text, SM, D);
    RewritePatternSet Patterns(&Ctx);
    Patterns.add<ConormPattern>();
    State.ResumeTiming();

    RewriteStatistics Stats = applyPatternsGreedily(M.get(), Patterns);
    eraseDeadOps(M.get(), {"cmath.norm", "cmath.mul", "std.mulf"});
    benchmark::DoNotOptimize(Stats.NumRewrites);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_GreedyRewrite_Conorm)->Arg(4)->Arg(16)->Arg(64);

void BM_OpCreateErase(benchmark::State &State) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto Module = loadIRDLFile(
      Ctx, std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl", SrcMgr, Diags);
  TypeDefinition *Complex = Ctx.resolveTypeDef("cmath.complex");
  Type C32 = Ctx.getType(Complex, {ParamValue(Ctx.getFloatType(32))});
  const OpDefinition *CreateConst =
      Ctx.resolveOpDef("cmath.create_constant");
  Attribute Zero = Ctx.getFloatAttr(0.0, 32);

  for (auto _ : State) {
    OperationState S(Ctx, CreateConst);
    S.ResultTypes = {C32};
    S.addAttribute("re", Zero);
    S.addAttribute("im", Zero);
    Operation *Op = Operation::create(S);
    benchmark::DoNotOptimize(Op);
    Op->destroy();
  }
}
BENCHMARK(BM_OpCreateErase);

/// Phase breakdown (PerfHarness.h): dialect load, parse, and the greedy
/// rewrite driver over a 64-element conorm chain.
void runPhaseBreakdown() {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  {
    IRDL_TIME_SCOPE("load-dialect");
    auto Module = loadIRDLFile(
        Ctx, std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl", SrcMgr,
        Diags);
    benchmark::DoNotOptimize(Module);
  }
  std::string Text = buildConormChain(64);
  for (int I = 0; I != 20; ++I) {
    OwningOpRef M;
    {
      IRDL_TIME_SCOPE("parse-chain-64");
      SourceMgr SM;
      DiagnosticEngine D(&SM);
      M = parseSourceString(Ctx, Text, SM, D);
    }
    {
      IRDL_TIME_SCOPE("greedy-rewrite-64");
      RewritePatternSet Patterns(&Ctx);
      Patterns.add<ConormPattern>();
      RewriteStatistics Stats = applyPatternsGreedily(M.get(), Patterns);
      eraseDeadOps(M.get(), {"cmath.norm", "cmath.mul", "std.mulf"});
      benchmark::DoNotOptimize(Stats.NumRewrites);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_rewrite", runPhaseBreakdown);
}
