//===- fig6_results.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure6(std::cout, Fixture);
  return 0;
}
