//===- fig_all.cpp - regenerates every table and figure ------------------===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  using namespace irdl::bench;
  printTable1(std::cout, Fixture);
  printFigure3(std::cout, Fixture);
  printFigure4(std::cout, Fixture);
  printFigure5(std::cout, Fixture);
  printFigure6(std::cout, Fixture);
  printFigure7(std::cout, Fixture);
  printFigure8(std::cout, Fixture);
  printFigure9(std::cout, Fixture);
  printFigure10(std::cout, Fixture);
  printFigure11(std::cout, Fixture);
  printFigure12(std::cout, Fixture);
  return 0;
}
