//===- perf_serve.cpp - Warm served verify vs cold irdl_opt pipeline ----===//
///
/// The headline number behind irdl_serve (docs/serving.md): a persistent
/// server pays context construction, dialect registration, and constraint
/// compilation once, so a served VERIFY round trip — socket framing
/// included — beats the cold irdl_opt-equivalent pipeline that reloads
/// every dialect per invocation. Phases:
///
///   serve-load-dialects    LOAD_DIALECT for each bundled .irdl file
///   serve-warm-verify-x30  one-shot VERIFY of a multi-dialect module
///                          over the socket against the warm epoch
///   cold-oneshot-verify-x10  the same verification done the irdl_opt
///                          way: fresh context + dialect loads + parse +
///                          verify, per iteration
///   serve-concurrent-c8    8 client threads issuing verifies; reports
///                          bench_serve_requests_per_second
///
/// Per-iteration p50/p90/p99 land in bench_phase_duration_ns via
/// PhaseSampler, so `perf_serve --json` carries the warm-vs-cold
/// distributions CI gates on (tools/check_serve.py --bench-json).

#include "PerfHarness.h"

#include "corpus/ModuleSynthesizer.h"
#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/File.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <unistd.h>

using namespace irdl;
using namespace irdl::serve;

namespace {

constexpr const char *BundledDialects[] = {"cmath.irdl", "arith.irdl",
                                           "scf.irdl", "complex.irdl",
                                           "math.irdl"};

std::string dialectPath(const char *File) {
  return std::string(IRDL_DIALECTS_DIR) + "/" + File;
}

/// An in-process VerifyServer plus the workload: the bundled dialect
/// sources and one big generic-form module synthesized across every
/// dialect they define (seeded by --seed for reproducible corpora).
struct ServeFixture {
  VerifyServer Server;
  std::thread Serving;
  std::vector<std::pair<std::string, std::string>> DialectSources;
  std::string ModuleText;

  ServeFixture()
      : Server(ServerOptions{"/tmp/irdl_perf_serve." +
                             std::to_string(::getpid()) + ".sock"}) {
    std::string Error;
    if (failed(Server.start(Error))) {
      std::cerr << "perf_serve: " << Error << "\n";
      std::exit(1);
    }
    Serving = std::thread([this]() { Server.serve(); });

    for (const char *File : BundledDialects) {
      std::string Buffer;
      if (failed(readFileToString(dialectPath(File), Buffer, Error))) {
        std::cerr << "perf_serve: " << Error << "\n";
        std::exit(1);
      }
      DialectSources.emplace_back(File, std::move(Buffer));
    }

    // Synthesize in a scratch context; ship the printed generic form.
    IRContext Ctx;
    SourceMgr SrcMgr;
    DiagnosticEngine Diags(&SrcMgr);
    OwningOpRef M =
        parseSourceString(Ctx, "builtin.module {\n}\n", SrcMgr, Diags);
    if (M->getRegion(0).empty())
      M->getRegion(0).emplaceBlock();
    Block *Body = &M->getRegion(0).front();
    uint64_t Seed = perfSeed();
    for (const auto &[File, Source] : DialectSources) {
      auto Module = loadIRDLFile(Ctx, dialectPath(File.c_str()), SrcMgr,
                                 Diags);
      if (!Module) {
        std::cerr << "perf_serve: " << Diags.renderAll();
        std::exit(1);
      }
      for (const auto &Spec : Module->getDialects()) {
        OwningOpRef Part = synthesizeModule(Ctx, *Spec, {/*Seed=*/Seed++});
        Body->push_back(Part.release());
      }
    }
    PrintOptions Generic;
    Generic.GenericForm = true;
    ModuleText = printOpToString(M.get(), Generic) + "\n";
  }

  ~ServeFixture() {
    Server.requestStop();
    if (Serving.joinable())
      Serving.join();
  }

  ServeClient connect() {
    ServeClient Client;
    std::string Error;
    if (failed(Client.connect(Server.socketPath(), Error))) {
      std::cerr << "perf_serve: " << Error << "\n";
      std::exit(1);
    }
    return Client;
  }
};

ServeFixture &fixture() {
  static ServeFixture F;
  return F;
}

/// One warm served verify. The synthesizer does not promise op-level
/// constraints hold, so either verdict is fine — only transport failures
/// abort. Returns true iff the server said Ok.
bool servedVerify(ServeClient &Client, const std::string &Name,
                  const std::string &Content) {
  ResponseFrame Response;
  std::string Error;
  if (failed(Client.verify(Name, Content, Response, Error))) {
    std::cerr << "perf_serve: served verify transport failure: " << Error
              << "\n";
    std::exit(1);
  }
  return Response.Status == FrameStatus::Ok;
}

/// The cold path irdl_opt pays on every invocation: fresh context,
/// reload every dialect from disk, parse, verify. Returns the verdict
/// (which must agree with the served one).
bool coldVerify(const std::string &ModuleText) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  for (const char *File : BundledDialects)
    if (!loadIRDLFile(Ctx, dialectPath(File), SrcMgr, Diags)) {
      std::cerr << "perf_serve: " << Diags.renderAll();
      std::exit(1);
    }
  OwningOpRef M =
      parseSourceString(Ctx, ModuleText, SrcMgr, Diags, "cold.mlir");
  return M && succeeded(verifyOp(M.get(), Diags));
}

void runPhaseBreakdown() {
  ServeFixture *F;
  {
    IRDL_TIME_SCOPE("fixture-setup");
    F = &fixture();
  }
  ServeClient Client = F->connect();
  {
    IRDL_TIME_SCOPE("serve-load-dialects");
    PhaseSampler Sampler("serve-load-dialect");
    for (const auto &[File, Source] : F->DialectSources)
      Sampler.sample([&]() {
        ResponseFrame Response;
        std::string Error;
        if (failed(Client.loadDialect(File, Source, Response, Error)) ||
            Response.Status != FrameStatus::Ok) {
          std::cerr << "perf_serve: LOAD_DIALECT " << File
                    << " failed: " << Error << "\n"
                    << Response.Payload;
          std::exit(1);
        }
      });
  }
  bool WarmVerdict = true;
  {
    IRDL_TIME_SCOPE("serve-warm-verify-x30");
    PhaseSampler Sampler("serve-warm-verify");
    for (int I = 0; I != 30; ++I)
      Sampler.sample([&]() {
        WarmVerdict = servedVerify(
            Client, "warm" + std::to_string(I) + ".mlir", F->ModuleText);
      });
  }
  bool ColdVerdict = true;
  {
    IRDL_TIME_SCOPE("cold-oneshot-verify-x10");
    PhaseSampler Sampler("cold-oneshot-verify");
    for (int I = 0; I != 10; ++I)
      Sampler.sample([&]() { ColdVerdict = coldVerify(F->ModuleText); });
  }
  if (WarmVerdict != ColdVerdict) {
    std::cerr << "perf_serve: warm and cold verdicts diverged\n";
    std::exit(1);
  }
  {
    IRDL_TIME_SCOPE("serve-concurrent-c8");
    constexpr unsigned NumClients = 8;
    constexpr unsigned RequestsPerClient = 8;
    const FrameStatus Expected =
        WarmVerdict ? FrameStatus::Ok : FrameStatus::Fail;
    std::atomic<unsigned> Failures{0};
    uint64_t Begin = steadyNowNs();
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumClients; ++T)
      Threads.emplace_back([&, T]() {
        ServeClient C;
        std::string Error;
        if (failed(C.connect(F->Server.socketPath(), Error))) {
          ++Failures;
          return;
        }
        PhaseSampler Sampler("serve-concurrent-verify");
        for (unsigned I = 0; I != RequestsPerClient; ++I)
          Sampler.sample([&]() {
            ResponseFrame Response;
            std::string E;
            std::string Name = "c" + std::to_string(T) + "_" +
                               std::to_string(I) + ".mlir";
            if (failed(C.verify(Name, F->ModuleText, Response, E)) ||
                Response.Status != Expected)
              ++Failures;
          });
      });
    for (std::thread &T : Threads)
      T.join();
    uint64_t Elapsed = steadyNowNs() - Begin;
    if (Failures.load() != 0) {
      std::cerr << "perf_serve: " << Failures.load()
                << " concurrent verifies failed\n";
      std::exit(1);
    }
    double Seconds = static_cast<double>(Elapsed) / 1e9;
    MetricsRegistry::instance()
        .getGauge("bench_serve_requests_per_second",
                  "throughput of the 8-client concurrent verify phase")
        .set(Seconds > 0
                 ? static_cast<double>(NumClients * RequestsPerClient) /
                       Seconds
                 : 0);
  }
}

/// Socket round-trip floor: PING carries no payload, so this measures
/// framing + scheduling, not verification.
void BM_ServeRoundtripPing(benchmark::State &State) {
  ServeFixture &F = fixture();
  ServeClient Client = F.connect();
  for (auto _ : State) {
    ResponseFrame Response;
    std::string Error;
    if (failed(Client.ping(Response, Error)))
      State.SkipWithError("ping failed");
    benchmark::DoNotOptimize(Response.Status);
  }
}
BENCHMARK(BM_ServeRoundtripPing)->Unit(benchmark::kMicrosecond);

/// One-shot VERIFY of a small single-dialect module against the warm
/// server, socket round trip included.
void BM_ServeRoundtripSmall(benchmark::State &State) {
  ServeFixture &F = fixture();
  ServeClient Client = F.connect();
  // The phase breakdown (which google-benchmark runs after) already
  // loaded every bundled dialect; reload defensively for standalone
  // --benchmark_filter runs.
  {
    ResponseFrame Response;
    std::string Error;
    const auto &[File, Source] = F.DialectSources.front();
    Client.reloadDialect(File, Source, Response, Error);
  }
  const std::string Small =
      "std.func @f(%c: !cmath.complex<f32>) -> f32 {\n"
      "  %r = \"cmath.norm\"(%c) : (!cmath.complex<f32>) -> f32\n"
      "  std.return %r : f32\n"
      "}\n";
  for (auto _ : State) {
    ResponseFrame Response;
    std::string Error;
    if (failed(Client.verify("small.mlir", Small, Response, Error)) ||
        Response.Status != FrameStatus::Ok)
      State.SkipWithError("served verify failed");
    benchmark::DoNotOptimize(Response.Payload);
  }
}
BENCHMARK(BM_ServeRoundtripSmall)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_serve", runPhaseBreakdown);
}
