//===- perf_uniquing.cpp - Type/attr hash-consing ablation --------------===//
///
/// Ablation (DESIGN.md): context uniquing of types and attributes. The
/// cache-hit path is the common case every constraint check relies on
/// (pointer equality); the miss path pays hashing + verification +
/// allocation once per distinct type.

#include "PerfHarness.h"

#include "ir/Context.h"

#include <benchmark/benchmark.h>

using namespace irdl;

namespace {

void BM_TypeUniquing_Hit(benchmark::State &State) {
  IRContext Ctx;
  Ctx.getIntegerType(32); // warm
  for (auto _ : State) {
    Type T = Ctx.getIntegerType(32);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_TypeUniquing_Hit);

void BM_TypeUniquing_MissThenHit128(benchmark::State &State) {
  // Creates 128 distinct integer types per fresh context: the first pass
  // over each width is a miss, amortizing allocation + verifier.
  for (auto _ : State) {
    IRContext Ctx;
    for (unsigned W = 1; W <= 128; ++W) {
      Type T = Ctx.getIntegerType(W);
      benchmark::DoNotOptimize(T);
    }
  }
  State.SetItemsProcessed(State.iterations() * 128);
}
BENCHMARK(BM_TypeUniquing_MissThenHit128);

void BM_TypeEquality_Pointer(benchmark::State &State) {
  IRContext Ctx;
  Type A = Ctx.getIntegerType(32);
  Type B = Ctx.getIntegerType(32);
  for (auto _ : State) {
    bool Eq = A == B;
    benchmark::DoNotOptimize(Eq);
  }
}
BENCHMARK(BM_TypeEquality_Pointer);

void BM_AttrUniquing_Hit(benchmark::State &State) {
  IRContext Ctx;
  Ctx.getIntegerAttr(42, 32);
  for (auto _ : State) {
    Attribute A = Ctx.getIntegerAttr(42, 32);
    benchmark::DoNotOptimize(A);
  }
}
BENCHMARK(BM_AttrUniquing_Hit);

void BM_NestedTypeUniquing_Hit(benchmark::State &State) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("u");
  TypeDefinition *Vec = D->addType("vec");
  Vec->setParamNames({"elem", "n"});
  ParamValue Elem(Ctx.getFloatType(32));
  ParamValue N(IntVal{32, Signedness::Unsigned, 4});
  Ctx.getType(Vec, {Elem, N});
  for (auto _ : State) {
    Type T = Ctx.getType(Vec, {Elem, N});
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_NestedTypeUniquing_Hit);

/// Phase breakdown (PerfHarness.h): hit and miss paths of the uniquer
/// under named timing scopes.
void runPhaseBreakdown() {
  {
    IRDL_TIME_SCOPE("type-hit-x100k");
    IRContext Ctx;
    Ctx.getIntegerType(32);
    for (int I = 0; I != 100000; ++I) {
      Type T = Ctx.getIntegerType(32);
      benchmark::DoNotOptimize(T);
    }
  }
  {
    IRDL_TIME_SCOPE("type-miss-128-x100");
    for (int I = 0; I != 100; ++I) {
      IRContext Ctx;
      for (unsigned W = 1; W <= 128; ++W) {
        Type T = Ctx.getIntegerType(W);
        benchmark::DoNotOptimize(T);
      }
    }
  }
  {
    IRDL_TIME_SCOPE("attr-hit-x100k");
    IRContext Ctx;
    Ctx.getIntegerAttr(42, 32);
    for (int I = 0; I != 100000; ++I) {
      Attribute A = Ctx.getIntegerAttr(42, 32);
      benchmark::DoNotOptimize(A);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_uniquing", runPhaseBreakdown);
}
