//===- perf_parse.cpp - Textual IR parse/print microbenchmarks ----------===//
///
/// Ablation (DESIGN.md): declarative-format parsing (with type inference
/// through constraint variables) vs the generic syntax, plus printing.

#include "PerfHarness.h"

#include "corpus/ModuleSynthesizer.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "irdl/IRDL.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace irdl;

namespace {

struct Fixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  std::unique_ptr<IRDLModule> Module;
  std::unique_ptr<IRDLModule> ScfModule;
  std::string CustomText;
  std::string GenericText;
  std::string DeepRegionText;

  Fixture() {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/cmath.irdl",
                          SrcMgr, Diags);
    // A deeply nested module over the region-bearing scf dialect: every
    // op instance carries nested regions with entry blocks and block
    // arguments, so parsing it stresses the block/argument allocator,
    // not just op creation.
    ScfModule = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                      "/scf.irdl",
                             SrcMgr, Diags);
    OwningOpRef Deep = synthesizeModule(
        Ctx, *ScfModule->getDialects()[0],
        {/*Seed=*/7, /*InstancesPerOp=*/8, /*MaxRegionDepth=*/5});
    PrintOptions GenericOpts;
    GenericOpts.GenericForm = true;
    DeepRegionText = printOpToString(Deep.get(), GenericOpts);
    // A chain of cmath.mul ops in both syntaxes.
    std::ostringstream Custom, Generic;
    Custom << "std.func @f(%x: !cmath.complex<f32>) -> "
              "!cmath.complex<f32> {\n";
    Generic << "std.func @f(%x: !cmath.complex<f32>) -> "
               "!cmath.complex<f32> {\n";
    std::string Prev = "%x";
    for (int I = 0; I < 50; ++I) {
      std::string Cur = "%v" + std::to_string(I);
      Custom << "  " << Cur << " = cmath.mul " << Prev << ", " << Prev
             << " : f32\n";
      Generic << "  " << Cur << " = \"cmath.mul\"(" << Prev << ", "
              << Prev << ") : (!cmath.complex<f32>, !cmath.complex<f32>) "
              << "-> (!cmath.complex<f32>)\n";
      Prev = Cur;
    }
    Custom << "  std.return " << Prev << " : !cmath.complex<f32>\n}\n";
    Generic << "  std.return " << Prev << " : !cmath.complex<f32>\n}\n";
    CustomText = Custom.str();
    GenericText = Generic.str();
  }
};

void BM_ParseIR_CustomFormat_50Ops(benchmark::State &State) {
  Fixture F;
  for (auto _ : State) {
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    OwningOpRef M = parseSourceString(F.Ctx, F.CustomText, SM, Diags);
    benchmark::DoNotOptimize(M.get());
  }
  State.SetBytesProcessed(State.iterations() * F.CustomText.size());
}
BENCHMARK(BM_ParseIR_CustomFormat_50Ops);

void BM_ParseIR_GenericFormat_50Ops(benchmark::State &State) {
  Fixture F;
  for (auto _ : State) {
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    OwningOpRef M = parseSourceString(F.Ctx, F.GenericText, SM, Diags);
    benchmark::DoNotOptimize(M.get());
  }
  State.SetBytesProcessed(State.iterations() * F.GenericText.size());
}
BENCHMARK(BM_ParseIR_GenericFormat_50Ops);

void BM_PrintIR_CustomFormat(benchmark::State &State) {
  Fixture F;
  SourceMgr SM;
  DiagnosticEngine Diags(&SM);
  OwningOpRef M = parseSourceString(F.Ctx, F.CustomText, SM, Diags);
  for (auto _ : State) {
    std::string Text = printOpToString(M.get());
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_PrintIR_CustomFormat);

void BM_PrintIR_GenericFormat(benchmark::State &State) {
  Fixture F;
  SourceMgr SM;
  DiagnosticEngine Diags(&SM);
  OwningOpRef M = parseSourceString(F.Ctx, F.CustomText, SM, Diags);
  PrintOptions Generic;
  Generic.GenericForm = true;
  for (auto _ : State) {
    std::string Text = printOpToString(M.get(), Generic);
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_PrintIR_GenericFormat);

void BM_ParseType_Nested(benchmark::State &State) {
  Fixture F;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    Type T =
        parseTypeString(F.Ctx, "!cmath.complex<f32>", Diags);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_ParseType_Nested);

/// Phase breakdown (PerfHarness.h): the measured paths under named timing
/// scopes; the library's own ir-parse scopes nest inside.
void runPhaseBreakdown() {
  std::unique_ptr<Fixture> F;
  {
    IRDL_TIME_SCOPE("fixture-setup");
    F = std::make_unique<Fixture>();
  }
  {
    IRDL_TIME_SCOPE("parse-custom-x100");
    PhaseSampler Sampler("parse-custom");
    for (int I = 0; I != 100; ++I) {
      Sampler.sample([&] {
        SourceMgr SM;
        DiagnosticEngine Diags(&SM);
        OwningOpRef M = parseSourceString(F->Ctx, F->CustomText, SM, Diags);
        benchmark::DoNotOptimize(M.get());
      });
    }
  }
  {
    IRDL_TIME_SCOPE("parse-generic-x100");
    PhaseSampler Sampler("parse-generic");
    for (int I = 0; I != 100; ++I) {
      Sampler.sample([&] {
        SourceMgr SM;
        DiagnosticEngine Diags(&SM);
        OwningOpRef M =
            parseSourceString(F->Ctx, F->GenericText, SM, Diags);
        benchmark::DoNotOptimize(M.get());
      });
    }
  }
  {
    IRDL_TIME_SCOPE("parse-deep-region-x100");
    PhaseSampler Sampler("parse-deep-region");
    for (int I = 0; I != 100; ++I) {
      Sampler.sample([&] {
        SourceMgr SM;
        DiagnosticEngine Diags(&SM);
        OwningOpRef M =
            parseSourceString(F->Ctx, F->DeepRegionText, SM, Diags);
        benchmark::DoNotOptimize(M.get());
      });
    }
  }
  {
    IRDL_TIME_SCOPE("print-x100");
    PhaseSampler Sampler("print-custom");
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    OwningOpRef M = parseSourceString(F->Ctx, F->CustomText, SM, Diags);
    for (int I = 0; I != 100; ++I) {
      Sampler.sample([&] {
        std::string Text = printOpToString(M.get());
        benchmark::DoNotOptimize(Text);
      });
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_parse", runPhaseBreakdown);
}
