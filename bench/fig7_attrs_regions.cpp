//===- fig7_attrs_regions.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure7(std::cout, Fixture);
  return 0;
}
