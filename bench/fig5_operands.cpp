//===- fig5_operands.cpp - regenerates one piece of the paper's evaluation -----===//

#include "FigureHelpers.h"

int main() {
  irdl::bench::CorpusFixture Fixture;
  irdl::bench::printFigure5(std::cout, Fixture);
  return 0;
}
