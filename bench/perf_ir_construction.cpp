//===- perf_ir_construction.cpp - Op create/erase throughput ------------===//
///
/// Measures the cost the trailing-object arena refactor targets directly:
/// building and tearing down IR. One Operation::create is one arena
/// allocation (operands, results, successors, and region headers ride in
/// the op's block), and erase() recycles the block through a size-class
/// free list — so this bench is dominated by layout computation and
/// use-list linking, not malloc.
///
/// The phase breakdown builds and erases one million operations in
/// 100k-op batches: a def-use chain (each op consumes the previous op's
/// result) appended to a block, then torn down back-to-front.

#include "PerfHarness.h"

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/OpArena.h"
#include "ir/Region.h"

#include <benchmark/benchmark.h>

using namespace irdl;

namespace {

struct BenchOps {
  OpDefinition *Produce;
  OpDefinition *Consume;
};

BenchOps registerBenchDialect(IRContext &Ctx) {
  Dialect *D = Ctx.getOrCreateDialect("bench");
  OpDefinition *Produce = D->lookupOp("produce");
  if (!Produce)
    Produce = D->addOp("produce");
  OpDefinition *Consume = D->lookupOp("consume");
  if (!Consume)
    Consume = D->addOp("consume");
  return {Produce, Consume};
}

/// Appends a def-use chain of \p N ops to \p B: one producer, then
/// consumers that each feed on the previous op's result.
void buildChain(IRContext &Ctx, BenchOps Ops, Block &B, unsigned N) {
  Type F32 = Ctx.getFloatType(32);
  OperationState Seed(Ctx, Ops.Produce);
  Seed.ResultTypes = {F32};
  Operation *Prev = Operation::create(Seed);
  B.push_back(Prev);
  for (unsigned I = 1; I != N; ++I) {
    OperationState S(Ctx, Ops.Consume);
    S.Operands = {Prev->getResult(0)};
    S.ResultTypes = {F32};
    Prev = Operation::create(S);
    B.push_back(Prev);
  }
}

/// Erases the chain back-to-front (uses die before their defs).
void eraseChain(Block &B) {
  while (!B.empty())
    B.back().erase();
}

void BM_CreateErase_NoOperands(benchmark::State &State) {
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  Type F32 = Ctx.getFloatType(32);
  for (auto _ : State) {
    OperationState S(Ctx, Ops.Produce);
    S.ResultTypes = {F32};
    Operation *Op = Operation::create(S);
    benchmark::DoNotOptimize(Op);
    Op->destroy();
  }
}
BENCHMARK(BM_CreateErase_NoOperands);

void BM_CreateErase_Operands(benchmark::State &State) {
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  Type F32 = Ctx.getFloatType(32);
  OperationState Seed(Ctx, Ops.Produce);
  Seed.ResultTypes = {F32};
  Operation *Def = Operation::create(Seed);
  unsigned NumOperands = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    OperationState S(Ctx, Ops.Consume);
    S.Operands.assign(NumOperands, Def->getResult(0));
    S.ResultTypes = {F32};
    Operation *Op = Operation::create(S);
    benchmark::DoNotOptimize(Op);
    Op->destroy();
  }
  Def->destroy();
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CreateErase_Operands)->Arg(1)->Arg(4)->Arg(16);

void BM_BuildEraseChain(benchmark::State &State) {
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    Block B;
    buildChain(Ctx, Ops, B, N);
    eraseChain(B);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BuildEraseChain)->Arg(1000)->Arg(100000);

/// Phase breakdown: one million ops built and erased in 100k-op batches.
/// The batches reuse one context, so every batch after the first is
/// served from the arena free lists — the steady state of a rewrite
/// driver churning ops.
void runPhaseBreakdown() {
  constexpr unsigned BatchSize = 100000;
  constexpr unsigned NumBatches = 10;
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  PhaseSampler BuildSampler("construct-100k-ops");
  PhaseSampler EraseSampler("erase-100k-ops");
  {
    IRDL_TIME_SCOPE("construct-erase-1m-ops");
    for (unsigned Batch = 0; Batch != NumBatches; ++Batch) {
      Block B;
      BuildSampler.sample([&] { buildChain(Ctx, Ops, B, BatchSize); });
      EraseSampler.sample([&] { eraseChain(B); });
    }
  }
  OpArenaStats Stats = Ctx.getOpArena().getStats();
  benchmark::DoNotOptimize(Stats.NumAllocs);
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_ir_construction", runPhaseBreakdown);
}
