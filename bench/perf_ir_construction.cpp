//===- perf_ir_construction.cpp - Op create/erase throughput ------------===//
///
/// Measures the cost the trailing-object arena refactor targets directly:
/// building and tearing down IR. One Operation::create is one arena
/// allocation (operands, results, successors, and region headers ride in
/// the op's block), one Block::create is one arena allocation (block
/// arguments ride inline), and erase() recycles storage through a
/// size-class free list — so this bench is dominated by layout computation
/// and use-list linking, not malloc.
///
/// The phase breakdown builds and erases one million operations in
/// 100k-op batches (a def-use chain appended to a block, torn down
/// back-to-front), then exercises the block-side allocator: a 100k-block
/// deep CFG built and torn down, block-argument-heavy create/erase
/// batches, and splitBefore churn over a long op chain.

#include "PerfHarness.h"

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/OpArena.h"
#include "ir/Region.h"

#include <benchmark/benchmark.h>

#include <iterator>
#include <optional>

using namespace irdl;

namespace {

struct BenchOps {
  OpDefinition *Produce;
  OpDefinition *Consume;
  OpDefinition *Br;
};

BenchOps registerBenchDialect(IRContext &Ctx) {
  Dialect *D = Ctx.getOrCreateDialect("bench");
  OpDefinition *Produce = D->lookupOp("produce");
  if (!Produce)
    Produce = D->addOp("produce");
  OpDefinition *Consume = D->lookupOp("consume");
  if (!Consume)
    Consume = D->addOp("consume");
  OpDefinition *Br = Ctx.lookupDialect("std")->lookupOp("br");
  return {Produce, Consume, Br};
}

/// Appends a def-use chain of \p N ops to \p B: one producer, then
/// consumers that each feed on the previous op's result.
void buildChain(IRContext &Ctx, BenchOps Ops, Block &B, unsigned N) {
  Type F32 = Ctx.getFloatType(32);
  OperationState Seed(Ctx, Ops.Produce);
  Seed.ResultTypes = {F32};
  Operation *Prev = Operation::create(Seed);
  B.push_back(Prev);
  for (unsigned I = 1; I != N; ++I) {
    OperationState S(Ctx, Ops.Consume);
    S.Operands = {Prev->getResult(0)};
    S.ResultTypes = {F32};
    Prev = Operation::create(S);
    B.push_back(Prev);
  }
}

/// Erases the chain back-to-front (uses die before their defs).
void eraseChain(Block &B) {
  while (!B.empty())
    B.back().erase();
}

void BM_CreateErase_NoOperands(benchmark::State &State) {
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  Type F32 = Ctx.getFloatType(32);
  for (auto _ : State) {
    OperationState S(Ctx, Ops.Produce);
    S.ResultTypes = {F32};
    Operation *Op = Operation::create(S);
    benchmark::DoNotOptimize(Op);
    Op->destroy();
  }
}
BENCHMARK(BM_CreateErase_NoOperands);

void BM_CreateErase_Operands(benchmark::State &State) {
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  Type F32 = Ctx.getFloatType(32);
  OperationState Seed(Ctx, Ops.Produce);
  Seed.ResultTypes = {F32};
  Operation *Def = Operation::create(Seed);
  unsigned NumOperands = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    OperationState S(Ctx, Ops.Consume);
    S.Operands.assign(NumOperands, Def->getResult(0));
    S.ResultTypes = {F32};
    Operation *Op = Operation::create(S);
    benchmark::DoNotOptimize(Op);
    Op->destroy();
  }
  Def->destroy();
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CreateErase_Operands)->Arg(1)->Arg(4)->Arg(16);

void BM_BuildEraseChain(benchmark::State &State) {
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    Block *B = Block::create(Ctx);
    buildChain(Ctx, Ops, *B, N);
    eraseChain(*B);
    B->destroy();
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_BuildEraseChain)->Arg(1000)->Arg(100000);

void BM_BlockCreateErase(benchmark::State &State) {
  IRContext Ctx;
  registerBenchDialect(Ctx);
  Type F32 = Ctx.getFloatType(32);
  unsigned NumArgs = static_cast<unsigned>(State.range(0));
  std::vector<Type> ArgTypes(NumArgs, F32);
  for (auto _ : State) {
    Block *B = Block::create(Ctx, ArgTypes);
    benchmark::DoNotOptimize(B);
    B->destroy();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_BlockCreateErase)->Arg(0)->Arg(4)->Arg(16);

/// Phase breakdown, part 1: one million ops built and erased in 100k-op
/// batches. The batches reuse one context, so every batch after the first
/// is served from the arena free lists — the steady state of a rewrite
/// driver churning ops.
void runOpPhases(IRContext &Ctx, BenchOps Ops) {
  constexpr unsigned BatchSize = 100000;
  constexpr unsigned NumBatches = 10;
  PhaseSampler BuildSampler("construct-100k-ops");
  PhaseSampler EraseSampler("erase-100k-ops");
  {
    IRDL_TIME_SCOPE("construct-erase-1m-ops");
    for (unsigned Batch = 0; Batch != NumBatches; ++Batch) {
      Block *B = Block::create(Ctx);
      BuildSampler.sample([&] { buildChain(Ctx, Ops, *B, BatchSize); });
      EraseSampler.sample([&] {
        eraseChain(*B);
        B->destroy();
      });
    }
  }
}

/// Phase breakdown, part 2: a deep CFG — 100k blocks in one region, each
/// ending in a branch to the next — built and torn down NumBatches times.
/// Teardown goes through Region's intrusive list, i.e. the same arena
/// free path the owning op's destructor uses.
void runDeepCfgPhases(IRContext &Ctx, BenchOps Ops) {
  constexpr unsigned NumBlocks = 100000;
  constexpr unsigned NumBatches = 5;
  PhaseSampler BuildSampler("construct-100k-blocks");
  PhaseSampler EraseSampler("erase-100k-blocks");
  {
    IRDL_TIME_SCOPE("deep-cfg-100k-blocks");
    for (unsigned Batch = 0; Batch != NumBatches; ++Batch) {
      std::optional<Region> R(Ctx);
      BuildSampler.sample([&] {
        std::vector<Block *> Blocks;
        Blocks.reserve(NumBlocks);
        for (unsigned I = 0; I != NumBlocks; ++I)
          Blocks.push_back(&R->emplaceBlock());
        for (unsigned I = 0; I + 1 != NumBlocks; ++I) {
          OperationState S(Ctx, Ops.Br);
          S.addSuccessor(Blocks[I + 1]);
          Blocks[I]->push_back(Operation::create(S));
        }
      });
      EraseSampler.sample([&] { R.reset(); });
    }
  }
}

/// Phase breakdown, part 3: block-argument-heavy create/erase. Each block
/// gets eight arguments consumed by an op in its body, then the whole
/// thing is erased — stressing inline argument storage, use-list linking
/// against arguments, and mid-list eraseArgument transplants.
void runBlockArgPhases(IRContext &Ctx, BenchOps Ops) {
  constexpr unsigned NumBlocks = 20000;
  constexpr unsigned NumArgs = 8;
  constexpr unsigned NumBatches = 5;
  Type F32 = Ctx.getFloatType(32);
  std::vector<Type> ArgTypes(NumArgs, F32);
  PhaseSampler Sampler("blockarg-churn");
  {
    IRDL_TIME_SCOPE("blockarg-churn-total");
    for (unsigned Batch = 0; Batch != NumBatches; ++Batch) {
      Sampler.sample([&] {
        for (unsigned I = 0; I != NumBlocks; ++I) {
          Block *B = Block::create(Ctx, ArgTypes);
          OperationState S(Ctx, Ops.Consume);
          // Hold every argument but the middle one, so eraseArgument
          // removes an unused slot while the survivors behind it (which
          // do have uses) take the transplant-and-retarget path.
          for (unsigned A = 0; A != NumArgs; ++A)
            if (A != NumArgs / 2)
              S.Operands.push_back(B->getArgument(A));
          B->push_back(Operation::create(S));
          B->eraseArgument(NumArgs / 2);
          B->clear(); // drop the consumer first
          B->destroy();
        }
      });
    }
  }
}

/// Phase breakdown, part 4: splitBefore churn. A long op chain is split
/// into 1000-op blocks, then the region is torn down — the hot path of a
/// CFG-canonicalisation pass.
void runSplitPhases(IRContext &Ctx, BenchOps Ops) {
  constexpr unsigned ChainLen = 100000;
  constexpr unsigned SplitEvery = 1000;
  constexpr unsigned NumBatches = 5;
  PhaseSampler Sampler("splitbefore-churn");
  {
    IRDL_TIME_SCOPE("splitbefore-churn-total");
    for (unsigned Batch = 0; Batch != NumBatches; ++Batch) {
      std::optional<Region> R(Ctx);
      Block *B = &R->emplaceBlock();
      buildChain(Ctx, Ops, *B, ChainLen);
      Sampler.sample([&] {
        Block *Cur = B;
        while (Cur->getNumOps() > SplitEvery) {
          auto Pos = Cur->begin();
          std::advance(Pos, SplitEvery);
          Cur = Cur->splitBefore(Pos);
        }
      });
      // Ops in later blocks use results from earlier blocks; drop the
      // references before the region teardown frees blocks front-to-back.
      R->dropAllReferences();
      R.reset();
    }
  }
}

void runPhaseBreakdown() {
  IRContext Ctx;
  BenchOps Ops = registerBenchDialect(Ctx);
  runOpPhases(Ctx, Ops);
  runDeepCfgPhases(Ctx, Ops);
  runBlockArgPhases(Ctx, Ops);
  runSplitPhases(Ctx, Ops);
  OpArenaStats Stats = Ctx.getOpArena().getStats();
  benchmark::DoNotOptimize(Stats.NumAllocs);
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_ir_construction", runPhaseBreakdown);
}
