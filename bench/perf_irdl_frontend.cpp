//===- perf_irdl_frontend.cpp - IRDL frontend microbenchmarks -----------===//
///
/// Measures the cost of the Section 3 flow: parsing IRDL text, full
/// dialect loading (sema + verifier compilation + registration), and
/// synthesizing/loading the whole 28-dialect corpus.

#include "PerfHarness.h"

#include "analysis/DialectStatistics.h"
#include "corpus/Corpus.h"
#include "irdl/IRDLParser.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

using namespace irdl;

namespace {

std::string readCmath() {
  std::ifstream In(std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl");
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void BM_ParseIRDL_Cmath(benchmark::State &State) {
  std::string Source = readCmath();
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Ast = parseIRDL(Source, Diags);
    benchmark::DoNotOptimize(Ast);
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ParseIRDL_Cmath);

void BM_LoadDialect_Cmath(benchmark::State &State) {
  std::string Source = readCmath();
  for (auto _ : State) {
    IRContext Ctx;
    SourceMgr SrcMgr;
    DiagnosticEngine Diags(&SrcMgr);
    auto Module = loadIRDL(Ctx, Source, SrcMgr, Diags);
    benchmark::DoNotOptimize(Module);
  }
}
BENCHMARK(BM_LoadDialect_Cmath);

void BM_SynthesizeCorpus(benchmark::State &State) {
  for (auto _ : State) {
    std::string Text = synthesizeCorpusIRDL();
    benchmark::DoNotOptimize(Text);
  }
}
BENCHMARK(BM_SynthesizeCorpus);

void BM_LoadCorpus_28Dialects_942Ops(benchmark::State &State) {
  std::string Text = synthesizeCorpusIRDL();
  for (auto _ : State) {
    IRContext Ctx;
    SourceMgr SrcMgr;
    DiagnosticEngine Diags(&SrcMgr);
    auto Module =
        loadIRDL(Ctx, Text, SrcMgr, Diags, corpusNativeOptions());
    benchmark::DoNotOptimize(Module);
  }
  State.SetBytesProcessed(State.iterations() * Text.size());
}
BENCHMARK(BM_LoadCorpus_28Dialects_942Ops)->Unit(benchmark::kMillisecond);

void BM_AnalyzeCorpus(benchmark::State &State) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  for (auto _ : State) {
    CorpusStatistics Stats =
        CorpusStatistics::compute(Corpus.AnalysisDialects);
    benchmark::DoNotOptimize(Stats.totalOps());
  }
}
BENCHMARK(BM_AnalyzeCorpus);

/// Phase breakdown (PerfHarness.h): the full frontend flow under named
/// timing scopes; the library's own irdl-frontend scopes nest inside.
void runPhaseBreakdown() {
  std::string Source = readCmath();
  {
    IRDL_TIME_SCOPE("parse-irdl-x100");
    for (int I = 0; I != 100; ++I) {
      DiagnosticEngine Diags;
      auto Ast = parseIRDL(Source, Diags);
      benchmark::DoNotOptimize(Ast);
    }
  }
  {
    IRDL_TIME_SCOPE("load-dialect-x100");
    for (int I = 0; I != 100; ++I) {
      IRContext Ctx;
      SourceMgr SrcMgr;
      DiagnosticEngine Diags(&SrcMgr);
      auto Module = loadIRDL(Ctx, Source, SrcMgr, Diags);
      benchmark::DoNotOptimize(Module);
    }
  }
  std::string Corpus;
  {
    IRDL_TIME_SCOPE("synthesize-corpus");
    Corpus = synthesizeCorpusIRDL();
  }
  {
    IRDL_TIME_SCOPE("load-corpus-x3");
    for (int I = 0; I != 3; ++I) {
      IRContext Ctx;
      SourceMgr SrcMgr;
      DiagnosticEngine Diags(&SrcMgr);
      auto Module =
          loadIRDL(Ctx, Corpus, SrcMgr, Diags, corpusNativeOptions());
      benchmark::DoNotOptimize(Module);
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  return runPerfMain(argc, argv, "perf_irdl_frontend", runPhaseBreakdown);
}
