#!/usr/bin/env python3
"""CI smoke gate for irdl_serve (stdlib only).

Boots a real ``irdl_serve`` process on a scratch unix socket, speaks the
framed protocol from docs/serving.md against it, and fails when the
service misbehaves:

* PING answers Ok (with connect retries while the server boots);
* LOAD_DIALECT accepts every ``dialects/*.irdl`` file and bumps the
  epoch each time;
* VERIFY of a known-good module answers Ok with an empty payload, and a
  known-bad module answers Fail with rendered diagnostics that carry the
  buffer name and the ``IR failed to verify before the pipeline`` tag
  irdl_opt prints for the same input;
* RELOAD_DIALECT of a byte-identical spec is deduplicated by the
  content-hash cache: it answers Ok with the *unchanged* epoch number
  and bumps ``irdl_serve_spec_cache_hits``;
* METRICS returns a well-formed Prometheus exposition (every sample line
  belongs to a ``# TYPE``-declared family) whose
  ``irdl_serve_requests_total`` counters are nonzero and whose
  ``irdl_serve_spec_cache_hits`` counter is nonzero after the
  duplicate reload;
* SHUTDOWN makes the server exit 0 and remove its socket file.

With ``--bench-json FILE`` (a ``perf_serve --json`` summary) it also
gates the headline claim: warm served verify p50 must beat the cold
irdl_opt-equivalent pipeline p50.

Usage: check_serve.py SERVE_BINARY [--dialect-dir DIR] [--bench-json FILE]
"""

import glob
import json
import os
import socket
import struct
import subprocess
import sys
import tempfile
import time

# Frame types (src/server/Protocol.h).
VERIFY, LOAD_DIALECT, RELOAD_DIALECT, METRICS, SHUTDOWN, PING = \
    1, 5, 6, 7, 8, 9
OK, FAIL, PROTOCOL_ERROR = 0, 1, 2

GOOD_MODULE = (
    'std.func @good(%c: !cmath.complex<f32>) -> f32 {\n'
    '  %r = "cmath.norm"(%c) : (!cmath.complex<f32>) -> f32\n'
    '  std.return %r : f32\n'
    '}\n'
)
BAD_MODULE = (
    'std.func @bad(%c: f32) -> f32 {\n'
    '  %r = "cmath.norm"(%c) : (f32) -> f32\n'
    '  std.return %r : f32\n'
    '}\n'
)


def send_frame(sock, frame_type, payload):
    sock.sendall(struct.pack("<BI", frame_type, len(payload)) + payload)


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("server closed the connection")
        buf += chunk
    return buf


def recv_frame(sock):
    status, length = struct.unpack("<BI", recv_exact(sock, 5))
    return status, recv_exact(sock, length)


def named_payload(name, content):
    name = name.encode()
    if isinstance(content, str):
        content = content.encode()
    return struct.pack("<H", len(name)) + name + content


def request(sock, frame_type, payload=b""):
    send_frame(sock, frame_type, payload)
    return recv_frame(sock)


def connect_with_retry(path, deadline_s=10.0):
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def check_prometheus(text):
    """Every sample line must belong to a declared family; returns the
    parsed samples as {series: value}."""
    declared = set()
    samples = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram"):
                raise AssertionError(f"malformed TYPE line: {line!r}")
            declared.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if not series:
            raise AssertionError(f"malformed sample line: {line!r}")
        family = series.split("{", 1)[0]
        base = family
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix):
                base = family[: -len(suffix)]
                break
        if family not in declared and base not in declared:
            raise AssertionError(
                f"sample {series!r} has no # TYPE declaration")
        samples[series] = float(value)
    if not declared:
        raise AssertionError("no # TYPE lines in the exposition")
    return samples


def check_bench_json(path):
    with open(path) as f:
        summary = json.load(f)
    p50 = {}
    for hist in summary.get("metrics", {}).get("histograms", []):
        if hist["name"] != "bench_phase_duration_ns":
            continue
        p50[hist.get("labels", {}).get("phase", "")] = hist["p50"]
    warm = p50.get("serve-warm-verify")
    cold = p50.get("cold-oneshot-verify")
    if warm is None or cold is None:
        raise AssertionError(
            f"{path} is missing warm/cold phase histograms (got {sorted(p50)})")
    print(f"warm served verify p50: {warm / 1e6:.3f} ms")
    print(f"cold pipeline p50:      {cold / 1e6:.3f} ms")
    if warm >= cold:
        raise AssertionError(
            "warm served verify p50 is not faster than the cold pipeline")


def main(argv):
    args = argv[1:]
    bench_json = None
    dialect_dir = "dialects"
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--bench-json":
            bench_json = args[i + 1]
            i += 2
        elif args[i] == "--dialect-dir":
            dialect_dir = args[i + 1]
            i += 2
        else:
            positional.append(args[i])
            i += 1
    if len(positional) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    serve_binary = positional[0]

    dialects = sorted(glob.glob(os.path.join(dialect_dir, "*.irdl")))
    if not dialects:
        print(f"error: no .irdl files under {dialect_dir}", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="irdl_serve_smoke.") as tmp:
        sock_path = os.path.join(tmp, "serve.sock")
        metrics_json = os.path.join(tmp, "metrics.json")
        proc = subprocess.Popen(
            [serve_binary, f"--socket={sock_path}",
             f"--metrics-json={metrics_json}"])
        try:
            sock = connect_with_retry(sock_path)

            status, payload = request(sock, PING)
            assert status == OK and payload == b"", \
                f"PING: status={status} payload={payload!r}"
            print("PING ok")

            epoch = 1
            for path in dialects:
                with open(path, "rb") as f:
                    source = f.read()
                status, payload = request(
                    sock, LOAD_DIALECT,
                    named_payload(os.path.basename(path), source))
                assert status == OK, \
                    f"LOAD_DIALECT {path}: {payload.decode()}"
                epoch += 1
                assert payload == str(epoch).encode(), \
                    f"LOAD_DIALECT {path}: epoch {payload!r} != {epoch}"
                print(f"LOAD_DIALECT {os.path.basename(path)} -> "
                      f"epoch {epoch}")

            status, payload = request(
                sock, VERIFY, named_payload("good.mlir", GOOD_MODULE))
            assert status == OK and payload == b"", \
                f"good VERIFY: status={status} payload={payload.decode()}"
            print("VERIFY good.mlir ok (empty diagnostics)")

            status, payload = request(
                sock, VERIFY, named_payload("bad.mlir", BAD_MODULE))
            diag = payload.decode()
            assert status == FAIL, f"bad VERIFY unexpectedly {status}"
            assert "bad.mlir:2:" in diag and \
                "IR failed to verify before the pipeline" in diag, \
                f"bad VERIFY diagnostics look wrong:\n{diag}"
            print("VERIFY bad.mlir failed with rendered diagnostics")

            # Re-send the last dialect byte-for-byte: the content-hash
            # cache must dedup it — Ok, epoch unchanged, hit counted.
            with open(dialects[-1], "rb") as f:
                source = f.read()
            status, payload = request(
                sock, RELOAD_DIALECT,
                named_payload(os.path.basename(dialects[-1]), source))
            assert status == OK, \
                f"duplicate RELOAD_DIALECT: {payload.decode()}"
            assert payload == str(epoch).encode(), \
                f"duplicate RELOAD_DIALECT bumped the epoch: " \
                f"{payload!r} != {epoch}"
            print(f"duplicate RELOAD_DIALECT {os.path.basename(dialects[-1])} "
                  f"deduplicated (epoch stays {epoch})")

            status, payload = request(sock, METRICS)
            assert status == OK, "METRICS failed"
            samples = check_prometheus(payload.decode())
            served = sum(
                v for k, v in samples.items()
                if k.startswith("irdl_serve_requests_total"))
            assert served > 0, "irdl_serve_requests_total is zero"
            cache_hits = sum(
                v for k, v in samples.items()
                if k.startswith("irdl_serve_spec_cache_hits"))
            assert cache_hits > 0, \
                "irdl_serve_spec_cache_hits is zero after a duplicate reload"
            print(f"METRICS well-formed ({len(samples)} samples, "
                  f"{int(served)} requests served, "
                  f"{int(cache_hits)} spec cache hits)")

            status, payload = request(sock, SHUTDOWN)
            assert status == OK, "SHUTDOWN failed"
            sock.close()
            code = proc.wait(timeout=10)
            assert code == 0, f"server exited {code}"
            assert not os.path.exists(sock_path), \
                "socket file survived shutdown"
            assert os.path.exists(metrics_json), \
                "--metrics-json artifact was not written"
            print("SHUTDOWN clean (exit 0, socket unlinked, "
                  "metrics flushed)")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    if bench_json:
        check_bench_json(bench_json)
    print("check_serve: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
