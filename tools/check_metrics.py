#!/usr/bin/env python3
"""CI guard for the runtime metrics subsystem (stdlib only).

Reads a ``--metrics-json`` file (from ``irdl_opt`` or any PerfHarness
bench; either the bare registry object or a ``--json`` summary with a
``metrics`` key) and fails when the instrumentation looks dead:

* the memo-cache hit counter ``irdl_constraint_memo_hits_total`` must be
  nonzero — on any large workload the memoized verification cache is the
  reason repeated verification is cheap, so a zero here means either the
  cache or its instrumentation silently broke;
* the arena counters ``ir_arena_slabs_allocated_total`` and
  ``ir_arena_bytes_allocated_total`` must be nonzero — every
  Operation::create and Block::create goes through the per-context
  OpArena, so any workload that builds IR (in particular one parsing a
  region-bearing dialect, where blocks and block arguments are arena
  storage too) reserves at least one slab and serves bytes from it; a
  zero means IR storage stopped flowing through the arena (or its
  gauges went dark);
* every histogram with samples must satisfy p50 <= p90 <= p99 <= max,
  i.e. the shard merge and quantile estimator are self-consistent.

The remaining series (dispatch hits/rejects, verifier latency, reader
throughput, thread-pool counters) are printed for the log but never fail
the job: workloads legitimately skip some of them (e.g. a single-thread
run never touches the pool).

Usage: check_metrics.py METRICS.json [--no-require-memo-hits]
                                     [--no-require-arena]
"""

import json
import sys

MEMO_HITS = "irdl_constraint_memo_hits_total"
ARENA_SLABS = "ir_arena_slabs_allocated_total"
ARENA_BYTES = "ir_arena_bytes_allocated_total"


def series_key(entry):
    labels = dict(entry.get("labels", {}))
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return entry["name"] + (f"{{{inner}}}" if inner else "")


def main(argv):
    require_memo = "--no-require-memo-hits" not in argv
    require_arena = "--no-require-arena" not in argv
    paths = [a for a in argv[1:] if not a.startswith("--")]
    if len(paths) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(paths[0]) as f:
        data = json.load(f)
    metrics = data.get("metrics", data)  # bare registry or --json summary

    counters = {series_key(c): c["value"] for c in metrics.get("counters", [])}
    failed = False

    print("counters:")
    for key, value in sorted(counters.items()):
        print(f"  {value:12d}  {key}")
    memo_hits = sum(v for k, v in counters.items() if k.startswith(MEMO_HITS))
    if require_memo and memo_hits == 0:
        print(f"\nerror: {MEMO_HITS} is zero in {paths[0]} — the memo "
              "cache (or its instrumentation) is not firing on a workload "
              "that must exercise it", file=sys.stderr)
        failed = True
    for name, what in ((ARENA_SLABS, "reserves arena slabs"),
                       (ARENA_BYTES, "serves bytes from the arena")):
        total = sum(v for k, v in counters.items() if k.startswith(name))
        if require_arena and total == 0:
            print(f"\nerror: {name} is zero in {paths[0]} — every "
                  f"Operation::create and Block::create {what}, so a "
                  "workload that builds IR with metrics on must light "
                  "this up", file=sys.stderr)
            failed = True

    print("histograms:")
    for hist in sorted(metrics.get("histograms", []), key=series_key):
        count = hist.get("count", 0)
        if not count:
            continue
        p50, p90, p99 = hist["p50"], hist["p90"], hist["p99"]
        hi = hist.get("max", 0)
        ordered = p50 <= p90 <= p99
        print(f"  {series_key(hist)}: count={count} "
              f"p50={p50} p90={p90} p99={p99} max={hi}"
              f"{'' if ordered else '  MISORDERED'}")
        if not ordered:
            print(f"\nerror: percentiles out of order in {series_key(hist)}",
                  file=sys.stderr)
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
