#!/usr/bin/env python3
"""CI guard for the v2 bytecode fast paths (stdlib only).

Reads the ``--json`` output of ``perf_bytecode`` (the
``BENCH_perf_bytecode.json`` artifact from the bench-smoke step) and
fails unless the two v2 loading shortcuts hold their promised shape:

 1. **mmap beats the frontend**: loading dialect specs (with their
    compiled constraint programs) from a memory-mapped ``.irbc`` must be
    faster than running the textual IRDL frontend on the same specs
    (``spec-mmap-load`` vs ``spec-frontend``).

 2. **a second load is a cache hit**: re-"loading" an already registered
    spec through the content-hash cache must cost only a hash plus one
    probe — at least 3x faster than a full bytecode spec load and at
    least 8x faster than the frontend (``spec-cache-hit`` vs
    ``spec-bytecode`` / ``spec-frontend``).

Comparisons use the exact per-iteration **mean** (histogram sum/count)
rather than p50: the metrics histograms bucket at powers of two, so
phases 20%% apart can report the identical quantized p50 and a strict
"<" on p50 would be vacuous. The quantized p50s are printed alongside
for the log.

Usage: check_bytecode.py BENCH_perf_bytecode.json
"""

import json
import sys

PHASES = ("spec-frontend", "spec-bytecode", "spec-mmap-load", "spec-cache-hit")
CACHE_VS_BYTECODE_MIN_SPEEDUP = 3.0
CACHE_VS_FRONTEND_MIN_SPEEDUP = 8.0


def collect_phases(metrics):
    """Collects phase -> {mean_ms, p50_ms, count} from the PhaseSampler
    bench_phase_duration_ns histograms."""
    phases = {}
    for hist in (metrics or {}).get("histograms", []):
        if hist.get("name") != "bench_phase_duration_ns":
            continue
        phase = dict(hist.get("labels", {})).get("phase", "")
        count = hist.get("count", 0)
        if phase not in PHASES or not count:
            continue
        phases[phase] = {
            "mean_ms": hist["sum"] / count / 1e6,
            "p50_ms": hist.get("p50", 0) / 1e6,
            "count": count,
        }
    return phases


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(argv[1]) as f:
        data = json.load(f)

    phases = collect_phases(data.get("metrics"))
    missing = [p for p in PHASES if p not in phases]
    if missing:
        print(f"error: phases missing from {argv[1]}: {missing} "
              f"(found: {sorted(phases)})", file=sys.stderr)
        return 2

    for name in PHASES:
        p = phases[name]
        print(f"{name:16} mean={p['mean_ms']:9.3f}ms "
              f"p50={p['p50_ms']:9.3f}ms n={p['count']}")

    frontend = phases["spec-frontend"]["mean_ms"]
    bytecode = phases["spec-bytecode"]["mean_ms"]
    mmap = phases["spec-mmap-load"]["mean_ms"]
    cache = phases["spec-cache-hit"]["mean_ms"]

    failures = []
    if not mmap < frontend:
        failures.append(
            f"mmap'd spec load ({mmap:.3f}ms) is not faster than the "
            f"IRDL frontend ({frontend:.3f}ms)")
    if not cache * CACHE_VS_BYTECODE_MIN_SPEEDUP <= bytecode:
        failures.append(
            f"cache hit ({cache:.3f}ms) is not "
            f"{CACHE_VS_BYTECODE_MIN_SPEEDUP:.0f}x faster than a bytecode "
            f"spec load ({bytecode:.3f}ms)")
    if not cache * CACHE_VS_FRONTEND_MIN_SPEEDUP <= frontend:
        failures.append(
            f"cache hit ({cache:.3f}ms) is not "
            f"{CACHE_VS_FRONTEND_MIN_SPEEDUP:.0f}x faster than the IRDL "
            f"frontend ({frontend:.3f}ms)")

    print(f"\nmmap vs frontend : {frontend / mmap:5.2f}x")
    print(f"cache vs bytecode: {bytecode / cache:5.2f}x "
          f"(need >= {CACHE_VS_BYTECODE_MIN_SPEEDUP:.0f}x)")
    print(f"cache vs frontend: {frontend / cache:5.2f}x "
          f"(need >= {CACHE_VS_FRONTEND_MIN_SPEEDUP:.0f}x)")

    if failures:
        for f_ in failures:
            print(f"\nerror: {f_}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
