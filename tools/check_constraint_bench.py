#!/usr/bin/env python3
"""CI guard for the compiled constraint engine (stdlib only).

Reads the ``--json`` output of ``perf_constraints`` (the
``BENCH_perf_constraints.json`` artifact from the bench-smoke step) and
fails when the compiled engine is not faster than the tree interpreter
on the ``large`` workload. The phase breakdown emits paired
``<workload>-interpreted`` / ``<workload>-compiled`` timing nodes; this
script keys on those names.

When the summary carries ``bench_phase_duration_ns`` histograms (the
PhaseSampler per-iteration samples), the comparison prefers each
engine's **p50** over the timing tree's wall-clock mean: the median is
robust against one preempted iteration skewing a 500-iteration run on a
noisy shared runner. Old artifacts without the histograms fall back to
wall_ms.

Only the ``large`` pair gates CI: it is the dispatch-table sweet spot
(64 distinct definitions, 500 repetitions), big enough that a genuine
engine regression dominates runner noise. The smaller pairs are printed
for the log but never fail the job.

Usage: check_constraint_bench.py BENCH_perf_constraints.json
"""

import json
import sys

GATED_WORKLOAD = "large"


def collect_pairs(node, pairs):
    """Walks the timing tree collecting <workload> -> {engine: wall_ms}."""
    name = node.get("name", "")
    for suffix, engine in (("-interpreted", "interpreted"), ("-compiled", "compiled")):
        if name.endswith(suffix):
            workload = name[: -len(suffix)]
            pairs.setdefault(workload, {})[engine] = node["wall_ms"]
    for child in node.get("children", []):
        collect_pairs(child, pairs)


def collect_p50_pairs(metrics):
    """Collects <workload> -> {engine: p50_ms} from the PhaseSampler
    bench_phase_duration_ns histograms, when present."""
    pairs = {}
    for hist in (metrics or {}).get("histograms", []):
        if hist.get("name") != "bench_phase_duration_ns":
            continue
        phase = dict(hist.get("labels", {})).get("phase", "")
        if not hist.get("count"):
            continue
        for suffix, engine in (("-interpreted", "interpreted"),
                               ("-compiled", "compiled")):
            if phase.endswith(suffix):
                workload = phase[: -len(suffix)]
                pairs.setdefault(workload, {})[engine] = hist["p50"] / 1e6
    return pairs


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    with open(argv[1]) as f:
        data = json.load(f)

    timing = data.get("timing")
    if not timing:
        # Timing scopes compile out under IRDL_ENABLE_TIMING=OFF; the CI
        # step is gated on timing=ON, so reaching here means the wrong
        # artifact was passed in.
        print(f"error: no timing data in {argv[1]} "
              "(built with IRDL_ENABLE_TIMING=OFF?)", file=sys.stderr)
        return 2

    pairs = {}
    collect_pairs(timing["tree"], pairs)
    p50_pairs = collect_p50_pairs(data.get("metrics"))

    complete = {w: p for w, p in sorted(pairs.items())
                if "interpreted" in p and "compiled" in p}
    if GATED_WORKLOAD not in complete:
        print(f"error: no {GATED_WORKLOAD}-interpreted/{GATED_WORKLOAD}-compiled "
              f"pair in {argv[1]}; found: {sorted(pairs)}", file=sys.stderr)
        return 2

    failed = False
    for workload, p in complete.items():
        p50 = p50_pairs.get(workload, {})
        if "interpreted" in p50 and "compiled" in p50:
            interp, compiled, basis = p50["interpreted"], p50["compiled"], "p50"
        else:
            interp, compiled, basis = p["interpreted"], p["compiled"], "wall"
        speedup = interp / compiled if compiled else float("inf")
        gated = workload == GATED_WORKLOAD
        ok = compiled < interp
        status = "ok" if ok else ("FAIL" if gated else "slow (not gated)")
        print(f"{workload:16} interpreted={interp:9.3f}ms "
              f"compiled={compiled:9.3f}ms speedup={speedup:5.2f}x "
              f"[{basis}]  {status}")
        if gated and not ok:
            failed = True

    if failed:
        print(f"\nerror: compiled engine is not faster than the tree "
              f"interpreter on the '{GATED_WORKLOAD}' workload", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
