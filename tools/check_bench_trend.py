#!/usr/bin/env python3
"""Bench-trajectory comparison between two bench-json artifacts (stdlib only).

Compares the ``BENCH_*.json`` files of a previous run (typically the
``bench-json-*`` artifact downloaded from the last run on main) against
the current run and emits a GitHub Actions ``::warning::`` annotation
for every phase whose p50 regressed by more than 25%%. Phases are the
``bench_phase_duration_ns`` histograms recorded by PhaseSampler, keyed
by their ``phase`` label; when a histogram is absent the phase's timing
tree ``wall_ms`` is used instead.

Most phases are advisory: the power-of-two histogram buckets quantize
p50 (a phase can jump one bucket, i.e. 2x, from a small true change)
and CI runners are noisy, so they emit ``::warning::`` annotations and
never block a merge. The BLOCKING_PHASES below are the exception — the
IR-construction hot paths the arena storage refactor is accountable
for (large-module verification in perf_verifier, the parse/print p50s
in perf_parse). Those come from PhaseSampler histograms with enough
per-iteration samples to ride out bucket quantization, and a >25% p50
regression on any of them exits 1 and fails the bench-trend job.
Exit 2 only for unusable input (missing dirs, no common phases).

Usage: check_bench_trend.py BASELINE_DIR CURRENT_DIR
"""

import fnmatch
import json
import os
import sys

REGRESSION_THRESHOLD = 0.25

# Phases (as bench/phase, fnmatch patterns) whose p50 regression is a
# hard failure rather than an annotation. Keep this list to phases
# backed by PhaseSampler histograms — timing-tree wall_ms entries are
# single-shot and too noisy to block on.
BLOCKING_PHASES = [
    "perf_verifier/large-module-verify-compiled-x30",
    "perf_verifier/large-module-verify-interpreted-x30",
    "perf_parse/parse-custom",
    "perf_parse/parse-generic",
    "perf_parse/parse-deep-region",
    "perf_parse/print-custom",
    "perf_ir_construction/construct-100k-ops",
    "perf_ir_construction/erase-100k-ops",
    "perf_ir_construction/construct-100k-blocks",
    "perf_ir_construction/erase-100k-blocks",
    "perf_ir_construction/blockarg-churn",
    "perf_ir_construction/splitbefore-churn",
]


def is_blocking(phase):
    return any(fnmatch.fnmatch(phase, pat) for pat in BLOCKING_PHASES)


def walk_tree(node, out, prefix=""):
    """Flattens a timing tree into {scope-path: wall_ms}."""
    name = prefix + node.get("name", "?")
    out[name] = node.get("wall_ms", 0.0)
    for child in node.get("children", []):
        walk_tree(child, out, name + "/")


def collect_file(path):
    """Collects {phase: p50_ms} from one BENCH_*.json, preferring exact
    PhaseSampler histograms over coarse timing-tree scopes."""
    with open(path) as f:
        data = json.load(f)

    phases = {}
    timing = data.get("timing") or {}
    for group in timing if isinstance(timing, list) else [timing]:
        tree = group.get("tree")
        if tree:
            walk_tree(tree, phases)
    for hist in (data.get("metrics") or {}).get("histograms", []):
        if hist.get("name") != "bench_phase_duration_ns":
            continue
        phase = dict(hist.get("labels", {})).get("phase", "")
        if phase and hist.get("count"):
            phases[phase] = hist.get("p50", 0) / 1e6
    return phases


def collect_dir(path):
    """Collects {bench/phase: p50_ms} over every BENCH_*.json in a dir.
    A single file is accepted too."""
    files = [path]
    if os.path.isdir(path):
        files = sorted(
            os.path.join(path, f) for f in os.listdir(path)
            if f.startswith("BENCH_") and f.endswith(".json"))
    phases = {}
    for f in files:
        bench = os.path.basename(f)[len("BENCH_"):-len(".json")]
        try:
            for phase, ms in collect_file(f).items():
                phases[f"{bench}/{phase}"] = ms
        except (OSError, ValueError) as e:
            print(f"note: skipping {f}: {e}", file=sys.stderr)
    return phases


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = collect_dir(argv[1])
    current = collect_dir(argv[2])
    common = sorted(set(baseline) & set(current))
    if not common:
        print(f"error: no common phases between {argv[1]} and {argv[2]}",
              file=sys.stderr)
        return 2

    regressed = 0
    blocking_failures = 0
    print(f"{'phase':48} {'baseline':>10} {'current':>10} {'delta':>8}")
    for phase in common:
        old, new = baseline[phase], current[phase]
        if old <= 0:
            continue
        delta = (new - old) / old
        gate = " [gated]" if is_blocking(phase) else ""
        print(f"{phase:48} {old:9.3f}ms {new:9.3f}ms {delta:+7.1%}{gate}")
        if delta > REGRESSION_THRESHOLD:
            regressed += 1
            if is_blocking(phase):
                blocking_failures += 1
                print(f"::error title=bench regression (blocking)::{phase} "
                      f"p50 {old:.3f}ms -> {new:.3f}ms ({delta:+.1%}, "
                      f"threshold +{REGRESSION_THRESHOLD:.0%})")
            else:
                print(f"::warning title=bench regression::{phase} p50 "
                      f"{old:.3f}ms -> {new:.3f}ms ({delta:+.1%}, threshold "
                      f"+{REGRESSION_THRESHOLD:.0%})")

    only_old = sorted(set(baseline) - set(current))
    only_new = sorted(set(current) - set(baseline))
    if only_old:
        print(f"note: phases gone since baseline: {only_old}")
    if only_new:
        print(f"note: new phases (no baseline): {only_new}")
    print(f"\n{len(common)} phases compared, {regressed} regressed "
          f"beyond +{REGRESSION_THRESHOLD:.0%} "
          f"({blocking_failures} on gated phases)")
    return 1 if blocking_failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
