#!/usr/bin/env python3
"""Generates src/corpus/CorpusData.inc — the per-dialect profile table of
the 28-dialect MLIR corpus the paper analyzes (commit 666accf2...).

The exact per-operation definitions of that commit are not available
offline; what the paper publishes are Table 1, per-dialect series (Figures
4-12), and corpus-level aggregates quoted in the text. This script authors
per-dialect integer tables whose *global* aggregates match the quoted
numbers exactly and whose per-dialect shapes follow the figures' orderings
and captions, then emits them as C++ data. The synthesizer in
src/corpus/Synthesizer.cpp turns these tables into genuine IRDL text that
the real frontend parses, verifies, and re-analyzes.

Run:  python3 tools/gen_corpus_data.py > src/corpus/CorpusData.inc
"""

# ---------------------------------------------------------------------------
# Dialect inventory (Table 1) with op counts following Figure 4's ordering.
# ---------------------------------------------------------------------------

DIALECTS = [
    # (name, description, ops)
    ("builtin", "MLIR's builtin intermediate representation", 3),
    ("arm_neon", "ARM's SIMD architecture extension", 3),
    ("emitc", "Printable C code", 5),
    ("sparse_tensor", "Sparse tensor computations", 7),
    ("linalg", "High-level linear algebra operations", 9),
    ("scf", "Structured control flow, e.g. 'for' and 'if'", 10),
    ("quant", "Quantization", 11),
    ("tensor", "Dense tensors computations", 12),
    ("affine", "Affine loops and memory operations", 13),
    ("amx", "Intel's advanced matrix instruction set", 13),
    ("pdl", "Rewrite pattern description language", 15),
    ("x86vector", "The Intel x86 vector instruction set", 17),
    ("complex", "Complex arithmetic", 18),
    ("math", "Scalar arithmetic beyond simple operations", 20),
    ("async", "Asynchronous execution", 22),
    ("nvvm", "LLVM's IR for GPU compute kernels", 26),
    ("memref", "Multi-dimensional memory references", 29),
    ("gpu", "GPU abstraction", 31),
    ("pdl_interp", "The IR for a PDL interpreter", 34),
    ("vector", "A generic vector abstraction", 38),
    ("arith", "Arithmetic operations on integers and floats", 42),
    ("rocdl", "AMD's IR for GPU compute kernels", 48),
    ("shape", "Shape inference", 52),
    ("arm_sve", "ARM's scalable vector instruction set", 56),
    ("std", "Non domain-specific operations", 68),
    ("tosa", "Tensor operator set architecture", 72),
    ("llvm", "LLVM's intermediate representation in MLIR", 123),
    ("spv", "Graphics shaders and compute kernels", 0),  # filled below
]

TOTAL_OPS = 942
rest = sum(n for _, _, n in DIALECTS)
DIALECTS[-1] = ("spv", "Graphics shaders and compute kernels",
                TOTAL_OPS - rest)
assert DIALECTS[-1][2] > 100, DIALECTS[-1]

NAMES = [d[0] for d in DIALECTS]
OPS = {d[0]: d[2] for d in DIALECTS}

# ---------------------------------------------------------------------------
# Global targets quoted in Section 6.2 (of 942 ops).
# ---------------------------------------------------------------------------

G_OPERANDS = [113, 386, 301, 142]       # 12% / 41% / 32% / 16% (0,1,2,3+)
G_VAR_OPERANDS = [782, 140, 20]         # 83% non-variadic; 17% with >=1
G_RESULTS = [151, 776, 15]              # 16% / 84(83)% / ~1%
G_VAR_RESULTS = [914, 28]               # 3% with a variadic result
G_ATTRS = [688, 151, 103]               # 73% / 16% / 11%
G_REGIONS = [904, 28, 10]               # 96% / ~4% / ~1%
G_CPP_VERIFIER = 283                    # 30% of ops
G_LOCAL_CPP = (19, 7, 2)                # Fig 12: inequality/stride/opacity

for target in (G_OPERANDS, G_VAR_OPERANDS, G_RESULTS, G_VAR_RESULTS,
               G_ATTRS, G_REGIONS):
    assert sum(target) == TOTAL_OPS, target

# ---------------------------------------------------------------------------
# Per-dialect biases: fraction of ops in the *last* bucket (or flags),
# reflecting the figures' per-dialect orderings and captions.
# ---------------------------------------------------------------------------

# Figure 5a top group: SIMD/matrix dialects define mostly 3+ operands.
OPERAND3_BIAS = {
    "amx": 0.85, "arm_neon": 0.67, "arm_sve": 0.55, "x86vector": 0.55,
    "vector": 0.40, "linalg": 0.44, "tensor": 0.33, "gpu": 0.30,
    "scf": 0.30, "memref": 0.24, "affine": 0.23, "pdl": 0.20,
    "llvm": 0.15, "tosa": 0.14, "spv": 0.12, "std": 0.12, "rocdl": 0.10,
    "math": 0.10, "nvvm": 0.08, "pdl_interp": 0.06, "arith": 0.02,
    "complex": 0.0, "shape": 0.02, "sparse_tensor": 0.0, "async": 0.05,
    "quant": 0.0, "emitc": 0.0, "builtin": 0.0,
}
ZERO_OPERAND_BIAS = {
    "builtin": 0.67, "emitc": 0.4, "quant": 0.2, "async": 0.2,
    "pdl": 0.2, "gpu": 0.2, "llvm": 0.15, "std": 0.15, "spv": 0.12,
    "nvvm": 0.2, "rocdl": 0.25, "pdl_interp": 0.1, "memref": 0.1,
    "arm_sve": 0.0, "amx": 0.0, "arm_neon": 0.0, "x86vector": 0.0,
    "math": 0.0, "arith": 0.02, "complex": 0.0, "tosa": 0.03,
    "shape": 0.1, "vector": 0.08, "affine": 0.1, "tensor": 0.08,
    "scf": 0.1, "linalg": 0.1, "sparse_tensor": 0.15,
}

# Figure 5b: share of ops with >=1 variadic operand def (79% of dialects
# have at least one; 46% have more than 25%).
VARIADIC_OP_FRACTION = {
    "linalg": 0.66, "tensor": 0.50, "memref": 0.41, "scf": 0.50,
    "pdl": 0.40, "gpu": 0.35, "pdl_interp": 0.32, "async": 0.36,
    "std": 0.28, "vector": 0.26, "llvm": 0.26, "spv": 0.25,
    "affine": 0.30, "rocdl": 0.0, "nvvm": 0.0, "builtin": 0.34,
    "shape": 0.12, "emitc": 0.20, "quant": 0.1, "amx": 0.0,
    "sparse_tensor": 0.14, "tosa": 0.08, "x86vector": 0.06,
    "arm_neon": 0.0, "math": 0.0, "arith": 0.02, "complex": 0.0,
    "arm_sve": 0.02,
}
TWO_VARIADIC = {"pdl": 2, "gpu": 3, "llvm": 4, "std": 3, "scf": 2,
                "pdl_interp": 3, "linalg": 2, "spv": 1}

# Figure 6a: only these have 2-result ops.
TWO_RESULT = {"gpu": 5, "x86vector": 4, "async": 4, "shape": 2}
ZERO_RESULT_BIAS = {
    "scf": 0.4, "builtin": 0.67, "affine": 0.4, "emitc": 0.4,
    "linalg": 0.33, "quant": 0.1, "pdl": 0.27, "shape": 0.12,
    "tosa": 0.03, "async": 0.2, "memref": 0.28, "std": 0.2,
    "pdl_interp": 0.35, "llvm": 0.2, "sparse_tensor": 0.15, "spv": 0.25,
    "vector": 0.1, "x86vector": 0.0, "arm_neon": 0.0, "math": 0.0,
    "arith": 0.0, "rocdl": 0.1, "nvvm": 0.12, "gpu": 0.25,
    "complex": 0.0, "tensor": 0.08, "arm_sve": 0.02, "amx": 0.3,
}

# Figure 6b: half the dialects have a variadic result somewhere.
VARIADIC_RESULT = {
    "scf": 4, "builtin": 1, "affine": 2, "emitc": 1, "linalg": 2,
    "quant": 1, "pdl": 1, "shape": 2, "tosa": 2, "async": 3,
    "memref": 2, "std": 3, "pdl_interp": 1, "llvm": 3,
}

# Figure 7a: attribute usage (builtin/emitc/quant/pdl at the top).
ATTR_FRACTION = {
    "builtin": 0.67, "emitc": 0.8, "quant": 0.6, "pdl": 0.53,
    "linalg": 0.55, "vector": 0.50, "tensor": 0.42, "spv": 0.42,
    "pdl_interp": 0.41, "affine": 0.46, "tosa": 0.42, "memref": 0.34,
    "llvm": 0.33, "amx": 0.3, "std": 0.28, "gpu": 0.26, "shape": 0.19,
    "arith": 0.19, "async": 0.18, "x86vector": 0.18, "arm_sve": 0.11,
    "nvvm": 0.12, "sparse_tensor": 0.14, "scf": 0.1, "arm_neon": 0.0,
    "math": 0.0, "rocdl": 0.04, "complex": 0.0,
}

# Figure 7b: region usage; scf/builtin have >50%.
REGION_COUNTS = {
    "scf": (6, 1), "builtin": (2, 0), "affine": (4, 1), "tosa": (2, 1),
    "linalg": (2, 1), "pdl": (1, 1), "gpu": (2, 1), "quant": (1, 0),
    "tensor": (1, 1), "shape": (2, 1), "async": (1, 1), "memref": (1, 0),
    "spv": (1, 1), "llvm": (1, 0), "std": (1, 0),
    "sparse_tensor": (0, 0),
}

# Figure 11b: fraction of ops needing a C++ (global) verifier; the
# sparse_tensor/affine/vector/linalg/pdl/scf group is highest.
CPP_VERIFIER_FRACTION = {
    "sparse_tensor": 0.85, "affine": 0.77, "vector": 0.63, "linalg": 0.67,
    "pdl": 0.60, "scf": 0.60, "memref": 0.55, "builtin": 0.67,
    "tensor": 0.50, "emitc": 0.4, "spv": 0.40, "nvvm": 0.2, "amx": 0.3,
    "shape": 0.31, "gpu": 0.29, "quant": 0.27, "std": 0.25,
    "pdl_interp": 0.24, "llvm": 0.20, "arith": 0.17, "async": 0.14,
    "tosa": 0.12, "x86vector": 0.06, "arm_neon": 0.0, "math": 0.0,
    "rocdl": 0.0, "complex": 0.0, "arm_sve": 0.02,
}

# Figure 11a / 12: which dialects hold the few ops whose *local*
# constraints need IRDL-C++, by category (inequality, stride, opacity).
LOCAL_CPP = {
    "sparse_tensor": (2, 1, 0), "memref": (2, 3, 0), "pdl_interp": (3, 0, 0),
    "linalg": (2, 1, 0), "affine": (2, 1, 0), "async": (2, 0, 0),
    "pdl": (2, 0, 0), "llvm": (3, 1, 2), "builtin": (1, 0, 0),
}
assert tuple(sum(x) for x in zip(*LOCAL_CPP.values())) == G_LOCAL_CPP

# ---------------------------------------------------------------------------
# Types and attributes (Figures 8, 9, 10).
# ---------------------------------------------------------------------------

# name: (types, cpp_param_types, cpp_verifier_types)
TYPES = {
    "builtin": (14, 1, 3), "llvm": (12, 1, 3), "spv": (10, 0, 2),
    "async": (5, 0, 0), "pdl": (5, 0, 0), "quant": (4, 0, 1),
    "shape": (3, 0, 0), "gpu": (3, 0, 0), "emitc": (2, 0, 0),
    "linalg": (2, 0, 1), "arm_sve": (2, 0, 0),
}
assert sum(v[0] for v in TYPES.values()) == 62

# name: (attrs, cpp_param_attrs, cpp_verifier_attrs)
ATTRS = {
    "builtin": (12, 3, 2), "spv": (7, 0, 2), "llvm": (5, 2, 1),
    "sparse_tensor": (3, 2, 1), "vector": (2, 0, 0), "emitc": (1, 0, 0),
}
assert sum(v[0] for v in ATTRS.values()) == 30

# Parameter-kind pools (Figure 8). Order must match irdl::ParamKind:
# AttrOrType, Integer, String, Float, Enum, Location, TypeId, Domain.
TYPE_PARAM_KINDS = {
    "builtin": [8, 4, 1, 2, 3, 0, 0, 1],
    "llvm": [6, 2, 2, 1, 1, 0, 0, 1],
    "spv": [7, 3, 1, 1, 2, 0, 0, 0],
    "async": [3, 1, 0, 0, 0, 0, 0, 0],
    "pdl": [3, 0, 1, 0, 0, 0, 0, 0],
    "quant": [2, 1, 0, 1, 1, 0, 0, 0],
    "shape": [1, 0, 1, 0, 0, 0, 0, 0],
    "gpu": [1, 1, 0, 0, 1, 0, 0, 0],
    "emitc": [0, 0, 1, 0, 0, 0, 0, 0],
    "linalg": [1, 0, 0, 0, 0, 0, 0, 0],
    "arm_sve": [1, 1, 0, 0, 0, 0, 0, 0],
}
ATTR_PARAM_KINDS = {
    "builtin": [7, 2, 2, 1, 1, 2, 1, 3],
    "spv": [4, 1, 1, 0, 1, 0, 0, 0],
    "llvm": [2, 1, 1, 0, 1, 0, 1, 2],
    "sparse_tensor": [1, 1, 1, 1, 1, 0, 0, 2],
    "vector": [1, 0, 0, 0, 0, 1, 0, 0],
    "emitc": [0, 0, 1, 0, 0, 0, 0, 0],
}

# A definition needing C++ parameters must have at least one
# domain-specific parameter to carry it.
for n, (cnt, cppp, _) in TYPES.items():
    assert TYPE_PARAM_KINDS[n][7] >= cppp, n
for n, (cnt, cppp, _) in ATTRS.items():
    assert ATTR_PARAM_KINDS[n][7] >= cppp, n

# ---------------------------------------------------------------------------
# Allocation machinery: hit global totals exactly via largest-remainder.
# ---------------------------------------------------------------------------


def allocate(total_per_bucket, per_dialect_weights):
    """per_dialect_weights: {name: [w0, w1, ...]} relative weights per
    bucket (need not be normalized). Returns {name: [c0, c1, ...]} with
    per-dialect sums == OPS[name] and per-bucket sums == total_per_bucket.
    """
    buckets = len(total_per_bucket)
    counts = {n: [0] * buckets for n in NAMES}
    # First pass: per dialect, distribute its ops across buckets by
    # weight (largest remainder).
    for n in NAMES:
        w = per_dialect_weights[n]
        s = sum(w) or 1.0
        exact = [OPS[n] * x / s for x in w]
        base = [int(x) for x in exact]
        rem = OPS[n] - sum(base)
        order = sorted(range(buckets), key=lambda i: exact[i] - base[i],
                       reverse=True)
        for i in range(rem):
            base[order[i % buckets]] += 1
        counts[n] = base
    # Second pass: fix per-bucket totals by moving ops between buckets
    # inside donor dialects (preserves per-dialect totals).
    for b in range(buckets):
        diff = sum(counts[n][b] for n in NAMES) - total_per_bucket[b]
        step = 0
        while diff != 0:
            moved = False
            for n in sorted(NAMES, key=lambda n: -counts[n][b]):
                if diff > 0 and counts[n][b] > 0:
                    # move one op from bucket b to the emptiest other
                    # bucket that is globally under target
                    for b2 in range(buckets):
                        if b2 == b:
                            continue
                        cur = sum(counts[m][b2] for m in NAMES)
                        if cur < total_per_bucket[b2]:
                            counts[n][b] -= 1
                            counts[n][b2] += 1
                            diff -= 1
                            moved = True
                            break
                elif diff < 0:
                    for b2 in range(buckets):
                        if b2 == b or counts[n][b2] == 0:
                            continue
                        cur = sum(counts[m][b2] for m in NAMES)
                        if cur > total_per_bucket[b2]:
                            counts[n][b2] -= 1
                            counts[n][b] += 1
                            diff += 1
                            moved = True
                            break
                if diff == 0:
                    break
            step += 1
            if not moved or step > 10000:
                raise RuntimeError(f"cannot balance bucket {b}")
    return counts


def weights_from_bias(last_bias, zero_bias=None, buckets=4):
    w = {}
    for n in NAMES:
        hi = last_bias.get(n, 0.1)
        lo = (zero_bias or {}).get(n, 0.1) if zero_bias else 0.1
        mid = max(0.0, 1.0 - hi - lo)
        if buckets == 4:
            w[n] = [lo, mid * 0.56, mid * 0.44, hi]
        elif buckets == 3:
            w[n] = [lo, mid, hi]
        else:
            w[n] = [1.0 - hi, hi]
    return w


operands = allocate(G_OPERANDS,
                    weights_from_bias(OPERAND3_BIAS, ZERO_OPERAND_BIAS, 4))

var_operands = {}
for n in NAMES:
    two = TWO_VARIADIC.get(n, 0)
    one = max(0, round(VARIADIC_OP_FRACTION.get(n, 0.0) * OPS[n]) - two)
    one = min(one, OPS[n] - two)
    var_operands[n] = [OPS[n] - one - two, one, two]
# Balance to global totals by tweaking the biggest contributors.
for b in (1, 2):
    diff = sum(var_operands[n][b] for n in NAMES) - G_VAR_OPERANDS[b]
    for n in sorted(NAMES, key=lambda n: -var_operands[n][b]):
        while diff > 0 and var_operands[n][b] > 0:
            var_operands[n][b] -= 1
            var_operands[n][0] += 1
            diff -= 1
        while diff < 0 and var_operands[n][0] > 0:
            var_operands[n][b] += 1
            var_operands[n][0] -= 1
            diff += 1
        if diff == 0:
            break
assert [sum(var_operands[n][b] for n in NAMES) for b in range(3)] \
    == G_VAR_OPERANDS

results = {}
for n in NAMES:
    two = TWO_RESULT.get(n, 0)
    zero = min(OPS[n] - two, round(ZERO_RESULT_BIAS.get(n, 0.1) * OPS[n]))
    results[n] = [zero, OPS[n] - zero - two, two]
for b in (0, 2):
    diff = sum(results[n][b] for n in NAMES) - G_RESULTS[b]
    for n in sorted(NAMES, key=lambda n: -results[n][b]):
        while diff > 0 and results[n][b] > 0:
            results[n][b] -= 1
            results[n][1] += 1
            diff -= 1
        while diff < 0 and results[n][1] > 0 and b == 0:
            results[n][b] += 1
            results[n][1] -= 1
            diff += 1
        if diff == 0:
            break
assert [sum(results[n][b] for n in NAMES) for b in range(3)] == G_RESULTS

var_results = {}
for n in NAMES:
    v = min(VARIADIC_RESULT.get(n, 0), results[n][1] + results[n][2])
    var_results[n] = [OPS[n] - v, v]
diff = sum(var_results[n][1] for n in NAMES) - G_VAR_RESULTS[1]
for n in sorted(NAMES, key=lambda n: -var_results[n][1]):
    while diff > 0 and var_results[n][1] > 0:
        var_results[n][1] -= 1
        var_results[n][0] += 1
        diff -= 1
    if diff == 0:
        break
assert diff == 0

attrs_w = {}
for n in NAMES:
    f = ATTR_FRACTION.get(n, 0.1)
    attrs_w[n] = [1.0 - f, f * 0.6, f * 0.4]
attrs = allocate(G_ATTRS, attrs_w)

regions = {}
for n in NAMES:
    one, two = REGION_COUNTS.get(n, (0, 0))
    regions[n] = [OPS[n] - one - two, one, two]
assert [sum(regions[n][b] for n in NAMES) for b in range(3)] == G_REGIONS

cpp_verifier = {}
for n in NAMES:
    cpp_verifier[n] = min(OPS[n],
                          round(CPP_VERIFIER_FRACTION.get(n, 0.1) * OPS[n]))
diff = sum(cpp_verifier.values()) - G_CPP_VERIFIER
for n in sorted(NAMES, key=lambda n: -cpp_verifier[n]):
    while diff > 0 and cpp_verifier[n] > 0:
        cpp_verifier[n] -= 1
        diff -= 1
    while diff < 0 and cpp_verifier[n] < OPS[n]:
        cpp_verifier[n] += 1
        diff += 1
    if diff == 0:
        break
assert sum(cpp_verifier.values()) == G_CPP_VERIFIER

# ---------------------------------------------------------------------------
# Growth timeline (Figure 3): 444 ops in 05/2020 to 942 in 01/2022.
# ---------------------------------------------------------------------------

MONTHS = ["05/20", "06/20", "07/20", "08/20", "09/20", "10/20", "11/20",
          "12/20", "01/21", "02/21", "03/21", "04/21", "05/21", "06/21",
          "07/21", "08/21", "09/21", "10/21", "11/21", "12/21", "01/22"]
GROWTH = [444, 460, 482, 500, 522, 540, 561, 580, 604, 632, 655, 680,
          706, 734, 768, 800, 832, 862, 890, 918, 942]
assert len(MONTHS) == len(GROWTH) and GROWTH[0] == 444 and GROWTH[-1] == 942

# ---------------------------------------------------------------------------
# Emit C++.
# ---------------------------------------------------------------------------


def arr(xs):
    return "{" + ", ".join(str(x) for x in xs) + "}"


import os

OUT_DIR = os.path.join(os.path.dirname(__file__), "..", "src", "corpus")

with open(os.path.join(OUT_DIR, "CorpusDataProfiles.inc"), "w") as f:
    f.write("// Generated by tools/gen_corpus_data.py — do not edit.\n")
    f.write("// Per-dialect profile table of the 28-dialect corpus.\n")
    for name, desc, nops in DIALECTS:
        t = TYPES.get(name, (0, 0, 0))
        a = ATTRS.get(name, (0, 0, 0))
        lc = LOCAL_CPP.get(name, (0, 0, 0))
        tk = TYPE_PARAM_KINDS.get(name, [0] * 8)
        ak = ATTR_PARAM_KINDS.get(name, [0] * 8)
        f.write("{\n")
        f.write(f'    "{name}",\n')
        f.write(f'    "{desc}",\n')
        f.write(f"    {nops},\n")
        f.write(f"    {arr(operands[name])}, // operands 0/1/2/3+\n")
        f.write(f"    {arr(var_operands[name])}, // variadic operands\n")
        f.write(f"    {arr(results[name])}, // results 0/1/2\n")
        f.write(f"    {arr(var_results[name])}, // variadic results 0/1\n")
        f.write(f"    {arr(attrs[name])}, // attributes 0/1/2+\n")
        f.write(f"    {arr(regions[name])}, // regions 0/1/2\n")
        f.write(f"    {cpp_verifier[name]}, // ops needing C++ verifier\n")
        f.write(f"    {lc[0]}, {lc[1]}, {lc[2]}, // ineq/stride/opacity\n")
        f.write(f"    {t[0]}, {a[0]}, // types, attrs\n")
        f.write(f"    {arr(tk)}, // type param kinds\n")
        f.write(f"    {arr(ak)}, // attr param kinds\n")
        f.write(f"    {t[1]}, {t[2]}, // types: cpp params, verifier\n")
        f.write(f"    {a[1]}, {a[2]}, // attrs: cpp params, verifier\n")
        f.write("},\n")

with open(os.path.join(OUT_DIR, "CorpusDataGrowth.inc"), "w") as f:
    f.write("// Generated by tools/gen_corpus_data.py — do not edit.\n")
    f.write("// Growth timeline (Figure 3).\n")
    for m, g in zip(MONTHS, GROWTH):
        f.write(f'{{"{m}", {g}}},\n')

print("wrote CorpusDataProfiles.inc and CorpusDataGrowth.inc")
