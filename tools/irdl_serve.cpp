//===- irdl_serve.cpp - Persistent verification daemon --------------------===//
///
/// The production counterpart of irdl_opt: a long-lived process that pays
/// context construction, dialect registration, and constraint compilation
/// once, then serves verification over a unix-domain socket (the framed
/// protocol in docs/serving.md). Dialects can be preloaded from the
/// command line and hot-(re)loaded at runtime through LOAD_DIALECT /
/// RELOAD_DIALECT; METRICS exposes the Prometheus registry.
///
/// Usage:
///   irdl_serve --socket=/path/to.sock [--dialect file.irdl]...
///              [--mt=0|1|N] [--compiled-constraints=0|1]
///              [--metrics-json=FILE]
///
/// SIGINT/SIGTERM stop the accept loop gracefully: in-flight responses
/// flush, the socket file is unlinked, and the --metrics-json artifact is
/// written before exit.
///
//===----------------------------------------------------------------------===//

#include "irdl/ConstraintCompiler.h"
#include "server/Server.h"
#include "support/File.h"
#include "support/Metrics.h"
#include "support/Signal.h"
#include "support/Threading.h"

#include <fstream>
#include <iostream>

using namespace irdl;
using namespace irdl::serve;

int main(int argc, char **argv) {
  std::string SocketPath = "/tmp/irdl_serve.sock";
  std::vector<std::string> DialectFiles;
  std::string MetricsJsonFile;
  bool Metrics = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::cerr << "missing value after " << Arg << "\n";
        std::exit(1);
      }
      return argv[++I];
    };
    if (Arg.rfind("--socket=", 0) == 0) {
      SocketPath = Arg.substr(std::string("--socket=").size());
      if (SocketPath.empty()) {
        std::cerr << "--socket= requires a path\n";
        return 1;
      }
    } else if (Arg == "--dialect")
      DialectFiles.push_back(NextValue());
    else if (Arg == "--metrics")
      Metrics = true;
    else if (Arg.rfind("--metrics-json=", 0) == 0) {
      MetricsJsonFile = Arg.substr(std::string("--metrics-json=").size());
      if (MetricsJsonFile.empty()) {
        std::cerr << "--metrics-json= requires a file name\n";
        return 1;
      }
    } else if (Arg.rfind("--mt=", 0) == 0) {
      auto N = parseThreadCountValue(Arg.substr(std::string("--mt=").size()));
      if (!N) {
        std::cerr << "invalid value '"
                  << Arg.substr(std::string("--mt=").size())
                  << "' for --mt (expected a non-negative integer)\n";
        return 1;
      }
      setGlobalThreadCount(*N);
    } else if (Arg.rfind("--compiled-constraints=", 0) == 0) {
      std::string V =
          Arg.substr(std::string("--compiled-constraints=").size());
      if (V != "0" && V != "1") {
        std::cerr << "invalid value '" << V
                  << "' for --compiled-constraints (expected 0 or 1)\n";
        return 1;
      }
      setCompiledConstraintsEnabled(V == "1");
    } else if (Arg == "--help" || Arg == "-h") {
      std::cout << "usage: irdl_serve [--socket=PATH] "
                   "[--dialect f.irdl]... [--mt=0|1|N]\n"
                   "                  [--compiled-constraints=0|1] "
                   "[--metrics] [--metrics-json=FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option " << Arg << " (see --help)\n";
      return 1;
    }
  }

  // A verification service without observability is not operable; the
  // library instrumentation (verifier latency, reader throughput, memo
  // cache) is always on so METRICS has something to say.
  setMetricsEnabled(true);

  VerifyServer Server(ServerOptions{SocketPath});

  for (const std::string &Path : DialectFiles) {
    std::string Buffer, Error;
    if (failed(readFileToString(Path, Buffer, Error))) {
      std::cerr << "cannot read dialect file " << Path << ": " << Error
                << "\n";
      return 1;
    }
    std::string DiagText;
    if (failed(Server.epochs().loadDialect(Path, std::move(Buffer),
                                           DiagText))) {
      std::cerr << DiagText;
      return 1;
    }
  }

  std::string Error;
  if (failed(Server.start(Error))) {
    std::cerr << "irdl_serve: " << Error << "\n";
    return 1;
  }

  // The handler only does async-signal-safe work (atomic store +
  // shutdown(2) on the listening socket); metrics flushing happens below,
  // on the normal path, once serve() winds down.
  installStopNotifyHandler([&Server]() { Server.requestStop(); });

  std::cerr << "irdl_serve: listening on " << SocketPath << " (epoch "
            << Server.epochs().currentEpochNumber() << ", "
            << DialectFiles.size() << " preloaded dialect file(s))\n";
  Server.serve();
  std::cerr << "irdl_serve: shut down\n";

  if (Metrics)
    std::cerr << MetricsRegistry::instance().renderPrometheus();
  if (!MetricsJsonFile.empty()) {
    std::ofstream Out(MetricsJsonFile);
    if (!Out) {
      std::cerr << "cannot write metrics to " << MetricsJsonFile << "\n";
      return 1;
    }
    Out << MetricsRegistry::instance().renderJson() << "\n";
  }
  return 0;
}
