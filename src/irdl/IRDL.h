//===- IRDL.h - Loading IRDL dialect definitions ------------------*- C++ -*-===//
///
/// \file
/// The public entry point of the IRDL frontend: load an IRDL source file
/// and register every dialect it defines into an IRContext at runtime —
/// "register a new dialect in MLIR by providing an IRDL specification file
/// instead of writing, compiling, and linking several complex C++ or
/// TableGen files" (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_IRDL_H
#define IRDL_IRDL_IRDL_H

#include "irdl/Spec.h"

#include <map>

namespace irdl {

class Operation;

/// Hooks a host application can provide for IRDL-C++ constructs that go
/// beyond the interpreted expression subset. An IRDL CppConstraint whose
/// string is `native:<name>` dispatches to the entry registered here.
struct IRDLLoadOptions {
  /// Parameter/type/attribute predicates, by name.
  std::map<std::string, NativeConstraintFn> NativeConstraints;
  /// Whole-operation verifiers, by name.
  std::map<std::string,
           std::function<LogicalResult(Operation *, DiagnosticEngine &)>>
      NativeOpVerifiers;
};

/// The result of loading IRDL source: owns the resolved DialectSpecs
/// (shared with the verifier closures installed on the context).
class IRDLModule {
public:
  const std::vector<std::shared_ptr<DialectSpec>> &getDialects() const {
    return Dialects;
  }

  const DialectSpec *lookupDialect(std::string_view Name) const {
    for (const auto &D : Dialects)
      if (D->Name == Name)
        return D.get();
    return nullptr;
  }

  /// Total op/type/attr counts across all dialects (handy for tooling).
  size_t getNumOps() const;
  size_t getNumTypes() const;
  size_t getNumAttrs() const;

  /// Merges the dialects of \p Other into this module (used when loading
  /// several files).
  void append(IRDLModule &&Other) {
    for (auto &D : Other.Dialects)
      Dialects.push_back(std::move(D));
    Other.Dialects.clear();
  }

  std::vector<std::shared_ptr<DialectSpec>> Dialects;
};

/// Parses, analyzes, and registers the dialects in \p Source. The buffer
/// is added to \p SrcMgr so diagnostics carry carets. Returns null on any
/// error (the context may then contain partially registered skeletons; a
/// failed load should be treated as fatal for that context).
std::unique_ptr<IRDLModule>
loadIRDL(IRContext &Ctx, std::string_view Source, SourceMgr &SrcMgr,
         DiagnosticEngine &Diags, const IRDLLoadOptions &Opts = {},
         std::string BufferName = "<irdl>");

/// Reads \p Path from disk and loads it.
std::unique_ptr<IRDLModule>
loadIRDLFile(IRContext &Ctx, const std::string &Path, SourceMgr &SrcMgr,
             DiagnosticEngine &Diags, const IRDLLoadOptions &Opts = {});

/// Pretty-prints a resolved dialect back to IRDL surface syntax (aliases
/// appear expanded). The output reparses to an equivalent dialect.
std::string printDialectSpec(const DialectSpec &Spec);

} // namespace irdl

#endif // IRDL_IRDL_IRDL_H
