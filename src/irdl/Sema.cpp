//===- Sema.cpp - IRDL name resolution and constraint lowering --------===//

#include "irdl/Sema.h"

#include "support/StringExtras.h"

using namespace irdl;
using namespace irdl::ast;

//===----------------------------------------------------------------------===//
// Pass 1: skeleton declarations
//===----------------------------------------------------------------------===//

Sema::DialectTables *Sema::lookupTables(std::string_view DialectName) {
  auto It = Tables.find(DialectName);
  return It == Tables.end() ? nullptr : &It->second;
}

LogicalResult Sema::declareDialect(const DialectDecl &Decl) {
  // A dialect may extend one already registered natively in the context
  // (component name clashes are diagnosed below), but declaring the same
  // dialect twice in one load is an error.
  if (Tables.count(Decl.Name)) {
    Diags.emitError(Decl.Loc,
                    "redefinition of dialect '" + Decl.Name + "'");
    return failure();
  }
  Dialect *D = Ctx.getOrCreateDialect(Decl.Name);
  DialectTables &T = Tables[Decl.Name];
  T.Decl = &Decl;
  T.D = D;

  for (const EnumDecl &E : Decl.Enums) {
    if (!D->addEnum(E.Name, E.Cases)) {
      Diags.emitError(E.Loc, "redefinition of enum '" + E.Name + "'");
      return failure();
    }
  }
  for (const TypeOrAttrDecl &TA : Decl.TypesAndAttrs) {
    std::vector<std::string> ParamNames;
    for (const NamedConstraint &P : TA.Params)
      ParamNames.push_back(P.Name);
    if (TA.IsAttr) {
      AttrDefinition *Def = D->addAttr(TA.Name);
      if (!Def) {
        Diags.emitError(TA.Loc,
                        "redefinition of attribute '" + TA.Name + "'");
        return failure();
      }
      Def->setParamNames(std::move(ParamNames));
      Def->setSummary(TA.Summary);
    } else {
      TypeDefinition *Def = D->addType(TA.Name);
      if (!Def) {
        Diags.emitError(TA.Loc, "redefinition of type '" + TA.Name + "'");
        return failure();
      }
      Def->setParamNames(std::move(ParamNames));
      Def->setSummary(TA.Summary);
    }
  }
  for (const OpDecl &Op : Decl.Ops) {
    OpDefinition *Def = D->addOp(Op.Name);
    if (!Def) {
      Diags.emitError(Op.Loc,
                      "redefinition of operation '" + Op.Name + "'");
      return failure();
    }
    Def->setSummary(Op.Summary);
  }
  for (const AliasDecl &A : Decl.Aliases) {
    if (!T.Aliases.emplace(A.Name, &A).second) {
      Diags.emitError(A.Loc, "redefinition of alias '" + A.Name + "'");
      return failure();
    }
  }
  for (const ConstraintDecl &C : Decl.Constraints) {
    if (!T.Constraints.emplace(C.Name, &C).second) {
      Diags.emitError(C.Loc, "redefinition of constraint '" + C.Name + "'");
      return failure();
    }
  }
  for (const TypeOrAttrParamDecl &P : Decl.ParamTypes) {
    if (!T.ParamTypes.emplace(P.Name, &P).second) {
      Diags.emitError(P.Loc,
                      "redefinition of parameter kind '" + P.Name + "'");
      return failure();
    }
  }
  return success();
}

//===----------------------------------------------------------------------===//
// Constraint resolution
//===----------------------------------------------------------------------===//

namespace irdl {

/// Resolves constraint expressions within one lexical scope.
class ConstraintResolver {
public:
  ConstraintResolver(Sema &S, Sema::DialectTables &Current)
      : S(S), Current(Current) {}

  /// Variable names visible in the current operation, if any.
  const std::vector<std::string> *VarNames = nullptr;
  /// Substitution environment during alias expansion.
  const std::map<std::string, ConstraintPtr> *AliasEnv = nullptr;
  /// Alias expansion depth guard.
  unsigned Depth = 0;

  ConstraintPtr resolve(const ConstraintExpr &E) {
    switch (E.K) {
    case ConstraintExpr::Kind::IntLit:
      return resolveIntLit(E);
    case ConstraintExpr::Kind::FloatLit:
      return resolveFloatLit(E);
    case ConstraintExpr::Kind::StrLit:
      return Constraint::stringEq(E.StrValue);
    case ConstraintExpr::Kind::ArrayExact: {
      std::vector<ConstraintPtr> Elems;
      for (const auto &Arg : E.Args) {
        ConstraintPtr C = resolve(*Arg);
        if (!C)
          return nullptr;
        Elems.push_back(std::move(C));
      }
      return Constraint::arrayExact(std::move(Elems));
    }
    case ConstraintExpr::Kind::Ref:
      return resolveRef(E);
    }
    return nullptr;
  }

private:
  DiagnosticEngine &diags() { return S.Diags; }

  ConstraintPtr error(SMLoc Loc, std::string Message) {
    diags().emitError(Loc, std::move(Message));
    return nullptr;
  }

  /// Interprets `int32_t`-family names. Returns (width, sign) on match.
  static std::optional<std::pair<unsigned, Signedness>>
  matchIntKindName(std::string_view Name) {
    Signedness Sign = Signedness::Signed;
    std::string_view Rest = Name;
    if (startsWith(Rest, "uint")) {
      Sign = Signedness::Unsigned;
      Rest = Rest.substr(4);
    } else if (startsWith(Rest, "int")) {
      Rest = Rest.substr(3);
    } else {
      return std::nullopt;
    }
    if (Rest.size() < 3 || Rest.substr(Rest.size() - 2) != "_t")
      return std::nullopt;
    auto Width = parseUInt(Rest.substr(0, Rest.size() - 2));
    if (!Width || (*Width != 8 && *Width != 16 && *Width != 32 &&
                   *Width != 64))
      return std::nullopt;
    return std::make_pair(static_cast<unsigned>(*Width), Sign);
  }

  /// Interprets `float32_t` / `float64_t` / `float`.
  static std::optional<unsigned> matchFloatKindName(std::string_view Name) {
    if (Name == "float")
      return 0u;
    if (Name == "float16_t")
      return 16u;
    if (Name == "float32_t")
      return 32u;
    if (Name == "float64_t")
      return 64u;
    return std::nullopt;
  }

  ConstraintPtr resolveIntLit(const ConstraintExpr &E) {
    unsigned Width = 64;
    Signedness Sign = Signedness::Signed;
    if (!E.KindRef.empty()) {
      if (E.KindRef.size() != 1)
        return error(E.Loc, "invalid literal kind");
      if (auto IK = matchIntKindName(E.KindRef[0])) {
        Width = IK->first;
        Sign = IK->second;
      } else if (auto FK = matchFloatKindName(E.KindRef[0])) {
        return Constraint::floatEq(FloatVal{
            static_cast<uint16_t>(*FK ? *FK : 64),
            static_cast<double>(E.IntValue)});
      } else {
        return error(E.Loc, "unknown literal kind '" + E.KindRef[0] + "'");
      }
    }
    return Constraint::intEq(
        IntVal{static_cast<uint16_t>(Width), Sign, E.IntValue});
  }

  ConstraintPtr resolveFloatLit(const ConstraintExpr &E) {
    unsigned Width = 64;
    if (!E.KindRef.empty()) {
      if (E.KindRef.size() != 1)
        return error(E.Loc, "invalid literal kind");
      auto FK = matchFloatKindName(E.KindRef[0]);
      if (!FK)
        return error(E.Loc, "unknown float kind '" + E.KindRef[0] + "'");
      if (*FK)
        Width = *FK;
    }
    return Constraint::floatEq(
        FloatVal{static_cast<uint16_t>(Width), E.FloatValue});
  }

  /// Resolves each argument of \p E.
  bool resolveArgs(const ConstraintExpr &E,
                   std::vector<ConstraintPtr> &Out) {
    for (const auto &Arg : E.Args) {
      ConstraintPtr C = resolve(*Arg);
      if (!C)
        return false;
      Out.push_back(std::move(C));
    }
    return true;
  }

  /// Builds the constraint for builtin type sugar names (f32, i32, ...).
  ConstraintPtr resolveBuiltinTypeSugar(std::string_view Name) {
    IRContext &Ctx = S.Ctx;
    if (Name == "f16" || Name == "f32" || Name == "f64") {
      unsigned Width = Name == "f16" ? 16 : Name == "f32" ? 32 : 64;
      return Constraint::typeConstraint(Ctx.getFloatTypeDef(Width), {},
                                        /*BaseOnly=*/false);
    }
    if (Name == "index")
      return Constraint::typeConstraint(Ctx.getIndexTypeDef(), {},
                                        /*BaseOnly=*/false);
    Signedness Sign;
    std::string_view Digits;
    if (startsWith(Name, "si")) {
      Sign = Signedness::Signed;
      Digits = Name.substr(2);
    } else if (startsWith(Name, "ui")) {
      Sign = Signedness::Unsigned;
      Digits = Name.substr(2);
    } else if (startsWith(Name, "i")) {
      Sign = Signedness::Signless;
      Digits = Name.substr(1);
    } else {
      return nullptr;
    }
    auto Width = parseUInt(Digits);
    if (!Width || *Width < 1 || *Width > 128)
      return nullptr;
    return Constraint::typeConstraint(
        Ctx.getIntegerTypeDef(),
        {Constraint::intEq(IntVal{32, Signedness::Unsigned,
                                  static_cast<int64_t>(*Width)}),
         Constraint::enumEq(EnumVal{Ctx.getSignednessEnum(),
                                    static_cast<unsigned>(Sign)})},
        /*BaseOnly=*/false);
  }

  /// Resolves a type/attr definition reference with optional arguments.
  ConstraintPtr resolveDefRef(const ConstraintExpr &E,
                              TypeDefinition *TDef, AttrDefinition *ADef) {
    std::vector<ConstraintPtr> Args;
    if (!resolveArgs(E, Args))
      return nullptr;
    unsigned NumParams = TDef ? TDef->getNumParams() : ADef->getNumParams();
    if (E.HasArgs && Args.size() != NumParams)
      return error(E.Loc,
                   "'" + (TDef ? TDef->getFullName() : ADef->getFullName()) +
                       "' has " + std::to_string(NumParams) +
                       " parameters but " + std::to_string(Args.size()) +
                       " constraints were given");
    if (TDef)
      return Constraint::typeConstraint(TDef, std::move(Args),
                                        /*BaseOnly=*/!E.HasArgs);
    return Constraint::attrConstraint(ADef, std::move(Args),
                                      /*BaseOnly=*/!E.HasArgs);
  }

  /// Expands an alias with the given argument expressions.
  ConstraintPtr expandAlias(const ast::AliasDecl &Alias,
                            Sema::DialectTables &Owner,
                            const ConstraintExpr &E) {
    if (Depth > 32)
      return error(E.Loc, "alias expansion too deep (recursive alias?)");
    if (E.Args.size() != Alias.Params.size())
      return error(E.Loc, "alias '" + Alias.Name + "' expects " +
                              std::to_string(Alias.Params.size()) +
                              " arguments but got " +
                              std::to_string(E.Args.size()));
    std::map<std::string, ConstraintPtr> Env;
    for (size_t I = 0, N = Alias.Params.size(); I != N; ++I) {
      ConstraintPtr Arg = resolve(*E.Args[I]);
      if (!Arg)
        return nullptr;
      Env.emplace(Alias.Params[I], std::move(Arg));
    }
    // The alias body resolves in the *owning* dialect's scope, with the
    // parameter environment layered on, and no access to the use-site's
    // constraint variables.
    ConstraintResolver BodyResolver(S, Owner);
    BodyResolver.AliasEnv = Env.empty() ? nullptr : &Env;
    BodyResolver.Depth = Depth + 1;
    BodyResolver.VarNames = VarNames; // vars may flow via ConstraintVars
    return BodyResolver.resolve(*Alias.Body);
  }

  /// Resolves a named IRDL-C++ Constraint declaration (with caching).
  ConstraintPtr resolveNamedConstraint(const ast::ConstraintDecl &Decl,
                                       Sema::DialectTables &Owner) {
    std::string Key = Decl.Name;
    auto It = Owner.ResolvedConstraints.find(Key);
    if (It != Owner.ResolvedConstraints.end())
      return It->second;
    // Insert a tombstone to catch recursion.
    Owner.ResolvedConstraints.emplace(Key, nullptr);

    ConstraintResolver BaseResolver(S, Owner);
    BaseResolver.Depth = Depth + 1;
    ConstraintPtr Base = BaseResolver.resolve(*Decl.Base);
    if (!Base)
      return nullptr;
    ConstraintPtr Result = Base;
    if (Decl.HasCppConstraint) {
      if (startsWith(Decl.CppConstraint, "native:")) {
        std::string Name = Decl.CppConstraint.substr(7);
        auto NIt = S.Opts.NativeConstraints.find(Name);
        if (NIt == S.Opts.NativeConstraints.end())
          return error(Decl.Loc,
                       "no native constraint registered under '" + Name +
                           "'");
        Result = Constraint::native(Base, NIt->second, Name);
      } else {
        auto Expr = CppExpr::parse(Decl.CppConstraint, S.Diags, Decl.Loc);
        if (!Expr)
          return nullptr;
        Result = Constraint::cpp(
            Base,
            [Expr](const ParamValue &V) {
              CppExpr::EvalContext Ctx;
              Ctx.Self = cppEvalFromParam(V);
              auto B = Expr->evaluateBool(Ctx);
              return B && *B;
            },
            Decl.CppConstraint);
      }
    }
    Result = Constraint::named(
        Result, Owner.D->getNamespace() + "." + Decl.Name);
    Owner.ResolvedConstraints[Key] = Result;
    return Result;
  }

  /// Looks up \p Name inside \p T's dialect, trying the component kinds in
  /// sigil-appropriate order.
  ConstraintPtr lookupInDialect(const ConstraintExpr &E,
                                std::string_view Name,
                                Sema::DialectTables *T, Dialect *D) {
    // Aliases and named constraints only exist for IRDL-declared dialects.
    if (T) {
      if (auto It = T->Aliases.find(Name); It != T->Aliases.end())
        return expandAlias(*It->second, *T, E);
      if (auto It = T->Constraints.find(Name); It != T->Constraints.end()) {
        if (E.HasArgs)
          return error(E.Loc, "named constraints take no arguments");
        ConstraintPtr C = resolveNamedConstraint(*It->second, *T);
        if (!C)
          return error(E.Loc, "constraint '" + std::string(Name) +
                                  "' is recursive or invalid");
        return C;
      }
      if (auto It = T->ParamTypes.find(Name); It != T->ParamTypes.end()) {
        if (E.HasArgs)
          return error(E.Loc, "parameter kinds take no arguments");
        return Constraint::opaqueKind(D->getNamespace() + "." +
                                      std::string(Name));
      }
    }
    if (!D)
      return nullptr;
    if (E.Sigil != '#')
      if (TypeDefinition *Def = D->lookupType(Name))
        return resolveDefRef(E, Def, nullptr);
    if (E.Sigil != '!')
      if (AttrDefinition *Def = D->lookupAttr(Name))
        return resolveDefRef(E, nullptr, Def);
    if (EnumDef *Def = D->lookupEnum(Name)) {
      if (E.HasArgs)
        return error(E.Loc, "enum constraints take no arguments");
      return Constraint::enumKind(Def);
    }
    // Cross-sigil fallback (lenient).
    if (E.Sigil == '#')
      if (TypeDefinition *Def = D->lookupType(Name))
        return resolveDefRef(E, Def, nullptr);
    if (E.Sigil == '!')
      if (AttrDefinition *Def = D->lookupAttr(Name))
        return resolveDefRef(E, nullptr, Def);
    return nullptr;
  }

  ConstraintPtr resolveRef(const ConstraintExpr &E) {
    IRContext &Ctx = S.Ctx;

    if (E.Path.size() == 1) {
      const std::string &Name = E.Path[0];

      // 1. Alias-parameter environment.
      if (AliasEnv) {
        auto It = AliasEnv->find(Name);
        if (It != AliasEnv->end()) {
          if (E.HasArgs)
            return error(E.Loc, "alias parameters take no arguments");
          return It->second;
        }
      }

      // 2. Constraint variables.
      if (VarNames) {
        for (unsigned I = 0, N = VarNames->size(); I != N; ++I) {
          if ((*VarNames)[I] == Name) {
            if (E.HasArgs)
              return error(E.Loc,
                           "constraint variables take no arguments");
            return Constraint::var(I, Name);
          }
        }
      }

      // 3. Combinators and builtins.
      if (Name == "AnyOf" || Name == "And") {
        std::vector<ConstraintPtr> Args;
        if (!resolveArgs(E, Args))
          return nullptr;
        if (Args.empty())
          return error(E.Loc, Name + " requires at least one constraint");
        return Name == "AnyOf" ? Constraint::anyOf(std::move(Args))
                               : Constraint::conjunction(std::move(Args));
      }
      if (Name == "Not") {
        if (E.Args.size() != 1)
          return error(E.Loc, "Not takes exactly one constraint");
        ConstraintPtr Inner = resolve(*E.Args[0]);
        return Inner ? Constraint::negation(std::move(Inner)) : nullptr;
      }
      if (Name == "Variadic" || Name == "Optional")
        return error(E.Loc, Name + " is only allowed at the top level of "
                                   "operand, result, and region argument "
                                   "definitions");
      if (Name == "array") {
        if (!E.HasArgs)
          return Constraint::anyArray();
        if (E.Args.size() != 1)
          return error(E.Loc, "array takes at most one element constraint");
        ConstraintPtr Elem = resolve(*E.Args[0]);
        return Elem ? Constraint::arrayOf(std::move(Elem)) : nullptr;
      }
      if (Name == "AnyType")
        return Constraint::anyType();
      if (Name == "AnyAttr")
        return Constraint::anyAttr();
      if (Name == "AnyParam")
        return Constraint::anyParam();
      if (auto IK = matchIntKindName(Name))
        return Constraint::intKind(IK->first, IK->second);
      if (auto FK = matchFloatKindName(Name))
        return Constraint::floatKind(*FK);
      if (Name == "string")
        return Constraint::stringKind();
      if (Name == "location" || Name == "type_id")
        return Constraint::opaqueKind(Name);
      // Builtin attribute sugar: #f32_attr / #f64_attr (Listing 5).
      if (Name == "f32_attr" || Name == "f64_attr")
        return Constraint::attrConstraint(
            Ctx.getFloatAttrDef(),
            {Constraint::floatKind(Name == "f32_attr" ? 32 : 64)},
            /*BaseOnly=*/false);
      if (!E.HasArgs)
        if (ConstraintPtr Sugar = resolveBuiltinTypeSugar(Name))
          return Sugar;

      // 4. Current dialect, then builtin, then std (Section 4.2).
      unsigned ErrorsBefore = S.Diags.getNumErrors();
      if (ConstraintPtr C =
              lookupInDialect(E, Name, &Current, Current.D))
        return C;
      if (S.Diags.getNumErrors() != ErrorsBefore)
        return nullptr; // A nested resolution already reported.
      for (const char *Ns : {"builtin", "std"}) {
        Sema::DialectTables *T = S.lookupTables(Ns);
        Dialect *D = Ctx.lookupDialect(Ns);
        if (ConstraintPtr C = lookupInDialect(E, Name, T, D))
          return C;
        if (S.Diags.getNumErrors() != ErrorsBefore)
          return nullptr;
      }
      return error(E.Loc, "unknown constraint '" + Name + "'");
    }

    // Multi-segment path.
    // (a) dialect-qualified component: d.name
    if (E.Path.size() == 2) {
      if (Dialect *D = Ctx.lookupDialect(E.Path[0])) {
        unsigned ErrorsBefore = S.Diags.getNumErrors();
        Sema::DialectTables *T = S.lookupTables(E.Path[0]);
        if (ConstraintPtr C = lookupInDialect(E, E.Path[1], T, D))
          return C;
        if (S.Diags.getNumErrors() != ErrorsBefore)
          return nullptr;
      }
      // (b) enum constructor: enum.Case
      if (EnumDef *Def = Ctx.resolveEnumDef(E.Path[0], Current.D)) {
        if (auto Index = Def->lookupCase(E.Path[1]))
          return Constraint::enumEq(EnumVal{Def, *Index});
        return error(E.Loc, "'" + E.Path[1] +
                                "' is not a constructor of enum '" +
                                Def->getFullName() + "'");
      }
      return error(E.Loc,
                   "unknown constraint '" + join(E.Path, ".") + "'");
    }

    // (c) dialect.enum.Case
    if (E.Path.size() == 3) {
      std::string EnumPath = E.Path[0] + "." + E.Path[1];
      if (EnumDef *Def = Ctx.resolveEnumDef(EnumPath, Current.D)) {
        if (auto Index = Def->lookupCase(E.Path[2]))
          return Constraint::enumEq(EnumVal{Def, *Index});
        return error(E.Loc, "'" + E.Path[2] +
                                "' is not a constructor of enum '" +
                                Def->getFullName() + "'");
      }
    }
    return error(E.Loc, "unknown constraint '" + join(E.Path, ".") + "'");
  }

  Sema &S;
  Sema::DialectTables &Current;
};

} // namespace irdl

//===----------------------------------------------------------------------===//
// Pass 2: resolution into specs
//===----------------------------------------------------------------------===//

namespace {

/// Unwraps a top-level Variadic/Optional wrapper into a VariadicKind.
const ConstraintExpr *unwrapVariadic(const ConstraintExpr &E,
                                     VariadicKind &VK) {
  VK = VariadicKind::Single;
  if (E.K != ConstraintExpr::Kind::Ref || E.Path.size() != 1 ||
      !E.HasArgs)
    return &E;
  if (E.Path[0] == "Variadic")
    VK = VariadicKind::Variadic;
  else if (E.Path[0] == "Optional")
    VK = VariadicKind::Optional;
  else
    return &E;
  return E.Args.size() == 1 ? E.Args[0].get() : nullptr;
}

} // namespace

LogicalResult Sema::resolveDialect(const DialectDecl &Decl,
                                   DialectSpec &Spec) {
  DialectTables &T = Tables[Decl.Name];
  Spec.Name = Decl.Name;
  Spec.D = T.D;

  ConstraintResolver Resolver(*this, T);

  // Enums were registered in pass 1; mirror them in the spec.
  for (const EnumDecl &E : Decl.Enums) {
    EnumSpec ES;
    ES.Name = E.Name;
    ES.Cases = E.Cases;
    ES.Def = T.D->lookupEnum(E.Name);
    Spec.Enums.push_back(std::move(ES));
  }

  // Opaque parameter kinds.
  for (const TypeOrAttrParamDecl &P : Decl.ParamTypes) {
    ParamTypeSpec PS;
    PS.Name = P.Name;
    PS.Summary = P.Summary;
    PS.CppClassName = P.CppClassName;
    PS.CppParserSrc = P.CppParser;
    PS.CppPrinterSrc = P.CppPrinter;
    Spec.ParamTypes.push_back(std::move(PS));
  }

  // Named constraints (also forces resolution/caching).
  for (const ast::ConstraintDecl &C : Decl.Constraints) {
    ConstraintResolver R(*this, T);
    ConstraintPtr Resolved = R.resolve(*C.Base);
    if (!Resolved)
      return failure();
    NamedConstraintSpec NS;
    NS.Name = C.Name;
    NS.Summary = C.Summary;
    NS.HasCpp = C.HasCppConstraint;
    // Resolve through the cache path so Cpp predicates attach.
    ConstraintExpr Ref;
    Ref.K = ConstraintExpr::Kind::Ref;
    Ref.Loc = C.Loc;
    Ref.Path.push_back(C.Name);
    NS.Constr = ConstraintResolver(*this, T).resolve(Ref);
    if (!NS.Constr)
      return failure();
    Spec.Constraints.push_back(std::move(NS));
  }

  // Aliases (non-parametric ones resolve for documentation).
  for (const AliasDecl &A : Decl.Aliases) {
    AliasSpec AS;
    AS.Sigil = A.Sigil;
    AS.Name = A.Name;
    AS.Params = A.Params;
    if (A.Params.empty()) {
      ConstraintResolver R(*this, T);
      AS.Body = R.resolve(*A.Body);
      if (!AS.Body)
        return failure();
    }
    Spec.Aliases.push_back(std::move(AS));
  }

  // Types and attributes.
  for (const TypeOrAttrDecl &TA : Decl.TypesAndAttrs) {
    TypeOrAttrSpec TS;
    TS.IsAttr = TA.IsAttr;
    TS.Name = TA.Name;
    TS.Summary = TA.Summary;
    for (const NamedConstraint &P : TA.Params) {
      ConstraintResolver R(*this, T);
      ConstraintPtr C = R.resolve(*P.Constr);
      if (!C)
        return failure();
      TS.Params.push_back(ParamSpec{P.Name, std::move(C)});
    }
    if (TA.HasCppConstraint) {
      TS.CppConstraintSrc = TA.CppConstraint;
      if (startsWith(TA.CppConstraint, "native:")) {
        std::string NativeName = TA.CppConstraint.substr(7);
        auto It = Opts.NativeConstraints.find(NativeName);
        if (It == Opts.NativeConstraints.end()) {
          Diags.emitError(TA.Loc, "no native constraint registered under '" +
                                      NativeName + "'");
          return failure();
        }
        // Represent as an always-available expr via a wrapper: keep the
        // native fn in the definition verifier (handled at registration
        // through the spec's CppConstraintSrc prefix).
      } else {
        TS.CppConstraint = CppExpr::parse(TA.CppConstraint, Diags, TA.Loc);
        if (!TS.CppConstraint)
          return failure();
      }
    }
    TS.Def = TA.IsAttr
                 ? static_cast<TypeOrAttrDefinitionBase *>(
                       T.D->lookupAttr(TA.Name))
                 : static_cast<TypeOrAttrDefinitionBase *>(
                       T.D->lookupType(TA.Name));
    (TA.IsAttr ? Spec.Attrs : Spec.Types).push_back(std::move(TS));
  }

  // Operations.
  for (const OpDecl &Op : Decl.Ops) {
    OpSpec OS;
    OS.Name = Op.Name;
    OS.Summary = Op.Summary;
    OS.Def = T.D->lookupOp(Op.Name);

    for (const NamedConstraint &V : Op.ConstraintVars)
      OS.VarNames.push_back(V.Name);

    ConstraintResolver OpResolver(*this, T);
    OpResolver.VarNames = &OS.VarNames;

    for (const NamedConstraint &V : Op.ConstraintVars) {
      ConstraintPtr C = OpResolver.resolve(*V.Constr);
      if (!C)
        return failure();
      OS.VarConstraints.push_back(std::move(C));
    }

    auto ResolveOperandList =
        [&](const std::vector<NamedConstraint> &Decls,
            std::vector<OperandSpec> &Out) -> LogicalResult {
      for (const NamedConstraint &NC : Decls) {
        VariadicKind VK;
        const ConstraintExpr *Inner = unwrapVariadic(*NC.Constr, VK);
        if (!Inner) {
          Diags.emitError(NC.Loc,
                          "Variadic/Optional take exactly one constraint");
          return failure();
        }
        ConstraintPtr C = OpResolver.resolve(*Inner);
        if (!C)
          return failure();
        Out.push_back(OperandSpec{NC.Name, std::move(C), VK});
      }
      return success();
    };

    if (failed(ResolveOperandList(Op.Operands, OS.Operands)) ||
        failed(ResolveOperandList(Op.Results, OS.Results)))
      return failure();

    for (const NamedConstraint &A : Op.Attributes) {
      ConstraintPtr C = OpResolver.resolve(*A.Constr);
      if (!C)
        return failure();
      OS.Attributes.push_back(ParamSpec{A.Name, std::move(C)});
    }

    for (const RegionDecl &R : Op.Regions) {
      RegionSpec RS;
      RS.Name = R.Name;
      if (failed(ResolveOperandList(R.Args, RS.Args)))
        return failure();
      if (!R.Terminator.empty()) {
        std::string TermName = join(R.Terminator, ".");
        OpDefinition *TermDef = Ctx.resolveOpDef(TermName, T.D);
        if (!TermDef) {
          Diags.emitError(R.Loc, "unknown terminator operation '" +
                                     TermName + "'");
          return failure();
        }
        RS.TerminatorOpName = TermDef->getFullName();
      }
      OS.Regions.push_back(std::move(RS));
    }

    OS.Successors = Op.Successors;

    if (Op.HasFormat) {
      OS.HasFormat = true;
      OS.FormatSrc = Op.Format;
    }

    if (Op.HasCppConstraint) {
      OS.CppConstraintSrc = Op.CppConstraint;
      if (startsWith(Op.CppConstraint, "native:")) {
        OS.NativeVerifierName = Op.CppConstraint.substr(7);
        if (!Opts.NativeOpVerifiers.count(OS.NativeVerifierName)) {
          Diags.emitError(Op.Loc, "no native op verifier registered under '" +
                                      OS.NativeVerifierName + "'");
          return failure();
        }
      } else {
        OS.CppConstraint = CppExpr::parse(Op.CppConstraint, Diags, Op.Loc);
        if (!OS.CppConstraint)
          return failure();
      }
    }

    Spec.Ops.push_back(std::move(OS));
  }

  return success();
}
