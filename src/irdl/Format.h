//===- Format.h - Declarative operation formats -------------------*- C++ -*-===//
///
/// \file
/// Compiles IRDL `Format` directives (Section 4.7) such as
/// `"$lhs, $rhs : $T.elementType"` into custom parse/print hooks for the
/// operation's definition. Parsing reconstructs all operand and result
/// types by inference through the constraint variables, so the format is
/// validated at registration time: every operand must be printed, no
/// variadic definitions are allowed, and every type must be derivable from
/// the directives plus the constraints.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_FORMAT_H
#define IRDL_IRDL_FORMAT_H

#include "irdl/Spec.h"

namespace irdl {

/// Compiles \p Op's FormatSrc and installs parse/print hooks on its
/// OpDefinition. \p OwningSpec keeps the spec alive from within the hooks.
/// Emits diagnostics and fails when the format cannot drive a parser.
LogicalResult installFormat(std::shared_ptr<DialectSpec> OwningSpec,
                            OpSpec &Op, DiagnosticEngine &Diags);

} // namespace irdl

#endif // IRDL_IRDL_FORMAT_H
