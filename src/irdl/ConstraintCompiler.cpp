//===- ConstraintCompiler.cpp ---------------------------------------===//

#include "irdl/ConstraintCompiler.h"

#include "support/Statistic.h"

#include <atomic>

using namespace irdl;

IRDL_STATISTIC(ConstraintCompiler, NumProgramsCompiled,
               "constraint programs compiled");
IRDL_STATISTIC(ConstraintCompiler, NumInstrsEmitted,
               "constraint program instructions emitted");
IRDL_STATISTIC(ConstraintCompiler, NumDispatchTablesBuilt,
               "AnyOf nodes lowered to dispatch tables");
IRDL_STATISTIC(ConstraintCompiler, NumMemoPoints,
               "subprograms marked cacheable");

static std::atomic<bool> CompiledConstraintsFlag{true};

void irdl::setCompiledConstraintsEnabled(bool Enabled) {
  CompiledConstraintsFlag.store(Enabled, std::memory_order_relaxed);
}

bool irdl::compiledConstraintsEnabled() {
  return CompiledConstraintsFlag.load(std::memory_order_relaxed);
}

namespace {

/// Named wrappers behave exactly like their body; the compiled form drops
/// them (diagnostics keep using the tree's str(), so nothing is lost).
const Constraint *stripNamed(const Constraint *C) {

  while (C->getKind() == Constraint::Kind::Named)
    C = C->getChildren()[0].get();
  return C;
}

/// The uniqued definition pointer an AnyOf alternative is rooted in, or
/// null if the alternative is not a base TypeParams/AttrParams check
/// (typeEq lowers to TypeParams, so exact-type alternatives dispatch
/// too). Alternatives keyed under different definitions are mutually
/// exclusive, which is what makes table dispatch exact.
const void *dispatchKey(const Constraint &C) {
  const Constraint *S = stripNamed(&C);
  if (S->getKind() == Constraint::Kind::TypeParams)
    return S->getTypeDef();
  if (S->getKind() == Constraint::Kind::AttrParams)
    return S->getAttrDef();
  return nullptr;
}

} // namespace

namespace irdl::detail {

class ConstraintProgramBuilder {
public:
  explicit ConstraintProgramBuilder(
      std::vector<ConstraintProgramPtr> VarPrograms) {
    P = std::make_shared<ConstraintProgram>();
    P->VarPrograms = std::move(VarPrograms);
  }

  ConstraintProgramPtr take(const ConstraintPtr &Root) {
    emit(*Root);
    P->finalizeOwnedStorage();
    ++NumProgramsCompiled;
    NumInstrsEmitted += P->OwnedInstrs.size();
    return P;
  }

private:
  using Kind = Constraint::Kind;

  uint32_t emit(const Constraint &C) {
    if (C.getKind() == Kind::Named)
      return emit(*C.getChildren()[0]);

    uint32_t Idx = (uint32_t)P->OwnedInstrs.size();
    P->OwnedInstrs.emplace_back();

    // Children first (pre-order: the subtree of Idx is exactly
    // [Idx, Instrs.size()) when this frame returns), then the child
    // slice, so sibling slices stay contiguous.
    std::vector<uint32_t> ChildIdx;
    ChildIdx.reserve(C.getChildren().size());
    for (const ConstraintPtr &Ch : C.getChildren())
      ChildIdx.push_back(emit(*Ch));

    uint32_t Begin = (uint32_t)P->OwnedChildren.size();
    P->OwnedChildren.insert(P->OwnedChildren.end(), ChildIdx.begin(), ChildIdx.end());

    assert(ChildIdx.size() <= UINT16_MAX && "constraint fan-out too large");
    CInstr &I = P->OwnedInstrs[Idx];
    I.NumChildren = (uint16_t)ChildIdx.size();
    I.ChildrenBegin = Begin;

    switch (C.getKind()) {
    case Kind::AnyType:
      I.Op = COpcode::AnyType;
      break;
    case Kind::AnyAttr:
      I.Op = COpcode::AnyAttr;
      break;
    case Kind::AnyParam:
      I.Op = COpcode::AnyParam;
      break;
    case Kind::TypeParams:
      I.Op = COpcode::TypeParams;
      I.A = poolIndex(TypeDefIdx, P->TypeDefs, C.getTypeDef());
      if (C.isBaseOnly())
        I.Flags |= CInstr::FlagBaseOnly;
      break;
    case Kind::AttrParams:
      I.Op = COpcode::AttrParams;
      I.A = poolIndex(AttrDefIdx, P->AttrDefs, C.getAttrDef());
      if (C.isBaseOnly())
        I.Flags |= CInstr::FlagBaseOnly;
      break;
    case Kind::IntKind:
      I.Op = COpcode::IntKind;
      I.A = pushPool(P->Ints, C.getIntVal());
      break;
    case Kind::IntEq:
      I.Op = COpcode::IntEq;
      I.A = pushPool(P->Ints, C.getIntVal());
      break;
    case Kind::FloatKind:
      I.Op = COpcode::FloatKind;
      I.A = pushPool(P->Floats, C.getFloatVal());
      break;
    case Kind::FloatEq:
      I.Op = COpcode::FloatEq;
      I.A = pushPool(P->Floats, C.getFloatVal());
      break;
    case Kind::StringKind:
      I.Op = COpcode::StringKind;
      break;
    case Kind::StringEq:
      I.Op = COpcode::StringEq;
      I.A = stringIndex(C.getString());
      break;
    case Kind::EnumKind:
      I.Op = COpcode::EnumKind;
      I.A = poolIndex(EnumDefIdx, P->EnumDefs, C.getEnumDef());
      break;
    case Kind::EnumEq:
      I.Op = COpcode::EnumEq;
      I.A = pushPool(P->EnumVals, C.getEnumVal());
      break;
    case Kind::ArrayOf:
      I.Op = COpcode::ArrayOf;
      break;
    case Kind::ArrayExact:
      I.Op = COpcode::ArrayExact;
      break;
    case Kind::OpaqueKind:
      I.Op = COpcode::OpaqueKind;
      I.A = stringIndex(C.getString());
      break;
    case Kind::AnyOf:
      I.Op = COpcode::AnyOf;
      lowerAnyOf(C, Idx, ChildIdx);
      break;
    case Kind::And:
      I.Op = COpcode::And;
      break;
    case Kind::Not:
      I.Op = COpcode::Not;
      break;
    case Kind::Var:
      I.Op = COpcode::Var;
      I.A = C.getVarIndex();
      break;
    case Kind::Cpp:
      I.Op = COpcode::Cpp;
      I.A = pushPool(P->CppPreds, C.getCppPred());
      // Keep the predicate source alongside: it is the serializable form
      // the bytecode writer persists and the reader recompiles from.
      pushPool(P->CppSrcs, C.getString());
      break;
    case Kind::Native:
      I.Op = COpcode::Native;
      I.A = pushPool(P->NativeFns, C.getNativeFn());
      pushPool(P->NativeNames, C.getString());
      break;
    case Kind::Named:
      assert(false && "Named handled above");
      break;
    }

    // A variable-free, C++-free subprogram is a pure function of the
    // (uniqued) value it matches — cache its verdict when it is big
    // enough that the probe beats re-running it.
    size_t SubtreeSize = P->OwnedInstrs.size() - Idx;
    if (!C.requiresCpp() && !C.referencesVar() &&
        SubtreeSize >= ConstraintCompiler::MemoMinInstrs) {
      P->OwnedInstrs[Idx].Flags |= CInstr::FlagMemo;
      ++NumMemoPoints;
    }
    return Idx;
  }

  /// Upgrades an AnyOf to AnyOfTable when every alternative is rooted in
  /// a base definition check and there are enough of them.
  void lowerAnyOf(const Constraint &C, uint32_t Idx,
                  const std::vector<uint32_t> &ChildIdx) {
    const auto &Alts = C.getChildren();
    if (Alts.size() < ConstraintCompiler::MinDispatchAlts)
      return;
    std::vector<const void *> Keys;
    Keys.reserve(Alts.size());
    for (const ConstraintPtr &Alt : Alts) {
      const void *Key = dispatchKey(*Alt);
      if (!Key)
        return;
      Keys.push_back(Key);
    }

    // Group alternative entry points by definition, preserving source
    // order within each group (same-def alternatives still try in
    // declaration order, exactly like the sequential scan).
    ConstraintProgram::DispatchTable Table;
    std::vector<std::vector<uint32_t>> Groups;
    for (size_t AltI = 0; AltI != Keys.size(); ++AltI) {
      auto [It, Inserted] = Table.Map.try_emplace(
          Keys[AltI], (uint32_t)Groups.size(), 0u);
      if (Inserted)
        Groups.emplace_back();
      Groups[It->second.first].push_back(ChildIdx[AltI]);
    }
    for (auto &[Key, Slice] : Table.Map) {
      std::vector<uint32_t> &Group = Groups[Slice.first];
      Slice = {(uint32_t)P->OwnedTableAlts.size(), (uint32_t)Group.size()};
      P->OwnedTableAlts.insert(P->OwnedTableAlts.end(), Group.begin(), Group.end());
    }

    CInstr &I = P->OwnedInstrs[Idx];
    I.Op = COpcode::AnyOfTable;
    I.A = (uint32_t)P->Tables.size();
    P->Tables.push_back(std::move(Table));
    ++NumDispatchTablesBuilt;
  }

  template <typename T, typename PoolT>
  uint32_t poolIndex(std::unordered_map<T, uint32_t> &Cache, PoolT &Pool,
                     T Value) {
    auto [It, Inserted] = Cache.try_emplace(Value, (uint32_t)Pool.size());
    if (Inserted)
      Pool.push_back(Value);
    return It->second;
  }

  template <typename PoolT, typename T>
  uint32_t pushPool(PoolT &Pool, const T &Value) {
    Pool.push_back(Value);
    return (uint32_t)Pool.size() - 1;
  }

  uint32_t stringIndex(const std::string &S) {
    auto [It, Inserted] =
        StringIdx.try_emplace(S, (uint32_t)P->Strings.size());
    if (Inserted)
      P->Strings.push_back(S);
    return It->second;
  }

  std::shared_ptr<ConstraintProgram> P;
  std::unordered_map<const TypeDefinition *, uint32_t> TypeDefIdx;
  std::unordered_map<const AttrDefinition *, uint32_t> AttrDefIdx;
  std::unordered_map<const EnumDef *, uint32_t> EnumDefIdx;
  std::unordered_map<std::string, uint32_t> StringIdx;
};

} // namespace irdl::detail

ConstraintProgramPtr
ConstraintCompiler::compile(const ConstraintPtr &C,
                            std::vector<ConstraintProgramPtr> VarPrograms) {
  assert(C && "compiling a null constraint");
  return detail::ConstraintProgramBuilder(std::move(VarPrograms)).take(C);
}

std::vector<ConstraintProgramPtr> ConstraintCompiler::compileVarPrograms(
    const std::vector<ConstraintPtr> &VarConstraints) {
  std::vector<ConstraintProgramPtr> Programs;
  Programs.reserve(VarConstraints.size());
  for (const ConstraintPtr &C : VarConstraints)
    Programs.push_back(C ? compile(C) : nullptr);
  return Programs;
}
