//===- ConstraintProgram.h - Compiled constraint bytecode --------*- C++ -*-===//
///
/// \file
/// The compiled form of an IRDL constraint: a flat, contiguous array of
/// packed instructions (one opcode per Constraint::Kind plus a
/// table-dispatched AnyOf variant), with all literals, definitions, and
/// predicates hoisted into shared pools referenced by index. Programs are
/// produced once per resolved constraint by the ConstraintCompiler at
/// dialect-registration time and executed by a tight switch-dispatch
/// interpreter — "compile the declaration, not interpret it per op".
///
/// Three mechanisms make the compiled engine fast (docs/constraint-
/// compiler.md):
///
///  * trail-based backtracking — AnyOf/Not record a MatchContext mark and
///    undo only the variables bound since (shared with the tree oracle);
///  * AnyOf dispatch tables — when every alternative is rooted in a base
///    TypeParams/AttrParams/TypeEq check, a hash on the value's uniqued
///    definition pointer jumps directly to the plausible alternatives;
///  * a memoized verification cache — variable-free, C++-free subprograms
///    over uniqued Type/Attribute values cache their verdict keyed on
///    (instruction, uniqued storage pointer), sharded 16 ways so parallel
///    verification threads rarely contend.
///
/// Execution is semantically identical to Constraint::matches — the tree
/// interpreter remains the reference oracle behind --compiled-constraints.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_CONSTRAINTPROGRAM_H
#define IRDL_IRDL_CONSTRAINTPROGRAM_H

#include "irdl/Constraint.h"

#include <array>
#include <atomic>
#include <shared_mutex>
#include <unordered_map>

namespace irdl {

class ConstraintProgram;
using ConstraintProgramPtr = std::shared_ptr<const ConstraintProgram>;

namespace detail {
class ConstraintProgramBuilder;
} // namespace detail

namespace bytecode {
class ProgramWriter;
class ProgramReader;
} // namespace bytecode

/// Opcodes of the compiled constraint interpreter. Every Constraint::Kind
/// lowers to exactly one opcode except AnyOf, which compiles to
/// AnyOfTable when all alternatives are dispatchable on a uniqued
/// definition pointer, and Named, which is transparent and compiles to
/// its body.
enum class COpcode : uint8_t {
  AnyType,    // value is a type
  AnyAttr,    // value is an attribute
  AnyParam,   // always true
  TypeParams, // A = TypeDefs index; children = per-parameter programs
  AttrParams, // A = AttrDefs index; children = per-parameter programs
  IntKind,    // A = Ints index (width + signedness)
  IntEq,      // A = Ints index (exact value)
  FloatKind,  // A = Floats index (width; 0 = any float)
  FloatEq,    // A = Floats index (exact value)
  StringKind, // value is a string
  StringEq,   // A = Strings index
  EnumKind,   // A = EnumDefs index
  EnumEq,     // A = EnumVals index
  ArrayOf,    // children: none = any array, one = element program
  ArrayExact, // children = per-element programs
  OpaqueKind, // A = Strings index (opaque parameter kind name)
  AnyOf,      // children = alternatives, tried in order with a trail mark
  AnyOfTable, // A = Tables index; dispatch on the value's definition
  And,        // children = conjuncts
  Not,        // children = the negated program
  Var,        // A = constraint-variable index
  Cpp,        // A = CppPreds index; children = base program
  Native,     // A = NativeFns index; children = base program
};

/// Returns the mnemonic of \p Op ("TypeParams", "AnyOfTable", ...).
std::string_view getOpcodeName(COpcode Op);

/// One packed instruction: 12 bytes, no pointers. Children of a node are
/// a contiguous (Begin, Count) slice of the program's child-index array,
/// so walking a subtree touches only two flat arrays.
struct CInstr {
  COpcode Op = COpcode::AnyType;
  /// Instruction flag bits (FlagBaseOnly / FlagMemo).
  uint8_t Flags = 0;
  /// Number of child programs.
  uint16_t NumChildren = 0;
  /// Pool index; meaning depends on Op (see COpcode comments).
  uint32_t A = 0;
  /// First child slot in ConstraintProgram::Children.
  uint32_t ChildrenBegin = 0;

  static constexpr uint8_t FlagBaseOnly = 1u << 0;
  /// Entry point of a memoizable subprogram (variable-free, C++-free):
  /// when the matched value is a uniqued Type/Attribute, the verdict is
  /// served from / recorded into the program's verification cache.
  static constexpr uint8_t FlagMemo = 1u << 1;
};

/// A compiled, immutable constraint program. Instruction 0 is the entry
/// point. Thread-safe to execute concurrently (the verification cache is
/// internally sharded and locked; everything else is read-only).
class ConstraintProgram {
public:
  ConstraintProgram();

  /// Executes the program against \p V under the bindings in \p MC.
  /// Exactly equivalent to Constraint::matches of the source tree:
  /// variables bound by a successful run stay bound in \p MC, failed
  /// AnyOf branches are undone through the trail.
  bool run(const ParamValue &V, MatchContext &MC) const;

  /// If the program pins down exactly one value given the bindings in
  /// \p MC, returns it — the compiled counterpart of
  /// Constraint::concreteValue, used by declarative-format inference.
  std::optional<ParamValue> concreteValue(const MatchContext &MC) const;

  //===------------------------------------------------------------------===//
  // Introspection (tests, docs, statistics)
  //===------------------------------------------------------------------===//

  size_t getNumInstrs() const { return InstrCount; }
  const CInstr &getInstr(size_t I) const { return InstrArr[I]; }
  /// True when the flat arrays alias external memory (an mmap'd `.irbc`
  /// buffer) instead of owned vectors — the zero-copy load path.
  bool isExternallyBacked() const { return Backing != nullptr; }
  /// Globally unique id (monotone counter), so cache keys and traces can
  /// name a program even after its spec is gone.
  uint64_t getId() const { return Id; }

  /// Profiled executions / cumulative execution nanoseconds, accumulated
  /// by run() only while constraintProfilingEnabled() (see
  /// ConstraintProfiler.h). Nested Var programs account their time in
  /// both the outer and the inner program (non-exclusive).
  uint64_t getProfiledEvals() const {
    return ProfEvals.load(std::memory_order_relaxed);
  }
  uint64_t getProfiledNanos() const {
    return ProfNs.load(std::memory_order_relaxed);
  }
  void resetProfile() const {
    ProfEvals.store(0, std::memory_order_relaxed);
    ProfNs.store(0, std::memory_order_relaxed);
  }

  size_t getNumDispatchTables() const { return Tables.size(); }
  /// Entries currently held by the verification cache (all shards).
  size_t getMemoCacheSize() const;
  /// Drops every cached verdict (tests; specs owning stale uniqued
  /// pointers must clear before their IRContext dies if the program is
  /// reused against a new context).
  void clearMemoCache() const;

  /// One-line-per-instruction disassembly, e.g.
  /// "0: AnyOfTable tbl=0 n=16 [1..16]".
  std::string dump() const;

private:
  friend class ConstraintCompiler;
  friend class detail::ConstraintProgramBuilder;
  friend class bytecode::ProgramWriter;
  friend class bytecode::ProgramReader;

  bool exec(uint32_t Pc, const ParamValue &V, MatchContext &MC) const;
  std::optional<ParamValue> concreteAt(uint32_t Pc,
                                       const MatchContext &MC) const;

  /// Points the flat-array views at the owned vectors. The builder (and
  /// any other producer that fills OwnedInstrs/OwnedChildren/
  /// OwnedTableAlts) must call this exactly once, after the vectors stop
  /// growing.
  void finalizeOwnedStorage() {
    InstrArr = OwnedInstrs.data();
    InstrCount = static_cast<uint32_t>(OwnedInstrs.size());
    ChildArr = OwnedChildren.data();
    ChildCount = static_cast<uint32_t>(OwnedChildren.size());
    TableAltArr = OwnedTableAlts.data();
    TableAltCount = static_cast<uint32_t>(OwnedTableAlts.size());
  }

  /// The hot-path storage: raw views over either the Owned* vectors
  /// below or an externally owned read-only mapping (Backing). exec()
  /// touches only these — no pointer fixups, no indirection through the
  /// vectors — which is what lets an mmap'd `.irbc` Programs section
  /// back them directly.
  const CInstr *InstrArr = nullptr;
  uint32_t InstrCount = 0;
  const uint32_t *ChildArr = nullptr;
  uint32_t ChildCount = 0;
  const uint32_t *TableAltArr = nullptr;
  uint32_t TableAltCount = 0;

  /// Owned storage for compiler-built (or copy-decoded) programs; empty
  /// when the views alias external memory.
  std::vector<CInstr> OwnedInstrs;
  std::vector<uint32_t> OwnedChildren;
  std::vector<uint32_t> OwnedTableAlts;

  /// Keep-alive for externally backed storage (the mmap'd buffer).
  std::shared_ptr<const void> Backing;

  // Literal/definition pools (indexed by CInstr::A).
  std::vector<const TypeDefinition *> TypeDefs;
  std::vector<const AttrDefinition *> AttrDefs;
  std::vector<IntVal> Ints;
  std::vector<FloatVal> Floats;
  std::vector<std::string> Strings;
  std::vector<const EnumDef *> EnumDefs;
  std::vector<EnumVal> EnumVals;
  std::vector<CppParamPredicate> CppPreds;
  std::vector<NativeConstraintFn> NativeFns;
  /// Serialization twins of CppPreds/NativeFns: the C++ predicate source
  /// and native-hook name each slot was built from. std::function cannot
  /// be serialized, so the `.irbc` writer persists these and the reader
  /// recompiles/re-resolves per context.
  std::vector<std::string> CppSrcs;
  std::vector<std::string> NativeNames;

  /// AnyOf dispatch: uniqued definition pointer -> (Begin, Count) slice
  /// of TableAlts holding the alternatives rooted in that definition, in
  /// source order.
  struct DispatchTable {
    std::unordered_map<const void *, std::pair<uint32_t, uint32_t>> Map;
  };
  std::vector<DispatchTable> Tables;
  std::vector<uint32_t> TableAlts;

  /// Programs compiled for the owning operation's constraint variables;
  /// slot V backs the Var opcode with A == V. Null slots (or a shorter
  /// vector) fall back to the tree constraint in the MatchContext.
  std::vector<ConstraintProgramPtr> VarPrograms;

  //===------------------------------------------------------------------===//
  // Memoized verification cache
  //===------------------------------------------------------------------===//

  struct MemoKey {
    uint32_t Pc;
    const void *Ptr;
    bool operator==(const MemoKey &RHS) const = default;
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey &K) const {
      // Same splitmix-style mix as the uniquer's shard hash.
      uint64_t H = (uint64_t)K.Pc * 0x9E3779B97F4A7C15ull;
      H ^= (uint64_t)(uintptr_t)K.Ptr + 0x9E3779B97F4A7C15ull +
           (H << 6) + (H >> 2);
      return (size_t)H;
    }
  };
  /// Sharded like the IRContext uniquer pools (docs/threading.md): the
  /// shard is picked by the key hash, lookups take the shared side, and
  /// inserts re-check under the exclusive side so --mt=N scales.
  struct MemoShard {
    mutable std::shared_mutex Mu;
    std::unordered_map<MemoKey, bool, MemoKeyHash> Map;
  };
  static constexpr size_t NumMemoShards = 16;
  mutable std::array<MemoShard, NumMemoShards> MemoShards;

  /// --profile-constraints accumulators (relaxed; see getProfiledEvals).
  mutable std::atomic<uint64_t> ProfEvals{0};
  mutable std::atomic<uint64_t> ProfNs{0};

  uint64_t Id;
};

} // namespace irdl

#endif // IRDL_IRDL_CONSTRAINTPROGRAM_H
