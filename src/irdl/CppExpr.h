//===- CppExpr.h - Interpreted IRDL-C++ expressions ---------------*- C++ -*-===//
///
/// \file
/// The executable substitute for IRDL-C++'s embedded C++ (see DESIGN.md):
/// a small expression language covering the constructs the paper's corpus
/// needs — `$_self`, accessor chains (`$_self.lhs().size()`), arithmetic,
/// comparisons, and boolean connectives. CppConstraint strings compile to
/// a CppExpr at dialect-load time and are interpreted by the verifiers.
/// Anything richer is supplied as a registered native callback.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_CPPEXPR_H
#define IRDL_IRDL_CPPEXPR_H

#include "ir/Context.h"
#include "ir/Value.h"

#include <memory>
#include <optional>
#include <variant>

namespace irdl {

class Operation;
struct OpSpec;

/// A named view over a parameter list: what $_self denotes inside a type
/// or attribute CppConstraint, where the verifier runs *before* the
/// uniqued handle exists.
struct ParamRecord {
  const TypeOrAttrDefinitionBase *Def = nullptr;
  const std::vector<ParamValue> *Params = nullptr;
};

/// A runtime value during expression evaluation.
using CppEvalValue = std::variant<std::monostate, bool, int64_t, double,
                                  std::string, Type, Attribute, Value,
                                  Operation *, ParamValue, ParamRecord>;

/// Converts a ParamValue to its most natural evaluation value (ints to
/// int64, enums to their case name, ...). Used to seed $_self for
/// parameter constraints.
CppEvalValue cppEvalFromParam(const ParamValue &P);

class CppExpr {
public:
  enum class Kind {
    IntLit,
    FloatLit,
    StrLit,
    BoolLit,
    Self,   // $_self
    Member, // recv.name or recv.name(...)
    Unary,  // ! -
    Binary, // || && == != < <= > >= + - * / %
  };

  /// Compiles \p Source; emits diagnostics at \p Loc and returns null on
  /// error.
  static std::shared_ptr<const CppExpr> parse(std::string_view Source,
                                              DiagnosticEngine &Diags,
                                              SMLoc Loc = SMLoc());

  /// What $_self denotes during evaluation.
  struct EvalContext {
    CppEvalValue Self;
    /// Operation accessor names resolve through this spec when set.
    const OpSpec *Spec = nullptr;
  };

  /// Evaluates; nullopt signals a type error (unknown accessor, bad
  /// operand kinds). The verifier treats that as "constraint violated"
  /// and reports the expression.
  std::optional<CppEvalValue> evaluate(const EvalContext &Ctx) const;

  /// Evaluates to a truth value; nullopt on evaluation error.
  std::optional<bool> evaluateBool(const EvalContext &Ctx) const;

  Kind getKind() const { return K; }

private:
  friend class CppExprParser;
  explicit CppExpr(Kind K) : K(K) {}

  Kind K;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  std::string StrValue; // literal / member name / operator spelling
  std::shared_ptr<const CppExpr> Lhs, Rhs;
  bool IsCall = false;
};

} // namespace irdl

#endif // IRDL_IRDL_CPPEXPR_H
