//===- IRDLAst.h - AST for the IRDL surface language -------------*- C++ -*-===//
///
/// \file
/// The abstract syntax of IRDL (Section 4) and IRDL-C++ (Section 5):
/// Dialect bodies containing Type / Attribute / Operation / Alias / Enum /
/// Constraint / TypeOrAttrParam declarations, with a uniform constraint-
/// expression sub-language. Most constructs (AnyOf, Variadic, array,
/// int32_t, ...) parse as plain references; semantic analysis gives them
/// meaning.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_IRDLAST_H
#define IRDL_IRDL_IRDLAST_H

#include "support/SourceMgr.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace irdl::ast {

struct ConstraintExpr;
using ConstraintExprPtr = std::unique_ptr<ConstraintExpr>;

/// A constraint expression: a (possibly sigiled, possibly parameterized)
/// reference, a literal, or a fixed-size array pattern.
struct ConstraintExpr {
  enum class Kind {
    Ref,        // [!|#] a.b.c [ <args...> ]
    IntLit,     // 3 or -7, optionally `3 : int32_t` (KindRef)
    FloatLit,   // 2.5, optionally `2.5 : float32_t`
    StrLit,     // "foo"
    ArrayExact, // [pc1, ..., pcN]
  };

  Kind K = Kind::Ref;
  SMLoc Loc;

  // Ref:
  char Sigil = 0; // '!', '#', or 0
  std::vector<std::string> Path;
  bool HasArgs = false;
  std::vector<ConstraintExprPtr> Args; // Ref args / ArrayExact elements

  // Literals:
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  std::string StrValue;
  /// Optional `: int32_t`-style kind annotation on a literal.
  std::vector<std::string> KindRef;
};

/// `name: constraint` — parameters, operands, results, attributes, and
/// region arguments all share this shape.
struct NamedConstraint {
  std::string Name;
  ConstraintExprPtr Constr;
  SMLoc Loc;
};

/// Type or Attribute definition.
struct TypeOrAttrDecl {
  bool IsAttr = false;
  std::string Name;
  SMLoc Loc;
  std::vector<NamedConstraint> Params;
  std::string Summary;
  /// IRDL-C++ additional invariant ($_self is the type/attribute).
  std::string CppConstraint;
  bool HasCppConstraint = false;
};

/// `Region name { Arguments (...) Terminator op }`.
struct RegionDecl {
  std::string Name;
  SMLoc Loc;
  std::vector<NamedConstraint> Args;
  /// Dotted op path; empty when unconstrained.
  std::vector<std::string> Terminator;
};

/// Operation definition.
struct OpDecl {
  std::string Name;
  SMLoc Loc;
  /// ConstraintVar(s) (!T: ..., ...). Names are stored without sigils.
  std::vector<NamedConstraint> ConstraintVars;
  std::vector<NamedConstraint> Operands;
  std::vector<NamedConstraint> Results;
  std::vector<NamedConstraint> Attributes;
  std::vector<RegionDecl> Regions;
  /// Present (possibly empty) iff a Successors directive appeared — which
  /// makes the operation a terminator (Section 4.6).
  std::optional<std::vector<std::string>> Successors;
  std::string Format;
  bool HasFormat = false;
  std::string Summary;
  std::string CppConstraint;
  bool HasCppConstraint = false;
};

/// `Alias !Name = expr` / parametric `Alias !Name<T, U> = expr`.
struct AliasDecl {
  char Sigil = 0;
  std::string Name;
  SMLoc Loc;
  std::vector<std::string> Params;
  ConstraintExprPtr Body;
};

/// `Enum name { A, B, C }`.
struct EnumDecl {
  std::string Name;
  SMLoc Loc;
  std::vector<std::string> Cases;
};

/// IRDL-C++ `Constraint name : base { Summary CppConstraint }`.
struct ConstraintDecl {
  std::string Name;
  SMLoc Loc;
  ConstraintExprPtr Base;
  std::string Summary;
  std::string CppConstraint;
  bool HasCppConstraint = false;
};

/// IRDL-C++ `TypeOrAttrParam name { CppClassName CppParser CppPrinter }`.
struct TypeOrAttrParamDecl {
  std::string Name;
  SMLoc Loc;
  std::string Summary;
  std::string CppClassName;
  std::string CppParser;
  std::string CppPrinter;
};

/// A whole `Dialect name { ... }` body, in declaration order.
struct DialectDecl {
  std::string Name;
  SMLoc Loc;
  std::vector<TypeOrAttrDecl> TypesAndAttrs;
  std::vector<OpDecl> Ops;
  std::vector<AliasDecl> Aliases;
  std::vector<EnumDecl> Enums;
  std::vector<ConstraintDecl> Constraints;
  std::vector<TypeOrAttrParamDecl> ParamTypes;
};

} // namespace irdl::ast

#endif // IRDL_IRDL_IRDLAST_H
