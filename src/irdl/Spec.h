//===- Spec.h - Resolved IRDL dialect specifications --------------*- C++ -*-===//
///
/// \file
/// The output of IRDL semantic analysis: fully resolved specifications of
/// dialects, with constraints lowered to the Constraint engine and IRDL-C++
/// strings compiled to interpreted predicates. Registration compiles these
/// into runtime verifiers/parsers/printers; the analysis library (Section 6
/// evaluation tooling) reads them directly.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_SPEC_H
#define IRDL_IRDL_SPEC_H

#include "irdl/Constraint.h"
#include "irdl/CppExpr.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace irdl {

class ConstraintProgram;

/// A named, constrained slot (type/attr parameter or op attribute).
struct ParamSpec {
  std::string Name;
  ConstraintPtr Constr;
  /// Compiled form of Constr (set by registration; null until then).
  std::shared_ptr<const ConstraintProgram> Prog;
};

/// Resolved type or attribute definition.
struct TypeOrAttrSpec {
  bool IsAttr = false;
  std::string Name;
  std::string Summary;
  std::vector<ParamSpec> Params;
  /// Interpreted IRDL-C++ verifier over the whole type/attr; null if none.
  std::shared_ptr<const CppExpr> CppConstraint;
  std::string CppConstraintSrc;
  /// The runtime definition created for it (set by registration).
  TypeOrAttrDefinitionBase *Def = nullptr;

  /// True if the definition needs IRDL-C++ (Figures 9/10 classification):
  /// a CppConstraint, a native/cpp constraint in a parameter, or an opaque
  /// TypeOrAttrParam parameter.
  bool requiresCppVerifier() const { return CppConstraint != nullptr; }
  bool requiresCppParams() const {
    for (const ParamSpec &P : Params)
      if (P.Constr->requiresCpp() || usesOpaqueParam(P.Constr))
        return true;
    return false;
  }
  static bool usesOpaqueParam(const ConstraintPtr &C);
};

/// Variadicity of an operand/result/region-argument definition
/// (Section 4.6, Variadic and Optional).
enum class VariadicKind { Single, Optional, Variadic };

struct OperandSpec {
  std::string Name;
  ConstraintPtr Constr;
  VariadicKind VK = VariadicKind::Single;
  /// Compiled form of Constr (set by registration; null until then).
  std::shared_ptr<const ConstraintProgram> Prog;
};

struct RegionSpec {
  std::string Name;
  std::vector<OperandSpec> Args;
  /// Full name ("cmath.range_loop_terminator") of the required terminator;
  /// empty when unconstrained. A non-empty terminator also requires the
  /// region to consist of a single block.
  std::string TerminatorOpName;
};

/// Resolved operation definition.
struct OpSpec {
  std::string Name;
  std::string Summary;
  /// Constraint variables: name + the constraint each binding must satisfy.
  std::vector<std::string> VarNames;
  std::vector<ConstraintPtr> VarConstraints;
  /// Compiled programs for VarConstraints, shared by every operand /
  /// result / attribute / region-argument program of this op (set by
  /// registration).
  std::vector<std::shared_ptr<const ConstraintProgram>> VarPrograms;
  std::vector<OperandSpec> Operands;
  std::vector<OperandSpec> Results;
  std::vector<ParamSpec> Attributes;
  std::vector<RegionSpec> Regions;
  std::optional<std::vector<std::string>> Successors;
  std::string FormatSrc;
  bool HasFormat = false;
  /// Interpreted IRDL-C++ op verifier; null if none.
  std::shared_ptr<const CppExpr> CppConstraint;
  std::string CppConstraintSrc;
  /// Native op verifier name referenced via `CppConstraint "native:<n>"`.
  std::string NativeVerifierName;
  OpDefinition *Def = nullptr;

  bool isTerminator() const { return Successors.has_value(); }

  /// Figure 11a classification: can all *local* constraints (per-operand /
  /// per-result / per-attribute) be expressed in pure IRDL?
  bool localConstraintsInIRDL() const;
  /// Figure 11b classification: does the op need a C++ verifier for
  /// non-local (global) constraints?
  bool requiresCppVerifier() const {
    return CppConstraint != nullptr || !NativeVerifierName.empty();
  }

  std::optional<unsigned> lookupOperand(std::string_view N) const;
  std::optional<unsigned> lookupResult(std::string_view N) const;
  std::optional<unsigned> lookupVar(std::string_view N) const;
  std::optional<unsigned> lookupAttrField(std::string_view N) const;
};

struct EnumSpec {
  std::string Name;
  std::vector<std::string> Cases;
  EnumDef *Def = nullptr;
};

/// IRDL-C++ TypeOrAttrParam: an opaque parameter kind.
struct ParamTypeSpec {
  std::string Name;
  std::string Summary;
  std::string CppClassName;
  std::string CppParserSrc;
  std::string CppPrinterSrc;
};

/// A named reusable constraint (IRDL-C++ Constraint directive).
struct NamedConstraintSpec {
  std::string Name;
  std::string Summary;
  ConstraintPtr Constr;
  bool HasCpp = false;
};

/// An alias, kept for documentation/analysis (uses are expanded inline).
struct AliasSpec {
  char Sigil = 0;
  std::string Name;
  std::vector<std::string> Params;
  /// Resolved body for non-parametric aliases only.
  ConstraintPtr Body;
};

/// A fully resolved dialect.
struct DialectSpec {
  std::string Name;
  std::vector<TypeOrAttrSpec> Types;
  std::vector<TypeOrAttrSpec> Attrs;
  std::vector<OpSpec> Ops;
  std::vector<EnumSpec> Enums;
  std::vector<ParamTypeSpec> ParamTypes;
  std::vector<NamedConstraintSpec> Constraints;
  std::vector<AliasSpec> Aliases;
  Dialect *D = nullptr;

  const OpSpec *lookupOp(std::string_view OpName) const;
  const TypeOrAttrSpec *lookupType(std::string_view TypeName) const;
  const TypeOrAttrSpec *lookupAttr(std::string_view AttrName) const;
};

} // namespace irdl

#endif // IRDL_IRDL_SPEC_H
