//===- IRDLParser.h - Parser for the IRDL language ----------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for IRDL source files, producing the AST of
/// IRDLAst.h. Reuses the IR token definitions (the two languages share
/// their lexical structure).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_IRDLPARSER_H
#define IRDL_IRDL_IRDLPARSER_H

#include "irdl/IRDLAst.h"
#include "support/Diagnostics.h"

#include <vector>

namespace irdl {

/// Parses \p Source as a sequence of Dialect declarations. Returns an
/// empty vector and emits diagnostics on error. The source text must
/// outlive any locations recorded in the AST (register it with a
/// SourceMgr for caret rendering).
std::vector<ast::DialectDecl> parseIRDL(std::string_view Source,
                                        DiagnosticEngine &Diags);

} // namespace irdl

#endif // IRDL_IRDL_IRDLPARSER_H
