//===- ConstraintProfiler.h - Hot-constraint attribution ---------*- C++ -*-===//
///
/// \file
/// The `--profile-constraints` subsystem: every ConstraintProgram carries
/// two relaxed atomic counters (executions, cumulative exec nanoseconds)
/// that the interpreter bumps only while profiling is enabled, and this
/// process-wide profiler maps live programs to human-readable attribution
/// names ("cmath.mul operand 'lhs'", "cmath.complex param 'elem'", ...)
/// assigned at dialect registration. The report answers "which constraint
/// is hot" — the question neither the phase timers (too coarse) nor the
/// statistics counters (no per-program identity) can.
///
/// Nested programs account independently: a Var opcode that runs its
/// variable's own program adds that time to *both* the outer and the
/// variable program, like callees in a non-exclusive profile. Registered
/// names cover every program compiled at registration, so the report
/// attributes essentially all constraint-eval time to named programs;
/// programs compiled outside registration (tests, ad-hoc tooling) show up
/// as `<unregistered>`.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_CONSTRAINTPROFILER_H
#define IRDL_IRDL_CONSTRAINTPROFILER_H

#include "irdl/ConstraintProgram.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace irdl {

namespace detail {
extern std::atomic<bool> ConstraintProfilingFlag;
} // namespace detail

/// True when ConstraintProgram::run should time itself.
inline bool constraintProfilingEnabled() {
  return detail::ConstraintProfilingFlag.load(std::memory_order_relaxed);
}
/// Flips profiling process-wide (drivers: --profile-constraints).
void setConstraintProfilingEnabled(bool Enabled);

/// Process-wide map from live constraint programs to attribution names.
class ConstraintProfiler {
public:
  static ConstraintProfiler &instance();

  /// Associates \p Name with \p Prog. Holds only a weak reference: a
  /// program dies with its spec and silently drops out of reports.
  void registerProgram(const ConstraintProgramPtr &Prog, std::string Name);

  struct Entry {
    std::string Name;
    uint64_t ProgramId = 0;
    uint64_t NumInstrs = 0;
    uint64_t Evals = 0;
    uint64_t Nanos = 0;
  };

  /// All live registered programs with at least one profiled execution,
  /// sorted by cumulative nanoseconds descending (ties by program id for
  /// determinism).
  std::vector<Entry> collect() const;

  /// Human-readable "top N hottest constraint programs" table with
  /// per-program evals, cumulative/mean time, and % of the profiled
  /// total.
  std::string renderReport(size_t TopN = 20) const;

  /// JSON array of collect(), same order.
  std::string renderJson() const;

  /// Zeroes the counters of every live registered program and prunes
  /// dead entries (bench/test isolation).
  void reset();

private:
  ConstraintProfiler() = default;

  struct Record {
    std::weak_ptr<const ConstraintProgram> Prog;
    std::string Name;
  };
  mutable std::mutex Mu;
  std::vector<Record> Records;
};

} // namespace irdl

#endif // IRDL_IRDL_CONSTRAINTPROFILER_H
