//===- Constraint.cpp -----------------------------------------------===//

#include "irdl/Constraint.h"

#include "ir/Printer.h"
#include "support/Statistic.h"

#include <sstream>

using namespace irdl;

IRDL_STATISTIC(Constraint, NumConstraintEvals,
               "constraint nodes evaluated");
IRDL_STATISTIC(Constraint, NumVarBindings,
               "constraint variables bound to a value");
IRDL_STATISTIC(Constraint, NumVarBindingHits,
               "variable uses resolved against an existing binding");
IRDL_STATISTIC(Constraint, NumAnyOfRollbacks,
               "AnyOf branches rolled back after a failed match");
IRDL_STATISTIC(Constraint, NumCppPredEvals,
               "interpreted IRDL-C++ predicate evaluations");
IRDL_STATISTIC(Constraint, NumNativePredEvals,
               "native-callback predicate evaluations");

/// Per-kind evaluation counters, indexed by Constraint::Kind. Kept in one
/// table (rather than 23 IRDL_STATISTIC declarations) but registered in
/// the same registry under the ConstraintKind group.
static Statistic &kindStat(Constraint::Kind K) {
  static Statistic Stats[] = {
      {"ConstraintKind", "AnyType", "evals of AnyType"},
      {"ConstraintKind", "AnyAttr", "evals of AnyAttr"},
      {"ConstraintKind", "AnyParam", "evals of AnyParam"},
      {"ConstraintKind", "TypeParams", "evals of parametric-type"},
      {"ConstraintKind", "AttrParams", "evals of parametric-attr"},
      {"ConstraintKind", "IntKind", "evals of integer-kind"},
      {"ConstraintKind", "IntEq", "evals of integer-literal"},
      {"ConstraintKind", "FloatKind", "evals of float-kind"},
      {"ConstraintKind", "FloatEq", "evals of float-literal"},
      {"ConstraintKind", "StringKind", "evals of string-kind"},
      {"ConstraintKind", "StringEq", "evals of string-literal"},
      {"ConstraintKind", "EnumKind", "evals of enum-kind"},
      {"ConstraintKind", "EnumEq", "evals of enum-constructor"},
      {"ConstraintKind", "ArrayOf", "evals of array-of"},
      {"ConstraintKind", "ArrayExact", "evals of fixed-array"},
      {"ConstraintKind", "OpaqueKind", "evals of opaque-kind"},
      {"ConstraintKind", "AnyOf", "evals of AnyOf"},
      {"ConstraintKind", "And", "evals of And"},
      {"ConstraintKind", "Not", "evals of Not"},
      {"ConstraintKind", "Var", "evals of constraint-variable"},
      {"ConstraintKind", "Cpp", "evals of IRDL-C++ constraints"},
      {"ConstraintKind", "Native", "evals of native constraints"},
      {"ConstraintKind", "Named", "evals of named-constraint uses"},
  };
  static_assert(sizeof(Stats) / sizeof(Stats[0]) ==
                    (size_t)Constraint::Kind::Named + 1,
                "kind table out of sync with Constraint::Kind");
  return Stats[(size_t)K];
}

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

// Private-constructor access: the factories are members, so they can build
// directly.
#define MAKE(KIND)                                                          \
  std::shared_ptr<Constraint> C(new Constraint(Kind::KIND))

ConstraintPtr Constraint::anyType() {
  MAKE(AnyType);
  C->computeFlags();
  return C;
}
ConstraintPtr Constraint::anyAttr() {
  MAKE(AnyAttr);
  C->computeFlags();
  return C;
}
ConstraintPtr Constraint::anyParam() {
  MAKE(AnyParam);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::typeConstraint(const TypeDefinition *Def,
                                         std::vector<ConstraintPtr> Params,
                                         bool BaseOnly) {
  assert(Def && "null type definition");
  assert((BaseOnly || Params.size() == Def->getNumParams()) &&
         "parameter constraint count mismatch");
  MAKE(TypeParams);
  C->TDef = Def;
  C->Children = std::move(Params);
  C->BaseOnly = BaseOnly;
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::attrConstraint(const AttrDefinition *Def,
                                         std::vector<ConstraintPtr> Params,
                                         bool BaseOnly) {
  assert(Def && "null attribute definition");
  MAKE(AttrParams);
  C->ADef = Def;
  C->Children = std::move(Params);
  C->BaseOnly = BaseOnly;
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::typeEq(Type T) {
  std::vector<ConstraintPtr> Params;
  for (const ParamValue &P : T.getParams()) {
    switch (P.getKind()) {
    case ParamValue::Kind::Type:
      Params.push_back(typeEq(P.getType()));
      break;
    case ParamValue::Kind::Int:
      Params.push_back(intEq(P.getInt()));
      break;
    case ParamValue::Kind::Float:
      Params.push_back(floatEq(P.getFloat()));
      break;
    case ParamValue::Kind::String:
      Params.push_back(stringEq(P.getString()));
      break;
    case ParamValue::Kind::Enum:
      Params.push_back(enumEq(P.getEnum()));
      break;
    default: {
      // Fall back to a native equality check for the exotic kinds.
      ParamValue Expected = P;
      Params.push_back(native(
          anyParam(),
          [Expected](const ParamValue &V) { return V == Expected; },
          "exact-param"));
      break;
    }
    }
  }
  return typeConstraint(T.getDef(), std::move(Params), /*BaseOnly=*/false);
}

ConstraintPtr Constraint::intKind(unsigned Width, Signedness Sign) {
  MAKE(IntKind);
  C->IV = IntVal{static_cast<uint16_t>(Width), Sign, 0};
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::intEq(IntVal V) {
  MAKE(IntEq);
  C->IV = V;
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::floatKind(unsigned Width) {
  MAKE(FloatKind);
  C->FV = FloatVal{static_cast<uint16_t>(Width), 0.0};
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::floatEq(FloatVal V) {
  MAKE(FloatEq);
  C->FV = V;
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::stringKind() {
  MAKE(StringKind);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::stringEq(std::string S) {
  MAKE(StringEq);
  C->Str = std::move(S);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::enumKind(const EnumDef *Def) {
  MAKE(EnumKind);
  C->EDef = Def;
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::enumEq(EnumVal V) {
  MAKE(EnumEq);
  C->EV = V;
  C->EDef = V.Def;
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::arrayOf(ConstraintPtr Elem) {
  MAKE(ArrayOf);
  C->Children.push_back(std::move(Elem));
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::anyArray() {
  MAKE(ArrayOf);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::arrayExact(std::vector<ConstraintPtr> Elems) {
  MAKE(ArrayExact);
  C->Children = std::move(Elems);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::opaqueKind(std::string ParamTypeName) {
  MAKE(OpaqueKind);
  C->Str = std::move(ParamTypeName);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::anyOf(std::vector<ConstraintPtr> Cs) {
  MAKE(AnyOf);
  C->Children = std::move(Cs);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::conjunction(std::vector<ConstraintPtr> Cs) {
  MAKE(And);
  C->Children = std::move(Cs);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::negation(ConstraintPtr Inner) {
  MAKE(Not);
  C->Children.push_back(std::move(Inner));
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::var(unsigned Index, std::string Name) {
  MAKE(Var);
  C->VarIndex = Index;
  C->Str = std::move(Name);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::cpp(ConstraintPtr Base, CppParamPredicate Pred,
                              std::string Source) {
  MAKE(Cpp);
  C->Children.push_back(std::move(Base));
  C->CppPred = std::move(Pred);
  C->Str = std::move(Source);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::native(ConstraintPtr Base, NativeConstraintFn Fn,
                                 std::string Name) {
  MAKE(Native);
  C->Children.push_back(std::move(Base));
  C->NativeFn = std::move(Fn);
  C->Str = std::move(Name);
  C->computeFlags();
  return C;
}

ConstraintPtr Constraint::named(ConstraintPtr Inner,
                                std::string QualifiedName) {
  MAKE(Named);
  C->Children.push_back(std::move(Inner));
  C->Str = std::move(QualifiedName);
  C->computeFlags();
  return C;
}

#undef MAKE

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

void Constraint::computeFlags() {
  // Children are immutable and fully constructed here, so their bits are
  // final: one O(children) fold per node replaces the former O(subtree)
  // walk on every requiresCpp()/referencesVar() query.
  HasCpp = K == Kind::Cpp || K == Kind::Native;
  HasVar = K == Kind::Var;
  for (const ConstraintPtr &Child : Children) {
    HasCpp |= Child->HasCpp;
    HasVar |= Child->HasVar;
  }
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

bool Constraint::matches(const ParamValue &V, MatchContext &MC) const {
  ++NumConstraintEvals;
  ++kindStat(K);
  switch (K) {
  case Kind::AnyType:
    return V.isType();
  case Kind::AnyAttr:
    return V.isAttr();
  case Kind::AnyParam:
    return true;
  case Kind::TypeParams: {
    if (!V.isType() || V.getType().getDef() != TDef)
      return false;
    if (BaseOnly)
      return true;
    const auto &Params = V.getType().getParams();
    if (Params.size() != Children.size())
      return false;
    for (size_t I = 0, E = Params.size(); I != E; ++I)
      if (!Children[I]->matches(Params[I], MC))
        return false;
    return true;
  }
  case Kind::AttrParams: {
    if (!V.isAttr() || V.getAttr().getDef() != ADef)
      return false;
    if (BaseOnly)
      return true;
    const auto &Params = V.getAttr().getParams();
    if (Params.size() != Children.size())
      return false;
    for (size_t I = 0, E = Params.size(); I != E; ++I)
      if (!Children[I]->matches(Params[I], MC))
        return false;
    return true;
  }
  case Kind::IntKind:
    return V.isInt() && V.getInt().Width == IV.Width &&
           V.getInt().Sign == IV.Sign;
  case Kind::IntEq:
    return V.isInt() && V.getInt() == IV;
  case Kind::FloatKind:
    return V.isFloat() && (FV.Width == 0 || V.getFloat().Width == FV.Width);
  case Kind::FloatEq:
    return V.isFloat() && V.getFloat() == FV;
  case Kind::StringKind:
    return V.isString();
  case Kind::StringEq:
    return V.isString() && V.getString() == Str;
  case Kind::EnumKind:
  case Kind::EnumEq: {
    // Enum constraints accept both raw enum parameters and builtin.enum
    // attributes wrapping one (how enums appear as op attributes).
    const ParamValue *Inner = &V;
    ParamValue Unwrapped;
    if (V.isAttr()) {
      IRContext *Ctx = EDef->getDialect()->getContext();
      if (V.getAttr().getDef() != Ctx->getEnumAttrDef())
        return false;
      Unwrapped = V.getAttr().getParams()[0];
      Inner = &Unwrapped;
    }
    if (!Inner->isEnum())
      return false;
    return K == Kind::EnumKind ? Inner->getEnum().Def == EDef
                               : Inner->getEnum() == EV;
  }
  case Kind::ArrayOf: {
    if (!V.isArray())
      return false;
    if (Children.empty())
      return true;
    for (const ParamValue &Elem : V.getArray())
      if (!Children[0]->matches(Elem, MC))
        return false;
    return true;
  }
  case Kind::ArrayExact: {
    if (!V.isArray() || V.getArray().size() != Children.size())
      return false;
    for (size_t I = 0, E = Children.size(); I != E; ++I)
      if (!Children[I]->matches(V.getArray()[I], MC))
        return false;
    return true;
  }
  case Kind::OpaqueKind:
    return V.isOpaque() && V.getOpaque().ParamTypeName == Str;
  case Kind::AnyOf: {
    for (const ConstraintPtr &Child : Children) {
      MatchContext::Mark M = MC.mark();
      if (Child->matches(V, MC))
        return true;
      ++NumAnyOfRollbacks;
      MC.undoTo(M);
    }
    return false;
  }
  case Kind::And: {
    for (const ConstraintPtr &Child : Children)
      if (!Child->matches(V, MC))
        return false;
    return true;
  }
  case Kind::Not: {
    MatchContext::Mark M = MC.mark();
    bool Matched = Children[0]->matches(V, MC);
    MC.undoTo(M);
    return !Matched;
  }
  case Kind::Var: {
    const auto &Binding = MC.getBinding(VarIndex);
    if (Binding) {
      ++NumVarBindingHits;
      return *Binding == V;
    }
    if (!MC.getVarConstraint(VarIndex)->matches(V, MC))
      return false;
    MC.bind(VarIndex, V);
    ++NumVarBindings;
    return true;
  }
  case Kind::Cpp: {
    if (!Children[0]->matches(V, MC) || !CppPred)
      return false;
    ++NumCppPredEvals;
    return CppPred(V);
  }
  case Kind::Native: {
    if (!Children[0]->matches(V, MC) || !NativeFn)
      return false;
    ++NumNativePredEvals;
    return NativeFn(V);
  }
  case Kind::Named:
    return Children[0]->matches(V, MC);
  }
  return false;
}

std::optional<ParamValue>
Constraint::concreteValue(const MatchContext &MC) const {
  switch (K) {
  case Kind::TypeParams: {
    if (BaseOnly && TDef->getNumParams() != 0)
      return std::nullopt;
    std::vector<ParamValue> Params;
    for (const ConstraintPtr &Child : Children) {
      auto V = Child->concreteValue(MC);
      if (!V)
        return std::nullopt;
      Params.push_back(std::move(*V));
    }
    // Unverified construction would assert on bad params; check first.
    DiagnosticEngine Scratch;
    Type T = TDef->getDialect()->getContext()->getTypeChecked(
        TDef, std::move(Params), Scratch);
    if (!T)
      return std::nullopt;
    return ParamValue(T);
  }
  case Kind::AttrParams: {
    if (BaseOnly && ADef->getNumParams() != 0)
      return std::nullopt;
    std::vector<ParamValue> Params;
    for (const ConstraintPtr &Child : Children) {
      auto V = Child->concreteValue(MC);
      if (!V)
        return std::nullopt;
      Params.push_back(std::move(*V));
    }
    DiagnosticEngine Scratch;
    Attribute A = ADef->getDialect()->getContext()->getAttrChecked(
        ADef, std::move(Params), Scratch);
    if (!A)
      return std::nullopt;
    return ParamValue(A);
  }
  case Kind::IntEq:
    return ParamValue(IV);
  case Kind::FloatEq:
    return ParamValue(FV);
  case Kind::StringEq:
    return ParamValue(Str);
  case Kind::EnumEq:
    return ParamValue(EV);
  case Kind::ArrayExact: {
    std::vector<ParamValue> Elems;
    for (const ConstraintPtr &Child : Children) {
      auto V = Child->concreteValue(MC);
      if (!V)
        return std::nullopt;
      Elems.push_back(std::move(*V));
    }
    return ParamValue(std::move(Elems));
  }
  case Kind::Var:
    if (const auto &Binding = MC.getBinding(VarIndex))
      return *Binding;
    return std::nullopt;
  case Kind::And:
  case Kind::Cpp:
  case Kind::Native:
  case Kind::Named:
    // Derivable when some conjunct is.
    for (const ConstraintPtr &Child : Children)
      if (auto V = Child->concreteValue(MC))
        return V;
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static void printList(std::ostream &OS,
                      const std::vector<ConstraintPtr> &Cs) {
  for (size_t I = 0, E = Cs.size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << Cs[I]->str();
  }
}

std::string Constraint::str() const {
  std::ostringstream OS;
  switch (K) {
  case Kind::AnyType:
    OS << "!AnyType";
    break;
  case Kind::AnyAttr:
    OS << "#AnyAttr";
    break;
  case Kind::AnyParam:
    OS << "AnyParam";
    break;
  case Kind::TypeParams:
    OS << "!" << TDef->getFullName();
    if (!BaseOnly && !Children.empty()) {
      OS << "<";
      printList(OS, Children);
      OS << ">";
    }
    break;
  case Kind::AttrParams:
    OS << "#" << ADef->getFullName();
    if (!BaseOnly && !Children.empty()) {
      OS << "<";
      printList(OS, Children);
      OS << ">";
    }
    break;
  case Kind::IntKind:
    OS << (IV.Sign == Signedness::Unsigned ? "uint" : "int") << IV.Width
       << "_t";
    break;
  case Kind::IntEq:
    OS << IV.Value << " : "
       << (IV.Sign == Signedness::Unsigned ? "uint" : "int") << IV.Width
       << "_t";
    break;
  case Kind::FloatKind:
    if (FV.Width == 0)
      OS << "float";
    else
      OS << "float" << FV.Width << "_t";
    break;
  case Kind::FloatEq: {
    printFloatLiteral(FV.Value, OS);
    OS << " : float" << FV.Width << "_t";
    break;
  }
  case Kind::StringKind:
    OS << "string";
    break;
  case Kind::StringEq:
    OS << '"' << Str << '"';
    break;
  case Kind::EnumKind:
    OS << EDef->getFullName();
    break;
  case Kind::EnumEq:
    OS << EV.Def->getFullName() << "." << EV.Def->getCases()[EV.Index];
    break;
  case Kind::ArrayOf:
    if (Children.empty()) {
      OS << "array";
    } else {
      OS << "array<" << Children[0]->str() << ">";
    }
    break;
  case Kind::ArrayExact:
    OS << "[";
    printList(OS, Children);
    OS << "]";
    break;
  case Kind::OpaqueKind:
    OS << Str;
    break;
  case Kind::AnyOf:
    OS << "AnyOf<";
    printList(OS, Children);
    OS << ">";
    break;
  case Kind::And:
    OS << "And<";
    printList(OS, Children);
    OS << ">";
    break;
  case Kind::Not:
    OS << "Not<" << Children[0]->str() << ">";
    break;
  case Kind::Var:
    OS << "!" << Str;
    break;
  case Kind::Cpp:
    OS << "CppConstraint(" << Children[0]->str() << ", \"" << Str << "\")";
    break;
  case Kind::Native:
    OS << "NativeConstraint(" << Children[0]->str() << ", " << Str << ")";
    break;
  case Kind::Named:
    OS << Str;
    break;
  }
  return OS.str();
}
