//===- Registration.cpp ----------------------------------------------===//

#include "irdl/Registration.h"

#include "ir/Block.h"
#include "ir/Operation.h"
#include "ir/Region.h"
#include "irdl/ConstraintCompiler.h"
#include "irdl/ConstraintProfiler.h"
#include "irdl/Format.h"
#include "support/StringExtras.h"
#include "support/Timing.h"

using namespace irdl;

/// Matches \p V through the compiled program when the engine is enabled
/// (and the program exists), through the tree otherwise. The flag is read
/// per call so --compiled-constraints swaps engines for dialects that are
/// already registered; diagnostics always render from the tree, keeping
/// error text byte-identical across engines.
static bool constraintMatches(const ConstraintPtr &C,
                              const std::shared_ptr<const ConstraintProgram> &Prog,
                              const ParamValue &V, MatchContext &MC) {
  if (Prog && compiledConstraintsEnabled())
    return Prog->run(V, MC);
  return C->matches(V, MC);
}

//===----------------------------------------------------------------------===//
// Segmentation
//===----------------------------------------------------------------------===//

std::optional<std::vector<std::pair<unsigned, unsigned>>>
irdl::computeSegments(const std::vector<OperandSpec> &Specs, unsigned Actual,
                      const Operation *Op, std::string_view SegmentAttrName,
                      std::string &Err) {
  unsigned NumVariadic = 0;
  unsigned NumFixed = 0;
  for (const OperandSpec &S : Specs) {
    if (S.VK == VariadicKind::Single)
      ++NumFixed;
    else
      ++NumVariadic;
  }

  std::vector<std::pair<unsigned, unsigned>> Segments(Specs.size());

  if (NumVariadic == 0) {
    if (Actual != Specs.size()) {
      Err = "expected " + std::to_string(Specs.size()) + " but found " +
            std::to_string(Actual);
      return std::nullopt;
    }
    for (unsigned I = 0; I != Actual; ++I)
      Segments[I] = {I, 1};
    return Segments;
  }

  if (NumVariadic == 1) {
    if (Actual < NumFixed) {
      Err = "expected at least " + std::to_string(NumFixed) +
            " but found " + std::to_string(Actual);
      return std::nullopt;
    }
    unsigned Slack = Actual - NumFixed;
    unsigned Pos = 0;
    for (unsigned I = 0, E = Specs.size(); I != E; ++I) {
      if (Specs[I].VK == VariadicKind::Single) {
        Segments[I] = {Pos, 1};
        Pos += 1;
        continue;
      }
      if (Specs[I].VK == VariadicKind::Optional && Slack > 1) {
        Err = "optional definition '" + Specs[I].Name +
              "' matches at most one, but " + std::to_string(Slack) +
              " remain";
        return std::nullopt;
      }
      Segments[I] = {Pos, Slack};
      Pos += Slack;
    }
    return Segments;
  }

  // Two or more variadic definitions: segment sizes come from an attribute.
  Attribute SegAttr = Op->getAttr(SegmentAttrName);
  if (!SegAttr) {
    Err = "multiple variadic definitions require the '" +
          std::string(SegmentAttrName) + "' attribute";
    return std::nullopt;
  }
  IRContext *Ctx = SegAttr.getContext();
  if (SegAttr.getDef() != Ctx->getArrayAttrDef()) {
    Err = "'" + std::string(SegmentAttrName) +
          "' must be an array attribute";
    return std::nullopt;
  }
  const auto &Elems = SegAttr.getParams()[0].getArray();
  if (Elems.size() != Specs.size()) {
    Err = "'" + std::string(SegmentAttrName) + "' must have " +
          std::to_string(Specs.size()) + " entries";
    return std::nullopt;
  }
  unsigned Pos = 0;
  for (unsigned I = 0, E = Specs.size(); I != E; ++I) {
    const ParamValue &Elem = Elems[I];
    if (!Elem.isAttr() ||
        Elem.getAttr().getDef() != Ctx->getIntAttrDef()) {
      Err = "'" + std::string(SegmentAttrName) +
            "' entries must be integer attributes";
      return std::nullopt;
    }
    int64_t Size = Elem.getAttr().getParams()[0].getInt().Value;
    bool SizeOk = Size >= 0 &&
                  (Specs[I].VK != VariadicKind::Single || Size == 1) &&
                  (Specs[I].VK != VariadicKind::Optional || Size <= 1);
    if (!SizeOk) {
      Err = "segment size " + std::to_string(Size) +
            " is invalid for definition '" + Specs[I].Name + "'";
      return std::nullopt;
    }
    Segments[I] = {Pos, static_cast<unsigned>(Size)};
    Pos += static_cast<unsigned>(Size);
  }
  if (Pos != Actual) {
    Err = "segment sizes sum to " + std::to_string(Pos) + " but " +
          std::to_string(Actual) + " were found";
    return std::nullopt;
  }
  return Segments;
}

//===----------------------------------------------------------------------===//
// Verifier construction
//===----------------------------------------------------------------------===//

namespace {

/// Builds the parameter verifier for a type/attribute definition.
TypeOrAttrDefinitionBase::VerifierFn
buildTypeOrAttrVerifier(std::shared_ptr<DialectSpec> Owner,
                        const TypeOrAttrSpec &Spec,
                        NativeConstraintFn NativeVerifier) {
  std::shared_ptr<const TypeOrAttrSpec> Ref(Owner, &Spec);
  return [Ref, NativeVerifier](const std::vector<ParamValue> &Params,
                               DiagnosticEngine &Diags,
                               SMLoc Loc) -> LogicalResult {
    const TypeOrAttrSpec &S = *Ref;
    std::string FullName = S.Def->getFullName();
    if (Params.size() != S.Params.size()) {
      Diags.emitError(Loc, "'" + FullName + "' expects " +
                               std::to_string(S.Params.size()) +
                               " parameters but got " +
                               std::to_string(Params.size()));
      return failure();
    }
    MatchContext MC;
    for (size_t I = 0, E = Params.size(); I != E; ++I) {
      if (!constraintMatches(S.Params[I].Constr, S.Params[I].Prog,
                             Params[I], MC)) {
        Diags.emitError(Loc, "parameter '" + S.Params[I].Name + "' of '" +
                                 FullName +
                                 "' does not satisfy constraint " +
                                 S.Params[I].Constr->str());
        return failure();
      }
    }
    if (S.CppConstraint) {
      CppExpr::EvalContext Ctx;
      Ctx.Self = CppEvalValue(ParamRecord{S.Def, &Params});
      auto B = S.CppConstraint->evaluateBool(Ctx);
      if (!B || !*B) {
        Diags.emitError(Loc, "'" + FullName +
                                 "' violates its IRDL-C++ constraint \"" +
                                 S.CppConstraintSrc + "\"");
        return failure();
      }
    }
    if (NativeVerifier && !NativeVerifier(ParamValue(
                              std::vector<ParamValue>(Params)))) {
      Diags.emitError(Loc, "'" + FullName +
                               "' violates its native constraint");
      return failure();
    }
    return success();
  };
}

/// Builds the operation verifier for an OpSpec.
OpDefinition::VerifierFn buildOpVerifier(
    std::shared_ptr<DialectSpec> Owner, const OpSpec &Spec,
    std::function<LogicalResult(Operation *, DiagnosticEngine &)>
        NativeVerifier) {
  std::shared_ptr<const OpSpec> Ref(Owner, &Spec);
  return [Ref, NativeVerifier](Operation *Op,
                               DiagnosticEngine &Diags) -> LogicalResult {
    const OpSpec &S = *Ref;
    std::string FullName = S.Def->getFullName();
    std::string Err;
    MatchContext MC(&S.VarConstraints);

    // Operands.
    auto OperandSegments = computeSegments(
        S.Operands, Op->getNumOperands(), Op, "operandSegmentSizes", Err);
    if (!OperandSegments) {
      Diags.emitError(Op->getLoc(),
                      "'" + FullName + "' operand count mismatch: " + Err);
      return failure();
    }
    for (size_t I = 0, E = S.Operands.size(); I != E; ++I) {
      auto [Begin, Size] = (*OperandSegments)[I];
      for (unsigned J = 0; J != Size; ++J) {
        Type Ty = Op->getOperand(Begin + J).getType();
        if (!constraintMatches(S.Operands[I].Constr, S.Operands[I].Prog,
                               ParamValue(Ty), MC)) {
          Diags.emitError(Op->getLoc(),
                          "operand '" + S.Operands[I].Name + "' of '" +
                              FullName + "' (type " + Ty.str() +
                              ") does not satisfy constraint " +
                              S.Operands[I].Constr->str());
          return failure();
        }
      }
    }

    // Results.
    auto ResultSegments = computeSegments(
        S.Results, Op->getNumResults(), Op, "resultSegmentSizes", Err);
    if (!ResultSegments) {
      Diags.emitError(Op->getLoc(),
                      "'" + FullName + "' result count mismatch: " + Err);
      return failure();
    }
    for (size_t I = 0, E = S.Results.size(); I != E; ++I) {
      auto [Begin, Size] = (*ResultSegments)[I];
      for (unsigned J = 0; J != Size; ++J) {
        Type Ty = Op->getResult(Begin + J).getType();
        if (!constraintMatches(S.Results[I].Constr, S.Results[I].Prog,
                               ParamValue(Ty), MC)) {
          Diags.emitError(Op->getLoc(),
                          "result '" + S.Results[I].Name + "' of '" +
                              FullName + "' (type " + Ty.str() +
                              ") does not satisfy constraint " +
                              S.Results[I].Constr->str());
          return failure();
        }
      }
    }

    // Attributes.
    for (const ParamSpec &A : S.Attributes) {
      Attribute Attr = Op->getAttr(A.Name);
      if (!Attr) {
        Diags.emitError(Op->getLoc(), "'" + FullName +
                                          "' requires attribute '" +
                                          A.Name + "'");
        return failure();
      }
      if (!constraintMatches(A.Constr, A.Prog, ParamValue(Attr), MC)) {
        Diags.emitError(Op->getLoc(),
                        "attribute '" + A.Name + "' of '" + FullName +
                            "' does not satisfy constraint " +
                            A.Constr->str());
        return failure();
      }
    }

    // Regions.
    if (Op->getNumRegions() != S.Regions.size()) {
      Diags.emitError(Op->getLoc(),
                      "'" + FullName + "' expects " +
                          std::to_string(S.Regions.size()) +
                          " regions but has " +
                          std::to_string(Op->getNumRegions()));
      return failure();
    }
    for (size_t I = 0, E = S.Regions.size(); I != E; ++I) {
      const RegionSpec &RS = S.Regions[I];
      Region &R = Op->getRegion(I);
      if (!RS.Args.empty() || !RS.TerminatorOpName.empty()) {
        if (R.empty()) {
          Diags.emitError(Op->getLoc(), "region '" + RS.Name + "' of '" +
                                            FullName +
                                            "' must not be empty");
          return failure();
        }
      }
      if (!RS.Args.empty()) {
        Block &Entry = R.front();
        auto ArgSegments =
            computeSegments(RS.Args, Entry.getNumArguments(), Op,
                            "argumentSegmentSizes", Err);
        if (!ArgSegments) {
          Diags.emitError(Op->getLoc(), "region '" + RS.Name + "' of '" +
                                            FullName +
                                            "' argument mismatch: " + Err);
          return failure();
        }
        for (size_t A = 0, AE = RS.Args.size(); A != AE; ++A) {
          auto [Begin, Size] = (*ArgSegments)[A];
          for (unsigned J = 0; J != Size; ++J) {
            Type Ty = Entry.getArgument(Begin + J).getType();
            if (!constraintMatches(RS.Args[A].Constr, RS.Args[A].Prog,
                                   ParamValue(Ty), MC)) {
              Diags.emitError(
                  Op->getLoc(),
                  "argument '" + RS.Args[A].Name + "' of region '" +
                      RS.Name + "' does not satisfy constraint " +
                      RS.Args[A].Constr->str());
              return failure();
            }
          }
        }
      }
      if (!RS.TerminatorOpName.empty()) {
        if (R.getNumBlocks() != 1) {
          Diags.emitError(Op->getLoc(),
                          "region '" + RS.Name + "' of '" + FullName +
                              "' must consist of a single block");
          return failure();
        }
        Operation *Term = R.front().empty() ? nullptr : &R.front().back();
        if (!Term || Term->getName().str() != RS.TerminatorOpName) {
          Diags.emitError(Op->getLoc(),
                          "region '" + RS.Name + "' of '" + FullName +
                              "' must end with '" + RS.TerminatorOpName +
                              "'");
          return failure();
        }
      }
    }

    // IRDL-C++ global constraint.
    if (S.CppConstraint) {
      CppExpr::EvalContext Ctx;
      Ctx.Self = CppEvalValue(Op);
      Ctx.Spec = &S;
      auto B = S.CppConstraint->evaluateBool(Ctx);
      if (!B || !*B) {
        Diags.emitError(Op->getLoc(),
                        "'" + FullName +
                            "' violates its IRDL-C++ constraint \"" +
                            S.CppConstraintSrc + "\"");
        return failure();
      }
    }
    if (NativeVerifier)
      return NativeVerifier(Op, Diags);
    return success();
  };
}

} // namespace

//===----------------------------------------------------------------------===//
// Installation
//===----------------------------------------------------------------------===//

LogicalResult irdl::registerDialectSpec(std::shared_ptr<DialectSpec> Spec,
                                        IRContext &Ctx,
                                        DiagnosticEngine &Diags,
                                        const IRDLLoadOptions &Opts) {
  // Compile every resolved constraint into its flat program form up
  // front, so verification never pays the lowering cost. Slots that
  // already carry a program — bytecode loads deserialize compiled
  // programs straight from the v2 Programs section — are kept as-is;
  // only their profiler attribution is (re-)registered.
  {
    IRDL_TIME_SCOPE("irdl.compile-constraint-programs");
    // Every program is registered with the constraint profiler under a
    // "<dialect>.<symbol> <slot> '<name>'" attribution name, so
    // --profile-constraints reports hot programs by source location
    // rather than bare program ids.
    ConstraintProfiler &Prof = ConstraintProfiler::instance();
    auto CompileParams = [&](std::vector<ParamSpec> &Params,
                             const std::string &Owner) {
      for (ParamSpec &P : Params) {
        if (!P.Prog)
          P.Prog = ConstraintCompiler::compile(P.Constr);
        Prof.registerProgram(P.Prog, Owner + " param '" + P.Name + "'");
      }
    };
    for (TypeOrAttrSpec &TS : Spec->Types)
      CompileParams(TS.Params, Spec->Name + "." + TS.Name);
    for (TypeOrAttrSpec &TS : Spec->Attrs)
      CompileParams(TS.Params, Spec->Name + "." + TS.Name);
    for (OpSpec &OS : Spec->Ops) {
      std::string Owner = Spec->Name + "." + OS.Name;
      if (OS.VarPrograms.empty())
        OS.VarPrograms =
            ConstraintCompiler::compileVarPrograms(OS.VarConstraints);
      for (size_t I = 0; I != OS.VarPrograms.size(); ++I)
        Prof.registerProgram(
            OS.VarPrograms[I],
            Owner + " var '" +
                (I < OS.VarNames.size() ? OS.VarNames[I] : "?") + "'");
      for (OperandSpec &O : OS.Operands) {
        if (!O.Prog)
          O.Prog = ConstraintCompiler::compile(O.Constr, OS.VarPrograms);
        Prof.registerProgram(O.Prog, Owner + " operand '" + O.Name + "'");
      }
      for (OperandSpec &R : OS.Results) {
        if (!R.Prog)
          R.Prog = ConstraintCompiler::compile(R.Constr, OS.VarPrograms);
        Prof.registerProgram(R.Prog, Owner + " result '" + R.Name + "'");
      }
      for (ParamSpec &A : OS.Attributes) {
        if (!A.Prog)
          A.Prog = ConstraintCompiler::compile(A.Constr, OS.VarPrograms);
        Prof.registerProgram(A.Prog, Owner + " attr '" + A.Name + "'");
      }
      for (RegionSpec &RS : OS.Regions)
        for (OperandSpec &Arg : RS.Args) {
          if (!Arg.Prog)
            Arg.Prog =
                ConstraintCompiler::compile(Arg.Constr, OS.VarPrograms);
          Prof.registerProgram(Arg.Prog,
                               Owner + " region arg '" + Arg.Name + "'");
        }
    }
  }

  // Opaque parameter kinds get a default identity codec (the IRDL-C++
  // CppParser/CppPrinter sources are carried for documentation; a host
  // can overwrite the codec for real validation).
  for (const ParamTypeSpec &P : Spec->ParamTypes) {
    std::string FullName = Spec->Name + "." + P.Name;
    if (!Ctx.lookupOpaqueParamCodec(FullName)) {
      OpaqueParamCodec Identity;
      Identity.Print = [](const OpaqueVal &V) { return V.Payload; };
      Identity.Parse =
          [](std::string_view Payload) -> std::optional<std::string> {
        return std::string(Payload);
      };
      Ctx.registerOpaqueParamCodec(FullName, std::move(Identity));
    }
  }

  auto InstallTypeOrAttr = [&](TypeOrAttrSpec &TS) -> LogicalResult {
    NativeConstraintFn Native;
    if (startsWith(TS.CppConstraintSrc, "native:")) {
      auto It =
          Opts.NativeConstraints.find(TS.CppConstraintSrc.substr(7));
      if (It == Opts.NativeConstraints.end()) {
        Diags.emitError(SMLoc(), "no native constraint registered under '" +
                                     TS.CppConstraintSrc.substr(7) + "'");
        return failure();
      }
      Native = It->second;
    }
    TS.Def->setVerifier(buildTypeOrAttrVerifier(Spec, TS, Native));
    TS.Def->setRequiresCpp(TS.requiresCppVerifier() ||
                           !TS.CppConstraintSrc.empty() ||
                           TS.requiresCppParams());
    return success();
  };

  for (TypeOrAttrSpec &TS : Spec->Types)
    if (failed(InstallTypeOrAttr(TS)))
      return failure();
  for (TypeOrAttrSpec &TS : Spec->Attrs)
    if (failed(InstallTypeOrAttr(TS)))
      return failure();

  for (OpSpec &OS : Spec->Ops) {
    std::function<LogicalResult(Operation *, DiagnosticEngine &)> Native;
    if (!OS.NativeVerifierName.empty()) {
      auto It = Opts.NativeOpVerifiers.find(OS.NativeVerifierName);
      if (It == Opts.NativeOpVerifiers.end()) {
        Diags.emitError(SMLoc(), "no native op verifier registered under '" +
                                     OS.NativeVerifierName + "'");
        return failure();
      }
      Native = It->second;
    }
    OS.Def->setVerifier(buildOpVerifier(Spec, OS, Native));
    if (OS.Successors) {
      OS.Def->setTerminator();
      OS.Def->setNumSuccessors(OS.Successors->size());
    }
    OS.Def->setRequiresCpp(OS.requiresCppVerifier() ||
                           !OS.localConstraintsInIRDL());
    if (OS.HasFormat)
      if (failed(installFormat(Spec, OS, Diags)))
        return failure();
  }

  return success();
}
