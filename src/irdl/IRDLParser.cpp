//===- IRDLParser.cpp -----------------------------------------------===//

#include "irdl/IRDLParser.h"

#include "ir/IRLexer.h"
#include "support/LogicalResult.h"
#include "support/StringExtras.h"

#include <cstdlib>

using namespace irdl;
using namespace irdl::ast;

namespace {

class IRDLParserImpl {
public:
  IRDLParserImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Diags(Diags), Lex(Source, Diags) {}

  std::vector<DialectDecl> parseTopLevel() {
    std::vector<DialectDecl> Dialects;
    while (!tok().is(IRToken::Kind::Eof)) {
      if (tok().is(IRToken::Kind::Error))
        return {};
      if (!tok().isIdent("Dialect")) {
        error(tok().Loc, "expected 'Dialect' at top level");
        return {};
      }
      DialectDecl D;
      if (failed(parseDialect(D)))
        return {};
      Dialects.push_back(std::move(D));
    }
    return Dialects;
  }

private:
  const IRToken &tok() const { return Lex.getToken(); }
  void lex() { Lex.lex(); }

  bool consumeIf(IRToken::Kind K) {
    if (!tok().is(K))
      return false;
    lex();
    return true;
  }

  LogicalResult expect(IRToken::Kind K, std::string_view What) {
    if (consumeIf(K))
      return success();
    return error(tok().Loc, "expected " + std::string(What));
  }

  LogicalResult error(SMLoc Loc, std::string Message) {
    Diags.emitError(Loc, std::move(Message));
    return failure();
  }

  /// Parses a plain identifier; fails with a message naming \p What.
  LogicalResult parseIdent(std::string &Result, std::string_view What) {
    if (!tok().is(IRToken::Kind::Identifier))
      return error(tok().Loc, "expected " + std::string(What));
    Result = tok().Spelling;
    lex();
    return success();
  }

  /// Parses `a.b.c`.
  LogicalResult parseDottedPath(std::vector<std::string> &Path,
                                std::string_view What) {
    std::string First;
    if (failed(parseIdent(First, What)))
      return failure();
    Path.push_back(std::move(First));
    while (consumeIf(IRToken::Kind::Dot)) {
      std::string Next;
      if (failed(parseIdent(Next, "identifier after '.'")))
        return failure();
      Path.push_back(std::move(Next));
    }
    return success();
  }

  /// Parses a quoted string following a directive keyword.
  LogicalResult parseDirectiveString(std::string &Result,
                                     std::string_view Directive) {
    if (!tok().is(IRToken::Kind::String))
      return error(tok().Loc, "expected string literal after '" +
                                  std::string(Directive) + "'");
    Result = tok().Spelling;
    lex();
    return success();
  }

  //===------------------------------------------------------------------===//
  // Constraint expressions
  //===------------------------------------------------------------------===//

  LogicalResult parseConstraintExpr(ConstraintExprPtr &Result) {
    auto Expr = std::make_unique<ConstraintExpr>();
    Expr->Loc = tok().Loc;

    // Literals.
    if (tok().is(IRToken::Kind::Minus) ||
        tok().is(IRToken::Kind::Integer) ||
        tok().is(IRToken::Kind::Float)) {
      bool Negative = consumeIf(IRToken::Kind::Minus);
      if (tok().is(IRToken::Kind::Integer)) {
        auto V = parseUInt(tok().Spelling);
        if (!V)
          return error(tok().Loc, "integer literal out of range");
        Expr->K = ConstraintExpr::Kind::IntLit;
        Expr->IntValue =
            Negative ? -static_cast<int64_t>(*V) : static_cast<int64_t>(*V);
        lex();
      } else if (tok().is(IRToken::Kind::Float)) {
        Expr->K = ConstraintExpr::Kind::FloatLit;
        Expr->FloatValue = std::strtod(tok().Spelling.c_str(), nullptr);
        if (Negative)
          Expr->FloatValue = -Expr->FloatValue;
        lex();
      } else {
        return error(tok().Loc, "expected numeric literal after '-'");
      }
      // Optional kind annotation: `3 : int32_t`.
      if (consumeIf(IRToken::Kind::Colon))
        if (failed(parseDottedPath(Expr->KindRef, "literal kind")))
          return failure();
      Result = std::move(Expr);
      return success();
    }

    if (tok().is(IRToken::Kind::String)) {
      Expr->K = ConstraintExpr::Kind::StrLit;
      Expr->StrValue = tok().Spelling;
      lex();
      Result = std::move(Expr);
      return success();
    }

    // [pc1, ..., pcN]
    if (consumeIf(IRToken::Kind::LSquare)) {
      Expr->K = ConstraintExpr::Kind::ArrayExact;
      if (!tok().is(IRToken::Kind::RSquare)) {
        do {
          ConstraintExprPtr Elem;
          if (failed(parseConstraintExpr(Elem)))
            return failure();
          Expr->Args.push_back(std::move(Elem));
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::RSquare,
                        "']' in array constraint")))
        return failure();
      Result = std::move(Expr);
      return success();
    }

    // [!|#] path [<args>]
    Expr->K = ConstraintExpr::Kind::Ref;
    if (consumeIf(IRToken::Kind::Bang))
      Expr->Sigil = '!';
    else if (consumeIf(IRToken::Kind::Hash))
      Expr->Sigil = '#';
    if (failed(parseDottedPath(Expr->Path, "constraint")))
      return failure();
    if (consumeIf(IRToken::Kind::Less)) {
      Expr->HasArgs = true;
      if (!tok().is(IRToken::Kind::Greater)) {
        do {
          ConstraintExprPtr Arg;
          if (failed(parseConstraintExpr(Arg)))
            return failure();
          Expr->Args.push_back(std::move(Arg));
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::Greater,
                        "'>' in constraint arguments")))
        return failure();
    }
    Result = std::move(Expr);
    return success();
  }

  /// Parses `(name: expr, ...)`; when \p AllowSigilNames, names may be
  /// prefixed with ! or # (ConstraintVar declarations).
  LogicalResult parseNamedConstraintList(std::vector<NamedConstraint> &Out,
                                         std::string_view What,
                                         bool AllowSigilNames = false) {
    if (failed(expect(IRToken::Kind::LParen,
                      "'(' after " + std::string(What))))
      return failure();
    if (consumeIf(IRToken::Kind::RParen))
      return success();
    do {
      NamedConstraint NC;
      NC.Loc = tok().Loc;
      if (AllowSigilNames)
        (void)(consumeIf(IRToken::Kind::Bang) ||
               consumeIf(IRToken::Kind::Hash));
      if (failed(parseIdent(NC.Name, "name in " + std::string(What))))
        return failure();
      if (failed(expect(IRToken::Kind::Colon, "':' after name")))
        return failure();
      if (failed(parseConstraintExpr(NC.Constr)))
        return failure();
      Out.push_back(std::move(NC));
    } while (consumeIf(IRToken::Kind::Comma));
    return expect(IRToken::Kind::RParen,
                  "')' after " + std::string(What));
  }

  //===------------------------------------------------------------------===//
  // Declarations
  //===------------------------------------------------------------------===//

  LogicalResult parseTypeOrAttr(TypeOrAttrDecl &Decl, bool IsAttr) {
    Decl.IsAttr = IsAttr;
    Decl.Loc = tok().Loc;
    lex(); // consume 'Type' / 'Attribute'
    if (failed(parseIdent(Decl.Name, IsAttr ? "attribute name"
                                            : "type name")) ||
        failed(expect(IRToken::Kind::LBrace, "'{' to begin definition")))
      return failure();
    while (!consumeIf(IRToken::Kind::RBrace)) {
      if (tok().isIdent("Parameters")) {
        lex();
        if (failed(parseNamedConstraintList(Decl.Params, "Parameters")))
          return failure();
      } else if (tok().isIdent("Summary")) {
        lex();
        if (failed(parseDirectiveString(Decl.Summary, "Summary")))
          return failure();
      } else if (tok().isIdent("CppConstraint")) {
        lex();
        Decl.HasCppConstraint = true;
        if (failed(parseDirectiveString(Decl.CppConstraint,
                                        "CppConstraint")))
          return failure();
      } else {
        return error(tok().Loc,
                     "expected Parameters, Summary, or CppConstraint");
      }
    }
    return success();
  }

  LogicalResult parseRegionDecl(RegionDecl &Decl) {
    Decl.Loc = tok().Loc;
    lex(); // consume 'Region'
    if (failed(parseIdent(Decl.Name, "region name")) ||
        failed(expect(IRToken::Kind::LBrace, "'{' to begin region")))
      return failure();
    while (!consumeIf(IRToken::Kind::RBrace)) {
      if (tok().isIdent("Arguments")) {
        lex();
        if (failed(parseNamedConstraintList(Decl.Args, "Arguments")))
          return failure();
      } else if (tok().isIdent("Terminator")) {
        lex();
        if (failed(parseDottedPath(Decl.Terminator, "terminator op name")))
          return failure();
      } else {
        return error(tok().Loc, "expected Arguments or Terminator");
      }
    }
    return success();
  }

  LogicalResult parseOperation(OpDecl &Decl) {
    Decl.Loc = tok().Loc;
    lex(); // consume 'Operation'
    if (failed(parseIdent(Decl.Name, "operation name")) ||
        failed(expect(IRToken::Kind::LBrace, "'{' to begin operation")))
      return failure();
    while (!consumeIf(IRToken::Kind::RBrace)) {
      if (tok().isIdent("ConstraintVar") || tok().isIdent("ConstraintVars")) {
        lex();
        if (failed(parseNamedConstraintList(Decl.ConstraintVars,
                                            "ConstraintVars",
                                            /*AllowSigilNames=*/true)))
          return failure();
      } else if (tok().isIdent("Operands")) {
        lex();
        if (failed(parseNamedConstraintList(Decl.Operands, "Operands")))
          return failure();
      } else if (tok().isIdent("Results")) {
        lex();
        if (failed(parseNamedConstraintList(Decl.Results, "Results")))
          return failure();
      } else if (tok().isIdent("Attributes")) {
        lex();
        if (failed(parseNamedConstraintList(Decl.Attributes, "Attributes")))
          return failure();
      } else if (tok().isIdent("Region")) {
        RegionDecl R;
        if (failed(parseRegionDecl(R)))
          return failure();
        Decl.Regions.push_back(std::move(R));
      } else if (tok().isIdent("Successors")) {
        lex();
        Decl.Successors.emplace();
        if (failed(expect(IRToken::Kind::LParen, "'(' after Successors")))
          return failure();
        if (!consumeIf(IRToken::Kind::RParen)) {
          do {
            std::string Name;
            if (failed(parseIdent(Name, "successor name")))
              return failure();
            Decl.Successors->push_back(std::move(Name));
          } while (consumeIf(IRToken::Kind::Comma));
          if (failed(expect(IRToken::Kind::RParen,
                            "')' after successors")))
            return failure();
        }
      } else if (tok().isIdent("Format")) {
        lex();
        Decl.HasFormat = true;
        if (failed(parseDirectiveString(Decl.Format, "Format")))
          return failure();
      } else if (tok().isIdent("Summary")) {
        lex();
        if (failed(parseDirectiveString(Decl.Summary, "Summary")))
          return failure();
      } else if (tok().isIdent("CppConstraint")) {
        lex();
        Decl.HasCppConstraint = true;
        if (failed(parseDirectiveString(Decl.CppConstraint,
                                        "CppConstraint")))
          return failure();
      } else {
        return error(tok().Loc, "unknown directive in operation body");
      }
    }
    return success();
  }

  LogicalResult parseAlias(AliasDecl &Decl) {
    Decl.Loc = tok().Loc;
    lex(); // consume 'Alias'
    if (consumeIf(IRToken::Kind::Bang))
      Decl.Sigil = '!';
    else if (consumeIf(IRToken::Kind::Hash))
      Decl.Sigil = '#';
    if (failed(parseIdent(Decl.Name, "alias name")))
      return failure();
    if (consumeIf(IRToken::Kind::Less)) {
      do {
        std::string Param;
        // Parameters may themselves carry a sigil (ignored).
        (void)(consumeIf(IRToken::Kind::Bang) ||
               consumeIf(IRToken::Kind::Hash));
        if (failed(parseIdent(Param, "alias parameter")))
          return failure();
        Decl.Params.push_back(std::move(Param));
      } while (consumeIf(IRToken::Kind::Comma));
      if (failed(expect(IRToken::Kind::Greater,
                        "'>' after alias parameters")))
        return failure();
    }
    if (failed(expect(IRToken::Kind::Equal, "'=' in alias definition")))
      return failure();
    return parseConstraintExpr(Decl.Body);
  }

  LogicalResult parseEnum(EnumDecl &Decl) {
    Decl.Loc = tok().Loc;
    lex(); // consume 'Enum'
    if (failed(parseIdent(Decl.Name, "enum name")) ||
        failed(expect(IRToken::Kind::LBrace, "'{' to begin enum")))
      return failure();
    if (!consumeIf(IRToken::Kind::RBrace)) {
      do {
        std::string Case;
        if (failed(parseIdent(Case, "enum constructor")))
          return failure();
        Decl.Cases.push_back(std::move(Case));
      } while (consumeIf(IRToken::Kind::Comma));
      if (failed(expect(IRToken::Kind::RBrace, "'}' after enum cases")))
        return failure();
    }
    return success();
  }

  LogicalResult parseConstraintDecl(ConstraintDecl &Decl) {
    Decl.Loc = tok().Loc;
    lex(); // consume 'Constraint'
    if (failed(parseIdent(Decl.Name, "constraint name")) ||
        failed(expect(IRToken::Kind::Colon,
                      "':' before base constraint")) ||
        failed(parseConstraintExpr(Decl.Base)) ||
        failed(expect(IRToken::Kind::LBrace, "'{' to begin constraint")))
      return failure();
    while (!consumeIf(IRToken::Kind::RBrace)) {
      if (tok().isIdent("Summary")) {
        lex();
        if (failed(parseDirectiveString(Decl.Summary, "Summary")))
          return failure();
      } else if (tok().isIdent("CppConstraint")) {
        lex();
        Decl.HasCppConstraint = true;
        if (failed(parseDirectiveString(Decl.CppConstraint,
                                        "CppConstraint")))
          return failure();
      } else {
        return error(tok().Loc, "expected Summary or CppConstraint");
      }
    }
    return success();
  }

  LogicalResult parseTypeOrAttrParam(TypeOrAttrParamDecl &Decl) {
    Decl.Loc = tok().Loc;
    lex(); // consume 'TypeOrAttrParam'
    if (failed(parseIdent(Decl.Name, "parameter kind name")) ||
        failed(expect(IRToken::Kind::LBrace,
                      "'{' to begin parameter kind")))
      return failure();
    while (!consumeIf(IRToken::Kind::RBrace)) {
      std::string *Target = nullptr;
      if (tok().isIdent("Summary"))
        Target = &Decl.Summary;
      else if (tok().isIdent("CppClassName"))
        Target = &Decl.CppClassName;
      else if (tok().isIdent("CppParser"))
        Target = &Decl.CppParser;
      else if (tok().isIdent("CppPrinter"))
        Target = &Decl.CppPrinter;
      else
        return error(tok().Loc, "expected Summary, CppClassName, "
                                "CppParser, or CppPrinter");
      std::string Directive = tok().Spelling;
      lex();
      if (failed(parseDirectiveString(*Target, Directive)))
        return failure();
    }
    return success();
  }

  LogicalResult parseDialect(DialectDecl &Decl) {
    Decl.Loc = tok().Loc;
    lex(); // consume 'Dialect'
    if (failed(parseIdent(Decl.Name, "dialect name")) ||
        failed(expect(IRToken::Kind::LBrace, "'{' to begin dialect")))
      return failure();
    while (!consumeIf(IRToken::Kind::RBrace)) {
      if (tok().isIdent("Type") || tok().isIdent("Attribute")) {
        TypeOrAttrDecl D;
        if (failed(parseTypeOrAttr(D, tok().isIdent("Attribute"))))
          return failure();
        Decl.TypesAndAttrs.push_back(std::move(D));
      } else if (tok().isIdent("Operation")) {
        OpDecl D;
        if (failed(parseOperation(D)))
          return failure();
        Decl.Ops.push_back(std::move(D));
      } else if (tok().isIdent("Alias")) {
        AliasDecl D;
        if (failed(parseAlias(D)))
          return failure();
        Decl.Aliases.push_back(std::move(D));
      } else if (tok().isIdent("Enum")) {
        EnumDecl D;
        if (failed(parseEnum(D)))
          return failure();
        Decl.Enums.push_back(std::move(D));
      } else if (tok().isIdent("Constraint")) {
        ConstraintDecl D;
        if (failed(parseConstraintDecl(D)))
          return failure();
        Decl.Constraints.push_back(std::move(D));
      } else if (tok().isIdent("TypeOrAttrParam")) {
        TypeOrAttrParamDecl D;
        if (failed(parseTypeOrAttrParam(D)))
          return failure();
        Decl.ParamTypes.push_back(std::move(D));
      } else {
        return error(tok().Loc, "unknown directive in dialect body");
      }
    }
    return success();
  }

  DiagnosticEngine &Diags;
  IRLexer Lex;
};

} // namespace

std::vector<DialectDecl> irdl::parseIRDL(std::string_view Source,
                                         DiagnosticEngine &Diags) {
  return IRDLParserImpl(Source, Diags).parseTopLevel();
}
