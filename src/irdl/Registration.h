//===- Registration.h - Installing IRDL specs into a context -----*- C++ -*-===//
///
/// \file
/// Pass 3 of the loader: compiles the resolved specs of a dialect into
/// runtime verifiers and custom-syntax hooks and installs them on the
/// (already created) definitions. Also exposes the operand/result
/// segmentation logic shared with tooling.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_REGISTRATION_H
#define IRDL_IRDL_REGISTRATION_H

#include "irdl/IRDL.h"

namespace irdl {

/// Computes for each operand/result definition the [begin, size) slice of
/// the actual list (Section 4.6 variadic matching). With two or more
/// variadic definitions, sizes come from the integer-array attribute
/// \p SegmentAttrName on \p Op (the paper: "an attribute containing the
/// size of the variadic operands and results is expected"). On mismatch,
/// fills \p Err and returns nullopt.
std::optional<std::vector<std::pair<unsigned, unsigned>>>
computeSegments(const std::vector<OperandSpec> &Specs, unsigned Actual,
                const Operation *Op, std::string_view SegmentAttrName,
                std::string &Err);

/// Installs verifiers, terminator flags, and format hooks for \p Spec.
LogicalResult registerDialectSpec(std::shared_ptr<DialectSpec> Spec,
                                  IRContext &Ctx, DiagnosticEngine &Diags,
                                  const IRDLLoadOptions &Opts);

} // namespace irdl

#endif // IRDL_IRDL_REGISTRATION_H
