//===- Sema.h - IRDL semantic analysis ----------------------------*- C++ -*-===//
///
/// \file
/// Internal interface between the loader passes: name resolution and
/// constraint lowering from the AST (IRDLAst.h) to resolved specs
/// (Spec.h). Exposed for white-box testing.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_SEMA_H
#define IRDL_IRDL_SEMA_H

#include "irdl/IRDL.h"
#include "irdl/IRDLAst.h"

namespace irdl {

/// Shared state of one load: the AST-level symbol tables consulted during
/// resolution (aliases, named constraints, opaque parameter kinds).
class Sema {
public:
  Sema(IRContext &Ctx, DiagnosticEngine &Diags,
       const IRDLLoadOptions &Opts)
      : Ctx(Ctx), Diags(Diags), Opts(Opts) {}

  /// Pass 1: creates the dialect and skeleton definitions (names and
  /// parameter names only), so that cross-references resolve in pass 2.
  /// Also indexes aliases / constraints / param kinds.
  LogicalResult declareDialect(const ast::DialectDecl &Decl);

  /// Pass 2: resolves every declaration of \p Decl into \p Spec.
  LogicalResult resolveDialect(const ast::DialectDecl &Decl,
                               DialectSpec &Spec);

  IRContext &getContext() { return Ctx; }
  DiagnosticEngine &getDiags() { return Diags; }
  const IRDLLoadOptions &getOptions() const { return Opts; }

private:
  friend class ConstraintResolver;

  struct DialectTables {
    const ast::DialectDecl *Decl = nullptr;
    Dialect *D = nullptr;
    std::map<std::string, const ast::AliasDecl *, std::less<>> Aliases;
    std::map<std::string, const ast::ConstraintDecl *, std::less<>>
        Constraints;
    std::map<std::string, const ast::TypeOrAttrParamDecl *, std::less<>>
        ParamTypes;
    /// Cache of resolved named constraints.
    std::map<std::string, ConstraintPtr, std::less<>> ResolvedConstraints;
  };

  DialectTables *lookupTables(std::string_view DialectName);

  IRContext &Ctx;
  DiagnosticEngine &Diags;
  const IRDLLoadOptions &Opts;
  std::map<std::string, DialectTables, std::less<>> Tables;
};

} // namespace irdl

#endif // IRDL_IRDL_SEMA_H
