//===- Format.cpp ---------------------------------------------------===//

#include "irdl/Format.h"

#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "irdl/ConstraintCompiler.h"
#include "support/StringExtras.h"

#include <map>
#include <set>

using namespace irdl;

namespace {

struct FormatElement {
  enum class Kind { Literal, Operand, AttrField, Var, VarParam };
  Kind K;
  /// Literal: raw text. Others: unused.
  std::string Text;
  /// Literal: expected tokens (kind + spelling for identifier-likes).
  std::vector<std::pair<IRToken::Kind, std::string>> Tokens;
  /// Operand / AttrField / Var index.
  unsigned Index = 0;
  /// VarParam: parameter index within the var's parametric constraint.
  unsigned ParamIndex = 0;
};

struct CompiledFormat {
  std::vector<FormatElement> Elements;
};

/// Can \p C's value be reconstructed given directly-bound vars and
/// per-var known parameters?
bool derivable(const ConstraintPtr &C, const std::set<unsigned> &KnownVars,
               const std::map<unsigned, std::set<unsigned>> &KnownParams,
               const std::vector<ConstraintPtr> &VarConstraints,
               unsigned Depth = 0) {
  if (Depth > 16)
    return false;
  switch (C->getKind()) {
  case Constraint::Kind::Var: {
    unsigned V = C->getVarIndex();
    if (KnownVars.count(V))
      return true;
    // Derivable through its own parametric constraint?
    const ConstraintPtr &VC = VarConstraints[V];
    if (VC->getKind() != Constraint::Kind::TypeParams &&
        VC->getKind() != Constraint::Kind::AttrParams)
      return false;
    if (VC->isBaseOnly())
      return VC->getChildren().empty() &&
             (VC->getKind() == Constraint::Kind::TypeParams
                  ? VC->getTypeDef()->getNumParams() == 0
                  : VC->getAttrDef()->getNumParams() == 0);
    auto KP = KnownParams.find(V);
    for (unsigned I = 0, E = VC->getChildren().size(); I != E; ++I) {
      if (KP != KnownParams.end() && KP->second.count(I))
        continue;
      if (!derivable(VC->getChildren()[I], KnownVars, KnownParams,
                     VarConstraints, Depth + 1))
        return false;
    }
    return true;
  }
  case Constraint::Kind::TypeParams:
  case Constraint::Kind::AttrParams: {
    if (C->isBaseOnly()) {
      unsigned NumParams = C->getKind() == Constraint::Kind::TypeParams
                               ? C->getTypeDef()->getNumParams()
                               : C->getAttrDef()->getNumParams();
      return NumParams == 0;
    }
    for (const ConstraintPtr &Child : C->getChildren())
      if (!derivable(Child, KnownVars, KnownParams, VarConstraints,
                     Depth + 1))
        return false;
    return true;
  }
  case Constraint::Kind::IntEq:
  case Constraint::Kind::FloatEq:
  case Constraint::Kind::StringEq:
  case Constraint::Kind::EnumEq:
    return true;
  case Constraint::Kind::ArrayExact:
  case Constraint::Kind::And:
  case Constraint::Kind::Cpp:
  case Constraint::Kind::Native:
  case Constraint::Kind::Named: {
    if (C->getKind() == Constraint::Kind::ArrayExact) {
      for (const ConstraintPtr &Child : C->getChildren())
        if (!derivable(Child, KnownVars, KnownParams, VarConstraints,
                       Depth + 1))
          return false;
      return true;
    }
    for (const ConstraintPtr &Child : C->getChildren())
      if (derivable(Child, KnownVars, KnownParams, VarConstraints,
                    Depth + 1))
        return true;
    return false;
  }
  default:
    return false;
  }
}

/// Looks up the parameter index \p ParamName inside a var's parametric
/// constraint; nullopt if the constraint has no such named parameter.
std::optional<unsigned> lookupVarParam(const ConstraintPtr &VC,
                                       std::string_view ParamName) {
  if (VC->getKind() == Constraint::Kind::TypeParams)
    return VC->getTypeDef()->lookupParam(ParamName);
  if (VC->getKind() == Constraint::Kind::AttrParams)
    return VC->getAttrDef()->lookupParam(ParamName);
  return std::nullopt;
}

/// Derives the value of every still-unbound var in \p MC, using parsed
/// per-var parameter values. Returns false if some var stays unknown.
bool deriveVars(const OpSpec &Spec, MatchContext &MC,
                const std::map<std::pair<unsigned, unsigned>, ParamValue>
                    &VarParamVals) {
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (unsigned V = 0, E = Spec.VarConstraints.size(); V != E; ++V) {
      if (MC.getBinding(V))
        continue;
      const ConstraintPtr &VC = Spec.VarConstraints[V];
      if (VC->getKind() != Constraint::Kind::TypeParams &&
          VC->getKind() != Constraint::Kind::AttrParams)
        continue;
      std::vector<ParamValue> Params;
      bool Ok = true;
      for (unsigned I = 0, N = VC->getChildren().size(); I != N; ++I) {
        auto It = VarParamVals.find({V, I});
        if (It != VarParamVals.end()) {
          Params.push_back(It->second);
          continue;
        }
        auto CV = VC->getChildren()[I]->concreteValue(MC);
        if (!CV) {
          Ok = false;
          break;
        }
        Params.push_back(std::move(*CV));
      }
      if (!Ok)
        continue;
      DiagnosticEngine Scratch;
      if (VC->getKind() == Constraint::Kind::TypeParams) {
        Type T = VC->getTypeDef()->getDialect()->getContext()->getTypeChecked(
            VC->getTypeDef(), std::move(Params), Scratch);
        if (!T)
          continue;
        MC.bind(V, ParamValue(T));
      } else {
        Attribute A =
            VC->getAttrDef()->getDialect()->getContext()->getAttrChecked(
                VC->getAttrDef(), std::move(Params), Scratch);
        if (!A)
          continue;
        MC.bind(V, ParamValue(A));
      }
      Progress = true;
    }
  }
  for (unsigned V = 0, E = Spec.VarConstraints.size(); V != E; ++V)
    if (!MC.getBinding(V) && !Spec.VarConstraints.empty()) {
      // Unbound vars are only a problem if something still needs them;
      // report lazily via concreteValue failures.
    }
  return true;
}

} // namespace

LogicalResult irdl::installFormat(std::shared_ptr<DialectSpec> OwningSpec,
                                  OpSpec &Op, DiagnosticEngine &Diags) {
  assert(Op.HasFormat && "operation has no format");
  SMLoc Loc; // Format strings do not retain source locations.

  auto FormatError = [&](const std::string &Message) {
    Diags.emitError(Loc, "in format of operation '" + Op.Name + "': " +
                             Message);
    return failure();
  };

  // Formats are rejected for shapes the syntax cannot express.
  for (const OperandSpec &O : Op.Operands)
    if (O.VK != VariadicKind::Single)
      return FormatError("variadic operands are not supported in formats");
  for (const OperandSpec &R : Op.Results)
    if (R.VK != VariadicKind::Single)
      return FormatError("variadic results are not supported in formats");
  if (!Op.Regions.empty())
    return FormatError("regions are not supported in formats");
  if (Op.Successors && !Op.Successors->empty())
    return FormatError("successors are not supported in formats");

  auto Compiled = std::make_shared<CompiledFormat>();
  std::set<unsigned> SeenOperands, SeenAttrs, KnownVars;
  std::map<unsigned, std::set<unsigned>> KnownVarParams;

  // Tokenize the format string.
  const std::string &Src = Op.FormatSrc;
  size_t Pos = 0;
  while (Pos < Src.size()) {
    if (Src[Pos] != '$') {
      size_t Start = Pos;
      while (Pos < Src.size() && Src[Pos] != '$')
        ++Pos;
      std::string Text = Src.substr(Start, Pos - Start);
      // Pure whitespace chunks only affect printing.
      FormatElement Elem;
      Elem.K = FormatElement::Kind::Literal;
      Elem.Text = Text;
      DiagnosticEngine Scratch;
      IRLexer Lex(Text, Scratch);
      while (!Lex.getToken().is(IRToken::Kind::Eof)) {
        if (Lex.getToken().is(IRToken::Kind::Error))
          return FormatError("invalid literal '" + Text + "'");
        Elem.Tokens.emplace_back(Lex.getToken().K, Lex.getToken().Spelling);
        Lex.lex();
      }
      Compiled->Elements.push_back(std::move(Elem));
      continue;
    }
    ++Pos; // consume '$'
    size_t Start = Pos;
    while (Pos < Src.size() && isIdentifierChar(Src[Pos]))
      ++Pos;
    if (Pos == Start)
      return FormatError("expected name after '$'");
    std::string Name = Src.substr(Start, Pos - Start);
    std::string ParamName;
    if (Pos < Src.size() && Src[Pos] == '.') {
      ++Pos;
      size_t PStart = Pos;
      while (Pos < Src.size() && isIdentifierChar(Src[Pos]))
        ++Pos;
      ParamName = Src.substr(PStart, Pos - PStart);
      if (ParamName.empty())
        return FormatError("expected parameter name after '.'");
    }

    FormatElement Elem;
    if (auto OpIdx = Op.lookupOperand(Name)) {
      if (!ParamName.empty())
        return FormatError("operands have no printable parameters");
      if (!SeenOperands.insert(*OpIdx).second)
        return FormatError("operand '" + Name + "' appears twice");
      Elem.K = FormatElement::Kind::Operand;
      Elem.Index = *OpIdx;
    } else if (auto AttrIdx = Op.lookupAttrField(Name)) {
      if (!ParamName.empty())
        return FormatError("attribute directives take no parameter");
      if (!SeenAttrs.insert(*AttrIdx).second)
        return FormatError("attribute '" + Name + "' appears twice");
      Elem.K = FormatElement::Kind::AttrField;
      Elem.Index = *AttrIdx;
    } else if (auto VarIdx = Op.lookupVar(Name)) {
      Elem.Index = *VarIdx;
      if (ParamName.empty()) {
        Elem.K = FormatElement::Kind::Var;
        KnownVars.insert(*VarIdx);
      } else {
        auto PIdx =
            lookupVarParam(Op.VarConstraints[*VarIdx], ParamName);
        if (!PIdx)
          return FormatError("constraint variable '" + Name +
                             "' has no parameter '" + ParamName + "'");
        Elem.K = FormatElement::Kind::VarParam;
        Elem.ParamIndex = *PIdx;
        KnownVarParams[*VarIdx].insert(*PIdx);
      }
    } else if (Op.lookupResult(Name)) {
      return FormatError("results cannot appear in formats; they are "
                         "inferred from constraints");
    } else {
      return FormatError("unknown directive '$" + Name + "'");
    }
    Compiled->Elements.push_back(std::move(Elem));
  }

  // Feasibility: every operand printed, every attribute printed, every
  // operand/result type derivable.
  for (unsigned I = 0, E = Op.Operands.size(); I != E; ++I)
    if (!SeenOperands.count(I))
      return FormatError("operand '" + Op.Operands[I].Name +
                         "' does not appear in the format");
  for (unsigned I = 0, E = Op.Attributes.size(); I != E; ++I)
    if (!SeenAttrs.count(I))
      return FormatError("attribute '" + Op.Attributes[I].Name +
                         "' does not appear in the format");
  for (const OperandSpec &O : Op.Operands)
    if (!derivable(O.Constr, KnownVars, KnownVarParams, Op.VarConstraints))
      return FormatError("the type of operand '" + O.Name +
                         "' cannot be inferred from the format");
  for (const OperandSpec &R : Op.Results)
    if (!derivable(R.Constr, KnownVars, KnownVarParams, Op.VarConstraints))
      return FormatError("the type of result '" + R.Name +
                         "' cannot be inferred from the format");

  // Install the hooks. Alias the shared_ptr so the spec outlives us.
  std::shared_ptr<OpSpec> SpecRef(OwningSpec, &Op);

  Op.Def->setPrintFn([SpecRef, Compiled](Operation *O, CustomOpPrinter &P) {
    const OpSpec &Spec = *SpecRef;
    // Rebind constraint variables from the verified op.
    MatchContext MC(&Spec.VarConstraints);
    for (unsigned I = 0, E = std::min<size_t>(Spec.Operands.size(),
                                              O->getNumOperands());
         I != E; ++I)
      (void)Spec.Operands[I].Constr->matches(
          ParamValue(O->getOperand(I).getType()), MC);
    for (unsigned I = 0, E = std::min<size_t>(Spec.Results.size(),
                                              O->getNumResults());
         I != E; ++I)
      (void)Spec.Results[I].Constr->matches(
          ParamValue(O->getResult(I).getType()), MC);

    for (const FormatElement &Elem : Compiled->Elements) {
      switch (Elem.K) {
      case FormatElement::Kind::Literal:
        P << Elem.Text;
        break;
      case FormatElement::Kind::Operand:
        if (Elem.Index < O->getNumOperands())
          P.printOperand(O->getOperand(Elem.Index));
        break;
      case FormatElement::Kind::AttrField:
        P.printAttribute(O->getAttr(Spec.Attributes[Elem.Index].Name));
        break;
      case FormatElement::Kind::Var:
        if (const auto &B = MC.getBinding(Elem.Index))
          P.printParam(*B);
        else
          P << "<<unbound>>";
        break;
      case FormatElement::Kind::VarParam: {
        const auto &B = MC.getBinding(Elem.Index);
        if (B && B->isType() &&
            Elem.ParamIndex < B->getType().getParams().size())
          P.printParam(B->getType().getParams()[Elem.ParamIndex]);
        else if (B && B->isAttr() &&
                 Elem.ParamIndex < B->getAttr().getParams().size())
          P.printParam(B->getAttr().getParams()[Elem.ParamIndex]);
        else
          P << "<<unbound>>";
        break;
      }
      }
    }
  });

  Op.Def->setParseFn([SpecRef, Compiled](CustomOpParser &P,
                                         OperationState &State)
                         -> LogicalResult {
    const OpSpec &Spec = *SpecRef;
    SMLoc OpLoc = P.getCurrentLoc();
    std::vector<CustomOpParser::UnresolvedOperand> OperandRefs(
        Spec.Operands.size());
    MatchContext MC(&Spec.VarConstraints);
    std::map<std::pair<unsigned, unsigned>, ParamValue> VarParamVals;

    for (const FormatElement &Elem : Compiled->Elements) {
      switch (Elem.K) {
      case FormatElement::Kind::Literal:
        for (const auto &[Kind, Spelling] : Elem.Tokens) {
          if (Kind == IRToken::Kind::Identifier) {
            if (failed(P.parseKeyword(Spelling)))
              return failure();
          } else if (failed(P.expect(Kind, "'" + Spelling + "'"))) {
            return failure();
          }
        }
        break;
      case FormatElement::Kind::Operand:
        if (failed(P.parseOperand(OperandRefs[Elem.Index])))
          return failure();
        break;
      case FormatElement::Kind::AttrField: {
        Attribute A;
        if (failed(P.parseAttribute(A)))
          return failure();
        State.addAttribute(Spec.Attributes[Elem.Index].Name, A);
        break;
      }
      case FormatElement::Kind::Var: {
        ParamValue V;
        if (failed(P.parseParam(V)))
          return failure();
        MC.bind(Elem.Index, std::move(V));
        break;
      }
      case FormatElement::Kind::VarParam: {
        ParamValue V;
        if (failed(P.parseParam(V)))
          return failure();
        VarParamVals.emplace(
            std::make_pair(Elem.Index, Elem.ParamIndex), std::move(V));
        break;
      }
      }
    }

    deriveVars(Spec, MC, VarParamVals);

    // Resolve operand and result types through the constraints (the
    // compiled program derives the same value as the tree; the flag is
    // read per parse like in the verifiers).
    auto ConcreteValue = [](const OperandSpec &OS, const MatchContext &MC) {
      if (OS.Prog && compiledConstraintsEnabled())
        return OS.Prog->concreteValue(MC);
      return OS.Constr->concreteValue(MC);
    };
    for (unsigned I = 0, E = Spec.Operands.size(); I != E; ++I) {
      auto TV = ConcreteValue(Spec.Operands[I], MC);
      if (!TV || !TV->isType())
        return P.emitError(OpLoc,
                           "cannot infer the type of operand '" +
                               Spec.Operands[I].Name + "'");
      if (failed(P.resolveOperand(OperandRefs[I], TV->getType(),
                                  State.Operands)))
        return failure();
    }
    for (unsigned I = 0, E = Spec.Results.size(); I != E; ++I) {
      auto TV = ConcreteValue(Spec.Results[I], MC);
      if (!TV || !TV->isType())
        return P.emitError(OpLoc, "cannot infer the type of result '" +
                                      Spec.Results[I].Name + "'");
      State.ResultTypes.push_back(TV->getType());
    }
    return success();
  });

  return success();
}
