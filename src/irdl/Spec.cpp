//===- Spec.cpp -----------------------------------------------------===//

#include "irdl/Spec.h"

using namespace irdl;

bool TypeOrAttrSpec::usesOpaqueParam(const ConstraintPtr &C) {
  // Locations and type ids are IRDL builtins (Figure 8), not IRDL-C++.
  if (C->getKind() == Constraint::Kind::OpaqueKind)
    return C->getString() != "location" && C->getString() != "type_id";
  for (const ConstraintPtr &Child : C->getChildren())
    if (usesOpaqueParam(Child))
      return true;
  return false;
}

bool OpSpec::localConstraintsInIRDL() const {
  for (const OperandSpec &O : Operands)
    if (O.Constr->requiresCpp())
      return false;
  for (const OperandSpec &R : Results)
    if (R.Constr->requiresCpp())
      return false;
  for (const ParamSpec &A : Attributes)
    if (A.Constr->requiresCpp())
      return false;
  for (const RegionSpec &R : Regions)
    for (const OperandSpec &A : R.Args)
      if (A.Constr->requiresCpp())
        return false;
  for (const ConstraintPtr &V : VarConstraints)
    if (V->requiresCpp())
      return false;
  return true;
}

std::optional<unsigned> OpSpec::lookupOperand(std::string_view N) const {
  for (unsigned I = 0, E = Operands.size(); I != E; ++I)
    if (Operands[I].Name == N)
      return I;
  return std::nullopt;
}

std::optional<unsigned> OpSpec::lookupResult(std::string_view N) const {
  for (unsigned I = 0, E = Results.size(); I != E; ++I)
    if (Results[I].Name == N)
      return I;
  return std::nullopt;
}

std::optional<unsigned> OpSpec::lookupVar(std::string_view N) const {
  for (unsigned I = 0, E = VarNames.size(); I != E; ++I)
    if (VarNames[I] == N)
      return I;
  return std::nullopt;
}

std::optional<unsigned> OpSpec::lookupAttrField(std::string_view N) const {
  for (unsigned I = 0, E = Attributes.size(); I != E; ++I)
    if (Attributes[I].Name == N)
      return I;
  return std::nullopt;
}

const OpSpec *DialectSpec::lookupOp(std::string_view OpName) const {
  for (const OpSpec &Op : Ops)
    if (Op.Name == OpName)
      return &Op;
  return nullptr;
}

const TypeOrAttrSpec *
DialectSpec::lookupType(std::string_view TypeName) const {
  for (const TypeOrAttrSpec &T : Types)
    if (T.Name == TypeName)
      return &T;
  return nullptr;
}

const TypeOrAttrSpec *
DialectSpec::lookupAttr(std::string_view AttrName) const {
  for (const TypeOrAttrSpec &A : Attrs)
    if (A.Name == AttrName)
      return &A;
  return nullptr;
}
