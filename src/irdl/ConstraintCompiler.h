//===- ConstraintCompiler.h - Constraint tree -> bytecode --------*- C++ -*-===//
///
/// \file
/// Lowers resolved Constraint trees into flat ConstraintPrograms at
/// dialect-registration time. The compiler walks the tree once in
/// pre-order, hoists literals/definitions/predicates into the program's
/// pools, elides transparent Named wrappers, turns dispatchable AnyOf
/// nodes into hash-dispatched AnyOfTable instructions, and marks
/// variable-free, C++-free subprograms as entry points of the memoized
/// verification cache.
///
/// The compiled engine is selected at *run* time by the global
/// --compiled-constraints flag (default on), checked inside the installed
/// verifier closures so a differential test can flip engines without
/// re-registering dialects.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_CONSTRAINTCOMPILER_H
#define IRDL_IRDL_CONSTRAINTCOMPILER_H

#include "irdl/ConstraintProgram.h"

namespace irdl {

class ConstraintCompiler {
public:
  /// Minimum AnyOf alternatives before a dispatch table pays for itself
  /// (below this, trying the alternatives in order is cheaper than a
  /// hash lookup).
  static constexpr size_t MinDispatchAlts = 4;
  /// Minimum subprogram size (instructions) before a verification-cache
  /// probe is cheaper than just running the subprogram.
  static constexpr size_t MemoMinInstrs = 4;

  /// Compiles \p C into a program. \p VarPrograms are the programs of the
  /// owning operation's constraint variables (slot V backs variable V);
  /// pass {} for contexts without variables.
  static ConstraintProgramPtr
  compile(const ConstraintPtr &C,
          std::vector<ConstraintProgramPtr> VarPrograms = {});

  /// Compiles one program per constraint variable. Var references inside
  /// a variable's own constraint fall back to the tree (no circular
  /// program references).
  static std::vector<ConstraintProgramPtr>
  compileVarPrograms(const std::vector<ConstraintPtr> &VarConstraints);
};

/// Global engine switch behind --compiled-constraints (default enabled).
/// Checked per verification, so flipping it mid-process swaps engines for
/// already-registered dialects.
void setCompiledConstraintsEnabled(bool Enabled);
bool compiledConstraintsEnabled();

} // namespace irdl

#endif // IRDL_IRDL_CONSTRAINTCOMPILER_H
