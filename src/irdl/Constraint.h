//===- Constraint.h - The IRDL constraint algebra ----------------*- C++ -*-===//
///
/// \file
/// The resolved form of IRDL constraints (Figure 2 of the paper): type and
/// attribute constraints (equality, base-name, parametric-with-nested-
/// constraints), parameter constraints (integer kinds and literals,
/// strings, floats, enums, arrays, opaque parameter kinds), the generic
/// combinators AnyOf / And / Not, constraint variables (unification), and
/// the IRDL-C++ escape hatches (interpreted C++ expressions and native
/// callbacks).
///
/// Constraints are immutable trees shared via shared_ptr; evaluation
/// happens against a MatchContext that carries constraint-variable
/// bindings with a backtracking trail (AnyOf and Not undo the variables
/// bound since their choice point instead of copying all bindings).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IRDL_CONSTRAINT_H
#define IRDL_IRDL_CONSTRAINT_H

#include "ir/Context.h"

#include <functional>
#include <memory>
#include <optional>

namespace irdl {

class Constraint;
using ConstraintPtr = std::shared_ptr<const Constraint>;

/// Constraint-variable bindings during one match (the ConstraintVars
/// directive, Section 4.6): "constraints that need to be satisfied by the
/// same type at each use".
class MatchContext {
public:
  MatchContext() = default;
  explicit MatchContext(const std::vector<ConstraintPtr> *VarConstraints)
      : VarConstraints(VarConstraints),
        Bindings(VarConstraints ? VarConstraints->size() : 0) {}

  unsigned getNumVars() const { return Bindings.size(); }

  const std::optional<ParamValue> &getBinding(unsigned Index) const {
    assert(Index < Bindings.size() && "variable index out of range");
    return Bindings[Index];
  }
  void bind(unsigned Index, ParamValue V) {
    assert(Index < Bindings.size() && "variable index out of range");
    // Fresh bindings are recorded on the trail so backtracking can undo
    // them. Rebinds (only the declarative-format parser overwrites an
    // existing binding, never the evaluators) keep the original trail
    // entry: the variable stays bound across an undo to an earlier mark,
    // which is exactly the pre-trail behavior.
    if (!Bindings[Index])
      Trail.push_back(Index);
    Bindings[Index] = std::move(V);
  }
  const ConstraintPtr &getVarConstraint(unsigned Index) const {
    assert(VarConstraints && Index < VarConstraints->size());
    return (*VarConstraints)[Index];
  }

  /// Backtracking for AnyOf/Not: mark() opens a choice point, undoTo()
  /// unbinds exactly the variables bound since — O(bound since mark)
  /// instead of the former O(all vars) snapshot copy per branch.
  using Mark = size_t;
  Mark mark() const { return Trail.size(); }
  void undoTo(Mark M) {
    assert(M <= Trail.size() && "mark from a later choice point");
    while (Trail.size() > M) {
      Bindings[Trail.back()].reset();
      Trail.pop_back();
    }
  }

private:
  const std::vector<ConstraintPtr> *VarConstraints = nullptr;
  std::vector<std::optional<ParamValue>> Bindings;
  /// Indices of bound variables, in binding order.
  std::vector<unsigned> Trail;
};

/// A native (C++) predicate over one parameter value — the general escape
/// hatch IRDL-C++ provides when the interpreted expression subset is not
/// enough.
using NativeConstraintFn = std::function<bool(const ParamValue &)>;

/// An interpreted IRDL-C++ predicate compiled from a CppConstraint string.
using CppParamPredicate = std::function<bool(const ParamValue &)>;

/// One node of a resolved constraint tree.
class Constraint {
public:
  enum class Kind {
    AnyType,     // !AnyType
    AnyAttr,     // #AnyAttr
    AnyParam,    // AnyParam
    TypeParams,  // !name or !name<pc...>: base match + per-param children
    AttrParams,  // #name or #name<pc...>
    IntKind,     // int8_t .. uint64_t (width + signedness)
    IntEq,       // 3 : int32_t
    FloatKind,   // float32_t / float64_t / float (Width 0 = any)
    FloatEq,     // exact float literal
    StringKind,  // string
    StringEq,    // "literal"
    EnumKind,    // any constructor of an enum
    EnumEq,      // a particular enum constructor
    ArrayOf,     // array<pc>: all elements satisfy pc (no child = any array)
    ArrayExact,  // [pc1, ..., pcN]
    OpaqueKind,  // a TypeOrAttrParam-declared opaque kind (by name)
    AnyOf,       // AnyOf<c...>
    And,         // And<c...>
    Not,         // Not<c>
    Var,         // constraint variable reference
    Cpp,         // base constraint + interpreted C++ predicate
    Native,      // base constraint + registered native callback
    Named,       // a use of a named Constraint declaration
  };

  //===------------------------------------------------------------------===//
  // Factories
  //===------------------------------------------------------------------===//

  static ConstraintPtr anyType();
  static ConstraintPtr anyAttr();
  static ConstraintPtr anyParam();
  /// Base-only match when \p Params is empty and \p BaseOnly is true;
  /// otherwise the parameter count must equal the definition's.
  static ConstraintPtr typeConstraint(const TypeDefinition *Def,
                                      std::vector<ConstraintPtr> Params,
                                      bool BaseOnly);
  static ConstraintPtr attrConstraint(const AttrDefinition *Def,
                                      std::vector<ConstraintPtr> Params,
                                      bool BaseOnly);
  /// Exact match of a fully concrete type.
  static ConstraintPtr typeEq(Type T);
  static ConstraintPtr intKind(unsigned Width, Signedness Sign);
  static ConstraintPtr intEq(IntVal V);
  static ConstraintPtr floatKind(unsigned Width);
  static ConstraintPtr floatEq(FloatVal V);
  static ConstraintPtr stringKind();
  static ConstraintPtr stringEq(std::string S);
  static ConstraintPtr enumKind(const EnumDef *Def);
  static ConstraintPtr enumEq(EnumVal V);
  static ConstraintPtr arrayOf(ConstraintPtr Elem);
  static ConstraintPtr anyArray();
  static ConstraintPtr arrayExact(std::vector<ConstraintPtr> Elems);
  static ConstraintPtr opaqueKind(std::string ParamTypeName);
  static ConstraintPtr anyOf(std::vector<ConstraintPtr> Cs);
  static ConstraintPtr conjunction(std::vector<ConstraintPtr> Cs);
  static ConstraintPtr negation(ConstraintPtr C);
  static ConstraintPtr var(unsigned Index, std::string Name);
  static ConstraintPtr cpp(ConstraintPtr Base, CppParamPredicate Pred,
                           std::string Source);
  static ConstraintPtr native(ConstraintPtr Base, NativeConstraintFn Fn,
                              std::string Name);
  /// Wraps a use of a named Constraint declaration: behaves exactly like
  /// \p Inner but prints as \p QualifiedName (e.g. "cmath.Bounded"),
  /// keeping pretty-printed specs reparseable.
  static ConstraintPtr named(ConstraintPtr Inner,
                             std::string QualifiedName);

  //===------------------------------------------------------------------===//
  // Accessors
  //===------------------------------------------------------------------===//

  Kind getKind() const { return K; }
  const std::vector<ConstraintPtr> &getChildren() const { return Children; }
  const TypeDefinition *getTypeDef() const { return TDef; }
  const AttrDefinition *getAttrDef() const { return ADef; }
  bool isBaseOnly() const { return BaseOnly; }
  const IntVal &getIntVal() const { return IV; }
  const FloatVal &getFloatVal() const { return FV; }
  const std::string &getString() const { return Str; }
  const EnumDef *getEnumDef() const { return EDef; }
  const EnumVal &getEnumVal() const { return EV; }
  unsigned getVarIndex() const { return VarIndex; }
  const CppParamPredicate &getCppPred() const { return CppPred; }
  const NativeConstraintFn &getNativeFn() const { return NativeFn; }
  unsigned getIntWidth() const { return IV.Width; }
  Signedness getIntSign() const { return IV.Sign; }

  /// True if this constraint (or any child) carries IRDL-C++ (interpreted
  /// or native) — the classification used by the paper's Figures 9–11.
  /// Computed once at construction (queried per verification by the
  /// expressibility benches and the constraint compiler's cacheability
  /// check, so a per-call tree walk would be pure waste).
  bool requiresCpp() const { return HasCpp; }

  /// True if any node is a constraint-variable reference. Also a
  /// construction-time bit.
  bool referencesVar() const { return HasVar; }

  //===------------------------------------------------------------------===//
  // Evaluation
  //===------------------------------------------------------------------===//

  /// Returns true if \p V satisfies the constraint under \p MC (variable
  /// bindings may be extended).
  bool matches(const ParamValue &V, MatchContext &MC) const;

  /// If the constraint pins down exactly one value given the bindings in
  /// \p MC, returns it. Used by the declarative-format type inference.
  std::optional<ParamValue> concreteValue(const MatchContext &MC) const;

  /// Renders the constraint in IRDL surface syntax (for diagnostics and
  /// the IRDL pretty-printer).
  std::string str() const;

private:
  Constraint(Kind K) : K(K) {}

  /// Folds the construction-time property bits from Children (called by
  /// every factory after the children are in place).
  void computeFlags();

  Kind K;
  bool HasCpp = false;
  bool HasVar = false;
  std::vector<ConstraintPtr> Children;
  const TypeDefinition *TDef = nullptr;
  const AttrDefinition *ADef = nullptr;
  bool BaseOnly = false;
  IntVal IV;
  FloatVal FV;
  std::string Str; // string literal / var name / opaque kind / cpp source
  const EnumDef *EDef = nullptr;
  EnumVal EV;
  unsigned VarIndex = 0;
  CppParamPredicate CppPred;
  NativeConstraintFn NativeFn;
};

} // namespace irdl

#endif // IRDL_IRDL_CONSTRAINT_H
