//===- CppExpr.cpp --------------------------------------------------===//

#include "irdl/CppExpr.h"

#include "irdl/Spec.h"
#include "ir/Operation.h"
#include "support/StringExtras.h"

#include <cstdlib>

using namespace irdl;

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace irdl {

class CppExprParser {
public:
  CppExprParser(std::string_view Source, DiagnosticEngine &Diags, SMLoc Loc)
      : Src(Source), Diags(Diags), Loc(Loc) {}

  std::shared_ptr<const CppExpr> run() {
    auto E = parseOr();
    skipWs();
    if (E && Pos != Src.size()) {
      Diags.emitError(Loc, "trailing input in C++ constraint expression");
      return nullptr;
    }
    return E;
  }

private:
  using ExprPtr = std::shared_ptr<const CppExpr>;

  void skipWs() {
    while (Pos < Src.size() &&
           (Src[Pos] == ' ' || Src[Pos] == '\t' || Src[Pos] == '\n' ||
            Src[Pos] == '\r'))
      ++Pos;
  }

  bool consume(std::string_view Tok) {
    skipWs();
    if (Src.substr(Pos, Tok.size()) != Tok)
      return false;
    // Don't split identifiers.
    if (isIdentifierStart(Tok[0])) {
      size_t End = Pos + Tok.size();
      if (End < Src.size() && isIdentifierChar(Src[End]))
        return false;
    }
    Pos += Tok.size();
    return true;
  }

  char peek() {
    skipWs();
    return Pos < Src.size() ? Src[Pos] : '\0';
  }

  ExprPtr error(const std::string &Message) {
    Diags.emitError(Loc, "in C++ constraint expression: " + Message);
    return nullptr;
  }

  static std::shared_ptr<CppExpr> make(CppExpr::Kind K) {
    return std::shared_ptr<CppExpr>(new CppExpr(K));
  }

  ExprPtr makeBinary(std::string Op, ExprPtr L, ExprPtr R) {
    auto E = make(CppExpr::Kind::Binary);
    E->StrValue = std::move(Op);
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (L && consume("||")) {
      ExprPtr R = parseAnd();
      if (!R)
        return nullptr;
      L = makeBinary("||", std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseCmp();
    while (L && consume("&&")) {
      ExprPtr R = parseCmp();
      if (!R)
        return nullptr;
      L = makeBinary("&&", std::move(L), std::move(R));
    }
    return L;
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    if (!L)
      return nullptr;
    for (const char *Op : {"==", "!=", "<=", ">=", "<", ">"}) {
      if (consume(Op)) {
        ExprPtr R = parseAdd();
        if (!R)
          return nullptr;
        return makeBinary(Op, std::move(L), std::move(R));
      }
    }
    return L;
  }

  ExprPtr parseAdd() {
    ExprPtr L = parseMul();
    while (L) {
      skipWs();
      // Don't eat the '-' of '->' (not in the language) or comparison.
      if (consume("+")) {
        ExprPtr R = parseMul();
        if (!R)
          return nullptr;
        L = makeBinary("+", std::move(L), std::move(R));
        continue;
      }
      if (peek() == '-' && Src.substr(Pos, 2) != "->") {
        ++Pos;
        ExprPtr R = parseMul();
        if (!R)
          return nullptr;
        L = makeBinary("-", std::move(L), std::move(R));
        continue;
      }
      break;
    }
    return L;
  }

  ExprPtr parseMul() {
    ExprPtr L = parseUnary();
    while (L) {
      if (consume("*")) {
        ExprPtr R = parseUnary();
        if (!R)
          return nullptr;
        L = makeBinary("*", std::move(L), std::move(R));
        continue;
      }
      if (consume("/")) {
        ExprPtr R = parseUnary();
        if (!R)
          return nullptr;
        L = makeBinary("/", std::move(L), std::move(R));
        continue;
      }
      if (consume("%")) {
        ExprPtr R = parseUnary();
        if (!R)
          return nullptr;
        L = makeBinary("%", std::move(L), std::move(R));
        continue;
      }
      break;
    }
    return L;
  }

  ExprPtr parseUnary() {
    skipWs();
    if (Pos < Src.size() && Src[Pos] == '!' &&
        (Pos + 1 >= Src.size() || Src[Pos + 1] != '=')) {
      ++Pos;
      ExprPtr Inner = parseUnary();
      if (!Inner)
        return nullptr;
      auto E = make(CppExpr::Kind::Unary);
      E->StrValue = "!";
      E->Lhs = std::move(Inner);
      return E;
    }
    if (consume("-")) {
      ExprPtr Inner = parseUnary();
      if (!Inner)
        return nullptr;
      auto E = make(CppExpr::Kind::Unary);
      E->StrValue = "-";
      E->Lhs = std::move(Inner);
      return E;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (E) {
      skipWs();
      if (Pos < Src.size() && Src[Pos] == '.') {
        ++Pos;
        skipWs();
        size_t Start = Pos;
        while (Pos < Src.size() && isIdentifierChar(Src[Pos]))
          ++Pos;
        if (Pos == Start)
          return error("expected member name after '.'");
        auto M = make(CppExpr::Kind::Member);
        M->StrValue = std::string(Src.substr(Start, Pos - Start));
        M->Lhs = std::move(E);
        skipWs();
        if (Pos < Src.size() && Src[Pos] == '(') {
          ++Pos;
          skipWs();
          if (Pos >= Src.size() || Src[Pos] != ')')
            return error("accessor calls take no arguments");
          ++Pos;
          M->IsCall = true;
        }
        E = std::move(M);
        continue;
      }
      break;
    }
    return E;
  }

  ExprPtr parsePrimary() {
    skipWs();
    if (Pos >= Src.size())
      return error("unexpected end of expression");

    char C = Src[Pos];
    if (C == '(') {
      ++Pos;
      ExprPtr Inner = parseOr();
      if (!Inner)
        return nullptr;
      skipWs();
      if (Pos >= Src.size() || Src[Pos] != ')')
        return error("expected ')'");
      ++Pos;
      return Inner;
    }
    if (C == '$') {
      if (consume("$_self")) {
        return make(CppExpr::Kind::Self);
      }
      return error("unknown placeholder (only $_self is supported)");
    }
    if (C == '"') {
      ++Pos;
      std::string S;
      while (Pos < Src.size() && Src[Pos] != '"') {
        if (Src[Pos] == '\\' && Pos + 1 < Src.size())
          ++Pos;
        S += Src[Pos++];
      }
      if (Pos >= Src.size())
        return error("unterminated string literal");
      ++Pos;
      auto E = make(CppExpr::Kind::StrLit);
      E->StrValue = std::move(S);
      return E;
    }
    if (C >= '0' && C <= '9') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             ((Src[Pos] >= '0' && Src[Pos] <= '9') || Src[Pos] == '.' ||
              Src[Pos] == 'e' || Src[Pos] == 'E' ||
              ((Src[Pos] == '+' || Src[Pos] == '-') &&
               (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E'))))
        ++Pos;
      std::string Text(Src.substr(Start, Pos - Start));
      // Allow C++ integer suffixes (u, l, ul, ...).
      while (Pos < Src.size() &&
             (Src[Pos] == 'u' || Src[Pos] == 'U' || Src[Pos] == 'l' ||
              Src[Pos] == 'L'))
        ++Pos;
      if (Text.find('.') != std::string::npos ||
          Text.find('e') != std::string::npos ||
          Text.find('E') != std::string::npos) {
        auto E = make(CppExpr::Kind::FloatLit);
        E->FloatValue = std::strtod(Text.c_str(), nullptr);
        return E;
      }
      auto E = make(CppExpr::Kind::IntLit);
      E->IntValue = std::strtoll(Text.c_str(), nullptr, 10);
      return E;
    }
    if (consume("true")) {
      auto E = make(CppExpr::Kind::BoolLit);
      E->IntValue = 1;
      return E;
    }
    if (consume("false")) {
      auto E = make(CppExpr::Kind::BoolLit);
      E->IntValue = 0;
      return E;
    }
    return error(std::string("unexpected character '") + C + "'");
  }

  std::string_view Src;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  SMLoc Loc;
};

} // namespace irdl

std::shared_ptr<const CppExpr> CppExpr::parse(std::string_view Source,
                                              DiagnosticEngine &Diags,
                                              SMLoc Loc) {
  return CppExprParser(Source, Diags, Loc).run();
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

namespace {

/// Converts a ParamValue to the most natural CppEvalValue.
CppEvalValue fromParam(const ParamValue &P) {
  switch (P.getKind()) {
  case ParamValue::Kind::Int:
    return P.getInt().Value;
  case ParamValue::Kind::Float:
    return P.getFloat().Value;
  case ParamValue::Kind::String:
    return P.getString();
  case ParamValue::Kind::Type:
    return P.getType();
  case ParamValue::Kind::Attr:
    return P.getAttr();
  case ParamValue::Kind::Enum: {
    const EnumVal &E = P.getEnum();
    return E.Def->getCases()[E.Index];
  }
  case ParamValue::Kind::Opaque:
    return P.getOpaque().Payload;
  default:
    return P; // Arrays (and empties) stay wrapped.
  }
}

std::optional<CppEvalValue> accessMember(const CppEvalValue &Recv,
                                         const std::string &Name,
                                         const OpSpec *Spec);

/// Member access on a Type or Attribute: parameters by name, plus name().
template <typename HandleT>
std::optional<CppEvalValue> accessTypeOrAttr(HandleT H,
                                             const std::string &Name) {
  if (Name == "name")
    return CppEvalValue(H.getName());
  if (auto Index = H.getDef()->lookupParam(Name))
    return fromParam(H.getParams()[*Index]);
  return std::nullopt;
}

std::optional<CppEvalValue> accessOperation(Operation *Op,
                                            const std::string &Name,
                                            const OpSpec *Spec) {
  if (Name == "numOperands")
    return CppEvalValue(static_cast<int64_t>(Op->getNumOperands()));
  if (Name == "numResults")
    return CppEvalValue(static_cast<int64_t>(Op->getNumResults()));
  if (Name == "numRegions")
    return CppEvalValue(static_cast<int64_t>(Op->getNumRegions()));
  if (Name == "numSuccessors")
    return CppEvalValue(static_cast<int64_t>(Op->getNumSuccessors()));
  if (Spec) {
    if (auto Index = Spec->lookupOperand(Name)) {
      if (*Index < Op->getNumOperands())
        return CppEvalValue(Op->getOperand(*Index));
      return std::nullopt;
    }
    if (auto Index = Spec->lookupResult(Name)) {
      if (*Index < Op->getNumResults())
        return CppEvalValue(Op->getResult(*Index));
      return std::nullopt;
    }
    if (Spec->lookupAttrField(Name)) {
      Attribute A = Op->getAttr(Name);
      if (A)
        return CppEvalValue(A);
      return std::nullopt;
    }
  }
  // Fall back to raw attribute lookup.
  if (Attribute A = Op->getAttr(Name))
    return CppEvalValue(A);
  return std::nullopt;
}

std::optional<CppEvalValue> accessMember(const CppEvalValue &Recv,
                                         const std::string &Name,
                                         const OpSpec *Spec) {
  if (auto *Op = std::get_if<Operation *>(&Recv))
    return accessOperation(*Op, Name, Spec);
  if (auto *V = std::get_if<Value>(&Recv)) {
    if (Name == "type")
      return CppEvalValue(V->getType());
    // Accessors fall through to the value's type: `$_self.lhs().size()`.
    return accessTypeOrAttr(V->getType(), Name);
  }
  if (auto *T = std::get_if<Type>(&Recv))
    return accessTypeOrAttr(*T, Name);
  if (auto *A = std::get_if<Attribute>(&Recv)) {
    if (Name == "value" && !A->getDef()->lookupParam("value")) {
      // Convenience for single-parameter attributes.
      if (A->getParams().size() == 1)
        return fromParam(A->getParams()[0]);
    }
    return accessTypeOrAttr(*A, Name);
  }
  if (auto *P = std::get_if<ParamValue>(&Recv)) {
    if (P->isArray() && Name == "size")
      return CppEvalValue(static_cast<int64_t>(P->getArray().size()));
    return std::nullopt;
  }
  if (auto *R = std::get_if<ParamRecord>(&Recv)) {
    if (Name == "name")
      return CppEvalValue(R->Def->getFullName());
    if (auto Index = R->Def->lookupParam(Name))
      if (*Index < R->Params->size())
        return fromParam((*R->Params)[*Index]);
    return std::nullopt;
  }
  if (auto *S = std::get_if<std::string>(&Recv)) {
    if (Name == "size" || Name == "length")
      return CppEvalValue(static_cast<int64_t>(S->size()));
    if (Name == "empty")
      return CppEvalValue(S->empty());
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<bool> truthiness(const CppEvalValue &V) {
  if (auto *B = std::get_if<bool>(&V))
    return *B;
  if (auto *I = std::get_if<int64_t>(&V))
    return *I != 0;
  return std::nullopt;
}

std::optional<double> asNumber(const CppEvalValue &V) {
  if (auto *I = std::get_if<int64_t>(&V))
    return static_cast<double>(*I);
  if (auto *D = std::get_if<double>(&V))
    return *D;
  if (auto *B = std::get_if<bool>(&V))
    return *B ? 1.0 : 0.0;
  return std::nullopt;
}

bool bothInts(const CppEvalValue &L, const CppEvalValue &R) {
  return std::holds_alternative<int64_t>(L) &&
         std::holds_alternative<int64_t>(R);
}

std::optional<bool> equals(const CppEvalValue &L, const CppEvalValue &R) {
  // Numeric cross-kind comparison.
  if (asNumber(L) && asNumber(R))
    return *asNumber(L) == *asNumber(R);
  if (auto *LS = std::get_if<std::string>(&L))
    if (auto *RS = std::get_if<std::string>(&R))
      return *LS == *RS;
  if (auto *LT = std::get_if<Type>(&L))
    if (auto *RT = std::get_if<Type>(&R))
      return *LT == *RT;
  if (auto *LA = std::get_if<Attribute>(&L))
    if (auto *RA = std::get_if<Attribute>(&R))
      return *LA == *RA;
  if (auto *LV = std::get_if<Value>(&L))
    if (auto *RV = std::get_if<Value>(&R))
      return *LV == *RV;
  // Types compare equal to their textual names (handy in constraints).
  if (auto *LT = std::get_if<Type>(&L))
    if (auto *RS = std::get_if<std::string>(&R))
      return LT->str() == *RS || LT->getName() == *RS;
  if (auto *LS = std::get_if<std::string>(&L))
    if (auto *RT = std::get_if<Type>(&R))
      return RT->str() == *LS || RT->getName() == *LS;
  return std::nullopt;
}

} // namespace

CppEvalValue irdl::cppEvalFromParam(const ParamValue &P) {
  return fromParam(P);
}

std::optional<CppEvalValue>
CppExpr::evaluate(const EvalContext &Ctx) const {
  switch (K) {
  case Kind::IntLit:
    return CppEvalValue(IntValue);
  case Kind::FloatLit:
    return CppEvalValue(FloatValue);
  case Kind::StrLit:
    return CppEvalValue(StrValue);
  case Kind::BoolLit:
    return CppEvalValue(IntValue != 0);
  case Kind::Self:
    return Ctx.Self;
  case Kind::Member: {
    auto Recv = Lhs->evaluate(Ctx);
    if (!Recv)
      return std::nullopt;
    return accessMember(*Recv, StrValue, Ctx.Spec);
  }
  case Kind::Unary: {
    auto V = Lhs->evaluate(Ctx);
    if (!V)
      return std::nullopt;
    if (StrValue == "!") {
      auto B = truthiness(*V);
      if (!B)
        return std::nullopt;
      return CppEvalValue(!*B);
    }
    // Negation.
    if (auto *I = std::get_if<int64_t>(&*V))
      return CppEvalValue(-*I);
    if (auto *D = std::get_if<double>(&*V))
      return CppEvalValue(-*D);
    return std::nullopt;
  }
  case Kind::Binary: {
    if (StrValue == "&&" || StrValue == "||") {
      auto L = Lhs->evaluate(Ctx);
      if (!L)
        return std::nullopt;
      auto LB = truthiness(*L);
      if (!LB)
        return std::nullopt;
      if (StrValue == "&&" && !*LB)
        return CppEvalValue(false);
      if (StrValue == "||" && *LB)
        return CppEvalValue(true);
      auto R = Rhs->evaluate(Ctx);
      if (!R)
        return std::nullopt;
      auto RB = truthiness(*R);
      if (!RB)
        return std::nullopt;
      return CppEvalValue(*RB);
    }

    auto L = Lhs->evaluate(Ctx);
    auto R = Rhs->evaluate(Ctx);
    if (!L || !R)
      return std::nullopt;

    if (StrValue == "==" || StrValue == "!=") {
      auto Eq = equals(*L, *R);
      if (!Eq)
        return std::nullopt;
      return CppEvalValue(StrValue == "==" ? *Eq : !*Eq);
    }

    auto LN = asNumber(*L);
    auto RN = asNumber(*R);
    if (!LN || !RN)
      return std::nullopt;

    if (StrValue == "<")
      return CppEvalValue(*LN < *RN);
    if (StrValue == "<=")
      return CppEvalValue(*LN <= *RN);
    if (StrValue == ">")
      return CppEvalValue(*LN > *RN);
    if (StrValue == ">=")
      return CppEvalValue(*LN >= *RN);

    // Arithmetic: stay integral when both sides are.
    if (bothInts(*L, *R)) {
      int64_t LI = std::get<int64_t>(*L);
      int64_t RI = std::get<int64_t>(*R);
      if (StrValue == "+")
        return CppEvalValue(LI + RI);
      if (StrValue == "-")
        return CppEvalValue(LI - RI);
      if (StrValue == "*")
        return CppEvalValue(LI * RI);
      if (StrValue == "/")
        return RI == 0 ? std::nullopt
                       : std::optional<CppEvalValue>(LI / RI);
      if (StrValue == "%")
        return RI == 0 ? std::nullopt
                       : std::optional<CppEvalValue>(LI % RI);
    }
    if (StrValue == "+")
      return CppEvalValue(*LN + *RN);
    if (StrValue == "-")
      return CppEvalValue(*LN - *RN);
    if (StrValue == "*")
      return CppEvalValue(*LN * *RN);
    if (StrValue == "/")
      return *RN == 0 ? std::nullopt
                      : std::optional<CppEvalValue>(*LN / *RN);
    return std::nullopt;
  }
  }
  return std::nullopt;
}

std::optional<bool> CppExpr::evaluateBool(const EvalContext &Ctx) const {
  auto V = evaluate(Ctx);
  if (!V)
    return std::nullopt;
  return truthiness(*V);
}
