//===- SpecPrinter.cpp - IRDL pretty-printing ---------------------------===//
///
/// \file
/// Prints a resolved DialectSpec back to IRDL surface syntax. Alias uses
/// appear expanded (resolution is lossy there by design); everything else
/// round-trips: parse(print(spec)) produces an equivalent dialect. This
/// powers the introspection tooling of Figure 1 and the corpus pipeline.
///
//===----------------------------------------------------------------------===//

#include "irdl/IRDL.h"

#include "support/StringExtras.h"

#include <sstream>

using namespace irdl;

namespace {

void printNamedList(std::ostringstream &OS, std::string_view Directive,
                    const std::vector<ParamSpec> &Items,
                    std::string_view Indent) {
  if (Items.empty())
    return;
  OS << Indent << Directive << " (";
  for (size_t I = 0, E = Items.size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << Items[I].Name << ": " << Items[I].Constr->str();
  }
  OS << ")\n";
}

void printOperandList(std::ostringstream &OS, std::string_view Directive,
                      const std::vector<OperandSpec> &Items,
                      std::string_view Indent = "  ") {
  if (Items.empty())
    return;
  OS << Indent << Directive << " (";
  for (size_t I = 0, E = Items.size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << Items[I].Name << ": ";
    switch (Items[I].VK) {
    case VariadicKind::Single:
      OS << Items[I].Constr->str();
      break;
    case VariadicKind::Optional:
      OS << "Optional<" << Items[I].Constr->str() << ">";
      break;
    case VariadicKind::Variadic:
      OS << "Variadic<" << Items[I].Constr->str() << ">";
      break;
    }
  }
  OS << ")\n";
}

void printSummary(std::ostringstream &OS, const std::string &Summary,
                  std::string_view Indent = "  ") {
  if (!Summary.empty())
    OS << Indent << "Summary \"" << escapeString(Summary) << "\"\n";
}

void printCpp(std::ostringstream &OS, const std::string &Src,
              std::string_view Indent = "  ") {
  if (!Src.empty())
    OS << Indent << "CppConstraint \"" << escapeString(Src) << "\"\n";
}

} // namespace

std::string irdl::printDialectSpec(const DialectSpec &Spec) {
  std::ostringstream OS;
  OS << "Dialect " << Spec.Name << " {\n";

  for (const EnumSpec &E : Spec.Enums) {
    OS << "  Enum " << E.Name << " { ";
    for (size_t I = 0, N = E.Cases.size(); I != N; ++I) {
      if (I)
        OS << ", ";
      OS << E.Cases[I];
    }
    OS << " }\n";
  }

  for (const ParamTypeSpec &P : Spec.ParamTypes) {
    OS << "  TypeOrAttrParam " << P.Name << " {\n";
    printSummary(OS, P.Summary, "    ");
    if (!P.CppClassName.empty())
      OS << "    CppClassName \"" << P.CppClassName << "\"\n";
    if (!P.CppParserSrc.empty())
      OS << "    CppParser \"" << P.CppParserSrc << "\"\n";
    if (!P.CppPrinterSrc.empty())
      OS << "    CppPrinter \"" << P.CppPrinterSrc << "\"\n";
    OS << "  }\n";
  }

  for (const NamedConstraintSpec &C : Spec.Constraints) {
    // Named constraints resolve to their base + predicate; print the base
    // and the original Cpp source when available.
    const Constraint *Body = C.Constr.get();
    if (Body->getKind() == Constraint::Kind::Named)
      Body = Body->getChildren()[0].get();
    std::string CppSrc;
    bool IsNative = Body->getKind() == Constraint::Kind::Native;
    if (Body->getKind() == Constraint::Kind::Cpp || IsNative) {
      CppSrc = Body->getString();
      Body = Body->getChildren()[0].get();
    }
    OS << "  Constraint " << C.Name << " : " << Body->str() << " {\n";
    printSummary(OS, C.Summary, "    ");
    if (!CppSrc.empty())
      OS << "    CppConstraint \"" << (IsNative ? "native:" : "")
         << escapeString(CppSrc) << "\"\n";
    OS << "  }\n";
  }

  auto PrintTypeOrAttr = [&OS](const TypeOrAttrSpec &T) {
    OS << "  " << (T.IsAttr ? "Attribute " : "Type ") << T.Name << " {\n";
    printNamedList(OS, "Parameters", T.Params, "    ");
    printSummary(OS, T.Summary, "    ");
    printCpp(OS, T.CppConstraintSrc, "    ");
    OS << "  }\n";
  };
  for (const TypeOrAttrSpec &T : Spec.Types)
    PrintTypeOrAttr(T);
  for (const TypeOrAttrSpec &A : Spec.Attrs)
    PrintTypeOrAttr(A);

  for (const OpSpec &Op : Spec.Ops) {
    OS << "  Operation " << Op.Name << " {\n";
    if (!Op.VarNames.empty()) {
      OS << "    ConstraintVars (";
      for (size_t I = 0, E = Op.VarNames.size(); I != E; ++I) {
        if (I)
          OS << ", ";
        OS << "!" << Op.VarNames[I] << ": "
           << Op.VarConstraints[I]->str();
      }
      OS << ")\n";
    }
    printOperandList(OS, "Operands", Op.Operands, "    ");
    printOperandList(OS, "Results", Op.Results, "    ");
    printNamedList(OS, "Attributes", Op.Attributes, "    ");
    for (const RegionSpec &R : Op.Regions) {
      OS << "    Region " << R.Name << " {\n";
      printOperandList(OS, "Arguments", R.Args, "      ");
      if (!R.TerminatorOpName.empty())
        OS << "      Terminator " << R.TerminatorOpName << "\n";
      OS << "    }\n";
    }
    if (Op.Successors) {
      OS << "    Successors (";
      for (size_t I = 0, E = Op.Successors->size(); I != E; ++I) {
        if (I)
          OS << ", ";
        OS << (*Op.Successors)[I];
      }
      OS << ")\n";
    }
    if (Op.HasFormat)
      OS << "    Format \"" << escapeString(Op.FormatSrc) << "\"\n";
    printSummary(OS, Op.Summary, "    ");
    if (!Op.NativeVerifierName.empty())
      OS << "    CppConstraint \"native:" << Op.NativeVerifierName
         << "\"\n";
    else
      printCpp(OS, Op.CppConstraintSrc, "    ");
    OS << "  }\n";
  }

  OS << "}\n";
  return OS.str();
}
