//===- ConstraintProgram.cpp ----------------------------------------===//

#include "irdl/ConstraintProgram.h"

#include "irdl/ConstraintProfiler.h"
#include "support/Metrics.h"
#include "support/Statistic.h"
#include "support/Timing.h"

#include <atomic>
#include <mutex>
#include <sstream>

using namespace irdl;

IRDL_STATISTIC(ConstraintProgram, NumProgramRuns,
               "compiled constraint program executions");
IRDL_STATISTIC(ConstraintProgram, NumMemoHits,
               "verification-cache hits (verdict served without matching)");
IRDL_STATISTIC(ConstraintProgram, NumMemoMisses,
               "verification-cache misses (verdict computed and recorded)");
IRDL_STATISTIC(ConstraintProgram, NumDispatchTableHits,
               "AnyOf alternatives dispatched directly via a table");
IRDL_STATISTIC(ConstraintProgram, NumDispatchTableRejects,
               "AnyOf values refuted by a table lookup alone");

namespace {
/// Metric series for the compiled-constraint engine, created once and
/// recorded into only while metricsEnabled() (the statistics above stay
/// the always-on counters).
struct ConstraintMetrics {
  Counter &MemoHits;
  Counter &MemoMisses;
  Counter &MemoExcluded;
  Counter &DispatchHits;
  Counter &DispatchRejects;

  static ConstraintMetrics &get() {
    static ConstraintMetrics M{
        MetricsRegistry::instance().getCounter(
            "irdl_constraint_memo_hits_total",
            "verification-cache hits (verdict served without matching)"),
        MetricsRegistry::instance().getCounter(
            "irdl_constraint_memo_misses_total",
            "verification-cache misses (verdict computed and recorded)"),
        MetricsRegistry::instance().getCounter(
            "irdl_constraint_memo_excluded_total",
            "memoizable entries skipped because the value is not a "
            "uniqued type/attribute"),
        MetricsRegistry::instance().getCounter(
            "irdl_constraint_dispatch_hits_total",
            "AnyOf alternatives dispatched directly via a table"),
        MetricsRegistry::instance().getCounter(
            "irdl_constraint_dispatch_rejects_total",
            "AnyOf values refuted by a table lookup alone")};
    return M;
  }
};
} // namespace

std::string_view irdl::getOpcodeName(COpcode Op) {
  switch (Op) {
  case COpcode::AnyType:
    return "AnyType";
  case COpcode::AnyAttr:
    return "AnyAttr";
  case COpcode::AnyParam:
    return "AnyParam";
  case COpcode::TypeParams:
    return "TypeParams";
  case COpcode::AttrParams:
    return "AttrParams";
  case COpcode::IntKind:
    return "IntKind";
  case COpcode::IntEq:
    return "IntEq";
  case COpcode::FloatKind:
    return "FloatKind";
  case COpcode::FloatEq:
    return "FloatEq";
  case COpcode::StringKind:
    return "StringKind";
  case COpcode::StringEq:
    return "StringEq";
  case COpcode::EnumKind:
    return "EnumKind";
  case COpcode::EnumEq:
    return "EnumEq";
  case COpcode::ArrayOf:
    return "ArrayOf";
  case COpcode::ArrayExact:
    return "ArrayExact";
  case COpcode::OpaqueKind:
    return "OpaqueKind";
  case COpcode::AnyOf:
    return "AnyOf";
  case COpcode::AnyOfTable:
    return "AnyOfTable";
  case COpcode::And:
    return "And";
  case COpcode::Not:
    return "Not";
  case COpcode::Var:
    return "Var";
  case COpcode::Cpp:
    return "Cpp";
  case COpcode::Native:
    return "Native";
  }
  return "<invalid>";
}

ConstraintProgram::ConstraintProgram() {
  static std::atomic<uint64_t> NextId{1};
  Id = NextId.fetch_add(1, std::memory_order_relaxed);
}

bool ConstraintProgram::run(const ParamValue &V, MatchContext &MC) const {
  ++NumProgramRuns;
  assert(InstrCount != 0 && "empty constraint program");
  if (constraintProfilingEnabled()) {
    uint64_t Begin = steadyNowNs();
    bool Result = exec(0, V, MC);
    ProfNs.fetch_add(steadyNowNs() - Begin, std::memory_order_relaxed);
    ProfEvals.fetch_add(1, std::memory_order_relaxed);
    return Result;
  }
  return exec(0, V, MC);
}

/// Matches the enum-constraint value conventions of the tree interpreter:
/// enum constraints accept raw enum parameters and builtin.enum
/// attributes wrapping one.
static bool matchEnum(const ParamValue &V, const EnumDef *EDef,
                      const EnumVal *EV) {
  const ParamValue *Inner = &V;
  ParamValue Unwrapped;
  if (V.isAttr()) {
    IRContext *Ctx = EDef->getDialect()->getContext();
    if (V.getAttr().getDef() != Ctx->getEnumAttrDef())
      return false;
    Unwrapped = V.getAttr().getParams()[0];
    Inner = &Unwrapped;
  }
  if (!Inner->isEnum())
    return false;
  return EV ? Inner->getEnum() == *EV : Inner->getEnum().Def == EDef;
}

bool ConstraintProgram::exec(uint32_t Pc, const ParamValue &V,
                             MatchContext &MC) const {
  const CInstr &I = InstrArr[Pc];

  // Memoized subprograms are variable-free and C++-free, so their verdict
  // over a uniqued value is a pure function of the storage pointer — and
  // they bind nothing, so a cached verdict needs no binding replay.
  const void *MemoPtr = nullptr;
  if (I.Flags & CInstr::FlagMemo) {
    if (V.isType())
      MemoPtr = V.getType().getImpl();
    else if (V.isAttr())
      MemoPtr = V.getAttr().getImpl();
    if (MemoPtr) {
      MemoKey Key{Pc, MemoPtr};
      MemoShard &Shard = MemoShards[MemoKeyHash{}(Key) % NumMemoShards];
      std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
      auto It = Shard.Map.find(Key);
      if (It != Shard.Map.end()) {
        ++NumMemoHits;
        if (metricsEnabled())
          ConstraintMetrics::get().MemoHits.inc();
        return It->second;
      }
    } else if (metricsEnabled()) {
      ConstraintMetrics::get().MemoExcluded.inc();
    }
  }

  bool Result = [&]() -> bool {
    const uint32_t *Child = ChildArr + I.ChildrenBegin;
    switch (I.Op) {
    case COpcode::AnyType:
      return V.isType();
    case COpcode::AnyAttr:
      return V.isAttr();
    case COpcode::AnyParam:
      return true;
    case COpcode::TypeParams: {
      if (!V.isType() || V.getType().getDef() != TypeDefs[I.A])
        return false;
      if (I.Flags & CInstr::FlagBaseOnly)
        return true;
      const auto &Params = V.getType().getParams();
      if (Params.size() != I.NumChildren)
        return false;
      for (uint16_t C = 0; C != I.NumChildren; ++C)
        if (!exec(Child[C], Params[C], MC))
          return false;
      return true;
    }
    case COpcode::AttrParams: {
      if (!V.isAttr() || V.getAttr().getDef() != AttrDefs[I.A])
        return false;
      if (I.Flags & CInstr::FlagBaseOnly)
        return true;
      const auto &Params = V.getAttr().getParams();
      if (Params.size() != I.NumChildren)
        return false;
      for (uint16_t C = 0; C != I.NumChildren; ++C)
        if (!exec(Child[C], Params[C], MC))
          return false;
      return true;
    }
    case COpcode::IntKind:
      return V.isInt() && V.getInt().Width == Ints[I.A].Width &&
             V.getInt().Sign == Ints[I.A].Sign;
    case COpcode::IntEq:
      return V.isInt() && V.getInt() == Ints[I.A];
    case COpcode::FloatKind:
      return V.isFloat() &&
             (Floats[I.A].Width == 0 ||
              V.getFloat().Width == Floats[I.A].Width);
    case COpcode::FloatEq:
      return V.isFloat() && V.getFloat() == Floats[I.A];
    case COpcode::StringKind:
      return V.isString();
    case COpcode::StringEq:
      return V.isString() && V.getString() == Strings[I.A];
    case COpcode::EnumKind:
      return matchEnum(V, EnumDefs[I.A], nullptr);
    case COpcode::EnumEq:
      return matchEnum(V, EnumVals[I.A].Def, &EnumVals[I.A]);
    case COpcode::ArrayOf: {
      if (!V.isArray())
        return false;
      if (I.NumChildren == 0)
        return true;
      for (const ParamValue &Elem : V.getArray())
        if (!exec(Child[0], Elem, MC))
          return false;
      return true;
    }
    case COpcode::ArrayExact: {
      if (!V.isArray() || V.getArray().size() != I.NumChildren)
        return false;
      for (uint16_t C = 0; C != I.NumChildren; ++C)
        if (!exec(Child[C], V.getArray()[C], MC))
          return false;
      return true;
    }
    case COpcode::OpaqueKind:
      return V.isOpaque() && V.getOpaque().ParamTypeName == Strings[I.A];
    case COpcode::AnyOf: {
      for (uint16_t C = 0; C != I.NumChildren; ++C) {
        MatchContext::Mark M = MC.mark();
        if (exec(Child[C], V, MC))
          return true;
        MC.undoTo(M);
      }
      return false;
    }
    case COpcode::AnyOfTable: {
      // Every alternative is rooted in a base definition check, so only
      // the alternatives keyed under the value's own definition can
      // possibly match; everything else is skipped without executing.
      const void *Def = nullptr;
      if (V.isType())
        Def = V.getType().getDef();
      else if (V.isAttr())
        Def = V.getAttr().getDef();
      if (!Def) {
        ++NumDispatchTableRejects;
        if (metricsEnabled())
          ConstraintMetrics::get().DispatchRejects.inc();
        return false;
      }
      const DispatchTable &Table = Tables[I.A];
      auto It = Table.Map.find(Def);
      if (It == Table.Map.end()) {
        ++NumDispatchTableRejects;
        if (metricsEnabled())
          ConstraintMetrics::get().DispatchRejects.inc();
        return false;
      }
      ++NumDispatchTableHits;
      if (metricsEnabled())
        ConstraintMetrics::get().DispatchHits.inc();
      auto [Begin, Count] = It->second;
      for (uint32_t C = 0; C != Count; ++C) {
        MatchContext::Mark M = MC.mark();
        if (exec(TableAltArr[Begin + C], V, MC))
          return true;
        MC.undoTo(M);
      }
      return false;
    }
    case COpcode::And: {
      for (uint16_t C = 0; C != I.NumChildren; ++C)
        if (!exec(Child[C], V, MC))
          return false;
      return true;
    }
    case COpcode::Not: {
      MatchContext::Mark M = MC.mark();
      bool Matched = exec(Child[0], V, MC);
      MC.undoTo(M);
      return !Matched;
    }
    case COpcode::Var: {
      const auto &Binding = MC.getBinding(I.A);
      if (Binding)
        return *Binding == V;
      bool Ok = I.A < VarPrograms.size() && VarPrograms[I.A]
                    ? VarPrograms[I.A]->run(V, MC)
                    : MC.getVarConstraint(I.A)->matches(V, MC);
      if (!Ok)
        return false;
      MC.bind(I.A, V);
      return true;
    }
    case COpcode::Cpp: {
      if (!exec(Child[0], V, MC) || !CppPreds[I.A])
        return false;
      return CppPreds[I.A](V);
    }
    case COpcode::Native: {
      if (!exec(Child[0], V, MC) || !NativeFns[I.A])
        return false;
      return NativeFns[I.A](V);
    }
    }
    return false;
  }();

  if (MemoPtr) {
    ++NumMemoMisses;
    if (metricsEnabled())
      ConstraintMetrics::get().MemoMisses.inc();
    MemoKey Key{Pc, MemoPtr};
    MemoShard &Shard = MemoShards[MemoKeyHash{}(Key) % NumMemoShards];
    std::unique_lock<std::shared_mutex> Lock(Shard.Mu);
    Shard.Map.emplace(Key, Result);
  }
  return Result;
}

std::optional<ParamValue>
ConstraintProgram::concreteValue(const MatchContext &MC) const {
  assert(InstrCount != 0 && "empty constraint program");
  return concreteAt(0, MC);
}

std::optional<ParamValue>
ConstraintProgram::concreteAt(uint32_t Pc, const MatchContext &MC) const {
  const CInstr &I = InstrArr[Pc];
  const uint32_t *Child = ChildArr + I.ChildrenBegin;
  switch (I.Op) {
  case COpcode::TypeParams: {
    const TypeDefinition *Def = TypeDefs[I.A];
    if ((I.Flags & CInstr::FlagBaseOnly) && Def->getNumParams() != 0)
      return std::nullopt;
    std::vector<ParamValue> Params;
    for (uint16_t C = 0; C != I.NumChildren; ++C) {
      auto V = concreteAt(Child[C], MC);
      if (!V)
        return std::nullopt;
      Params.push_back(std::move(*V));
    }
    DiagnosticEngine Scratch;
    Type T = Def->getDialect()->getContext()->getTypeChecked(
        Def, std::move(Params), Scratch);
    if (!T)
      return std::nullopt;
    return ParamValue(T);
  }
  case COpcode::AttrParams: {
    const AttrDefinition *Def = AttrDefs[I.A];
    if ((I.Flags & CInstr::FlagBaseOnly) && Def->getNumParams() != 0)
      return std::nullopt;
    std::vector<ParamValue> Params;
    for (uint16_t C = 0; C != I.NumChildren; ++C) {
      auto V = concreteAt(Child[C], MC);
      if (!V)
        return std::nullopt;
      Params.push_back(std::move(*V));
    }
    DiagnosticEngine Scratch;
    Attribute A = Def->getDialect()->getContext()->getAttrChecked(
        Def, std::move(Params), Scratch);
    if (!A)
      return std::nullopt;
    return ParamValue(A);
  }
  case COpcode::IntEq:
    return ParamValue(Ints[I.A]);
  case COpcode::FloatEq:
    return ParamValue(Floats[I.A]);
  case COpcode::StringEq:
    return ParamValue(Strings[I.A]);
  case COpcode::EnumEq:
    return ParamValue(EnumVals[I.A]);
  case COpcode::ArrayExact: {
    std::vector<ParamValue> Elems;
    for (uint16_t C = 0; C != I.NumChildren; ++C) {
      auto V = concreteAt(Child[C], MC);
      if (!V)
        return std::nullopt;
      Elems.push_back(std::move(*V));
    }
    return ParamValue(std::move(Elems));
  }
  case COpcode::Var:
    if (const auto &Binding = MC.getBinding(I.A))
      return *Binding;
    return std::nullopt;
  case COpcode::And:
  case COpcode::Cpp:
  case COpcode::Native:
    // Derivable when some conjunct is (the Cpp/Native base is their sole
    // child, mirroring the tree interpreter).
    for (uint16_t C = 0; C != I.NumChildren; ++C)
      if (auto V = concreteAt(Child[C], MC))
        return V;
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

size_t ConstraintProgram::getMemoCacheSize() const {
  size_t N = 0;
  for (const MemoShard &Shard : MemoShards) {
    std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
    N += Shard.Map.size();
  }
  return N;
}

void ConstraintProgram::clearMemoCache() const {
  for (MemoShard &Shard : MemoShards) {
    std::unique_lock<std::shared_mutex> Lock(Shard.Mu);
    Shard.Map.clear();
  }
}

std::string ConstraintProgram::dump() const {
  std::ostringstream OS;
  for (size_t Pc = 0, E = InstrCount; Pc != E; ++Pc) {
    const CInstr &I = InstrArr[Pc];
    OS << Pc << ": " << getOpcodeName(I.Op);
    switch (I.Op) {
    case COpcode::TypeParams:
      OS << " !" << TypeDefs[I.A]->getFullName();
      break;
    case COpcode::AttrParams:
      OS << " #" << AttrDefs[I.A]->getFullName();
      break;
    case COpcode::IntKind:
    case COpcode::IntEq:
      OS << " " << Ints[I.A].Value << ":w" << Ints[I.A].Width;
      break;
    case COpcode::FloatKind:
    case COpcode::FloatEq:
      OS << " w" << Floats[I.A].Width;
      break;
    case COpcode::StringEq:
    case COpcode::OpaqueKind:
      OS << " \"" << Strings[I.A] << "\"";
      break;
    case COpcode::EnumKind:
      OS << " " << EnumDefs[I.A]->getFullName();
      break;
    case COpcode::EnumEq:
      OS << " " << EnumVals[I.A].Def->getFullName() << "#"
         << EnumVals[I.A].Index;
      break;
    case COpcode::AnyOfTable:
      OS << " tbl=" << I.A << "/" << Tables[I.A].Map.size() << "defs";
      break;
    case COpcode::Var:
      OS << " v" << I.A;
      break;
    default:
      break;
    }
    if (I.Flags & CInstr::FlagBaseOnly)
      OS << " base";
    if (I.Flags & CInstr::FlagMemo)
      OS << " memo";
    if (I.NumChildren) {
      OS << " [";
      for (uint16_t C = 0; C != I.NumChildren; ++C) {
        if (C)
          OS << " ";
        OS << ChildArr[I.ChildrenBegin + C];
      }
      OS << "]";
    }
    OS << "\n";
  }
  return OS.str();
}
