//===- IRDLLoader.cpp - loadIRDL orchestration -------------------------===//

#include "irdl/IRDL.h"

#include "irdl/IRDLParser.h"
#include "irdl/Registration.h"
#include "irdl/Sema.h"
#include "support/Statistic.h"
#include "support/Timing.h"

#include <fstream>
#include <sstream>

using namespace irdl;

IRDL_STATISTIC(IRDLFrontend, NumBuffersLoaded,
               "IRDL buffers run through the frontend");
IRDL_STATISTIC(IRDLFrontend, NumDialectsRegistered,
               "dialects registered from IRDL specs");
IRDL_STATISTIC(IRDLFrontend, NumOpsRegistered,
               "operations registered from IRDL specs");

size_t IRDLModule::getNumOps() const {
  size_t N = 0;
  for (const auto &D : Dialects)
    N += D->Ops.size();
  return N;
}

size_t IRDLModule::getNumTypes() const {
  size_t N = 0;
  for (const auto &D : Dialects)
    N += D->Types.size();
  return N;
}

size_t IRDLModule::getNumAttrs() const {
  size_t N = 0;
  for (const auto &D : Dialects)
    N += D->Attrs.size();
  return N;
}

std::unique_ptr<IRDLModule>
irdl::loadIRDL(IRContext &Ctx, std::string_view Source, SourceMgr &SrcMgr,
               DiagnosticEngine &Diags, const IRDLLoadOptions &Opts,
               std::string BufferName) {
  IRDL_TIME_SCOPE("irdl-frontend");
  ++NumBuffersLoaded;
  unsigned Id = SrcMgr.addBuffer(std::string(Source), std::move(BufferName));
  if (!Diags.getSourceMgr())
    Diags.setSourceMgr(&SrcMgr);

  unsigned ErrorsBefore = Diags.getNumErrors();
  std::vector<ast::DialectDecl> Decls;
  {
    // The IRDL lexer runs on demand inside the parser, so one phase
    // covers both.
    IRDL_TIME_SCOPE("lex+parse");
    Decls = parseIRDL(SrcMgr.getBufferContents(Id), Diags);
  }
  if (Diags.getNumErrors() != ErrorsBefore)
    return nullptr;

  Sema S(Ctx, Diags, Opts);
  {
    IRDL_TIME_SCOPE("sema");
    for (const ast::DialectDecl &Decl : Decls)
      if (failed(S.declareDialect(Decl)))
        return nullptr;
  }

  auto Module = std::make_unique<IRDLModule>();
  for (const ast::DialectDecl &Decl : Decls) {
    auto Spec = std::make_shared<DialectSpec>();
    {
      IRDL_TIME_SCOPE("sema");
      if (failed(S.resolveDialect(Decl, *Spec)))
        return nullptr;
    }
    {
      IRDL_TIME_SCOPE("register");
      if (failed(registerDialectSpec(Spec, Ctx, Diags, Opts)))
        return nullptr;
    }
    ++NumDialectsRegistered;
    NumOpsRegistered += Spec->Ops.size();
    Module->Dialects.push_back(std::move(Spec));
  }
  return Module;
}

std::unique_ptr<IRDLModule>
irdl::loadIRDLFile(IRContext &Ctx, const std::string &Path,
                   SourceMgr &SrcMgr, DiagnosticEngine &Diags,
                   const IRDLLoadOptions &Opts) {
  std::ostringstream Contents;
  {
    IRDL_TIME_SCOPE("read-irdl-file");
    std::ifstream In(Path);
    if (!In) {
      Diags.emitError(SMLoc(), "cannot open IRDL file '" + Path + "'");
      return nullptr;
    }
    Contents << In.rdbuf();
  }
  return loadIRDL(Ctx, Contents.str(), SrcMgr, Diags, Opts, Path);
}
