//===- IRDLLoader.cpp - loadIRDL orchestration -------------------------===//

#include "irdl/IRDL.h"

#include "irdl/IRDLParser.h"
#include "irdl/Registration.h"
#include "irdl/Sema.h"

#include <fstream>
#include <sstream>

using namespace irdl;

size_t IRDLModule::getNumOps() const {
  size_t N = 0;
  for (const auto &D : Dialects)
    N += D->Ops.size();
  return N;
}

size_t IRDLModule::getNumTypes() const {
  size_t N = 0;
  for (const auto &D : Dialects)
    N += D->Types.size();
  return N;
}

size_t IRDLModule::getNumAttrs() const {
  size_t N = 0;
  for (const auto &D : Dialects)
    N += D->Attrs.size();
  return N;
}

std::unique_ptr<IRDLModule>
irdl::loadIRDL(IRContext &Ctx, std::string_view Source, SourceMgr &SrcMgr,
               DiagnosticEngine &Diags, const IRDLLoadOptions &Opts,
               std::string BufferName) {
  unsigned Id = SrcMgr.addBuffer(std::string(Source), std::move(BufferName));
  if (!Diags.getSourceMgr())
    Diags.setSourceMgr(&SrcMgr);

  unsigned ErrorsBefore = Diags.getNumErrors();
  std::vector<ast::DialectDecl> Decls =
      parseIRDL(SrcMgr.getBufferContents(Id), Diags);
  if (Diags.getNumErrors() != ErrorsBefore)
    return nullptr;

  Sema S(Ctx, Diags, Opts);
  for (const ast::DialectDecl &Decl : Decls)
    if (failed(S.declareDialect(Decl)))
      return nullptr;

  auto Module = std::make_unique<IRDLModule>();
  for (const ast::DialectDecl &Decl : Decls) {
    auto Spec = std::make_shared<DialectSpec>();
    if (failed(S.resolveDialect(Decl, *Spec)))
      return nullptr;
    if (failed(registerDialectSpec(Spec, Ctx, Diags, Opts)))
      return nullptr;
    Module->Dialects.push_back(std::move(Spec));
  }
  return Module;
}

std::unique_ptr<IRDLModule>
irdl::loadIRDLFile(IRContext &Ctx, const std::string &Path,
                   SourceMgr &SrcMgr, DiagnosticEngine &Diags,
                   const IRDLLoadOptions &Opts) {
  std::ifstream In(Path);
  if (!In) {
    Diags.emitError(SMLoc(), "cannot open IRDL file '" + Path + "'");
    return nullptr;
  }
  std::ostringstream Contents;
  Contents << In.rdbuf();
  return loadIRDL(Ctx, Contents.str(), SrcMgr, Diags, Opts, Path);
}
