//===- ConstraintProfiler.cpp - Hot-constraint attribution ------*- C++ -*-===//

#include "irdl/ConstraintProfiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace irdl;

namespace irdl {
namespace detail {
std::atomic<bool> ConstraintProfilingFlag{false};
} // namespace detail
} // namespace irdl

void irdl::setConstraintProfilingEnabled(bool Enabled) {
  detail::ConstraintProfilingFlag.store(Enabled, std::memory_order_relaxed);
}

ConstraintProfiler &ConstraintProfiler::instance() {
  // Leaked singleton: programs registered from function-local statics may
  // outlive any static profiler object on some teardown orders.
  static ConstraintProfiler *Profiler = new ConstraintProfiler();
  return *Profiler;
}

void ConstraintProfiler::registerProgram(const ConstraintProgramPtr &Prog,
                                         std::string Name) {
  if (!Prog)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Records.push_back({Prog, std::move(Name)});
}

std::vector<ConstraintProfiler::Entry> ConstraintProfiler::collect() const {
  std::vector<Entry> Entries;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Entries.reserve(Records.size());
    for (const Record &R : Records) {
      ConstraintProgramPtr P = R.Prog.lock();
      if (!P)
        continue;
      uint64_t Evals = P->getProfiledEvals();
      if (Evals == 0)
        continue;
      Entries.push_back({R.Name, P->getId(), P->getNumInstrs(), Evals,
                         P->getProfiledNanos()});
    }
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              if (A.Nanos != B.Nanos)
                return A.Nanos > B.Nanos;
              return A.ProgramId < B.ProgramId;
            });
  return Entries;
}

std::string ConstraintProfiler::renderReport(size_t TopN) const {
  std::vector<Entry> Entries = collect();
  uint64_t TotalNs = 0, TotalEvals = 0;
  for (const Entry &E : Entries) {
    TotalNs += E.Nanos;
    TotalEvals += E.Evals;
  }

  std::string Out;
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "===-------------------------------------------------------------"
           "---===\n"
           "            Hottest constraint programs (%zu of %zu, %" PRIu64
           " evals)\n"
           "===-------------------------------------------------------------"
           "---===\n",
           std::min(TopN, Entries.size()), Entries.size(), TotalEvals);
  Out += Buf;
  snprintf(Buf, sizeof(Buf), "  %10s  %12s  %9s  %7s  %6s  %s\n", "evals",
           "total(us)", "mean(ns)", "pct", "instrs", "program");
  Out += Buf;
  size_t Shown = 0;
  for (const Entry &E : Entries) {
    if (Shown++ == TopN)
      break;
    double Pct = TotalNs ? 100.0 * (double)E.Nanos / (double)TotalNs : 0.0;
    double MeanNs = E.Evals ? (double)E.Nanos / (double)E.Evals : 0.0;
    snprintf(Buf, sizeof(Buf),
             "  %10" PRIu64 "  %12.1f  %9.1f  %6.2f%%  %6" PRIu64 "  %s\n",
             E.Evals, (double)E.Nanos / 1000.0, MeanNs, Pct, E.NumInstrs,
             E.Name.empty() ? "<unregistered>" : E.Name.c_str());
    Out += Buf;
  }
  if (Entries.empty())
    Out += "  (no profiled constraint executions)\n";
  return Out;
}

static void appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", (unsigned char)C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

std::string ConstraintProfiler::renderJson() const {
  std::vector<Entry> Entries = collect();
  std::string Out = "[";
  bool First = true;
  char Buf[160];
  for (const Entry &E : Entries) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"name\":\"";
    appendJsonEscaped(Out, E.Name);
    snprintf(Buf, sizeof(Buf),
             "\",\"program_id\":%" PRIu64 ",\"num_instrs\":%" PRIu64
             ",\"evals\":%" PRIu64 ",\"nanos\":%" PRIu64 "}",
             E.ProgramId, E.NumInstrs, E.Evals, E.Nanos);
    Out += Buf;
  }
  Out += "]";
  return Out;
}

void ConstraintProfiler::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Record> Live;
  Live.reserve(Records.size());
  for (Record &R : Records) {
    if (ConstraintProgramPtr P = R.Prog.lock()) {
      P->resetProfile();
      Live.push_back(std::move(R));
    }
  }
  Records = std::move(Live);
}
