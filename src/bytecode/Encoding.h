//===- Encoding.h - .irbc low-level encoding primitives ----------*- C++ -*-===//
///
/// \file
/// The byte-level vocabulary of the `.irbc` bytecode format: LEB128
/// varints (zig-zag for signed values), raw little-endian doubles, and the
/// sectioned container layout. BytecodeOutput appends primitives to a byte
/// buffer; BytecodeCursor reads them back with bounds checks and reports
/// truncation/corruption through structured, caret-free diagnostics that
/// carry the absolute byte offset (docs/serialization.md).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_BYTECODE_ENCODING_H
#define IRDL_BYTECODE_ENCODING_H

#include "support/Diagnostics.h"
#include "support/LogicalResult.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace irdl {
namespace bytecode {

/// The 4-byte magic prefix of every `.irbc` buffer.
inline constexpr char Magic[4] = {'I', 'R', 'B', 'C'};

/// Bumped on any incompatible layout change. Readers hard-reject any other
/// version: bytecode is an exact-version artifact, not an archive format
/// (docs/serialization.md, "Versioning policy"). Version 2 switched every
/// section header to a fixed 8-byte length, added the Programs and Meta
/// sections, and renumbered TypeAttrPool/IR.
inline constexpr uint64_t FormatVersion = 2;

/// Section identifiers. Order in the file is fixed: Strings must precede
/// every section that interns into it; Specs must precede Programs (a
/// program references definitions its spec declares); specs must be
/// registered before TypeAttrPool (pool entries resolve definitions that
/// specs may register); the pool must precede IR.
enum class SectionId : uint8_t {
  Strings = 1,
  Specs = 2,
  /// Compiled ConstraintPrograms for the Specs dialects: an 8-byte-aligned
  /// body whose flat instruction/child/table arrays are raw little-endian
  /// and can back program storage zero-copy from a read-only mapping.
  Programs = 3,
  TypeAttrPool = 4,
  IR = 5,
  /// Trailing metadata: the 64-bit content hash of the source the buffer
  /// was generated from (on-disk spec-cache validation).
  Meta = 6,
};

/// Alignment guaranteed for the Programs section body (and therefore for
/// every raw array inside it, which the writer pads relative to the body
/// start).
inline constexpr size_t ProgramSectionAlign = 8;

/// Appends primitives to a growing byte buffer.
class BytecodeOutput {
public:
  void writeByte(uint8_t B) { Bytes.push_back(static_cast<char>(B)); }

  /// Unsigned LEB128.
  void writeVarInt(uint64_t V) {
    while (V >= 0x80) {
      writeByte(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    writeByte(static_cast<uint8_t>(V));
  }

  /// Zig-zag signed LEB128.
  void writeSignedVarInt(int64_t V) {
    writeVarInt((static_cast<uint64_t>(V) << 1) ^
                static_cast<uint64_t>(V >> 63));
  }

  /// Raw little-endian IEEE-754 double (8 bytes).
  void writeDouble(double V) {
    uint64_t Raw;
    static_assert(sizeof(Raw) == sizeof(V));
    std::memcpy(&Raw, &V, sizeof(Raw));
    for (unsigned I = 0; I != 8; ++I)
      writeByte(static_cast<uint8_t>(Raw >> (8 * I)));
  }

  /// Raw little-endian fixed-width integers. Section headers use fixed
  /// 8-byte lengths (not varints) so absolute payload offsets are known
  /// during assembly — the property the Programs section's alignment
  /// guarantee rests on.
  void writeFixed32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      writeByte(static_cast<uint8_t>(V >> (8 * I)));
  }
  void writeFixed64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      writeByte(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// Zero-pads until size() is a multiple of \p Align.
  void alignTo(size_t Align) {
    while (Bytes.size() % Align != 0)
      writeByte(0);
  }

  void writeBytes(std::string_view Data) { Bytes.append(Data); }

  const std::string &str() const { return Bytes; }
  std::string take() { return std::move(Bytes); }
  size_t size() const { return Bytes.size(); }

private:
  std::string Bytes;
};

/// A bounds-checked reading position over a byte buffer. Every primitive
/// read reports failure through the DiagnosticEngine with the byte offset
/// where decoding stopped, and all subsequent reads fail fast — callers
/// can check hadError() once per structural unit instead of after every
/// primitive.
class BytecodeCursor {
public:
  BytecodeCursor(std::string_view Buffer, DiagnosticEngine &Diags,
                 size_t BaseOffset = 0)
      : Buffer(Buffer), Diags(Diags), BaseOffset(BaseOffset) {}

  /// Absolute offset in the enclosing file (sections get sub-cursors).
  size_t offset() const { return BaseOffset + Pos; }
  size_t remaining() const { return Buffer.size() - Pos; }
  bool atEnd() const { return Pos == Buffer.size(); }
  bool hadError() const { return Failed; }

  /// Emits a corruption diagnostic at the current offset and poisons the
  /// cursor.
  LogicalResult error(std::string Message) {
    if (!Failed)
      Diags.emitError(SMLoc(), "invalid bytecode at offset " +
                                   std::to_string(offset()) + ": " +
                                   std::move(Message));
    Failed = true;
    return failure();
  }

  bool readByte(uint8_t &B) {
    if (Failed)
      return false;
    if (Pos >= Buffer.size()) {
      error("truncated buffer (expected one more byte)");
      return false;
    }
    B = static_cast<uint8_t>(Buffer[Pos++]);
    return true;
  }

  bool readVarInt(uint64_t &V) {
    V = 0;
    unsigned Shift = 0;
    uint8_t B;
    do {
      if (Shift >= 64)
        return error("varint exceeds 64 bits"), false;
      if (!readByte(B))
        return false;
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      Shift += 7;
    } while (B & 0x80);
    return true;
  }

  bool readSignedVarInt(int64_t &V) {
    uint64_t Raw;
    if (!readVarInt(Raw))
      return false;
    V = static_cast<int64_t>((Raw >> 1) ^ (~(Raw & 1) + 1));
    return true;
  }

  bool readFixed32(uint32_t &V) {
    V = 0;
    for (unsigned I = 0; I != 4; ++I) {
      uint8_t B;
      if (!readByte(B))
        return false;
      V |= static_cast<uint32_t>(B) << (8 * I);
    }
    return true;
  }

  bool readFixed64(uint64_t &V) {
    V = 0;
    for (unsigned I = 0; I != 8; ++I) {
      uint8_t B;
      if (!readByte(B))
        return false;
      V |= static_cast<uint64_t>(B) << (8 * I);
    }
    return true;
  }

  /// Skips padding bytes until offset() is a multiple of \p Align.
  bool skipAlignment(size_t Align) {
    while (offset() % Align != 0) {
      uint8_t B;
      if (!readByte(B))
        return false;
    }
    return true;
  }

  bool readDouble(double &V) {
    uint64_t Raw = 0;
    for (unsigned I = 0; I != 8; ++I) {
      uint8_t B;
      if (!readByte(B))
        return false;
      Raw |= static_cast<uint64_t>(B) << (8 * I);
    }
    std::memcpy(&V, &Raw, sizeof(V));
    return true;
  }

  /// Reads \p N raw bytes into \p Out (a view into the buffer).
  bool readBytes(size_t N, std::string_view &Out) {
    if (Failed)
      return false;
    if (remaining() < N) {
      error("truncated buffer (need " + std::to_string(N) +
            " bytes, have " + std::to_string(remaining()) + ")");
      return false;
    }
    Out = Buffer.substr(Pos, N);
    Pos += N;
    return true;
  }

  /// Reads a varint and bounds-checks it against \p Limit (an element
  /// count or index upper bound), rejecting corrupt sizes before any
  /// allocation.
  bool readVarIntBelow(uint64_t Limit, std::string_view What,
                       uint64_t &V) {
    if (!readVarInt(V))
      return false;
    if (V >= Limit) {
      error(std::string(What) + " " + std::to_string(V) +
            " out of range (limit " + std::to_string(Limit) + ")");
      return false;
    }
    return true;
  }

private:
  std::string_view Buffer;
  DiagnosticEngine &Diags;
  size_t BaseOffset;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace bytecode
} // namespace irdl

#endif // IRDL_BYTECODE_ENCODING_H
