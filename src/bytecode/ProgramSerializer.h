//===- ProgramSerializer.h - ConstraintProgram <-> .irbc ---------*- C++ -*-===//
///
/// \file
/// Serialization of compiled ConstraintPrograms into the `.irbc` Programs
/// section (format v2). The wire form mirrors the in-memory form: the
/// flat 12-byte CInstr array, the child-index array, and the dispatch-
/// table alternative array are written as raw little-endian bytes at
/// 8-byte-aligned offsets, so the reader can point program storage
/// directly into a read-only mapping — zero copies, zero fixups on the
/// hot path. Everything pointer-shaped (definition pools, dispatch-table
/// keys, C++ predicates, native hooks) is written as qualified names /
/// sources and re-resolved per context at read time.
///
/// A decoded program is validated structurally before use (opcode range,
/// pool bounds, strictly-forward child edges), so corrupt or truncated
/// buffers are rejected cleanly instead of executing out-of-bounds.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_BYTECODE_PROGRAMSERIALIZER_H
#define IRDL_BYTECODE_PROGRAMSERIALIZER_H

#include "bytecode/Encoding.h"
#include "irdl/ConstraintProgram.h"
#include "irdl/IRDL.h"

#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace irdl {

class IRContext;

namespace bytecode {

/// Encodes programs into a Programs-section body. Offsets are measured
/// relative to the start of the body output, which the section assembly
/// places at an 8-byte-aligned absolute offset — so body-relative
/// alignment is absolute alignment.
class ProgramWriter {
public:
  /// \p WriteString interns a string into the file's string table and
  /// writes its varint index to the given output.
  ProgramWriter(BytecodeOutput &Body,
                std::function<void(BytecodeOutput &, std::string_view)>
                    WriteString)
      : Body(Body), WriteString(std::move(WriteString)) {}

  /// Writes a presence byte, then (if \p P is non-null) the program.
  /// \p WithVarPrograms controls whether P->VarPrograms is encoded;
  /// operand/result/attr/region-arg programs of an operation share the
  /// op's variable programs, which are written once per op instead.
  void writeOptional(const ConstraintProgram *P, bool WithVarPrograms);

private:
  void writeProgram(const ConstraintProgram &P, bool WithVarPrograms);

  BytecodeOutput &Body;
  std::function<void(BytecodeOutput &, std::string_view)> WriteString;
};

/// Decodes programs from a Programs-section body. When \p Backing is
/// non-null, the host is little-endian, and the buffer memory happens to
/// be suitably aligned, the flat arrays alias the buffer directly and
/// \p Backing keeps it alive; otherwise they are copy-decoded into owned
/// storage. Both paths yield semantically identical programs.
class ProgramReader {
public:
  ProgramReader(IRContext &Ctx, DiagnosticEngine &Diags,
                const IRDLLoadOptions &Opts,
                const std::vector<std::string_view> &Strings,
                std::shared_ptr<const void> Backing)
      : Ctx(Ctx), Diags(Diags), Opts(Opts), Strings(Strings),
        Backing(std::move(Backing)) {}

  /// Reads one optional program (presence byte first). Returns failure
  /// on corrupt input; a present, well-formed program lands in \p Out
  /// (null when absent). \p NumVars bounds Var opcode indices;
  /// \p VarPrograms is installed as the program's variable-program slots
  /// when the program was written without them.
  LogicalResult readOptional(BytecodeCursor &C, uint64_t NumVars,
                             bool WithVarPrograms,
                             std::vector<ConstraintProgramPtr> VarPrograms,
                             ConstraintProgramPtr &Out);

private:
  std::shared_ptr<ConstraintProgram> readProgram(BytecodeCursor &C,
                                                 uint64_t NumVars,
                                                 bool WithVarPrograms);
  bool readString(BytecodeCursor &C, std::string_view &Out);
  bool validate(BytecodeCursor &C, const ConstraintProgram &P,
                uint64_t NumVars);

  IRContext &Ctx;
  DiagnosticEngine &Diags;
  const IRDLLoadOptions &Opts;
  const std::vector<std::string_view> &Strings;
  std::shared_ptr<const void> Backing;

  /// Read-side memoization, shared by every program of one section: the
  /// same definition names, C++ predicate sources, and native hook names
  /// recur across the hundreds of small programs a dialect carries, so
  /// each is resolved/recompiled once per read instead of once per
  /// program. Keys are views into the file string table, which outlives
  /// the reader.
  std::unordered_map<std::string_view, TypeDefinition *> TypeDefCache;
  std::unordered_map<std::string_view, AttrDefinition *> AttrDefCache;
  std::unordered_map<std::string_view, EnumDef *> EnumDefCache;
  std::unordered_map<std::string_view, CppParamPredicate> CppPredCache;
  std::unordered_map<std::string_view, NativeConstraintFn> NativeFnCache;
};

} // namespace bytecode
} // namespace irdl

#endif // IRDL_BYTECODE_PROGRAMSERIALIZER_H
