//===- ProgramSerializer.cpp - ConstraintProgram <-> .irbc ----------------===//

#include "bytecode/ProgramSerializer.h"

#include "ir/Context.h"
#include "irdl/CppExpr.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <tuple>
#include <type_traits>

using namespace irdl;
using namespace irdl::bytecode;

// The zero-copy contract: the wire form of the flat arrays is exactly
// the in-memory form on a little-endian host. Any change to CInstr's
// layout is a bytecode format break (bump FormatVersion).
static_assert(sizeof(CInstr) == 12, "CInstr wire layout changed");
static_assert(std::is_trivially_copyable_v<CInstr>,
              "CInstr must be memcpy-safe");
static_assert(offsetof(CInstr, Op) == 0 && offsetof(CInstr, Flags) == 1 &&
                  offsetof(CInstr, NumChildren) == 2 &&
                  offsetof(CInstr, A) == 4 &&
                  offsetof(CInstr, ChildrenBegin) == 8,
              "CInstr field order changed");

static constexpr bool HostIsLittleEndian =
    std::endian::native == std::endian::little;

/// Known CInstr flag bits; anything else in a decoded buffer is corrupt.
static constexpr uint8_t KnownFlags =
    CInstr::FlagBaseOnly | CInstr::FlagMemo;

namespace {
/// Dispatch-table key kinds on the wire.
enum class TableKeyKind : uint8_t { Type = 0, Attr = 1 };
} // namespace

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

void ProgramWriter::writeOptional(const ConstraintProgram *P,
                                  bool WithVarPrograms) {
  Body.writeByte(P ? 1 : 0);
  if (P)
    writeProgram(*P, WithVarPrograms);
}

void ProgramWriter::writeProgram(const ConstraintProgram &P,
                                 bool WithVarPrograms) {
  Body.writeVarInt(P.InstrCount);
  Body.writeVarInt(P.ChildCount);
  Body.writeVarInt(P.TableAltCount);

  // The three flat arrays, raw little-endian at 8-aligned (body-relative
  // == absolute) offsets. Field-wise emission keeps the file identical
  // regardless of host endianness.
  Body.alignTo(ProgramSectionAlign);
  for (uint32_t I = 0; I != P.InstrCount; ++I) {
    const CInstr &Ins = P.InstrArr[I];
    Body.writeByte(static_cast<uint8_t>(Ins.Op));
    Body.writeByte(Ins.Flags);
    Body.writeByte(static_cast<uint8_t>(Ins.NumChildren));
    Body.writeByte(static_cast<uint8_t>(Ins.NumChildren >> 8));
    Body.writeFixed32(Ins.A);
    Body.writeFixed32(Ins.ChildrenBegin);
  }
  Body.alignTo(ProgramSectionAlign);
  for (uint32_t I = 0; I != P.ChildCount; ++I)
    Body.writeFixed32(P.ChildArr[I]);
  Body.alignTo(ProgramSectionAlign);
  for (uint32_t I = 0; I != P.TableAltCount; ++I)
    Body.writeFixed32(P.TableAltArr[I]);

  // Pools. Uniqued definition pointers travel as qualified names and are
  // re-resolved against the destination context.
  Body.writeVarInt(P.TypeDefs.size());
  for (const TypeDefinition *Def : P.TypeDefs)
    WriteString(Body, Def->getFullName());
  Body.writeVarInt(P.AttrDefs.size());
  for (const AttrDefinition *Def : P.AttrDefs)
    WriteString(Body, Def->getFullName());
  Body.writeVarInt(P.Ints.size());
  for (const IntVal &V : P.Ints) {
    Body.writeVarInt(V.Width);
    Body.writeByte(static_cast<uint8_t>(V.Sign));
    Body.writeSignedVarInt(V.Value);
  }
  Body.writeVarInt(P.Floats.size());
  for (const FloatVal &V : P.Floats) {
    Body.writeVarInt(V.Width);
    Body.writeDouble(V.Value);
  }
  Body.writeVarInt(P.Strings.size());
  for (const std::string &S : P.Strings)
    WriteString(Body, S);
  Body.writeVarInt(P.EnumDefs.size());
  for (const EnumDef *Def : P.EnumDefs)
    WriteString(Body, Def->getFullName());
  Body.writeVarInt(P.EnumVals.size());
  for (const EnumVal &V : P.EnumVals) {
    WriteString(Body, V.Def->getFullName());
    Body.writeVarInt(V.Index);
  }
  // std::function slots travel as the sources/names they were built
  // from; the reader recompiles / re-resolves them.
  Body.writeVarInt(P.CppSrcs.size());
  for (const std::string &Src : P.CppSrcs)
    WriteString(Body, Src);
  Body.writeVarInt(P.NativeNames.size());
  for (const std::string &Name : P.NativeNames)
    WriteString(Body, Name);

  // Dispatch tables: (key kind, key pool index, alt slice) triples. The
  // slices index the TableAlts array written above; entries are sorted
  // for byte-deterministic output (unordered_map iteration is not).
  Body.writeVarInt(P.Tables.size());
  for (const ConstraintProgram::DispatchTable &Table : P.Tables) {
    struct Entry {
      TableKeyKind Kind;
      uint32_t PoolIdx;
      uint32_t Begin;
      uint32_t Count;
    };
    std::vector<Entry> Entries;
    Entries.reserve(Table.Map.size());
    for (const auto &[Key, Slice] : Table.Map) {
      Entry E{TableKeyKind::Type, 0, Slice.first, Slice.second};
      bool Found = false;
      for (uint32_t I = 0; I != P.TypeDefs.size() && !Found; ++I)
        if (P.TypeDefs[I] == Key) {
          E.Kind = TableKeyKind::Type;
          E.PoolIdx = I;
          Found = true;
        }
      for (uint32_t I = 0; I != P.AttrDefs.size() && !Found; ++I)
        if (P.AttrDefs[I] == Key) {
          E.Kind = TableKeyKind::Attr;
          E.PoolIdx = I;
          Found = true;
        }
      assert(Found && "dispatch key missing from definition pools");
      Entries.push_back(E);
    }
    std::sort(Entries.begin(), Entries.end(),
              [](const Entry &A, const Entry &B) {
                return std::tie(A.Kind, A.PoolIdx) <
                       std::tie(B.Kind, B.PoolIdx);
              });
    Body.writeVarInt(Entries.size());
    for (const Entry &E : Entries) {
      Body.writeByte(static_cast<uint8_t>(E.Kind));
      Body.writeVarInt(E.PoolIdx);
      Body.writeVarInt(E.Begin);
      Body.writeVarInt(E.Count);
    }
  }

  if (WithVarPrograms) {
    Body.writeVarInt(P.VarPrograms.size());
    for (const ConstraintProgramPtr &VP : P.VarPrograms)
      writeOptional(VP.get(), /*WithVarPrograms=*/false);
  }
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

bool ProgramReader::readString(BytecodeCursor &C, std::string_view &Out) {
  uint64_t Id;
  if (!C.readVarIntBelow(Strings.size(), "string index", Id))
    return false;
  Out = Strings[Id];
  return true;
}

LogicalResult
ProgramReader::readOptional(BytecodeCursor &C, uint64_t NumVars,
                            bool WithVarPrograms,
                            std::vector<ConstraintProgramPtr> VarPrograms,
                            ConstraintProgramPtr &Out) {
  Out = nullptr;
  uint8_t Present;
  if (!C.readByte(Present))
    return failure();
  if (Present > 1) {
    C.error("invalid program presence byte " + std::to_string(Present));
    return failure();
  }
  if (!Present)
    return success();
  std::shared_ptr<ConstraintProgram> P =
      readProgram(C, NumVars, WithVarPrograms);
  if (!P)
    return failure();
  if (!WithVarPrograms)
    P->VarPrograms = std::move(VarPrograms);
  Out = std::move(P);
  return success();
}

std::shared_ptr<ConstraintProgram>
ProgramReader::readProgram(BytecodeCursor &C, uint64_t NumVars,
                           bool WithVarPrograms) {
  auto P = std::make_shared<ConstraintProgram>();

  uint64_t NumInstrs, NumChildren, NumTableAlts;
  // Each instruction/index occupies a fixed byte count, so the remaining
  // payload bounds the plausible element counts — corrupt sizes are
  // rejected before any allocation.
  if (!C.readVarIntBelow(C.remaining() / sizeof(CInstr) + 1,
                         "program instruction count", NumInstrs) ||
      !C.readVarIntBelow(C.remaining() / sizeof(uint32_t) + 1,
                         "program child count", NumChildren) ||
      !C.readVarIntBelow(C.remaining() / sizeof(uint32_t) + 1,
                         "program table-alt count", NumTableAlts))
    return nullptr;
  if (NumInstrs == 0) {
    C.error("empty constraint program");
    return nullptr;
  }

  // The flat arrays. Zero-copy when the memory cooperates; otherwise a
  // field-wise copy-decode with identical semantics.
  auto ReadArray = [&](size_t ElemSize, uint64_t Count,
                       std::string_view &Raw) {
    if (!C.skipAlignment(ProgramSectionAlign))
      return false;
    return C.readBytes(Count * ElemSize, Raw);
  };
  auto CanAlias = [&](std::string_view Raw, size_t Align) {
    return HostIsLittleEndian && Backing &&
           reinterpret_cast<uintptr_t>(Raw.data()) % Align == 0;
  };

  std::string_view RawInstrs, RawChildren, RawAlts;
  if (!ReadArray(sizeof(CInstr), NumInstrs, RawInstrs) ||
      !ReadArray(sizeof(uint32_t), NumChildren, RawChildren) ||
      !ReadArray(sizeof(uint32_t), NumTableAlts, RawAlts))
    return nullptr;

  bool Aliased = false;
  if (CanAlias(RawInstrs, alignof(CInstr))) {
    P->InstrArr = reinterpret_cast<const CInstr *>(RawInstrs.data());
    Aliased = true;
  } else {
    P->OwnedInstrs.resize(NumInstrs);
    for (uint64_t I = 0; I != NumInstrs; ++I) {
      const unsigned char *B = reinterpret_cast<const unsigned char *>(
          RawInstrs.data() + I * sizeof(CInstr));
      CInstr &Ins = P->OwnedInstrs[I];
      Ins.Op = static_cast<COpcode>(B[0]);
      Ins.Flags = B[1];
      Ins.NumChildren = static_cast<uint16_t>(B[2] | (B[3] << 8));
      Ins.A = static_cast<uint32_t>(B[4]) | (static_cast<uint32_t>(B[5]) << 8) |
              (static_cast<uint32_t>(B[6]) << 16) |
              (static_cast<uint32_t>(B[7]) << 24);
      Ins.ChildrenBegin = static_cast<uint32_t>(B[8]) |
                          (static_cast<uint32_t>(B[9]) << 8) |
                          (static_cast<uint32_t>(B[10]) << 16) |
                          (static_cast<uint32_t>(B[11]) << 24);
    }
    P->InstrArr = P->OwnedInstrs.data();
  }
  P->InstrCount = static_cast<uint32_t>(NumInstrs);

  auto BindU32Array = [&](std::string_view Raw, uint64_t Count,
                          const uint32_t *&Arr, uint32_t &CountOut,
                          std::vector<uint32_t> &Owned) {
    if (CanAlias(Raw, alignof(uint32_t))) {
      Arr = reinterpret_cast<const uint32_t *>(Raw.data());
      Aliased = true;
    } else {
      Owned.resize(Count);
      for (uint64_t I = 0; I != Count; ++I) {
        const unsigned char *B = reinterpret_cast<const unsigned char *>(
            Raw.data() + I * sizeof(uint32_t));
        Owned[I] = static_cast<uint32_t>(B[0]) |
                   (static_cast<uint32_t>(B[1]) << 8) |
                   (static_cast<uint32_t>(B[2]) << 16) |
                   (static_cast<uint32_t>(B[3]) << 24);
      }
      Arr = Owned.data();
    }
    CountOut = static_cast<uint32_t>(Count);
  };
  BindU32Array(RawChildren, NumChildren, P->ChildArr, P->ChildCount,
               P->OwnedChildren);
  BindU32Array(RawAlts, NumTableAlts, P->TableAltArr, P->TableAltCount,
               P->OwnedTableAlts);
  // At least one array aliases the external buffer; keep it alive for
  // the program's lifetime.
  if (Aliased)
    P->Backing = Backing;

  // Pools.
  auto ReadCount = [&](std::string_view What, uint64_t &N) {
    return C.readVarIntBelow(C.remaining() + 1, What, N);
  };
  uint64_t N;
  if (!ReadCount("type-def pool size", N))
    return nullptr;
  P->TypeDefs.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string_view Name;
    if (!readString(C, Name))
      return nullptr;
    auto [It, Inserted] = TypeDefCache.try_emplace(Name, nullptr);
    if (Inserted)
      It->second = Ctx.resolveTypeDef(Name);
    if (!It->second) {
      C.error("unknown type definition '" + std::string(Name) +
              "' in program pool");
      return nullptr;
    }
    P->TypeDefs.push_back(It->second);
  }
  if (!ReadCount("attr-def pool size", N))
    return nullptr;
  P->AttrDefs.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string_view Name;
    if (!readString(C, Name))
      return nullptr;
    auto [It, Inserted] = AttrDefCache.try_emplace(Name, nullptr);
    if (Inserted)
      It->second = Ctx.resolveAttrDef(Name);
    if (!It->second) {
      C.error("unknown attribute definition '" + std::string(Name) +
              "' in program pool");
      return nullptr;
    }
    P->AttrDefs.push_back(It->second);
  }
  if (!ReadCount("int pool size", N))
    return nullptr;
  P->Ints.resize(N);
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Width;
    uint8_t Sign;
    if (!C.readVarIntBelow(0x10000, "integer width", Width) ||
        !C.readByte(Sign))
      return nullptr;
    if (Sign > static_cast<uint8_t>(Signedness::Unsigned)) {
      C.error("invalid signedness " + std::to_string(Sign));
      return nullptr;
    }
    P->Ints[I].Width = static_cast<uint16_t>(Width);
    P->Ints[I].Sign = static_cast<Signedness>(Sign);
    if (!C.readSignedVarInt(P->Ints[I].Value))
      return nullptr;
  }
  if (!ReadCount("float pool size", N))
    return nullptr;
  P->Floats.resize(N);
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Width;
    if (!C.readVarIntBelow(0x10000, "float width", Width))
      return nullptr;
    P->Floats[I].Width = static_cast<uint16_t>(Width);
    if (!C.readDouble(P->Floats[I].Value))
      return nullptr;
  }
  if (!ReadCount("string pool size", N))
    return nullptr;
  P->Strings.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string_view S;
    if (!readString(C, S))
      return nullptr;
    P->Strings.emplace_back(S);
  }
  if (!ReadCount("enum-def pool size", N))
    return nullptr;
  P->EnumDefs.reserve(N);
  auto ResolveEnum = [&](std::string_view Name) -> EnumDef * {
    auto [It, Inserted] = EnumDefCache.try_emplace(Name, nullptr);
    if (Inserted)
      It->second = Ctx.resolveEnumDef(Name);
    return It->second;
  };
  for (uint64_t I = 0; I != N; ++I) {
    std::string_view Name;
    if (!readString(C, Name))
      return nullptr;
    EnumDef *Def = ResolveEnum(Name);
    if (!Def) {
      C.error("unknown enum '" + std::string(Name) + "' in program pool");
      return nullptr;
    }
    P->EnumDefs.push_back(Def);
  }
  if (!ReadCount("enum-value pool size", N))
    return nullptr;
  P->EnumVals.resize(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string_view Name;
    uint64_t Index;
    if (!readString(C, Name))
      return nullptr;
    EnumDef *Def = ResolveEnum(Name);
    if (!Def) {
      C.error("unknown enum '" + std::string(Name) + "' in program pool");
      return nullptr;
    }
    if (!C.readVarIntBelow(Def->getCases().size(), "enum case index",
                           Index))
      return nullptr;
    P->EnumVals[I].Def = Def;
    P->EnumVals[I].Index = static_cast<unsigned>(Index);
  }
  if (!ReadCount("C++ predicate pool size", N))
    return nullptr;
  P->CppPreds.reserve(N);
  P->CppSrcs.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string_view Src;
    if (!readString(C, Src))
      return nullptr;
    auto [It, Inserted] = CppPredCache.try_emplace(Src);
    if (Inserted) {
      auto Expr = CppExpr::parse(Src, Diags);
      if (!Expr) {
        CppPredCache.erase(It);
        C.error("failed to recompile IRDL-C++ constraint '" +
                std::string(Src) + "'");
        return nullptr;
      }
      It->second = [Expr](const ParamValue &V) {
        CppExpr::EvalContext EC;
        EC.Self = cppEvalFromParam(V);
        auto B = Expr->evaluateBool(EC);
        return B && *B;
      };
    }
    P->CppPreds.push_back(It->second);
    P->CppSrcs.emplace_back(Src);
  }
  if (!ReadCount("native hook pool size", N))
    return nullptr;
  P->NativeFns.reserve(N);
  P->NativeNames.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    std::string_view Name;
    if (!readString(C, Name))
      return nullptr;
    auto [CacheIt, Inserted] = NativeFnCache.try_emplace(Name);
    if (Inserted) {
      auto It = Opts.NativeConstraints.find(std::string(Name));
      if (It == Opts.NativeConstraints.end()) {
        NativeFnCache.erase(CacheIt);
        C.error("no native constraint registered under '" +
                std::string(Name) + "'");
        return nullptr;
      }
      CacheIt->second = It->second;
    }
    P->NativeFns.push_back(CacheIt->second);
    P->NativeNames.emplace_back(Name);
  }

  // Dispatch tables: rebuilt per context from pool indices — the map
  // keys are this context's uniqued definition pointers.
  if (!ReadCount("dispatch table count", N))
    return nullptr;
  P->Tables.resize(N);
  for (uint64_t T = 0; T != N; ++T) {
    uint64_t NumEntries;
    if (!ReadCount("dispatch table entry count", NumEntries))
      return nullptr;
    for (uint64_t E = 0; E != NumEntries; ++E) {
      uint8_t Kind;
      uint64_t PoolIdx, Begin, Count;
      if (!C.readByte(Kind))
        return nullptr;
      const void *Key = nullptr;
      if (Kind == static_cast<uint8_t>(TableKeyKind::Type)) {
        if (!C.readVarIntBelow(P->TypeDefs.size(),
                               "dispatch key type-pool index", PoolIdx))
          return nullptr;
        Key = P->TypeDefs[PoolIdx];
      } else if (Kind == static_cast<uint8_t>(TableKeyKind::Attr)) {
        if (!C.readVarIntBelow(P->AttrDefs.size(),
                               "dispatch key attr-pool index", PoolIdx))
          return nullptr;
        Key = P->AttrDefs[PoolIdx];
      } else {
        C.error("invalid dispatch key kind " + std::to_string(Kind));
        return nullptr;
      }
      if (!C.readVarIntBelow(P->TableAltCount + 1, "dispatch slice begin",
                             Begin) ||
          !C.readVarIntBelow(P->TableAltCount + 1, "dispatch slice count",
                             Count))
        return nullptr;
      if (Begin + Count > P->TableAltCount) {
        C.error("dispatch slice [" + std::to_string(Begin) + ", +" +
                std::to_string(Count) + ") exceeds table-alt array of " +
                std::to_string(P->TableAltCount));
        return nullptr;
      }
      if (!P->Tables[T]
               .Map
               .emplace(Key, std::make_pair(static_cast<uint32_t>(Begin),
                                            static_cast<uint32_t>(Count)))
               .second) {
        C.error("duplicate dispatch key in table " + std::to_string(T));
        return nullptr;
      }
    }
  }

  if (WithVarPrograms) {
    uint64_t NumVarProgs;
    if (!ReadCount("variable program count", NumVarProgs))
      return nullptr;
    P->VarPrograms.resize(NumVarProgs);
    for (uint64_t I = 0; I != NumVarProgs; ++I) {
      ConstraintProgramPtr VP;
      // Variable programs are compiled without nested variable programs
      // (Var references inside them fall back to the tree), matching
      // ConstraintCompiler::compileVarPrograms.
      if (failed(readOptional(C, NumVars, /*WithVarPrograms=*/false, {},
                              VP)))
        return nullptr;
      P->VarPrograms[I] = std::move(VP);
    }
  }

  if (!validate(C, *P, NumVars))
    return nullptr;
  return P;
}

/// Structural validation of a decoded program: every index in bounds and
/// every child/alternative edge strictly forward (the compiler emits
/// pre-order programs, so this holds for all well-formed buffers and
/// guarantees exec() terminates on anything we accept).
bool ProgramReader::validate(BytecodeCursor &C, const ConstraintProgram &P,
                             uint64_t NumVars) {
  auto Reject = [&](uint32_t Pc, const std::string &Why) {
    C.error("malformed program instruction " + std::to_string(Pc) + ": " +
            Why);
    return false;
  };
  for (uint32_t Pc = 0; Pc != P.InstrCount; ++Pc) {
    const CInstr &I = P.InstrArr[Pc];
    if (static_cast<uint8_t>(I.Op) > static_cast<uint8_t>(COpcode::Native))
      return Reject(Pc, "unknown opcode " +
                            std::to_string(static_cast<uint8_t>(I.Op)));
    if (I.Flags & ~KnownFlags)
      return Reject(Pc, "unknown flag bits");
    if (static_cast<uint64_t>(I.ChildrenBegin) + I.NumChildren >
        P.ChildCount)
      return Reject(Pc, "child slice out of bounds");
    for (uint16_t Ch = 0; Ch != I.NumChildren; ++Ch) {
      uint32_t Child = P.ChildArr[I.ChildrenBegin + Ch];
      if (Child <= Pc || Child >= P.InstrCount)
        return Reject(Pc, "child edge to instruction " +
                              std::to_string(Child) + " is not forward");
    }
    auto CheckPool = [&](size_t PoolSize, std::string_view PoolName) {
      if (I.A < PoolSize)
        return true;
      return Reject(Pc, "index " + std::to_string(I.A) + " exceeds " +
                            std::string(PoolName) + " pool");
    };
    switch (I.Op) {
    case COpcode::TypeParams:
      if (!CheckPool(P.TypeDefs.size(), "type-def"))
        return false;
      break;
    case COpcode::AttrParams:
      if (!CheckPool(P.AttrDefs.size(), "attr-def"))
        return false;
      break;
    case COpcode::IntKind:
    case COpcode::IntEq:
      if (!CheckPool(P.Ints.size(), "int"))
        return false;
      break;
    case COpcode::FloatKind:
    case COpcode::FloatEq:
      if (!CheckPool(P.Floats.size(), "float"))
        return false;
      break;
    case COpcode::StringEq:
    case COpcode::OpaqueKind:
      if (!CheckPool(P.Strings.size(), "string"))
        return false;
      break;
    case COpcode::EnumKind:
      if (!CheckPool(P.EnumDefs.size(), "enum-def"))
        return false;
      break;
    case COpcode::EnumEq:
      if (!CheckPool(P.EnumVals.size(), "enum-value"))
        return false;
      break;
    case COpcode::Var:
      if (I.A >= NumVars)
        return Reject(Pc, "variable index " + std::to_string(I.A) +
                              " exceeds declared variable count " +
                              std::to_string(NumVars));
      break;
    case COpcode::Cpp:
      if (!CheckPool(P.CppPreds.size(), "C++ predicate"))
        return false;
      if (I.NumChildren != 1)
        return Reject(Pc, "C++ constraint needs exactly one child");
      break;
    case COpcode::Native:
      if (!CheckPool(P.NativeFns.size(), "native hook"))
        return false;
      if (I.NumChildren != 1)
        return Reject(Pc, "native constraint needs exactly one child");
      break;
    case COpcode::Not:
      if (I.NumChildren != 1)
        return Reject(Pc, "negation needs exactly one child");
      break;
    case COpcode::ArrayOf:
      if (I.NumChildren > 1)
        return Reject(Pc, "array-of takes at most one child");
      break;
    case COpcode::AnyOfTable: {
      if (!CheckPool(P.Tables.size(), "dispatch table"))
        return false;
      for (const auto &[Key, Slice] : P.Tables[I.A].Map)
        for (uint32_t A = 0; A != Slice.second; ++A) {
          uint32_t Alt = P.TableAltArr[Slice.first + A];
          if (Alt <= Pc || Alt >= P.InstrCount)
            return Reject(Pc, "dispatch edge to instruction " +
                                  std::to_string(Alt) + " is not forward");
        }
      break;
    }
    default:
      break;
    }
  }
  return true;
}
