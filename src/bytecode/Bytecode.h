//===- Bytecode.h - Binary serialization of IR and IRDL specs ----*- C++ -*-===//
///
/// \file
/// The `.irbc` binary bytecode format: a sectioned, versioned container
/// holding IRDL dialect specifications and/or one IR module, designed so
/// that loading pays neither lexing nor parsing nor semantic analysis.
/// Dialect specs deserialize straight into the Spec.h object model and are
/// installed through the regular registration pass (reusing pass 3 of the
/// IRDL loader); IR reconstructs through OpBuilder against the context's
/// uniquer, with types and attributes decoded once into interned pools and
/// referenced by varint index everywhere else.
///
/// See docs/serialization.md for the byte-level layout and the versioning
/// policy.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_BYTECODE_BYTECODE_H
#define IRDL_BYTECODE_BYTECODE_H

#include "ir/IRParser.h"
#include "irdl/IRDL.h"

#include <string>
#include <string_view>

namespace irdl {

/// Returns true if \p Buffer starts with the `.irbc` magic — the sniff
/// used by drivers to dispatch between the textual parser and the
/// bytecode reader regardless of file extension.
bool isBytecodeBuffer(std::string_view Buffer);

/// Returns true if \p Buffer is a bytecode buffer whose top-level section
/// walk encounters a Specs section (even a truncated one). A cheap
/// pre-scan — no section payload is decoded — used by the verification
/// server to reject spec-bearing VERIFY payloads before BytecodeReader
/// would register their dialects into a context shared across requests.
/// Buffers the scan cannot walk (bad magic/version, truncated section
/// header) return false: the full reader fails on them at the same point,
/// before any spec registration, and produces the actual diagnostic.
bool bytecodeBufferHasSpecs(std::string_view Buffer);

//===----------------------------------------------------------------------===//
// BytecodeWriter
//===----------------------------------------------------------------------===//

/// Serializes IRDL dialect specs and (optionally) one IR module into a
/// `.irbc` buffer. Usage:
///
///   BytecodeWriter Writer;
///   Writer.addDialectSpec(*Spec);   // zero or more
///   Writer.setModule(M.get());      // optional
///   std::string Bytes = Writer.write();
///
/// The writer is single-shot: write() renders the sections collected so
/// far and may be called once.
class BytecodeWriter {
public:
  BytecodeWriter();
  ~BytecodeWriter();
  BytecodeWriter(const BytecodeWriter &) = delete;
  BytecodeWriter &operator=(const BytecodeWriter &) = delete;

  /// Schedules \p Spec for the Specs section. Specs are emitted in the
  /// order added; a spec whose constraints reference another dialect's
  /// definitions does not require that dialect to be in the same buffer
  /// (the reader resolves against the destination context).
  void addDialectSpec(const DialectSpec &Spec);

  /// Convenience: schedules every dialect of \p Module.
  void addModuleSpecs(const IRDLModule &Module);

  /// Schedules \p Root (typically a builtin.module) for the IR section.
  /// The operation is not modified; it must outlive write().
  void setModule(Operation *Root);

  /// Records the 64-bit content hash of the source this buffer is being
  /// generated from. Nonzero hashes are emitted into the Meta section,
  /// which the on-disk spec cache checks to invalidate stale entries
  /// (docs/serialization.md, "Spec cache").
  void setSourceHash(uint64_t Hash);

  /// Renders the full buffer: magic, version, and all sections.
  std::string write();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

//===----------------------------------------------------------------------===//
// BytecodeReader
//===----------------------------------------------------------------------===//

/// The result of reading a `.irbc` buffer: the dialects registered from
/// its Specs section (may be empty) and the IR module from its IR section
/// (may be null for spec-only buffers).
struct BytecodeReadResult {
  std::unique_ptr<IRDLModule> Specs;
  OwningOpRef Module;
  /// The source content hash from the Meta section, or 0 when the buffer
  /// carries none.
  uint64_t SourceHash = 0;
};

/// Deserializes `.irbc` buffers into an IRContext. Dialect specs are
/// registered into the context exactly as a textual IRDL load would
/// (verifiers compiled, formats installed, terminators flagged); native
/// constraint references resolve through the same IRDLLoadOptions hooks.
/// All failures — version mismatch, truncation, corruption, unresolvable
/// names — are reported through the DiagnosticEngine as structured,
/// caret-free diagnostics carrying the byte offset.
class BytecodeReader {
public:
  BytecodeReader(IRContext &Ctx, DiagnosticEngine &Diags,
                 const IRDLLoadOptions &Opts = {});
  ~BytecodeReader();
  BytecodeReader(const BytecodeReader &) = delete;
  BytecodeReader &operator=(const BytecodeReader &) = delete;

  /// Reads \p Buffer. On failure returns failure() with diagnostics
  /// emitted; the context may then contain partially registered dialect
  /// skeletons (same contract as a failed textual loadIRDL).
  ///
  /// \p BufferName, when nonempty, labels diagnostics that concern the
  /// buffer as a whole (version mismatch, bad magic) so a failing
  /// `--dialect foo.irbc` names the offending file.
  ///
  /// \p Backing, when non-null, asserts that \p Buffer stays valid for
  /// as long as \p Backing is referenced — typically the MappedFile the
  /// view points into. The reader then backs compiled-program storage
  /// directly by the buffer (zero-copy) instead of copying; programs
  /// keep a reference so the mapping outlives them.
  LogicalResult read(std::string_view Buffer, BytecodeReadResult &Result,
                     std::string BufferName = {},
                     std::shared_ptr<const void> Backing = nullptr);

private:
  struct Impl;
  IRContext &Ctx;
  DiagnosticEngine &Diags;
  IRDLLoadOptions Opts;
};

//===----------------------------------------------------------------------===//
// Convenience entry points
//===----------------------------------------------------------------------===//

/// Serializes \p Root plus the dialects of \p Specs (when given) and
/// writes the buffer to \p Path. Reports I/O failures through \p Diags.
LogicalResult writeBytecodeFile(const std::string &Path, Operation *Root,
                                const IRDLModule *Specs,
                                DiagnosticEngine &Diags);

/// Reads the `.irbc` file at \p Path into \p Ctx.
LogicalResult readBytecodeFile(const std::string &Path, IRContext &Ctx,
                               DiagnosticEngine &Diags,
                               BytecodeReadResult &Result,
                               const IRDLLoadOptions &Opts = {});

/// Like readBytecodeFile, but memory-maps \p Path (support/MappedFile)
/// and reads zero-copy: compiled-program storage aliases the read-only
/// mapping, which stays alive for as long as any loaded program does.
LogicalResult readBytecodeFileMapped(const std::string &Path, IRContext &Ctx,
                                     DiagnosticEngine &Diags,
                                     BytecodeReadResult &Result,
                                     const IRDLLoadOptions &Opts = {});

} // namespace irdl

#endif // IRDL_BYTECODE_BYTECODE_H
