//===- BytecodeWriter.cpp - .irbc emission ------------------------------===//
///
/// Section emission order inside write(): specs first, then the IR walk
/// (which populates the type/attribute pool as a side effect), and the
/// string table last — it is only complete once every other section has
/// interned its strings. The file itself leads with the string table so
/// the reader can decode sections in file order.

#include "bytecode/Bytecode.h"

#include "bytecode/Encoding.h"
#include "bytecode/ProgramSerializer.h"
#include "ir/Block.h"
#include "ir/Region.h"
#include "support/Statistic.h"
#include "support/Timing.h"

#include <unordered_map>

using namespace irdl;
using namespace irdl::bytecode;

IRDL_STATISTIC(Bytecode, NumOpsWritten, "operations serialized to bytecode");
IRDL_STATISTIC(Bytecode, NumPoolEntriesWritten,
               "type/attr pool entries serialized");
IRDL_STATISTIC(Bytecode, NumSpecsWritten, "dialect specs serialized");
IRDL_STATISTIC(Bytecode, NumBytesWritten, "bytecode bytes produced");

namespace {

/// Wire tags for ParamValue kinds (decoupled from the in-memory enum).
enum class ParamTag : uint8_t {
  Empty = 0,
  Type = 1,
  Attr = 2,
  Int = 3,
  Float = 4,
  String = 5,
  Enum = 6,
  Array = 7,
  Opaque = 8,
};

/// Wire tags for Constraint kinds.
enum class ConstraintTag : uint8_t {
  AnyType = 0,
  AnyAttr = 1,
  AnyParam = 2,
  TypeParams = 3,
  AttrParams = 4,
  IntKind = 5,
  IntEq = 6,
  FloatKind = 7,
  FloatEq = 8,
  StringKind = 9,
  StringEq = 10,
  EnumKind = 11,
  EnumEq = 12,
  ArrayOf = 13,
  ArrayExact = 14,
  OpaqueKind = 15,
  AnyOf = 16,
  And = 17,
  Not = 18,
  Var = 19,
  Cpp = 20,
  Native = 21,
  Named = 22,
};

} // namespace

struct BytecodeWriter::Impl {
  std::vector<const DialectSpec *> Specs;
  Operation *Root = nullptr;
  uint64_t SourceHash = 0;
  bool Written = false;

  //===------------------------------------------------------------------===//
  // String table
  //===------------------------------------------------------------------===//

  std::unordered_map<std::string, uint64_t> StringIds;
  std::vector<const std::string *> Strings;

  uint64_t internString(std::string_view S) {
    auto [It, Inserted] = StringIds.try_emplace(std::string(S), 0);
    if (Inserted) {
      It->second = Strings.size();
      Strings.push_back(&It->first);
    }
    return It->second;
  }

  void writeString(BytecodeOutput &Out, std::string_view S) {
    Out.writeVarInt(internString(S));
  }

  //===------------------------------------------------------------------===//
  // Type/attribute pool
  //===------------------------------------------------------------------===//

  // Keyed by the uniqued storage pointer; entries are appended to PoolOut
  // children-first, so every back-reference has a smaller index.
  std::unordered_map<const void *, uint64_t> PoolIds;
  BytecodeOutput PoolOut;
  uint64_t NumPoolEntries = 0;

  uint64_t internType(Type T) {
    auto It = PoolIds.find(T.getImpl());
    if (It != PoolIds.end())
      return It->second;
    BytecodeOutput Entry;
    Entry.writeByte(0); // type tag
    writeString(Entry, T.getDef()->getFullName());
    encodeParams(Entry, T.getParams());
    uint64_t Id = NumPoolEntries++;
    PoolIds.emplace(T.getImpl(), Id);
    PoolOut.writeBytes(Entry.str());
    ++NumPoolEntriesWritten;
    return Id;
  }

  uint64_t internAttr(Attribute A) {
    auto It = PoolIds.find(A.getImpl());
    if (It != PoolIds.end())
      return It->second;
    BytecodeOutput Entry;
    Entry.writeByte(1); // attr tag
    writeString(Entry, A.getDef()->getFullName());
    encodeParams(Entry, A.getParams());
    uint64_t Id = NumPoolEntries++;
    PoolIds.emplace(A.getImpl(), Id);
    PoolOut.writeBytes(Entry.str());
    ++NumPoolEntriesWritten;
    return Id;
  }

  void encodeParams(BytecodeOutput &Out,
                    const std::vector<ParamValue> &Params) {
    Out.writeVarInt(Params.size());
    for (const ParamValue &P : Params)
      encodeParamValue(Out, P);
  }

  void encodeParamValue(BytecodeOutput &Out, const ParamValue &P) {
    switch (P.getKind()) {
    case ParamValue::Kind::Empty:
      Out.writeByte(static_cast<uint8_t>(ParamTag::Empty));
      break;
    case ParamValue::Kind::Type:
      Out.writeByte(static_cast<uint8_t>(ParamTag::Type));
      Out.writeVarInt(internType(P.getType()));
      break;
    case ParamValue::Kind::Attr:
      Out.writeByte(static_cast<uint8_t>(ParamTag::Attr));
      Out.writeVarInt(internAttr(P.getAttr()));
      break;
    case ParamValue::Kind::Int:
      Out.writeByte(static_cast<uint8_t>(ParamTag::Int));
      encodeIntVal(Out, P.getInt());
      break;
    case ParamValue::Kind::Float:
      Out.writeByte(static_cast<uint8_t>(ParamTag::Float));
      encodeFloatVal(Out, P.getFloat());
      break;
    case ParamValue::Kind::String:
      Out.writeByte(static_cast<uint8_t>(ParamTag::String));
      writeString(Out, P.getString());
      break;
    case ParamValue::Kind::Enum:
      Out.writeByte(static_cast<uint8_t>(ParamTag::Enum));
      writeString(Out, P.getEnum().Def->getFullName());
      Out.writeVarInt(P.getEnum().Index);
      break;
    case ParamValue::Kind::Array: {
      Out.writeByte(static_cast<uint8_t>(ParamTag::Array));
      const auto &Elems = P.getArray();
      Out.writeVarInt(Elems.size());
      for (const ParamValue &E : Elems)
        encodeParamValue(Out, E);
      break;
    }
    case ParamValue::Kind::Opaque:
      Out.writeByte(static_cast<uint8_t>(ParamTag::Opaque));
      writeString(Out, P.getOpaque().ParamTypeName);
      writeString(Out, P.getOpaque().Payload);
      break;
    }
  }

  void encodeIntVal(BytecodeOutput &Out, const IntVal &V) {
    Out.writeVarInt(V.Width);
    Out.writeByte(static_cast<uint8_t>(V.Sign));
    Out.writeSignedVarInt(V.Value);
  }

  void encodeFloatVal(BytecodeOutput &Out, const FloatVal &V) {
    Out.writeVarInt(V.Width);
    Out.writeDouble(V.Value);
  }

  //===------------------------------------------------------------------===//
  // IR section
  //===------------------------------------------------------------------===//

  std::unordered_map<const detail::ValueImpl *, uint64_t> ValueIds;
  std::unordered_map<const Block *, uint64_t> BlockIds; // index in region
  uint64_t NumValues = 0;

  /// Pre-pass mirroring the reader's creation order: results first, then
  /// per region all block arguments, then nested ops. Operand references
  /// may then point forward (graph regions, CFG back-edges) and still
  /// have an assigned id.
  void numberOp(Operation *Op) {
    for (unsigned I = 0, N = Op->getNumResults(); I != N; ++I)
      ValueIds.emplace(Op->getResult(I).getImpl(), NumValues++);
    for (Region &R : Op->getRegions()) {
      uint64_t BlockIndex = 0;
      for (Block &B : R) {
        BlockIds.emplace(&B, BlockIndex++);
        for (unsigned I = 0, N = B.getNumArguments(); I != N; ++I)
          ValueIds.emplace(B.getArgument(I).getImpl(), NumValues++);
      }
      for (Block &B : R)
        for (Operation &Nested : B)
          numberOp(&Nested);
    }
  }

  void writeOp(BytecodeOutput &Out, Operation *Op) {
    ++NumOpsWritten;
    writeString(Out, Op->getName().str());
    Out.writeVarInt(Op->getNumResults());
    for (unsigned I = 0, N = Op->getNumResults(); I != N; ++I)
      Out.writeVarInt(internType(Op->getResult(I).getType()));
    Out.writeVarInt(Op->getNumOperands());
    for (unsigned I = 0, N = Op->getNumOperands(); I != N; ++I)
      Out.writeVarInt(ValueIds.at(Op->getOperand(I).getImpl()));
    const NamedAttrList &Attrs = Op->getAttrs();
    Out.writeVarInt(Attrs.size());
    for (const NamedAttribute &NA : Attrs) {
      writeString(Out, NA.Name);
      Out.writeVarInt(internAttr(NA.Attr));
    }
    Out.writeVarInt(Op->getNumSuccessors());
    for (Block *Succ : Op->getSuccessors())
      Out.writeVarInt(BlockIds.at(Succ));
    Out.writeVarInt(Op->getNumRegions());
    for (Region &R : Op->getRegions())
      writeRegion(Out, R);
  }

  void writeRegion(BytecodeOutput &Out, Region &R) {
    Out.writeVarInt(R.getNumBlocks());
    for (Block &B : R) {
      Out.writeVarInt(B.getNumArguments());
      for (unsigned I = 0, N = B.getNumArguments(); I != N; ++I)
        Out.writeVarInt(internType(B.getArgument(I).getType()));
    }
    for (Block &B : R) {
      Out.writeVarInt(B.getNumOps());
      for (Operation &Op : B)
        writeOp(Out, &Op);
    }
  }

  //===------------------------------------------------------------------===//
  // Specs section
  //===------------------------------------------------------------------===//

  void encodeConstraint(BytecodeOutput &Out, const Constraint &C) {
    auto Tag = [&](ConstraintTag T) {
      Out.writeByte(static_cast<uint8_t>(T));
    };
    auto Children = [&]() {
      Out.writeVarInt(C.getChildren().size());
      for (const ConstraintPtr &Child : C.getChildren())
        encodeConstraint(Out, *Child);
    };
    switch (C.getKind()) {
    case Constraint::Kind::AnyType:
      return Tag(ConstraintTag::AnyType);
    case Constraint::Kind::AnyAttr:
      return Tag(ConstraintTag::AnyAttr);
    case Constraint::Kind::AnyParam:
      return Tag(ConstraintTag::AnyParam);
    case Constraint::Kind::TypeParams:
      Tag(ConstraintTag::TypeParams);
      writeString(Out, C.getTypeDef()->getFullName());
      Out.writeByte(C.isBaseOnly() ? 1 : 0);
      return Children();
    case Constraint::Kind::AttrParams:
      Tag(ConstraintTag::AttrParams);
      writeString(Out, C.getAttrDef()->getFullName());
      Out.writeByte(C.isBaseOnly() ? 1 : 0);
      return Children();
    case Constraint::Kind::IntKind:
      Tag(ConstraintTag::IntKind);
      Out.writeVarInt(C.getIntWidth());
      return Out.writeByte(static_cast<uint8_t>(C.getIntSign()));
    case Constraint::Kind::IntEq:
      Tag(ConstraintTag::IntEq);
      return encodeIntVal(Out, C.getIntVal());
    case Constraint::Kind::FloatKind:
      Tag(ConstraintTag::FloatKind);
      return Out.writeVarInt(C.getFloatVal().Width);
    case Constraint::Kind::FloatEq:
      Tag(ConstraintTag::FloatEq);
      return encodeFloatVal(Out, C.getFloatVal());
    case Constraint::Kind::StringKind:
      return Tag(ConstraintTag::StringKind);
    case Constraint::Kind::StringEq:
      Tag(ConstraintTag::StringEq);
      return writeString(Out, C.getString());
    case Constraint::Kind::EnumKind:
      Tag(ConstraintTag::EnumKind);
      return writeString(Out, C.getEnumDef()->getFullName());
    case Constraint::Kind::EnumEq:
      Tag(ConstraintTag::EnumEq);
      writeString(Out, C.getEnumVal().Def->getFullName());
      return Out.writeVarInt(C.getEnumVal().Index);
    case Constraint::Kind::ArrayOf:
      Tag(ConstraintTag::ArrayOf);
      return Children();
    case Constraint::Kind::ArrayExact:
      Tag(ConstraintTag::ArrayExact);
      return Children();
    case Constraint::Kind::OpaqueKind:
      Tag(ConstraintTag::OpaqueKind);
      return writeString(Out, C.getString());
    case Constraint::Kind::AnyOf:
      Tag(ConstraintTag::AnyOf);
      return Children();
    case Constraint::Kind::And:
      Tag(ConstraintTag::And);
      return Children();
    case Constraint::Kind::Not:
      Tag(ConstraintTag::Not);
      return Children();
    case Constraint::Kind::Var:
      Tag(ConstraintTag::Var);
      Out.writeVarInt(C.getVarIndex());
      return writeString(Out, C.getString());
    case Constraint::Kind::Cpp:
      // The interpreted predicate recompiles from its source on read.
      Tag(ConstraintTag::Cpp);
      writeString(Out, C.getString());
      return Children();
    case Constraint::Kind::Native:
      // Native callbacks re-resolve by name through IRDLLoadOptions.
      Tag(ConstraintTag::Native);
      writeString(Out, C.getString());
      return Children();
    case Constraint::Kind::Named:
      Tag(ConstraintTag::Named);
      writeString(Out, C.getString());
      return Children();
    }
  }

  void encodeOperandSpecs(BytecodeOutput &Out,
                          const std::vector<OperandSpec> &Specs) {
    Out.writeVarInt(Specs.size());
    for (const OperandSpec &S : Specs) {
      writeString(Out, S.Name);
      Out.writeByte(static_cast<uint8_t>(S.VK));
      encodeConstraint(Out, *S.Constr);
    }
  }

  void encodeParamSpecs(BytecodeOutput &Out,
                        const std::vector<ParamSpec> &Specs) {
    Out.writeVarInt(Specs.size());
    for (const ParamSpec &S : Specs) {
      writeString(Out, S.Name);
      encodeConstraint(Out, *S.Constr);
    }
  }

  /// The name/shape tables pass 1 of the reader needs to create skeleton
  /// definitions before any constraint in the buffer is decoded.
  void encodeSpecSkeleton(BytecodeOutput &Out, const DialectSpec &Spec) {
    writeString(Out, Spec.Name);
    Out.writeVarInt(Spec.Enums.size());
    for (const EnumSpec &E : Spec.Enums) {
      writeString(Out, E.Name);
      Out.writeVarInt(E.Cases.size());
      for (const std::string &Case : E.Cases)
        writeString(Out, Case);
    }
    auto TypeOrAttrSkeleton = [&](const std::vector<TypeOrAttrSpec> &TAs) {
      Out.writeVarInt(TAs.size());
      for (const TypeOrAttrSpec &TA : TAs) {
        writeString(Out, TA.Name);
        writeString(Out, TA.Summary);
        Out.writeVarInt(TA.Params.size());
        for (const ParamSpec &P : TA.Params)
          writeString(Out, P.Name);
      }
    };
    TypeOrAttrSkeleton(Spec.Types);
    TypeOrAttrSkeleton(Spec.Attrs);
    Out.writeVarInt(Spec.Ops.size());
    for (const OpSpec &Op : Spec.Ops) {
      writeString(Out, Op.Name);
      writeString(Out, Op.Summary);
    }
  }

  void encodeSpecBody(BytecodeOutput &Out, const DialectSpec &Spec) {
    ++NumSpecsWritten;
    Out.writeVarInt(Spec.ParamTypes.size());
    for (const ParamTypeSpec &P : Spec.ParamTypes) {
      writeString(Out, P.Name);
      writeString(Out, P.Summary);
      writeString(Out, P.CppClassName);
      writeString(Out, P.CppParserSrc);
      writeString(Out, P.CppPrinterSrc);
    }

    Out.writeVarInt(Spec.Constraints.size());
    for (const NamedConstraintSpec &C : Spec.Constraints) {
      writeString(Out, C.Name);
      writeString(Out, C.Summary);
      Out.writeByte(C.HasCpp ? 1 : 0);
      encodeConstraint(Out, *C.Constr);
    }

    Out.writeVarInt(Spec.Aliases.size());
    for (const AliasSpec &A : Spec.Aliases) {
      Out.writeByte(static_cast<uint8_t>(A.Sigil));
      writeString(Out, A.Name);
      Out.writeVarInt(A.Params.size());
      for (const std::string &P : A.Params)
        writeString(Out, P);
      Out.writeByte(A.Body ? 1 : 0);
      if (A.Body)
        encodeConstraint(Out, *A.Body);
    }

    auto TypeOrAttrBody = [&](const std::vector<TypeOrAttrSpec> &TAs) {
      Out.writeVarInt(TAs.size());
      for (const TypeOrAttrSpec &TA : TAs) {
        writeString(Out, TA.Name);
        encodeParamSpecs(Out, TA.Params);
        Out.writeByte(TA.CppConstraintSrc.empty() ? 0 : 1);
        if (!TA.CppConstraintSrc.empty())
          writeString(Out, TA.CppConstraintSrc);
      }
    };
    TypeOrAttrBody(Spec.Types);
    TypeOrAttrBody(Spec.Attrs);

    Out.writeVarInt(Spec.Ops.size());
    for (const OpSpec &Op : Spec.Ops) {
      writeString(Out, Op.Name);
      Out.writeVarInt(Op.VarNames.size());
      for (const std::string &V : Op.VarNames)
        writeString(Out, V);
      for (const ConstraintPtr &C : Op.VarConstraints)
        encodeConstraint(Out, *C);
      encodeOperandSpecs(Out, Op.Operands);
      encodeOperandSpecs(Out, Op.Results);
      encodeParamSpecs(Out, Op.Attributes);
      Out.writeVarInt(Op.Regions.size());
      for (const RegionSpec &R : Op.Regions) {
        writeString(Out, R.Name);
        encodeOperandSpecs(Out, R.Args);
        writeString(Out, R.TerminatorOpName);
      }
      Out.writeByte(Op.Successors ? 1 : 0);
      if (Op.Successors) {
        Out.writeVarInt(Op.Successors->size());
        for (const std::string &S : *Op.Successors)
          writeString(Out, S);
      }
      Out.writeByte(Op.HasFormat ? 1 : 0);
      if (Op.HasFormat)
        writeString(Out, Op.FormatSrc);
      Out.writeByte(Op.CppConstraintSrc.empty() ? 0 : 1);
      if (!Op.CppConstraintSrc.empty())
        writeString(Out, Op.CppConstraintSrc);
    }
  }

  //===------------------------------------------------------------------===//
  // Programs section
  //===------------------------------------------------------------------===//

  /// True when every non-variable constraint slot of \p Spec carries a
  /// compiled program (i.e. the spec went through registration). Specs
  /// built by hand serialize without programs and the reader compiles at
  /// registration, exactly as before v2.
  static bool specHasPrograms(const DialectSpec &Spec) {
    auto ParamsOk = [](const std::vector<ParamSpec> &Params) {
      for (const ParamSpec &P : Params)
        if (!P.Prog)
          return false;
      return true;
    };
    auto OperandsOk = [](const std::vector<OperandSpec> &Specs) {
      for (const OperandSpec &S : Specs)
        if (!S.Prog)
          return false;
      return true;
    };
    for (const TypeOrAttrSpec &TA : Spec.Types)
      if (!ParamsOk(TA.Params))
        return false;
    for (const TypeOrAttrSpec &TA : Spec.Attrs)
      if (!ParamsOk(TA.Params))
        return false;
    for (const OpSpec &Op : Spec.Ops) {
      if (!OperandsOk(Op.Operands) || !OperandsOk(Op.Results) ||
          !ParamsOk(Op.Attributes))
        return false;
      for (const RegionSpec &R : Op.Regions)
        if (!OperandsOk(R.Args))
          return false;
    }
    return true;
  }

  /// Emits the compiled programs of \p Spec in the canonical slot order
  /// (the exact order registerDialectSpec compiles them): type params,
  /// attr params, then per op the variable programs followed by operand,
  /// result, attribute, and region-argument programs. Counts are implied
  /// by the Specs section, which the reader decodes first.
  void encodeSpecPrograms(BytecodeOutput &Body, const DialectSpec &Spec) {
    if (!specHasPrograms(Spec)) {
      Body.writeByte(0);
      return;
    }
    Body.writeByte(1);
    ProgramWriter PW(Body, [this](BytecodeOutput &Out, std::string_view S) {
      writeString(Out, S);
    });
    auto Params = [&](const std::vector<ParamSpec> &Ps) {
      for (const ParamSpec &P : Ps)
        PW.writeOptional(P.Prog.get(), /*WithVarPrograms=*/false);
    };
    auto Operands = [&](const std::vector<OperandSpec> &Ss) {
      for (const OperandSpec &S : Ss)
        PW.writeOptional(S.Prog.get(), /*WithVarPrograms=*/false);
    };
    for (const TypeOrAttrSpec &TA : Spec.Types)
      Params(TA.Params);
    for (const TypeOrAttrSpec &TA : Spec.Attrs)
      Params(TA.Params);
    for (const OpSpec &Op : Spec.Ops) {
      // The op's variable programs are written once; the reader installs
      // them into every operand/result/attr/region-arg program below,
      // mirroring how registration shares them.
      Body.writeVarInt(Op.VarPrograms.size());
      for (const auto &VP : Op.VarPrograms)
        PW.writeOptional(VP.get(), /*WithVarPrograms=*/false);
      Operands(Op.Operands);
      Operands(Op.Results);
      Params(Op.Attributes);
      for (const RegionSpec &R : Op.Regions)
        Operands(R.Args);
    }
  }

  //===------------------------------------------------------------------===//
  // Assembly
  //===------------------------------------------------------------------===//

  /// v2 section header: id byte + fixed 8-byte little-endian payload
  /// length. Fixed lengths keep every payload's absolute offset known
  /// while assembling, which is what lets the Programs payload pad its
  /// body to an 8-aligned file offset.
  static void writeSection(BytecodeOutput &File, SectionId Id,
                           const std::string &Payload) {
    File.writeByte(static_cast<uint8_t>(Id));
    File.writeFixed64(Payload.size());
    File.writeBytes(Payload);
  }

  std::string render() {
    IRDL_TIME_SCOPE("bytecode-write");

    BytecodeOutput SpecsOut;
    BytecodeOutput ProgramsBody;
    if (!Specs.empty()) {
      {
        IRDL_TIME_SCOPE("write-specs");
        SpecsOut.writeVarInt(Specs.size());
        for (const DialectSpec *Spec : Specs) {
          BytecodeOutput Skeleton, Body;
          encodeSpecSkeleton(Skeleton, *Spec);
          encodeSpecBody(Body, *Spec);
          SpecsOut.writeVarInt(Skeleton.size());
          SpecsOut.writeBytes(Skeleton.str());
          SpecsOut.writeVarInt(Body.size());
          SpecsOut.writeBytes(Body.str());
        }
      }
      IRDL_TIME_SCOPE("write-programs");
      ProgramsBody.writeVarInt(Specs.size());
      for (const DialectSpec *Spec : Specs)
        encodeSpecPrograms(ProgramsBody, *Spec);
    }

    BytecodeOutput IROut;
    if (Root) {
      IRDL_TIME_SCOPE("write-ir");
      numberOp(Root);
      writeOp(IROut, Root);
    }

    // The string table is complete only now.
    BytecodeOutput StringsOut;
    StringsOut.writeVarInt(Strings.size());
    for (const std::string *S : Strings) {
      StringsOut.writeVarInt(S->size());
      StringsOut.writeBytes(*S);
    }

    BytecodeOutput File;
    File.writeBytes(std::string_view(Magic, sizeof(Magic)));
    File.writeVarInt(FormatVersion);
    writeSection(File, SectionId::Strings, StringsOut.str());
    if (!Specs.empty()) {
      writeSection(File, SectionId::Specs, SpecsOut.str());
      // Programs payload: one pad-count byte plus that many zeros so the
      // body lands on an 8-aligned absolute offset (File.size() + the
      // 9-byte section header + 1 pad-count byte, rounded up).
      size_t BodyOffset = File.size() + 9 + 1;
      uint8_t PadCount = static_cast<uint8_t>(
          (ProgramSectionAlign - BodyOffset % ProgramSectionAlign) %
          ProgramSectionAlign);
      BytecodeOutput ProgramsPayload;
      ProgramsPayload.writeByte(PadCount);
      for (uint8_t I = 0; I != PadCount; ++I)
        ProgramsPayload.writeByte(0);
      ProgramsPayload.writeBytes(ProgramsBody.str());
      writeSection(File, SectionId::Programs, ProgramsPayload.str());
    }
    if (Root) {
      BytecodeOutput PoolSection;
      PoolSection.writeVarInt(NumPoolEntries);
      PoolSection.writeBytes(PoolOut.str());
      writeSection(File, SectionId::TypeAttrPool, PoolSection.str());
      writeSection(File, SectionId::IR, IROut.str());
    }
    if (SourceHash != 0) {
      BytecodeOutput MetaOut;
      MetaOut.writeFixed64(SourceHash);
      writeSection(File, SectionId::Meta, MetaOut.str());
    }
    NumBytesWritten += File.size();
    return File.take();
  }
};

BytecodeWriter::BytecodeWriter() : I(std::make_unique<Impl>()) {}
BytecodeWriter::~BytecodeWriter() = default;

void BytecodeWriter::addDialectSpec(const DialectSpec &Spec) {
  I->Specs.push_back(&Spec);
}

void BytecodeWriter::addModuleSpecs(const IRDLModule &Module) {
  for (const auto &Spec : Module.getDialects())
    I->Specs.push_back(Spec.get());
}

void BytecodeWriter::setModule(Operation *Root) { I->Root = Root; }

void BytecodeWriter::setSourceHash(uint64_t Hash) { I->SourceHash = Hash; }

std::string BytecodeWriter::write() {
  assert(!I->Written && "BytecodeWriter::write() is single-shot");
  I->Written = true;
  return I->render();
}

bool irdl::isBytecodeBuffer(std::string_view Buffer) {
  return Buffer.size() >= sizeof(Magic) &&
         Buffer.compare(0, sizeof(Magic),
                        std::string_view(Magic, sizeof(Magic))) == 0;
}
