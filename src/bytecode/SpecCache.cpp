//===- SpecCache.cpp - Content-hash dialect spec caching -----------------===//

#include "bytecode/SpecCache.h"

#include "bytecode/Encoding.h"
#include "support/File.h"
#include "support/Hashing.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Statistic.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sys/stat.h>
#include <unistd.h>

using namespace irdl;
using namespace irdl::bytecode;

IRDL_STATISTIC(SpecCache, NumSpecCacheHits, "in-process spec cache hits");
IRDL_STATISTIC(SpecCache, NumSpecCacheMisses, "in-process spec cache misses");

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

uint64_t irdl::hashSpecBuffer(std::string_view Buffer) {
  if (!isBytecodeBuffer(Buffer))
    return fnv1a64(Buffer);

  // Canonicalize bytecode: hash the version plus the Strings, Specs, and
  // Programs section payloads (id byte included, so an empty section and
  // a missing one hash differently). Meta, the type/attr pool, and IR do
  // not describe the dialects and are skipped. Buffers the walk cannot
  // parse hash whole — the full reader will reject them anyway.
  DiagnosticEngine Scratch;
  BytecodeCursor C(Buffer.substr(sizeof(Magic)), Scratch, sizeof(Magic));
  uint64_t Version;
  if (!C.readVarInt(Version) || Version != FormatVersion)
    return fnv1a64(Buffer);

  uint64_t H = fnv1a64("irbc-spec-v2");
  while (!C.atEnd()) {
    uint8_t Id;
    if (!C.readByte(Id))
      return fnv1a64(Buffer);
    uint64_t Len;
    if (!C.readFixed64(Len))
      return fnv1a64(Buffer);
    std::string_view Payload;
    if (!C.readBytes(Len, Payload))
      return fnv1a64(Buffer);
    if (Id == static_cast<uint8_t>(SectionId::Strings) ||
        Id == static_cast<uint8_t>(SectionId::Specs) ||
        Id == static_cast<uint8_t>(SectionId::Programs)) {
      char IdByte = static_cast<char>(Id);
      H = fnv1a64(std::string_view(&IdByte, 1), H);
      H = fnv1a64(Payload, H);
    }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// In-process cache
//===----------------------------------------------------------------------===//

SpecLoadCache &SpecLoadCache::instance() {
  static SpecLoadCache Cache;
  return Cache;
}

std::shared_ptr<const CachedSpecs> SpecLoadCache::lookup(uint64_t Hash) {
  std::shared_ptr<const CachedSpecs> Entry;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Hash);
    if (It != Map.end())
      Entry = It->second;
  }
  if (Entry)
    ++NumSpecCacheHits;
  else
    ++NumSpecCacheMisses;
  if (metricsEnabled()) {
    static Counter &Hits = MetricsRegistry::instance().getCounter(
        "irdl_spec_cache_hits", "in-process spec load cache hits");
    static Counter &Misses = MetricsRegistry::instance().getCounter(
        "irdl_spec_cache_misses", "in-process spec load cache misses");
    (Entry ? Hits : Misses).inc();
  }
  return Entry;
}

void SpecLoadCache::insert(uint64_t Hash, CachedSpecs Entry) {
  auto Shared = std::make_shared<const CachedSpecs>(std::move(Entry));
  std::lock_guard<std::mutex> Lock(M);
  Map[Hash] = std::move(Shared);
}

size_t SpecLoadCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

void SpecLoadCache::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Map.clear();
}

//===----------------------------------------------------------------------===//
// On-disk cache
//===----------------------------------------------------------------------===//

std::string irdl::specCachePath(const std::string &Dir, uint64_t Hash) {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(Hash));
  std::string Path = Dir;
  if (!Path.empty() && Path.back() != '/')
    Path += '/';
  Path += Hex;
  Path += ".irbc";
  return Path;
}

namespace {

/// The source hash embedded in a buffer's Meta section, or nullopt when
/// the buffer has none (or cannot be walked). A cheap pre-scan so stale
/// cache entries are rejected before any spec registers into the
/// destination context.
std::optional<uint64_t> embeddedSourceHash(std::string_view Buffer) {
  if (!isBytecodeBuffer(Buffer))
    return std::nullopt;
  DiagnosticEngine Scratch;
  BytecodeCursor C(Buffer.substr(sizeof(Magic)), Scratch, sizeof(Magic));
  uint64_t Version;
  if (!C.readVarInt(Version) || Version != FormatVersion)
    return std::nullopt;
  while (!C.atEnd()) {
    uint8_t Id;
    if (!C.readByte(Id))
      return std::nullopt;
    uint64_t Len;
    if (!C.readFixed64(Len))
      return std::nullopt;
    std::string_view Payload;
    if (!C.readBytes(Len, Payload))
      return std::nullopt;
    if (Id == static_cast<uint8_t>(SectionId::Meta)) {
      BytecodeCursor MC(Payload, Scratch);
      uint64_t Hash;
      if (!MC.readFixed64(Hash))
        return std::nullopt;
      return Hash;
    }
  }
  return std::nullopt;
}

} // namespace

LogicalResult irdl::loadCachedSpec(const std::string &Dir, uint64_t Hash,
                                   IRContext &Ctx, DiagnosticEngine &Diags,
                                   BytecodeReadResult &Result,
                                   const IRDLLoadOptions &Opts) {
  std::string Path = specCachePath(Dir, Hash);
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return failure(); // Absent: a plain miss, no diagnostics.

  std::string Error;
  std::shared_ptr<MappedFile> File = MappedFile::open(Path, Error);
  if (!File) {
    Diags.emitWarning(SMLoc(), "discarding unreadable spec cache entry: " +
                                   Error);
    ::unlink(Path.c_str());
    return failure();
  }

  // Validate the embedded hash before registering anything: an entry
  // whose content does not re-declare the hash it is filed under is
  // stale or corrupt, and must not poison the destination context.
  std::optional<uint64_t> Embedded = embeddedSourceHash(File->data());
  if (!Embedded || *Embedded != Hash) {
    Diags.emitWarning(SMLoc(), "discarding stale spec cache entry '" + Path +
                                   "' (embedded hash mismatch)");
    ::unlink(Path.c_str());
    return failure();
  }

  BytecodeReader Reader(Ctx, Diags, Opts);
  if (failed(Reader.read(File->data(), Result, Path, File))) {
    ::unlink(Path.c_str());
    return failure();
  }
  return success();
}

LogicalResult irdl::storeCachedSpec(const std::string &Dir, uint64_t Hash,
                                    const IRDLModule &Specs,
                                    DiagnosticEngine &Diags) {
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    Diags.emitError(SMLoc(),
                    "cannot create spec cache directory '" + Dir + "'");
    return failure();
  }

  BytecodeWriter Writer;
  Writer.addModuleSpecs(Specs);
  Writer.setSourceHash(Hash);
  std::string Bytes = Writer.write();

  // Temp-and-rename: concurrent processes loading from the same cache
  // directory either see the complete entry or none at all.
  std::string Path = specCachePath(Dir, Hash);
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Diags.emitError(SMLoc(), "cannot open '" + Tmp + "' for writing");
      return failure();
    }
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    Out.flush();
    if (!Out) {
      Diags.emitError(SMLoc(), "error writing '" + Tmp + "'");
      ::unlink(Tmp.c_str());
      return failure();
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Diags.emitError(SMLoc(), "cannot rename '" + Tmp + "' to '" + Path + "'");
    ::unlink(Tmp.c_str());
    return failure();
  }
  return success();
}
