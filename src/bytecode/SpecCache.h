//===- SpecCache.h - Content-hash dialect spec caching ------------*- C++ -*-===//
///
/// \file
/// Content-hash based caching of IRDL dialect specifications, in two
/// layers keyed by the same 64-bit FNV-1a hash (support/Hashing.h):
///
///  * An in-process cache (SpecLoadCache) mapping a spec buffer's hash to
///    the IRContext + IRDLModule it was loaded into, so repeated loads of
///    identical spec content inside one process skip parsing,
///    compilation, and registration entirely.
///
///  * An on-disk cache directory (`irdl_opt --spec-cache-dir=DIR`) where
///    each entry is a compiled `.irbc` spec buffer named by the hex hash
///    of its *source* text. A hit replaces frontend parsing with an
///    mmap'd bytecode load whose compiled programs alias the mapping.
///    Entries embed the source hash in their Meta section; an entry
///    whose embedded hash does not match its filename hash is stale
///    (e.g. truncated or hand-edited) and is invalidated.
///
/// The hash is computed by hashSpecBuffer(): textual buffers hash their
/// full contents; bytecode buffers hash the canonical spec sections
/// (Strings, Specs, Programs) only, so a buffer that merely gained a
/// Meta section or an IR payload still dedups against its spec-identical
/// sibling.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_BYTECODE_SPECCACHE_H
#define IRDL_BYTECODE_SPECCACHE_H

#include "bytecode/Bytecode.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace irdl {

/// The 64-bit content hash of a spec buffer. Stable across processes and
/// suitable for on-disk cache keys. Bytecode buffers are canonicalized
/// to their Strings/Specs/Programs sections; anything else (including
/// malformed bytecode) hashes whole.
uint64_t hashSpecBuffer(std::string_view Buffer);

/// One in-process cache entry: the context the specs were registered
/// into plus the module describing them. Verification against the cached
/// dialects must happen in the cached context (types and attributes are
/// uniqued per context).
struct CachedSpecs {
  std::shared_ptr<IRContext> Ctx;
  std::shared_ptr<IRDLModule> Module;
};

/// Process-wide spec load cache keyed by content hash. Thread-safe.
/// Exposes `irdl_spec_cache_hits` / `irdl_spec_cache_misses` counters
/// when metrics are enabled.
class SpecLoadCache {
public:
  static SpecLoadCache &instance();

  /// Returns the entry for \p Hash, or null. Counts a hit or miss.
  std::shared_ptr<const CachedSpecs> lookup(uint64_t Hash);

  /// Inserts (or replaces) the entry for \p Hash.
  void insert(uint64_t Hash, CachedSpecs Entry);

  size_t size() const;
  void clear();

private:
  SpecLoadCache() = default;
  mutable std::mutex M;
  std::unordered_map<uint64_t, std::shared_ptr<const CachedSpecs>> Map;
};

/// The on-disk cache file for \p Hash under \p Dir:
/// `DIR/<16-hex-digit hash>.irbc`.
std::string specCachePath(const std::string &Dir, uint64_t Hash);

/// Attempts to load the cached compiled spec for \p Hash from \p Dir via
/// the zero-copy mmap path. Returns failure — silently, with no
/// diagnostics — when the entry is absent; emits diagnostics and deletes
/// the entry when it exists but is stale (embedded Meta hash does not
/// match) or unreadable. On success the specs are registered into
/// \p Ctx and returned in \p Result.
LogicalResult loadCachedSpec(const std::string &Dir, uint64_t Hash,
                             IRContext &Ctx, DiagnosticEngine &Diags,
                             BytecodeReadResult &Result,
                             const IRDLLoadOptions &Opts = {});

/// Serializes \p Specs (with compiled programs and \p Hash embedded in
/// the Meta section) into the cache entry for \p Hash under \p Dir.
/// Writes to a temporary file first and renames into place, so
/// concurrent readers never observe a partial entry.
LogicalResult storeCachedSpec(const std::string &Dir, uint64_t Hash,
                              const IRDLModule &Specs,
                              DiagnosticEngine &Diags);

} // namespace irdl

#endif // IRDL_BYTECODE_SPECCACHE_H
