//===- BytecodeReader.cpp - .irbc loading -------------------------------===//
///
/// Reading mirrors the loader's three passes for specs (skeleton
/// definitions first so constraints in the same buffer can resolve them,
/// then constraint decoding, then the regular registration pass) and uses
/// a two-phase scheme for IR: every op is created with zero operands while
/// its results and block arguments are assigned dense value ids in
/// creation order, and operand references are resolved in one fixup pass
/// at the end — forward references in graph regions and CFG back-edges
/// need no special casing.

#include "bytecode/Bytecode.h"

#include "bytecode/Encoding.h"
#include "bytecode/ProgramSerializer.h"
#include "ir/Block.h"
#include "ir/Region.h"
#include "irdl/CppExpr.h"
#include "irdl/Registration.h"
#include "support/File.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Statistic.h"
#include "support/Timing.h"

#include <fstream>

using namespace irdl;
using namespace irdl::bytecode;

IRDL_STATISTIC(Bytecode, NumOpsRead, "operations deserialized from bytecode");
IRDL_STATISTIC(Bytecode, NumPoolEntriesRead,
               "type/attr pool entries deserialized");
IRDL_STATISTIC(Bytecode, NumSpecsRead, "dialect specs deserialized");
IRDL_STATISTIC(Bytecode, NumBytesRead, "bytecode bytes consumed");

namespace {

// Wire tags; must match BytecodeWriter.cpp (docs/serialization.md).
enum class ParamTag : uint8_t {
  Empty = 0,
  Type = 1,
  Attr = 2,
  Int = 3,
  Float = 4,
  String = 5,
  Enum = 6,
  Array = 7,
  Opaque = 8,
};

enum class ConstraintTag : uint8_t {
  AnyType = 0,
  AnyAttr = 1,
  AnyParam = 2,
  TypeParams = 3,
  AttrParams = 4,
  IntKind = 5,
  IntEq = 6,
  FloatKind = 7,
  FloatEq = 8,
  StringKind = 9,
  StringEq = 10,
  EnumKind = 11,
  EnumEq = 12,
  ArrayOf = 13,
  ArrayExact = 14,
  OpaqueKind = 15,
  AnyOf = 16,
  And = 17,
  Not = 18,
  Var = 19,
  Cpp = 20,
  Native = 21,
  Named = 22,
  MaxTag = Named,
};

} // namespace

struct BytecodeReader::Impl {
  IRContext &Ctx;
  DiagnosticEngine &Diags;
  const IRDLLoadOptions &Opts;

  std::vector<std::string_view> Strings;
  bool StringsRead = false;
  /// Names whole-buffer diagnostics (bad magic, version mismatch) after
  /// the file the buffer came from; empty for anonymous buffers.
  std::string BufferName;
  /// Keeps the input buffer alive when program storage aliases it
  /// (mmap-backed reads); null for owned buffers, which forces the
  /// copy-decode path in ProgramReader.
  std::shared_ptr<const void> Backing;

  /// Specs decoded from the Specs section but not yet registered:
  /// registration (which compiles any constraint slot lacking a program)
  /// is deferred until after the Programs section has had a chance to
  /// install serialized programs into these slots.
  std::vector<std::shared_ptr<DialectSpec>> PendingSpecs;
  bool HaveSpecs = false;
  bool SpecsRegistered = false;
  /// Combined type/attribute pool; every entry is a Type or Attr
  /// ParamValue.
  std::vector<ParamValue> Pool;

  /// Value-id table and deferred operand references for the IR section.
  std::vector<Value> Values;
  struct OperandFixup {
    Operation *Op;
    std::vector<uint64_t> ValueIds;
  };
  std::vector<OperandFixup> Fixups;

  Impl(IRContext &Ctx, DiagnosticEngine &Diags, const IRDLLoadOptions &Opts)
      : Ctx(Ctx), Diags(Diags), Opts(Opts) {}

  //===------------------------------------------------------------------===//
  // Shared decoding helpers
  //===------------------------------------------------------------------===//

  bool readString(BytecodeCursor &C, std::string_view &S) {
    uint64_t Id;
    if (!C.readVarIntBelow(Strings.size(), "string index", Id))
      return false;
    S = Strings[Id];
    return true;
  }

  /// Reads an element count; every encoded element occupies at least one
  /// byte, so any count above the remaining section size is corrupt —
  /// rejected here before any allocation sized by it.
  bool readCount(BytecodeCursor &C, std::string_view What, uint64_t &N) {
    return C.readVarIntBelow(C.remaining() + 1, What, N);
  }

  bool readPoolType(BytecodeCursor &C, Type &T) {
    uint64_t Id;
    if (!C.readVarIntBelow(Pool.size(), "type pool index", Id))
      return false;
    if (!Pool[Id].isType()) {
      C.error("pool entry " + std::to_string(Id) + " is not a type");
      return false;
    }
    T = Pool[Id].getType();
    return true;
  }

  bool readPoolAttr(BytecodeCursor &C, Attribute &A) {
    uint64_t Id;
    if (!C.readVarIntBelow(Pool.size(), "attribute pool index", Id))
      return false;
    if (!Pool[Id].isAttr()) {
      C.error("pool entry " + std::to_string(Id) + " is not an attribute");
      return false;
    }
    A = Pool[Id].getAttr();
    return true;
  }

  bool readIntVal(BytecodeCursor &C, IntVal &V) {
    uint64_t Width;
    uint8_t Sign;
    if (!C.readVarIntBelow(0x10000, "integer width", Width) ||
        !C.readByte(Sign))
      return false;
    if (Sign > static_cast<uint8_t>(Signedness::Unsigned)) {
      C.error("invalid signedness " + std::to_string(Sign));
      return false;
    }
    V.Width = static_cast<uint16_t>(Width);
    V.Sign = static_cast<Signedness>(Sign);
    return C.readSignedVarInt(V.Value);
  }

  bool readFloatVal(BytecodeCursor &C, FloatVal &V) {
    uint64_t Width;
    if (!C.readVarIntBelow(0x10000, "float width", Width))
      return false;
    V.Width = static_cast<uint16_t>(Width);
    return C.readDouble(V.Value);
  }

  bool readEnumVal(BytecodeCursor &C, EnumVal &V) {
    std::string_view Name;
    uint64_t Index;
    if (!readString(C, Name))
      return false;
    EnumDef *Def = Ctx.resolveEnumDef(Name);
    if (!Def) {
      C.error("unknown enum '" + std::string(Name) + "'");
      return false;
    }
    if (!C.readVarIntBelow(Def->getCases().size(), "enum case index", Index))
      return false;
    V.Def = Def;
    V.Index = static_cast<unsigned>(Index);
    return true;
  }

  bool readParamValue(BytecodeCursor &C, ParamValue &P) {
    uint8_t Tag;
    if (!C.readByte(Tag))
      return false;
    switch (static_cast<ParamTag>(Tag)) {
    case ParamTag::Empty:
      P = ParamValue();
      return true;
    case ParamTag::Type: {
      Type T;
      if (!readPoolType(C, T))
        return false;
      P = T;
      return true;
    }
    case ParamTag::Attr: {
      Attribute A;
      if (!readPoolAttr(C, A))
        return false;
      P = A;
      return true;
    }
    case ParamTag::Int: {
      IntVal V;
      if (!readIntVal(C, V))
        return false;
      P = V;
      return true;
    }
    case ParamTag::Float: {
      FloatVal V;
      if (!readFloatVal(C, V))
        return false;
      P = V;
      return true;
    }
    case ParamTag::String: {
      std::string_view S;
      if (!readString(C, S))
        return false;
      P = std::string(S);
      return true;
    }
    case ParamTag::Enum: {
      EnumVal V;
      if (!readEnumVal(C, V))
        return false;
      P = V;
      return true;
    }
    case ParamTag::Array: {
      uint64_t N;
      if (!readCount(C, "array length", N))
        return false;
      std::vector<ParamValue> Elems(N);
      for (ParamValue &E : Elems)
        if (!readParamValue(C, E))
          return false;
      P = std::move(Elems);
      return true;
    }
    case ParamTag::Opaque: {
      std::string_view Kind, Payload;
      if (!readString(C, Kind) || !readString(C, Payload))
        return false;
      P = OpaqueVal{std::string(Kind), std::string(Payload)};
      return true;
    }
    }
    C.error("unknown parameter tag " + std::to_string(Tag));
    return false;
  }

  //===------------------------------------------------------------------===//
  // Sections
  //===------------------------------------------------------------------===//

  LogicalResult readStringsSection(BytecodeCursor &C) {
    uint64_t N;
    if (!readCount(C, "string count", N))
      return failure();
    Strings.reserve(N);
    for (uint64_t I = 0; I != N; ++I) {
      uint64_t Len;
      std::string_view S;
      if (!C.readVarInt(Len) || !C.readBytes(Len, S))
        return failure();
      Strings.push_back(S);
    }
    StringsRead = true;
    return success();
  }

  LogicalResult readPoolSection(BytecodeCursor &C) {
    IRDL_TIME_SCOPE("read-pool");
    uint64_t N;
    if (!readCount(C, "pool entry count", N))
      return failure();
    Pool.reserve(N);
    for (uint64_t I = 0; I != N; ++I) {
      uint8_t Tag;
      std::string_view Name;
      uint64_t NumParams;
      if (!C.readByte(Tag) || !readString(C, Name) ||
          !readCount(C, "parameter count", NumParams))
        return failure();
      std::vector<ParamValue> Params(NumParams);
      for (ParamValue &P : Params)
        if (!readParamValue(C, P))
          return failure();
      if (Tag == 0) {
        TypeDefinition *Def = Ctx.resolveTypeDef(Name);
        if (!Def)
          return C.error("unknown type definition '" + std::string(Name) +
                         "'");
        Type T = Ctx.getTypeChecked(Def, std::move(Params), Diags);
        if (!T)
          return failure();
        Pool.push_back(T);
      } else if (Tag == 1) {
        AttrDefinition *Def = Ctx.resolveAttrDef(Name);
        if (!Def)
          return C.error("unknown attribute definition '" +
                         std::string(Name) + "'");
        Attribute A = Ctx.getAttrChecked(Def, std::move(Params), Diags);
        if (!A)
          return failure();
        Pool.push_back(A);
      } else {
        return C.error("unknown pool entry tag " + std::to_string(Tag));
      }
      ++NumPoolEntriesRead;
    }
    return success();
  }

  //===------------------------------------------------------------------===//
  // Specs section
  //===------------------------------------------------------------------===//

  ConstraintPtr readConstraint(BytecodeCursor &C, uint64_t NumVars) {
    uint8_t Tag;
    if (!C.readByte(Tag))
      return nullptr;
    if (Tag > static_cast<uint8_t>(ConstraintTag::MaxTag)) {
      C.error("unknown constraint tag " + std::to_string(Tag));
      return nullptr;
    }
    auto ReadChildren = [&](std::vector<ConstraintPtr> &Out) {
      uint64_t N;
      if (!readCount(C, "constraint child count", N))
        return false;
      Out.reserve(N);
      for (uint64_t I = 0; I != N; ++I) {
        ConstraintPtr Child = readConstraint(C, NumVars);
        if (!Child)
          return false;
        Out.push_back(std::move(Child));
      }
      return true;
    };
    auto ReadOneChild = [&](std::string_view What) -> ConstraintPtr {
      std::vector<ConstraintPtr> Children;
      if (!ReadChildren(Children))
        return nullptr;
      if (Children.size() != 1) {
        C.error(std::string(What) + " constraint requires exactly one "
                                    "child, got " +
                std::to_string(Children.size()));
        return nullptr;
      }
      return std::move(Children.front());
    };

    switch (static_cast<ConstraintTag>(Tag)) {
    case ConstraintTag::AnyType:
      return Constraint::anyType();
    case ConstraintTag::AnyAttr:
      return Constraint::anyAttr();
    case ConstraintTag::AnyParam:
      return Constraint::anyParam();
    case ConstraintTag::TypeParams:
    case ConstraintTag::AttrParams: {
      std::string_view Name;
      uint8_t BaseOnly;
      std::vector<ConstraintPtr> Children;
      if (!readString(C, Name) || !C.readByte(BaseOnly) ||
          !ReadChildren(Children))
        return nullptr;
      if (static_cast<ConstraintTag>(Tag) == ConstraintTag::TypeParams) {
        TypeDefinition *Def = Ctx.resolveTypeDef(Name);
        if (!Def) {
          C.error("unknown type definition '" + std::string(Name) + "'");
          return nullptr;
        }
        if (!BaseOnly && Children.size() != Def->getNumParams()) {
          C.error("constraint on '" + std::string(Name) + "' has " +
                  std::to_string(Children.size()) + " parameters, expected " +
                  std::to_string(Def->getNumParams()));
          return nullptr;
        }
        return Constraint::typeConstraint(Def, std::move(Children),
                                          BaseOnly != 0);
      }
      AttrDefinition *Def = Ctx.resolveAttrDef(Name);
      if (!Def) {
        C.error("unknown attribute definition '" + std::string(Name) + "'");
        return nullptr;
      }
      if (!BaseOnly && Children.size() != Def->getNumParams()) {
        C.error("constraint on '" + std::string(Name) + "' has " +
                std::to_string(Children.size()) + " parameters, expected " +
                std::to_string(Def->getNumParams()));
        return nullptr;
      }
      return Constraint::attrConstraint(Def, std::move(Children),
                                        BaseOnly != 0);
    }
    case ConstraintTag::IntKind: {
      uint64_t Width;
      uint8_t Sign;
      if (!C.readVarIntBelow(0x10000, "integer width", Width) ||
          !C.readByte(Sign))
        return nullptr;
      if (Sign > static_cast<uint8_t>(Signedness::Unsigned)) {
        C.error("invalid signedness " + std::to_string(Sign));
        return nullptr;
      }
      return Constraint::intKind(static_cast<unsigned>(Width),
                                 static_cast<Signedness>(Sign));
    }
    case ConstraintTag::IntEq: {
      IntVal V;
      if (!readIntVal(C, V))
        return nullptr;
      return Constraint::intEq(V);
    }
    case ConstraintTag::FloatKind: {
      uint64_t Width;
      if (!C.readVarIntBelow(0x10000, "float width", Width))
        return nullptr;
      return Constraint::floatKind(static_cast<unsigned>(Width));
    }
    case ConstraintTag::FloatEq: {
      FloatVal V;
      if (!readFloatVal(C, V))
        return nullptr;
      return Constraint::floatEq(V);
    }
    case ConstraintTag::StringKind:
      return Constraint::stringKind();
    case ConstraintTag::StringEq: {
      std::string_view S;
      if (!readString(C, S))
        return nullptr;
      return Constraint::stringEq(std::string(S));
    }
    case ConstraintTag::EnumKind: {
      std::string_view Name;
      if (!readString(C, Name))
        return nullptr;
      EnumDef *Def = Ctx.resolveEnumDef(Name);
      if (!Def) {
        C.error("unknown enum '" + std::string(Name) + "'");
        return nullptr;
      }
      return Constraint::enumKind(Def);
    }
    case ConstraintTag::EnumEq: {
      EnumVal V;
      if (!readEnumVal(C, V))
        return nullptr;
      return Constraint::enumEq(V);
    }
    case ConstraintTag::ArrayOf: {
      std::vector<ConstraintPtr> Children;
      if (!ReadChildren(Children))
        return nullptr;
      if (Children.empty())
        return Constraint::anyArray();
      if (Children.size() == 1)
        return Constraint::arrayOf(std::move(Children.front()));
      C.error("array-of constraint with " +
              std::to_string(Children.size()) + " children");
      return nullptr;
    }
    case ConstraintTag::ArrayExact: {
      std::vector<ConstraintPtr> Children;
      if (!ReadChildren(Children))
        return nullptr;
      return Constraint::arrayExact(std::move(Children));
    }
    case ConstraintTag::OpaqueKind: {
      std::string_view Name;
      if (!readString(C, Name))
        return nullptr;
      return Constraint::opaqueKind(std::string(Name));
    }
    case ConstraintTag::AnyOf: {
      std::vector<ConstraintPtr> Children;
      if (!ReadChildren(Children))
        return nullptr;
      return Constraint::anyOf(std::move(Children));
    }
    case ConstraintTag::And: {
      std::vector<ConstraintPtr> Children;
      if (!ReadChildren(Children))
        return nullptr;
      return Constraint::conjunction(std::move(Children));
    }
    case ConstraintTag::Not: {
      ConstraintPtr Inner = ReadOneChild("negation");
      return Inner ? Constraint::negation(std::move(Inner)) : nullptr;
    }
    case ConstraintTag::Var: {
      uint64_t Index;
      std::string_view Name;
      if (!C.readVarIntBelow(NumVars, "constraint variable index", Index) ||
          !readString(C, Name))
        return nullptr;
      return Constraint::var(static_cast<unsigned>(Index),
                             std::string(Name));
    }
    case ConstraintTag::Cpp: {
      std::string_view Src;
      if (!readString(C, Src))
        return nullptr;
      ConstraintPtr Base = ReadOneChild("IRDL-C++");
      if (!Base)
        return nullptr;
      // Recompile the interpreted predicate from its source, exactly as
      // the textual frontend does.
      auto Expr = CppExpr::parse(Src, Diags);
      if (!Expr) {
        C.error("failed to recompile IRDL-C++ constraint '" +
                std::string(Src) + "'");
        return nullptr;
      }
      return Constraint::cpp(
          std::move(Base),
          [Expr](const ParamValue &V) {
            CppExpr::EvalContext EC;
            EC.Self = cppEvalFromParam(V);
            auto B = Expr->evaluateBool(EC);
            return B && *B;
          },
          std::string(Src));
    }
    case ConstraintTag::Native: {
      std::string_view Name;
      if (!readString(C, Name))
        return nullptr;
      ConstraintPtr Base = ReadOneChild("native");
      if (!Base)
        return nullptr;
      auto It = Opts.NativeConstraints.find(std::string(Name));
      if (It == Opts.NativeConstraints.end()) {
        C.error("no native constraint registered under '" +
                std::string(Name) + "'");
        return nullptr;
      }
      return Constraint::native(std::move(Base), It->second,
                                std::string(Name));
    }
    case ConstraintTag::Named: {
      std::string_view Name;
      if (!readString(C, Name))
        return nullptr;
      ConstraintPtr Inner = ReadOneChild("named");
      return Inner ? Constraint::named(std::move(Inner), std::string(Name))
                   : nullptr;
    }
    }
    return nullptr;
  }

  bool readParamSpecs(BytecodeCursor &C, std::vector<ParamSpec> &Out,
                      uint64_t NumVars) {
    uint64_t N;
    if (!readCount(C, "parameter spec count", N))
      return false;
    Out.reserve(N);
    for (uint64_t I = 0; I != N; ++I) {
      std::string_view Name;
      if (!readString(C, Name))
        return false;
      ConstraintPtr Constr = readConstraint(C, NumVars);
      if (!Constr)
        return false;
      Out.push_back(ParamSpec{std::string(Name), std::move(Constr)});
    }
    return true;
  }

  bool readOperandSpecs(BytecodeCursor &C, std::vector<OperandSpec> &Out,
                        uint64_t NumVars) {
    uint64_t N;
    if (!readCount(C, "operand spec count", N))
      return false;
    Out.reserve(N);
    for (uint64_t I = 0; I != N; ++I) {
      std::string_view Name;
      uint8_t VK;
      if (!readString(C, Name) || !C.readByte(VK))
        return false;
      if (VK > static_cast<uint8_t>(VariadicKind::Variadic)) {
        C.error("invalid variadicity " + std::to_string(VK));
        return false;
      }
      ConstraintPtr Constr = readConstraint(C, NumVars);
      if (!Constr)
        return false;
      Out.push_back(OperandSpec{std::string(Name), std::move(Constr),
                                static_cast<VariadicKind>(VK)});
    }
    return true;
  }

  /// Pass 1: creates the dialect and skeleton definitions for every
  /// component, so that constraints anywhere in the buffer can resolve
  /// them by name (mirrors Sema::declareDialect).
  LogicalResult readSkeleton(BytecodeCursor &C, DialectSpec &Spec) {
    std::string_view Name;
    if (!readString(C, Name))
      return failure();
    Spec.Name = std::string(Name);
    Dialect *D = Ctx.getOrCreateDialect(Spec.Name);
    Spec.D = D;

    uint64_t NumEnums;
    if (!readCount(C, "enum count", NumEnums))
      return failure();
    for (uint64_t I = 0; I != NumEnums; ++I) {
      std::string_view EnumName;
      uint64_t NumCases;
      if (!readString(C, EnumName) || !readCount(C, "case count", NumCases))
        return failure();
      std::vector<std::string> Cases;
      Cases.reserve(NumCases);
      for (uint64_t J = 0; J != NumCases; ++J) {
        std::string_view Case;
        if (!readString(C, Case))
          return failure();
        Cases.push_back(std::string(Case));
      }
      EnumDef *Def = D->addEnum(std::string(EnumName), Cases);
      if (!Def)
        return C.error("redefinition of enum '" + std::string(EnumName) +
                       "'");
      Spec.Enums.push_back(EnumSpec{std::string(EnumName), std::move(Cases),
                                    Def});
    }

    auto ReadTypeOrAttrSkeletons =
        [&](bool IsAttr, std::vector<TypeOrAttrSpec> &Out) -> LogicalResult {
      uint64_t N;
      if (!readCount(C, "definition count", N))
        return failure();
      for (uint64_t I = 0; I != N; ++I) {
        std::string_view DefName, Summary;
        uint64_t NumParams;
        if (!readString(C, DefName) || !readString(C, Summary) ||
            !readCount(C, "parameter count", NumParams))
          return failure();
        std::vector<std::string> ParamNames;
        ParamNames.reserve(NumParams);
        for (uint64_t J = 0; J != NumParams; ++J) {
          std::string_view P;
          if (!readString(C, P))
            return failure();
          ParamNames.push_back(std::string(P));
        }
        TypeOrAttrSpec TS;
        TS.IsAttr = IsAttr;
        TS.Name = std::string(DefName);
        TS.Summary = std::string(Summary);
        TypeOrAttrDefinitionBase *Def =
            IsAttr ? static_cast<TypeOrAttrDefinitionBase *>(
                         D->addAttr(TS.Name))
                   : static_cast<TypeOrAttrDefinitionBase *>(
                         D->addType(TS.Name));
        if (!Def)
          return C.error("redefinition of " +
                         std::string(IsAttr ? "attribute" : "type") + " '" +
                         TS.Name + "'");
        Def->setParamNames(std::move(ParamNames));
        Def->setSummary(TS.Summary);
        TS.Def = Def;
        Out.push_back(std::move(TS));
      }
      return success();
    };
    if (failed(ReadTypeOrAttrSkeletons(/*IsAttr=*/false, Spec.Types)) ||
        failed(ReadTypeOrAttrSkeletons(/*IsAttr=*/true, Spec.Attrs)))
      return failure();

    uint64_t NumOps;
    if (!readCount(C, "op count", NumOps))
      return failure();
    for (uint64_t I = 0; I != NumOps; ++I) {
      std::string_view OpName, Summary;
      if (!readString(C, OpName) || !readString(C, Summary))
        return failure();
      OpSpec OS;
      OS.Name = std::string(OpName);
      OS.Summary = std::string(Summary);
      OS.Def = D->addOp(OS.Name);
      if (!OS.Def)
        return C.error("redefinition of operation '" + OS.Name + "'");
      OS.Def->setSummary(OS.Summary);
      Spec.Ops.push_back(std::move(OS));
    }
    return success();
  }

  /// Pass 2: decodes constraints and everything else into the spec whose
  /// skeletons pass 1 created.
  LogicalResult readSpecBody(BytecodeCursor &C, DialectSpec &Spec) {
    uint64_t N;
    if (!readCount(C, "parameter type count", N))
      return failure();
    for (uint64_t I = 0; I != N; ++I) {
      ParamTypeSpec P;
      std::string_view Name, Summary, CppClass, ParserSrc, PrinterSrc;
      if (!readString(C, Name) || !readString(C, Summary) ||
          !readString(C, CppClass) || !readString(C, ParserSrc) ||
          !readString(C, PrinterSrc))
        return failure();
      P.Name = std::string(Name);
      P.Summary = std::string(Summary);
      P.CppClassName = std::string(CppClass);
      P.CppParserSrc = std::string(ParserSrc);
      P.CppPrinterSrc = std::string(PrinterSrc);
      Spec.ParamTypes.push_back(std::move(P));
    }

    if (!readCount(C, "named constraint count", N))
      return failure();
    for (uint64_t I = 0; I != N; ++I) {
      NamedConstraintSpec NC;
      std::string_view Name, Summary;
      uint8_t HasCpp;
      if (!readString(C, Name) || !readString(C, Summary) ||
          !C.readByte(HasCpp))
        return failure();
      NC.Name = std::string(Name);
      NC.Summary = std::string(Summary);
      NC.HasCpp = HasCpp != 0;
      NC.Constr = readConstraint(C, /*NumVars=*/0);
      if (!NC.Constr)
        return failure();
      Spec.Constraints.push_back(std::move(NC));
    }

    if (!readCount(C, "alias count", N))
      return failure();
    for (uint64_t I = 0; I != N; ++I) {
      AliasSpec A;
      uint8_t Sigil, HasBody;
      std::string_view Name;
      uint64_t NumParams;
      if (!C.readByte(Sigil) || !readString(C, Name) ||
          !readCount(C, "alias parameter count", NumParams))
        return failure();
      A.Sigil = static_cast<char>(Sigil);
      A.Name = std::string(Name);
      for (uint64_t J = 0; J != NumParams; ++J) {
        std::string_view P;
        if (!readString(C, P))
          return failure();
        A.Params.push_back(std::string(P));
      }
      if (!C.readByte(HasBody))
        return failure();
      if (HasBody) {
        A.Body = readConstraint(C, /*NumVars=*/0);
        if (!A.Body)
          return failure();
      }
      Spec.Aliases.push_back(std::move(A));
    }

    auto ReadTypeOrAttrBodies =
        [&](std::vector<TypeOrAttrSpec> &TAs) -> LogicalResult {
      uint64_t Count;
      if (!C.readVarInt(Count))
        return failure();
      if (Count != TAs.size())
        return C.error("definition count differs between skeleton and body");
      for (TypeOrAttrSpec &TS : TAs) {
        std::string_view Name;
        if (!readString(C, Name))
          return failure();
        if (Name != TS.Name)
          return C.error("dialect body out of sync with skeleton at '" +
                         std::string(Name) + "'");
        if (!readParamSpecs(C, TS.Params, /*NumVars=*/0))
          return failure();
        uint8_t HasCpp;
        if (!C.readByte(HasCpp))
          return failure();
        if (HasCpp) {
          std::string_view Src;
          if (!readString(C, Src))
            return failure();
          TS.CppConstraintSrc = std::string(Src);
          if (TS.CppConstraintSrc.starts_with("native:")) {
            std::string NativeName = TS.CppConstraintSrc.substr(7);
            if (!Opts.NativeConstraints.count(NativeName))
              return C.error("no native constraint registered under '" +
                             NativeName + "'");
          } else {
            TS.CppConstraint = CppExpr::parse(Src, Diags);
            if (!TS.CppConstraint)
              return failure();
          }
        }
      }
      return success();
    };
    if (failed(ReadTypeOrAttrBodies(Spec.Types)) ||
        failed(ReadTypeOrAttrBodies(Spec.Attrs)))
      return failure();

    uint64_t NumOps;
    if (!C.readVarInt(NumOps))
      return failure();
    if (NumOps != Spec.Ops.size())
      return C.error("op count differs between skeleton and body");
    for (OpSpec &OS : Spec.Ops) {
      std::string_view Name;
      if (!readString(C, Name))
        return failure();
      if (Name != OS.Name)
        return C.error("dialect body out of sync with skeleton at '" +
                       std::string(Name) + "'");
      uint64_t NumVars;
      if (!readCount(C, "constraint variable count", NumVars))
        return failure();
      for (uint64_t I = 0; I != NumVars; ++I) {
        std::string_view V;
        if (!readString(C, V))
          return failure();
        OS.VarNames.push_back(std::string(V));
      }
      for (uint64_t I = 0; I != NumVars; ++I) {
        ConstraintPtr VC = readConstraint(C, NumVars);
        if (!VC)
          return failure();
        OS.VarConstraints.push_back(std::move(VC));
      }
      if (!readOperandSpecs(C, OS.Operands, NumVars) ||
          !readOperandSpecs(C, OS.Results, NumVars) ||
          !readParamSpecs(C, OS.Attributes, NumVars))
        return failure();
      uint64_t NumRegions;
      if (!readCount(C, "region spec count", NumRegions))
        return failure();
      for (uint64_t I = 0; I != NumRegions; ++I) {
        RegionSpec RS;
        std::string_view RName, Term;
        if (!readString(C, RName))
          return failure();
        RS.Name = std::string(RName);
        if (!readOperandSpecs(C, RS.Args, NumVars))
          return failure();
        if (!readString(C, Term))
          return failure();
        if (!Term.empty() && !Ctx.resolveOpDef(Term))
          return C.error("unknown terminator op '" + std::string(Term) +
                         "'");
        RS.TerminatorOpName = std::string(Term);
        OS.Regions.push_back(std::move(RS));
      }
      uint8_t HasSuccessors, HasFormat, HasCpp;
      if (!C.readByte(HasSuccessors))
        return failure();
      if (HasSuccessors) {
        uint64_t NumSucc;
        if (!readCount(C, "successor count", NumSucc))
          return failure();
        std::vector<std::string> Succs;
        for (uint64_t I = 0; I != NumSucc; ++I) {
          std::string_view S;
          if (!readString(C, S))
            return failure();
          Succs.push_back(std::string(S));
        }
        OS.Successors = std::move(Succs);
      }
      if (!C.readByte(HasFormat))
        return failure();
      if (HasFormat) {
        std::string_view Src;
        if (!readString(C, Src))
          return failure();
        OS.HasFormat = true;
        OS.FormatSrc = std::string(Src);
      }
      if (!C.readByte(HasCpp))
        return failure();
      if (HasCpp) {
        std::string_view Src;
        if (!readString(C, Src))
          return failure();
        OS.CppConstraintSrc = std::string(Src);
        if (OS.CppConstraintSrc.starts_with("native:")) {
          OS.NativeVerifierName = OS.CppConstraintSrc.substr(7);
          if (!Opts.NativeOpVerifiers.count(OS.NativeVerifierName))
            return C.error("no native op verifier registered under '" +
                           OS.NativeVerifierName + "'");
        } else {
          OS.CppConstraint = CppExpr::parse(Src, Diags);
          if (!OS.CppConstraint)
            return failure();
        }
      }
    }
    return success();
  }

  LogicalResult readSpecsSection(BytecodeCursor &C) {
    IRDL_TIME_SCOPE("read-specs");
    uint64_t NumDialects;
    if (!readCount(C, "dialect count", NumDialects))
      return failure();

    struct PendingDialect {
      std::shared_ptr<DialectSpec> Spec;
      std::string_view Body;
      size_t BodyBase;
    };
    std::vector<PendingDialect> Pending;
    Pending.reserve(NumDialects);

    // Pass 1: skeletons for every dialect in the buffer, so bodies can
    // cross-reference freely.
    for (uint64_t I = 0; I != NumDialects; ++I) {
      uint64_t SkelLen, BodyLen;
      std::string_view Skel, Body;
      if (!C.readVarInt(SkelLen))
        return failure();
      size_t SkelBase = C.offset();
      if (!C.readBytes(SkelLen, Skel) || !C.readVarInt(BodyLen))
        return failure();
      size_t BodyBase = C.offset();
      if (!C.readBytes(BodyLen, Body))
        return failure();

      auto Spec = std::make_shared<DialectSpec>();
      BytecodeCursor SK(Skel, Diags, SkelBase);
      if (failed(readSkeleton(SK, *Spec)))
        return failure();
      if (!SK.atEnd())
        return SK.error("trailing bytes in dialect skeleton");
      Pending.push_back(PendingDialect{std::move(Spec), Body, BodyBase});
    }

    // Pass 2: decode constraints and full component bodies.
    for (PendingDialect &P : Pending) {
      BytecodeCursor BC(P.Body, Diags, P.BodyBase);
      if (failed(readSpecBody(BC, *P.Spec)))
        return failure();
      if (!BC.atEnd())
        return BC.error("trailing bytes in dialect body");
    }

    // Pass 3 — registration — is deferred to ensureSpecsRegistered(): a
    // Programs section, when present, installs serialized constraint
    // programs into the spec slots first, so registration skips
    // recompiling them.
    HaveSpecs = true;
    for (PendingDialect &P : Pending)
      PendingSpecs.push_back(std::move(P.Spec));
    return success();
  }

  /// Runs the regular registration pass — verifiers, terminator flags,
  /// format hooks, and compilation of any constraint slot that did not
  /// arrive with a serialized program — over the decoded specs. Called
  /// once, after the Programs section (if any) and before any section
  /// that needs the dialects registered.
  LogicalResult ensureSpecsRegistered(BytecodeReadResult &Result) {
    if (SpecsRegistered || !HaveSpecs)
      return success();
    SpecsRegistered = true;
    auto Module = std::make_unique<IRDLModule>();
    for (std::shared_ptr<DialectSpec> &Spec : PendingSpecs) {
      if (failed(registerDialectSpec(Spec, Ctx, Diags, Opts)))
        return failure();
      Module->Dialects.push_back(std::move(Spec));
      ++NumSpecsRead;
    }
    PendingSpecs.clear();
    Result.Specs = std::move(Module);
    return success();
  }

  //===------------------------------------------------------------------===//
  // Programs section
  //===------------------------------------------------------------------===//

  /// Decodes the compiled-program section into the pending specs'
  /// constraint slots. Slot order and counts are implied by the Specs
  /// section (already decoded); the section carries only a per-dialect
  /// presence byte plus the programs themselves.
  LogicalResult readProgramsSection(BytecodeCursor &C) {
    IRDL_TIME_SCOPE("read-programs");
    uint8_t PadCount;
    if (!C.readByte(PadCount))
      return failure();
    if (PadCount >= ProgramSectionAlign)
      return C.error("program section pad count " +
                     std::to_string(PadCount) + " exceeds alignment");
    std::string_view Pad;
    if (!C.readBytes(PadCount, Pad))
      return failure();
    if (C.offset() % ProgramSectionAlign != 0)
      return C.error("program section body is misaligned (offset " +
                     std::to_string(C.offset()) + " mod " +
                     std::to_string(ProgramSectionAlign) + " != 0)");

    uint64_t NumDialects;
    if (!readCount(C, "program dialect count", NumDialects))
      return failure();
    if (NumDialects != PendingSpecs.size())
      return C.error("program section covers " + std::to_string(NumDialects) +
                     " dialects but the spec section has " +
                     std::to_string(PendingSpecs.size()));

    ProgramReader PR(Ctx, Diags, Opts, Strings, Backing);
    auto ReadParams = [&](std::vector<ParamSpec> &Params, uint64_t NumVars,
                          const std::vector<ConstraintProgramPtr> &Vars) {
      for (ParamSpec &P : Params) {
        ConstraintProgramPtr Prog;
        if (failed(PR.readOptional(C, NumVars, /*WithVarPrograms=*/false,
                                   Vars, Prog)))
          return failure();
        P.Prog = std::move(Prog);
      }
      return success();
    };
    auto ReadOperands = [&](std::vector<OperandSpec> &Specs, uint64_t NumVars,
                            const std::vector<ConstraintProgramPtr> &Vars) {
      for (OperandSpec &S : Specs) {
        ConstraintProgramPtr Prog;
        if (failed(PR.readOptional(C, NumVars, /*WithVarPrograms=*/false,
                                   Vars, Prog)))
          return failure();
        S.Prog = std::move(Prog);
      }
      return success();
    };

    for (std::shared_ptr<DialectSpec> &Spec : PendingSpecs) {
      uint8_t HasPrograms;
      if (!C.readByte(HasPrograms))
        return failure();
      if (HasPrograms > 1)
        return C.error("invalid program presence byte " +
                       std::to_string(HasPrograms));
      if (!HasPrograms)
        continue;
      static const std::vector<ConstraintProgramPtr> NoVars;
      for (TypeOrAttrSpec &TA : Spec->Types)
        if (failed(ReadParams(TA.Params, 0, NoVars)))
          return failure();
      for (TypeOrAttrSpec &TA : Spec->Attrs)
        if (failed(ReadParams(TA.Params, 0, NoVars)))
          return failure();
      for (OpSpec &Op : Spec->Ops) {
        uint64_t NumVarPrograms;
        if (!readCount(C, "variable program count", NumVarPrograms))
          return failure();
        if (NumVarPrograms != Op.VarConstraints.size())
          return C.error("operation '" + Op.Name + "' has " +
                         std::to_string(Op.VarConstraints.size()) +
                         " constraint variables but the program section "
                         "carries " +
                         std::to_string(NumVarPrograms));
        std::vector<ConstraintProgramPtr> Vars;
        Vars.reserve(NumVarPrograms);
        for (uint64_t I = 0; I != NumVarPrograms; ++I) {
          ConstraintProgramPtr VP;
          if (failed(PR.readOptional(C, /*NumVars=*/0,
                                     /*WithVarPrograms=*/false, NoVars, VP)))
            return failure();
          Vars.push_back(std::move(VP));
        }
        uint64_t NumVars = Vars.size();
        if (failed(ReadOperands(Op.Operands, NumVars, Vars)) ||
            failed(ReadOperands(Op.Results, NumVars, Vars)) ||
            failed(ReadParams(Op.Attributes, NumVars, Vars)))
          return failure();
        for (RegionSpec &R : Op.Regions)
          if (failed(ReadOperands(R.Args, NumVars, Vars)))
            return failure();
        Op.VarPrograms = std::move(Vars);
      }
    }
    return success();
  }

  //===------------------------------------------------------------------===//
  // Meta section
  //===------------------------------------------------------------------===//

  LogicalResult readMetaSection(BytecodeCursor &C,
                                BytecodeReadResult &Result) {
    uint64_t Hash;
    if (!C.readFixed64(Hash))
      return failure();
    Result.SourceHash = Hash;
    return success();
  }

  //===------------------------------------------------------------------===//
  // IR section
  //===------------------------------------------------------------------===//

  Operation *readOp(BytecodeCursor &C,
                    const std::vector<Block *> *EnclosingBlocks) {
    std::string_view Name;
    if (!readString(C, Name))
      return nullptr;
    OperationName OpName;
    if (const OpDefinition *Def = Ctx.resolveOpDef(Name))
      OpName = OperationName(Def);
    else if (Ctx.allowsUnregisteredOps())
      OpName = OperationName(std::string(Name));
    else {
      C.error("operation '" + std::string(Name) +
              "' has no registered definition");
      return nullptr;
    }

    OperationState State(Ctx, std::move(OpName));
    uint64_t NumResults;
    if (!readCount(C, "result count", NumResults))
      return nullptr;
    for (uint64_t I = 0; I != NumResults; ++I) {
      Type T;
      if (!readPoolType(C, T))
        return nullptr;
      State.ResultTypes.push_back(T);
    }

    uint64_t NumOperands;
    if (!readCount(C, "operand count", NumOperands))
      return nullptr;
    std::vector<uint64_t> OperandIds(NumOperands);
    // Operand ids may point at values not created yet (graph regions, CFG
    // back-edges); they are bounds-checked and resolved in the final
    // fixup pass.
    for (uint64_t &Id : OperandIds)
      if (!C.readVarInt(Id))
        return nullptr;
    // Create the op with null operands so the fixup pass fills slots in
    // place — keeping the operand array inside the op's single allocation
    // instead of growing it afterwards.
    State.Operands.assign(NumOperands, Value());

    uint64_t NumAttrs;
    if (!readCount(C, "attribute count", NumAttrs))
      return nullptr;
    for (uint64_t I = 0; I != NumAttrs; ++I) {
      std::string_view AttrName;
      Attribute A;
      if (!readString(C, AttrName) || !readPoolAttr(C, A))
        return nullptr;
      State.addAttribute(AttrName, A);
    }

    uint64_t NumSuccessors;
    if (!readCount(C, "successor count", NumSuccessors))
      return nullptr;
    if (NumSuccessors && !EnclosingBlocks) {
      C.error("top-level operation cannot have successors");
      return nullptr;
    }
    for (uint64_t I = 0; I != NumSuccessors; ++I) {
      uint64_t BlockId;
      if (!C.readVarIntBelow(EnclosingBlocks->size(), "successor block index",
                             BlockId))
        return nullptr;
      State.addSuccessor((*EnclosingBlocks)[BlockId]);
    }

    uint64_t NumRegions;
    if (!readCount(C, "region count", NumRegions))
      return nullptr;
    for (uint64_t I = 0; I != NumRegions; ++I)
      State.addRegion();

    Operation *Op = Operation::create(State);
    ++NumOpsRead;
    for (uint64_t I = 0; I != NumResults; ++I)
      Values.push_back(Op->getResult(static_cast<unsigned>(I)));
    if (!OperandIds.empty())
      Fixups.push_back(OperandFixup{Op, std::move(OperandIds)});

    for (uint64_t I = 0; I != NumRegions; ++I) {
      if (failed(readRegion(C, Op->getRegion(static_cast<unsigned>(I))))) {
        Op->destroy();
        return nullptr;
      }
    }
    return Op;
  }

  LogicalResult readRegion(BytecodeCursor &C, Region &R) {
    uint64_t NumBlocks;
    if (!readCount(C, "block count", NumBlocks))
      return failure();
    // All blocks (with their arguments) exist before any op is read, so
    // successor references resolve at op-creation time.
    std::vector<Block *> Blocks;
    Blocks.reserve(NumBlocks);
    for (uint64_t I = 0; I != NumBlocks; ++I) {
      Block *B = Block::create(Ctx);
      R.push_back(B);
      Blocks.push_back(B);
      uint64_t NumArgs;
      if (!readCount(C, "block argument count", NumArgs))
        return failure();
      for (uint64_t J = 0; J != NumArgs; ++J) {
        Type T;
        if (!readPoolType(C, T))
          return failure();
        Values.push_back(B->addArgument(T));
      }
    }
    for (Block *B : Blocks) {
      uint64_t NumOps;
      if (!readCount(C, "op count", NumOps))
        return failure();
      for (uint64_t I = 0; I != NumOps; ++I) {
        Operation *Op = readOp(C, &Blocks);
        if (!Op)
          return failure();
        B->push_back(Op);
      }
    }
    return success();
  }

  LogicalResult readIRSection(BytecodeCursor &C,
                              BytecodeReadResult &Result) {
    IRDL_TIME_SCOPE("read-ir");
    Operation *Root = readOp(C, /*EnclosingBlocks=*/nullptr);
    if (!Root)
      return failure();
    Result.Module = OwningOpRef(Root);
    for (const OperandFixup &F : Fixups) {
      for (uint64_t I = 0, E = F.ValueIds.size(); I != E; ++I) {
        uint64_t Id = F.ValueIds[I];
        if (Id >= Values.size()) {
          Result.Module.reset();
          return C.error("operand value index " + std::to_string(Id) +
                         " out of range (limit " +
                         std::to_string(Values.size()) + ")");
        }
        F.Op->setOperand(static_cast<unsigned>(I), Values[Id]);
      }
    }
    return success();
  }

  //===------------------------------------------------------------------===//
  // Top level
  //===------------------------------------------------------------------===//

  /// Prefixes whole-buffer diagnostics with the buffer's name, when one
  /// was supplied — a failing `--dialect foo.irbc` then names the file.
  std::string named(std::string Msg) const {
    return BufferName.empty() ? Msg : BufferName + ": " + std::move(Msg);
  }

  LogicalResult read(std::string_view Buffer, BytecodeReadResult &Result) {
    IRDL_TIME_SCOPE("bytecode-read");
    if (!isBytecodeBuffer(Buffer)) {
      Diags.emitError(SMLoc(), named("not an .irbc buffer (bad magic)"));
      return failure();
    }
    NumBytesRead += Buffer.size();
    BytecodeCursor C(Buffer.substr(sizeof(Magic)), Diags, sizeof(Magic));
    uint64_t Version;
    if (!C.readVarInt(Version))
      return failure();
    if (Version != FormatVersion) {
      Diags.emitError(SMLoc(),
                      named("unsupported bytecode version " +
                            std::to_string(Version) + " (expected " +
                            std::to_string(FormatVersion) + ")"));
      return failure();
    }

    uint8_t LastId = 0;
    while (!C.atEnd()) {
      uint8_t Id;
      if (!C.readByte(Id))
        return failure();
      if (Id <= LastId || Id > static_cast<uint8_t>(SectionId::Meta))
        return C.error("unknown, duplicate, or out-of-order section id " +
                       std::to_string(Id));
      LastId = Id;
      uint64_t Len;
      if (!C.readFixed64(Len))
        return failure();
      size_t PayloadBase = C.offset();
      std::string_view Payload;
      if (!C.readBytes(Len, Payload))
        return failure();
      if (static_cast<SectionId>(Id) != SectionId::Strings && !StringsRead)
        return C.error("section " + std::to_string(Id) +
                       " precedes the string table");

      // Spec registration waits for the Programs section (which installs
      // serialized programs); any later section needs it done.
      if (Id > static_cast<uint8_t>(SectionId::Programs) &&
          failed(ensureSpecsRegistered(Result)))
        return failure();

      BytecodeCursor SC(Payload, Diags, PayloadBase);
      LogicalResult SectionResult = success();
      switch (static_cast<SectionId>(Id)) {
      case SectionId::Strings:
        SectionResult = readStringsSection(SC);
        break;
      case SectionId::Specs:
        SectionResult = readSpecsSection(SC);
        break;
      case SectionId::Programs:
        SectionResult = readProgramsSection(SC);
        break;
      case SectionId::TypeAttrPool:
        SectionResult = readPoolSection(SC);
        break;
      case SectionId::IR:
        SectionResult = readIRSection(SC, Result);
        break;
      case SectionId::Meta:
        SectionResult = readMetaSection(SC, Result);
        break;
      }
      if (failed(SectionResult))
        return failure();
      if (!SC.atEnd())
        return SC.error("trailing bytes in section " + std::to_string(Id));
    }
    return ensureSpecsRegistered(Result);
  }
};

BytecodeReader::BytecodeReader(IRContext &Ctx, DiagnosticEngine &Diags,
                               const IRDLLoadOptions &Opts)
    : Ctx(Ctx), Diags(Diags), Opts(Opts) {}

BytecodeReader::~BytecodeReader() = default;

bool irdl::bytecodeBufferHasSpecs(std::string_view Buffer) {
  if (!isBytecodeBuffer(Buffer))
    return false;
  DiagnosticEngine Scratch;
  BytecodeCursor C(Buffer.substr(sizeof(Magic)), Scratch, sizeof(Magic));
  uint64_t Version;
  if (!C.readVarInt(Version) || Version != FormatVersion)
    return false;
  while (!C.atEnd()) {
    uint8_t Id;
    if (!C.readByte(Id))
      return false;
    // Report the Specs id as soon as it appears: even if its payload is
    // truncated, the full reader would decode (and register) spec
    // skeletons up to the truncation point.
    if (Id == static_cast<uint8_t>(SectionId::Specs))
      return true;
    uint64_t Len;
    if (!C.readFixed64(Len))
      return false;
    std::string_view Skipped;
    if (!C.readBytes(Len, Skipped))
      return false;
  }
  return false;
}

LogicalResult BytecodeReader::read(std::string_view Buffer,
                                   BytecodeReadResult &Result,
                                   std::string BufferName,
                                   std::shared_ptr<const void> Backing) {
  Impl I(Ctx, Diags, Opts);
  I.BufferName = std::move(BufferName);
  I.Backing = std::move(Backing);
  if (!metricsEnabled())
    return I.read(Buffer, Result);

  // Reader throughput, comparable with the text parser through the
  // shared format label.
  MetricLabels BcLabel{{"format", "bytecode"}};
  static Counter &Bytes = MetricsRegistry::instance().getCounter(
      "irdl_reader_bytes_total", "input bytes consumed by IR readers",
      BcLabel);
  static Counter &Ops = MetricsRegistry::instance().getCounter(
      "irdl_reader_ops_total", "operations materialized by IR readers",
      BcLabel);
  static Histogram &Duration = MetricsRegistry::instance().getHistogram(
      "irdl_reader_duration_ns", "wall time of one IR reader invocation",
      BcLabel);
  uint64_t Begin = steadyNowNs();
  LogicalResult R = I.read(Buffer, Result);
  Duration.record(steadyNowNs() - Begin);
  Bytes.inc(Buffer.size());
  if (succeeded(R) && Result.Module) {
    uint64_t NumOps = 0;
    Result.Module->walk([&NumOps](Operation *) { ++NumOps; });
    Ops.inc(NumOps);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// File convenience entry points
//===----------------------------------------------------------------------===//

LogicalResult irdl::writeBytecodeFile(const std::string &Path,
                                      Operation *Root,
                                      const IRDLModule *Specs,
                                      DiagnosticEngine &Diags) {
  BytecodeWriter Writer;
  if (Specs)
    Writer.addModuleSpecs(*Specs);
  if (Root)
    Writer.setModule(Root);
  std::string Bytes = Writer.write();

  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    Diags.emitError(SMLoc(), "cannot open '" + Path + "' for writing");
    return failure();
  }
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.flush();
  if (!Out) {
    Diags.emitError(SMLoc(), "error writing '" + Path + "'");
    return failure();
  }
  return success();
}

LogicalResult irdl::readBytecodeFile(const std::string &Path, IRContext &Ctx,
                                     DiagnosticEngine &Diags,
                                     BytecodeReadResult &Result,
                                     const IRDLLoadOptions &Opts) {
  std::string Buffer, Error;
  if (failed(readFileToString(Path, Buffer, Error))) {
    Diags.emitError(SMLoc(), Error);
    return failure();
  }
  BytecodeReader Reader(Ctx, Diags, Opts);
  return Reader.read(Buffer, Result, Path);
}

LogicalResult irdl::readBytecodeFileMapped(const std::string &Path,
                                           IRContext &Ctx,
                                           DiagnosticEngine &Diags,
                                           BytecodeReadResult &Result,
                                           const IRDLLoadOptions &Opts) {
  std::string Error;
  std::shared_ptr<MappedFile> File = MappedFile::open(Path, Error);
  if (!File) {
    Diags.emitError(SMLoc(), Error);
    return failure();
  }
  BytecodeReader Reader(Ctx, Diags, Opts);
  // The mapping is handed to the reader as the backing object: compiled
  // programs that alias it keep it referenced, so the mapping lives for
  // exactly as long as any zero-copy program does.
  return Reader.read(File->data(), Result, Path, File);
}
