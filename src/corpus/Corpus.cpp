//===- Corpus.cpp --------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace irdl;

IRDLLoadOptions irdl::corpusNativeOptions() {
  IRDLLoadOptions Opts;
  // "memory accesses must be strided": the buffer type's strides array
  // must be non-empty with strictly positive entries.
  Opts.NativeConstraints["stride_check"] = [](const ParamValue &V) {
    if (!V.isType())
      return false;
    const ParamValue &Strides = V.getType().getParam("strides");
    if (!Strides.isArray() || Strides.getArray().empty())
      return false;
    for (const ParamValue &S : Strides.getArray())
      if (!S.isInt() || S.getInt().Value <= 0)
        return false;
    return true;
  };
  // "the LLVM struct must be opaque": the opacity tag must say so.
  Opts.NativeConstraints["struct_opacity"] = [](const ParamValue &V) {
    return V.isType() &&
           V.getType().getParam("opacity").getString() == "opaque";
  };
  return Opts;
}

CorpusLoadResult irdl::loadSyntheticCorpus(IRContext &Ctx,
                                           SourceMgr &SrcMgr,
                                           DiagnosticEngine &Diags) {
  CorpusLoadResult Result;
  Result.Module = loadIRDL(Ctx, synthesizeCorpusIRDL(), SrcMgr, Diags,
                           corpusNativeOptions(), "<synthetic-corpus>");
  if (!Result.Module)
    return Result;
  for (const auto &D : Result.Module->getDialects())
    if (D->Name != CorpusSupportDialectName)
      Result.AnalysisDialects.push_back(D);
  return Result;
}
