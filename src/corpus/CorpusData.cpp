//===- CorpusData.cpp ---------------------------------------------------===//

#include "corpus/CorpusData.h"

using namespace irdl;

namespace {

const DialectProfile ProfileTable[] = {
#include "corpus/CorpusDataProfiles.inc"
};

const GrowthPoint GrowthTable[] = {
#include "corpus/CorpusDataGrowth.inc"
};

} // namespace

const std::vector<DialectProfile> &irdl::getDialectProfiles() {
  static const std::vector<DialectProfile> Profiles(
      std::begin(ProfileTable), std::end(ProfileTable));
  return Profiles;
}

const std::vector<GrowthPoint> &irdl::getGrowthTimeline() {
  static const std::vector<GrowthPoint> Timeline(std::begin(GrowthTable),
                                                 std::end(GrowthTable));
  return Timeline;
}
