//===- ModuleSynthesizer.h - Deterministic IR module synthesis ----*- C++ -*-===//
///
/// \file
/// Synthesizes deterministic IR modules over a loaded dialect: for every
/// operation definition in the spec it creates instances with results,
/// operands, attributes, and nested regions, picking types and attribute
/// values that satisfy the spec's parameter constraints where a small
/// constraint solver can find one. The synthesized module is built
/// directly through OperationState (no verifier runs), which is exactly
/// what the serialization roundtrip tests and benches need: broad,
/// reproducible coverage of the encoding surface — every ParamValue kind
/// the dialect's types reach, nested regions, block arguments, and SSA
/// wiring — without hand-writing IR per dialect.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_CORPUS_MODULESYNTHESIZER_H
#define IRDL_CORPUS_MODULESYNTHESIZER_H

#include "ir/IRParser.h"
#include "irdl/Spec.h"

namespace irdl {

struct ModuleSynthOptions {
  /// Seed of the deterministic generator; same seed + same spec = same
  /// module.
  uint64_t Seed = 1;
  /// Instances created per operation definition (at the top level).
  unsigned InstancesPerOp = 2;
  /// Maximum nesting depth of synthesized regions.
  unsigned MaxRegionDepth = 2;
};

/// Builds a module exercising the ops of \p Spec. The dialect must be
/// registered in \p Ctx (Spec.Ops[*].Def non-null). Never fails: ops whose
/// types cannot be constructed fall back to builtin types, and op-level
/// constraints need not hold (nothing verifies the module).
OwningOpRef synthesizeModule(IRContext &Ctx, const DialectSpec &Spec,
                             const ModuleSynthOptions &Opts = {});

} // namespace irdl

#endif // IRDL_CORPUS_MODULESYNTHESIZER_H
