//===- Synthesizer.h - Profile -> IRDL text ------------------------*- C++ -*-===//
///
/// \file
/// Deterministically synthesizes IRDL source text from a DialectProfile:
/// operations whose operand/result/attribute/region/variadic shape
/// histograms equal the profile's, types/attributes with the profile's
/// parameter-kind pools, and IRDL-C++ markers (interpreted constraints and
/// native references) exactly where the profile requires them. The output
/// is parsed and re-analyzed by the real IRDL frontend, so all reported
/// statistics are *measured*, not echoed.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_CORPUS_SYNTHESIZER_H
#define IRDL_CORPUS_SYNTHESIZER_H

#include "corpus/CorpusData.h"

#include <string>

namespace irdl {

/// The auxiliary dialect every synthesized dialect references: a buffer
/// type whose parameters carry the width/strides/opacity payloads that
/// the Figure 12 constraint categories inspect. Load this first.
std::string synthesizeSupportDialectIRDL();

/// The name of the auxiliary dialect ("corpus_support").
extern const char *CorpusSupportDialectName;

/// Synthesizes the IRDL text of one dialect.
std::string synthesizeDialectIRDL(const DialectProfile &Profile);

/// Synthesizes the whole corpus: the support dialect followed by every
/// profile of getDialectProfiles().
std::string synthesizeCorpusIRDL();

} // namespace irdl

#endif // IRDL_CORPUS_SYNTHESIZER_H
