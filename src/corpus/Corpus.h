//===- Corpus.h - Loading the synthetic evaluation corpus ---------*- C++ -*-===//
///
/// \file
/// End-to-end corpus loading: synthesize IRDL text from the profiles,
/// register the native callbacks the Figure 12 categories reference, and
/// run the real frontend over all 28 dialects. The benches then compute
/// CorpusStatistics from the resulting specs.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_CORPUS_CORPUS_H
#define IRDL_CORPUS_CORPUS_H

#include "corpus/CorpusData.h"
#include "corpus/Synthesizer.h"
#include "irdl/IRDL.h"

namespace irdl {

/// The native callbacks referenced by synthesized dialects
/// (`native:stride_check`, `native:struct_opacity`).
IRDLLoadOptions corpusNativeOptions();

struct CorpusLoadResult {
  /// The loaded module (28 dialects + the corpus_support dialect).
  std::unique_ptr<IRDLModule> Module;
  /// The 28 analyzed dialects, excluding corpus_support.
  std::vector<std::shared_ptr<DialectSpec>> AnalysisDialects;

  explicit operator bool() const { return Module != nullptr; }
};

/// Synthesizes and loads the full corpus into \p Ctx.
CorpusLoadResult loadSyntheticCorpus(IRContext &Ctx, SourceMgr &SrcMgr,
                                     DiagnosticEngine &Diags);

} // namespace irdl

#endif // IRDL_CORPUS_CORPUS_H
