//===- Synthesizer.cpp --------------------------------------------------===//

#include "corpus/Synthesizer.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

using namespace irdl;

const char *irdl::CorpusSupportDialectName = "corpus_support";

std::string irdl::synthesizeSupportDialectIRDL() {
  return R"(
Dialect corpus_support {
  Type buffer {
    Parameters (elem: !AnyType, width: uint32_t,
                strides: array<int64_t>, opacity: string)
    Summary "Carrier type for the Figure 12 constraint categories"
  }
}
)";
}

namespace {

/// Per-op feature plan derived from the profile's histograms.
struct OpPlan {
  unsigned Operands = 0;
  unsigned VariadicOperands = 0;
  unsigned Results = 0;
  bool VariadicResult = false;
  unsigned Attrs = 0;
  unsigned Regions = 0;
  bool CppVerifier = false;
  int LocalCpp = -1; // 0 inequality / 1 stride / 2 opacity
};

/// Expands a bucket histogram into one value per op. The last bucket
/// ("N+") cycles through N, N+1, N+2 to give some spread.
std::vector<unsigned> expandBuckets(const unsigned *Counts,
                                    unsigned NumBuckets, bool LastIsPlus) {
  std::vector<unsigned> Values;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    for (unsigned K = 0; K != Counts[B]; ++K) {
      unsigned V = B;
      if (LastIsPlus && B + 1 == NumBuckets)
        V = B + (K % 3);
      Values.push_back(V);
    }
  }
  return Values;
}

const char *operandConstraint(unsigned I) {
  static const char *Pool[] = {"!f32", "!i64",  "!i32",     "!f64",
                               "!index", "!i1", "!AnyType", "!i8",
                               "!ui32", "!si64"};
  return Pool[I % (sizeof(Pool) / sizeof(Pool[0]))];
}

const char *attrConstraint(unsigned I) {
  static const char *Pool[] = {"#builtin.int", "#f32_attr",
                               "#builtin.string", "#builtin.array",
                               "#AnyAttr"};
  return Pool[I % (sizeof(Pool) / sizeof(Pool[0]))];
}

const char *LocalCppConstraintNames[3] = {"BoundedWidth", "StridedBuffer",
                                          "OpaqueStruct"};

/// Emits a type or attribute definition with parameters drawn from
/// \p Kinds (indices into ParamKind order).
void emitTypeOrAttr(std::ostringstream &OS, bool IsAttr, unsigned Index,
                    const std::vector<unsigned> &Kinds, bool CppVerifier,
                    bool HasEnum) {
  OS << "  " << (IsAttr ? "Attribute " : "Type ")
     << (IsAttr ? "a" : "t") << Index << " {\n";
  if (!Kinds.empty()) {
    OS << "    Parameters (";
    for (size_t I = 0; I != Kinds.size(); ++I) {
      if (I)
        OS << ", ";
      OS << "p" << I << ": ";
      switch (Kinds[I]) {
      case 0:
        OS << (I % 2 ? "#AnyAttr" : "!AnyType");
        break;
      case 1:
        OS << "uint32_t";
        break;
      case 2:
        OS << "string";
        break;
      case 3:
        OS << "float32_t";
        break;
      case 4:
        OS << (HasEnum ? "mode" : "string");
        break;
      case 5:
        OS << "location";
        break;
      case 6:
        OS << "type_id";
        break;
      default:
        OS << "NativeParam";
        break;
      }
    }
    OS << ")\n";
  }
  if (CppVerifier)
    OS << "    CppConstraint \"$_self.name.size() > 0\"\n";
  OS << "  }\n";
}

} // namespace

std::string irdl::synthesizeDialectIRDL(const DialectProfile &P) {
  std::ostringstream OS;
  OS << "Dialect " << P.Name << " {\n";

  //===------------------------------------------------------------------===//
  // Support declarations
  //===------------------------------------------------------------------===//

  bool NeedsEnum =
      P.TypeParamKinds[4] != 0 || P.AttrParamKinds[4] != 0;
  if (NeedsEnum)
    OS << "  Enum mode { A, B, C }\n";

  bool NeedsNativeParam =
      P.TypeParamKinds[7] != 0 || P.AttrParamKinds[7] != 0;
  if (NeedsNativeParam) {
    OS << "  TypeOrAttrParam NativeParam {\n"
       << "    Summary \"A dialect-specific C++ parameter\"\n"
       << "    CppClassName \"" << P.Name << "::NativeParam\"\n"
       << "    CppParser \"parseNativeParam($self)\"\n"
       << "    CppPrinter \"printNativeParam($self)\"\n"
       << "  }\n";
  }

  // Named constraints for the Figure 12 categories.
  if (P.OpsLocalIntInequality)
    OS << "  Constraint BoundedWidth : !corpus_support.buffer {\n"
       << "    Summary \"integer inequality on a type parameter\"\n"
       << "    CppConstraint \"$_self.width <= 64\"\n"
       << "  }\n";
  if (P.OpsLocalStrideCheck)
    OS << "  Constraint StridedBuffer : !corpus_support.buffer {\n"
       << "    Summary \"memory accesses must be strided\"\n"
       << "    CppConstraint \"native:stride_check\"\n"
       << "  }\n";
  if (P.OpsLocalStructOpacity)
    OS << "  Constraint OpaqueStruct : !corpus_support.buffer {\n"
       << "    Summary \"struct must be opaque\"\n"
       << "    CppConstraint \"native:struct_opacity\"\n"
       << "  }\n";

  //===------------------------------------------------------------------===//
  // Types and attributes
  //===------------------------------------------------------------------===//

  auto EmitDefs = [&](bool IsAttr, unsigned NumDefs,
                      const std::array<unsigned, 8> &KindPool,
                      unsigned CppParams, unsigned CppVerifiers) {
    if (!NumDefs)
      return;
    // Flatten the kind pool; domain-specific params go first so the
    // cpp-param definitions (the leading ones) receive them.
    std::vector<unsigned> Kinds;
    for (unsigned K = 0; K != KindPool[7]; ++K)
      Kinds.push_back(7);
    for (unsigned KindIdx = 0; KindIdx != 7; ++KindIdx)
      for (unsigned K = 0; K != KindPool[KindIdx]; ++K)
        Kinds.push_back(KindIdx);

    // Distribute parameters over definitions: the first CppParams defs
    // take one domain param each; the rest round-robin.
    std::vector<std::vector<unsigned>> PerDef(NumDefs);
    size_t Next = 0;
    for (unsigned D = 0; D != CppParams && Next < Kinds.size(); ++D)
      PerDef[D].push_back(Kinds[Next++]);
    unsigned Cursor = 0;
    while (Next < Kinds.size()) {
      PerDef[Cursor % NumDefs].push_back(Kinds[Next++]);
      ++Cursor;
    }
    for (unsigned D = 0; D != NumDefs; ++D) {
      bool Verify = D + CppVerifiers >= NumDefs; // last CppVerifiers defs
      emitTypeOrAttr(OS, IsAttr, D, PerDef[D], Verify, NeedsEnum);
    }
  };

  EmitDefs(false, P.NumTypes, P.TypeParamKinds, P.TypesNeedingCppParams,
           P.TypesNeedingCppVerifier);
  EmitDefs(true, P.NumAttrs, P.AttrParamKinds, P.AttrsNeedingCppParams,
           P.AttrsNeedingCppVerifier);

  //===------------------------------------------------------------------===//
  // Operation plans
  //===------------------------------------------------------------------===//

  unsigned N = P.NumOps;
  std::vector<OpPlan> Plans(N);

  // Operand counts, most-operand ops first.
  std::vector<unsigned> OperandVals =
      expandBuckets(P.OperandCounts.data(), 4, /*LastIsPlus=*/true);
  assert(OperandVals.size() == N && "operand histogram mismatch");
  std::sort(OperandVals.rbegin(), OperandVals.rend());
  for (unsigned I = 0; I != N; ++I)
    Plans[I].Operands = OperandVals[I];

  // Variadic operands: two-variadic ops first (they have the most
  // operands), then one-variadic.
  unsigned Two = P.VariadicOperandCounts[2];
  unsigned One = P.VariadicOperandCounts[1];
  for (unsigned I = 0; I != N && Two; ++I, --Two)
    Plans[I].VariadicOperands = std::min(2u, Plans[I].Operands);
  for (unsigned I = P.VariadicOperandCounts[2]; I != N && One; ++I, --One)
    Plans[I].VariadicOperands = std::min(1u, Plans[I].Operands);

  // Local C++ constraints: ops with at least one operand, scanning from
  // the front but past the variadic block to spread features.
  {
    unsigned Start =
        P.VariadicOperandCounts[2] + P.VariadicOperandCounts[1];
    unsigned Remaining[3] = {P.OpsLocalIntInequality,
                             P.OpsLocalStrideCheck,
                             P.OpsLocalStructOpacity};
    unsigned Cat = 0;
    for (unsigned Step = 0; Step != N; ++Step) {
      unsigned I = (Start + Step) % N;
      while (Cat < 3 && Remaining[Cat] == 0)
        ++Cat;
      if (Cat == 3)
        break;
      if (Plans[I].LocalCpp < 0) {
        Plans[I].LocalCpp = static_cast<int>(Cat);
        --Remaining[Cat];
      }
    }
  }

  // Results: two-result ops at the tail (ops with fewer operands).
  {
    std::vector<unsigned> ResultVals =
        expandBuckets(P.ResultCounts.data(), 3, /*LastIsPlus=*/false);
    assert(ResultVals.size() == N && "result histogram mismatch");
    std::sort(ResultVals.begin(), ResultVals.end()); // 0s first
    for (unsigned I = 0; I != N; ++I)
      Plans[N - 1 - I].Results = ResultVals[I]; // 2s at the front-reverse
  }

  // Variadic results: ops with at least one result def.
  {
    unsigned Left = P.VariadicResultCounts[1];
    for (unsigned I = 0; I != N && Left; ++I) {
      if (Plans[I].Results >= 1 && Plans[I].VariadicOperands == 0) {
        Plans[I].VariadicResult = true;
        --Left;
      }
    }
    for (unsigned I = 0; I != N && Left; ++I) {
      if (Plans[I].Results >= 1 && !Plans[I].VariadicResult) {
        Plans[I].VariadicResult = true;
        --Left;
      }
    }
  }

  // Attributes: rotate by a third to decorrelate from operand ordering.
  {
    std::vector<unsigned> AttrVals;
    for (unsigned K = 0; K != P.AttrCounts[0]; ++K)
      AttrVals.push_back(0);
    for (unsigned K = 0; K != P.AttrCounts[1]; ++K)
      AttrVals.push_back(1);
    for (unsigned K = 0; K != P.AttrCounts[2]; ++K)
      AttrVals.push_back(2 + (K % 2));
    assert(AttrVals.size() == N && "attr histogram mismatch");
    unsigned Rot = N / 3;
    for (unsigned I = 0; I != N; ++I)
      Plans[(I + Rot) % N].Attrs = AttrVals[I];
  }

  // Regions: rotate by two thirds.
  {
    std::vector<unsigned> RegionVals =
        expandBuckets(P.RegionCounts.data(), 3, /*LastIsPlus=*/false);
    assert(RegionVals.size() == N && "region histogram mismatch");
    std::sort(RegionVals.rbegin(), RegionVals.rend());
    unsigned Rot = (2 * N) / 3;
    for (unsigned I = 0; I != N; ++I)
      Plans[(I + Rot) % N].Regions = RegionVals[I];
  }

  // C++ verifiers: the last K ops.
  for (unsigned K = 0; K != P.OpsNeedingCppVerifier && K != N; ++K)
    Plans[N - 1 - K].CppVerifier = true;

  //===------------------------------------------------------------------===//
  // Emit operations
  //===------------------------------------------------------------------===//

  for (unsigned I = 0; I != N; ++I) {
    const OpPlan &Plan = Plans[I];
    OS << "  Operation op" << I << " {\n";

    if (Plan.Operands) {
      OS << "    Operands (";
      for (unsigned J = 0; J != Plan.Operands; ++J) {
        if (J)
          OS << ", ";
        OS << "o" << J << ": ";
        bool IsVariadic =
            J + Plan.VariadicOperands >= Plan.Operands; // last ones
        std::string Body = operandConstraint(I + J);
        if (J == 0 && Plan.LocalCpp >= 0)
          Body = LocalCppConstraintNames[Plan.LocalCpp];
        if (IsVariadic)
          OS << (J + 1 == Plan.Operands && Plan.VariadicOperands == 1 &&
                         (I % 4 == 0)
                     ? "Optional<"
                     : "Variadic<")
             << Body << ">";
        else
          OS << Body;
      }
      OS << ")\n";
    } else if (Plan.LocalCpp >= 0 && Plan.Results) {
      // No operands: hang the local C++ constraint on a result below.
    }

    if (Plan.Results) {
      OS << "    Results (";
      for (unsigned J = 0; J != Plan.Results; ++J) {
        if (J)
          OS << ", ";
        OS << "r" << J << ": ";
        std::string Body = operandConstraint(I + J + 1);
        if (J == 0 && Plan.LocalCpp >= 0 && Plan.Operands == 0)
          Body = LocalCppConstraintNames[Plan.LocalCpp];
        if (J == 0 && Plan.VariadicResult)
          OS << "Variadic<" << Body << ">";
        else
          OS << Body;
      }
      OS << ")\n";
    }

    if (Plan.Attrs || (Plan.LocalCpp >= 0 && !Plan.Operands &&
                       !Plan.Results)) {
      unsigned NumAttrs = std::max(
          Plan.Attrs,
          Plan.LocalCpp >= 0 && !Plan.Operands && !Plan.Results ? 1u : 0u);
      OS << "    Attributes (";
      for (unsigned J = 0; J != NumAttrs; ++J) {
        if (J)
          OS << ", ";
        OS << "at" << J << ": ";
        if (J == 0 && Plan.LocalCpp >= 0 && !Plan.Operands &&
            !Plan.Results)
          OS << LocalCppConstraintNames[Plan.LocalCpp];
        else
          OS << attrConstraint(I + J);
      }
      OS << ")\n";
    }

    for (unsigned J = 0; J != Plan.Regions; ++J)
      OS << "    Region body" << J << " { }\n";

    if (Plan.CppVerifier)
      OS << "    CppConstraint \"$_self.numResults <= 8\"\n";

    OS << "  }\n";
  }

  OS << "}\n";
  return OS.str();
}

std::string irdl::synthesizeCorpusIRDL() {
  std::ostringstream OS;
  OS << synthesizeSupportDialectIRDL();
  for (const DialectProfile &P : getDialectProfiles())
    OS << synthesizeDialectIRDL(P);
  return OS.str();
}
