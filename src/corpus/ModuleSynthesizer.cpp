//===- ModuleSynthesizer.cpp ----------------------------------------===//

#include "corpus/ModuleSynthesizer.h"

#include "ir/Block.h"
#include "ir/Region.h"

#include <algorithm>

using namespace irdl;

namespace {

/// The deterministic PRNG shared with the IR roundtrip tests.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
};

class Synthesizer {
public:
  Synthesizer(IRContext &Ctx, const DialectSpec &Spec,
              const ModuleSynthOptions &Opts)
      : Ctx(Ctx), Spec(Spec), Opts(Opts), Rng(Opts.Seed) {}

  OwningOpRef run() {
    buildPools();
    OperationState ModState(Ctx, Ctx.resolveOpDef("builtin.module"));
    Region *ModRegion = ModState.addRegion();
    Block *Body = Block::create(Ctx);
    ModRegion->push_back(Body);
    Operation *Module = Operation::create(ModState);

    // A couple of block arguments give the operand picker something to
    // use before the first result-producing op exists.
    std::vector<Value> ValuePool;
    ValuePool.push_back(Body->addArgument(TypePool[0]));
    ValuePool.push_back(
        Body->addArgument(TypePool[Rng.below(TypePool.size())]));

    for (unsigned Round = 0; Round != Opts.InstancesPerOp; ++Round)
      for (const OpSpec &OS : Spec.Ops) {
        Operation *Op = synthesizeOp(OS, ValuePool, /*Depth=*/0);
        Body->push_back(Op);
        for (unsigned I = 0, N = Op->getNumResults(); I != N; ++I)
          ValuePool.push_back(Op->getResult(I));
      }
    return OwningOpRef(Module);
  }

private:
  //===------------------------------------------------------------------===//
  // Type / attribute pools
  //===------------------------------------------------------------------===//

  void buildPools() {
    TypePool.push_back(Ctx.getFloatType(32));
    TypePool.push_back(Ctx.getFloatType(64));
    TypePool.push_back(Ctx.getIntegerType(32));
    TypePool.push_back(Ctx.getIntegerType(1));
    TypePool.push_back(Ctx.getIntegerType(16, Signedness::Signed));
    TypePool.push_back(Ctx.getIndexType());

    AttrPool.push_back(Ctx.getIntegerAttr(7, 32));
    AttrPool.push_back(Ctx.getFloatAttr(1.5, 64));
    AttrPool.push_back(Ctx.getStringAttr("synth"));
    AttrPool.push_back(Ctx.getUnitAttr());
    AttrPool.push_back(Ctx.getTypeAttr(TypePool[0]));
    for (const EnumSpec &E : Spec.Enums)
      if (E.Def && !E.Cases.empty())
        AttrPool.push_back(Ctx.getEnumAttr(
            EnumVal{E.Def, static_cast<unsigned>(Rng.below(E.Cases.size()))}));

    // Two rounds so dialect types whose parameters are themselves dialect
    // types (or attributes) can nest.
    for (int Round = 0; Round != 2; ++Round) {
      for (const TypeOrAttrSpec &TS : Spec.Types)
        addDialectType(TS);
      for (const TypeOrAttrSpec &TS : Spec.Attrs)
        addDialectAttr(TS);
    }
  }

  void addDialectType(const TypeOrAttrSpec &TS) {
    if (!TS.Def)
      return;
    std::vector<ParamValue> Params;
    for (const ParamSpec &P : TS.Params) {
      auto V = solve(*P.Constr, /*Depth=*/0);
      if (!V)
        return; // constraint too rich for the solver: skip the def
      Params.push_back(std::move(*V));
    }
    DiagnosticEngine Scratch;
    Type T = Ctx.getTypeChecked(static_cast<TypeDefinition *>(TS.Def),
                                std::move(Params), Scratch);
    if (T && std::find(TypePool.begin(), TypePool.end(), T) == TypePool.end())
      TypePool.push_back(T);
  }

  void addDialectAttr(const TypeOrAttrSpec &TS) {
    if (!TS.Def)
      return;
    std::vector<ParamValue> Params;
    for (const ParamSpec &P : TS.Params) {
      auto V = solve(*P.Constr, /*Depth=*/0);
      if (!V)
        return;
      Params.push_back(std::move(*V));
    }
    DiagnosticEngine Scratch;
    Attribute A = Ctx.getAttrChecked(static_cast<AttrDefinition *>(TS.Def),
                                     std::move(Params), Scratch);
    if (A && std::find(AttrPool.begin(), AttrPool.end(), A) == AttrPool.end())
      AttrPool.push_back(A);
  }

  //===------------------------------------------------------------------===//
  // A small constraint solver: find one ParamValue matching a constraint
  //===------------------------------------------------------------------===//

  bool matches(const Constraint &C, const ParamValue &V) {
    // Constraint variables only appear inside op specs, which the solver
    // never reaches (it runs over type/attr parameter constraints).
    if (C.referencesVar())
      return false;
    MatchContext MC;
    return C.matches(V, MC);
  }

  std::optional<ParamValue> checked(const Constraint &C, ParamValue V) {
    if (matches(C, V))
      return V;
    return std::nullopt;
  }

  std::optional<ParamValue> solve(const Constraint &C, unsigned Depth) {
    if (Depth > 6)
      return std::nullopt;
    switch (C.getKind()) {
    case Constraint::Kind::AnyType:
      return ParamValue(TypePool[Rng.below(TypePool.size())]);
    case Constraint::Kind::AnyAttr:
      return ParamValue(AttrPool[Rng.below(AttrPool.size())]);
    case Constraint::Kind::AnyParam:
      return ParamValue(IntVal{32, Signedness::Signless,
                               static_cast<int64_t>(Rng.below(16))});
    case Constraint::Kind::TypeParams:
    case Constraint::Kind::AttrParams: {
      bool IsType = C.getKind() == Constraint::Kind::TypeParams;
      // Prefer an existing pool entry; otherwise construct one by solving
      // each parameter constraint.
      size_t PoolSize = IsType ? TypePool.size() : AttrPool.size();
      for (size_t I = 0; I != PoolSize; ++I) {
        ParamValue Candidate = IsType ? ParamValue(TypePool[I])
                                      : ParamValue(AttrPool[I]);
        if (matches(C, Candidate))
          return Candidate;
      }
      if (C.isBaseOnly())
        return std::nullopt;
      std::vector<ParamValue> Params;
      for (const ConstraintPtr &Child : C.getChildren()) {
        auto V = solve(*Child, Depth + 1);
        if (!V)
          return std::nullopt;
        Params.push_back(std::move(*V));
      }
      DiagnosticEngine Scratch;
      if (C.getKind() == Constraint::Kind::TypeParams) {
        Type T =
            Ctx.getTypeChecked(C.getTypeDef(), std::move(Params), Scratch);
        return T ? checked(C, ParamValue(T)) : std::nullopt;
      }
      Attribute A =
          Ctx.getAttrChecked(C.getAttrDef(), std::move(Params), Scratch);
      return A ? checked(C, ParamValue(A)) : std::nullopt;
    }
    case Constraint::Kind::IntKind:
      return ParamValue(IntVal{static_cast<uint16_t>(C.getIntWidth()),
                               C.getIntSign(),
                               static_cast<int64_t>(Rng.below(8))});
    case Constraint::Kind::IntEq:
      return ParamValue(C.getIntVal());
    case Constraint::Kind::FloatKind:
      return ParamValue(FloatVal{
          static_cast<uint16_t>(C.getFloatVal().Width ? C.getFloatVal().Width
                                                      : 64),
          0.5});
    case Constraint::Kind::FloatEq:
      return ParamValue(C.getFloatVal());
    case Constraint::Kind::StringKind:
      return ParamValue(std::string("s") + std::to_string(Rng.below(10)));
    case Constraint::Kind::StringEq:
      return ParamValue(C.getString());
    case Constraint::Kind::EnumKind:
      return ParamValue(EnumVal{
          C.getEnumDef(),
          static_cast<unsigned>(Rng.below(C.getEnumDef()->getCases().size()))});
    case Constraint::Kind::EnumEq:
      return ParamValue(C.getEnumVal());
    case Constraint::Kind::ArrayOf: {
      if (C.getChildren().empty())
        return ParamValue(std::vector<ParamValue>{});
      auto Elem = solve(*C.getChildren().front(), Depth + 1);
      if (!Elem)
        return std::nullopt;
      return ParamValue(std::vector<ParamValue>{std::move(*Elem)});
    }
    case Constraint::Kind::ArrayExact: {
      std::vector<ParamValue> Elems;
      for (const ConstraintPtr &Child : C.getChildren()) {
        auto V = solve(*Child, Depth + 1);
        if (!V)
          return std::nullopt;
        Elems.push_back(std::move(*V));
      }
      return ParamValue(std::move(Elems));
    }
    case Constraint::Kind::OpaqueKind:
      return ParamValue(OpaqueVal{C.getString(), "synth-payload"});
    case Constraint::Kind::AnyOf:
      for (const ConstraintPtr &Child : C.getChildren())
        if (auto V = solve(*Child, Depth + 1))
          if (auto Whole = checked(C, std::move(*V)))
            return Whole;
      return std::nullopt;
    case Constraint::Kind::And: {
      if (C.getChildren().empty())
        return std::nullopt;
      // Solve the first conjunct, then check the whole conjunction.
      auto V = solve(*C.getChildren().front(), Depth + 1);
      return V ? checked(C, std::move(*V)) : std::nullopt;
    }
    case Constraint::Kind::Not: {
      // Try a few generic values and keep whatever the negation accepts.
      ParamValue Candidates[] = {
          ParamValue(TypePool[Rng.below(TypePool.size())]),
          ParamValue(IntVal{32, Signedness::Signless, 3}),
          ParamValue(std::string("neg")),
          ParamValue(AttrPool[Rng.below(AttrPool.size())])};
      for (ParamValue &V : Candidates)
        if (matches(C, V))
          return V;
      return std::nullopt;
    }
    case Constraint::Kind::Var:
      return std::nullopt;
    case Constraint::Kind::Cpp:
    case Constraint::Kind::Native:
    case Constraint::Kind::Named: {
      auto V = solve(*C.getChildren().front(), Depth + 1);
      return V ? checked(C, std::move(*V)) : std::nullopt;
    }
    }
    return std::nullopt;
  }

  //===------------------------------------------------------------------===//
  // Operation synthesis
  //===------------------------------------------------------------------===//

  Type typeFor(const ConstraintPtr &C) {
    if (auto V = solve(*C, 0))
      if (V->isType())
        return V->getType();
    return TypePool[Rng.below(TypePool.size())];
  }

  unsigned countFor(VariadicKind VK) {
    switch (VK) {
    case VariadicKind::Single:
      return 1;
    case VariadicKind::Optional:
      return static_cast<unsigned>(Rng.below(2));
    case VariadicKind::Variadic:
      return static_cast<unsigned>(Rng.below(3));
    }
    return 1;
  }

  Operation *synthesizeOp(const OpSpec &OS, std::vector<Value> &ValuePool,
                          unsigned Depth) {
    OperationState State(Ctx, OS.Def);
    for (const OperandSpec &RS : OS.Results)
      for (unsigned I = 0, N = countFor(RS.VK); I != N; ++I)
        State.ResultTypes.push_back(typeFor(RS.Constr));
    if (!ValuePool.empty())
      for (const OperandSpec &Od : OS.Operands)
        for (unsigned I = 0, N = countFor(Od.VK); I != N; ++I)
          State.Operands.push_back(ValuePool[Rng.below(ValuePool.size())]);
    for (const ParamSpec &AS : OS.Attributes) {
      if (auto V = solve(*AS.Constr, 0); V && V->isAttr())
        State.addAttribute(AS.Name, V->getAttr());
      else
        State.addAttribute(AS.Name, AttrPool[Rng.below(AttrPool.size())]);
    }

    std::vector<std::pair<const RegionSpec *, Region *>> PendingRegions;
    if (Depth < Opts.MaxRegionDepth)
      for (const RegionSpec &RS : OS.Regions)
        PendingRegions.emplace_back(&RS, State.addRegion());

    // Region bodies are built into the OperationState's regions before
    // creation; their blocks move into the op wholesale.
    for (auto &[RS, R] : PendingRegions) {
      Block *B = Block::create(Ctx);
      R->push_back(B);
      std::vector<Value> RegionPool = ValuePool;
      for (const OperandSpec &AS : RS->Args)
        for (unsigned I = 0, N = countFor(AS.VK); I != N; ++I)
          RegionPool.push_back(B->addArgument(typeFor(AS.Constr)));
      // A couple of nested ops, then the required terminator (if any).
      for (unsigned I = 0; I != 2 && !Spec.Ops.empty(); ++I) {
        const OpSpec &Nested = Spec.Ops[Rng.below(Spec.Ops.size())];
        Operation *Op = synthesizeOp(Nested, RegionPool, Depth + 1);
        B->push_back(Op);
        for (unsigned J = 0, N = Op->getNumResults(); J != N; ++J)
          RegionPool.push_back(Op->getResult(J));
      }
      if (!RS->TerminatorOpName.empty()) {
        if (const OpDefinition *TermDef =
                Ctx.resolveOpDef(RS->TerminatorOpName)) {
          OperationState TermState(Ctx, TermDef);
          B->push_back(Operation::create(TermState));
        }
      }
    }
    return Operation::create(State);
  }

  IRContext &Ctx;
  const DialectSpec &Spec;
  const ModuleSynthOptions &Opts;
  Lcg Rng;
  std::vector<Type> TypePool;
  std::vector<Attribute> AttrPool;
};

} // namespace

OwningOpRef irdl::synthesizeModule(IRContext &Ctx, const DialectSpec &Spec,
                                   const ModuleSynthOptions &Opts) {
  return Synthesizer(Ctx, Spec, Opts).run();
}
