//===- Region.h - Nested control-flow regions --------------------*- C++ -*-===//
///
/// \file
/// Regions hold a control-flow graph of blocks and attach to operations,
/// enabling hierarchical control flow (Section 2: "some extensions of SSA
/// allow operations to contain nested regions").
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_REGION_H
#define IRDL_IR_REGION_H

#include "ir/Block.h"

namespace irdl {

class Region {
public:
  /// A region attached to \p Parent (the common case: the inline region
  /// headers in an operation's allocation).
  explicit Region(Operation *Parent)
      : ParentOp(Parent), Ctx(Parent ? Parent->getContext() : nullptr) {}

  /// A detached region under construction (OperationState::addRegion);
  /// the context lets emplaceBlock allocate blocks before the owning op
  /// exists.
  explicit Region(IRContext &Ctx) : ParentOp(nullptr), Ctx(&Ctx) {}

  /// Drops every operand reference held by ops in this region (recursively)
  /// before the blocks are destroyed, so that deletion order does not
  /// matter even with cross-block references.
  ~Region();

  Operation *getParentOp() const { return ParentOp; }

  /// The context whose arena owns this region's blocks.
  IRContext *getContext() const { return Ctx; }

  using iterator = IntrusiveList<Block>::iterator;

  iterator begin() { return Blocks.begin(); }
  iterator end() { return Blocks.end(); }
  bool empty() const { return Blocks.empty(); }
  size_t getNumBlocks() const { return Blocks.size(); }

  Block &front() { return Blocks.front(); }
  Block &back() { return Blocks.back(); }

  /// Appends a fresh block (with one argument per type in \p ArgTypes)
  /// and returns it.
  Block &emplaceBlock(TypeRange ArgTypes = {});

  /// Inserts \p B (which must be detached) before \p Pos.
  iterator insert(iterator Pos, Block *B);
  void push_back(Block *B);

  /// Unlinks \p B without destroying it.
  void remove(Block *B);

  /// Unlinks \p B and returns its storage to the context arena.
  void erase(Block *B);

  /// Moves all blocks of \p Other to the end of this region.
  void takeBody(Region &Other);

  /// Recursively clears the operand lists of every nested operation.
  void dropAllReferences();

private:
  Operation *ParentOp;
  IRContext *Ctx;
  IntrusiveList<Block> Blocks;
};

/// A view over an operation's inline region storage. Regions live inside
/// the op's single allocation, so the view is just a pointer and a count.
class RegionRange {
public:
  RegionRange() = default;
  RegionRange(Region *Base, unsigned Count) : Base(Base), Count(Count) {}

  Region *begin() const { return Base; }
  Region *end() const { return Base + Count; }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  Region &operator[](unsigned Index) const {
    assert(Index < Count && "region index out of range");
    return Base[Index];
  }
  Region &front() const { return (*this)[0]; }
  Region &back() const { return (*this)[Count - 1]; }

private:
  Region *Base = nullptr;
  unsigned Count = 0;
};

// Operation members that need the complete Region/Block types. Declared in
// Operation.h; every IR traversal includes Region.h anyway.

inline Region &Operation::getRegion(unsigned Index) {
  assert(Index < NumRegionsVal && "region index out of range");
  return RegionStorage[Index];
}

inline RegionRange Operation::getRegions() const {
  return RegionRange(RegionStorage, NumRegionsVal);
}

template <typename FnT> void Operation::walk(FnT &&Callback) {
  Callback(this);
  for (Region &R : getRegions())
    for (Block &B : R)
      for (Operation &Op : B)
        Op.walk(Callback);
}

} // namespace irdl

#endif // IRDL_IR_REGION_H
