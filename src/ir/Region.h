//===- Region.h - Nested control-flow regions --------------------*- C++ -*-===//
///
/// \file
/// Regions hold a control-flow graph of blocks and attach to operations,
/// enabling hierarchical control flow (Section 2: "some extensions of SSA
/// allow operations to contain nested regions").
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_REGION_H
#define IRDL_IR_REGION_H

#include "ir/Block.h"

namespace irdl {

class Region {
public:
  explicit Region(Operation *Parent) : ParentOp(Parent) {}

  /// Drops every operand reference held by ops in this region (recursively)
  /// before the blocks are destroyed, so that deletion order does not
  /// matter even with cross-block references.
  ~Region();

  Operation *getParentOp() const { return ParentOp; }

  using iterator = IntrusiveList<Block>::iterator;

  iterator begin() { return Blocks.begin(); }
  iterator end() { return Blocks.end(); }
  bool empty() const { return Blocks.empty(); }
  size_t getNumBlocks() const { return Blocks.size(); }

  Block &front() { return Blocks.front(); }
  Block &back() { return Blocks.back(); }

  /// Appends a fresh block and returns it.
  Block &emplaceBlock();

  /// Inserts \p B (which must be detached) before \p Pos.
  iterator insert(iterator Pos, Block *B);
  void push_back(Block *B);

  /// Unlinks \p B without deleting it.
  void remove(Block *B);

  /// Unlinks and deletes \p B.
  void erase(Block *B);

  /// Moves all blocks of \p Other to the end of this region.
  void takeBody(Region &Other);

  /// Recursively clears the operand lists of every nested operation.
  void dropAllReferences();

private:
  Operation *ParentOp;
  IntrusiveList<Block> Blocks;
};

} // namespace irdl

#endif // IRDL_IR_REGION_H
