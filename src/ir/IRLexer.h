//===- IRLexer.h - Lexer for the textual IR format ---------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the MLIR-like textual IR syntax. Also reused by the
/// declarative-format op parsers, which consume the same token stream.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_IRLEXER_H
#define IRDL_IR_IRLEXER_H

#include "support/Diagnostics.h"
#include "support/SourceMgr.h"

#include <string>
#include <string_view>

namespace irdl {

struct IRToken {
  enum class Kind {
    Eof,
    Error,
    Identifier,   // foo, f32, i32
    Integer,      // 123 (no sign; '-' is a separate token)
    Float,        // 1.5, 2e10
    String,       // "..." (Spelling excludes quotes, unescaped)
    PercentId,    // %foo, %12, %12#3
    CaretId,      // ^bb0
    AtId,         // @symbol
    Bang,         // !
    Hash,         // #
    LParen,
    RParen,
    LBrace,
    RBrace,
    Less,
    Greater,
    LSquare,
    RSquare,
    Comma,
    Colon,
    Equal,
    Arrow, // ->
    Minus, // - (when not part of ->)
    Plus,
    Star,
    Dot,
    Question,
  };

  Kind K = Kind::Eof;
  /// Token text. For String it is the unescaped body; for PercentId /
  /// CaretId / AtId it excludes the sigil.
  std::string Spelling;
  SMLoc Loc;

  bool is(Kind Other) const { return K == Other; }
  bool isIdent(std::string_view Str) const {
    return K == Kind::Identifier && Spelling == Str;
  }
};

/// A single-token-lookahead lexer over a source buffer.
class IRLexer {
public:
  IRLexer(std::string_view Source, DiagnosticEngine &Diags);

  /// The current token.
  const IRToken &getToken() const { return Tok; }

  /// Advances to the next token and returns it.
  const IRToken &lex();

  /// Location just past the current token.
  SMLoc getCurrentLoc() const {
    return SMLoc::getFromPointer(Cur);
  }

private:
  IRToken lexImpl();
  IRToken makeToken(IRToken::Kind K, const char *Start);
  IRToken lexNumber(const char *Start);
  IRToken lexString(const char *Start);
  IRToken lexPrefixedIdent(const char *Start, IRToken::Kind K,
                           bool AllowHashSuffix);

  const char *Cur;
  const char *End;
  DiagnosticEngine &Diags;
  IRToken Tok;
};

} // namespace irdl

#endif // IRDL_IR_IRLEXER_H
