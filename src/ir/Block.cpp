//===- Block.cpp ----------------------------------------------------===//

#include "ir/Block.h"

#include "ir/Context.h"
#include "ir/OpArena.h"
#include "ir/Region.h"

#include <algorithm>

using namespace irdl;

//===----------------------------------------------------------------------===//
// Creation / destruction
//===----------------------------------------------------------------------===//

Block::Layout Block::computeLayout(unsigned ArgCapacity) {
  auto AlignTo = [](size_t Offset, size_t Align) {
    return (Offset + Align - 1) & ~(Align - 1);
  };
  Layout L;
  size_t Offset = sizeof(Block);
  Offset = AlignTo(Offset, alignof(detail::BlockArgumentImpl));
  L.ArgsOffset = Offset;
  Offset += ArgCapacity * sizeof(detail::BlockArgumentImpl);
  L.Bytes = Offset;
  return L;
}

Block *Block::create(IRContext &Ctx, TypeRange ArgTypes) {
  Layout L = computeLayout(static_cast<unsigned>(ArgTypes.size()));
  void *Mem = Ctx.getOpArena().allocate(L.Bytes, alignof(Block));
  return new (Mem) Block(Ctx, ArgTypes, L);
}

Block::Block(IRContext &Ctx, TypeRange ArgTypes, const Layout &L)
    : Ctx(&Ctx) {
  auto *Base = reinterpret_cast<std::byte *>(this);
  ArgStorage =
      reinterpret_cast<detail::BlockArgumentImpl *>(Base + L.ArgsOffset);
  NumArgsVal = ArgCapacity = static_cast<uint32_t>(ArgTypes.size());
  AllocBytes = static_cast<uint32_t>(L.Bytes);
  for (unsigned I = 0; I != NumArgsVal; ++I)
    new (ArgStorage + I) detail::BlockArgumentImpl(ArgTypes[I], this, I);
}

Block::~Block() {
  clear();
  for (unsigned I = NumArgsVal; I != 0; --I)
    ArgStorage[I - 1].~BlockArgumentImpl();
  if (!argsAreInline())
    Ctx->getOpArena().deallocate(
        ArgStorage, ArgCapacity * sizeof(detail::BlockArgumentImpl));
}

void Block::destroy() {
  OpArena &A = Ctx->getOpArena();
  uint32_t Bytes = AllocBytes;
  this->~Block();
  A.deallocate(this, Bytes);
}

void Block::erase() {
  if (ParentRegion)
    ParentRegion->remove(this);
  destroy();
}

void irdl::IntrusiveListTraits<Block>::deleteNode(Block *B) { B->destroy(); }

Operation *Block::getParentOp() const {
  return ParentRegion ? ParentRegion->getParentOp() : nullptr;
}

//===----------------------------------------------------------------------===//
// Arguments
//===----------------------------------------------------------------------===//

bool Block::argsAreInline() const {
  if (ArgCapacity == 0)
    return true;
  auto P = reinterpret_cast<uintptr_t>(ArgStorage);
  auto B = reinterpret_cast<uintptr_t>(this);
  return P >= B && P < B + AllocBytes;
}

void Block::growArgumentStorage(unsigned NewCapacity) {
  assert(NewCapacity > ArgCapacity && "not growing");
  OpArena &A = Ctx->getOpArena();
  auto *NewStorage = static_cast<detail::BlockArgumentImpl *>(
      A.allocate(NewCapacity * sizeof(detail::BlockArgumentImpl),
                 alignof(detail::BlockArgumentImpl)));
  // A BlockArgumentImpl is a value definition: its address is held by
  // every OpOperand using it, so it cannot move bytewise. Rebuild each
  // argument in the new array and retarget its uses one by one (set()
  // pushes onto the new impl's list head, so use order may change).
  for (unsigned I = 0; I != NumArgsVal; ++I) {
    detail::BlockArgumentImpl &Old = ArgStorage[I];
    new (NewStorage + I) detail::BlockArgumentImpl(Old.getType(), this, I);
    while (OpOperand *Use = Old.FirstUse)
      Use->set(Value(NewStorage + I));
    Old.~BlockArgumentImpl();
  }
  if (!argsAreInline())
    A.deallocate(ArgStorage,
                 ArgCapacity * sizeof(detail::BlockArgumentImpl));
  ArgStorage = NewStorage;
  ArgCapacity = NewCapacity;
}

Value Block::addArgument(Type Ty) {
  if (NumArgsVal == ArgCapacity)
    growArgumentStorage(std::max(4u, ArgCapacity * 2));
  new (ArgStorage + NumArgsVal)
      detail::BlockArgumentImpl(Ty, this, NumArgsVal);
  return Value(ArgStorage + NumArgsVal++);
}

void Block::eraseArgument(unsigned Index) {
  assert(Index < NumArgsVal && "argument index out of range");
  assert(Value(ArgStorage + Index).use_empty() &&
         "erasing a block argument that still has uses");
  ArgStorage[Index].~BlockArgumentImpl();
  // Slots cannot move bytewise (use lists hold their addresses): rebuild
  // each survivor one slot down with its re-computed index and retarget
  // its uses, exactly like argument growth.
  for (unsigned I = Index; I + 1 < NumArgsVal; ++I) {
    detail::BlockArgumentImpl &Src = ArgStorage[I + 1];
    new (ArgStorage + I) detail::BlockArgumentImpl(Src.getType(), this, I);
    while (OpOperand *Use = Src.FirstUse)
      Use->set(Value(ArgStorage + I));
    Src.~BlockArgumentImpl();
  }
  --NumArgsVal;
}

//===----------------------------------------------------------------------===//
// Operations
//===----------------------------------------------------------------------===//

Block::iterator Block::insert(iterator Pos, Operation *Op) {
  assert(!Op->getBlock() && "operation is already in a block");
  Op->setBlockInternal(this);
  return Ops.insert(Pos, Op);
}

void Block::push_back(Operation *Op) { insert(end(), Op); }

void Block::push_front(Operation *Op) { insert(begin(), Op); }

void Block::remove(Operation *Op) {
  assert(Op->getBlock() == this && "operation is not in this block");
  Op->setBlockInternal(nullptr);
  Ops.remove(Op);
}

Operation *Block::getTerminator() {
  if (Ops.empty())
    return nullptr;
  Operation &Last = Ops.back();
  return Last.isTerminator() ? &Last : nullptr;
}

SuccessorRange Block::getSuccessors() {
  if (Operation *Term = getTerminator())
    return Term->getSuccessors();
  return SuccessorRange();
}

Block *Block::splitBefore(iterator Pos) {
  assert(ParentRegion && "splitting a detached block");
  Block *NewBlock = Block::create(*Ctx);
  Region::iterator InsertPos(this);
  ++InsertPos;
  ParentRegion->insert(InsertPos, NewBlock);
  // Relink the tail [Pos, end) into the new block.
  while (Pos != end()) {
    Operation *Op = &*Pos;
    ++Pos;
    remove(Op);
    NewBlock->push_back(Op);
  }
  return NewBlock;
}

void Block::clear() {
  // Drop all operand references first so that ops may be deleted in any
  // order even with intra-block forward references or cycles.
  for (Operation &Op : Ops) {
    Op.setOperands({});
    Op.walk([](Operation *Nested) { Nested->setOperands({}); });
  }
  while (!Ops.empty()) {
    Operation *Op = &Ops.back();
    remove(Op);
    Op->destroy();
  }
}
