//===- Block.cpp ----------------------------------------------------===//

#include "ir/Block.h"

#include "ir/Region.h"

using namespace irdl;

Block::~Block() { clear(); }

Operation *Block::getParentOp() const {
  return ParentRegion ? ParentRegion->getParentOp() : nullptr;
}

std::vector<Value> Block::getArguments() const {
  std::vector<Value> Result;
  Result.reserve(Args.size());
  for (const auto &Arg : Args)
    Result.push_back(Value(Arg.get()));
  return Result;
}

std::vector<Type> Block::getArgumentTypes() const {
  std::vector<Type> Result;
  Result.reserve(Args.size());
  for (const auto &Arg : Args)
    Result.push_back(Arg->getType());
  return Result;
}

Value Block::addArgument(Type Ty) {
  Args.push_back(std::make_unique<detail::BlockArgumentImpl>(
      Ty, this, static_cast<unsigned>(Args.size())));
  return Value(Args.back().get());
}

void Block::eraseArgument(unsigned Index) {
  assert(Index < Args.size() && "argument index out of range");
  assert(Value(Args[Index].get()).use_empty() &&
         "erasing a block argument that still has uses");
  Args.erase(Args.begin() + Index);
  for (unsigned I = Index, E = Args.size(); I != E; ++I)
    Args[I]->Index = I;
}

Block::iterator Block::insert(iterator Pos, Operation *Op) {
  assert(!Op->getBlock() && "operation is already in a block");
  Op->setBlockInternal(this);
  return Ops.insert(Pos, Op);
}

void Block::push_back(Operation *Op) { insert(end(), Op); }

void Block::push_front(Operation *Op) { insert(begin(), Op); }

void Block::remove(Operation *Op) {
  assert(Op->getBlock() == this && "operation is not in this block");
  Op->setBlockInternal(nullptr);
  Ops.remove(Op);
}

Operation *Block::getTerminator() {
  if (Ops.empty())
    return nullptr;
  Operation &Last = Ops.back();
  return Last.isTerminator() ? &Last : nullptr;
}

std::vector<Block *> Block::getSuccessors() {
  if (Operation *Term = getTerminator()) {
    SuccessorRange Succs = Term->getSuccessors();
    return {Succs.begin(), Succs.end()};
  }
  return {};
}

Block *Block::splitBefore(iterator Pos) {
  assert(ParentRegion && "splitting a detached block");
  Block *NewBlock = new Block();
  Region::iterator InsertPos(this);
  ++InsertPos;
  ParentRegion->insert(InsertPos, NewBlock);
  // Relink the tail [Pos, end) into the new block.
  while (Pos != end()) {
    Operation *Op = &*Pos;
    ++Pos;
    remove(Op);
    NewBlock->push_back(Op);
  }
  return NewBlock;
}

void Block::clear() {
  // Drop all operand references first so that ops may be deleted in any
  // order even with intra-block forward references or cycles.
  for (Operation &Op : Ops) {
    Op.setOperands({});
    Op.walk([](Operation *Nested) { Nested->setOperands({}); });
  }
  while (!Ops.empty()) {
    Operation *Op = &Ops.back();
    remove(Op);
    Op->destroy();
  }
}
