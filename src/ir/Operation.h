//===- Operation.h - Generic SSA operations ---------------------*- C++ -*-===//
///
/// \file
/// The generic Operation: a named instruction with operands, results, named
/// attributes, successor blocks, and nested regions — MLIR's extensible op
/// model (Section 2 of the paper). An operation is a *single* sized
/// allocation: the operand, result, successor, and region storage is laid
/// out inline after the op header (the MLIR trailing-objects layout), and
/// the block comes from the owning IRContext's bump-pointer arena
/// (ir/OpArena.h). Operations are created detached and inserted into
/// blocks; the owning block's intrusive list manages their lifetime, and
/// erase()/destroy() return the block to the arena's free lists instead of
/// the heap. See docs/memory-layout.md for the layout diagram and the
/// ownership contract.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_OPERATION_H
#define IRDL_IR_OPERATION_H

#include "ir/Dialect.h"
#include "ir/Value.h"
#include "support/IntrusiveList.h"
#include "support/SourceMgr.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace irdl {

class Block;
class IRContext;
class Operation;
class Region;
class RegionRange;

/// A named attribute entry on an operation.
struct NamedAttribute {
  std::string Name;
  Attribute Attr;
};

/// A small sorted list of named attributes with map-like access.
class NamedAttrList {
public:
  NamedAttrList() = default;
  NamedAttrList(std::initializer_list<NamedAttribute> Init) {
    for (const NamedAttribute &NA : Init)
      set(NA.Name, NA.Attr);
  }

  /// Returns the attribute named \p Name or a null Attribute.
  Attribute get(std::string_view Name) const;

  /// Sets (inserting or replacing) \p Name to \p Attr.
  void set(std::string_view Name, Attribute Attr);

  /// Removes \p Name if present; returns true if it was removed.
  bool erase(std::string_view Name);

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  bool operator==(const NamedAttrList &RHS) const = default;

private:
  /// Kept sorted by name for deterministic printing.
  std::vector<NamedAttribute> Entries;
};

/// The resolved name of an operation: its definition, plus an owned full
/// name string only for unregistered operations — registered names alias
/// the definition's cached full name, so constructing an OperationName
/// (and therefore an Operation) performs no string copy.
class OperationName {
public:
  OperationName() = default;
  /*implicit*/ OperationName(const OpDefinition *Def) : Def(Def) {}
  OperationName(std::string UnregisteredName)
      : FullName(std::move(UnregisteredName)) {}

  const OpDefinition *getDef() const { return Def; }
  bool isRegistered() const { return Def != nullptr; }
  const std::string &str() const {
    return Def ? Def->getFullName() : FullName;
  }

  bool operator==(const OperationName &RHS) const {
    return str() == RHS.str();
  }

private:
  const OpDefinition *Def = nullptr;
  std::string FullName;
};

/// A view over an operation's operand storage yielding Values. Cheap to
/// copy; invalidated by any operand-list mutation on the operation.
class OperandRange {
public:
  OperandRange() = default;
  OperandRange(const OpOperand *Base, unsigned Count)
      : Base(Base), Count(Count) {}

  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Value;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    explicit iterator(const OpOperand *P) : P(P) {}
    Value operator*() const { return P->get(); }
    iterator &operator++() {
      ++P;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++P;
      return Tmp;
    }
    bool operator==(const iterator &RHS) const = default;

  private:
    const OpOperand *P = nullptr;
  };

  iterator begin() const { return iterator(Base); }
  iterator end() const { return iterator(Base + Count); }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  Value operator[](unsigned Index) const {
    assert(Index < Count && "operand index out of range");
    return Base[Index].get();
  }
  Value front() const { return (*this)[0]; }
  Value back() const { return (*this)[Count - 1]; }

  /// Materializes the range (for callers that need to outlive a
  /// mutation, e.g. erasing the op the range points into).
  std::vector<Value> vec() const { return {begin(), end()}; }

private:
  const OpOperand *Base = nullptr;
  unsigned Count = 0;
};

/// A view over an operation's result storage yielding Values.
class ResultRange {
public:
  ResultRange() = default;
  ResultRange(detail::OpResultImpl *Base, unsigned Count)
      : Base(Base), Count(Count) {}

  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Value;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    explicit iterator(detail::OpResultImpl *P) : P(P) {}
    Value operator*() const { return Value(P); }
    iterator &operator++() {
      ++P;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++P;
      return Tmp;
    }
    bool operator==(const iterator &RHS) const = default;

  private:
    detail::OpResultImpl *P = nullptr;
  };

  iterator begin() const { return iterator(Base); }
  iterator end() const { return iterator(Base + Count); }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  Value operator[](unsigned Index) const {
    assert(Index < Count && "result index out of range");
    return Value(Base + Index);
  }
  Value front() const { return (*this)[0]; }
  Value back() const { return (*this)[Count - 1]; }

  std::vector<Value> vec() const { return {begin(), end()}; }

private:
  detail::OpResultImpl *Base = nullptr;
  unsigned Count = 0;
};

/// A view over an operation's result storage yielding the result Types.
class ResultTypeRange {
public:
  ResultTypeRange() = default;
  ResultTypeRange(const detail::OpResultImpl *Base, unsigned Count)
      : Base(Base), Count(Count) {}

  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Type;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    explicit iterator(const detail::OpResultImpl *P) : P(P) {}
    Type operator*() const { return P->getType(); }
    iterator &operator++() {
      ++P;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++P;
      return Tmp;
    }
    bool operator==(const iterator &RHS) const = default;

  private:
    const detail::OpResultImpl *P = nullptr;
  };

  iterator begin() const { return iterator(Base); }
  iterator end() const { return iterator(Base + Count); }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  Type operator[](unsigned Index) const {
    assert(Index < Count && "result index out of range");
    return Base[Index].getType();
  }

  std::vector<Type> vec() const { return {begin(), end()}; }

private:
  const detail::OpResultImpl *Base = nullptr;
  unsigned Count = 0;
};

/// A view over successor-block storage (an operation's successor array,
/// or a block's terminator successors). Cheap to copy; invalidated when
/// the underlying operation is mutated or erased.
class SuccessorRange {
public:
  using iterator = Block *const *;

  SuccessorRange() = default;
  SuccessorRange(Block *const *Base, unsigned Count)
      : Base(Base), Count(Count) {}

  iterator begin() const { return Base; }
  iterator end() const { return Base + Count; }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  Block *operator[](unsigned Index) const {
    assert(Index < Count && "successor index out of range");
    return Base[Index];
  }
  Block *front() const { return (*this)[0]; }
  Block *back() const { return (*this)[Count - 1]; }

  /// Materializes the range (for callers that need to outlive a
  /// mutation, e.g. erasing the terminator the range points into).
  std::vector<Block *> vec() const { return {begin(), end()}; }

private:
  Block *const *Base = nullptr;
  unsigned Count = 0;
};

/// Aggregated construction parameters for an operation (mirrors
/// mlir::OperationState). Creation is context-aware: the context supplies
/// the arena the operation is allocated from, so every state names its
/// context up front. Regions added here are *moved into* the created
/// operation.
struct OperationState {
  IRContext *Ctx = nullptr;
  SMLoc Loc;
  OperationName Name;
  std::vector<Value> Operands;
  std::vector<Type> ResultTypes;
  NamedAttrList Attributes;
  std::vector<Block *> Successors;
  std::vector<std::unique_ptr<Region>> Regions;

  // Constructors/destructor out of line: Region is incomplete here.
  OperationState(IRContext &Ctx, OperationName Name);
  OperationState(IRContext &Ctx, OperationName Name, SMLoc Loc);
  ~OperationState();

  void addOperands(std::span<const Value> Vals) {
    Operands.insert(Operands.end(), Vals.begin(), Vals.end());
  }
  void addOperands(std::initializer_list<Value> Vals) {
    Operands.insert(Operands.end(), Vals);
  }
  void addTypes(std::span<const Type> Tys) {
    ResultTypes.insert(ResultTypes.end(), Tys.begin(), Tys.end());
  }
  void addTypes(std::initializer_list<Type> Tys) {
    ResultTypes.insert(ResultTypes.end(), Tys);
  }
  void addAttribute(std::string_view AttrName, Attribute Attr) {
    Attributes.set(AttrName, Attr);
  }
  void addSuccessor(Block *B) { Successors.push_back(B); }
  /// Adds a (possibly empty) region; its blocks will be transferred to the
  /// operation on creation.
  Region *addRegion();
};

/// A generic SSA operation.
///
/// Memory layout (one arena allocation):
///
///   [ Operation header | OpResultImpl x NumResults
///     | OpOperand x OperandCapacity | Block* x NumSuccessors
///     | Region x NumRegions ]
///
/// Result/successor/region counts are fixed at creation; the operand list
/// may grow past its inline capacity, in which case the operand array
/// alone moves to a fresh arena block (the header keeps pointing at the
/// live array, so accessors never branch on the storage mode).
class Operation final : public IntrusiveListNode<Operation> {
public:
  /// Creates a detached operation from the context's arena, taking the
  /// bodies of any regions added to \p State. The caller (usually a Block
  /// insertion or OpBuilder) is responsible for its eventual ownership;
  /// destruction must go through erase()/destroy(), never `delete`.
  static Operation *create(OperationState &State);

  /// Destroys a detached operation: runs destructors and returns its
  /// storage to the context arena's free lists. All results must be
  /// unused.
  void destroy();

  //===------------------------------------------------------------------===//
  // Identity
  //===------------------------------------------------------------------===//

  const OperationName &getName() const { return Name; }
  const OpDefinition *getDef() const { return Name.getDef(); }
  bool isRegistered() const { return Name.isRegistered(); }
  SMLoc getLoc() const { return Loc; }
  void setLoc(SMLoc L) { Loc = L; }

  /// The context whose arena owns this operation's storage.
  IRContext *getContext() const { return Ctx; }

  /// Returns true if this op may only terminate a block.
  bool isTerminator() const {
    return Name.getDef() && Name.getDef()->isTerminator();
  }

  //===------------------------------------------------------------------===//
  // Operands
  //===------------------------------------------------------------------===//

  unsigned getNumOperands() const { return NumOperandsVal; }
  Value getOperand(unsigned Index) const {
    assert(Index < NumOperandsVal && "operand index out of range");
    return OperandStorage[Index].get();
  }
  void setOperand(unsigned Index, Value V) {
    assert(Index < NumOperandsVal && "operand index out of range");
    OperandStorage[Index].set(V);
  }
  OpOperand &getOpOperand(unsigned Index) {
    assert(Index < NumOperandsVal && "operand index out of range");
    return OperandStorage[Index];
  }
  OperandRange getOperands() const {
    return OperandRange(OperandStorage, NumOperandsVal);
  }

  /// Replaces the full operand list.
  void setOperands(std::span<const Value> NewOperands);
  void setOperands(std::initializer_list<Value> NewOperands) {
    setOperands(std::span<const Value>(NewOperands.begin(),
                                       NewOperands.size()));
  }

  /// Removes the operand at \p Index.
  void eraseOperand(unsigned Index);

  /// Appends an operand.
  void addOperand(Value V);

  //===------------------------------------------------------------------===//
  // Results
  //===------------------------------------------------------------------===//

  unsigned getNumResults() const { return NumResultsVal; }
  Value getResult(unsigned Index) const {
    assert(Index < NumResultsVal && "result index out of range");
    return Value(ResultStorage + Index);
  }
  ResultRange getResults() const {
    return ResultRange(ResultStorage, NumResultsVal);
  }
  ResultTypeRange getResultTypes() const {
    return ResultTypeRange(ResultStorage, NumResultsVal);
  }

  /// True if no result has any use.
  bool use_empty() const;

  /// Replaces all uses of this op's results with \p NewValues (same arity).
  void replaceAllUsesWith(std::span<const Value> NewValues);
  void replaceAllUsesWith(std::initializer_list<Value> NewValues) {
    replaceAllUsesWith(
        std::span<const Value>(NewValues.begin(), NewValues.size()));
  }
  /// Convenience overload: the replacement values of another operation.
  void replaceAllUsesWith(ResultRange NewValues);

  //===------------------------------------------------------------------===//
  // Attributes
  //===------------------------------------------------------------------===//

  const NamedAttrList &getAttrs() const { return Attrs; }
  Attribute getAttr(std::string_view AttrName) const {
    return Attrs.get(AttrName);
  }
  void setAttr(std::string_view AttrName, Attribute Attr) {
    Attrs.set(AttrName, Attr);
  }
  bool removeAttr(std::string_view AttrName) { return Attrs.erase(AttrName); }

  //===------------------------------------------------------------------===//
  // Successors
  //===------------------------------------------------------------------===//

  unsigned getNumSuccessors() const { return NumSuccessorsVal; }
  Block *getSuccessor(unsigned Index) const {
    assert(Index < NumSuccessorsVal && "successor index out of range");
    return SuccessorStorage[Index];
  }
  void setSuccessor(unsigned Index, Block *B) {
    assert(Index < NumSuccessorsVal && "successor index out of range");
    SuccessorStorage[Index] = B;
  }
  SuccessorRange getSuccessors() const {
    return SuccessorRange(SuccessorStorage, NumSuccessorsVal);
  }

  //===------------------------------------------------------------------===//
  // Regions
  //===------------------------------------------------------------------===//

  unsigned getNumRegions() const { return NumRegionsVal; }
  /// Defined inline in Region.h (needs the complete Region type).
  Region &getRegion(unsigned Index);
  RegionRange getRegions() const;

  //===------------------------------------------------------------------===//
  // Position
  //===------------------------------------------------------------------===//

  Block *getBlock() const { return ParentBlock; }
  void setBlockInternal(Block *B) { ParentBlock = B; }

  /// Returns the op owning the region this op lives in, or null.
  Operation *getParentOp() const;

  /// Unlinks this op from its block (ownership passes to the caller).
  void removeFromBlock();

  /// Unlinks and destroys this op, returning its storage to the context
  /// arena. All results must be unused.
  void erase();

  //===------------------------------------------------------------------===//
  // Traversal & verification
  //===------------------------------------------------------------------===//

  /// Visits this op and all nested ops, pre-order. Templated visitor: the
  /// callable is statically dispatched (no std::function allocation per
  /// walk). Defined inline in Region.h, which callers need anyway to
  /// traverse the IR.
  template <typename FnT> void walk(FnT &&Callback);

  /// True if no operation nested within this op uses a value defined
  /// outside of it (MLIR's IsolatedFromAbove, computed structurally).
  /// Isolated ops are the unit of parallel pass execution: transforming
  /// them concurrently cannot race on shared use-def chains.
  bool isIsolatedFromAbove() const;

  /// Runs structural verification and all registered verifiers on this op
  /// and everything nested in it.
  LogicalResult verify(DiagnosticEngine &Diags);

  /// Prints in textual form (convenience; see Printer.h for options).
  std::string str() const;

private:
  /// Byte offsets of the trailing arrays within one allocation.
  struct Layout {
    size_t ResultsOffset;
    size_t OperandsOffset;
    size_t SuccessorsOffset;
    size_t RegionsOffset;
    size_t Bytes;
  };
  static Layout computeLayout(unsigned NumResults, unsigned OperandCapacity,
                              unsigned NumSuccessors, unsigned NumRegions);

  Operation(OperationState &State, const Layout &L);
  ~Operation();

  /// Moves the operand array to a fresh arena block of \p NewCapacity
  /// slots (use lists are relinked; use order within a value's list may
  /// change).
  void growOperandStorage(unsigned NewCapacity);

  /// True when the operand array still lives inside the op's own
  /// allocation (vs. a separate arena block after growth).
  bool operandsAreInline() const;

  OperationName Name;
  SMLoc Loc;
  NamedAttrList Attrs;
  IRContext *Ctx = nullptr;
  Block *ParentBlock = nullptr;

  // The trailing arrays. All four point into this op's allocation at
  // creation; OperandStorage may later point at a separate arena block
  // if the operand list outgrows its inline capacity.
  detail::OpResultImpl *ResultStorage = nullptr;
  OpOperand *OperandStorage = nullptr;
  Block **SuccessorStorage = nullptr;
  Region *RegionStorage = nullptr;

  uint32_t NumOperandsVal = 0;
  uint32_t OperandCapacity = 0;
  uint32_t NumResultsVal = 0;
  uint32_t NumSuccessorsVal = 0;
  uint32_t NumRegionsVal = 0;
  /// Size of the op's own allocation, for returning it to the arena.
  uint32_t AllocBytes = 0;
};

/// Operations are arena-allocated: intrusive lists must destroy them via
/// destroy(), not `delete`.
template <> struct IntrusiveListTraits<Operation> {
  static void deleteNode(Operation *Op);
};

} // namespace irdl

#endif // IRDL_IR_OPERATION_H
