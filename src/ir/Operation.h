//===- Operation.h - Generic SSA operations ---------------------*- C++ -*-===//
///
/// \file
/// The generic Operation: a named instruction with operands, results, named
/// attributes, successor blocks, and nested regions — MLIR's extensible op
/// model (Section 2 of the paper). Operations are allocated detached and
/// inserted into blocks; the owning block's intrusive list manages their
/// lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_OPERATION_H
#define IRDL_IR_OPERATION_H

#include "ir/Dialect.h"
#include "ir/Value.h"
#include "support/IntrusiveList.h"
#include "support/SourceMgr.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace irdl {

class Block;
class Region;

/// A named attribute entry on an operation.
struct NamedAttribute {
  std::string Name;
  Attribute Attr;
};

/// A small sorted list of named attributes with map-like access.
class NamedAttrList {
public:
  NamedAttrList() = default;
  NamedAttrList(std::initializer_list<NamedAttribute> Init) {
    for (const NamedAttribute &NA : Init)
      set(NA.Name, NA.Attr);
  }

  /// Returns the attribute named \p Name or a null Attribute.
  Attribute get(std::string_view Name) const;

  /// Sets (inserting or replacing) \p Name to \p Attr.
  void set(std::string_view Name, Attribute Attr);

  /// Removes \p Name if present; returns true if it was removed.
  bool erase(std::string_view Name);

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  auto begin() const { return Entries.begin(); }
  auto end() const { return Entries.end(); }

  bool operator==(const NamedAttrList &RHS) const = default;

private:
  /// Kept sorted by name for deterministic printing.
  std::vector<NamedAttribute> Entries;
};

/// The resolved name of an operation: its definition, plus the full name
/// string for unregistered operations.
class OperationName {
public:
  OperationName() = default;
  /*implicit*/ OperationName(const OpDefinition *Def)
      : Def(Def), FullName(Def->getFullName()) {}
  OperationName(std::string UnregisteredName)
      : FullName(std::move(UnregisteredName)) {}

  const OpDefinition *getDef() const { return Def; }
  bool isRegistered() const { return Def != nullptr; }
  const std::string &str() const { return FullName; }

  bool operator==(const OperationName &RHS) const {
    return FullName == RHS.FullName;
  }

private:
  const OpDefinition *Def = nullptr;
  std::string FullName;
};

/// Aggregated construction parameters for an operation (mirrors
/// mlir::OperationState). Regions added here are *moved into* the created
/// operation.
struct OperationState {
  SMLoc Loc;
  OperationName Name;
  std::vector<Value> Operands;
  std::vector<Type> ResultTypes;
  NamedAttrList Attributes;
  std::vector<Block *> Successors;
  std::vector<std::unique_ptr<Region>> Regions;

  // Constructors/destructor out of line: Region is incomplete here.
  OperationState(OperationName Name);
  OperationState(OperationName Name, SMLoc Loc);
  ~OperationState();

  void addOperands(std::initializer_list<Value> Vals) {
    Operands.insert(Operands.end(), Vals);
  }
  void addTypes(std::initializer_list<Type> Tys) {
    ResultTypes.insert(ResultTypes.end(), Tys);
  }
  void addAttribute(std::string_view AttrName, Attribute Attr) {
    Attributes.set(AttrName, Attr);
  }
  void addSuccessor(Block *B) { Successors.push_back(B); }
  /// Adds a (possibly empty) region; its blocks will be transferred to the
  /// operation on creation.
  Region *addRegion();
};

/// A generic SSA operation.
class Operation : public IntrusiveListNode<Operation> {
public:
  /// Creates a detached operation, taking the bodies of any regions added
  /// to \p State. The caller (usually a Block insertion or OpBuilder) is
  /// responsible for its eventual ownership.
  static Operation *create(OperationState &State);

  ~Operation();

  //===------------------------------------------------------------------===//
  // Identity
  //===------------------------------------------------------------------===//

  const OperationName &getName() const { return Name; }
  const OpDefinition *getDef() const { return Name.getDef(); }
  bool isRegistered() const { return Name.isRegistered(); }
  SMLoc getLoc() const { return Loc; }
  void setLoc(SMLoc L) { Loc = L; }

  /// Returns true if this op may only terminate a block.
  bool isTerminator() const {
    return Name.getDef() && Name.getDef()->isTerminator();
  }

  //===------------------------------------------------------------------===//
  // Operands
  //===------------------------------------------------------------------===//

  unsigned getNumOperands() const { return Operands.size(); }
  Value getOperand(unsigned Index) const {
    assert(Index < Operands.size() && "operand index out of range");
    return Operands[Index]->get();
  }
  void setOperand(unsigned Index, Value V) {
    assert(Index < Operands.size() && "operand index out of range");
    Operands[Index]->set(V);
  }
  OpOperand &getOpOperand(unsigned Index) {
    assert(Index < Operands.size() && "operand index out of range");
    return *Operands[Index];
  }
  std::vector<Value> getOperands() const;

  /// Replaces the full operand list.
  void setOperands(const std::vector<Value> &NewOperands);

  /// Removes the operand at \p Index.
  void eraseOperand(unsigned Index);

  /// Appends an operand.
  void addOperand(Value V);

  //===------------------------------------------------------------------===//
  // Results
  //===------------------------------------------------------------------===//

  unsigned getNumResults() const { return Results.size(); }
  Value getResult(unsigned Index) const {
    assert(Index < Results.size() && "result index out of range");
    return Value(Results[Index].get());
  }
  std::vector<Value> getResults() const;
  std::vector<Type> getResultTypes() const;

  /// True if no result has any use.
  bool use_empty() const;

  /// Replaces all uses of this op's results with \p NewValues (same arity).
  void replaceAllUsesWith(const std::vector<Value> &NewValues);

  //===------------------------------------------------------------------===//
  // Attributes
  //===------------------------------------------------------------------===//

  const NamedAttrList &getAttrs() const { return Attrs; }
  Attribute getAttr(std::string_view AttrName) const {
    return Attrs.get(AttrName);
  }
  void setAttr(std::string_view AttrName, Attribute Attr) {
    Attrs.set(AttrName, Attr);
  }
  bool removeAttr(std::string_view AttrName) { return Attrs.erase(AttrName); }

  //===------------------------------------------------------------------===//
  // Successors
  //===------------------------------------------------------------------===//

  unsigned getNumSuccessors() const { return Successors.size(); }
  Block *getSuccessor(unsigned Index) const {
    assert(Index < Successors.size() && "successor index out of range");
    return Successors[Index];
  }
  void setSuccessor(unsigned Index, Block *B) {
    assert(Index < Successors.size() && "successor index out of range");
    Successors[Index] = B;
  }
  const std::vector<Block *> &getSuccessors() const { return Successors; }

  //===------------------------------------------------------------------===//
  // Regions
  //===------------------------------------------------------------------===//

  unsigned getNumRegions() const { return Regions.size(); }
  Region &getRegion(unsigned Index) {
    assert(Index < Regions.size() && "region index out of range");
    return *Regions[Index];
  }
  const std::vector<std::unique_ptr<Region>> &getRegions() const {
    return Regions;
  }

  //===------------------------------------------------------------------===//
  // Position
  //===------------------------------------------------------------------===//

  Block *getBlock() const { return ParentBlock; }
  void setBlockInternal(Block *B) { ParentBlock = B; }

  /// Returns the op owning the region this op lives in, or null.
  Operation *getParentOp() const;

  /// Unlinks this op from its block (ownership passes to the caller).
  void removeFromBlock();

  /// Unlinks and deletes this op. All results must be unused.
  void erase();

  //===------------------------------------------------------------------===//
  // Traversal & verification
  //===------------------------------------------------------------------===//

  /// Visits this op and all nested ops, pre-order.
  void walk(const std::function<void(Operation *)> &Callback);

  /// True if no operation nested within this op uses a value defined
  /// outside of it (MLIR's IsolatedFromAbove, computed structurally).
  /// Isolated ops are the unit of parallel pass execution: transforming
  /// them concurrently cannot race on shared use-def chains.
  bool isIsolatedFromAbove() const;

  /// Runs structural verification and all registered verifiers on this op
  /// and everything nested in it.
  LogicalResult verify(DiagnosticEngine &Diags);

  /// Prints in textual form (convenience; see Printer.h for options).
  std::string str() const;

private:
  Operation(OperationState &State);

  OperationName Name;
  SMLoc Loc;
  std::vector<std::unique_ptr<OpOperand>> Operands;
  std::vector<std::unique_ptr<detail::OpResultImpl>> Results;
  NamedAttrList Attrs;
  std::vector<Block *> Successors;
  std::vector<std::unique_ptr<Region>> Regions;
  Block *ParentBlock = nullptr;
};

} // namespace irdl

#endif // IRDL_IR_OPERATION_H
