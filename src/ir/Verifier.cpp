//===- Verifier.cpp -------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"
#include "support/Metrics.h"
#include "support/Statistic.h"
#include "support/Threading.h"
#include "support/Timing.h"

#include <algorithm>

using namespace irdl;

IRDL_STATISTIC(Verifier, NumVerifierRuns,
               "entry-point structural verifications");
IRDL_STATISTIC(Verifier, NumOpsVerified,
               "operations structurally verified");
IRDL_STATISTIC(Verifier, NumParallelVerifierRuns,
               "entry-point verifications that fanned out over threads");

//===----------------------------------------------------------------------===//
// DominanceInfo
//===----------------------------------------------------------------------===//

namespace {
/// Reverse post-order over the blocks of a region, from the entry block.
/// Unreachable blocks are appended at the end (they dominate nothing).
std::vector<Block *> computeRPO(Region *R) {
  std::vector<Block *> PostOrder;
  std::unordered_map<Block *, bool> Visited;
  // Iterative DFS.
  if (!R->empty()) {
    std::vector<std::pair<Block *, unsigned>> Stack;
    Stack.emplace_back(&R->front(), 0);
    Visited[&R->front()] = true;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      SuccessorRange Succs = B->getSuccessors();
      if (NextSucc < Succs.size()) {
        Block *S = Succs[NextSucc++];
        if (!Visited[S]) {
          Visited[S] = true;
          Stack.emplace_back(S, 0);
        }
        continue;
      }
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  for (Block &B : *R)
    if (!Visited[&B])
      PostOrder.push_back(&B);
  return PostOrder;
}
} // namespace

void DominanceInfo::computeRegion(Region *R) {
  if (Processed[R])
    return;
  Processed[R] = true;

  std::vector<Block *> RPO = computeRPO(R);
  std::unordered_map<Block *, unsigned> Order;
  for (unsigned I = 0, E = RPO.size(); I != E; ++I)
    Order[RPO[I]] = I;

  // Predecessor map.
  std::unordered_map<Block *, std::vector<Block *>> Preds;
  for (Block &B : *R)
    for (Block *S : B.getSuccessors())
      Preds[S].push_back(&B);

  if (RPO.empty())
    return;
  Block *Entry = RPO.front();
  IDom[Entry] = Entry;

  auto Intersect = [&](Block *A, Block *B) {
    while (A != B) {
      while (Order[A] > Order[B]) {
        A = IDom[A];
      }
      while (Order[B] > Order[A]) {
        B = IDom[B];
      }
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Block *B : RPO) {
      if (B == Entry)
        continue;
      Block *NewIDom = nullptr;
      for (Block *P : Preds[B]) {
        if (!IDom.count(P))
          continue;
        NewIDom = NewIDom ? Intersect(NewIDom, P) : P;
      }
      if (!NewIDom) {
        // Unreachable block: treat the entry as its dominator so lookups
        // terminate; dominance queries against it conservatively fail.
        NewIDom = Entry;
      }
      auto It = IDom.find(B);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool DominanceInfo::dominates(Block *A, Block *B) {
  assert(A->getParent() == B->getParent() &&
         "dominance query across regions");
  computeRegion(A->getParent());
  Block *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    auto It = IDom.find(Cur);
    if (It == IDom.end() || It->second == Cur)
      return Cur == A;
    Cur = It->second;
  }
}

bool DominanceInfo::properlyDominates(Value V, Operation *User) {
  Block *DefBlock = V.getParentBlock();
  if (!DefBlock)
    return false;
  Region *DefRegion = DefBlock->getParent();

  // Hoist the user up until it lives in the same region as the definition
  // (values are visible inside nested regions).
  Operation *ScopedUser = User;
  while (ScopedUser && ScopedUser->getBlock() &&
         ScopedUser->getBlock()->getParent() != DefRegion)
    ScopedUser = ScopedUser->getParentOp();
  if (!ScopedUser || !ScopedUser->getBlock())
    return false;
  Block *UseBlock = ScopedUser->getBlock();

  if (DefBlock == UseBlock) {
    // Block arguments dominate every op in the block.
    if (V.isBlockArgument())
      return true;
    Operation *DefOp = V.getDefiningOp();
    if (DefOp == ScopedUser)
      // An op does not dominate itself — unless the original user was
      // nested inside one of its regions... which would be a use-before-
      // def of its own result; reject.
      return false;
    // Scan forward from the def to find the user.
    for (Operation *Cur = DefOp->getNextNode(); Cur;
         Cur = Cur->getNextNode())
      if (Cur == ScopedUser)
        return true;
    return false;
  }
  return dominates(DefBlock, UseBlock);
}

//===----------------------------------------------------------------------===//
// Structural verification
//===----------------------------------------------------------------------===//

namespace {
class Verifier {
public:
  Verifier(DiagnosticEngine &Diags) : Diags(Diags) {}

  LogicalResult verify(Operation *Op) {
    // Per-function latency distribution: isolated-from-above ops are the
    // function-like grain, and both the sequential recursion and the
    // parallel driver pass through here for each of them.
    if (metricsEnabled() && Op->isIsolatedFromAbove()) {
      static Histogram &FuncLatency = MetricsRegistry::instance().getHistogram(
          "irdl_verify_function_duration_ns",
          "wall time verifying one isolated-from-above operation");
      uint64_t Begin = steadyNowNs();
      LogicalResult Result = verifyImpl(Op);
      FuncLatency.record(steadyNowNs() - Begin);
      return Result;
    }
    return verifyImpl(Op);
  }

  /// Verifies \p Op without recursing into its regions (the parallel
  /// driver checks the root itself first, then fans the children out).
  LogicalResult verifyShallow(Operation *Op) { return verifyOpItself(Op); }

private:
  LogicalResult verifyImpl(Operation *Op) {
    if (failed(verifyOpItself(Op)))
      return failure();
    for (Region &R : Op->getRegions())
      if (failed(verifyRegion(R)))
        return failure();
    return success();
  }

  LogicalResult verifyOpItself(Operation *Op) {
    ++NumOpsVerified;
    IRContext *Ctx = nullptr;
    for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
      if (!Op->getResult(I).getType()) {
        Diags.emitError(Op->getLoc(), "operation '" + Op->getName().str() +
                                          "' has a null result type");
        return failure();
      }

    const OpDefinition *Def = Op->getDef();
    if (Def)
      Ctx = Def->getDialect()->getContext();

    if (!Def) {
      // Unregistered operations are only structural; acceptability was
      // decided at creation/parse time.
    } else {
      if (auto ExpectedSucc = Def->getNumSuccessors()) {
        if (Op->getNumSuccessors() != *ExpectedSucc) {
          Diags.emitError(Op->getLoc(),
                          "'" + Op->getName().str() + "' expects " +
                              std::to_string(*ExpectedSucc) +
                              " successors but has " +
                              std::to_string(Op->getNumSuccessors()));
          return failure();
        }
      }
    }

    if (Op->getNumSuccessors() != 0 && !Op->isTerminator()) {
      Diags.emitError(Op->getLoc(),
                      "only terminator operations may have successors");
      return failure();
    }

    if (Op->isTerminator() && Op->getBlock() &&
        Op->getBlock()->getTerminator() != Op) {
      Diags.emitError(Op->getLoc(), "terminator '" + Op->getName().str() +
                                        "' must be the last operation of "
                                        "its block");
      return failure();
    }

    // Successors must be blocks of the same region.
    if (Op->getNumSuccessors()) {
      Region *Parent =
          Op->getBlock() ? Op->getBlock()->getParent() : nullptr;
      for (unsigned I = 0, E = Op->getNumSuccessors(); I != E; ++I) {
        Block *Succ = Op->getSuccessor(I);
        if (!Succ || Succ->getParent() != Parent) {
          Diags.emitError(Op->getLoc(),
                          "successor does not belong to the same region");
          return failure();
        }
      }
    }

    // SSA dominance for each operand.
    for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I) {
      Value V = Op->getOperand(I);
      if (!V) {
        Diags.emitError(Op->getLoc(), "operation '" + Op->getName().str() +
                                          "' has a null operand");
        return failure();
      }
      if (!Dom.properlyDominates(V, Op)) {
        Diags.emitError(Op->getLoc(),
                        "operand #" + std::to_string(I) + " of '" +
                            Op->getName().str() +
                            "' does not dominate its use");
        return failure();
      }
    }

    // Registered (IRDL-generated or native) verifier.
    if (Def && Def->getVerifier())
      if (failed(Def->getVerifier()(Op, Diags)))
        return failure();

    (void)Ctx;
    return success();
  }

  LogicalResult verifyRegion(Region &R) {
    bool MultiBlock = R.getNumBlocks() > 1;
    for (Block &B : R) {
      if (MultiBlock) {
        if (B.empty() || !B.back().isTerminator()) {
          SMLoc Loc = B.empty() ? SMLoc() : B.back().getLoc();
          Diags.emitError(Loc, "block in a multi-block region must end "
                               "with a terminator operation");
          return failure();
        }
      }
      for (Operation &Op : B)
        if (failed(verify(&Op)))
          return failure();
    }
    return success();
  }

  DiagnosticEngine &Diags;
  DominanceInfo Dom;
};

/// The parallel driver preserves the sequential diagnostic stream only
/// when the root's regions are single-block (no inter-block terminator
/// checks interleave with child verification) and there is enough work
/// to fan out.
bool canVerifyChildrenInParallel(Operation *Op) {
  size_t NumChildren = 0;
  for (Region &R : Op->getRegions()) {
    if (R.getNumBlocks() > 1)
      return false;
    if (!R.empty())
      NumChildren += R.front().getNumOps();
  }
  return NumChildren >= 2;
}

/// Parallel verification at top-level-op granularity: the root is checked
/// shallowly first (exactly what a sequential run does before recursing),
/// then each direct child is verified recursively on the pool into a
/// private DiagnosticEngine with its own DominanceInfo. Replaying the
/// engines in child order — and stopping after the first failed child —
/// reproduces the fail-fast sequential output byte for byte.
LogicalResult verifyOpParallel(Operation *Root, DiagnosticEngine &Diags) {
  ++NumParallelVerifierRuns;
  if (failed(Verifier(Diags).verifyShallow(Root)))
    return failure();

  std::vector<Operation *> Children;
  for (Region &R : Root->getRegions())
    if (!R.empty())
      for (Operation &Op : R.front())
        Children.push_back(&Op);

  std::vector<DiagnosticEngine> Engines(Children.size());
  std::vector<char> Failed(Children.size(), 0);
  parallelFor(0, Children.size(), [&](size_t I) {
    Failed[I] = failed(Verifier(Engines[I]).verify(Children[I]));
  });

  for (size_t I = 0, E = Children.size(); I != E; ++I) {
    Diags.replayAll(Engines[I]);
    if (Failed[I])
      return failure();
  }
  return success();
}
} // namespace

LogicalResult irdl::verifyOpsIncremental(const std::vector<Operation *> &Ops,
                                         DiagnosticEngine &Diags) {
  IRDL_TIME_SCOPE("verify-incremental");
  if (isMultithreadingEnabled() && Ops.size() >= 2) {
    ++NumParallelVerifierRuns;
    std::vector<DiagnosticEngine> Engines(Ops.size());
    std::vector<char> Failed(Ops.size(), 0);
    parallelFor(0, Ops.size(), [&](size_t I) {
      Failed[I] = failed(Verifier(Engines[I]).verify(Ops[I]));
    });
    for (size_t I = 0, E = Ops.size(); I != E; ++I) {
      Diags.replayAll(Engines[I]);
      if (Failed[I])
        return failure();
    }
    return success();
  }
  for (Operation *Op : Ops)
    if (failed(Verifier(Diags).verify(Op)))
      return failure();
  return success();
}

LogicalResult irdl::verifyOp(Operation *Op, DiagnosticEngine &Diags) {
  IRDL_TIME_SCOPE("verify");
  ++NumVerifierRuns;
  if (isMultithreadingEnabled() && canVerifyChildrenInParallel(Op))
    return verifyOpParallel(Op, Diags);
  return Verifier(Diags).verify(Op);
}

LogicalResult Operation::verify(DiagnosticEngine &Diags) {
  return verifyOp(this, Diags);
}
