//===- Cloning.cpp --------------------------------------------------===//

#include "ir/Cloning.h"

#include "ir/Block.h"
#include "ir/Region.h"

using namespace irdl;

void irdl::cloneRegionInto(Region &From, Region &To, IRMapping &Mapper) {
  // First create all blocks and their arguments so forward references
  // (successors, cross-block value uses) resolve.
  for (Block &B : From) {
    Block *NewBlock = Block::create(*To.getContext());
    To.push_back(NewBlock);
    Mapper.map(&B, NewBlock);
    for (unsigned I = 0, E = B.getNumArguments(); I != E; ++I) {
      Value NewArg = NewBlock->addArgument(B.getArgument(I).getType());
      Mapper.map(B.getArgument(I), NewArg);
    }
  }
  // Then clone the operations.
  for (Block &B : From) {
    Block *NewBlock = Mapper.lookupOrDefault(&B);
    for (Operation &Op : B)
      NewBlock->push_back(cloneOp(&Op, Mapper));
  }
}

Operation *irdl::cloneOp(Operation *Op, IRMapping &Mapper) {
  OperationState State(*Op->getContext(), Op->getName(), Op->getLoc());
  for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I)
    State.Operands.push_back(Mapper.lookupOrDefault(Op->getOperand(I)));
  for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
    State.ResultTypes.push_back(Op->getResult(I).getType());
  State.Attributes = Op->getAttrs();
  for (unsigned I = 0, E = Op->getNumSuccessors(); I != E; ++I)
    State.Successors.push_back(
        Mapper.lookupOrDefault(Op->getSuccessor(I)));
  for (unsigned I = 0, E = Op->getNumRegions(); I != E; ++I) {
    Region *NewRegion = State.addRegion();
    cloneRegionInto(Op->getRegion(I), *NewRegion, Mapper);
  }

  Operation *Clone = Operation::create(State);
  for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
    Mapper.map(Op->getResult(I), Clone->getResult(I));
  return Clone;
}

Operation *irdl::cloneOp(Operation *Op) {
  IRMapping Mapper;
  return cloneOp(Op, Mapper);
}
