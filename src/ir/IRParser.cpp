//===- IRParser.cpp -------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"
#include "support/Metrics.h"
#include "support/Statistic.h"
#include "support/StringExtras.h"
#include "support/Timing.h"

#include <cmath>
#include <cstdlib>
#include <map>

using namespace irdl;

IRDL_STATISTIC(IRParser, NumBuffersParsed,
               "textual IR buffers parsed end to end");

namespace irdl {

/// The recursive-descent parser for the textual IR format.
class IRParserImpl {
public:
  IRParserImpl(IRContext &Ctx, std::string_view Source,
               DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags), Lex(Source, Diags) {}

  ~IRParserImpl() {
    // Delete any orphaned forward-reference placeholders (error paths).
    for (auto &Scope : Scopes)
      for (auto &[Name, Op] : Scope.Forwards)
        Orphans.push_back(Op);
    Scopes.clear();
  }

  /// Deletes placeholders left over after the partial IR is gone.
  void deleteOrphans() {
    for (Operation *Op : Orphans) {
      // Any remaining uses belong to IR that has been destroyed already.
      Op->destroy();
    }
    Orphans.clear();
  }

  //===------------------------------------------------------------------===//
  // Tokens
  //===------------------------------------------------------------------===//

  const IRToken &tok() const { return Lex.getToken(); }
  void lex() { Lex.lex(); }

  bool consumeIf(IRToken::Kind K) {
    if (!tok().is(K))
      return false;
    lex();
    return true;
  }

  LogicalResult expect(IRToken::Kind K, std::string_view What) {
    if (consumeIf(K))
      return success();
    Diags.emitError(tok().Loc, "expected " + std::string(What));
    return failure();
  }

  LogicalResult emitError(SMLoc Loc, std::string Message) {
    Diags.emitError(Loc, std::move(Message));
    return failure();
  }

  //===------------------------------------------------------------------===//
  // Scopes
  //===------------------------------------------------------------------===//

  struct Scope {
    std::map<std::string, Value> Values;
    std::map<std::string, SMLoc> ValueLocs;
    /// Forward-referenced values: name -> detached placeholder op.
    std::map<std::string, Operation *> Forwards;
    /// Block label table for the region.
    std::map<std::string, Block *> Blocks;
    std::map<std::string, bool> BlockDefined;
  };

  void pushScope() { Scopes.emplace_back(); }

  LogicalResult popScope() {
    Scope &S = Scopes.back();
    LogicalResult Result = success();
    for (auto &[Name, Op] : S.Forwards) {
      Diags.emitError(Op->getLoc(), "use of undefined value %" + Name);
      Orphans.push_back(Op);
      Result = failure();
    }
    S.Forwards.clear();
    for (auto &[Name, B] : S.Blocks) {
      if (!S.BlockDefined[Name]) {
        Diags.emitError(SMLoc(), "reference to undefined block ^" + Name);
        B->destroy();
        Result = failure();
      }
    }
    Scopes.pop_back();
    return Result;
  }

  Value lookupValue(std::string_view Name) {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It) {
      auto VIt = It->Values.find(std::string(Name));
      if (VIt != It->Values.end())
        return VIt->second;
      // Forward placeholders are only visible in their own scope.
      if (It == Scopes.rbegin()) {
        auto FIt = It->Forwards.find(std::string(Name));
        if (FIt != It->Forwards.end())
          return FIt->second->getResult(0);
      }
    }
    return Value();
  }

  /// Resolves a `%name` reference of expected type \p Ty, creating a
  /// forward placeholder in the innermost scope when unknown.
  Value resolveValue(const std::string &Name, Type Ty, SMLoc Loc) {
    if (Value V = lookupValue(Name)) {
      if (V.getType() != Ty) {
        Diags.emitError(Loc, "value %" + Name + " has type " +
                                 V.getType().str() + " but is used as " +
                                 Ty.str());
        return Value();
      }
      return V;
    }
    assert(!Scopes.empty());
    OperationState State(Ctx, OperationName("builtin.__forward_ref__"), Loc);
    State.ResultTypes.push_back(Ty);
    Operation *Placeholder = Operation::create(State);
    Scopes.back().Forwards.emplace(Name, Placeholder);
    return Placeholder->getResult(0);
  }

  LogicalResult defineValue(const std::string &Name, Value V, SMLoc Loc) {
    Scope &S = Scopes.back();
    if (S.Values.count(Name))
      return emitError(Loc, "redefinition of value %" + Name);
    auto FIt = S.Forwards.find(Name);
    if (FIt != S.Forwards.end()) {
      Operation *Placeholder = FIt->second;
      Value Old = Placeholder->getResult(0);
      if (Old.getType() != V.getType())
        return emitError(Loc, "definition of %" + Name + " with type " +
                                  V.getType().str() +
                                  " does not match forward uses of type " +
                                  Old.getType().str());
      Old.replaceAllUsesWith(V);
      Placeholder->destroy();
      S.Forwards.erase(FIt);
    }
    S.Values.emplace(Name, V);
    S.ValueLocs.emplace(Name, Loc);
    return success();
  }

  Block *getOrCreateBlock(const std::string &Name) {
    Scope &S = Scopes.back();
    auto It = S.Blocks.find(Name);
    if (It != S.Blocks.end())
      return It->second;
    Block *B = Block::create(Ctx);
    S.Blocks.emplace(Name, B);
    S.BlockDefined.emplace(Name, false);
    return B;
  }

  //===------------------------------------------------------------------===//
  // Types, attributes, parameters
  //===------------------------------------------------------------------===//

  /// Tries builtin type sugar for \p Ident; returns null when no match.
  Type parseTypeSugar(std::string_view Ident) {
    if (Ident == "f16" || Ident == "f32" || Ident == "f64")
      return Ctx.getFloatType(Ident == "f16" ? 16 : Ident == "f32" ? 32 : 64);
    if (Ident == "index")
      return Ctx.getIndexType();
    Signedness Sign;
    std::string_view Digits;
    if (startsWith(Ident, "si")) {
      Sign = Signedness::Signed;
      Digits = Ident.substr(2);
    } else if (startsWith(Ident, "ui")) {
      Sign = Signedness::Unsigned;
      Digits = Ident.substr(2);
    } else if (startsWith(Ident, "i")) {
      Sign = Signedness::Signless;
      Digits = Ident.substr(1);
    } else {
      return Type();
    }
    auto Width = parseUInt(Digits);
    if (!Width || *Width < 1 || *Width > 128)
      return Type();
    return Ctx.getIntegerType(static_cast<unsigned>(*Width), Sign);
  }

  /// Parses a dotted identifier path (`a.b.c`); returns the segments.
  std::vector<std::string> parseDottedPath() {
    std::vector<std::string> Segments;
    if (!tok().is(IRToken::Kind::Identifier))
      return Segments;
    Segments.push_back(tok().Spelling);
    lex();
    while (tok().is(IRToken::Kind::Dot)) {
      lex();
      if (!tok().is(IRToken::Kind::Identifier)) {
        Diags.emitError(tok().Loc, "expected identifier after '.'");
        return {};
      }
      Segments.push_back(tok().Spelling);
      lex();
    }
    return Segments;
  }

  Type parseType() {
    SMLoc Loc = tok().Loc;

    // Function type: (inputs) -> results
    if (consumeIf(IRToken::Kind::LParen)) {
      std::vector<Type> Inputs;
      if (!tok().is(IRToken::Kind::RParen)) {
        do {
          Type T = parseType();
          if (!T)
            return Type();
          Inputs.push_back(T);
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::RParen, "')' in function type")) ||
          failed(expect(IRToken::Kind::Arrow, "'->' in function type")))
        return Type();
      std::vector<Type> Results;
      if (consumeIf(IRToken::Kind::LParen)) {
        if (!tok().is(IRToken::Kind::RParen)) {
          do {
            Type T = parseType();
            if (!T)
              return Type();
            Results.push_back(T);
          } while (consumeIf(IRToken::Kind::Comma));
        }
        if (failed(expect(IRToken::Kind::RParen, "')' in function type")))
          return Type();
      } else {
        Type T = parseType();
        if (!T)
          return Type();
        Results.push_back(T);
      }
      return Ctx.getFunctionType(Inputs, Results);
    }

    bool HadBang = consumeIf(IRToken::Kind::Bang);
    if (!tok().is(IRToken::Kind::Identifier)) {
      Diags.emitError(Loc, "expected type");
      return Type();
    }
    std::vector<std::string> Path = parseDottedPath();
    if (Path.empty())
      return Type();

    if (Path.size() == 1)
      if (Type Sugar = parseTypeSugar(Path[0]))
        return Sugar;

    std::string FullName = join(Path, ".");
    TypeDefinition *Def = Ctx.resolveTypeDef(FullName);
    if (!Def) {
      Diags.emitError(Loc, "unknown type '" + FullName + "'");
      return Type();
    }
    (void)HadBang;

    std::vector<ParamValue> Params;
    if (consumeIf(IRToken::Kind::Less)) {
      if (!tok().is(IRToken::Kind::Greater)) {
        do {
          ParamValue P;
          if (failed(parseParam(P)))
            return Type();
          Params.push_back(std::move(P));
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::Greater, "'>' in type parameters")))
        return Type();
    }
    return Ctx.getTypeChecked(Def, std::move(Params), Diags, Loc);
  }

  /// Parses an optional `: suffix` kind after a numeric literal. Returns
  /// failure on malformed suffix. Out params describe the kind.
  struct NumKind {
    bool IsFloat = false;
    unsigned Width = 64;
    Signedness Sign = Signedness::Signless;
    bool Present = false;
  };

  LogicalResult parseOptionalNumSuffix(NumKind &K) {
    if (!tok().is(IRToken::Kind::Colon))
      return success();
    lex();
    if (!tok().is(IRToken::Kind::Identifier))
      return emitError(tok().Loc, "expected integer or float kind after ':'");
    std::string_view Ident = tok().Spelling;
    K.Present = true;
    if (Ident == "f16" || Ident == "f32" || Ident == "f64") {
      K.IsFloat = true;
      K.Width = Ident == "f16" ? 16 : Ident == "f32" ? 32 : 64;
      lex();
      return success();
    }
    std::string_view Digits;
    if (startsWith(Ident, "si")) {
      K.Sign = Signedness::Signed;
      Digits = Ident.substr(2);
    } else if (startsWith(Ident, "ui")) {
      K.Sign = Signedness::Unsigned;
      Digits = Ident.substr(2);
    } else if (startsWith(Ident, "i")) {
      Digits = Ident.substr(1);
    } else {
      return emitError(tok().Loc, "expected integer or float kind");
    }
    auto Width = parseUInt(Digits);
    if (!Width || *Width < 1 || *Width > 128)
      return emitError(tok().Loc, "invalid integer kind width");
    K.Width = static_cast<unsigned>(*Width);
    lex();
    return success();
  }

  /// Parses a signed numeric literal plus optional kind suffix into \p P.
  LogicalResult parseNumberParam(ParamValue &P) {
    SMLoc Loc = tok().Loc;
    bool Negative = consumeIf(IRToken::Kind::Minus);
    if (tok().is(IRToken::Kind::Integer)) {
      auto V = parseUInt(tok().Spelling);
      if (!V)
        return emitError(Loc, "integer literal out of range");
      lex();
      NumKind K;
      if (failed(parseOptionalNumSuffix(K)))
        return failure();
      if (K.IsFloat) {
        double D = static_cast<double>(*V);
        P = ParamValue(FloatVal{static_cast<uint16_t>(K.Width),
                                Negative ? -D : D});
        return success();
      }
      int64_t SV = static_cast<int64_t>(*V);
      P = ParamValue(IntVal{static_cast<uint16_t>(K.Width), K.Sign,
                            Negative ? -SV : SV});
      return success();
    }
    if (tok().is(IRToken::Kind::Float) || tok().isIdent("inf") ||
        tok().isIdent("nan")) {
      double D;
      if (tok().is(IRToken::Kind::Float))
        D = std::strtod(tok().Spelling.c_str(), nullptr);
      else
        D = tok().isIdent("inf") ? HUGE_VAL : NAN;
      lex();
      NumKind K;
      if (failed(parseOptionalNumSuffix(K)))
        return failure();
      if (K.Present && !K.IsFloat)
        return emitError(Loc, "float literal with integer kind");
      P = ParamValue(
          FloatVal{static_cast<uint16_t>(K.Width), Negative ? -D : D});
      return success();
    }
    return emitError(Loc, "expected numeric literal");
  }

  LogicalResult parseParam(ParamValue &P) {
    SMLoc Loc = tok().Loc;
    switch (tok().K) {
    case IRToken::Kind::Minus:
    case IRToken::Kind::Integer:
    case IRToken::Kind::Float:
      return parseNumberParam(P);
    case IRToken::Kind::String: {
      P = ParamValue(tok().Spelling);
      lex();
      return success();
    }
    case IRToken::Kind::LSquare: {
      lex();
      std::vector<ParamValue> Elems;
      if (!tok().is(IRToken::Kind::RSquare)) {
        do {
          ParamValue Elem;
          if (failed(parseParam(Elem)))
            return failure();
          Elems.push_back(std::move(Elem));
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::RSquare, "']' in array parameter")))
        return failure();
      P = ParamValue(std::move(Elems));
      return success();
    }
    case IRToken::Kind::Hash: {
      Attribute A = parseAttribute();
      if (!A)
        return failure();
      P = ParamValue(A);
      return success();
    }
    case IRToken::Kind::Bang:
    case IRToken::Kind::LParen: {
      Type T = parseType();
      if (!T)
        return failure();
      P = ParamValue(T);
      return success();
    }
    case IRToken::Kind::Identifier: {
      if (tok().isIdent("opaque")) {
        lex();
        if (failed(expect(IRToken::Kind::Less, "'<' after 'opaque'")))
          return failure();
        if (!tok().is(IRToken::Kind::String))
          return emitError(tok().Loc, "expected opaque parameter kind name");
        std::string KindName = tok().Spelling;
        lex();
        if (failed(expect(IRToken::Kind::Comma, "',' in opaque parameter")))
          return failure();
        if (!tok().is(IRToken::Kind::String))
          return emitError(tok().Loc, "expected opaque parameter payload");
        std::string Payload = tok().Spelling;
        lex();
        if (failed(expect(IRToken::Kind::Greater,
                          "'>' after opaque parameter")))
          return failure();
        const OpaqueParamCodec *Codec = Ctx.lookupOpaqueParamCodec(KindName);
        if (!Codec)
          return emitError(Loc, "unknown opaque parameter kind '" +
                                    KindName + "'");
        auto Parsed = Codec->Parse(Payload);
        if (!Parsed)
          return emitError(Loc, "invalid payload for opaque parameter '" +
                                    KindName + "'");
        P = ParamValue(OpaqueVal{KindName, *Parsed});
        return success();
      }
      if (tok().isIdent("inf") || tok().isIdent("nan"))
        return parseNumberParam(P);

      std::vector<std::string> Path = parseDottedPath();
      if (Path.empty())
        return failure();
      if (Path.size() == 1) {
        if (Type Sugar = parseTypeSugar(Path[0])) {
          P = ParamValue(Sugar);
          return success();
        }
        return emitError(Loc, "unknown parameter '" + Path[0] + "'");
      }
      // Enum constructor: [dialect.]enum.Case
      std::string CaseName = Path.back();
      Path.pop_back();
      std::string EnumPath = join(Path, ".");
      if (EnumDef *Def = Ctx.resolveEnumDef(EnumPath)) {
        if (auto Index = Def->lookupCase(CaseName)) {
          P = ParamValue(EnumVal{Def, *Index});
          return success();
        }
        return emitError(Loc, "'" + CaseName + "' is not a constructor of "
                                                   "enum '" +
                                  Def->getFullName() + "'");
      }
      return emitError(Loc, "unknown enum '" + EnumPath + "'");
    }
    default:
      return emitError(Loc, "expected parameter value");
    }
  }

  Attribute parseAttribute() {
    SMLoc Loc = tok().Loc;
    switch (tok().K) {
    case IRToken::Kind::Minus:
    case IRToken::Kind::Integer:
    case IRToken::Kind::Float: {
      ParamValue P;
      if (failed(parseNumberParam(P)))
        return Attribute();
      if (P.isInt())
        return Ctx.getIntegerAttr(P.getInt());
      return Ctx.getAttr(Ctx.getFloatAttrDef(), {P});
    }
    case IRToken::Kind::String: {
      std::string S = tok().Spelling;
      lex();
      return Ctx.getStringAttr(std::move(S));
    }
    case IRToken::Kind::LSquare: {
      lex();
      std::vector<Attribute> Elems;
      if (!tok().is(IRToken::Kind::RSquare)) {
        do {
          Attribute A = parseAttribute();
          if (!A)
            return Attribute();
          Elems.push_back(A);
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::RSquare, "']' in array attribute")))
        return Attribute();
      return Ctx.getArrayAttr(std::move(Elems));
    }
    case IRToken::Kind::Hash: {
      lex();
      std::vector<std::string> Path = parseDottedPath();
      if (Path.empty()) {
        Diags.emitError(Loc, "expected attribute name after '#'");
        return Attribute();
      }
      std::string FullName = join(Path, ".");
      AttrDefinition *Def = Ctx.resolveAttrDef(FullName);
      if (!Def) {
        Diags.emitError(Loc, "unknown attribute '" + FullName + "'");
        return Attribute();
      }
      std::vector<ParamValue> Params;
      if (consumeIf(IRToken::Kind::Less)) {
        if (!tok().is(IRToken::Kind::Greater)) {
          do {
            ParamValue P;
            if (failed(parseParam(P)))
              return Attribute();
            Params.push_back(std::move(P));
          } while (consumeIf(IRToken::Kind::Comma));
        }
        if (failed(expect(IRToken::Kind::Greater,
                          "'>' in attribute parameters")))
          return Attribute();
      }
      return Ctx.getAttrChecked(Def, std::move(Params), Diags, Loc);
    }
    case IRToken::Kind::Identifier:
      if (tok().isIdent("unit")) {
        lex();
        return Ctx.getUnitAttr();
      }
      if (tok().isIdent("true") || tok().isIdent("false")) {
        bool V = tok().isIdent("true");
        lex();
        return Ctx.getIntegerAttr(V ? 1 : 0, /*Width=*/1);
      }
      if (tok().isIdent("inf") || tok().isIdent("nan")) {
        ParamValue P;
        if (failed(parseNumberParam(P)))
          return Attribute();
        return Ctx.getAttr(Ctx.getFloatAttrDef(), {P});
      }
      // Dotted identifier paths may name an enum constructor
      // (`arith.fastmath.fast`); otherwise they fall back to type syntax.
      if (tok().is(IRToken::Kind::Identifier)) {
        // Peek: a path with >= 2 segments whose prefix names an enum.
        const char *Save = tok().Loc.getPointer();
        std::vector<std::string> Path = parseDottedPath();
        if (Path.empty())
          return Attribute();
        if (Path.size() >= 2) {
          std::string CaseName = Path.back();
          std::vector<std::string> Prefix(Path.begin(), Path.end() - 1);
          if (EnumDef *Def = Ctx.resolveEnumDef(join(Prefix, "."))) {
            if (auto Index = Def->lookupCase(CaseName))
              return Ctx.getEnumAttr(EnumVal{Def, *Index});
            Diags.emitError(Loc, "'" + CaseName +
                                     "' is not a constructor of enum '" +
                                     Def->getFullName() + "'");
            return Attribute();
          }
        }
        // Not an enum: reinterpret the path as a type.
        if (Path.size() == 1)
          if (Type Sugar = parseTypeSugar(Path[0]))
            return Ctx.getTypeAttr(Sugar);
        std::string FullName = join(Path, ".");
        if (TypeDefinition *Def = Ctx.resolveTypeDef(FullName)) {
          // Continue a full type parse for optional parameters.
          std::vector<ParamValue> Params;
          if (consumeIf(IRToken::Kind::Less)) {
            if (!tok().is(IRToken::Kind::Greater)) {
              do {
                ParamValue P;
                if (failed(parseParam(P)))
                  return Attribute();
                Params.push_back(std::move(P));
              } while (consumeIf(IRToken::Kind::Comma));
            }
            if (failed(expect(IRToken::Kind::Greater,
                              "'>' in type parameters")))
              return Attribute();
          }
          Type T = Ctx.getTypeChecked(Def, std::move(Params), Diags, Loc);
          if (!T)
            return Attribute();
          return Ctx.getTypeAttr(T);
        }
        (void)Save;
        Diags.emitError(Loc, "unknown attribute '" + FullName + "'");
        return Attribute();
      }
      [[fallthrough]];
    case IRToken::Kind::Bang:
    case IRToken::Kind::LParen: {
      // A bare type is a type attribute.
      Type T = parseType();
      if (!T)
        return Attribute();
      return Ctx.getTypeAttr(T);
    }
    default:
      Diags.emitError(Loc, "expected attribute");
      return Attribute();
    }
  }

  LogicalResult parseOptionalAttrDict(NamedAttrList &Attrs) {
    if (!tok().is(IRToken::Kind::LBrace))
      return success();
    lex();
    if (consumeIf(IRToken::Kind::RBrace))
      return success();
    do {
      std::string Name;
      if (tok().is(IRToken::Kind::Identifier) ||
          tok().is(IRToken::Kind::String)) {
        Name = tok().Spelling;
        lex();
      } else {
        return emitError(tok().Loc, "expected attribute name");
      }
      if (consumeIf(IRToken::Kind::Equal)) {
        Attribute A = parseAttribute();
        if (!A)
          return failure();
        Attrs.set(Name, A);
      } else {
        Attrs.set(Name, Ctx.getUnitAttr());
      }
    } while (consumeIf(IRToken::Kind::Comma));
    return expect(IRToken::Kind::RBrace, "'}' at end of attribute dict");
  }

  //===------------------------------------------------------------------===//
  // Operations
  //===------------------------------------------------------------------===//

  struct ResultBinding {
    std::string Name;
    SMLoc Loc;
    std::optional<unsigned> DeclaredCount;
  };

  /// Parses one operation statement into \p InsertInto.
  LogicalResult parseOpStatement(Block *InsertInto) {
    std::optional<ResultBinding> Binding;
    if (tok().is(IRToken::Kind::PercentId)) {
      ResultBinding B;
      B.Name = tok().Spelling;
      B.Loc = tok().Loc;
      if (B.Name.find('#') != std::string::npos)
        return emitError(B.Loc, "result binding may not contain '#'");
      lex();
      if (consumeIf(IRToken::Kind::Colon)) {
        if (!tok().is(IRToken::Kind::Integer))
          return emitError(tok().Loc, "expected result count after ':'");
        auto N = parseUInt(tok().Spelling);
        if (!N || *N == 0)
          return emitError(tok().Loc, "invalid result count");
        B.DeclaredCount = static_cast<unsigned>(*N);
        lex();
      }
      if (failed(expect(IRToken::Kind::Equal, "'=' after result binding")))
        return failure();
      Binding = std::move(B);
    }

    SMLoc OpLoc = tok().Loc;
    Operation *Op = nullptr;
    if (tok().is(IRToken::Kind::String)) {
      if (failed(parseGenericOp(Op)))
        return failure();
    } else if (tok().is(IRToken::Kind::Identifier)) {
      if (failed(parseCustomOp(Op)))
        return failure();
    } else {
      return emitError(OpLoc, "expected operation");
    }

    InsertInto->push_back(Op);

    unsigned NumResults = Op->getNumResults();
    if (Binding) {
      if (Binding->DeclaredCount && *Binding->DeclaredCount != NumResults)
        return emitError(Binding->Loc,
                         "operation defines " + std::to_string(NumResults) +
                             " results but " +
                             std::to_string(*Binding->DeclaredCount) +
                             " were bound");
      if (!Binding->DeclaredCount && NumResults != 1)
        return emitError(Binding->Loc,
                         "operation defines " + std::to_string(NumResults) +
                             " results; bind them as %name:" +
                             std::to_string(NumResults));
      if (NumResults == 1) {
        if (failed(defineValue(Binding->Name, Op->getResult(0),
                               Binding->Loc)))
          return failure();
      } else {
        for (unsigned I = 0; I != NumResults; ++I)
          if (failed(defineValue(Binding->Name + "#" + std::to_string(I),
                                 Op->getResult(I), Binding->Loc)))
            return failure();
      }
    } else if (NumResults != 0) {
      return emitError(OpLoc, "operation results must be bound to names");
    }
    return success();
  }

  LogicalResult resolveOpName(const std::string &FullName, SMLoc Loc,
                              OperationName &Name) {
    if (const OpDefinition *Def = Ctx.resolveOpDef(FullName)) {
      Name = OperationName(Def);
      return success();
    }
    if (Ctx.allowsUnregisteredOps()) {
      Name = OperationName(FullName);
      return success();
    }
    return emitError(Loc, "unknown operation '" + FullName + "'");
  }

  LogicalResult parseGenericOp(Operation *&Op) {
    SMLoc OpLoc = tok().Loc;
    std::string FullName = tok().Spelling;
    lex();

    OperationName Name;
    if (failed(resolveOpName(FullName, OpLoc, Name)))
      return failure();
    OperationState State(Ctx, Name, OpLoc);

    // Operand references.
    std::vector<CustomOpParser::UnresolvedOperand> OperandRefs;
    if (failed(expect(IRToken::Kind::LParen, "'(' after operation name")))
      return failure();
    if (!tok().is(IRToken::Kind::RParen)) {
      do {
        if (!tok().is(IRToken::Kind::PercentId))
          return emitError(tok().Loc, "expected SSA operand");
        OperandRefs.push_back({tok().Spelling, tok().Loc});
        lex();
      } while (consumeIf(IRToken::Kind::Comma));
    }
    if (failed(expect(IRToken::Kind::RParen, "')' after operands")))
      return failure();

    // Successors.
    if (consumeIf(IRToken::Kind::LSquare)) {
      if (!tok().is(IRToken::Kind::RSquare)) {
        do {
          if (!tok().is(IRToken::Kind::CaretId))
            return emitError(tok().Loc, "expected successor block");
          State.addSuccessor(getOrCreateBlock(tok().Spelling));
          lex();
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::RSquare, "']' after successors")))
        return failure();
    }

    // Regions.
    if (tok().is(IRToken::Kind::LParen)) {
      lex();
      if (!tok().is(IRToken::Kind::RParen)) {
        do {
          Region *R = State.addRegion();
          if (failed(parseRegionBody(*R, {})))
            return failure();
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::RParen, "')' after regions")))
        return failure();
    }

    if (failed(parseOptionalAttrDict(State.Attributes)))
      return failure();

    // Signature.
    if (failed(expect(IRToken::Kind::Colon, "':' before op signature")) ||
        failed(expect(IRToken::Kind::LParen, "'(' in op signature")))
      return failure();
    std::vector<Type> OperandTypes;
    if (!tok().is(IRToken::Kind::RParen)) {
      do {
        Type T = parseType();
        if (!T)
          return failure();
        OperandTypes.push_back(T);
      } while (consumeIf(IRToken::Kind::Comma));
    }
    if (failed(expect(IRToken::Kind::RParen, "')' in op signature")) ||
        failed(expect(IRToken::Kind::Arrow, "'->' in op signature")))
      return failure();
    if (consumeIf(IRToken::Kind::LParen)) {
      if (!tok().is(IRToken::Kind::RParen)) {
        do {
          Type T = parseType();
          if (!T)
            return failure();
          State.ResultTypes.push_back(T);
        } while (consumeIf(IRToken::Kind::Comma));
      }
      if (failed(expect(IRToken::Kind::RParen, "')' in op signature")))
        return failure();
    } else {
      Type T = parseType();
      if (!T)
        return failure();
      State.ResultTypes.push_back(T);
    }

    if (OperandTypes.size() != OperandRefs.size())
      return emitError(OpLoc, "operand count (" +
                                  std::to_string(OperandRefs.size()) +
                                  ") does not match signature (" +
                                  std::to_string(OperandTypes.size()) + ")");
    for (size_t I = 0, E = OperandRefs.size(); I != E; ++I) {
      Value V = resolveValue(OperandRefs[I].Name, OperandTypes[I],
                             OperandRefs[I].Loc);
      if (!V)
        return failure();
      State.Operands.push_back(V);
    }

    Op = Operation::create(State);
    return success();
  }

  LogicalResult parseCustomOp(Operation *&Op) {
    SMLoc OpLoc = tok().Loc;
    std::vector<std::string> Path = parseDottedPath();
    if (Path.empty())
      return failure();
    std::string FullName = join(Path, ".");
    const OpDefinition *Def = Ctx.resolveOpDef(FullName);
    if (!Def)
      return emitError(OpLoc, "unknown operation '" + FullName + "'");
    if (!Def->getParseFn())
      return emitError(OpLoc, "operation '" + Def->getFullName() +
                                  "' has no custom syntax; use the generic "
                                  "form");
    OperationState State(Ctx, OperationName(Def), OpLoc);
    CustomOpParser Custom(*this);
    if (failed(Def->getParseFn()(Custom, State)))
      return failure();
    Op = Operation::create(State);
    return success();
  }

  /// Parses `{ ... }` region contents into \p R.
  LogicalResult parseRegionBody(
      Region &R,
      const std::vector<std::pair<CustomOpParser::UnresolvedOperand, Type>>
          &EntryArgs) {
    if (failed(expect(IRToken::Kind::LBrace, "'{' to begin region")))
      return failure();
    pushScope();

    Block *CurBlock = nullptr;
    if (!EntryArgs.empty()) {
      CurBlock = Block::create(Ctx);
      R.push_back(CurBlock);
      for (const auto &[Ref, Ty] : EntryArgs) {
        Value Arg = CurBlock->addArgument(Ty);
        if (failed(defineValue(Ref.Name, Arg, Ref.Loc))) {
          (void)popScope();
          return failure();
        }
      }
    }

    while (!tok().is(IRToken::Kind::RBrace)) {
      if (tok().is(IRToken::Kind::Eof)) {
        (void)popScope();
        return emitError(tok().Loc, "unterminated region");
      }
      if (tok().is(IRToken::Kind::CaretId)) {
        // Labeled block.
        std::string Label = tok().Spelling;
        SMLoc LabelLoc = tok().Loc;
        lex();
        Block *B = getOrCreateBlock(Label);
        Scope &S = Scopes.back();
        if (S.BlockDefined[Label]) {
          (void)popScope();
          return emitError(LabelLoc, "redefinition of block ^" + Label);
        }
        S.BlockDefined[Label] = true;
        R.push_back(B);
        if (consumeIf(IRToken::Kind::LParen)) {
          if (!tok().is(IRToken::Kind::RParen)) {
            do {
              if (!tok().is(IRToken::Kind::PercentId)) {
                (void)popScope();
                return emitError(tok().Loc, "expected block argument");
              }
              std::string ArgName = tok().Spelling;
              SMLoc ArgLoc = tok().Loc;
              lex();
              if (failed(expect(IRToken::Kind::Colon,
                                "':' after block argument"))) {
                (void)popScope();
                return failure();
              }
              Type Ty = parseType();
              if (!Ty) {
                (void)popScope();
                return failure();
              }
              Value Arg = B->addArgument(Ty);
              if (failed(defineValue(ArgName, Arg, ArgLoc))) {
                (void)popScope();
                return failure();
              }
            } while (consumeIf(IRToken::Kind::Comma));
          }
          if (failed(expect(IRToken::Kind::RParen,
                            "')' after block arguments"))) {
            (void)popScope();
            return failure();
          }
        }
        if (failed(expect(IRToken::Kind::Colon, "':' after block label"))) {
          (void)popScope();
          return failure();
        }
        CurBlock = B;
        continue;
      }
      if (!CurBlock) {
        CurBlock = Block::create(Ctx);
        R.push_back(CurBlock);
      }
      if (failed(parseOpStatement(CurBlock))) {
        (void)popScope();
        return failure();
      }
    }
    lex(); // consume '}'
    return popScope();
  }

  /// Parses the whole buffer as a module.
  Operation *parseTopLevel() {
    OperationState State(
        Ctx, OperationName(Ctx.resolveOpDef("builtin.module")), tok().Loc);
    Region *R = State.addRegion();
    Block *Body = Block::create(Ctx);
    R->push_back(Body);

    pushScope();
    while (!tok().is(IRToken::Kind::Eof)) {
      if (tok().is(IRToken::Kind::Error)) {
        (void)popScope();
        return nullptr;
      }
      if (failed(parseOpStatement(Body))) {
        (void)popScope();
        return nullptr;
      }
    }
    if (failed(popScope()))
      return nullptr;

    // Unwrap a single explicit module.
    if (Body->getNumOps() == 1) {
      Operation &Only = Body->front();
      if (Only.getDef() &&
          Only.getDef()->getFullName() == "builtin.module") {
        Only.removeFromBlock();
        return &Only;
      }
    }
    return Operation::create(State);
  }

  IRContext &Ctx;
  DiagnosticEngine &Diags;
  IRLexer Lex;
  std::vector<Scope> Scopes;
  std::vector<Operation *> Orphans;
};

} // namespace irdl

//===----------------------------------------------------------------------===//
// CustomOpParser
//===----------------------------------------------------------------------===//

IRContext *CustomOpParser::getContext() { return &Impl.Ctx; }
SMLoc CustomOpParser::getCurrentLoc() { return Impl.tok().Loc; }

LogicalResult CustomOpParser::emitError(SMLoc Loc, std::string Message) {
  return Impl.emitError(Loc, std::move(Message));
}

bool CustomOpParser::consumeIf(IRToken::Kind K) { return Impl.consumeIf(K); }

LogicalResult CustomOpParser::expect(IRToken::Kind K,
                                     std::string_view What) {
  return Impl.expect(K, What);
}

bool CustomOpParser::consumeOptionalKeyword(std::string_view Keyword) {
  if (!Impl.tok().isIdent(Keyword))
    return false;
  Impl.lex();
  return true;
}

LogicalResult CustomOpParser::parseKeyword(std::string_view Keyword) {
  if (consumeOptionalKeyword(Keyword))
    return success();
  return Impl.emitError(Impl.tok().Loc,
                        "expected keyword '" + std::string(Keyword) + "'");
}

LogicalResult CustomOpParser::parseOperand(UnresolvedOperand &Result) {
  if (!parseOptionalOperand(Result))
    return Impl.emitError(Impl.tok().Loc, "expected SSA operand");
  return success();
}

bool CustomOpParser::parseOptionalOperand(UnresolvedOperand &Result) {
  if (!Impl.tok().is(IRToken::Kind::PercentId))
    return false;
  Result.Name = Impl.tok().Spelling;
  Result.Loc = Impl.tok().Loc;
  Impl.lex();
  return true;
}

LogicalResult
CustomOpParser::resolveOperand(const UnresolvedOperand &Operand, Type Ty,
                               std::vector<Value> &Operands) {
  Value V = Impl.resolveValue(Operand.Name, Ty, Operand.Loc);
  if (!V)
    return failure();
  Operands.push_back(V);
  return success();
}

LogicalResult CustomOpParser::parseType(Type &Result) {
  Result = Impl.parseType();
  return Result ? success() : failure();
}

LogicalResult CustomOpParser::parseAttribute(Attribute &Result) {
  Result = Impl.parseAttribute();
  return Result ? success() : failure();
}

LogicalResult CustomOpParser::parseParam(ParamValue &Result) {
  return Impl.parseParam(Result);
}

LogicalResult CustomOpParser::parseOptionalAttrDict(NamedAttrList &Attrs) {
  return Impl.parseOptionalAttrDict(Attrs);
}

LogicalResult CustomOpParser::parseSymbolName(std::string &Result) {
  if (!Impl.tok().is(IRToken::Kind::AtId))
    return Impl.emitError(Impl.tok().Loc, "expected symbol name");
  Result = Impl.tok().Spelling;
  Impl.lex();
  return success();
}

LogicalResult CustomOpParser::parseSuccessor(Block *&Result) {
  if (!Impl.tok().is(IRToken::Kind::CaretId))
    return Impl.emitError(Impl.tok().Loc, "expected successor block");
  Result = Impl.getOrCreateBlock(Impl.tok().Spelling);
  Impl.lex();
  return success();
}

LogicalResult CustomOpParser::parseRegion(
    Region &R,
    const std::vector<std::pair<UnresolvedOperand, Type>> &EntryArgs) {
  return Impl.parseRegionBody(R, EntryArgs);
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

OwningOpRef irdl::parseSourceString(IRContext &Ctx, std::string_view Source,
                                    SourceMgr &SrcMgr,
                                    DiagnosticEngine &Diags,
                                    std::string BufferName) {
  IRDL_TIME_SCOPE("ir-parse");
  ++NumBuffersParsed;
  uint64_t Begin = metricsEnabled() ? steadyNowNs() : 0;
  unsigned Id =
      SrcMgr.addBuffer(std::string(Source), std::move(BufferName));
  if (!Diags.getSourceMgr())
    Diags.setSourceMgr(&SrcMgr);
  IRParserImpl Parser(Ctx, SrcMgr.getBufferContents(Id), Diags);
  Operation *Top = Parser.parseTopLevel();
  if (!Top) {
    Parser.deleteOrphans();
    return OwningOpRef();
  }
  if (metricsEnabled()) {
    // Reader throughput, comparable with the bytecode reader through the
    // shared format label.
    MetricLabels TextLabel{{"format", "text"}};
    static Counter &Bytes = MetricsRegistry::instance().getCounter(
        "irdl_reader_bytes_total", "input bytes consumed by IR readers",
        TextLabel);
    static Counter &Ops = MetricsRegistry::instance().getCounter(
        "irdl_reader_ops_total", "operations materialized by IR readers",
        TextLabel);
    static Histogram &Duration = MetricsRegistry::instance().getHistogram(
        "irdl_reader_duration_ns", "wall time of one IR reader invocation",
        TextLabel);
    Bytes.inc(Source.size());
    uint64_t NumOps = 0;
    Top->walk([&NumOps](Operation *) { ++NumOps; });
    Ops.inc(NumOps);
    Duration.record(steadyNowNs() - Begin);
  }
  return OwningOpRef(Top);
}

Type irdl::parseTypeString(IRContext &Ctx, std::string_view Source,
                           DiagnosticEngine &Diags) {
  IRParserImpl Parser(Ctx, Source, Diags);
  Type T = Parser.parseType();
  if (T && !Parser.tok().is(IRToken::Kind::Eof)) {
    Diags.emitError(Parser.tok().Loc, "unexpected trailing input after type");
    return Type();
  }
  return T;
}

Attribute irdl::parseAttrString(IRContext &Ctx, std::string_view Source,
                                DiagnosticEngine &Diags) {
  IRParserImpl Parser(Ctx, Source, Diags);
  Attribute A = Parser.parseAttribute();
  if (A && !Parser.tok().is(IRToken::Kind::Eof)) {
    Diags.emitError(Parser.tok().Loc,
                    "unexpected trailing input after attribute");
    return Attribute();
  }
  return A;
}
