//===- Dialect.h - Dialects and runtime definitions --------------*- C++ -*-===//
///
/// \file
/// Runtime definitions of dialects and their components. Every type,
/// attribute, enum, and operation — builtin ones registered from C++ and
/// dynamic ones registered from an IRDL specification — is represented by
/// a *definition* object owned by its Dialect. This is what makes dialects
/// registrable at runtime without recompilation (Section 3 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_DIALECT_H
#define IRDL_IR_DIALECT_H

#include "ir/Types.h"
#include "support/Diagnostics.h"
#include "support/LogicalResult.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace irdl {

class CustomOpParser;
class CustomOpPrinter;
class IRContext;
class Operation;
struct OperationState;

/// An enumerated type (Section 4.8): a named list of constructors.
class EnumDef {
public:
  EnumDef(Dialect *D, std::string Name, std::vector<std::string> Cases)
      : Owner(D), Name(std::move(Name)), Cases(std::move(Cases)) {}

  Dialect *getDialect() const { return Owner; }
  const std::string &getShortName() const { return Name; }
  std::string getFullName() const;
  const std::vector<std::string> &getCases() const { return Cases; }

  /// Returns the index of \p Case, or nullopt if it is not a constructor.
  std::optional<unsigned> lookupCase(std::string_view Case) const;

private:
  Dialect *Owner;
  std::string Name;
  std::vector<std::string> Cases;
};

/// Common state of type and attribute definitions.
class TypeOrAttrDefinitionBase {
public:
  using VerifierFn = std::function<LogicalResult(
      const std::vector<ParamValue> &, DiagnosticEngine &, SMLoc)>;

  TypeOrAttrDefinitionBase(Dialect *D, std::string Name)
      : Owner(D), Name(std::move(Name)) {}

  Dialect *getDialect() const { return Owner; }
  const std::string &getShortName() const { return Name; }
  std::string getFullName() const;

  const std::string &getSummary() const { return Summary; }
  void setSummary(std::string S) { Summary = std::move(S); }

  const std::vector<std::string> &getParamNames() const { return ParamNames; }
  void setParamNames(std::vector<std::string> Names) {
    ParamNames = std::move(Names);
  }
  unsigned getNumParams() const { return ParamNames.size(); }
  std::optional<unsigned> lookupParam(std::string_view ParamName) const;

  /// The parameter verifier, invoked by checked construction and by the IR
  /// verifier. Null means "any parameters accepted".
  void setVerifier(VerifierFn Fn) { Verifier = std::move(Fn); }
  const VerifierFn &getVerifier() const { return Verifier; }

  /// True if this definition required IRDL-C++ (used by the evaluation
  /// tooling to reproduce Figures 9–11).
  bool requiresCpp() const { return RequiresCpp; }
  void setRequiresCpp(bool V = true) { RequiresCpp = V; }

private:
  Dialect *Owner;
  std::string Name;
  std::string Summary;
  std::vector<std::string> ParamNames;
  VerifierFn Verifier;
  bool RequiresCpp = false;
};

/// Runtime definition of a type.
class TypeDefinition : public TypeOrAttrDefinitionBase {
public:
  using TypeOrAttrDefinitionBase::TypeOrAttrDefinitionBase;
};

/// Runtime definition of an attribute.
class AttrDefinition : public TypeOrAttrDefinitionBase {
public:
  using TypeOrAttrDefinitionBase::TypeOrAttrDefinitionBase;
};

/// Runtime definition of an operation.
class OpDefinition {
public:
  using VerifierFn =
      std::function<LogicalResult(Operation *, DiagnosticEngine &)>;
  using PrintFn = std::function<void(Operation *, CustomOpPrinter &)>;
  using ParseFn =
      std::function<LogicalResult(CustomOpParser &, OperationState &)>;

  OpDefinition(Dialect *D, std::string Name);

  Dialect *getDialect() const { return Owner; }
  const std::string &getShortName() const { return Name; }
  /// The cached "dialect.op" name. Returned by reference so that every
  /// OperationName of a registered op aliases one string instead of
  /// copying it per operation.
  const std::string &getFullName() const { return FullName; }

  const std::string &getSummary() const { return Summary; }
  void setSummary(std::string S) { Summary = std::move(S); }

  /// Terminator ops may only appear last in a block (Section 4.6:
  /// "Defining a Successors field (even empty) will define an operation as
  /// a terminator").
  bool isTerminator() const { return Terminator; }
  void setTerminator(bool V = true) { Terminator = V; }

  /// Expected number of successors, if constrained.
  std::optional<unsigned> getNumSuccessors() const { return NumSuccessors; }
  void setNumSuccessors(unsigned N) { NumSuccessors = N; }

  /// The operation verifier (constraints compiled from IRDL, or native).
  void setVerifier(VerifierFn Fn) { Verifier = std::move(Fn); }
  const VerifierFn &getVerifier() const { return Verifier; }

  /// Custom-syntax hooks. When absent, the generic syntax is used. IRDL
  /// `Format` directives compile to these; builtin ops install native ones.
  void setPrintFn(PrintFn Fn) { Printer = std::move(Fn); }
  const PrintFn &getPrintFn() const { return Printer; }
  void setParseFn(ParseFn Fn) { Parser = std::move(Fn); }
  const ParseFn &getParseFn() const { return Parser; }

  bool requiresCpp() const { return RequiresCpp; }
  void setRequiresCpp(bool V = true) { RequiresCpp = V; }

private:
  Dialect *Owner;
  std::string Name;
  std::string FullName;
  std::string Summary;
  bool Terminator = false;
  std::optional<unsigned> NumSuccessors;
  VerifierFn Verifier;
  PrintFn Printer;
  ParseFn Parser;
  bool RequiresCpp = false;
};

/// A dialect: a namespace of type, attribute, enum, and op definitions.
class Dialect {
public:
  Dialect(IRContext *Ctx, std::string Namespace)
      : Ctx(Ctx), Namespace(std::move(Namespace)) {}

  IRContext *getContext() const { return Ctx; }
  const std::string &getNamespace() const { return Namespace; }

  /// Registration. Each returns the created definition (owned by the
  /// dialect) or null if the name is already taken.
  TypeDefinition *addType(std::string Name);
  AttrDefinition *addAttr(std::string Name);
  OpDefinition *addOp(std::string Name);
  EnumDef *addEnum(std::string Name, std::vector<std::string> Cases);

  /// Lookup by short name; returns null if absent.
  TypeDefinition *lookupType(std::string_view Name) const;
  AttrDefinition *lookupAttr(std::string_view Name) const;
  OpDefinition *lookupOp(std::string_view Name) const;
  EnumDef *lookupEnum(std::string_view Name) const;

  /// Stable, name-ordered iteration for printing and analysis.
  std::vector<TypeDefinition *> getTypeDefs() const;
  std::vector<AttrDefinition *> getAttrDefs() const;
  std::vector<OpDefinition *> getOpDefs() const;
  std::vector<EnumDef *> getEnumDefs() const;

private:
  IRContext *Ctx;
  std::string Namespace;
  std::map<std::string, std::unique_ptr<TypeDefinition>, std::less<>> Types;
  std::map<std::string, std::unique_ptr<AttrDefinition>, std::less<>> Attrs;
  std::map<std::string, std::unique_ptr<OpDefinition>, std::less<>> Ops;
  std::map<std::string, std::unique_ptr<EnumDef>, std::less<>> Enums;
};

} // namespace irdl

#endif // IRDL_IR_DIALECT_H
