//===- StructuralCompare.cpp ----------------------------------------===//

#include "ir/StructuralCompare.h"

#include "ir/Block.h"
#include "ir/Region.h"

#include <unordered_map>

using namespace irdl;

bool irdl::isStructurallyEquivalent(const ParamValue &A,
                                    const ParamValue &B) {
  if (A.getKind() != B.getKind())
    return false;
  switch (A.getKind()) {
  case ParamValue::Kind::Empty:
    return true;
  case ParamValue::Kind::Type:
    return isStructurallyEquivalent(A.getType(), B.getType());
  case ParamValue::Kind::Attr:
    return isStructurallyEquivalent(A.getAttr(), B.getAttr());
  case ParamValue::Kind::Int:
    return A.getInt() == B.getInt();
  case ParamValue::Kind::Float:
    return A.getFloat() == B.getFloat();
  case ParamValue::Kind::String:
    return A.getString() == B.getString();
  case ParamValue::Kind::Enum:
    // Enum definitions live in their context; compare by name + index.
    return A.getEnum().Index == B.getEnum().Index &&
           A.getEnum().Def->getFullName() == B.getEnum().Def->getFullName();
  case ParamValue::Kind::Array: {
    const auto &EA = A.getArray(), &EB = B.getArray();
    if (EA.size() != EB.size())
      return false;
    for (size_t I = 0; I != EA.size(); ++I)
      if (!isStructurallyEquivalent(EA[I], EB[I]))
        return false;
    return true;
  }
  case ParamValue::Kind::Opaque:
    return A.getOpaque() == B.getOpaque();
  }
  return false;
}

static bool paramsEquivalent(const std::vector<ParamValue> &A,
                             const std::vector<ParamValue> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (!isStructurallyEquivalent(A[I], B[I]))
      return false;
  return true;
}

bool irdl::isStructurallyEquivalent(Type A, Type B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  return A.getDef()->getFullName() == B.getDef()->getFullName() &&
         paramsEquivalent(A.getParams(), B.getParams());
}

bool irdl::isStructurallyEquivalent(Attribute A, Attribute B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  return A.getDef()->getFullName() == B.getDef()->getFullName() &&
         paramsEquivalent(A.getParams(), B.getParams());
}

namespace {

/// Lockstep comparator. The walk maps every value and block of A to its
/// positional counterpart in B; operand checks are deferred to the end so
/// forward references (graph regions, CFG back-edges) resolve.
class Comparator {
public:
  explicit Comparator(std::string *WhyNot) : WhyNot(WhyNot) {}

  bool run(Operation *A, Operation *B) {
    if (!compareOps(A, B, "root"))
      return false;
    for (const auto &[OpA, OpB, Where] : DeferredOperands) {
      for (unsigned I = 0, N = OpA->getNumOperands(); I != N; ++I) {
        auto It = ValueMap.find(OpA->getOperand(I).getImpl());
        if (It == ValueMap.end() ||
            It->second != OpB->getOperand(I).getImpl())
          return fail(Where, "operand " + std::to_string(I) +
                                 " refers to a different value");
      }
    }
    return true;
  }

private:
  bool fail(const std::string &Where, const std::string &Message) {
    if (WhyNot)
      *WhyNot = Where + ": " + Message;
    return false;
  }

  bool compareOps(Operation *A, Operation *B, const std::string &Where) {
    if (A->getName().str() != B->getName().str())
      return fail(Where, "op name '" + A->getName().str() + "' vs '" +
                             B->getName().str() + "'");
    if (A->getNumResults() != B->getNumResults())
      return fail(Where, "result count " +
                             std::to_string(A->getNumResults()) + " vs " +
                             std::to_string(B->getNumResults()));
    for (unsigned I = 0, N = A->getNumResults(); I != N; ++I) {
      if (!isStructurallyEquivalent(A->getResult(I).getType(),
                                    B->getResult(I).getType()))
        return fail(Where, "result " + std::to_string(I) + " type '" +
                               A->getResult(I).getType().str() + "' vs '" +
                               B->getResult(I).getType().str() + "'");
      ValueMap.emplace(A->getResult(I).getImpl(), B->getResult(I).getImpl());
    }

    if (A->getNumOperands() != B->getNumOperands())
      return fail(Where, "operand count " +
                             std::to_string(A->getNumOperands()) + " vs " +
                             std::to_string(B->getNumOperands()));
    if (A->getNumOperands())
      DeferredOperands.push_back({A, B, Where});

    const NamedAttrList &AttrsA = A->getAttrs();
    const NamedAttrList &AttrsB = B->getAttrs();
    if (AttrsA.size() != AttrsB.size())
      return fail(Where, "attribute count " +
                             std::to_string(AttrsA.size()) + " vs " +
                             std::to_string(AttrsB.size()));
    // NamedAttrList is name-sorted, so lockstep iteration is positional.
    auto ItB = AttrsB.begin();
    for (const NamedAttribute &NA : AttrsA) {
      if (NA.Name != ItB->Name)
        return fail(Where, "attribute '" + NA.Name + "' vs '" + ItB->Name +
                               "'");
      if (!isStructurallyEquivalent(NA.Attr, ItB->Attr))
        return fail(Where, "attribute '" + NA.Name + "' value '" +
                               NA.Attr.str() + "' vs '" + ItB->Attr.str() +
                               "'");
      ++ItB;
    }

    if (A->getNumSuccessors() != B->getNumSuccessors())
      return fail(Where, "successor count " +
                             std::to_string(A->getNumSuccessors()) + " vs " +
                             std::to_string(B->getNumSuccessors()));
    for (unsigned I = 0, N = A->getNumSuccessors(); I != N; ++I) {
      auto It = BlockMap.find(A->getSuccessor(I));
      if (It == BlockMap.end() || It->second != B->getSuccessor(I))
        return fail(Where, "successor " + std::to_string(I) +
                               " refers to a different block");
    }

    if (A->getNumRegions() != B->getNumRegions())
      return fail(Where, "region count " +
                             std::to_string(A->getNumRegions()) + " vs " +
                             std::to_string(B->getNumRegions()));
    for (unsigned I = 0, N = A->getNumRegions(); I != N; ++I)
      if (!compareRegions(A->getRegion(I), B->getRegion(I),
                          Where + " / region " + std::to_string(I)))
        return false;
    return true;
  }

  bool compareRegions(Region &A, Region &B, const std::string &Where) {
    if (A.getNumBlocks() != B.getNumBlocks())
      return fail(Where, "block count " +
                             std::to_string(A.getNumBlocks()) + " vs " +
                             std::to_string(B.getNumBlocks()));
    // Map all blocks and their arguments first: successor references and
    // operand uses of arguments may point forward.
    auto ItB = B.begin();
    for (Block &BA : A) {
      Block &BB = *ItB++;
      BlockMap.emplace(&BA, &BB);
      if (BA.getNumArguments() != BB.getNumArguments())
        return fail(Where, "block argument count " +
                               std::to_string(BA.getNumArguments()) +
                               " vs " +
                               std::to_string(BB.getNumArguments()));
      for (unsigned I = 0, N = BA.getNumArguments(); I != N; ++I) {
        if (!isStructurallyEquivalent(BA.getArgument(I).getType(),
                                      BB.getArgument(I).getType()))
          return fail(Where, "block argument " + std::to_string(I) +
                                 " type '" +
                                 BA.getArgument(I).getType().str() +
                                 "' vs '" +
                                 BB.getArgument(I).getType().str() + "'");
        ValueMap.emplace(BA.getArgument(I).getImpl(),
                         BB.getArgument(I).getImpl());
      }
    }
    ItB = B.begin();
    unsigned BlockIndex = 0;
    for (Block &BA : A) {
      Block &BB = *ItB++;
      std::string BlockWhere =
          Where + " / block " + std::to_string(BlockIndex++);
      if (BA.getNumOps() != BB.getNumOps())
        return fail(BlockWhere, "op count " +
                                    std::to_string(BA.getNumOps()) +
                                    " vs " +
                                    std::to_string(BB.getNumOps()));
      auto OpItB = BB.begin();
      unsigned OpIndex = 0;
      for (Operation &OpA : BA) {
        Operation &OpB = *OpItB++;
        if (!compareOps(&OpA, &OpB,
                        BlockWhere + " / op " + std::to_string(OpIndex++) +
                            " (" + OpA.getName().str() + ")"))
          return false;
      }
    }
    return true;
  }

  std::string *WhyNot;
  std::unordered_map<const detail::ValueImpl *, const detail::ValueImpl *>
      ValueMap;
  std::unordered_map<const Block *, const Block *> BlockMap;
  struct Deferred {
    Operation *A;
    Operation *B;
    std::string Where;
  };
  std::vector<Deferred> DeferredOperands;
};

} // namespace

bool irdl::isStructurallyEquivalent(Operation *A, Operation *B,
                                    std::string *WhyNot) {
  if (A == B)
    return true;
  if (!A || !B) {
    if (WhyNot)
      *WhyNot = "one operation is null";
    return false;
  }
  return Comparator(WhyNot).run(A, B);
}
