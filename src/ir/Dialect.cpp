//===- Dialect.cpp --------------------------------------------------===//

#include "ir/Dialect.h"

#include "ir/Context.h"

using namespace irdl;

std::string EnumDef::getFullName() const {
  return Owner->getNamespace() + "." + Name;
}

std::optional<unsigned> EnumDef::lookupCase(std::string_view Case) const {
  for (unsigned I = 0, E = Cases.size(); I != E; ++I)
    if (Cases[I] == Case)
      return I;
  return std::nullopt;
}

std::string TypeOrAttrDefinitionBase::getFullName() const {
  return Owner->getNamespace() + "." + Name;
}

std::optional<unsigned>
TypeOrAttrDefinitionBase::lookupParam(std::string_view ParamName) const {
  for (unsigned I = 0, E = ParamNames.size(); I != E; ++I)
    if (ParamNames[I] == ParamName)
      return I;
  return std::nullopt;
}

OpDefinition::OpDefinition(Dialect *D, std::string Name)
    : Owner(D), Name(std::move(Name)),
      FullName(D->getNamespace() + "." + this->Name) {}

TypeDefinition *Dialect::addType(std::string Name) {
  auto [It, Inserted] = Types.try_emplace(Name, nullptr);
  if (!Inserted)
    return nullptr;
  It->second = std::make_unique<TypeDefinition>(this, std::move(Name));
  return It->second.get();
}

AttrDefinition *Dialect::addAttr(std::string Name) {
  auto [It, Inserted] = Attrs.try_emplace(Name, nullptr);
  if (!Inserted)
    return nullptr;
  It->second = std::make_unique<AttrDefinition>(this, std::move(Name));
  return It->second.get();
}

OpDefinition *Dialect::addOp(std::string Name) {
  auto [It, Inserted] = Ops.try_emplace(Name, nullptr);
  if (!Inserted)
    return nullptr;
  It->second = std::make_unique<OpDefinition>(this, std::move(Name));
  return It->second.get();
}

EnumDef *Dialect::addEnum(std::string Name, std::vector<std::string> Cases) {
  auto [It, Inserted] = Enums.try_emplace(Name, nullptr);
  if (!Inserted)
    return nullptr;
  It->second =
      std::make_unique<EnumDef>(this, std::move(Name), std::move(Cases));
  return It->second.get();
}

TypeDefinition *Dialect::lookupType(std::string_view Name) const {
  auto It = Types.find(Name);
  return It == Types.end() ? nullptr : It->second.get();
}

AttrDefinition *Dialect::lookupAttr(std::string_view Name) const {
  auto It = Attrs.find(Name);
  return It == Attrs.end() ? nullptr : It->second.get();
}

OpDefinition *Dialect::lookupOp(std::string_view Name) const {
  auto It = Ops.find(Name);
  return It == Ops.end() ? nullptr : It->second.get();
}

EnumDef *Dialect::lookupEnum(std::string_view Name) const {
  auto It = Enums.find(Name);
  return It == Enums.end() ? nullptr : It->second.get();
}

template <typename MapT, typename T>
static std::vector<T *> collectDefs(const MapT &Map) {
  std::vector<T *> Result;
  Result.reserve(Map.size());
  for (const auto &[Name, Def] : Map)
    Result.push_back(Def.get());
  return Result;
}

std::vector<TypeDefinition *> Dialect::getTypeDefs() const {
  return collectDefs<decltype(Types), TypeDefinition>(Types);
}
std::vector<AttrDefinition *> Dialect::getAttrDefs() const {
  return collectDefs<decltype(Attrs), AttrDefinition>(Attrs);
}
std::vector<OpDefinition *> Dialect::getOpDefs() const {
  return collectDefs<decltype(Ops), OpDefinition>(Ops);
}
std::vector<EnumDef *> Dialect::getEnumDefs() const {
  return collectDefs<decltype(Enums), EnumDef>(Enums);
}
