//===- Builder.h - Operation builder -----------------------------*- C++ -*-===//
///
/// \file
/// OpBuilder: creates operations at an insertion point, mirroring
/// mlir::OpBuilder. Used by examples, tests, and the pattern rewriter.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_BUILDER_H
#define IRDL_IR_BUILDER_H

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"

namespace irdl {

class OpBuilder {
public:
  explicit OpBuilder(IRContext *Ctx) : Ctx(Ctx) {}

  IRContext *getContext() const { return Ctx; }

  //===------------------------------------------------------------------===//
  // Insertion point
  //===------------------------------------------------------------------===//

  /// Sets the insertion point to before \p Pos in \p B.
  void setInsertionPoint(Block *B, Block::iterator Pos) {
    InsertBlock = B;
    InsertPos = Pos;
  }

  /// Inserts right before \p Op.
  void setInsertionPoint(Operation *Op) {
    assert(Op->getBlock() && "op is not in a block");
    setInsertionPoint(Op->getBlock(), Block::iterator(Op));
  }

  /// Inserts right after \p Op.
  void setInsertionPointAfter(Operation *Op) {
    assert(Op->getBlock() && "op is not in a block");
    Block::iterator Pos(Op);
    ++Pos;
    setInsertionPoint(Op->getBlock(), Pos);
  }

  /// Inserts at the end of \p B.
  void setInsertionPointToEnd(Block *B) { setInsertionPoint(B, B->end()); }

  /// Inserts at the start of \p B.
  void setInsertionPointToStart(Block *B) {
    setInsertionPoint(B, B->begin());
  }

  void clearInsertionPoint() { InsertBlock = nullptr; }
  Block *getInsertionBlock() const { return InsertBlock; }
  Block::iterator getInsertionPoint() const { return InsertPos; }

  //===------------------------------------------------------------------===//
  // Creation
  //===------------------------------------------------------------------===//

  /// Creates a block (with one argument per type in \p ArgTypes) at the
  /// end of \p R and moves the insertion point to its end.
  Block *createBlock(Region *R, TypeRange ArgTypes = {}) {
    Block *B = Block::create(*Ctx, ArgTypes);
    R->push_back(B);
    setInsertionPointToEnd(B);
    return B;
  }

  /// Creates an operation from \p State and inserts it (if an insertion
  /// point is set). Regions in the state are moved into the operation.
  Operation *create(OperationState &State) {
    Operation *Op = Operation::create(State);
    if (InsertBlock)
      InsertPos = ++InsertBlock->insert(InsertPos, Op);
    return Op;
  }

  /// Convenience overload resolving the op name in the context. The name
  /// must be registered unless the context allows unregistered ops.
  Operation *create(std::string_view OpName, std::vector<Value> Operands,
                    std::vector<Type> ResultTypes,
                    NamedAttrList Attrs = {}) {
    OperationName Name = resolveName(OpName);
    OperationState State(*Ctx, Name);
    State.Operands = std::move(Operands);
    State.ResultTypes = std::move(ResultTypes);
    State.Attributes = std::move(Attrs);
    return create(State);
  }

  /// Resolves \p OpName against the context's registered definitions.
  OperationName resolveName(std::string_view OpName) const {
    if (const OpDefinition *Def = Ctx->resolveOpDef(OpName))
      return OperationName(Def);
    assert(Ctx->allowsUnregisteredOps() &&
           "creating an unregistered operation");
    return OperationName(std::string(OpName));
  }

private:
  IRContext *Ctx;
  Block *InsertBlock = nullptr;
  Block::iterator InsertPos;
};

} // namespace irdl

#endif // IRDL_IR_BUILDER_H
