//===- Region.cpp ---------------------------------------------------===//

#include "ir/Region.h"

using namespace irdl;

Block &Region::emplaceBlock(TypeRange ArgTypes) {
  assert(Ctx && "region has no context");
  Block *B = Block::create(*Ctx, ArgTypes);
  push_back(B);
  return *B;
}

Region::iterator Region::insert(iterator Pos, Block *B) {
  assert(!B->getParent() && "block is already in a region");
  B->setParentInternal(this);
  return Blocks.insert(Pos, B);
}

void Region::push_back(Block *B) { insert(end(), B); }

void Region::remove(Block *B) {
  assert(B->getParent() == this && "block is not in this region");
  B->setParentInternal(nullptr);
  Blocks.remove(B);
}

void Region::erase(Block *B) {
  remove(B);
  B->destroy();
}

Region::~Region() { dropAllReferences(); }

void Region::dropAllReferences() {
  for (Block &B : Blocks)
    for (Operation &Op : B)
      Op.walk([](Operation *Nested) { Nested->setOperands({}); });
}

void Region::takeBody(Region &Other) {
  assert(Other.Ctx == Ctx && "taking blocks across contexts");
  for (Block &B : Other)
    B.setParentInternal(this);
  Blocks.splice(end(), Other.Blocks);
}
