//===- Value.h - SSA values and use-def chains ------------------*- C++ -*-===//
///
/// \file
/// SSA values (operation results and block arguments) with intrusive
/// use-def chains. Each OpOperand is a link in the use list of the value it
/// references, enabling O(1) replace-all-uses-with — the workhorse of the
/// pattern-rewriting driver.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_VALUE_H
#define IRDL_IR_VALUE_H

#include "ir/Types.h"
#include "support/Casting.h"

#include <cassert>

namespace irdl {

class Block;
class OpOperand;
class Operation;
class Value;

namespace detail {

/// Backing storage shared by all SSA value kinds.
class ValueImpl {
public:
  enum class Kind { OpResult, BlockArgument };

  ValueImpl(Kind K, Type Ty) : K(K), Ty(Ty) {}
  ValueImpl(const ValueImpl &) = delete;
  ValueImpl &operator=(const ValueImpl &) = delete;

  Kind getKind() const { return K; }
  Type getType() const { return Ty; }
  void setType(Type NewTy) { Ty = NewTy; }

  OpOperand *FirstUse = nullptr;

private:
  Kind K;
  Type Ty;
};

class OpResultImpl : public ValueImpl {
public:
  OpResultImpl(Type Ty, Operation *Owner, unsigned Index)
      : ValueImpl(Kind::OpResult, Ty), Owner(Owner), Index(Index) {}

  static bool classof(const ValueImpl *V) {
    return V->getKind() == Kind::OpResult;
  }

  Operation *Owner;
  unsigned Index;
};

class BlockArgumentImpl : public ValueImpl {
public:
  BlockArgumentImpl(Type Ty, Block *Owner, unsigned Index)
      : ValueImpl(Kind::BlockArgument, Ty), Owner(Owner), Index(Index) {}

  static bool classof(const ValueImpl *V) {
    return V->getKind() == Kind::BlockArgument;
  }

  Block *Owner;
  unsigned Index;
};

} // namespace detail

/// One use of a Value by an Operation; a link in the value's use list.
/// OpOperands are owned by their operation and are neither copyable nor
/// movable (the use list points at them).
class OpOperand {
public:
  OpOperand(Operation *Owner, Value Val);
  OpOperand(const OpOperand &) = delete;
  OpOperand &operator=(const OpOperand &) = delete;
  ~OpOperand() { unlink(); }

  Operation *getOwner() const { return Owner; }
  Value get() const;

  /// Points this operand at a (possibly null) new value, maintaining use
  /// lists.
  void set(Value NewValue);

  OpOperand *getNextUse() const { return NextUse; }

private:
  friend class Value;
  void linkTo(detail::ValueImpl *Impl);
  void unlink();

  Operation *Owner;
  detail::ValueImpl *Val = nullptr;
  OpOperand *NextUse = nullptr;
  OpOperand **Back = nullptr;
};

/// A value-semantic handle to an SSA value.
class Value {
public:
  Value() = default;
  /*implicit*/ Value(detail::ValueImpl *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const Value &RHS) const { return Impl == RHS.Impl; }
  bool operator!=(const Value &RHS) const { return Impl != RHS.Impl; }

  detail::ValueImpl *getImpl() const { return Impl; }

  Type getType() const {
    assert(Impl && "null value");
    return Impl->getType();
  }
  void setType(Type Ty) {
    assert(Impl && "null value");
    Impl->setType(Ty);
  }

  bool isOpResult() const {
    return Impl && isa<detail::OpResultImpl>(Impl);
  }
  bool isBlockArgument() const {
    return Impl && isa<detail::BlockArgumentImpl>(Impl);
  }

  /// Returns the defining operation, or null for block arguments.
  Operation *getDefiningOp() const;

  /// For op results: the result index. For block arguments: the argument
  /// index.
  unsigned getIndex() const;

  /// For block arguments: the owning block. Null for op results.
  Block *getOwnerBlock() const;

  /// Returns the block in which this value is defined (the parent block of
  /// the defining op, or the owner block of the argument).
  Block *getParentBlock() const;

  bool use_empty() const { return !Impl || Impl->FirstUse == nullptr; }
  bool hasOneUse() const {
    return Impl && Impl->FirstUse && !Impl->FirstUse->getNextUse();
  }
  OpOperand *getFirstUse() const { return Impl ? Impl->FirstUse : nullptr; }

  /// Counts the uses; O(#uses).
  unsigned getNumUses() const;

  /// Rewrites every use of this value to use \p NewValue instead.
  void replaceAllUsesWith(Value NewValue) const;

private:
  detail::ValueImpl *Impl = nullptr;
};

} // namespace irdl

#endif // IRDL_IR_VALUE_H
