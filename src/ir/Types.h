//===- Types.h - Uniqued types, attributes, parameter values ----*- C++ -*-===//
///
/// \file
/// The value-semantic handles at the heart of the IR: Type and Attribute
/// are pointers to context-uniqued storage; ParamValue is the variant that
/// parameterizes them (Listing 9 of the paper: a type may carry integers,
/// enums, strings, nested types/attributes, arrays, or opaque C++ payloads
/// declared through IRDL-C++'s TypeOrAttrParam).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_TYPES_H
#define IRDL_IR_TYPES_H

#include "support/Hashing.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace irdl {

class Attribute;
class AttrDefinition;
class Dialect;
class EnumDef;
class IRContext;
class ParamValue;
class Type;
class TypeDefinition;
struct AttrStorage;
struct TypeStorage;

/// Signedness of an integer value or integer type (Listing 9).
enum class Signedness : uint8_t { Signless, Signed, Unsigned };

/// Returns "i", "si", or "ui" — the sugar prefix for integer types.
std::string_view signednessPrefix(Signedness S);

/// An integer parameter value: a width- and signedness-tagged integer.
/// This is the runtime representation behind the int8_t..uint64_t parameter
/// constraints of Figure 2b.
struct IntVal {
  uint16_t Width = 64;
  Signedness Sign = Signedness::Signless;
  int64_t Value = 0;

  bool operator==(const IntVal &RHS) const = default;
};

/// A floating-point parameter value tagged with its bit-width.
struct FloatVal {
  uint16_t Width = 64;
  double Value = 0.0;

  bool operator==(const FloatVal &RHS) const = default;
};

/// A reference to one constructor of an Enum definition.
struct EnumVal {
  const EnumDef *Def = nullptr;
  unsigned Index = 0;

  bool operator==(const EnumVal &RHS) const = default;
};

/// An opaque parameter declared via IRDL-C++'s TypeOrAttrParam directive:
/// a named wrapper around an uninterpreted textual payload, parsed and
/// printed by callbacks registered under ParamTypeName.
struct OpaqueVal {
  std::string ParamTypeName;
  std::string Payload;

  bool operator==(const OpaqueVal &RHS) const = default;
};

/// A context-uniqued type handle. Null-constructible; compare by pointer.
class Type {
public:
  Type() = default;
  explicit Type(const TypeStorage *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const Type &RHS) const { return Impl == RHS.Impl; }
  bool operator!=(const Type &RHS) const { return Impl != RHS.Impl; }

  const TypeStorage *getImpl() const { return Impl; }
  const TypeDefinition *getDef() const;
  const std::vector<ParamValue> &getParams() const;
  Dialect *getDialect() const;
  IRContext *getContext() const;

  /// Returns the fully qualified name, e.g. "cmath.complex".
  std::string getName() const;

  /// Returns the named parameter, asserting it exists.
  const ParamValue &getParam(std::string_view Name) const;

  /// Prints in textual syntax (`!cmath.complex<f32>` / sugar like `f32`).
  std::string str() const;

private:
  const TypeStorage *Impl = nullptr;
};

/// A context-uniqued attribute handle.
class Attribute {
public:
  Attribute() = default;
  explicit Attribute(const AttrStorage *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const Attribute &RHS) const { return Impl == RHS.Impl; }
  bool operator!=(const Attribute &RHS) const { return Impl != RHS.Impl; }

  const AttrStorage *getImpl() const { return Impl; }
  const AttrDefinition *getDef() const;
  const std::vector<ParamValue> &getParams() const;
  Dialect *getDialect() const;
  IRContext *getContext() const;

  std::string getName() const;
  const ParamValue &getParam(std::string_view Name) const;

  /// Prints in textual syntax (`#d.a<...>` / sugar like `3 : i32`).
  std::string str() const;

private:
  const AttrStorage *Impl = nullptr;
};

/// The variant value carried by type and attribute parameters.
class ParamValue {
public:
  enum class Kind {
    Empty,
    Type,
    Attr,
    Int,
    Float,
    String,
    Enum,
    Array,
    Opaque,
  };

  ParamValue() = default;
  /*implicit*/ ParamValue(Type T) : Storage(T) {}
  /*implicit*/ ParamValue(Attribute A) : Storage(A) {}
  /*implicit*/ ParamValue(IntVal V) : Storage(V) {}
  /*implicit*/ ParamValue(FloatVal V) : Storage(V) {}
  /*implicit*/ ParamValue(std::string S) : Storage(std::move(S)) {}
  /*implicit*/ ParamValue(EnumVal V) : Storage(V) {}
  /*implicit*/ ParamValue(std::vector<ParamValue> Elems)
      : Storage(std::move(Elems)) {}
  /*implicit*/ ParamValue(OpaqueVal V) : Storage(std::move(V)) {}

  Kind getKind() const { return static_cast<Kind>(Storage.index()); }

  bool isType() const { return getKind() == Kind::Type; }
  bool isAttr() const { return getKind() == Kind::Attr; }
  bool isInt() const { return getKind() == Kind::Int; }
  bool isFloat() const { return getKind() == Kind::Float; }
  bool isString() const { return getKind() == Kind::String; }
  bool isEnum() const { return getKind() == Kind::Enum; }
  bool isArray() const { return getKind() == Kind::Array; }
  bool isOpaque() const { return getKind() == Kind::Opaque; }

  Type getType() const { return std::get<Type>(Storage); }
  Attribute getAttr() const { return std::get<Attribute>(Storage); }
  const IntVal &getInt() const { return std::get<IntVal>(Storage); }
  const FloatVal &getFloat() const { return std::get<FloatVal>(Storage); }
  const std::string &getString() const {
    return std::get<std::string>(Storage);
  }
  const EnumVal &getEnum() const { return std::get<EnumVal>(Storage); }
  const std::vector<ParamValue> &getArray() const {
    return std::get<std::vector<ParamValue>>(Storage);
  }
  const OpaqueVal &getOpaque() const { return std::get<OpaqueVal>(Storage); }

  bool operator==(const ParamValue &RHS) const = default;

  /// Structural hash consistent with operator==.
  size_t hash() const;

  /// Prints in the textual parameter syntax.
  std::string str() const;

private:
  std::variant<std::monostate, Type, Attribute, IntVal, FloatVal,
               std::string, EnumVal, std::vector<ParamValue>, OpaqueVal>
      Storage;
};

/// Uniqued backing store for a Type. Created only by IRContext.
struct TypeStorage {
  const TypeDefinition *Def;
  std::vector<ParamValue> Params;
};

/// Uniqued backing store for an Attribute. Created only by IRContext.
struct AttrStorage {
  const AttrDefinition *Def;
  std::vector<ParamValue> Params;
};

} // namespace irdl

#endif // IRDL_IR_TYPES_H
