//===- OpArena.h - Bump-pointer arena for IR objects -------------*- C++ -*-===//
///
/// \file
/// The per-context allocator behind Operation and Block storage. An OpArena
/// hands out blocks from large bump-pointer slabs and recycles erased
/// blocks through size-class free lists, so the parse→verify→rewrite hot
/// paths stop paying one `malloc`/`free` round trip per operation or
/// basic block (plus one per operand, result, region, and block argument
/// — the trailing-object layouts fold those into each object's single
/// block).
///
/// Thread model: the arena is sharded. Each thread is assigned a shard
/// (round-robin on first use, like the metrics registry), and every shard
/// owns its own slab chain and free-list buckets behind its own mutex —
/// so the parallel verifier and the per-function pass driver allocate from
/// per-thread slabs without contending. Blocks may be freed from a
/// different thread than the one that allocated them; the block simply
/// migrates to the freeing thread's shard. All slabs are owned by the
/// arena and released when it is destroyed.
///
/// Freed blocks are poisoned (0xA5 fill, plus ASan manual poisoning when
/// building under AddressSanitizer) so a stale Value or Operation pointer
/// dereferenced after erase() traps deterministically instead of silently
/// reading recycled bytes.
///
/// Lifetime contract: deallocate() recycles a block into a free list; the
/// underlying slab memory is only returned to the OS when the arena (i.e.
/// the owning IRContext) dies. Operations and blocks must therefore not
/// outlive their context — which was already true, since their types and
/// attributes are context-owned. See docs/memory-layout.md.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_OPARENA_H
#define IRDL_IR_OPARENA_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace irdl {

/// Aggregated point-in-time counters of one arena (summed over shards).
struct OpArenaStats {
  uint64_t Slabs = 0;          ///< Slabs currently allocated.
  uint64_t SlabBytes = 0;      ///< Total bytes reserved in slabs.
  uint64_t BytesLive = 0;      ///< Bytes handed out and not yet freed.
  uint64_t BytesAllocated = 0; ///< Cumulative bytes served by allocate().
  uint64_t BytesReused = 0;    ///< Cumulative bytes served from free lists.
  uint64_t NumAllocs = 0;      ///< allocate() calls.
  uint64_t NumFrees = 0;       ///< deallocate() calls.
  uint64_t FreeListHits = 0;   ///< allocate() calls served by a free list.
  uint64_t LargeAllocs = 0;    ///< Allocations beyond the bucketed sizes.
};

/// A sharded bump-pointer arena with size-class free lists.
class OpArena {
public:
  /// Allocation granule; every block size is rounded up to a multiple.
  static constexpr size_t Granule = 16;
  /// Blocks up to this size are recycled through free-list buckets;
  /// larger ones fall back to the heap (still one allocation per op).
  static constexpr size_t MaxBucketedSize = 4096;
  /// Bytes reserved per slab.
  static constexpr size_t SlabSize = 64 * 1024;

  OpArena();
  ~OpArena();
  OpArena(const OpArena &) = delete;
  OpArena &operator=(const OpArena &) = delete;

  /// Returns a block of at least \p Size bytes aligned to \p Align
  /// (Align must divide Granule). Never returns null; memory comes from
  /// the calling thread's shard.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t));

  /// Recycles the block at \p Ptr of \p Size bytes (the size passed to
  /// allocate). The block is poisoned and pushed onto a free-list bucket
  /// of the calling thread's shard; slab memory is not released.
  void deallocate(void *Ptr, size_t Size);

  /// Counters summed over all shards. O(#shards); intended for tests,
  /// the metrics layer, and the bench harness — not per-op hot paths.
  OpArenaStats getStats() const;

  /// Rounds \p Size up to the arena granule (what allocate really uses).
  static size_t roundUp(size_t Size) {
    return (Size + Granule - 1) & ~(Granule - 1);
  }

private:
  static constexpr size_t NumShards = 16;
  static constexpr size_t NumBuckets = MaxBucketedSize / Granule;

  struct Shard {
    mutable std::mutex Mu;
    std::vector<std::unique_ptr<std::byte[]>> Slabs;
    std::byte *Cur = nullptr;
    std::byte *End = nullptr;
    /// Intrusive singly-linked free lists, one per size class. The next
    /// pointer lives in the first word of the freed block.
    std::array<void *, NumBuckets> FreeLists{};
    /// Out-of-band blocks (> MaxBucketedSize), keyed by address.
    std::unordered_map<void *, std::unique_ptr<std::byte[]>> Large;
    OpArenaStats Stats;
  };

  Shard &myShard();

  std::array<Shard, NumShards> Shards;
};

} // namespace irdl

#endif // IRDL_IR_OPARENA_H
