//===- Printer.h - Textual IR printing ---------------------------*- C++ -*-===//
///
/// \file
/// Printing of types, attributes, parameter values, and operations in the
/// MLIR-like textual syntax. Operations print in the generic form
/// (`%r = "d.op"(%a) : (T) -> T`) unless their definition installs a custom
/// print hook — which is what IRDL `Format` directives compile into.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_PRINTER_H
#define IRDL_IR_PRINTER_H

#include "ir/Operation.h"

#include <ostream>
#include <string>
#include <unordered_map>

namespace irdl {

class Block;
class Region;

/// Prints \p T in type syntax (`f32`, `i32`, `!cmath.complex<f32>`, ...).
void printType(Type T, std::ostream &OS);
std::string printTypeToString(Type T);

/// Prints \p A in attribute syntax. With \p Sugar, builtin attributes use
/// their short forms (`3 : i32`, `"s"`, `unit`, `[..]`, a bare type);
/// without it, the canonical `#dialect.name<...>` form is used — which is
/// the form embedded inside type/attribute parameter lists.
void printAttr(Attribute A, std::ostream &OS, bool Sugar = true);
std::string printAttrToString(Attribute A);

/// Prints \p P in parameter syntax.
void printParam(const ParamValue &P, std::ostream &OS);
std::string printParamToString(const ParamValue &P);

/// Prints a float in a form that round-trips through parsing.
void printFloatLiteral(double Value, std::ostream &OS);

/// Options controlling operation printing.
struct PrintOptions {
  /// Forces the generic form even when a custom print hook exists.
  bool GenericForm = false;
};

/// Stateful printer for operations: assigns SSA value names (%0, %arg0 via
/// a single counter; multi-result ops use `%n:k` / `%n#i`) and block labels
/// (^bb0) scoped to the top-level print.
class IRPrinter {
public:
  IRPrinter(std::ostream &OS, PrintOptions Opts = {}) : OS(OS), Opts(Opts) {}

  /// Prints \p Op (with nested regions), indented at the current level.
  void printOp(Operation *Op);

  /// Prints only the right-hand side of \p Op (no result list, no
  /// trailing newline); used when embedding ops.
  void printOpRHS(Operation *Op);

  void printValueName(Value V);
  void printBlockName(Block *B);
  void printRegion(Region &R, bool PrintEntryArgs = false);
  void printAttrDict(const NamedAttrList &Attrs,
                     const std::vector<std::string> &Elided = {});

  std::ostream &getStream() { return OS; }
  PrintOptions &getOptions() { return Opts; }
  void indent();

private:
  void printGenericOp(Operation *Op);
  void printBlock(Block &B, bool PrintHeader);
  std::string &nameValue(Value V);

  std::ostream &OS;
  PrintOptions Opts;
  unsigned Indent = 0;
  unsigned NextValueId = 0;
  unsigned NextBlockId = 0;
  std::unordered_map<const detail::ValueImpl *, std::string> ValueNames;
  std::unordered_map<const Block *, std::string> BlockNames;

  friend class CustomOpPrinter;
};

/// The restricted printer interface handed to custom print hooks (native
/// ones for builtin ops, generated ones for IRDL `Format` directives).
class CustomOpPrinter {
public:
  explicit CustomOpPrinter(IRPrinter &P) : P(P) {}

  std::ostream &getStream() { return P.getStream(); }
  CustomOpPrinter &operator<<(std::string_view Str) {
    P.getStream() << Str;
    return *this;
  }

  void printOperand(Value V) { P.printValueName(V); }
  void printType(Type T) { irdl::printType(T, P.getStream()); }
  void printAttribute(Attribute A) { irdl::printAttr(A, P.getStream()); }
  void printParam(const ParamValue &PV) {
    irdl::printParam(PV, P.getStream());
  }
  void printBlockName(Block *B) { P.printBlockName(B); }
  void printRegion(Region &R, bool PrintEntryArgs = false) {
    P.printRegion(R, PrintEntryArgs);
  }
  void printOptionalAttrDict(const NamedAttrList &Attrs,
                             const std::vector<std::string> &Elided = {}) {
    P.printAttrDict(Attrs, Elided);
  }

private:
  IRPrinter &P;
};

/// Convenience: prints \p Op to a string (custom form where available).
std::string printOpToString(Operation *Op, PrintOptions Opts = {});

} // namespace irdl

#endif // IRDL_IR_PRINTER_H
