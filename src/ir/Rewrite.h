//===- Rewrite.h - Pattern rewriting -----------------------------*- C++ -*-===//
///
/// \file
/// A pattern-rewriting framework in the spirit of MLIR's: RewritePattern
/// subclasses match an operation and rewrite it through a PatternRewriter;
/// applyPatternsGreedily drives a worklist to a fixed point. Together with
/// IRDL's dynamic dialect registration this supports the paper's Section 3
/// flow: a pattern-based compilation pipeline over dialects that were never
/// compiled into the binary (the Listing 1 `conorm` optimization).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_REWRITE_H
#define IRDL_IR_REWRITE_H

#include "ir/Builder.h"

#include <memory>
#include <string>
#include <vector>

namespace irdl {

/// Mutation interface handed to patterns. All IR changes made during
/// matchAndRewrite must go through this class so the driver can keep its
/// worklist in sync.
class PatternRewriter : public OpBuilder {
public:
  explicit PatternRewriter(IRContext *Ctx) : OpBuilder(Ctx) {}
  virtual ~PatternRewriter();

  /// Replaces \p Op's results with \p NewValues and erases it.
  void replaceOp(Operation *Op, std::span<const Value> NewValues);
  void replaceOp(Operation *Op, std::initializer_list<Value> NewValues) {
    replaceOp(Op, std::span<const Value>(NewValues.begin(),
                                         NewValues.size()));
  }
  /// Convenience: replace with another op's results.
  void replaceOp(Operation *Op, ResultRange NewValues) {
    replaceOp(Op, NewValues.vec());
  }

  /// Erases \p Op, which must have no uses.
  void eraseOp(Operation *Op);

  /// Creates and inserts an op, notifying the driver.
  Operation *createOp(OperationState &State);

  /// Notifies that \p Op was modified in place.
  virtual void notifyOpModified(Operation *Op) { (void)Op; }

protected:
  virtual void notifyOpInserted(Operation *Op) { (void)Op; }
  virtual void notifyOpErased(Operation *Op) { (void)Op; }
  virtual void notifyOpReplaced(Operation *Op,
                                std::span<const Value> NewValues) {
    (void)Op;
    (void)NewValues;
  }
};

/// A rewrite pattern rooted at operations named \p RootName (empty matches
/// any operation).
class RewritePattern {
public:
  RewritePattern(std::string RootName, unsigned Benefit = 1)
      : RootName(std::move(RootName)), Benefit(Benefit) {}
  virtual ~RewritePattern();

  const std::string &getRootName() const { return RootName; }
  unsigned getBenefit() const { return Benefit; }

  /// Attempts to match \p Op and rewrite it. Returns success if the IR was
  /// changed.
  virtual LogicalResult matchAndRewrite(Operation *Op,
                                        PatternRewriter &Rewriter) const = 0;

private:
  std::string RootName;
  unsigned Benefit;
};

/// An owning set of patterns, indexed by root op name.
class RewritePatternSet {
public:
  explicit RewritePatternSet(IRContext *Ctx) : Ctx(Ctx) {}

  IRContext *getContext() const { return Ctx; }

  void add(std::unique_ptr<RewritePattern> Pattern) {
    Patterns.push_back(std::move(Pattern));
  }

  /// Convenience: constructs a pattern of type \p PatternT in place.
  template <typename PatternT, typename... Args>
  void add(Args &&...CtorArgs) {
    Patterns.push_back(
        std::make_unique<PatternT>(std::forward<Args>(CtorArgs)...));
  }

  const std::vector<std::unique_ptr<RewritePattern>> &getPatterns() const {
    return Patterns;
  }

private:
  IRContext *Ctx;
  std::vector<std::unique_ptr<RewritePattern>> Patterns;
};

/// Statistics of one greedy rewrite run.
struct RewriteStatistics {
  unsigned NumRewrites = 0;
  unsigned NumIterations = 0;
  bool Converged = true;
};

/// Applies \p Patterns to \p Root's regions repeatedly (worklist-driven,
/// highest benefit first) until a fixed point or \p MaxIterations sweeps.
RewriteStatistics applyPatternsGreedily(Operation *Root,
                                        const RewritePatternSet &Patterns,
                                        unsigned MaxIterations = 10);

/// Erases ops whose results are unused and whose definitions mark no
/// side effects... conservatively: only ops explicitly named in
/// \p PureOpNames. Returns the number of erased ops.
unsigned eraseDeadOps(Operation *Root,
                      const std::vector<std::string> &PureOpNames);

} // namespace irdl

#endif // IRDL_IR_REWRITE_H
