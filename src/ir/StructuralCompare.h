//===- StructuralCompare.h - Structural IR equivalence ------------*- C++ -*-===//
///
/// \file
/// Structural (cross-context) equivalence of IR: two operations are
/// equivalent when their names, result types, attributes, operand
/// wiring, successor wiring, and nested regions/blocks/arguments all
/// match, with types and attributes compared by definition name and
/// parameters rather than by uniqued pointer — so a module roundtripped
/// through text or bytecode into a *different* IRContext still compares
/// equal. This is the oracle shared by the print→reparse and bytecode
/// roundtrip tests.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_STRUCTURALCOMPARE_H
#define IRDL_IR_STRUCTURALCOMPARE_H

#include "ir/Operation.h"

#include <string>

namespace irdl {

/// Structural equivalence of types/attributes/parameter values across
/// contexts: definition full names and parameters, recursively.
bool isStructurallyEquivalent(Type A, Type B);
bool isStructurallyEquivalent(Attribute A, Attribute B);
bool isStructurallyEquivalent(const ParamValue &A, const ParamValue &B);

/// Structural equivalence of two operation trees. Operand and successor
/// wiring is compared through a value/block correspondence built during
/// the lockstep walk, so SSA names and pointer identity are irrelevant.
/// When the operations differ and \p WhyNot is non-null, it receives a
/// one-line description of the first difference, with a path to the
/// offending op (e.g. "region 0 / block 1 / op 2 (cmath.add): ...").
bool isStructurallyEquivalent(Operation *A, Operation *B,
                              std::string *WhyNot = nullptr);

} // namespace irdl

#endif // IRDL_IR_STRUCTURALCOMPARE_H
