//===- PassInstrumentation.h - Pass observation hooks ------------*- C++ -*-===//
///
/// \file
/// MLIR-style PassInstrumentation: observers attached to a PassManager
/// that are notified around every pipeline, pass, and inter-pass
/// verifier run. Multiple instrumentations may be attached; `before`
/// hooks fire in registration order and `after` hooks in reverse
/// registration order, so instrumentations nest like scopes.
///
/// Hook order for a pipeline of passes P1..Pn with verification enabled:
///
///   runBeforePipeline
///     runBeforeVerifier / runAfterVerifier          (initial verify)
///     runBeforePass(P1) ... runAfterPass(P1)        (or
///                             runAfterPassFailed(P1) on failure)
///     runBeforeVerifier / runAfterVerifier          (verify after P1)
///     ...
///   runAfterPipeline                                (also on failure)
///
/// PassTimingInstrumentation is the bundled implementation that times
/// each pass and verifier run into a TimerGroup (the `--timing` support
/// of irdl_opt).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_PASSINSTRUMENTATION_H
#define IRDL_IR_PASSINSTRUMENTATION_H

#include "support/Timing.h"

#include <cstdint>
#include <vector>

namespace irdl {

class Operation;
class Pass;

/// Callback interface observing pass-pipeline execution. Default
/// implementations do nothing; override the hooks of interest.
class PassInstrumentation {
public:
  virtual ~PassInstrumentation();

  virtual void runBeforePipeline(Operation *Root);
  virtual void runAfterPipeline(Operation *Root);

  virtual void runBeforePass(const Pass *P, Operation *Root);
  virtual void runAfterPass(const Pass *P, Operation *Root);
  /// Called instead of runAfterPass when the pass returns failure.
  virtual void runAfterPassFailed(const Pass *P, Operation *Root);

  virtual void runBeforeVerifier(Operation *Root);
  virtual void runAfterVerifier(Operation *Root, bool Succeeded);
};

/// Times the pipeline, each pass (by name), and each inter-pass verifier
/// run ("verify-each") into a TimerGroup. When constructed without a
/// group it resolves the process-wide active timer group at each
/// pipeline start, so `setActiveTimerGroup` + this instrumentation is
/// all a driver needs for `--timing`.
class PassTimingInstrumentation : public PassInstrumentation {
public:
  explicit PassTimingInstrumentation(TimerGroup *Group = nullptr)
      : FixedGroup(Group) {}

  void runBeforePipeline(Operation *Root) override;
  void runAfterPipeline(Operation *Root) override;
  void runBeforePass(const Pass *P, Operation *Root) override;
  void runAfterPass(const Pass *P, Operation *Root) override;
  void runAfterPassFailed(const Pass *P, Operation *Root) override;
  void runBeforeVerifier(Operation *Root) override;
  void runAfterVerifier(Operation *Root, bool Succeeded) override;

private:
  struct OpenScope {
    TimerGroup::Node *Node;
    uint64_t StartNs;
  };

  void open(std::string_view Name);
  void close();

  TimerGroup *FixedGroup;
  TimerGroup *Group = nullptr; // resolved for the current pipeline
  std::vector<OpenScope> Open;
};

/// Records a per-pass wall-time histogram (`irdl_pass_duration_ns`
/// labeled by pass name, plus a `verify-each` series for inter-pass
/// verifier runs) into the process-wide MetricsRegistry. Attach alongside
/// PassTimingInstrumentation; records only while metricsEnabled(), so it
/// is safe to attach unconditionally.
class MetricsInstrumentation : public PassInstrumentation {
public:
  void runBeforePass(const Pass *P, Operation *Root) override;
  void runAfterPass(const Pass *P, Operation *Root) override;
  void runAfterPassFailed(const Pass *P, Operation *Root) override;
  void runBeforeVerifier(Operation *Root) override;
  void runAfterVerifier(Operation *Root, bool Succeeded) override;

private:
  void finish(std::string_view PassName);

  /// Start stack: passes and verifier runs nest strictly, and the hooks
  /// fire on the submitting thread only.
  std::vector<uint64_t> StartNs;
};

} // namespace irdl

#endif // IRDL_IR_PASSINSTRUMENTATION_H
