//===- Cloning.h - Deep-cloning operations ------------------------*- C++ -*-===//
///
/// \file
/// Deep cloning of operations (with nested regions) through a value/block
/// remapping table — the standard tool for pattern expansions, inlining,
/// and loop transformations.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_CLONING_H
#define IRDL_IR_CLONING_H

#include "ir/Operation.h"

#include <unordered_map>

namespace irdl {

class Block;
class Region;

/// Maps original values/blocks to their clones during a cloning session.
class IRMapping {
public:
  void map(Value From, Value To) { Values[From.getImpl()] = To; }
  void map(Block *From, Block *To) { Blocks[From] = To; }

  /// Returns the mapped value, or \p From itself when unmapped (references
  /// to values defined outside the cloned region stay intact).
  Value lookupOrDefault(Value From) const {
    auto It = Values.find(From.getImpl());
    return It == Values.end() ? From : It->second;
  }

  Block *lookupOrDefault(Block *From) const {
    auto It = Blocks.find(From);
    return It == Blocks.end() ? From : It->second;
  }

  bool contains(Value From) const { return Values.count(From.getImpl()); }

private:
  std::unordered_map<detail::ValueImpl *, Value> Values;
  std::unordered_map<Block *, Block *> Blocks;
};

/// Deep-clones \p Op (detached). Operands are remapped through \p Mapper;
/// the clone's results are registered in it. Nested regions, blocks, and
/// block arguments are cloned recursively; successor references are
/// remapped where known.
Operation *cloneOp(Operation *Op, IRMapping &Mapper);

/// Convenience overload with a throwaway mapping.
Operation *cloneOp(Operation *Op);

/// Clones all blocks of \p From into \p To (appending), remapping values
/// and blocks through \p Mapper.
void cloneRegionInto(Region &From, Region &To, IRMapping &Mapper);

} // namespace irdl

#endif // IRDL_IR_CLONING_H
