//===- OpArena.cpp --------------------------------------------------===//

#include "ir/OpArena.h"

#include "support/Metrics.h"
#include "support/Statistic.h"

#include <atomic>
#include <cassert>
#include <cstring>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IRDL_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define IRDL_ASAN 1
#endif

#ifdef IRDL_ASAN
#include <sanitizer/asan_interface.h>
#endif

using namespace irdl;

IRDL_STATISTIC(Arena, NumArenaAllocations, "blocks served by op arenas");
IRDL_STATISTIC(Arena, NumArenaSlabs, "slabs reserved by op arenas");
IRDL_STATISTIC(Arena, NumArenaReusedBlocks,
               "arena allocations served from a free list");

namespace {

/// Freed-block fill byte: a stale Operation or Value handle read after
/// erase() sees 0xA5A5... pointers, which fault on dereference.
constexpr int PoisonByte = 0xA5;

/// Marks [Ptr+Offset, Ptr+Size) unreadable under ASan and fills it with
/// the poison byte otherwise. The first word (the free-list link) stays
/// addressable.
void poisonBlock(void *Ptr, size_t Size, size_t Offset) {
  assert(Size >= Offset);
  std::memset(static_cast<std::byte *>(Ptr) + Offset, PoisonByte,
              Size - Offset);
#ifdef IRDL_ASAN
  __asan_poison_memory_region(static_cast<std::byte *>(Ptr) + Offset,
                              Size - Offset);
#endif
}

void unpoisonBlock(void *Ptr, size_t Size) {
#ifdef IRDL_ASAN
  __asan_unpoison_memory_region(Ptr, Size);
#else
  (void)Ptr;
  (void)Size;
#endif
}

/// Process-wide arena telemetry for the metrics layer (PR 5). Counters
/// aggregate over every arena in the process; the live-bytes gauge goes
/// down again as ops are erased and arenas die.
struct ArenaMetrics {
  Counter &Slabs;
  Counter &BytesAllocated;
  Counter &BlocksReused;
  Gauge &BytesLive;

  static ArenaMetrics &instance() {
    static ArenaMetrics M{
        MetricsRegistry::instance().getCounter(
            "ir_arena_slabs_allocated_total",
            "slabs reserved by operation arenas"),
        MetricsRegistry::instance().getCounter(
            "ir_arena_bytes_allocated_total",
            "bytes served by operation arenas"),
        MetricsRegistry::instance().getCounter(
            "ir_arena_blocks_reused_total",
            "arena allocations served from a free list"),
        MetricsRegistry::instance().getGauge(
            "ir_arena_bytes_live",
            "bytes currently handed out by operation arenas"),
    };
    return M;
  }
};

} // namespace

OpArena::OpArena() = default;

OpArena::~OpArena() {
  if (!metricsEnabled())
    return;
  // Slab memory (and any live bytes) disappears with the arena; keep the
  // process-wide live gauge honest.
  OpArenaStats S = getStats();
  if (S.BytesLive)
    ArenaMetrics::instance().BytesLive.sub(static_cast<int64_t>(S.BytesLive));
}

OpArena::Shard &OpArena::myShard() {
  // Round-robin thread->shard assignment, mirroring the metrics registry:
  // each pool worker lands on its own shard (its own slabs and free
  // lists), so parallel creation/erasure does not contend.
  static std::atomic<unsigned> NextShard{0};
  thread_local unsigned MyIndex =
      NextShard.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Shards[MyIndex];
}

void *OpArena::allocate(size_t Size, size_t Align) {
  assert(Align <= Granule && Granule % Align == 0 &&
         "arena blocks are Granule-aligned");
  (void)Align;
  Size = roundUp(Size);

  Shard &S = myShard();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Stats.NumAllocs++;
  S.Stats.BytesAllocated += Size;
  S.Stats.BytesLive += Size;
  ++NumArenaAllocations;
  bool MetricsOn = metricsEnabled();
  if (MetricsOn) {
    ArenaMetrics::instance().BytesAllocated.inc(Size);
    ArenaMetrics::instance().BytesLive.add(static_cast<int64_t>(Size));
  }

  if (Size <= MaxBucketedSize) {
    size_t Bucket = Size / Granule - 1;
    if (void *Head = S.FreeLists[Bucket]) {
      S.FreeLists[Bucket] = *static_cast<void **>(Head);
      unpoisonBlock(Head, Size);
      S.Stats.FreeListHits++;
      S.Stats.BytesReused += Size;
      ++NumArenaReusedBlocks;
      if (MetricsOn)
        ArenaMetrics::instance().BlocksReused.inc();
      return Head;
    }
    if (static_cast<size_t>(S.End - S.Cur) < Size) {
      S.Slabs.push_back(std::make_unique<std::byte[]>(SlabSize));
      S.Cur = S.Slabs.back().get();
      S.End = S.Cur + SlabSize;
      S.Stats.Slabs++;
      S.Stats.SlabBytes += SlabSize;
      ++NumArenaSlabs;
      if (MetricsOn)
        ArenaMetrics::instance().Slabs.inc();
    }
    void *Result = S.Cur;
    S.Cur += Size;
    return Result;
  }

  // Out-of-band block: still a single allocation for the caller, but too
  // big to be worth bucketing. Tracked so the arena owns it either way.
  auto Block = std::make_unique<std::byte[]>(Size);
  void *Result = Block.get();
  S.Large.emplace(Result, std::move(Block));
  S.Stats.LargeAllocs++;
  return Result;
}

void OpArena::deallocate(void *Ptr, size_t Size) {
  assert(Ptr && "deallocating null");
  Size = roundUp(Size);

  Shard &S = myShard();
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Stats.NumFrees++;
    S.Stats.BytesLive -= Size;

    if (Size <= MaxBucketedSize) {
      size_t Bucket = Size / Granule - 1;
      // Poison everything past the free-list link, then thread the block
      // onto the bucket.
      poisonBlock(Ptr, Size, /*Offset=*/sizeof(void *));
      *static_cast<void **>(Ptr) = S.FreeLists[Bucket];
      S.FreeLists[Bucket] = Ptr;
      if (metricsEnabled())
        ArenaMetrics::instance().BytesLive.sub(static_cast<int64_t>(Size));
      return;
    }
  }

  // Out-of-band block: may live in any shard's Large map (blocks can be
  // freed from a different thread than the allocating one). One lock at
  // a time — never nested — so cross-shard frees cannot deadlock.
  if (metricsEnabled())
    ArenaMetrics::instance().BytesLive.sub(static_cast<int64_t>(Size));
  for (Shard &Other : Shards) {
    std::lock_guard<std::mutex> OtherLock(Other.Mu);
    if (Other.Large.erase(Ptr))
      return;
  }
  assert(false && "large block not owned by this arena");
}

OpArenaStats OpArena::getStats() const {
  OpArenaStats Total;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Total.Slabs += S.Stats.Slabs;
    Total.SlabBytes += S.Stats.SlabBytes;
    Total.BytesLive += S.Stats.BytesLive;
    Total.BytesAllocated += S.Stats.BytesAllocated;
    Total.BytesReused += S.Stats.BytesReused;
    Total.NumAllocs += S.Stats.NumAllocs;
    Total.NumFrees += S.Stats.NumFrees;
    Total.FreeListHits += S.Stats.FreeListHits;
    Total.LargeAllocs += S.Stats.LargeAllocs;
  }
  return Total;
}
