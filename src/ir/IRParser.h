//===- IRParser.h - Textual IR parsing ---------------------------*- C++ -*-===//
///
/// \file
/// Parsing of the MLIR-like textual IR format: generic operations, custom
/// op syntax via registered parse hooks (the target of IRDL `Format`
/// directives), nested regions with labeled blocks, forward value and
/// block references, and the full type/attribute/parameter grammar.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_IRPARSER_H
#define IRDL_IR_IRPARSER_H

#include "ir/IRLexer.h"
#include "ir/Operation.h"

#include <memory>

namespace irdl {

class IRParserImpl;

/// Owning handle to a parsed (or built) top-level operation.
class OwningOpRef {
public:
  OwningOpRef() = default;
  explicit OwningOpRef(Operation *Op) : Op(Op) {}
  OwningOpRef(OwningOpRef &&Other) : Op(Other.release()) {}
  OwningOpRef &operator=(OwningOpRef &&Other) {
    reset();
    Op = Other.release();
    return *this;
  }
  OwningOpRef(const OwningOpRef &) = delete;
  OwningOpRef &operator=(const OwningOpRef &) = delete;
  ~OwningOpRef() { reset(); }

  explicit operator bool() const { return Op != nullptr; }
  Operation *get() const { return Op; }
  Operation *operator->() const { return Op; }
  Operation &operator*() const { return *Op; }

  Operation *release() {
    Operation *Result = Op;
    Op = nullptr;
    return Result;
  }

  void reset() {
    if (Op) {
      if (Op->getBlock())
        Op->removeFromBlock();
      Op->destroy();
    }
    Op = nullptr;
  }

private:
  Operation *Op = nullptr;
};

/// Parses \p Source as a module body. The buffer is registered with
/// \p SrcMgr so diagnostics render carets. Returns a null ref on error.
/// When the source contains a single top-level `module` op, that op is
/// returned; otherwise the parsed ops are wrapped in a fresh module.
OwningOpRef parseSourceString(IRContext &Ctx, std::string_view Source,
                              SourceMgr &SrcMgr, DiagnosticEngine &Diags,
                              std::string BufferName = "<input>");

/// Parses a single type from \p Source (which must be fully consumed).
Type parseTypeString(IRContext &Ctx, std::string_view Source,
                     DiagnosticEngine &Diags);

/// Parses a single attribute from \p Source.
Attribute parseAttrString(IRContext &Ctx, std::string_view Source,
                          DiagnosticEngine &Diags);

/// The restricted parser interface handed to custom parse hooks (native
/// ones for builtin ops, generated ones for IRDL `Format` directives).
/// Hooks fill in the OperationState they are given; the driving parser
/// then creates the op and binds its results.
class CustomOpParser {
public:
  /// A not-yet-resolved SSA operand reference.
  struct UnresolvedOperand {
    std::string Name;
    SMLoc Loc;
  };

  CustomOpParser(IRParserImpl &Impl) : Impl(Impl) {}

  IRContext *getContext();
  SMLoc getCurrentLoc();
  LogicalResult emitError(SMLoc Loc, std::string Message);

  /// Token helpers.
  bool consumeIf(IRToken::Kind K);
  LogicalResult expect(IRToken::Kind K, std::string_view What);
  bool consumeOptionalKeyword(std::string_view Keyword);
  LogicalResult parseKeyword(std::string_view Keyword);

  /// `%name`.
  LogicalResult parseOperand(UnresolvedOperand &Result);
  bool parseOptionalOperand(UnresolvedOperand &Result);

  /// Resolves a previously parsed operand against \p Ty, appending it to
  /// \p Operands (creating a forward reference if needed).
  LogicalResult resolveOperand(const UnresolvedOperand &Operand, Type Ty,
                               std::vector<Value> &Operands);

  LogicalResult parseType(Type &Result);
  LogicalResult parseAttribute(Attribute &Result);
  LogicalResult parseParam(ParamValue &Result);
  LogicalResult parseOptionalAttrDict(NamedAttrList &Attrs);

  /// `@symbol`.
  LogicalResult parseSymbolName(std::string &Result);

  /// `^block` successor reference.
  LogicalResult parseSuccessor(Block *&Result);

  /// Parses `{...}` into \p R. \p EntryArgs, if non-empty, declares the
  /// entry block arguments (name + type) bound inside the region.
  LogicalResult
  parseRegion(Region &R,
              const std::vector<std::pair<UnresolvedOperand, Type>>
                  &EntryArgs = {});

private:
  IRParserImpl &Impl;
};

} // namespace irdl

#endif // IRDL_IR_IRPARSER_H
