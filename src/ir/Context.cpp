//===- Context.cpp --------------------------------------------------===//

#include "ir/Context.h"

#include "ir/OpArena.h"
#include "support/Statistic.h"

using namespace irdl;

IRDL_STATISTIC(Uniquing, NumTypeUniqueHits,
               "type uniquing requests served from the pool");
IRDL_STATISTIC(Uniquing, NumTypeUniqueMisses,
               "type uniquing requests that allocated storage");
IRDL_STATISTIC(Uniquing, NumAttrUniqueHits,
               "attribute uniquing requests served from the pool");
IRDL_STATISTIC(Uniquing, NumAttrUniqueMisses,
               "attribute uniquing requests that allocated storage");

// Implemented in BuiltinOps.cpp; registers module/func/return/arith ops.
namespace irdl {
void registerBuiltinOps(IRContext &Ctx);
}

IRContext::IRContext() : Arena(std::make_unique<OpArena>()) {
  registerBuiltinDialect();
  registerBuiltinOps(*this);
}

IRContext::~IRContext() = default;

Dialect *IRContext::getOrCreateDialect(std::string_view Namespace) {
  std::unique_lock<std::shared_mutex> Lock(DialectsMu);
  auto It = Dialects.find(Namespace);
  if (It != Dialects.end())
    return It->second.get();
  auto D = std::make_unique<Dialect>(this, std::string(Namespace));
  Dialect *Result = D.get();
  Dialects.emplace(std::string(Namespace), std::move(D));
  return Result;
}

Dialect *IRContext::lookupDialect(std::string_view Namespace) const {
  std::shared_lock<std::shared_mutex> Lock(DialectsMu);
  auto It = Dialects.find(Namespace);
  return It == Dialects.end() ? nullptr : It->second.get();
}

std::vector<Dialect *> IRContext::getDialects() const {
  std::shared_lock<std::shared_mutex> Lock(DialectsMu);
  std::vector<Dialect *> Result;
  Result.reserve(Dialects.size());
  for (const auto &[Name, D] : Dialects)
    Result.push_back(D.get());
  return Result;
}

namespace {
/// Splits "dialect.rest.of.name" into (dialect, rest); when there is no
/// dot, dialect is empty.
std::pair<std::string_view, std::string_view>
splitQualified(std::string_view Name) {
  size_t Dot = Name.find('.');
  if (Dot == std::string_view::npos)
    return {std::string_view(), Name};
  return {Name.substr(0, Dot), Name.substr(Dot + 1)};
}
} // namespace

/// Shared resolution logic: qualified names go to their dialect; bare names
/// search Current, builtin, std (Section 4.2's elision rule).
template <typename T, typename LookupFn>
static T *resolveComponent(const IRContext *Ctx, std::string_view Name,
                           Dialect *Current, LookupFn Lookup) {
  auto [DialectName, Rest] = splitQualified(Name);
  if (!DialectName.empty()) {
    if (Dialect *D = Ctx->lookupDialect(DialectName))
      if (T *Def = Lookup(D, Rest))
        return Def;
    // A dotted name whose head is not a dialect may still be a bare name
    // in a searched namespace (e.g. enum constructor paths); fall through.
  }
  if (Current)
    if (T *Def = Lookup(Current, Name))
      return Def;
  for (const char *Ns : {"builtin", "std"}) {
    if (Dialect *D = Ctx->lookupDialect(Ns))
      if (T *Def = Lookup(D, Name))
        return Def;
  }
  return nullptr;
}

TypeDefinition *IRContext::resolveTypeDef(std::string_view Name,
                                          Dialect *Current) const {
  return resolveComponent<TypeDefinition>(
      this, Name, Current,
      [](Dialect *D, std::string_view N) { return D->lookupType(N); });
}

AttrDefinition *IRContext::resolveAttrDef(std::string_view Name,
                                          Dialect *Current) const {
  return resolveComponent<AttrDefinition>(
      this, Name, Current,
      [](Dialect *D, std::string_view N) { return D->lookupAttr(N); });
}

OpDefinition *IRContext::resolveOpDef(std::string_view Name,
                                      Dialect *Current) const {
  return resolveComponent<OpDefinition>(
      this, Name, Current,
      [](Dialect *D, std::string_view N) { return D->lookupOp(N); });
}

EnumDef *IRContext::resolveEnumDef(std::string_view Name,
                                   Dialect *Current) const {
  return resolveComponent<EnumDef>(
      this, Name, Current,
      [](Dialect *D, std::string_view N) { return D->lookupEnum(N); });
}

//===----------------------------------------------------------------------===//
// Uniquing
//===----------------------------------------------------------------------===//

static size_t hashDefAndParams(const void *Def,
                               const std::vector<ParamValue> &Params) {
  size_t Seed = std::hash<const void *>{}(Def);
  for (const ParamValue &P : Params)
    hashCombine(Seed, P.hash());
  return Seed;
}

namespace {
/// Scans \p Pool for an existing storage with the same key; caller holds
/// the shard lock (shared or exclusive).
template <typename StorageT, typename DefT>
StorageT *findStorage(
    const std::unordered_multimap<size_t, std::unique_ptr<StorageT>> &Pool,
    size_t H, const DefT *Def, const std::vector<ParamValue> &Params) {
  auto [It, End] = Pool.equal_range(H);
  for (; It != End; ++It)
    if (It->second->Def == Def && It->second->Params == Params)
      return It->second.get();
  return nullptr;
}
} // namespace

/// The shared uniquing path: shared-locked lookup, then (on miss) the
/// verifier runs *outside* any lock — it may recursively unique nested
/// types — and the insert re-checks under the exclusive lock, so two
/// threads racing on the same key converge on one storage (pointer
/// identity holds under concurrency). \p Verify returns failure to
/// abort construction (the checked entry points).
template <typename StorageT, typename DefT, typename VerifyFn>
static StorageT *
uniqueStorage(detail::UniquerShard<StorageT> &Shard, const DefT *Def,
              std::vector<ParamValue> &&Params, size_t H,
              Statistic &Hits, Statistic &Misses, VerifyFn &&Verify) {
  {
    std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
    if (StorageT *Existing = findStorage(Shard.Pool, H, Def, Params)) {
      ++Hits;
      return Existing;
    }
  }
  ++Misses;

  if (failed(Verify(Params)))
    return nullptr;

  auto Storage = std::make_unique<StorageT>();
  Storage->Def = Def;
  Storage->Params = std::move(Params);

  std::unique_lock<std::shared_mutex> Lock(Shard.Mu);
  if (StorageT *Existing =
          findStorage(Shard.Pool, H, Def, Storage->Params))
    return Existing; // lost the insertion race; equal key wins
  StorageT *Raw = Storage.get();
  Shard.Pool.emplace(H, std::move(Storage));
  return Raw;
}

Type IRContext::getType(const TypeDefinition *Def,
                        std::vector<ParamValue> Params) {
  assert(Def && "null type definition");
  size_t H = hashDefAndParams(Def, Params);
  TypeStorage *S = uniqueStorage(
      TypeShards[H % NumUniquerShards], Def, std::move(Params), H,
      NumTypeUniqueHits, NumTypeUniqueMisses,
      [&](const std::vector<ParamValue> &P) -> LogicalResult {
        (void)P;
#ifndef NDEBUG
        if (const auto &Verifier = Def->getVerifier()) {
          DiagnosticEngine Scratch;
          assert(succeeded(Verifier(P, Scratch, SMLoc())) &&
                 "type parameters rejected by definition verifier; use "
                 "getTypeChecked for fallible construction");
        }
#endif
        return success();
      });
  return Type(S);
}

Type IRContext::getTypeChecked(const TypeDefinition *Def,
                               std::vector<ParamValue> Params,
                               DiagnosticEngine &Diags, SMLoc Loc) {
  assert(Def && "null type definition");
  size_t H = hashDefAndParams(Def, Params);
  TypeStorage *S = uniqueStorage(
      TypeShards[H % NumUniquerShards], Def, std::move(Params), H,
      NumTypeUniqueHits, NumTypeUniqueMisses,
      [&](const std::vector<ParamValue> &P) -> LogicalResult {
        if (const auto &Verifier = Def->getVerifier())
          return Verifier(P, Diags, Loc);
        return success();
      });
  return S ? Type(S) : Type();
}

Attribute IRContext::getAttr(const AttrDefinition *Def,
                             std::vector<ParamValue> Params) {
  assert(Def && "null attribute definition");
  size_t H = hashDefAndParams(Def, Params);
  AttrStorage *S = uniqueStorage(
      AttrShards[H % NumUniquerShards], Def, std::move(Params), H,
      NumAttrUniqueHits, NumAttrUniqueMisses,
      [&](const std::vector<ParamValue> &P) -> LogicalResult {
        (void)P;
#ifndef NDEBUG
        if (const auto &Verifier = Def->getVerifier()) {
          DiagnosticEngine Scratch;
          assert(succeeded(Verifier(P, Scratch, SMLoc())) &&
                 "attribute parameters rejected by definition verifier; "
                 "use getAttrChecked for fallible construction");
        }
#endif
        return success();
      });
  return Attribute(S);
}

Attribute IRContext::getAttrChecked(const AttrDefinition *Def,
                                    std::vector<ParamValue> Params,
                                    DiagnosticEngine &Diags, SMLoc Loc) {
  assert(Def && "null attribute definition");
  size_t H = hashDefAndParams(Def, Params);
  AttrStorage *S = uniqueStorage(
      AttrShards[H % NumUniquerShards], Def, std::move(Params), H,
      NumAttrUniqueHits, NumAttrUniqueMisses,
      [&](const std::vector<ParamValue> &P) -> LogicalResult {
        if (const auto &Verifier = Def->getVerifier())
          return Verifier(P, Diags, Loc);
        return success();
      });
  return S ? Attribute(S) : Attribute();
}

size_t IRContext::getNumUniquedTypes() const {
  size_t N = 0;
  for (const auto &Shard : TypeShards) {
    std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
    N += Shard.Pool.size();
  }
  return N;
}

size_t IRContext::getNumUniquedAttrs() const {
  size_t N = 0;
  for (const auto &Shard : AttrShards) {
    std::shared_lock<std::shared_mutex> Lock(Shard.Mu);
    N += Shard.Pool.size();
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Builtin dialect
//===----------------------------------------------------------------------===//

void IRContext::registerBuiltinDialect() {
  Dialect *Builtin = getOrCreateDialect("builtin");

  SignednessEnum = Builtin->addEnum(
      "signedness", {"Signless", "Signed", "Unsigned"});

  const char *FloatNames[3] = {"f16", "f32", "f64"};
  for (unsigned I = 0; I != 3; ++I) {
    FloatTypeDefs[I] = Builtin->addType(FloatNames[I]);
    FloatTypeDefs[I]->setSummary("An IEEE floating-point type");
  }

  IntegerTypeDef = Builtin->addType("integer");
  IntegerTypeDef->setSummary("An integer type with bitwidth and signedness");
  IntegerTypeDef->setParamNames({"bitwidth", "signedness"});
  EnumDef *SignEnum = SignednessEnum;
  IntegerTypeDef->setVerifier(
      [SignEnum](const std::vector<ParamValue> &Params,
                 DiagnosticEngine &Diags, SMLoc Loc) -> LogicalResult {
        if (Params.size() != 2 || !Params[0].isInt() || !Params[1].isEnum() ||
            Params[1].getEnum().Def != SignEnum) {
          Diags.emitError(Loc, "builtin.integer expects (bitwidth: uint32_t, "
                               "signedness: signedness)");
          return failure();
        }
        int64_t Width = Params[0].getInt().Value;
        if (Width < 1 || Width > 128) {
          Diags.emitError(Loc, "integer bitwidth must be between 1 and 128");
          return failure();
        }
        return success();
      });

  IndexTypeDef = Builtin->addType("index");
  IndexTypeDef->setSummary("A platform-sized index type");

  FunctionTypeDef = Builtin->addType("function");
  FunctionTypeDef->setSummary("A function type: (inputs) -> (results)");
  FunctionTypeDef->setParamNames({"inputs", "results"});
  FunctionTypeDef->setVerifier(
      [](const std::vector<ParamValue> &Params, DiagnosticEngine &Diags,
         SMLoc Loc) -> LogicalResult {
        auto IsTypeArray = [](const ParamValue &P) {
          if (!P.isArray())
            return false;
          for (const ParamValue &Elem : P.getArray())
            if (!Elem.isType())
              return false;
          return true;
        };
        if (Params.size() != 2 || !IsTypeArray(Params[0]) ||
            !IsTypeArray(Params[1])) {
          Diags.emitError(
              Loc, "builtin.function expects two arrays of types");
          return failure();
        }
        return success();
      });

  IntAttrDef = Builtin->addAttr("int");
  IntAttrDef->setSummary("An integer attribute");
  IntAttrDef->setParamNames({"value"});
  IntAttrDef->setVerifier([](const std::vector<ParamValue> &Params,
                             DiagnosticEngine &Diags,
                             SMLoc Loc) -> LogicalResult {
    if (Params.size() != 1 || !Params[0].isInt()) {
      Diags.emitError(Loc, "builtin.int expects a single integer parameter");
      return failure();
    }
    return success();
  });

  FloatAttrDef = Builtin->addAttr("float");
  FloatAttrDef->setSummary("A floating-point attribute");
  FloatAttrDef->setParamNames({"value"});
  FloatAttrDef->setVerifier([](const std::vector<ParamValue> &Params,
                               DiagnosticEngine &Diags,
                               SMLoc Loc) -> LogicalResult {
    if (Params.size() != 1 || !Params[0].isFloat()) {
      Diags.emitError(Loc,
                      "builtin.float expects a single float parameter");
      return failure();
    }
    return success();
  });

  StringAttrDef = Builtin->addAttr("string");
  StringAttrDef->setSummary("A string attribute");
  StringAttrDef->setParamNames({"value"});
  StringAttrDef->setVerifier([](const std::vector<ParamValue> &Params,
                                DiagnosticEngine &Diags,
                                SMLoc Loc) -> LogicalResult {
    if (Params.size() != 1 || !Params[0].isString()) {
      Diags.emitError(Loc,
                      "builtin.string expects a single string parameter");
      return failure();
    }
    return success();
  });

  TypeAttrDef = Builtin->addAttr("type");
  TypeAttrDef->setSummary("An attribute wrapping a type");
  TypeAttrDef->setParamNames({"type"});
  TypeAttrDef->setVerifier([](const std::vector<ParamValue> &Params,
                              DiagnosticEngine &Diags,
                              SMLoc Loc) -> LogicalResult {
    if (Params.size() != 1 || !Params[0].isType()) {
      Diags.emitError(Loc, "builtin.type expects a single type parameter");
      return failure();
    }
    return success();
  });

  EnumAttrDef = Builtin->addAttr("enum");
  EnumAttrDef->setSummary("An attribute holding an enum constructor");
  EnumAttrDef->setParamNames({"value"});
  EnumAttrDef->setVerifier([](const std::vector<ParamValue> &Params,
                              DiagnosticEngine &Diags,
                              SMLoc Loc) -> LogicalResult {
    if (Params.size() != 1 || !Params[0].isEnum()) {
      Diags.emitError(Loc, "builtin.enum expects a single enum parameter");
      return failure();
    }
    return success();
  });

  UnitAttrDef = Builtin->addAttr("unit");
  UnitAttrDef->setSummary("A unit (presence-only) attribute");

  ArrayAttrDef = Builtin->addAttr("array");
  ArrayAttrDef->setSummary("An array of attributes");
  ArrayAttrDef->setParamNames({"elements"});
  ArrayAttrDef->setVerifier([](const std::vector<ParamValue> &Params,
                               DiagnosticEngine &Diags,
                               SMLoc Loc) -> LogicalResult {
    if (Params.size() != 1 || !Params[0].isArray()) {
      Diags.emitError(Loc, "builtin.array expects a single array parameter");
      return failure();
    }
    for (const ParamValue &Elem : Params[0].getArray())
      if (!Elem.isAttr()) {
        Diags.emitError(Loc, "builtin.array elements must be attributes");
        return failure();
      }
    return success();
  });

  // Builtin opaque parameter kinds (Figure 8: locations and type ids are
  // builtin parameters in IRDL). The payload is an uninterpreted string.
  OpaqueParamCodec Identity;
  Identity.Print = [](const OpaqueVal &V) { return V.Payload; };
  Identity.Parse = [](std::string_view Payload) {
    return std::optional<std::string>(std::string(Payload));
  };
  registerOpaqueParamCodec("location", Identity);
  registerOpaqueParamCodec("type_id", Identity);
}

TypeDefinition *IRContext::getFloatTypeDef(unsigned Width) const {
  switch (Width) {
  case 16:
    return FloatTypeDefs[0];
  case 32:
    return FloatTypeDefs[1];
  case 64:
    return FloatTypeDefs[2];
  default:
    return nullptr;
  }
}

Type IRContext::getFloatType(unsigned Width) {
  TypeDefinition *Def = getFloatTypeDef(Width);
  assert(Def && "unsupported float width");
  return getType(Def);
}

Type IRContext::getIntegerType(unsigned Width, Signedness Sign) {
  return getType(IntegerTypeDef,
                 {ParamValue(IntVal{32, Signedness::Unsigned,
                                    static_cast<int64_t>(Width)}),
                  ParamValue(EnumVal{SignednessEnum,
                                     static_cast<unsigned>(Sign)})});
}

Type IRContext::getIndexType() { return getType(IndexTypeDef); }

Type IRContext::getFunctionType(const std::vector<Type> &Inputs,
                                const std::vector<Type> &Results) {
  std::vector<ParamValue> InputParams(Inputs.begin(), Inputs.end());
  std::vector<ParamValue> ResultParams(Results.begin(), Results.end());
  return getType(FunctionTypeDef, {ParamValue(std::move(InputParams)),
                                   ParamValue(std::move(ResultParams))});
}

Attribute IRContext::getIntegerAttr(IntVal Value) {
  return getAttr(IntAttrDef, {ParamValue(Value)});
}

Attribute IRContext::getIntegerAttr(int64_t Value, unsigned Width,
                                    Signedness Sign) {
  return getIntegerAttr(IntVal{static_cast<uint16_t>(Width), Sign, Value});
}

Attribute IRContext::getFloatAttr(double Value, unsigned Width) {
  return getAttr(FloatAttrDef,
                 {ParamValue(FloatVal{static_cast<uint16_t>(Width), Value})});
}

Attribute IRContext::getStringAttr(std::string Value) {
  return getAttr(StringAttrDef, {ParamValue(std::move(Value))});
}

Attribute IRContext::getTypeAttr(Type T) {
  return getAttr(TypeAttrDef, {ParamValue(T)});
}

Attribute IRContext::getUnitAttr() { return getAttr(UnitAttrDef); }

Attribute IRContext::getEnumAttr(EnumVal Value) {
  return getAttr(EnumAttrDef, {ParamValue(Value)});
}

Attribute IRContext::getArrayAttr(std::vector<Attribute> Elements) {
  std::vector<ParamValue> Params(Elements.begin(), Elements.end());
  return getAttr(ArrayAttrDef, {ParamValue(std::move(Params))});
}

void IRContext::registerOpaqueParamCodec(std::string ParamTypeName,
                                         OpaqueParamCodec Codec) {
  std::unique_lock<std::shared_mutex> Lock(CodecsMu);
  OpaqueCodecs[std::move(ParamTypeName)] = std::move(Codec);
}

const OpaqueParamCodec *
IRContext::lookupOpaqueParamCodec(std::string_view ParamTypeName) const {
  std::shared_lock<std::shared_mutex> Lock(CodecsMu);
  // Node-based map: the pointer stays valid after the lock drops as long
  // as codecs are only registered (never erased), and registration
  // happens in the single-threaded setup phase.
  auto It = OpaqueCodecs.find(ParamTypeName);
  return It == OpaqueCodecs.end() ? nullptr : &It->second;
}
