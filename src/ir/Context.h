//===- Context.h - IR context: uniquing and registry -------------*- C++ -*-===//
///
/// \file
/// The IRContext owns every dialect and uniques every type and attribute
/// (hash-consing), so that handle equality is pointer equality — the
/// property the constraint engine's equality constraints rely on. It also
/// hosts the registry of opaque parameter codecs (IRDL-C++
/// TypeOrAttrParam) and native constraint callbacks.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_CONTEXT_H
#define IRDL_IR_CONTEXT_H

#include "ir/Dialect.h"

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

namespace irdl {

class OpArena;

namespace detail {
/// One shard of the context's type/attribute uniquer: an open multimap
/// keyed by the (definition, params) hash, guarded by a reader/writer
/// lock. See the thread-safety note on IRContext.
template <typename StorageT> struct UniquerShard {
  mutable std::shared_mutex Mu;
  std::unordered_multimap<size_t, std::unique_ptr<StorageT>> Pool;
};
} // namespace detail

/// Parses and prints the payload of an opaque parameter kind.
struct OpaqueParamCodec {
  /// Renders the payload for the textual format (it will be quoted).
  std::function<std::string(const OpaqueVal &)> Print;
  /// Validates/normalizes a payload string; nullopt rejects it.
  std::function<std::optional<std::string>(std::string_view)> Parse;
};

/// Thread-safety: IRContext is safe to share across the threads of the
/// parallel verifier and pass drivers. Type/attribute uniquing goes
/// through hash-sharded pools behind shared_mutexes, and the dialect and
/// codec registries are reader/writer-locked. Registration (loading IRDL
/// dialects, adding ops/types, installing codecs) is expected to happen
/// in a setup phase; concurrent *lookups* during the parallel phase are
/// lock-protected and cheap. See docs/threading.md.
class IRContext {
public:
  IRContext();
  ~IRContext();
  IRContext(const IRContext &) = delete;
  IRContext &operator=(const IRContext &) = delete;

  //===------------------------------------------------------------------===//
  // Dialects
  //===------------------------------------------------------------------===//

  /// Returns the dialect registered under \p Namespace, creating it if
  /// needed.
  Dialect *getOrCreateDialect(std::string_view Namespace);

  /// Returns the dialect or null.
  Dialect *lookupDialect(std::string_view Namespace) const;

  /// All dialects in namespace order.
  std::vector<Dialect *> getDialects() const;

  /// Resolves a possibly-qualified component name. "cmath.complex" looks
  /// in dialect cmath; a bare "complex" looks in \p Current (if given),
  /// then in builtin, then in std (the namespace-elision rule of
  /// Section 4.2).
  TypeDefinition *resolveTypeDef(std::string_view Name,
                                 Dialect *Current = nullptr) const;
  AttrDefinition *resolveAttrDef(std::string_view Name,
                                 Dialect *Current = nullptr) const;
  OpDefinition *resolveOpDef(std::string_view Name,
                             Dialect *Current = nullptr) const;
  EnumDef *resolveEnumDef(std::string_view Name,
                          Dialect *Current = nullptr) const;

  //===------------------------------------------------------------------===//
  // Type / attribute uniquing
  //===------------------------------------------------------------------===//

  /// Returns the uniqued type for (Def, Params). Asserts that the
  /// definition's verifier (if any) accepts the parameters.
  Type getType(const TypeDefinition *Def, std::vector<ParamValue> Params = {});

  /// Like getType, but reports verifier failures through \p Diags and
  /// returns a null Type instead of asserting.
  Type getTypeChecked(const TypeDefinition *Def,
                      std::vector<ParamValue> Params, DiagnosticEngine &Diags,
                      SMLoc Loc = SMLoc());

  Attribute getAttr(const AttrDefinition *Def,
                    std::vector<ParamValue> Params = {});
  Attribute getAttrChecked(const AttrDefinition *Def,
                           std::vector<ParamValue> Params,
                           DiagnosticEngine &Diags, SMLoc Loc = SMLoc());

  /// Number of distinct uniqued types/attributes (introspection, tests).
  size_t getNumUniquedTypes() const;
  size_t getNumUniquedAttrs() const;

  //===------------------------------------------------------------------===//
  // Builtin shorthands
  //===------------------------------------------------------------------===//

  /// f16/f32/f64.
  Type getFloatType(unsigned Width);
  /// iN / siN / uiN.
  Type getIntegerType(unsigned Width,
                      Signedness Sign = Signedness::Signless);
  Type getIndexType();
  /// (inputs) -> (results).
  Type getFunctionType(const std::vector<Type> &Inputs,
                       const std::vector<Type> &Results);

  Attribute getIntegerAttr(IntVal Value);
  Attribute getIntegerAttr(int64_t Value, unsigned Width = 64,
                           Signedness Sign = Signedness::Signless);
  Attribute getFloatAttr(double Value, unsigned Width = 64);
  Attribute getStringAttr(std::string Value);
  Attribute getTypeAttr(Type T);
  Attribute getUnitAttr();
  Attribute getArrayAttr(std::vector<Attribute> Elements);
  /// Wraps an enum constructor as an attribute (printed as the dotted
  /// constructor path, e.g. `arith.fastmath.fast`).
  Attribute getEnumAttr(EnumVal Value);

  /// The signedness enum of the builtin integer type.
  EnumDef *getSignednessEnum() const { return SignednessEnum; }

  //===------------------------------------------------------------------===//
  // Opaque parameter codecs (IRDL-C++ TypeOrAttrParam)
  //===------------------------------------------------------------------===//

  /// Registers a codec for opaque parameters named \p ParamTypeName.
  /// Overwrites any existing codec of that name.
  void registerOpaqueParamCodec(std::string ParamTypeName,
                                OpaqueParamCodec Codec);
  const OpaqueParamCodec *lookupOpaqueParamCodec(
      std::string_view ParamTypeName) const;

  //===------------------------------------------------------------------===//
  // Policy
  //===------------------------------------------------------------------===//

  /// Whether operations with no registered definition may be created or
  /// parsed. Off by default: the IRDL flow registers everything first.
  bool allowsUnregisteredOps() const { return AllowUnregisteredOps; }
  void setAllowUnregisteredOps(bool Allow) { AllowUnregisteredOps = Allow; }

  //===------------------------------------------------------------------===//
  // Operation storage
  //===------------------------------------------------------------------===//

  /// The bump-pointer arena every Operation of this context is allocated
  /// from. Sharded per thread; see ir/OpArena.h. Operations must not
  /// outlive their context.
  OpArena &getOpArena() { return *Arena; }

private:
  void registerBuiltinDialect();

  mutable std::shared_mutex DialectsMu;
  std::map<std::string, std::unique_ptr<Dialect>, std::less<>> Dialects;

  /// Storage arena for operations (and their operand overflow arrays).
  std::unique_ptr<OpArena> Arena;

  /// The uniquer pools are sharded by hash so concurrent verification
  /// threads creating types/attrs rarely contend on the same lock.
  /// Lookups take a shard's shared side; the insert-on-miss path
  /// re-checks under the exclusive side, so two racing creators agree on
  /// the first inserted storage (pointer-identity of equal keys holds
  /// under concurrency).
  static constexpr size_t NumUniquerShards = 16;
  std::array<detail::UniquerShard<TypeStorage>, NumUniquerShards>
      TypeShards;
  std::array<detail::UniquerShard<AttrStorage>, NumUniquerShards>
      AttrShards;

  mutable std::shared_mutex CodecsMu;
  std::map<std::string, OpaqueParamCodec, std::less<>> OpaqueCodecs;

  bool AllowUnregisteredOps = false;

  // Cached builtin definitions.
  TypeDefinition *FloatTypeDefs[3] = {nullptr, nullptr, nullptr}; // f16/32/64
  TypeDefinition *IntegerTypeDef = nullptr;
  TypeDefinition *IndexTypeDef = nullptr;
  TypeDefinition *FunctionTypeDef = nullptr;
  AttrDefinition *IntAttrDef = nullptr;
  AttrDefinition *FloatAttrDef = nullptr;
  AttrDefinition *StringAttrDef = nullptr;
  AttrDefinition *TypeAttrDef = nullptr;
  AttrDefinition *UnitAttrDef = nullptr;
  AttrDefinition *ArrayAttrDef = nullptr;
  AttrDefinition *EnumAttrDef = nullptr;
  EnumDef *SignednessEnum = nullptr;

public:
  /// Direct access to the cached builtin definitions (used by printers,
  /// parsers, and the constraint engine's sugar handling).
  TypeDefinition *getFloatTypeDef(unsigned Width) const;
  TypeDefinition *getIntegerTypeDef() const { return IntegerTypeDef; }
  TypeDefinition *getIndexTypeDef() const { return IndexTypeDef; }
  TypeDefinition *getFunctionTypeDef() const { return FunctionTypeDef; }
  AttrDefinition *getIntAttrDef() const { return IntAttrDef; }
  AttrDefinition *getFloatAttrDef() const { return FloatAttrDef; }
  AttrDefinition *getStringAttrDef() const { return StringAttrDef; }
  AttrDefinition *getTypeAttrDef() const { return TypeAttrDef; }
  AttrDefinition *getUnitAttrDef() const { return UnitAttrDef; }
  AttrDefinition *getArrayAttrDef() const { return ArrayAttrDef; }
  AttrDefinition *getEnumAttrDef() const { return EnumAttrDef; }
};

} // namespace irdl

#endif // IRDL_IR_CONTEXT_H
