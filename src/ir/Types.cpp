//===- Types.cpp ----------------------------------------------------===//

#include "ir/Types.h"

#include "ir/Context.h"
#include "ir/Dialect.h"
#include "ir/Printer.h"

using namespace irdl;

std::string_view irdl::signednessPrefix(Signedness S) {
  switch (S) {
  case Signedness::Signless:
    return "i";
  case Signedness::Signed:
    return "si";
  case Signedness::Unsigned:
    return "ui";
  }
  return "i";
}

const TypeDefinition *Type::getDef() const {
  assert(Impl && "null type");
  return Impl->Def;
}

const std::vector<ParamValue> &Type::getParams() const {
  assert(Impl && "null type");
  return Impl->Params;
}

Dialect *Type::getDialect() const { return getDef()->getDialect(); }
IRContext *Type::getContext() const { return getDialect()->getContext(); }
std::string Type::getName() const { return getDef()->getFullName(); }

const ParamValue &Type::getParam(std::string_view Name) const {
  auto Index = getDef()->lookupParam(Name);
  assert(Index && "no such type parameter");
  return getParams()[*Index];
}

std::string Type::str() const { return printTypeToString(*this); }

const AttrDefinition *Attribute::getDef() const {
  assert(Impl && "null attribute");
  return Impl->Def;
}

const std::vector<ParamValue> &Attribute::getParams() const {
  assert(Impl && "null attribute");
  return Impl->Params;
}

Dialect *Attribute::getDialect() const { return getDef()->getDialect(); }
IRContext *Attribute::getContext() const {
  return getDialect()->getContext();
}
std::string Attribute::getName() const { return getDef()->getFullName(); }

const ParamValue &Attribute::getParam(std::string_view Name) const {
  auto Index = getDef()->lookupParam(Name);
  assert(Index && "no such attribute parameter");
  return getParams()[*Index];
}

std::string Attribute::str() const { return printAttrToString(*this); }

size_t ParamValue::hash() const {
  size_t Seed = static_cast<size_t>(getKind());
  switch (getKind()) {
  case Kind::Empty:
    break;
  case Kind::Type:
    hashCombine(Seed, std::hash<const void *>{}(getType().getImpl()));
    break;
  case Kind::Attr:
    hashCombine(Seed, std::hash<const void *>{}(getAttr().getImpl()));
    break;
  case Kind::Int: {
    const IntVal &V = getInt();
    hashCombine(Seed, hashValues(V.Width, static_cast<int>(V.Sign), V.Value));
    break;
  }
  case Kind::Float: {
    const FloatVal &V = getFloat();
    hashCombine(Seed, hashValues(V.Width, V.Value));
    break;
  }
  case Kind::String:
    hashCombine(Seed, std::hash<std::string>{}(getString()));
    break;
  case Kind::Enum: {
    const EnumVal &V = getEnum();
    hashCombine(Seed, hashValues(static_cast<const void *>(V.Def), V.Index));
    break;
  }
  case Kind::Array:
    for (const ParamValue &Elem : getArray())
      hashCombine(Seed, Elem.hash());
    break;
  case Kind::Opaque: {
    const OpaqueVal &V = getOpaque();
    hashCombine(Seed, hashValues(V.ParamTypeName, V.Payload));
    break;
  }
  }
  return Seed;
}

std::string ParamValue::str() const { return printParamToString(*this); }
