//===- Pass.h - Pass manager --------------------------------------*- C++ -*-===//
///
/// \file
/// A small pass-management layer over the IR: passes transform a root
/// operation; the PassManager sequences them with optional inter-pass
/// verification. Together with dynamically loaded dialects and the
/// pattern rewriter this forms the "simple pattern-based compilation
/// flow ... without the need for additional C++ code" of Section 3.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_PASS_H
#define IRDL_IR_PASS_H

#include "ir/PassInstrumentation.h"
#include "ir/Rewrite.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace irdl {

/// An IR-to-IR transformation rooted at one operation.
class Pass {
public:
  virtual ~Pass();

  /// A stable, command-line-friendly name ("dce", "canonicalize", ...).
  virtual std::string_view getName() const = 0;

  /// Transforms \p Root in place. Failure aborts the pipeline.
  virtual LogicalResult run(Operation *Root, DiagnosticEngine &Diags) = 0;
};

/// A pass that runs independently on each "function" directly under the
/// root (by default: any direct child op with at least one region). When
/// multithreading is enabled, functions that are isolated from above are
/// transformed concurrently on the global thread pool; each task writes
/// into a private DiagnosticEngine, and the engines are replayed in
/// source order so the diagnostic stream is byte-identical to a
/// sequential run. Non-isolated functions (their bodies reach values
/// defined outside) are run sequentially afterwards — mutating them in
/// parallel could race on shared use-def chains.
class FunctionPass : public Pass {
public:
  /// Transforms one function root. Must not touch IR outside \p Func and
  /// must be safe to call concurrently on distinct isolated functions.
  virtual LogicalResult runOnFunction(Operation *Func,
                                      DiagnosticEngine &Diags) = 0;

  /// Which direct children of the pipeline root count as functions.
  /// Defaults to "has a region".
  virtual bool isFunctionLike(Operation *Op) const {
    return Op->getNumRegions() != 0;
  }

  /// Drives runOnFunction over the root's functions; not overridable.
  LogicalResult run(Operation *Root, DiagnosticEngine &Diags) final;
};

/// Wraps a callable as a FunctionPass (handy in tests and tools).
class LambdaFunctionPass : public FunctionPass {
public:
  using FnT = std::function<LogicalResult(Operation *, DiagnosticEngine &)>;

  LambdaFunctionPass(std::string PassName, FnT Fn)
      : PassName(std::move(PassName)), Fn(std::move(Fn)) {}

  std::string_view getName() const override { return PassName; }
  LogicalResult runOnFunction(Operation *Func,
                              DiagnosticEngine &Diags) override {
    return Fn(Func, Diags);
  }

private:
  std::string PassName;
  FnT Fn;
};

/// Statistics of a pipeline run. Collected through a bundled
/// PassInstrumentation; kept as a plain struct for existing consumers.
struct PassPipelineStatistics {
  unsigned PassesRun = 0;
  bool VerificationFailed = false;
  std::string FailedPass;
};

/// Runs passes in sequence, verifying the IR between passes (and before
/// the first) unless disabled.
class PassManager {
public:
  explicit PassManager(IRContext *Ctx) : Ctx(Ctx) {}

  IRContext *getContext() const { return Ctx; }

  void addPass(std::unique_ptr<Pass> P) {
    Passes.push_back(std::move(P));
  }
  template <typename PassT, typename... Args>
  void addPass(Args &&...CtorArgs) {
    Passes.push_back(std::make_unique<PassT>(
        std::forward<Args>(CtorArgs)...));
  }

  void enableVerifier(bool Enable = true) { VerifyEach = Enable; }
  bool isVerifierEnabled() const { return VerifyEach; }

  /// Attaches an observer notified around passes and verifier runs; see
  /// PassInstrumentation.h for the hook order guarantees.
  void addInstrumentation(std::unique_ptr<PassInstrumentation> PI) {
    Instrumentations.push_back(std::move(PI));
  }
  template <typename InstT, typename... Args>
  void addInstrumentation(Args &&...CtorArgs) {
    Instrumentations.push_back(
        std::make_unique<InstT>(std::forward<Args>(CtorArgs)...));
  }

  size_t size() const { return Passes.size(); }
  const std::vector<std::unique_ptr<Pass>> &getPasses() const {
    return Passes;
  }

  /// Runs the pipeline; fills \p Stats when non-null.
  LogicalResult run(Operation *Root, DiagnosticEngine &Diags,
                    PassPipelineStatistics *Stats = nullptr);

private:
  IRContext *Ctx;
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<std::unique_ptr<PassInstrumentation>> Instrumentations;
  bool VerifyEach = true;
};

//===----------------------------------------------------------------------===//
// Builtin passes
//===----------------------------------------------------------------------===//

/// Erases result-producing operations whose results are unused. Ops with
/// regions or successors, terminators, and unregistered ops are never
/// touched; beyond that, deletion requires the op's name to be listed as
/// pure OR AssumeRegisteredOpsPure.
class DeadCodeEliminationPass : public Pass {
public:
  explicit DeadCodeEliminationPass(std::vector<std::string> PureOps = {},
                                   bool AssumeRegisteredOpsPure = false)
      : PureOps(std::move(PureOps)),
        AssumeRegisteredOpsPure(AssumeRegisteredOpsPure) {}

  std::string_view getName() const override { return "dce"; }
  LogicalResult run(Operation *Root, DiagnosticEngine &Diags) override;

  unsigned getNumErased() const { return NumErased; }

private:
  std::vector<std::string> PureOps;
  bool AssumeRegisteredOpsPure;
  unsigned NumErased = 0;
};

/// Applies a rewrite pattern set greedily to a fixed point.
class GreedyRewritePass : public Pass {
public:
  GreedyRewritePass(std::string PassName,
                    std::shared_ptr<RewritePatternSet> Patterns)
      : PassName(std::move(PassName)), Patterns(std::move(Patterns)) {}

  std::string_view getName() const override { return PassName; }
  LogicalResult run(Operation *Root, DiagnosticEngine &Diags) override;

  const RewriteStatistics &getLastStatistics() const { return LastStats; }

private:
  std::string PassName;
  std::shared_ptr<RewritePatternSet> Patterns;
  RewriteStatistics LastStats;
};

} // namespace irdl

#endif // IRDL_IR_PASS_H
