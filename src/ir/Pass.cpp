//===- Pass.cpp -----------------------------------------------------===//

#include "ir/Pass.h"

#include "ir/Block.h"
#include "ir/Region.h"
#include "ir/Verifier.h"

#include <algorithm>

using namespace irdl;

Pass::~Pass() = default;

LogicalResult PassManager::run(Operation *Root, DiagnosticEngine &Diags,
                               PassPipelineStatistics *Stats) {
  auto Verify = [&](const std::string &After) -> LogicalResult {
    if (!VerifyEach)
      return success();
    if (succeeded(verifyOp(Root, Diags)))
      return success();
    if (Stats) {
      Stats->VerificationFailed = true;
      Stats->FailedPass = After;
    }
    Diags.emitError(Root->getLoc(),
                    After.empty()
                        ? "IR failed to verify before the pipeline"
                        : "IR failed to verify after pass '" + After +
                              "'");
    return failure();
  };

  if (failed(Verify("")))
    return failure();

  for (const auto &P : Passes) {
    if (failed(P->run(Root, Diags))) {
      if (Stats)
        Stats->FailedPass = std::string(P->getName());
      return failure();
    }
    if (Stats)
      ++Stats->PassesRun;
    if (failed(Verify(std::string(P->getName()))))
      return failure();
  }
  return success();
}

LogicalResult DeadCodeEliminationPass::run(Operation *Root,
                                           DiagnosticEngine &Diags) {
  (void)Diags;
  NumErased = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Operation *> Dead;
    Root->walk([&](Operation *Op) {
      if (Op == Root || !Op->use_empty() || Op->getNumResults() == 0)
        return;
      if (Op->getNumRegions() != 0 || Op->getNumSuccessors() != 0 ||
          Op->isTerminator())
        return;
      bool Pure =
          std::find(PureOps.begin(), PureOps.end(),
                    Op->getName().str()) != PureOps.end() ||
          (AssumeRegisteredOpsPure && Op->isRegistered());
      if (!Pure)
        return;
      Dead.push_back(Op);
    });
    for (Operation *Op : Dead) {
      if (!Op->use_empty())
        continue;
      Op->erase();
      ++NumErased;
      Changed = true;
    }
  }
  return success();
}

LogicalResult GreedyRewritePass::run(Operation *Root,
                                     DiagnosticEngine &Diags) {
  LastStats = applyPatternsGreedily(Root, *Patterns);
  if (!LastStats.Converged) {
    Diags.emitError(Root->getLoc(),
                    "pattern application did not converge in pass '" +
                        PassName + "'");
    return failure();
  }
  return success();
}
