//===- Pass.cpp -----------------------------------------------------===//

#include "ir/Pass.h"

#include "ir/Block.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "support/Metrics.h"
#include "support/Statistic.h"
#include "support/Threading.h"

#include <algorithm>

using namespace irdl;

IRDL_STATISTIC(Pass, NumPassesRun, "passes run to completion");
IRDL_STATISTIC(Pass, NumPassFailures, "passes that returned failure");
IRDL_STATISTIC(Pass, NumInterPassVerifications,
               "inter-pass verifier runs by the pass manager");
IRDL_STATISTIC(Pass, NumParallelFunctionPassRuns,
               "function-pass runs that fanned out over threads");
IRDL_STATISTIC(Pass, NumFunctionsProcessed,
               "function roots processed by function passes");
IRDL_STATISTIC(DCE, NumOpsErased, "operations erased by dce");

Pass::~Pass() = default;

//===----------------------------------------------------------------------===//
// FunctionPass
//===----------------------------------------------------------------------===//

LogicalResult FunctionPass::run(Operation *Root, DiagnosticEngine &Diags) {
  std::vector<Operation *> Funcs;
  for (Region &R : Root->getRegions())
    for (Block &B : R)
      for (Operation &Op : B)
        if (isFunctionLike(&Op))
          Funcs.push_back(&Op);

  NumFunctionsProcessed += Funcs.size();

  if (!isMultithreadingEnabled() || Funcs.size() < 2) {
    for (Operation *F : Funcs)
      if (failed(runOnFunction(F, Diags)))
        return failure();
    return success();
  }

  // Only isolated-from-above functions may be mutated concurrently; the
  // rest run sequentially afterwards. Results are replayed in source
  // order either way, so the diagnostic stream matches a sequential run
  // up to (and including) the first failing function.
  std::vector<size_t> Isolated, Sequential;
  for (size_t I = 0, E = Funcs.size(); I != E; ++I)
    (Funcs[I]->isIsolatedFromAbove() ? Isolated : Sequential).push_back(I);

  std::vector<DiagnosticEngine> Engines(Funcs.size());
  std::vector<char> Failed(Funcs.size(), 0);

  if (Isolated.size() >= 2) {
    ++NumParallelFunctionPassRuns;
    parallelFor(0, Isolated.size(), [&](size_t I) {
      size_t Idx = Isolated[I];
      Failed[Idx] = failed(runOnFunction(Funcs[Idx], Engines[Idx]));
    });
  } else {
    for (size_t Idx : Isolated)
      Failed[Idx] = failed(runOnFunction(Funcs[Idx], Engines[Idx]));
  }
  for (size_t Idx : Sequential)
    Failed[Idx] = failed(runOnFunction(Funcs[Idx], Engines[Idx]));

  for (size_t I = 0, E = Funcs.size(); I != E; ++I) {
    Diags.replayAll(Engines[I]);
    if (Failed[I])
      return failure();
  }
  return success();
}

//===----------------------------------------------------------------------===//
// PassInstrumentation
//===----------------------------------------------------------------------===//

PassInstrumentation::~PassInstrumentation() = default;

void PassInstrumentation::runBeforePipeline(Operation *) {}
void PassInstrumentation::runAfterPipeline(Operation *) {}
void PassInstrumentation::runBeforePass(const Pass *, Operation *) {}
void PassInstrumentation::runAfterPass(const Pass *, Operation *) {}
void PassInstrumentation::runAfterPassFailed(const Pass *, Operation *) {}
void PassInstrumentation::runBeforeVerifier(Operation *) {}
void PassInstrumentation::runAfterVerifier(Operation *, bool) {}

void PassTimingInstrumentation::open(std::string_view Name) {
#if IRDL_ENABLE_TIMING
  if (!Group)
    return;
  OpenScope S;
  S.Node = Group->startScope(Name, S.StartNs);
  Open.push_back(S);
#else
  (void)Name;
#endif
}

void PassTimingInstrumentation::close() {
#if IRDL_ENABLE_TIMING
  if (!Group || Open.empty())
    return;
  OpenScope S = Open.back();
  Open.pop_back();
  Group->endScope(S.Node, S.StartNs);
#endif
}

void PassTimingInstrumentation::runBeforePipeline(Operation *) {
  Group = FixedGroup ? FixedGroup : getActiveTimerGroup();
  open("pass-pipeline");
}

void PassTimingInstrumentation::runAfterPipeline(Operation *) {
  // Close the pipeline scope plus anything left open by a failure path.
  while (!Open.empty())
    close();
  Group = nullptr;
}

void PassTimingInstrumentation::runBeforePass(const Pass *P, Operation *) {
  open(P->getName());
}

void PassTimingInstrumentation::runAfterPass(const Pass *, Operation *) {
  close();
}

void PassTimingInstrumentation::runAfterPassFailed(const Pass *,
                                                   Operation *) {
  close();
}

void PassTimingInstrumentation::runBeforeVerifier(Operation *) {
  open("verify-each");
}

void PassTimingInstrumentation::runAfterVerifier(Operation *, bool) {
  close();
}

//===----------------------------------------------------------------------===//
// MetricsInstrumentation
//===----------------------------------------------------------------------===//

void MetricsInstrumentation::runBeforePass(const Pass *, Operation *) {
  StartNs.push_back(metricsEnabled() ? steadyNowNs() : 0);
}

void MetricsInstrumentation::finish(std::string_view PassName) {
  if (StartNs.empty())
    return;
  uint64_t Begin = StartNs.back();
  StartNs.pop_back();
  if (!Begin || !metricsEnabled())
    return;
  Histogram &H = MetricsRegistry::instance().getHistogram(
      "irdl_pass_duration_ns", "wall time of one pass (or verify-each) run",
      {{"pass", std::string(PassName)}});
  H.record(steadyNowNs() - Begin);
}

void MetricsInstrumentation::runAfterPass(const Pass *P, Operation *) {
  finish(P->getName());
}

void MetricsInstrumentation::runAfterPassFailed(const Pass *P, Operation *) {
  finish(P->getName());
}

void MetricsInstrumentation::runBeforeVerifier(Operation *) {
  StartNs.push_back(metricsEnabled() ? steadyNowNs() : 0);
}

void MetricsInstrumentation::runAfterVerifier(Operation *, bool) {
  finish("verify-each");
}

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

namespace {
/// Fills the legacy PassPipelineStatistics struct from the hooks, so the
/// pre-instrumentation consumers keep their exact behavior.
class PipelineStatsCollector : public PassInstrumentation {
public:
  explicit PipelineStatsCollector(PassPipelineStatistics *Stats)
      : Stats(Stats) {}

  void runAfterPass(const Pass *P, Operation *) override {
    ++Stats->PassesRun;
    LastFinishedPass = std::string(P->getName());
  }
  void runAfterPassFailed(const Pass *P, Operation *) override {
    Stats->FailedPass = std::string(P->getName());
  }
  void runAfterVerifier(Operation *, bool Succeeded) override {
    if (Succeeded)
      return;
    Stats->VerificationFailed = true;
    Stats->FailedPass = LastFinishedPass;
  }

private:
  PassPipelineStatistics *Stats;
  std::string LastFinishedPass; // empty during the initial verify
};
} // namespace

LogicalResult PassManager::run(Operation *Root, DiagnosticEngine &Diags,
                               PassPipelineStatistics *Stats) {
  // The legacy statistics struct rides along as one more (run-local)
  // instrumentation.
  PipelineStatsCollector StatsCollector(Stats);
  std::vector<PassInstrumentation *> Insts;
  Insts.reserve(Instrumentations.size() + 1);
  for (const auto &PI : Instrumentations)
    Insts.push_back(PI.get());
  if (Stats)
    Insts.push_back(&StatsCollector);

  auto Forward = [&](auto Hook) {
    for (PassInstrumentation *PI : Insts)
      Hook(PI);
  };
  auto Reverse = [&](auto Hook) {
    for (auto It = Insts.rbegin(), E = Insts.rend(); It != E; ++It)
      Hook(*It);
  };

  auto Verify = [&](const std::string &After) -> LogicalResult {
    if (!VerifyEach)
      return success();
    ++NumInterPassVerifications;
    Forward([&](PassInstrumentation *PI) { PI->runBeforeVerifier(Root); });
    bool Ok = succeeded(verifyOp(Root, Diags));
    Reverse(
        [&](PassInstrumentation *PI) { PI->runAfterVerifier(Root, Ok); });
    if (Ok)
      return success();
    Diags.emitError(Root->getLoc(),
                    After.empty()
                        ? "IR failed to verify before the pipeline"
                        : "IR failed to verify after pass '" + After +
                              "'");
    return failure();
  };

  Forward([&](PassInstrumentation *PI) { PI->runBeforePipeline(Root); });
  auto Finish = [&](LogicalResult Result) {
    Reverse([&](PassInstrumentation *PI) { PI->runAfterPipeline(Root); });
    return Result;
  };

  if (failed(Verify("")))
    return Finish(failure());

  for (const auto &P : Passes) {
    Forward(
        [&](PassInstrumentation *PI) { PI->runBeforePass(P.get(), Root); });
    if (failed(P->run(Root, Diags))) {
      ++NumPassFailures;
      Reverse([&](PassInstrumentation *PI) {
        PI->runAfterPassFailed(P.get(), Root);
      });
      return Finish(failure());
    }
    ++NumPassesRun;
    Reverse(
        [&](PassInstrumentation *PI) { PI->runAfterPass(P.get(), Root); });
    if (failed(Verify(std::string(P->getName()))))
      return Finish(failure());
  }
  return Finish(success());
}

//===----------------------------------------------------------------------===//
// Builtin passes
//===----------------------------------------------------------------------===//

LogicalResult DeadCodeEliminationPass::run(Operation *Root,
                                           DiagnosticEngine &Diags) {
  (void)Diags;
  // Per-run count: a reused pass instance must not accumulate across
  // run() invocations.
  NumErased = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Operation *> Dead;
    Root->walk([&](Operation *Op) {
      if (Op == Root || !Op->use_empty() || Op->getNumResults() == 0)
        return;
      if (Op->getNumRegions() != 0 || Op->getNumSuccessors() != 0 ||
          Op->isTerminator())
        return;
      bool Pure =
          std::find(PureOps.begin(), PureOps.end(),
                    Op->getName().str()) != PureOps.end() ||
          (AssumeRegisteredOpsPure && Op->isRegistered());
      if (!Pure)
        return;
      Dead.push_back(Op);
    });
    for (Operation *Op : Dead) {
      if (!Op->use_empty())
        continue;
      Op->erase();
      ++NumErased;
      ++NumOpsErased;
      Changed = true;
    }
  }
  return success();
}

LogicalResult GreedyRewritePass::run(Operation *Root,
                                     DiagnosticEngine &Diags) {
  LastStats = applyPatternsGreedily(Root, *Patterns);
  if (!LastStats.Converged) {
    Diags.emitError(Root->getLoc(),
                    "pattern application did not converge in pass '" +
                        PassName + "'");
    return failure();
  }
  return success();
}
