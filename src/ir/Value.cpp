//===- Value.cpp ----------------------------------------------------===//

#include "ir/Value.h"

#include "ir/Block.h"
#include "ir/Operation.h"

using namespace irdl;

OpOperand::OpOperand(Operation *Owner, Value Val) : Owner(Owner) {
  linkTo(Val.getImpl());
}

Value OpOperand::get() const { return Value(Val); }

void OpOperand::set(Value NewValue) {
  if (NewValue.getImpl() == Val)
    return;
  unlink();
  linkTo(NewValue.getImpl());
}

void OpOperand::linkTo(detail::ValueImpl *Impl) {
  Val = Impl;
  if (!Impl)
    return;
  NextUse = Impl->FirstUse;
  if (NextUse)
    NextUse->Back = &NextUse;
  Impl->FirstUse = this;
  Back = &Impl->FirstUse;
}

void OpOperand::unlink() {
  if (!Val)
    return;
  *Back = NextUse;
  if (NextUse)
    NextUse->Back = Back;
  Val = nullptr;
  NextUse = nullptr;
  Back = nullptr;
}

Operation *Value::getDefiningOp() const {
  if (auto *Res = dyn_cast_if_present<detail::OpResultImpl>(Impl))
    return Res->Owner;
  return nullptr;
}

unsigned Value::getIndex() const {
  assert(Impl && "null value");
  if (auto *Res = dyn_cast<detail::OpResultImpl>(Impl))
    return Res->Index;
  return cast<detail::BlockArgumentImpl>(Impl)->Index;
}

Block *Value::getOwnerBlock() const {
  if (auto *Arg = dyn_cast_if_present<detail::BlockArgumentImpl>(Impl))
    return Arg->Owner;
  return nullptr;
}

Block *Value::getParentBlock() const {
  if (Operation *Op = getDefiningOp())
    return Op->getBlock();
  return getOwnerBlock();
}

unsigned Value::getNumUses() const {
  unsigned Count = 0;
  for (OpOperand *Use = getFirstUse(); Use; Use = Use->getNextUse())
    ++Count;
  return Count;
}

void Value::replaceAllUsesWith(Value NewValue) const {
  assert(Impl && "null value");
  assert(NewValue != *this && "replacing a value with itself");
  while (OpOperand *Use = Impl->FirstUse)
    Use->set(NewValue);
}
