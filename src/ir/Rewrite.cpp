//===- Rewrite.cpp --------------------------------------------------===//

#include "ir/Rewrite.h"

#include "ir/Block.h"
#include "ir/Region.h"
#include "support/Statistic.h"
#include "support/Timing.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace irdl;

IRDL_STATISTIC(Rewrite, NumGreedyIterations,
               "greedy rewriter worklist sweeps");
IRDL_STATISTIC(Rewrite, NumPatternRewrites,
               "successful pattern applications");
IRDL_STATISTIC(Rewrite, NumPatternMatchFailures,
               "pattern matchAndRewrite attempts that failed");

PatternRewriter::~PatternRewriter() = default;
RewritePattern::~RewritePattern() = default;

void PatternRewriter::replaceOp(Operation *Op,
                                std::span<const Value> NewValues) {
  notifyOpReplaced(Op, NewValues);
  Op->replaceAllUsesWith(NewValues);
  eraseOp(Op);
}

void PatternRewriter::eraseOp(Operation *Op) {
  assert(Op->use_empty() && "erasing an operation with live uses");
  // Notify for every nested op too: the driver must drop any worklist
  // pointers into the erased subtree.
  Op->walk([&](Operation *Nested) { notifyOpErased(Nested); });
  Op->erase();
}

Operation *PatternRewriter::createOp(OperationState &State) {
  Operation *Op = create(State);
  notifyOpInserted(Op);
  return Op;
}

namespace {

/// The worklist-driven rewriter behind applyPatternsGreedily.
class GreedyRewriter : public PatternRewriter {
public:
  GreedyRewriter(IRContext *Ctx, const RewritePatternSet &Patterns)
      : PatternRewriter(Ctx) {
    for (const auto &P : Patterns.getPatterns())
      Sorted.push_back(P.get());
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const RewritePattern *A, const RewritePattern *B) {
                       return A->getBenefit() > B->getBenefit();
                     });
  }

  RewriteStatistics run(Operation *Root, unsigned MaxIterations) {
    IRDL_TIME_SCOPE("greedy-rewrite");
    RewriteStatistics Stats;
    for (unsigned Iter = 0; Iter != MaxIterations; ++Iter) {
      ++Stats.NumIterations;
      ++NumGreedyIterations;
      seedWorklist(Root);
      bool Changed = processWorklist(Stats);
      if (!Changed)
        return Stats;
    }
    // One more sweep to detect non-convergence.
    seedWorklist(Root);
    RewriteStatistics Probe;
    if (processWorklist(Probe)) {
      Stats.NumRewrites += Probe.NumRewrites;
      Stats.Converged = false;
    }
    return Stats;
  }

private:
  void seedWorklist(Operation *Root) {
    Worklist.clear();
    InWorklist.clear();
    for (Region &R : Root->getRegions())
      for (Block &B : R)
        for (Operation &Op : B)
          Op.walk([&](Operation *Nested) { addToWorklist(Nested); });
  }

  void addToWorklist(Operation *Op) {
    if (InWorklist.insert(Op).second)
      Worklist.push_back(Op);
  }

  bool processWorklist(RewriteStatistics &Stats) {
    bool Changed = false;
    while (!Worklist.empty()) {
      Operation *Op = Worklist.front();
      Worklist.pop_front();
      if (!InWorklist.count(Op))
        continue;
      InWorklist.erase(Op);
      if (Erased.count(Op))
        continue;

      for (const RewritePattern *P : Sorted) {
        if (!P->getRootName().empty() &&
            P->getRootName() != Op->getName().str())
          continue;
        CurrentRoot = Op;
        setInsertionPoint(Op);
        if (succeeded(P->matchAndRewrite(Op, *this))) {
          ++Stats.NumRewrites;
          ++NumPatternRewrites;
          Changed = true;
          break; // Op may be gone; revisit via worklist updates.
        }
        ++NumPatternMatchFailures;
      }
    }
    // Forget erased pointers; they may be reused by the allocator.
    Erased.clear();
    return Changed;
  }

  void notifyOpInserted(Operation *Op) override {
    // A new op may reuse the address of a previously erased one.
    Erased.erase(Op);
    addToWorklist(Op);
  }

  void notifyOpErased(Operation *Op) override {
    Erased.insert(Op);
    InWorklist.erase(Op);
  }

  void notifyOpReplaced(Operation *Op,
                        std::span<const Value> NewValues) override {
    // Users of the replaced values may now match new patterns.
    for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I)
      for (OpOperand *Use = Op->getResult(I).getFirstUse(); Use;
           Use = Use->getNextUse())
        addToWorklist(Use->getOwner());
    (void)NewValues;
  }

public:
  void notifyOpModified(Operation *Op) override { addToWorklist(Op); }

private:
  std::vector<const RewritePattern *> Sorted;
  std::deque<Operation *> Worklist;
  std::unordered_set<Operation *> InWorklist;
  std::unordered_set<Operation *> Erased;
  Operation *CurrentRoot = nullptr;
};

} // namespace

RewriteStatistics irdl::applyPatternsGreedily(
    Operation *Root, const RewritePatternSet &Patterns,
    unsigned MaxIterations) {
  GreedyRewriter Rewriter(Patterns.getContext(), Patterns);
  return Rewriter.run(Root, MaxIterations);
}

unsigned irdl::eraseDeadOps(Operation *Root,
                            const std::vector<std::string> &PureOpNames) {
  unsigned NumErased = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Operation *> Dead;
    Root->walk([&](Operation *Op) {
      if (Op == Root || !Op->use_empty() || Op->getNumResults() == 0)
        return;
      if (std::find(PureOpNames.begin(), PureOpNames.end(),
                    Op->getName().str()) == PureOpNames.end())
        return;
      Dead.push_back(Op);
    });
    for (Operation *Op : Dead) {
      if (!Op->use_empty())
        continue;
      Op->erase();
      ++NumErased;
      Changed = true;
    }
  }
  return NumErased;
}
