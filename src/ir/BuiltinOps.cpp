//===- BuiltinOps.cpp - builtin/std operations ------------------------===//
///
/// \file
/// Registers the operations the paper's examples assume to exist:
/// `builtin.module`, and the `std` dialect's `func`, `return`, `mulf`,
/// `addf`, `constant`, `br`, and `cond_br`. These are defined natively in
/// C++ with custom parse/print hooks — exercising exactly the hook surface
/// that IRDL `Format` directives compile into for dynamic dialects.
///
//===----------------------------------------------------------------------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"

using namespace irdl;

namespace {

/// Returns the builtin definition check helper.
bool isBuiltinFloat(Type T) {
  if (!T)
    return false;
  const TypeDefinition *Def = T.getDef();
  if (Def->getDialect()->getNamespace() != "builtin")
    return false;
  const std::string &N = Def->getShortName();
  return N == "f16" || N == "f32" || N == "f64";
}

LogicalResult verifyModule(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 0 || Op->getNumResults() != 0 ||
      Op->getNumRegions() != 1) {
    Diags.emitError(Op->getLoc(),
                    "module expects no operands/results and one region");
    return failure();
  }
  return success();
}

LogicalResult verifyFunc(Operation *Op, DiagnosticEngine &Diags) {
  Attribute SymName = Op->getAttr("sym_name");
  Attribute FuncTy = Op->getAttr("function_type");
  IRContext *Ctx = Op->getDef()->getDialect()->getContext();
  if (!SymName || SymName.getDef() != Ctx->getStringAttrDef()) {
    Diags.emitError(Op->getLoc(),
                    "func requires a string 'sym_name' attribute");
    return failure();
  }
  if (!FuncTy || FuncTy.getDef() != Ctx->getTypeAttrDef() ||
      FuncTy.getParams()[0].getType().getDef() !=
          Ctx->getFunctionTypeDef()) {
    Diags.emitError(
        Op->getLoc(),
        "func requires a 'function_type' attribute holding a function type");
    return failure();
  }
  if (Op->getNumRegions() != 1 || Op->getNumResults() != 0 ||
      Op->getNumOperands() != 0) {
    Diags.emitError(Op->getLoc(),
                    "func expects one region and no operands/results");
    return failure();
  }
  Type FT = FuncTy.getParams()[0].getType();
  const auto &Inputs = FT.getParams()[0].getArray();
  const auto &Results = FT.getParams()[1].getArray();
  Region &Body = Op->getRegion(0);
  if (Body.empty())
    return success(); // Declaration.
  Block &Entry = Body.front();
  if (Entry.getNumArguments() != Inputs.size()) {
    Diags.emitError(Op->getLoc(),
                    "entry block argument count does not match the "
                    "function signature");
    return failure();
  }
  for (unsigned I = 0, E = Inputs.size(); I != E; ++I) {
    if (Entry.getArgument(I).getType() != Inputs[I].getType()) {
      Diags.emitError(Op->getLoc(), "entry block argument #" +
                                        std::to_string(I) +
                                        " does not match signature type " +
                                        Inputs[I].getType().str());
      return failure();
    }
  }
  // Global constraint: a trailing `return` must match the result types.
  for (Block &B : Body) {
    Operation *Term = B.getTerminator();
    if (!Term || Term->getName().str() != "std.return")
      continue;
    if (Term->getNumOperands() != Results.size()) {
      Diags.emitError(Term->getLoc(),
                      "return operand count does not match the function "
                      "result count");
      return failure();
    }
    for (unsigned I = 0, E = Results.size(); I != E; ++I) {
      if (Term->getOperand(I).getType() != Results[I].getType()) {
        Diags.emitError(Term->getLoc(),
                        "return operand #" + std::to_string(I) +
                            " does not match function result type " +
                            Results[I].getType().str());
        return failure();
      }
    }
  }
  return success();
}

LogicalResult verifyBinaryFloatOp(Operation *Op, DiagnosticEngine &Diags) {
  if (Op->getNumOperands() != 2 || Op->getNumResults() != 1 ||
      Op->getNumRegions() != 0) {
    Diags.emitError(Op->getLoc(), "'" + Op->getName().str() +
                                      "' expects two operands and one "
                                      "result");
    return failure();
  }
  Type T = Op->getOperand(0).getType();
  if (!isBuiltinFloat(T)) {
    Diags.emitError(Op->getLoc(), "'" + Op->getName().str() +
                                      "' operates on floating-point types");
    return failure();
  }
  if (Op->getOperand(1).getType() != T ||
      Op->getResult(0).getType() != T) {
    Diags.emitError(Op->getLoc(), "'" + Op->getName().str() +
                                      "' operand and result types must "
                                      "match");
    return failure();
  }
  return success();
}

LogicalResult verifyConstant(Operation *Op, DiagnosticEngine &Diags) {
  IRContext *Ctx = Op->getDef()->getDialect()->getContext();
  Attribute V = Op->getAttr("value");
  if (!V || (V.getDef() != Ctx->getIntAttrDef() &&
             V.getDef() != Ctx->getFloatAttrDef())) {
    Diags.emitError(Op->getLoc(),
                    "constant requires an integer or float 'value'");
    return failure();
  }
  if (Op->getNumOperands() != 0 || Op->getNumResults() != 1) {
    Diags.emitError(Op->getLoc(),
                    "constant expects no operands and one result");
    return failure();
  }
  Type ResultTy = Op->getResult(0).getType();
  if (V.getDef() == Ctx->getFloatAttrDef()) {
    unsigned Width = V.getParams()[0].getFloat().Width;
    if (ResultTy != Ctx->getFloatType(Width)) {
      Diags.emitError(Op->getLoc(),
                      "constant result type does not match its value");
      return failure();
    }
  } else {
    const IntVal &IV = V.getParams()[0].getInt();
    if (ResultTy != Ctx->getIntegerType(IV.Width, IV.Sign)) {
      Diags.emitError(Op->getLoc(),
                      "constant result type does not match its value");
      return failure();
    }
  }
  return success();
}

LogicalResult verifyCondBr(Operation *Op, DiagnosticEngine &Diags) {
  IRContext *Ctx = Op->getDef()->getDialect()->getContext();
  if (Op->getNumOperands() != 1 ||
      Op->getOperand(0).getType() != Ctx->getIntegerType(1)) {
    Diags.emitError(Op->getLoc(), "cond_br expects a single i1 condition");
    return failure();
  }
  return success();
}

//===----------------------------------------------------------------------===//
// Custom syntax hooks
//===----------------------------------------------------------------------===//

void printModule(Operation *Op, CustomOpPrinter &P) {
  if (!Op->getAttrs().empty()) {
    P << "attributes";
    P.printOptionalAttrDict(Op->getAttrs());
    P << " ";
  }
  P.printRegion(Op->getRegion(0));
}

LogicalResult parseModule(CustomOpParser &P, OperationState &State) {
  if (P.consumeOptionalKeyword("attributes"))
    if (failed(P.parseOptionalAttrDict(State.Attributes)))
      return failure();
  Region *R = State.addRegion();
  return P.parseRegion(*R);
}

void printFunc(Operation *Op, CustomOpPrinter &P) {
  IRContext *Ctx = Op->getDef()->getDialect()->getContext();
  P << "@";
  P << Op->getAttr("sym_name").getParams()[0].getString();
  Type FT = Op->getAttr("function_type").getParams()[0].getType();
  const auto &Inputs = FT.getParams()[0].getArray();
  const auto &Results = FT.getParams()[1].getArray();
  P << "(";
  Region &Body = Op->getRegion(0);
  for (unsigned I = 0, E = Inputs.size(); I != E; ++I) {
    if (I)
      P << ", ";
    if (!Body.empty()) {
      P.printOperand(Body.front().getArgument(I));
      P << ": ";
    }
    P.printType(Inputs[I].getType());
  }
  P << ")";
  if (!Results.empty()) {
    P << " -> ";
    if (Results.size() > 1)
      P << "(";
    for (unsigned I = 0, E = Results.size(); I != E; ++I) {
      if (I)
        P << ", ";
      P.printType(Results[I].getType());
    }
    if (Results.size() > 1)
      P << ")";
  }
  // Extra attributes need an `attributes` keyword so the dict's `{` cannot
  // be confused with the body region.
  bool HasExtraAttrs = false;
  for (const NamedAttribute &NA : Op->getAttrs())
    if (NA.Name != "sym_name" && NA.Name != "function_type")
      HasExtraAttrs = true;
  if (HasExtraAttrs) {
    P << " attributes";
    P.printOptionalAttrDict(Op->getAttrs(), {"sym_name", "function_type"});
  }
  if (!Body.empty()) {
    P << " ";
    P.printRegion(Body);
  }
  (void)Ctx;
}

LogicalResult parseFunc(CustomOpParser &P, OperationState &State) {
  IRContext *Ctx = P.getContext();
  std::string SymName;
  if (failed(P.parseSymbolName(SymName)))
    return failure();

  std::vector<std::pair<CustomOpParser::UnresolvedOperand, Type>> EntryArgs;
  std::vector<Type> InputTypes;
  if (failed(P.expect(IRToken::Kind::LParen, "'(' in function signature")))
    return failure();
  if (!P.consumeIf(IRToken::Kind::RParen)) {
    do {
      CustomOpParser::UnresolvedOperand Arg;
      if (failed(P.parseOperand(Arg)) ||
          failed(P.expect(IRToken::Kind::Colon,
                          "':' after function argument")))
        return failure();
      Type Ty;
      if (failed(P.parseType(Ty)))
        return failure();
      EntryArgs.emplace_back(Arg, Ty);
      InputTypes.push_back(Ty);
    } while (P.consumeIf(IRToken::Kind::Comma));
    if (failed(P.expect(IRToken::Kind::RParen,
                        "')' in function signature")))
      return failure();
  }

  std::vector<Type> ResultTypes;
  if (P.consumeIf(IRToken::Kind::Arrow)) {
    if (P.consumeIf(IRToken::Kind::LParen)) {
      if (!P.consumeIf(IRToken::Kind::RParen)) {
        do {
          Type Ty;
          if (failed(P.parseType(Ty)))
            return failure();
          ResultTypes.push_back(Ty);
        } while (P.consumeIf(IRToken::Kind::Comma));
        if (failed(P.expect(IRToken::Kind::RParen,
                            "')' in function results")))
          return failure();
      }
    } else {
      Type Ty;
      if (failed(P.parseType(Ty)))
        return failure();
      ResultTypes.push_back(Ty);
    }
  }

  if (P.consumeOptionalKeyword("attributes"))
    if (failed(P.parseOptionalAttrDict(State.Attributes)))
      return failure();
  State.addAttribute("sym_name", Ctx->getStringAttr(SymName));
  State.addAttribute(
      "function_type",
      Ctx->getTypeAttr(Ctx->getFunctionType(InputTypes, ResultTypes)));

  Region *Body = State.addRegion();
  return P.parseRegion(*Body, EntryArgs);
}

void printReturn(Operation *Op, CustomOpPrinter &P) {
  for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I) {
    if (I)
      P << ", ";
    P.printOperand(Op->getOperand(I));
  }
  if (Op->getNumOperands()) {
    P << " : ";
    for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I) {
      if (I)
        P << ", ";
      P.printType(Op->getOperand(I).getType());
    }
  }
}

LogicalResult parseReturn(CustomOpParser &P, OperationState &State) {
  std::vector<CustomOpParser::UnresolvedOperand> Refs;
  CustomOpParser::UnresolvedOperand Ref;
  if (P.parseOptionalOperand(Ref)) {
    Refs.push_back(Ref);
    while (P.consumeIf(IRToken::Kind::Comma)) {
      if (failed(P.parseOperand(Ref)))
        return failure();
      Refs.push_back(Ref);
    }
    if (failed(P.expect(IRToken::Kind::Colon, "':' before operand types")))
      return failure();
    for (size_t I = 0; I != Refs.size(); ++I) {
      if (I && failed(P.expect(IRToken::Kind::Comma,
                               "',' between operand types")))
        return failure();
      Type Ty;
      if (failed(P.parseType(Ty)))
        return failure();
      if (failed(P.resolveOperand(Refs[I], Ty, State.Operands)))
        return failure();
    }
  }
  return success();
}

void printBinaryOp(Operation *Op, CustomOpPrinter &P) {
  P.printOperand(Op->getOperand(0));
  P << ", ";
  P.printOperand(Op->getOperand(1));
  P << " : ";
  P.printType(Op->getResult(0).getType());
}

LogicalResult parseBinaryOp(CustomOpParser &P, OperationState &State) {
  CustomOpParser::UnresolvedOperand Lhs, Rhs;
  if (failed(P.parseOperand(Lhs)) ||
      failed(P.expect(IRToken::Kind::Comma, "',' between operands")) ||
      failed(P.parseOperand(Rhs)) ||
      failed(P.expect(IRToken::Kind::Colon, "':' before operand type")))
    return failure();
  Type Ty;
  if (failed(P.parseType(Ty)))
    return failure();
  if (failed(P.resolveOperand(Lhs, Ty, State.Operands)) ||
      failed(P.resolveOperand(Rhs, Ty, State.Operands)))
    return failure();
  State.ResultTypes.push_back(Ty);
  return success();
}

void printConstant(Operation *Op, CustomOpPrinter &P) {
  P.printAttribute(Op->getAttr("value"));
}

LogicalResult parseConstant(CustomOpParser &P, OperationState &State) {
  IRContext *Ctx = P.getContext();
  Attribute V;
  SMLoc Loc = P.getCurrentLoc();
  if (failed(P.parseAttribute(V)))
    return failure();
  State.addAttribute("value", V);
  if (V.getDef() == Ctx->getFloatAttrDef()) {
    State.ResultTypes.push_back(
        Ctx->getFloatType(V.getParams()[0].getFloat().Width));
  } else if (V.getDef() == Ctx->getIntAttrDef()) {
    const IntVal &IV = V.getParams()[0].getInt();
    State.ResultTypes.push_back(Ctx->getIntegerType(IV.Width, IV.Sign));
  } else {
    return P.emitError(Loc, "constant expects an integer or float value");
  }
  return success();
}

} // namespace

namespace irdl {

void registerBuiltinOps(IRContext &Ctx) {
  Dialect *Builtin = Ctx.getOrCreateDialect("builtin");

  OpDefinition *Module = Builtin->addOp("module");
  Module->setSummary("A top-level container operation");
  Module->setVerifier(verifyModule);
  Module->setPrintFn(printModule);
  Module->setParseFn(parseModule);

  Dialect *Std = Ctx.getOrCreateDialect("std");

  OpDefinition *Func = Std->addOp("func");
  Func->setSummary("A function definition");
  Func->setVerifier(verifyFunc);
  Func->setPrintFn(printFunc);
  Func->setParseFn(parseFunc);
  Func->setRequiresCpp(); // Global constraints live in native C++.

  OpDefinition *Return = Std->addOp("return");
  Return->setSummary("Function return terminator");
  Return->setTerminator();
  Return->setNumSuccessors(0);
  Return->setPrintFn(printReturn);
  Return->setParseFn(parseReturn);

  for (const char *Name : {"mulf", "addf"}) {
    OpDefinition *Def = Std->addOp(Name);
    Def->setSummary(std::string("Floating-point ") +
                    (Name[0] == 'm' ? "multiplication" : "addition"));
    Def->setVerifier(verifyBinaryFloatOp);
    Def->setPrintFn(printBinaryOp);
    Def->setParseFn(parseBinaryOp);
  }

  OpDefinition *Constant = Std->addOp("constant");
  Constant->setSummary("An integer or floating-point constant");
  Constant->setVerifier(verifyConstant);
  Constant->setPrintFn(printConstant);
  Constant->setParseFn(parseConstant);

  OpDefinition *Br = Std->addOp("br");
  Br->setSummary("Unconditional branch");
  Br->setTerminator();
  Br->setNumSuccessors(1);

  OpDefinition *CondBr = Std->addOp("cond_br");
  CondBr->setSummary("Conditional branch");
  CondBr->setTerminator();
  CondBr->setNumSuccessors(2);
  CondBr->setVerifier(verifyCondBr);
}

} // namespace irdl
