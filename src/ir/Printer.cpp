//===- Printer.cpp --------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace irdl;

//===----------------------------------------------------------------------===//
// Types, attributes, parameters
//===----------------------------------------------------------------------===//

static bool isBuiltinDef(const TypeOrAttrDefinitionBase *Def,
                         std::string_view Name) {
  return Def->getDialect()->getNamespace() == "builtin" &&
         Def->getShortName() == Name;
}

void irdl::printFloatLiteral(double Value, std::ostream &OS) {
  if (std::isnan(Value)) {
    OS << "nan";
    return;
  }
  if (std::isinf(Value)) {
    OS << (Value < 0 ? "-inf" : "inf");
    return;
  }
  std::ostringstream Tmp;
  Tmp.precision(17);
  Tmp << Value;
  std::string Text = Tmp.str();
  // Ensure the token is recognizably a float on re-parse.
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos)
    Text += ".0";
  OS << Text;
}

void irdl::printType(Type T, std::ostream &OS) {
  if (!T) {
    OS << "<<null type>>";
    return;
  }
  const TypeDefinition *Def = T.getDef();
  // Builtin sugar.
  if (isBuiltinDef(Def, "f16") || isBuiltinDef(Def, "f32") ||
      isBuiltinDef(Def, "f64") || isBuiltinDef(Def, "index")) {
    OS << Def->getShortName();
    return;
  }
  if (isBuiltinDef(Def, "integer")) {
    const IntVal &Width = T.getParams()[0].getInt();
    const EnumVal &Sign = T.getParams()[1].getEnum();
    OS << signednessPrefix(static_cast<Signedness>(Sign.Index))
       << Width.Value;
    return;
  }
  if (isBuiltinDef(Def, "function")) {
    const auto &Inputs = T.getParams()[0].getArray();
    const auto &Results = T.getParams()[1].getArray();
    OS << "(";
    for (size_t I = 0; I != Inputs.size(); ++I) {
      if (I)
        OS << ", ";
      printType(Inputs[I].getType(), OS);
    }
    OS << ") -> ";
    if (Results.size() == 1) {
      printType(Results[0].getType(), OS);
      return;
    }
    OS << "(";
    for (size_t I = 0; I != Results.size(); ++I) {
      if (I)
        OS << ", ";
      printType(Results[I].getType(), OS);
    }
    OS << ")";
    return;
  }
  OS << "!" << Def->getFullName();
  if (!T.getParams().empty()) {
    OS << "<";
    for (size_t I = 0, E = T.getParams().size(); I != E; ++I) {
      if (I)
        OS << ", ";
      printParam(T.getParams()[I], OS);
    }
    OS << ">";
  }
}

std::string irdl::printTypeToString(Type T) {
  std::ostringstream OS;
  printType(T, OS);
  return OS.str();
}

static void printIntVal(const IntVal &V, std::ostream &OS) {
  OS << V.Value << " : " << signednessPrefix(V.Sign) << V.Width;
}

static void printFloatVal(const FloatVal &V, std::ostream &OS) {
  printFloatLiteral(V.Value, OS);
  OS << " : f" << V.Width;
}

void irdl::printAttr(Attribute A, std::ostream &OS, bool Sugar) {
  if (!A) {
    OS << "<<null attribute>>";
    return;
  }
  const AttrDefinition *Def = A.getDef();
  if (Sugar) {
    if (isBuiltinDef(Def, "int")) {
      printIntVal(A.getParams()[0].getInt(), OS);
      return;
    }
    if (isBuiltinDef(Def, "float")) {
      printFloatVal(A.getParams()[0].getFloat(), OS);
      return;
    }
    if (isBuiltinDef(Def, "string")) {
      OS << '"' << escapeString(A.getParams()[0].getString()) << '"';
      return;
    }
    if (isBuiltinDef(Def, "type")) {
      printType(A.getParams()[0].getType(), OS);
      return;
    }
    if (isBuiltinDef(Def, "unit")) {
      OS << "unit";
      return;
    }
    if (isBuiltinDef(Def, "enum")) {
      const EnumVal &V = A.getParams()[0].getEnum();
      OS << V.Def->getFullName() << "." << V.Def->getCases()[V.Index];
      return;
    }
    if (isBuiltinDef(Def, "array")) {
      OS << "[";
      const auto &Elems = A.getParams()[0].getArray();
      for (size_t I = 0; I != Elems.size(); ++I) {
        if (I)
          OS << ", ";
        printAttr(Elems[I].getAttr(), OS, /*Sugar=*/true);
      }
      OS << "]";
      return;
    }
  }
  OS << "#" << Def->getFullName();
  if (!A.getParams().empty()) {
    OS << "<";
    for (size_t I = 0, E = A.getParams().size(); I != E; ++I) {
      if (I)
        OS << ", ";
      printParam(A.getParams()[I], OS);
    }
    OS << ">";
  }
}

std::string irdl::printAttrToString(Attribute A) {
  std::ostringstream OS;
  printAttr(A, OS);
  return OS.str();
}

void irdl::printParam(const ParamValue &P, std::ostream &OS) {
  switch (P.getKind()) {
  case ParamValue::Kind::Empty:
    OS << "<<empty param>>";
    return;
  case ParamValue::Kind::Type:
    printType(P.getType(), OS);
    return;
  case ParamValue::Kind::Attr:
    // Canonical #-form: sugar would be ambiguous with the other parameter
    // kinds inside `<...>` lists.
    printAttr(P.getAttr(), OS, /*Sugar=*/false);
    return;
  case ParamValue::Kind::Int:
    printIntVal(P.getInt(), OS);
    return;
  case ParamValue::Kind::Float:
    printFloatVal(P.getFloat(), OS);
    return;
  case ParamValue::Kind::String:
    OS << '"' << escapeString(P.getString()) << '"';
    return;
  case ParamValue::Kind::Enum: {
    const EnumVal &V = P.getEnum();
    OS << V.Def->getFullName() << "." << V.Def->getCases()[V.Index];
    return;
  }
  case ParamValue::Kind::Array: {
    OS << "[";
    const auto &Elems = P.getArray();
    for (size_t I = 0; I != Elems.size(); ++I) {
      if (I)
        OS << ", ";
      printParam(Elems[I], OS);
    }
    OS << "]";
    return;
  }
  case ParamValue::Kind::Opaque: {
    const OpaqueVal &V = P.getOpaque();
    OS << "opaque<\"" << escapeString(V.ParamTypeName) << "\", \""
       << escapeString(V.Payload) << "\">";
    return;
  }
  }
}

std::string irdl::printParamToString(const ParamValue &P) {
  std::ostringstream OS;
  printParam(P, OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// IRPrinter
//===----------------------------------------------------------------------===//

void IRPrinter::indent() {
  for (unsigned I = 0; I != Indent; ++I)
    OS << "  ";
}

std::string &IRPrinter::nameValue(Value V) {
  auto It = ValueNames.find(V.getImpl());
  if (It != ValueNames.end())
    return It->second;
  // Results of multi-result operations share a base id.
  if (Operation *Op = V.getDefiningOp()) {
    unsigned Base = NextValueId++;
    for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I) {
      std::string OpName = "%" + std::to_string(Base);
      if (E > 1)
        OpName += "#" + std::to_string(I);
      ValueNames.emplace(Op->getResult(I).getImpl(), std::move(OpName));
    }
    return ValueNames[V.getImpl()];
  }
  std::string ArgName = "%" + std::to_string(NextValueId++);
  return ValueNames.emplace(V.getImpl(), std::move(ArgName)).first->second;
}

void IRPrinter::printValueName(Value V) { OS << nameValue(V); }

void IRPrinter::printBlockName(Block *B) {
  auto It = BlockNames.find(B);
  if (It == BlockNames.end())
    It = BlockNames.emplace(B, "^bb" + std::to_string(NextBlockId++)).first;
  OS << It->second;
}

void IRPrinter::printAttrDict(const NamedAttrList &Attrs,
                              const std::vector<std::string> &Elided) {
  bool Any = false;
  for (const NamedAttribute &NA : Attrs) {
    if (std::find(Elided.begin(), Elided.end(), NA.Name) != Elided.end())
      continue;
    OS << (Any ? ", " : " {");
    Any = true;
    // Names that are not plain identifiers print quoted.
    if (isIdentifier(NA.Name))
      OS << NA.Name;
    else
      OS << '"' << escapeString(NA.Name) << '"';
    // Unit attributes print as their bare name.
    if (!(isBuiltinDef(NA.Attr.getDef(), "unit"))) {
      OS << " = ";
      printAttr(NA.Attr, OS);
    }
  }
  if (Any)
    OS << "}";
}

void IRPrinter::printOp(Operation *Op) {
  indent();
  if (unsigned NumResults = Op->getNumResults()) {
    const std::string &FullName = nameValue(Op->getResult(0));
    OS << FullName.substr(0, FullName.find('#'));
    if (NumResults > 1)
      OS << ":" << NumResults;
    OS << " = ";
  }
  printOpRHS(Op);
  OS << "\n";
}

void IRPrinter::printOpRHS(Operation *Op) {
  const OpDefinition *Def = Op->getDef();
  if (Def && Def->getPrintFn() && !Opts.GenericForm) {
    OS << Op->getName().str() << " ";
    CustomOpPrinter Custom(*this);
    Def->getPrintFn()(Op, Custom);
    return;
  }
  printGenericOp(Op);
}

void IRPrinter::printGenericOp(Operation *Op) {
  OS << '"' << Op->getName().str() << "\"(";
  for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I) {
    if (I)
      OS << ", ";
    printValueName(Op->getOperand(I));
  }
  OS << ")";

  if (unsigned NumSucc = Op->getNumSuccessors()) {
    OS << "[";
    for (unsigned I = 0; I != NumSucc; ++I) {
      if (I)
        OS << ", ";
      printBlockName(Op->getSuccessor(I));
    }
    OS << "]";
  }

  if (unsigned NumRegions = Op->getNumRegions()) {
    OS << " (";
    for (unsigned I = 0; I != NumRegions; ++I) {
      if (I)
        OS << ", ";
      printRegion(Op->getRegion(I), /*PrintEntryArgs=*/true);
    }
    OS << ")";
  }

  printAttrDict(Op->getAttrs());

  OS << " : (";
  for (unsigned I = 0, E = Op->getNumOperands(); I != E; ++I) {
    if (I)
      OS << ", ";
    printType(Op->getOperand(I).getType(), OS);
  }
  OS << ") -> (";
  for (unsigned I = 0, E = Op->getNumResults(); I != E; ++I) {
    if (I)
      OS << ", ";
    printType(Op->getResult(I).getType(), OS);
  }
  OS << ")";
}

void IRPrinter::printBlock(Block &B, bool PrintHeader) {
  if (PrintHeader) {
    indent();
    printBlockName(&B);
    if (B.getNumArguments()) {
      OS << "(";
      for (unsigned I = 0, E = B.getNumArguments(); I != E; ++I) {
        if (I)
          OS << ", ";
        printValueName(B.getArgument(I));
        OS << ": ";
        printType(B.getArgument(I).getType(), OS);
      }
      OS << ")";
    }
    OS << ":\n";
  }
  ++Indent;
  for (Operation &Op : B)
    printOp(&Op);
  --Indent;
}

void IRPrinter::printRegion(Region &R, bool PrintEntryArgs) {
  OS << "{\n";
  bool IsEntry = true;
  for (Block &B : R) {
    bool Header = !IsEntry || (PrintEntryArgs && B.getNumArguments() != 0);
    printBlock(B, Header);
    IsEntry = false;
  }
  indent();
  OS << "}";
}

std::string irdl::printOpToString(Operation *Op, PrintOptions Opts) {
  std::ostringstream OS;
  IRPrinter P(OS, Opts);
  P.printOp(Op);
  std::string Result = OS.str();
  // Drop the trailing newline for embedding convenience.
  if (!Result.empty() && Result.back() == '\n')
    Result.pop_back();
  return Result;
}
