//===- IRLexer.cpp --------------------------------------------------===//

#include "ir/IRLexer.h"

#include "support/StringExtras.h"

using namespace irdl;

IRLexer::IRLexer(std::string_view Source, DiagnosticEngine &Diags)
    : Cur(Source.data()), End(Source.data() + Source.size()), Diags(Diags) {
  Tok = lexImpl();
}

const IRToken &IRLexer::lex() {
  Tok = lexImpl();
  return Tok;
}

IRToken IRLexer::makeToken(IRToken::Kind K, const char *Start) {
  IRToken T;
  T.K = K;
  T.Spelling.assign(Start, Cur - Start);
  T.Loc = SMLoc::getFromPointer(Start);
  return T;
}

IRToken IRLexer::lexImpl() {
  // Skip whitespace and comments.
  while (Cur != End) {
    if (*Cur == ' ' || *Cur == '\t' || *Cur == '\n' || *Cur == '\r') {
      ++Cur;
      continue;
    }
    if (*Cur == '/' && Cur + 1 != End && Cur[1] == '/') {
      while (Cur != End && *Cur != '\n')
        ++Cur;
      continue;
    }
    break;
  }

  const char *Start = Cur;
  if (Cur == End)
    return makeToken(IRToken::Kind::Eof, Start);

  char C = *Cur++;
  switch (C) {
  case '(':
    return makeToken(IRToken::Kind::LParen, Start);
  case ')':
    return makeToken(IRToken::Kind::RParen, Start);
  case '{':
    return makeToken(IRToken::Kind::LBrace, Start);
  case '}':
    return makeToken(IRToken::Kind::RBrace, Start);
  case '<':
    return makeToken(IRToken::Kind::Less, Start);
  case '>':
    return makeToken(IRToken::Kind::Greater, Start);
  case '[':
    return makeToken(IRToken::Kind::LSquare, Start);
  case ']':
    return makeToken(IRToken::Kind::RSquare, Start);
  case ',':
    return makeToken(IRToken::Kind::Comma, Start);
  case ':':
    return makeToken(IRToken::Kind::Colon, Start);
  case '=':
    return makeToken(IRToken::Kind::Equal, Start);
  case '+':
    return makeToken(IRToken::Kind::Plus, Start);
  case '*':
    return makeToken(IRToken::Kind::Star, Start);
  case '.':
    return makeToken(IRToken::Kind::Dot, Start);
  case '?':
    return makeToken(IRToken::Kind::Question, Start);
  case '!':
    return makeToken(IRToken::Kind::Bang, Start);
  case '#':
    return makeToken(IRToken::Kind::Hash, Start);
  case '-':
    if (Cur != End && *Cur == '>') {
      ++Cur;
      return makeToken(IRToken::Kind::Arrow, Start);
    }
    return makeToken(IRToken::Kind::Minus, Start);
  case '%':
    return lexPrefixedIdent(Start, IRToken::Kind::PercentId,
                            /*AllowHashSuffix=*/true);
  case '^':
    return lexPrefixedIdent(Start, IRToken::Kind::CaretId,
                            /*AllowHashSuffix=*/false);
  case '@':
    return lexPrefixedIdent(Start, IRToken::Kind::AtId,
                            /*AllowHashSuffix=*/false);
  case '"':
    return lexString(Start);
  default:
    break;
  }

  if (C >= '0' && C <= '9')
    return lexNumber(Start);

  if (isIdentifierStart(C)) {
    while (Cur != End && isIdentifierChar(*Cur))
      ++Cur;
    return makeToken(IRToken::Kind::Identifier, Start);
  }

  Diags.emitError(SMLoc::getFromPointer(Start),
                  std::string("unexpected character '") + C + "'");
  return makeToken(IRToken::Kind::Error, Start);
}

IRToken IRLexer::lexNumber(const char *Start) {
  while (Cur != End && *Cur >= '0' && *Cur <= '9')
    ++Cur;
  bool IsFloat = false;
  if (Cur != End && *Cur == '.' && Cur + 1 != End && Cur[1] >= '0' &&
      Cur[1] <= '9') {
    IsFloat = true;
    ++Cur;
    while (Cur != End && *Cur >= '0' && *Cur <= '9')
      ++Cur;
  }
  if (Cur != End && (*Cur == 'e' || *Cur == 'E')) {
    const char *Save = Cur;
    ++Cur;
    if (Cur != End && (*Cur == '+' || *Cur == '-'))
      ++Cur;
    if (Cur != End && *Cur >= '0' && *Cur <= '9') {
      IsFloat = true;
      while (Cur != End && *Cur >= '0' && *Cur <= '9')
        ++Cur;
    } else {
      Cur = Save;
    }
  }
  return makeToken(IsFloat ? IRToken::Kind::Float : IRToken::Kind::Integer,
                   Start);
}

IRToken IRLexer::lexString(const char *Start) {
  std::string Body;
  while (true) {
    if (Cur == End) {
      Diags.emitError(SMLoc::getFromPointer(Start),
                      "unterminated string literal");
      return makeToken(IRToken::Kind::Error, Start);
    }
    char C = *Cur++;
    if (C == '"')
      break;
    if (C == '\\') {
      if (Cur == End) {
        Diags.emitError(SMLoc::getFromPointer(Start),
                        "unterminated string literal");
        return makeToken(IRToken::Kind::Error, Start);
      }
      char E = *Cur++;
      switch (E) {
      case 'n':
        Body += '\n';
        break;
      case 't':
        Body += '\t';
        break;
      case '"':
        Body += '"';
        break;
      case '\\':
        Body += '\\';
        break;
      default:
        Diags.emitError(SMLoc::getFromPointer(Cur - 2),
                        "invalid escape sequence");
        return makeToken(IRToken::Kind::Error, Start);
      }
      continue;
    }
    Body += C;
  }
  IRToken T;
  T.K = IRToken::Kind::String;
  T.Spelling = std::move(Body);
  T.Loc = SMLoc::getFromPointer(Start);
  return T;
}

IRToken IRLexer::lexPrefixedIdent(const char *Start, IRToken::Kind K,
                                  bool AllowHashSuffix) {
  const char *Body = Cur;
  while (Cur != End && isIdentifierChar(*Cur))
    ++Cur;
  if (Cur == Body) {
    Diags.emitError(SMLoc::getFromPointer(Start),
                    "expected identifier after sigil");
    return makeToken(IRToken::Kind::Error, Start);
  }
  if (AllowHashSuffix && Cur != End && *Cur == '#') {
    ++Cur;
    while (Cur != End && *Cur >= '0' && *Cur <= '9')
      ++Cur;
  }
  IRToken T;
  T.K = K;
  T.Spelling.assign(Body, Cur - Body);
  T.Loc = SMLoc::getFromPointer(Start);
  return T;
}
