//===- Block.h - Basic blocks ------------------------------------*- C++ -*-===//
///
/// \file
/// Basic blocks: a list of operations ending in a terminator, with block
/// arguments standing in for phi nodes (Section 2). Like Operation, a
/// Block is a *single* sized allocation on the owning IRContext's arena:
/// the block header and its inline BlockArgumentImpl array share one
/// block (ir/OpArena.h), so region-heavy IR pays no per-block or
/// per-argument malloc. Blocks are created detached via Block::create and
/// inserted into regions; destruction goes through erase()/destroy(),
/// never `delete`. See docs/memory-layout.md.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_BLOCK_H
#define IRDL_IR_BLOCK_H

#include "ir/Operation.h"

namespace irdl {

class IRContext;
class Region;

/// A borrowed view of a list of types (mirrors mlir::TypeRange for the
/// APIs that take argument/result type lists).
using TypeRange = std::span<const Type>;

/// A view over a block's argument storage yielding Values. Cheap to
/// copy; invalidated by addArgument/eraseArgument on the block.
class ArgumentRange {
public:
  ArgumentRange() = default;
  ArgumentRange(detail::BlockArgumentImpl *Base, unsigned Count)
      : Base(Base), Count(Count) {}

  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Value;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    explicit iterator(detail::BlockArgumentImpl *P) : P(P) {}
    Value operator*() const { return Value(P); }
    iterator &operator++() {
      ++P;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++P;
      return Tmp;
    }
    bool operator==(const iterator &RHS) const = default;

  private:
    detail::BlockArgumentImpl *P = nullptr;
  };

  iterator begin() const { return iterator(Base); }
  iterator end() const { return iterator(Base + Count); }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  Value operator[](unsigned Index) const {
    assert(Index < Count && "argument index out of range");
    return Value(Base + Index);
  }
  Value front() const { return (*this)[0]; }
  Value back() const { return (*this)[Count - 1]; }

  /// Materializes the range (for callers that need to outlive an
  /// argument-list mutation).
  std::vector<Value> vec() const { return {begin(), end()}; }

private:
  detail::BlockArgumentImpl *Base = nullptr;
  unsigned Count = 0;
};

/// A view over a block's argument storage yielding the argument Types.
class ArgumentTypeRange {
public:
  ArgumentTypeRange() = default;
  ArgumentTypeRange(const detail::BlockArgumentImpl *Base, unsigned Count)
      : Base(Base), Count(Count) {}

  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Type;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    explicit iterator(const detail::BlockArgumentImpl *P) : P(P) {}
    Type operator*() const { return P->getType(); }
    iterator &operator++() {
      ++P;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++P;
      return Tmp;
    }
    bool operator==(const iterator &RHS) const = default;

  private:
    const detail::BlockArgumentImpl *P = nullptr;
  };

  iterator begin() const { return iterator(Base); }
  iterator end() const { return iterator(Base + Count); }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  Type operator[](unsigned Index) const {
    assert(Index < Count && "argument index out of range");
    return Base[Index].getType();
  }

  std::vector<Type> vec() const { return {begin(), end()}; }

private:
  const detail::BlockArgumentImpl *Base = nullptr;
  unsigned Count = 0;
};

/// A basic block.
///
/// Memory layout (one arena allocation):
///
///   [ Block header | BlockArgumentImpl x ArgCapacity ]
///
/// The argument tail is sized to the creation-time argument count;
/// addArgument past that capacity moves the argument array alone to an
/// out-of-line arena block (use lists are retargeted), mirroring the
/// operand-growth scheme on Operation.
class Block final : public IntrusiveListNode<Block> {
public:
  /// Creates a detached block with one argument per type in \p ArgTypes,
  /// in one allocation from the context's arena. Destruction must go
  /// through erase()/destroy(), never `delete`.
  static Block *create(IRContext &Ctx, TypeRange ArgTypes = {});

  /// Destroys a detached block: erases its operations, destroys its
  /// arguments, and returns the storage to the context arena.
  void destroy();

  /// Unlinks this block from its region (if any) and destroys it.
  void erase();

  /// The context whose arena owns this block's storage.
  IRContext *getContext() const { return Ctx; }

  Region *getParent() const { return ParentRegion; }
  void setParentInternal(Region *R) { ParentRegion = R; }

  /// Returns the operation owning the parent region, or null.
  Operation *getParentOp() const;

  //===------------------------------------------------------------------===//
  // Arguments
  //===------------------------------------------------------------------===//

  unsigned getNumArguments() const { return NumArgsVal; }
  Value getArgument(unsigned Index) const {
    assert(Index < NumArgsVal && "argument index out of range");
    return Value(ArgStorage + Index);
  }
  ArgumentRange getArguments() const {
    return ArgumentRange(ArgStorage, NumArgsVal);
  }
  ArgumentTypeRange getArgumentTypes() const {
    return ArgumentTypeRange(ArgStorage, NumArgsVal);
  }

  /// Appends a new block argument of type \p Ty.
  Value addArgument(Type Ty);

  /// Removes the argument at \p Index, which must be unused. Surviving
  /// arguments are re-indexed (their storage moves down one slot; use
  /// lists are retargeted, so borrowed ArgumentRanges are invalidated).
  void eraseArgument(unsigned Index);

  //===------------------------------------------------------------------===//
  // Operations
  //===------------------------------------------------------------------===//

  using iterator = IntrusiveList<Operation>::iterator;

  iterator begin() { return Ops.begin(); }
  iterator end() { return Ops.end(); }
  bool empty() const { return Ops.empty(); }
  size_t getNumOps() const { return Ops.size(); }
  Operation &front() { return Ops.front(); }
  Operation &back() { return Ops.back(); }

  /// Inserts \p Op (which must be detached) before \p Pos.
  iterator insert(iterator Pos, Operation *Op);
  void push_back(Operation *Op);
  void push_front(Operation *Op);

  /// Unlinks \p Op without deleting it.
  void remove(Operation *Op);

  /// Returns the terminator, or null when the block is empty or its last
  /// op is not a terminator.
  Operation *getTerminator();

  /// Returns the blocks this block's terminator may branch to (a view
  /// over the terminator's successor storage; empty when there is no
  /// terminator).
  SuccessorRange getSuccessors();

  /// Splits this block before \p Pos: every op from \p Pos onward moves to
  /// a new block inserted after this one in the parent region. Returns the
  /// new block.
  Block *splitBefore(iterator Pos);

  /// Unlinks and deletes every op, releasing operand uses first (tolerates
  /// forward intra-block references during teardown).
  void clear();

private:
  friend struct IntrusiveListTraits<Block>;

  /// Byte offsets of the trailing argument array within one allocation.
  struct Layout {
    size_t ArgsOffset;
    size_t Bytes;
  };
  static Layout computeLayout(unsigned ArgCapacity);

  Block(IRContext &Ctx, TypeRange ArgTypes, const Layout &L);
  ~Block();

  /// Moves the argument array to a fresh arena block of \p NewCapacity
  /// slots. BlockArgumentImpls are value definitions — every use is
  /// retargeted at the new storage (use order within an argument's list
  /// may change).
  void growArgumentStorage(unsigned NewCapacity);

  /// True when the argument array still lives inside the block's own
  /// allocation (vs. a separate arena block after growth).
  bool argsAreInline() const;

  IRContext *Ctx = nullptr;
  Region *ParentRegion = nullptr;
  /// The trailing argument array; points into this block's allocation at
  /// creation and may later point at a separate arena block if the
  /// argument list outgrows its inline capacity.
  detail::BlockArgumentImpl *ArgStorage = nullptr;
  uint32_t NumArgsVal = 0;
  uint32_t ArgCapacity = 0;
  /// Size of the block's own allocation, for returning it to the arena.
  uint32_t AllocBytes = 0;
  IntrusiveList<Operation> Ops;
};

/// Blocks are arena-allocated: intrusive lists (Region bodies) must
/// destroy them via destroy(), not `delete`.
template <> struct IntrusiveListTraits<Block> {
  static void deleteNode(Block *B);
};

} // namespace irdl

#endif // IRDL_IR_BLOCK_H
