//===- Block.h - Basic blocks ------------------------------------*- C++ -*-===//
///
/// \file
/// Basic blocks: a list of operations ending in a terminator, with block
/// arguments standing in for phi nodes (Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_BLOCK_H
#define IRDL_IR_BLOCK_H

#include "ir/Operation.h"

namespace irdl {

class Region;

class Block : public IntrusiveListNode<Block> {
public:
  Block() = default;
  ~Block();

  Region *getParent() const { return ParentRegion; }
  void setParentInternal(Region *R) { ParentRegion = R; }

  /// Returns the operation owning the parent region, or null.
  Operation *getParentOp() const;

  //===------------------------------------------------------------------===//
  // Arguments
  //===------------------------------------------------------------------===//

  unsigned getNumArguments() const { return Args.size(); }
  Value getArgument(unsigned Index) const {
    assert(Index < Args.size() && "argument index out of range");
    return Value(Args[Index].get());
  }
  std::vector<Value> getArguments() const;
  std::vector<Type> getArgumentTypes() const;

  /// Appends a new block argument of type \p Ty.
  Value addArgument(Type Ty);

  /// Removes the argument at \p Index, which must be unused.
  void eraseArgument(unsigned Index);

  //===------------------------------------------------------------------===//
  // Operations
  //===------------------------------------------------------------------===//

  using iterator = IntrusiveList<Operation>::iterator;

  iterator begin() { return Ops.begin(); }
  iterator end() { return Ops.end(); }
  bool empty() const { return Ops.empty(); }
  size_t getNumOps() const { return Ops.size(); }
  Operation &front() { return Ops.front(); }
  Operation &back() { return Ops.back(); }

  /// Inserts \p Op (which must be detached) before \p Pos.
  iterator insert(iterator Pos, Operation *Op);
  void push_back(Operation *Op);
  void push_front(Operation *Op);

  /// Unlinks \p Op without deleting it.
  void remove(Operation *Op);

  /// Returns the terminator, or null when the block is empty or its last
  /// op is not a terminator.
  Operation *getTerminator();

  /// Returns the blocks this block's terminator may branch to.
  std::vector<Block *> getSuccessors();

  /// Splits this block before \p Pos: every op from \p Pos onward moves to
  /// a new block inserted after this one in the parent region. Returns the
  /// new block.
  Block *splitBefore(iterator Pos);

  /// Unlinks and deletes every op, releasing operand uses first (tolerates
  /// forward intra-block references during teardown).
  void clear();

private:
  Region *ParentRegion = nullptr;
  std::vector<std::unique_ptr<detail::BlockArgumentImpl>> Args;
  IntrusiveList<Operation> Ops;
};

} // namespace irdl

#endif // IRDL_IR_BLOCK_H
