//===- Operation.cpp ------------------------------------------------===//

#include "ir/Operation.h"

#include "ir/Block.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <algorithm>

using namespace irdl;

//===----------------------------------------------------------------------===//
// NamedAttrList
//===----------------------------------------------------------------------===//

Attribute NamedAttrList::get(std::string_view Name) const {
  for (const NamedAttribute &NA : Entries)
    if (NA.Name == Name)
      return NA.Attr;
  return Attribute();
}

void NamedAttrList::set(std::string_view Name, Attribute Attr) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const NamedAttribute &NA, std::string_view N) { return NA.Name < N; });
  if (It != Entries.end() && It->Name == Name) {
    It->Attr = Attr;
    return;
  }
  Entries.insert(It, NamedAttribute{std::string(Name), Attr});
}

bool NamedAttrList::erase(std::string_view Name) {
  for (auto It = Entries.begin(), E = Entries.end(); It != E; ++It) {
    if (It->Name == Name) {
      Entries.erase(It);
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

OperationState::OperationState(OperationName Name)
    : Name(std::move(Name)) {}
OperationState::OperationState(OperationName Name, SMLoc Loc)
    : Loc(Loc), Name(std::move(Name)) {}
OperationState::~OperationState() = default;

Region *OperationState::addRegion() {
  Regions.push_back(std::make_unique<Region>(/*Parent=*/nullptr));
  return Regions.back().get();
}

Operation::Operation(OperationState &State)
    : Name(State.Name), Loc(State.Loc), Attrs(State.Attributes),
      Successors(State.Successors) {
  Operands.reserve(State.Operands.size());
  for (Value V : State.Operands)
    Operands.push_back(std::make_unique<OpOperand>(this, V));

  Results.reserve(State.ResultTypes.size());
  for (unsigned I = 0, E = State.ResultTypes.size(); I != E; ++I)
    Results.push_back(std::make_unique<detail::OpResultImpl>(
        State.ResultTypes[I], this, I));

  Regions.reserve(State.Regions.size());
  for (auto &Parsed : State.Regions) {
    Regions.push_back(std::make_unique<Region>(this));
    Regions.back()->takeBody(*Parsed);
  }
}

Operation *Operation::create(OperationState &State) {
  return new Operation(State);
}

Operation::~Operation() {
  assert(use_empty() && "destroying an operation whose results are in use");
}

std::vector<Value> Operation::getOperands() const {
  std::vector<Value> Result;
  Result.reserve(Operands.size());
  for (const auto &Op : Operands)
    Result.push_back(Op->get());
  return Result;
}

void Operation::setOperands(const std::vector<Value> &NewOperands) {
  // Reuse existing slots where possible; then shrink or grow.
  size_t Common = std::min(Operands.size(), NewOperands.size());
  for (size_t I = 0; I != Common; ++I)
    Operands[I]->set(NewOperands[I]);
  if (NewOperands.size() < Operands.size()) {
    Operands.resize(NewOperands.size());
    return;
  }
  for (size_t I = Common, E = NewOperands.size(); I != E; ++I)
    Operands.push_back(std::make_unique<OpOperand>(this, NewOperands[I]));
}

void Operation::eraseOperand(unsigned Index) {
  assert(Index < Operands.size() && "operand index out of range");
  Operands.erase(Operands.begin() + Index);
}

void Operation::addOperand(Value V) {
  Operands.push_back(std::make_unique<OpOperand>(this, V));
}

std::vector<Value> Operation::getResults() const {
  std::vector<Value> Result;
  Result.reserve(Results.size());
  for (const auto &Res : Results)
    Result.push_back(Value(Res.get()));
  return Result;
}

std::vector<Type> Operation::getResultTypes() const {
  std::vector<Type> Result;
  Result.reserve(Results.size());
  for (const auto &Res : Results)
    Result.push_back(Res->getType());
  return Result;
}

bool Operation::use_empty() const {
  for (const auto &Res : Results)
    if (Res->FirstUse)
      return false;
  return true;
}

void Operation::replaceAllUsesWith(const std::vector<Value> &NewValues) {
  assert(NewValues.size() == Results.size() &&
         "replacement arity must match result arity");
  for (unsigned I = 0, E = Results.size(); I != E; ++I)
    Value(Results[I].get()).replaceAllUsesWith(NewValues[I]);
}

Operation *Operation::getParentOp() const {
  if (!ParentBlock)
    return nullptr;
  if (Region *R = ParentBlock->getParent())
    return R->getParentOp();
  return nullptr;
}

void Operation::removeFromBlock() {
  assert(ParentBlock && "operation is not in a block");
  ParentBlock->remove(this);
}

void Operation::erase() {
  assert(use_empty() && "erasing an operation whose results are in use");
  if (ParentBlock)
    removeFromBlock();
  delete this;
}

void Operation::walk(const std::function<void(Operation *)> &Callback) {
  Callback(this);
  for (auto &R : Regions)
    for (Block &B : *R)
      for (Operation &Op : B)
        Op.walk(Callback);
}

bool Operation::isIsolatedFromAbove() const {
  bool Isolated = true;
  const_cast<Operation *>(this)->walk([&](Operation *Nested) {
    // The op's own operands come from the enclosing scope by definition;
    // isolation is about what the *body* reaches.
    if (!Isolated || Nested == this)
      return;
    for (unsigned I = 0, E = Nested->getNumOperands(); I != E; ++I) {
      Value V = Nested->getOperand(I);
      Block *DefBlock = V ? V.getParentBlock() : nullptr;
      if (!DefBlock) {
        Isolated = false; // detached or null value: be conservative
        return;
      }
      bool Inside = false;
      for (Operation *P = DefBlock->getParentOp(); P; P = P->getParentOp())
        if (P == this) {
          Inside = true;
          break;
        }
      if (!Inside) {
        Isolated = false;
        return;
      }
    }
  });
  return Isolated;
}

std::string Operation::str() const {
  return printOpToString(const_cast<Operation *>(this));
}
