//===- Operation.cpp ------------------------------------------------===//

#include "ir/Operation.h"

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/OpArena.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <algorithm>

using namespace irdl;

//===----------------------------------------------------------------------===//
// NamedAttrList
//===----------------------------------------------------------------------===//

Attribute NamedAttrList::get(std::string_view Name) const {
  for (const NamedAttribute &NA : Entries)
    if (NA.Name == Name)
      return NA.Attr;
  return Attribute();
}

void NamedAttrList::set(std::string_view Name, Attribute Attr) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Name,
      [](const NamedAttribute &NA, std::string_view N) { return NA.Name < N; });
  if (It != Entries.end() && It->Name == Name) {
    It->Attr = Attr;
    return;
  }
  Entries.insert(It, NamedAttribute{std::string(Name), Attr});
}

bool NamedAttrList::erase(std::string_view Name) {
  for (auto It = Entries.begin(), E = Entries.end(); It != E; ++It) {
    if (It->Name == Name) {
      Entries.erase(It);
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// OperationState
//===----------------------------------------------------------------------===//

OperationState::OperationState(IRContext &Ctx, OperationName Name)
    : Ctx(&Ctx), Name(std::move(Name)) {}
OperationState::OperationState(IRContext &Ctx, OperationName Name, SMLoc Loc)
    : Ctx(&Ctx), Loc(Loc), Name(std::move(Name)) {}
OperationState::~OperationState() = default;

Region *OperationState::addRegion() {
  assert(Ctx && "operation state has no context");
  Regions.push_back(std::make_unique<Region>(*Ctx));
  return Regions.back().get();
}

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

Operation::Layout Operation::computeLayout(unsigned NumResults,
                                           unsigned OperandCapacity,
                                           unsigned NumSuccessors,
                                           unsigned NumRegions) {
  auto AlignTo = [](size_t Offset, size_t Align) {
    return (Offset + Align - 1) & ~(Align - 1);
  };
  Layout L;
  size_t Offset = sizeof(Operation);
  Offset = AlignTo(Offset, alignof(detail::OpResultImpl));
  L.ResultsOffset = Offset;
  Offset += NumResults * sizeof(detail::OpResultImpl);
  Offset = AlignTo(Offset, alignof(OpOperand));
  L.OperandsOffset = Offset;
  Offset += OperandCapacity * sizeof(OpOperand);
  Offset = AlignTo(Offset, alignof(Block *));
  L.SuccessorsOffset = Offset;
  Offset += NumSuccessors * sizeof(Block *);
  Offset = AlignTo(Offset, alignof(Region));
  L.RegionsOffset = Offset;
  Offset += NumRegions * sizeof(Region);
  L.Bytes = Offset;
  return L;
}

Operation *Operation::create(OperationState &State) {
  assert(State.Ctx && "operation state has no context");
  Layout L = computeLayout(State.ResultTypes.size(), State.Operands.size(),
                           State.Successors.size(), State.Regions.size());
  void *Mem = State.Ctx->getOpArena().allocate(L.Bytes, alignof(Operation));
  return new (Mem) Operation(State, L);
}

Operation::Operation(OperationState &State, const Layout &L)
    : Name(State.Name), Loc(State.Loc), Attrs(State.Attributes),
      Ctx(State.Ctx) {
  auto *Base = reinterpret_cast<std::byte *>(this);
  ResultStorage =
      reinterpret_cast<detail::OpResultImpl *>(Base + L.ResultsOffset);
  OperandStorage = reinterpret_cast<OpOperand *>(Base + L.OperandsOffset);
  SuccessorStorage = reinterpret_cast<Block **>(Base + L.SuccessorsOffset);
  RegionStorage = reinterpret_cast<Region *>(Base + L.RegionsOffset);
  NumResultsVal = static_cast<uint32_t>(State.ResultTypes.size());
  NumOperandsVal = OperandCapacity =
      static_cast<uint32_t>(State.Operands.size());
  NumSuccessorsVal = static_cast<uint32_t>(State.Successors.size());
  NumRegionsVal = static_cast<uint32_t>(State.Regions.size());
  AllocBytes = static_cast<uint32_t>(L.Bytes);

  for (unsigned I = 0; I != NumResultsVal; ++I)
    new (ResultStorage + I)
        detail::OpResultImpl(State.ResultTypes[I], this, I);
  for (unsigned I = 0; I != NumOperandsVal; ++I)
    new (OperandStorage + I) OpOperand(this, State.Operands[I]);
  for (unsigned I = 0; I != NumSuccessorsVal; ++I)
    SuccessorStorage[I] = State.Successors[I];
  for (unsigned I = 0; I != NumRegionsVal; ++I) {
    new (RegionStorage + I) Region(this);
    RegionStorage[I].takeBody(*State.Regions[I]);
  }
}

Operation::~Operation() {
  assert(use_empty() && "destroying an operation whose results are in use");
  // Regions first (nested ops may still hold uses of values above them;
  // Region's destructor drops those references), then operands (each
  // unlinks from its value's use list), then results.
  for (unsigned I = NumRegionsVal; I != 0; --I)
    RegionStorage[I - 1].~Region();
  for (unsigned I = NumOperandsVal; I != 0; --I)
    OperandStorage[I - 1].~OpOperand();
  if (!operandsAreInline())
    Ctx->getOpArena().deallocate(OperandStorage,
                                 OperandCapacity * sizeof(OpOperand));
  for (unsigned I = NumResultsVal; I != 0; --I)
    ResultStorage[I - 1].~OpResultImpl();
}

void Operation::destroy() {
  OpArena &A = Ctx->getOpArena();
  uint32_t Bytes = AllocBytes;
  this->~Operation();
  A.deallocate(this, Bytes);
}

void irdl::IntrusiveListTraits<Operation>::deleteNode(Operation *Op) {
  Op->destroy();
}

bool Operation::operandsAreInline() const {
  if (OperandCapacity == 0)
    return true;
  auto P = reinterpret_cast<uintptr_t>(OperandStorage);
  auto B = reinterpret_cast<uintptr_t>(this);
  return P >= B && P < B + AllocBytes;
}

void Operation::growOperandStorage(unsigned NewCapacity) {
  assert(NewCapacity > OperandCapacity && "not growing");
  OpArena &A = Ctx->getOpArena();
  auto *NewStorage = static_cast<OpOperand *>(
      A.allocate(NewCapacity * sizeof(OpOperand), alignof(OpOperand)));
  // OpOperands are links in their value's use list and cannot be moved
  // bytewise: rebuild each link against the same value, then retire the
  // old one. The relative order of uses within a value's list may change.
  for (unsigned I = 0; I != NumOperandsVal; ++I) {
    new (NewStorage + I) OpOperand(this, OperandStorage[I].get());
    OperandStorage[I].~OpOperand();
  }
  if (!operandsAreInline())
    A.deallocate(OperandStorage, OperandCapacity * sizeof(OpOperand));
  OperandStorage = NewStorage;
  OperandCapacity = NewCapacity;
}

void Operation::setOperands(std::span<const Value> NewOperands) {
  // Reuse existing slots where possible; then shrink or grow.
  size_t Common = std::min<size_t>(NumOperandsVal, NewOperands.size());
  for (size_t I = 0; I != Common; ++I)
    OperandStorage[I].set(NewOperands[I]);
  if (NewOperands.size() < NumOperandsVal) {
    for (unsigned I = NumOperandsVal; I != NewOperands.size(); --I)
      OperandStorage[I - 1].~OpOperand();
    NumOperandsVal = static_cast<uint32_t>(NewOperands.size());
    return;
  }
  for (size_t I = Common, E = NewOperands.size(); I != E; ++I)
    addOperand(NewOperands[I]);
}

void Operation::eraseOperand(unsigned Index) {
  assert(Index < NumOperandsVal && "operand index out of range");
  // Slots cannot move (their use-list links are address-based); shift the
  // values down instead and retire the last slot.
  for (unsigned I = Index; I + 1 < NumOperandsVal; ++I)
    OperandStorage[I].set(OperandStorage[I + 1].get());
  OperandStorage[NumOperandsVal - 1].~OpOperand();
  --NumOperandsVal;
}

void Operation::addOperand(Value V) {
  if (NumOperandsVal == OperandCapacity)
    growOperandStorage(std::max(4u, OperandCapacity * 2));
  new (OperandStorage + NumOperandsVal) OpOperand(this, V);
  ++NumOperandsVal;
}

bool Operation::use_empty() const {
  for (unsigned I = 0; I != NumResultsVal; ++I)
    if (ResultStorage[I].FirstUse)
      return false;
  return true;
}

void Operation::replaceAllUsesWith(std::span<const Value> NewValues) {
  assert(NewValues.size() == NumResultsVal &&
         "replacement arity must match result arity");
  for (unsigned I = 0; I != NumResultsVal; ++I)
    Value(ResultStorage + I).replaceAllUsesWith(NewValues[I]);
}

void Operation::replaceAllUsesWith(ResultRange NewValues) {
  assert(NewValues.size() == NumResultsVal &&
         "replacement arity must match result arity");
  for (unsigned I = 0; I != NumResultsVal; ++I)
    Value(ResultStorage + I).replaceAllUsesWith(NewValues[I]);
}

Operation *Operation::getParentOp() const {
  if (!ParentBlock)
    return nullptr;
  if (Region *R = ParentBlock->getParent())
    return R->getParentOp();
  return nullptr;
}

void Operation::removeFromBlock() {
  assert(ParentBlock && "operation is not in a block");
  ParentBlock->remove(this);
}

void Operation::erase() {
  assert(use_empty() && "erasing an operation whose results are in use");
  if (ParentBlock)
    removeFromBlock();
  destroy();
}

bool Operation::isIsolatedFromAbove() const {
  bool Isolated = true;
  const_cast<Operation *>(this)->walk([&](Operation *Nested) {
    // The op's own operands come from the enclosing scope by definition;
    // isolation is about what the *body* reaches.
    if (!Isolated || Nested == this)
      return;
    for (unsigned I = 0, E = Nested->getNumOperands(); I != E; ++I) {
      Value V = Nested->getOperand(I);
      Block *DefBlock = V ? V.getParentBlock() : nullptr;
      if (!DefBlock) {
        Isolated = false; // detached or null value: be conservative
        return;
      }
      bool Inside = false;
      for (Operation *P = DefBlock->getParentOp(); P; P = P->getParentOp())
        if (P == this) {
          Inside = true;
          break;
        }
      if (!Inside) {
        Isolated = false;
        return;
      }
    }
  });
  return Isolated;
}

std::string Operation::str() const {
  return printOpToString(const_cast<Operation *>(this));
}
