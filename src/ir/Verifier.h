//===- Verifier.h - Structural IR verification -------------------*- C++ -*-===//
///
/// \file
/// Structural SSA verification: registration checks, terminator placement,
/// successor sanity, and SSA dominance (including across nested regions),
/// followed by each operation's registered verifier — the one compiled
/// from IRDL constraints for dynamic dialects.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_IR_VERIFIER_H
#define IRDL_IR_VERIFIER_H

#include "ir/Operation.h"

#include <unordered_map>
#include <vector>

namespace irdl {

class Block;
class Region;

/// Dominator-tree information computed per region on demand
/// (Cooper–Harvey–Kennedy iterative algorithm over a reverse post-order).
class DominanceInfo {
public:
  /// Returns true if \p A dominates \p B (reflexively) within their common
  /// region. Both blocks must be in the same region.
  bool dominates(Block *A, Block *B);

  /// Returns true if the value \p V is usable by operation \p User under
  /// SSA dominance rules, hoisting the user out of nested regions as
  /// needed.
  bool properlyDominates(Value V, Operation *User);

private:
  void computeRegion(Region *R);

  /// Immediate dominator of each processed block (entry maps to itself).
  std::unordered_map<Block *, Block *> IDom;
  std::unordered_map<Region *, bool> Processed;
};

/// Verifies \p Op and everything nested within it. Reports problems to
/// \p Diags and returns failure if any were found.
LogicalResult verifyOp(Operation *Op, DiagnosticEngine &Diags);

/// Verifies a batch of independent top-level operations (each recursively),
/// fanning out over the thread pool when multithreading is enabled. The
/// streaming entry point: the server calls this once per arriving VERIFY
/// chunk with that chunk's function-like ops, so verification overlaps
/// with the client still sending later frames. Diagnostics are replayed
/// into \p Diags in batch order and verification stops after the first
/// failed op, matching the fail-fast sequential stream byte for byte.
LogicalResult verifyOpsIncremental(const std::vector<Operation *> &Ops,
                                   DiagnosticEngine &Diags);

} // namespace irdl

#endif // IRDL_IR_VERIFIER_H
