//===- EpochRegistry.h - Epoch-versioned dialect registry --------*- C++ -*-===//
///
/// \file
/// Hot dialect reload for the verification server. IRContext registration
/// is a setup-phase operation (Context.h): lookups and uniquing are
/// thread-safe, mutation concurrent with verification is not. Instead of
/// locking the context, the registry makes every generation immutable: an
/// Epoch is a fully built IRContext (plus the SourceMgr its diagnostics
/// render from) constructed from the complete ordered list of loaded
/// dialect sources. LOAD_DIALECT/RELOAD_DIALECT build a fresh epoch off
/// to the side and atomically publish it; requests pin the current epoch
/// with a shared_ptr for their whole lifetime, so in-flight verification
/// keeps the context (and the compiled constraint programs inside it)
/// alive and untouched while newer requests already see the new spec. A
/// build failure leaves the previous epoch in place.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SERVER_EPOCHREGISTRY_H
#define IRDL_SERVER_EPOCHREGISTRY_H

#include "ir/Context.h"
#include "irdl/IRDL.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace irdl {
namespace serve {

/// One immutable generation of the dialect registry.
struct Epoch {
  /// Monotonic generation number (1 = the empty boot epoch).
  uint64_t Number = 1;
  /// Declared before SrcMgr/Modules so it is destroyed last: registered
  /// verifier closures reference the spec objects owned by Modules.
  std::unique_ptr<IRContext> Ctx;
  /// Owns the textual dialect buffers; request SourceMgrs do not alias it
  /// (dialect-load diagnostics happen at epoch build time only).
  std::unique_ptr<SourceMgr> SrcMgr;
  std::vector<std::unique_ptr<IRDLModule>> Modules;
};

class EpochRegistry {
public:
  /// Starts at epoch 1: an empty context with only builtins registered.
  EpochRegistry();

  /// The current epoch. Callers keep the returned shared_ptr for the full
  /// lifetime of a request ("pinning"); it stays valid across any number
  /// of concurrent reloads.
  std::shared_ptr<const Epoch> current() const;

  uint64_t currentEpochNumber() const;

  /// Registers the dialects of \p Buffer (textual `.irdl` or spec-bearing
  /// `.irbc`, sniffed by magic) under the client-supplied \p Name and
  /// publishes a new epoch. Fails — with rendered diagnostics in
  /// \p DiagText and the previous epoch left current — if the buffer does
  /// not load or redefines a dialect name that is already loaded (use
  /// reloadDialect for that).
  LogicalResult loadDialect(std::string Name, std::string Buffer,
                            std::string &DiagText);

  /// Like loadDialect, but first drops every previously loaded source
  /// that defines any dialect name \p Buffer defines. The replaced
  /// definitions exist only in the new epoch; requests pinned to older
  /// epochs still verify against the old spec.
  ///
  /// Reloads are deduplicated by content hash (bytecode/SpecCache.h): a
  /// buffer whose hash (and bytes) match an already loaded source is a
  /// no-op — the current epoch stays published, no rebuild runs, and the
  /// `irdl_serve_spec_cache_hits` counter ticks. Rebuilds tick
  /// `irdl_serve_spec_cache_misses`.
  LogicalResult reloadDialect(std::string Name, std::string Buffer,
                              std::string &DiagText);

private:
  struct Source {
    std::string Name;
    std::string Buffer;
    /// Dialect names the buffer defines, discovered at load time.
    std::vector<std::string> DialectNames;
    /// Content hash of Buffer (hashSpecBuffer), the reload dedup key.
    uint64_t Hash = 0;
  };

  /// Loads \p Buffer into \p Target, appending the loaded module(s) to
  /// \p Epoch.Modules when \p Keep. Fills \p DialectNames.
  static LogicalResult loadInto(Epoch &E, const Source &S,
                                std::vector<std::string> &DialectNames,
                                std::string &DiagText);

  /// Builds a fresh epoch from \p Sources; on success publishes it.
  LogicalResult rebuild(std::vector<Source> Sources, std::string &DiagText);

  /// Guards Sources and the Current swap. Epoch builds run under the lock
  /// — dialect loads are rare control-plane operations and serializing
  /// them keeps "last reload wins" well-defined.
  mutable std::mutex Mutex;
  std::vector<Source> Sources;
  std::shared_ptr<const Epoch> Current;
  uint64_t NextNumber = 2;
};

} // namespace serve
} // namespace irdl

#endif // IRDL_SERVER_EPOCHREGISTRY_H
