//===- Protocol.h - irdl_serve wire protocol ---------------------*- C++ -*-===//
///
/// \file
/// The framed request/response protocol spoken over the verification
/// server's unix-domain socket. Requests are `[1-byte type][4-byte LE
/// payload length][payload]`; responses are `[1-byte status][4-byte LE
/// payload length][payload]`. The protocol is strictly lockstep: every
/// request frame gets exactly one response frame before the next request
/// is read. See docs/serving.md for the frame catalogue, payload layouts,
/// and a worked session.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SERVER_PROTOCOL_H
#define IRDL_SERVER_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace irdl {
namespace serve {

enum class FrameType : uint8_t {
  /// One-shot verification of a whole module (named payload, text or
  /// module-only `.irbc`). Response diagnostics are byte-identical to an
  /// `irdl_opt` run over the same input.
  Verify = 1,
  /// Opens a verification stream; chunks are verified as they arrive.
  VerifyBegin = 2,
  /// One stream chunk (text or module-only `.irbc`), a batch of
  /// function-like top-level ops.
  VerifyChunk = 3,
  /// Closes the stream; the response carries the combined verdict.
  VerifyEnd = 4,
  /// Registers the dialects of a named `.irdl`/spec-`.irbc` buffer into a
  /// new epoch.
  LoadDialect = 5,
  /// Replaces previously loaded dialects of the same names in a new
  /// epoch; in-flight requests finish against their pinned epoch.
  ReloadDialect = 6,
  /// Prometheus text exposition of the process metrics registry.
  Metrics = 7,
  /// Graceful server stop (acknowledged before the listener closes).
  Shutdown = 8,
  /// Liveness probe.
  Ping = 9,
};

enum class FrameStatus : uint8_t {
  Ok = 0,
  /// The request was understood but the work failed (verification error,
  /// dialect load error); the payload carries rendered diagnostics.
  Fail = 1,
  /// The frame itself was malformed (unknown type, oversized payload,
  /// bad named-payload header, stream misuse); the connection is closed
  /// after this response.
  ProtocolError = 2,
};

/// Hard per-frame payload ceiling. A length prefix beyond this is treated
/// as a protocol error rather than an allocation request.
inline constexpr size_t MaxFramePayload = 256u << 20; // 256 MiB

/// Returns a human-readable frame-type name ("VERIFY", "LOAD_DIALECT",
/// ...), used for metric labels and protocol errors.
std::string_view frameTypeName(FrameType T);
bool isKnownFrameType(uint8_t T);

struct RequestFrame {
  FrameType Type;
  std::string Payload;
};

struct ResponseFrame {
  FrameStatus Status;
  std::string Payload;
};

/// Outcome of reading one frame off a socket.
enum class ReadOutcome {
  Ok,
  /// Orderly EOF before the first header byte — the peer is done.
  Disconnect,
  /// Truncated header/payload, I/O error, unknown type, or an oversized
  /// length prefix; \p Error describes it.
  Error,
};

bool writeRequestFrame(int Fd, FrameType Type, std::string_view Payload);
ReadOutcome readRequestFrame(int Fd, RequestFrame &Frame,
                             std::string &Error);

bool writeResponseFrame(int Fd, FrameStatus Status,
                        std::string_view Payload);
ReadOutcome readResponseFrame(int Fd, ResponseFrame &Frame,
                              std::string &Error);

/// Verify/VerifyBegin/VerifyChunk/LoadDialect/ReloadDialect payloads carry
/// a buffer name ahead of the content — `[2-byte LE name length][name]
/// [content]` — so served diagnostics render the same "file" name an
/// `irdl_opt` invocation would.
std::string encodeNamedPayload(std::string_view Name,
                               std::string_view Content);

/// Splits a named payload; returns false if the header is malformed.
bool decodeNamedPayload(std::string_view Payload, std::string_view &Name,
                        std::string_view &Content);

} // namespace serve
} // namespace irdl

#endif // IRDL_SERVER_PROTOCOL_H
