//===- Client.h - irdl_serve client helper -----------------------*- C++ -*-===//
///
/// \file
/// A small synchronous client for the serve::Protocol, used by the tests,
/// the perf_serve load generator, and as a reference implementation of
/// the framing for external clients (tools/check_serve.py mirrors it in
/// Python). One ServeClient wraps one connection; calls are lockstep
/// (send one request frame, read one response frame) and not thread-safe
/// — use one client per thread.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SERVER_CLIENT_H
#define IRDL_SERVER_CLIENT_H

#include "server/Protocol.h"
#include "support/LogicalResult.h"
#include "support/Socket.h"

namespace irdl {
namespace serve {

class ServeClient {
public:
  ServeClient() = default;

  /// Connects to the server socket at \p Path.
  LogicalResult connect(const std::string &Path, std::string &Error);

  bool isConnected() const { return Fd.isValid(); }
  void disconnect() { Fd.reset(); }

  /// One lockstep round trip: sends \p Type with \p Payload, reads the
  /// response into \p Response. Fails (with \p Error filled) on transport
  /// problems only — a Fail/ProtocolError *status* is a successful round
  /// trip; inspect Response.Status.
  LogicalResult call(FrameType Type, std::string_view Payload,
                     ResponseFrame &Response, std::string &Error);

  /// Named-payload conveniences (Name becomes the diagnostic buffer name).
  LogicalResult verify(std::string_view Name, std::string_view Content,
                       ResponseFrame &Response, std::string &Error) {
    return call(FrameType::Verify, encodeNamedPayload(Name, Content),
                Response, Error);
  }
  LogicalResult verifyBegin(std::string_view Name, ResponseFrame &Response,
                            std::string &Error) {
    return call(FrameType::VerifyBegin, encodeNamedPayload(Name, ""),
                Response, Error);
  }
  LogicalResult verifyChunk(std::string_view Content,
                            ResponseFrame &Response, std::string &Error) {
    return call(FrameType::VerifyChunk, Content, Response, Error);
  }
  LogicalResult verifyEnd(ResponseFrame &Response, std::string &Error) {
    return call(FrameType::VerifyEnd, "", Response, Error);
  }
  LogicalResult loadDialect(std::string_view Name, std::string_view Content,
                            ResponseFrame &Response, std::string &Error) {
    return call(FrameType::LoadDialect, encodeNamedPayload(Name, Content),
                Response, Error);
  }
  LogicalResult reloadDialect(std::string_view Name,
                              std::string_view Content,
                              ResponseFrame &Response, std::string &Error) {
    return call(FrameType::ReloadDialect, encodeNamedPayload(Name, Content),
                Response, Error);
  }
  LogicalResult metrics(ResponseFrame &Response, std::string &Error) {
    return call(FrameType::Metrics, "", Response, Error);
  }
  LogicalResult ping(ResponseFrame &Response, std::string &Error) {
    return call(FrameType::Ping, "", Response, Error);
  }
  LogicalResult shutdown(ResponseFrame &Response, std::string &Error) {
    return call(FrameType::Shutdown, "", Response, Error);
  }

private:
  FileDescriptor Fd;
};

} // namespace serve
} // namespace irdl

#endif // IRDL_SERVER_CLIENT_H
