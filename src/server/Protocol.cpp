//===- Protocol.cpp ---------------------------------------------------===//

#include "server/Protocol.h"

#include "support/Socket.h"

using namespace irdl;
using namespace irdl::serve;

std::string_view serve::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::Verify:
    return "VERIFY";
  case FrameType::VerifyBegin:
    return "VERIFY_BEGIN";
  case FrameType::VerifyChunk:
    return "VERIFY_CHUNK";
  case FrameType::VerifyEnd:
    return "VERIFY_END";
  case FrameType::LoadDialect:
    return "LOAD_DIALECT";
  case FrameType::ReloadDialect:
    return "RELOAD_DIALECT";
  case FrameType::Metrics:
    return "METRICS";
  case FrameType::Shutdown:
    return "SHUTDOWN";
  case FrameType::Ping:
    return "PING";
  }
  return "UNKNOWN";
}

bool serve::isKnownFrameType(uint8_t T) {
  return T >= static_cast<uint8_t>(FrameType::Verify) &&
         T <= static_cast<uint8_t>(FrameType::Ping);
}

namespace {

std::string encodeHeader(uint8_t Tag, size_t PayloadSize) {
  std::string Header(5, '\0');
  Header[0] = static_cast<char>(Tag);
  for (unsigned I = 0; I != 4; ++I)
    Header[1 + I] = static_cast<char>((PayloadSize >> (8 * I)) & 0xFF);
  return Header;
}

bool writeFrame(int Fd, uint8_t Tag, std::string_view Payload) {
  if (Payload.size() > MaxFramePayload)
    return false;
  return sendAll(Fd, encodeHeader(Tag, Payload.size())) &&
         sendAll(Fd, Payload);
}

/// Reads `[1-byte tag][4-byte LE length][payload]`; \p Tag is validated by
/// the caller (requests and responses accept different ranges).
ReadOutcome readFrame(int Fd, uint8_t &Tag, std::string &Payload,
                      std::string &Error) {
  std::string Header;
  bool CleanEof = false;
  if (!recvAll(Fd, 5, Header, &CleanEof)) {
    if (CleanEof)
      return ReadOutcome::Disconnect;
    Error = "truncated frame header (got " +
            std::to_string(Header.size()) + " of 5 bytes)";
    return ReadOutcome::Error;
  }
  Tag = static_cast<uint8_t>(Header[0]);
  uint64_t Len = 0;
  for (unsigned I = 0; I != 4; ++I)
    Len |= static_cast<uint64_t>(static_cast<uint8_t>(Header[1 + I]))
           << (8 * I);
  if (Len > MaxFramePayload) {
    Error = "frame payload length " + std::to_string(Len) +
            " exceeds the " + std::to_string(MaxFramePayload) +
            "-byte limit";
    return ReadOutcome::Error;
  }
  if (Len != 0 && !recvAll(Fd, Len, Payload, nullptr)) {
    Error = "truncated frame payload (got " +
            std::to_string(Payload.size()) + " of " + std::to_string(Len) +
            " bytes)";
    return ReadOutcome::Error;
  }
  if (Len == 0)
    Payload.clear();
  return ReadOutcome::Ok;
}

} // namespace

bool serve::writeRequestFrame(int Fd, FrameType Type,
                              std::string_view Payload) {
  return writeFrame(Fd, static_cast<uint8_t>(Type), Payload);
}

ReadOutcome serve::readRequestFrame(int Fd, RequestFrame &Frame,
                                    std::string &Error) {
  uint8_t Tag;
  ReadOutcome Outcome = readFrame(Fd, Tag, Frame.Payload, Error);
  if (Outcome != ReadOutcome::Ok)
    return Outcome;
  if (!isKnownFrameType(Tag)) {
    Error = "unknown request frame type " + std::to_string(Tag);
    return ReadOutcome::Error;
  }
  Frame.Type = static_cast<FrameType>(Tag);
  return ReadOutcome::Ok;
}

bool serve::writeResponseFrame(int Fd, FrameStatus Status,
                               std::string_view Payload) {
  return writeFrame(Fd, static_cast<uint8_t>(Status), Payload);
}

ReadOutcome serve::readResponseFrame(int Fd, ResponseFrame &Frame,
                                     std::string &Error) {
  uint8_t Tag;
  ReadOutcome Outcome = readFrame(Fd, Tag, Frame.Payload, Error);
  if (Outcome != ReadOutcome::Ok)
    return Outcome;
  if (Tag > static_cast<uint8_t>(FrameStatus::ProtocolError)) {
    Error = "unknown response status " + std::to_string(Tag);
    return ReadOutcome::Error;
  }
  Frame.Status = static_cast<FrameStatus>(Tag);
  return ReadOutcome::Ok;
}

std::string serve::encodeNamedPayload(std::string_view Name,
                                      std::string_view Content) {
  if (Name.size() > 0xFFFF)
    Name = Name.substr(0, 0xFFFF);
  std::string Payload;
  Payload.reserve(2 + Name.size() + Content.size());
  Payload.push_back(static_cast<char>(Name.size() & 0xFF));
  Payload.push_back(static_cast<char>((Name.size() >> 8) & 0xFF));
  Payload.append(Name);
  Payload.append(Content);
  return Payload;
}

bool serve::decodeNamedPayload(std::string_view Payload,
                               std::string_view &Name,
                               std::string_view &Content) {
  if (Payload.size() < 2)
    return false;
  size_t NameLen = static_cast<uint8_t>(Payload[0]) |
                   (static_cast<size_t>(static_cast<uint8_t>(Payload[1]))
                    << 8);
  if (Payload.size() < 2 + NameLen)
    return false;
  Name = Payload.substr(2, NameLen);
  Content = Payload.substr(2 + NameLen);
  return true;
}
