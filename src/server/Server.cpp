//===- Server.cpp -----------------------------------------------------===//

#include "server/Server.h"

#include "bytecode/Bytecode.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "support/Metrics.h"
#include "support/Timing.h"

#include <sys/socket.h>
#include <unistd.h>

using namespace irdl;
using namespace irdl::serve;

//===----------------------------------------------------------------------===//
// Server metrics
//===----------------------------------------------------------------------===//

namespace {

/// Server-side request accounting. Recorded unconditionally (not gated on
/// metricsEnabled()): the METRICS endpoint must report served counts even
/// when the host process did not opt into library instrumentation, and
/// the cost is a handful of atomics per request.
void recordRequest(FrameType Type, FrameStatus Status, uint64_t DurationNs) {
  std::string TypeName(frameTypeName(Type));
  std::string_view StatusName = Status == FrameStatus::Ok     ? "ok"
                                : Status == FrameStatus::Fail ? "fail"
                                                              : "protocol_error";
  MetricsRegistry::instance()
      .getCounter("irdl_serve_requests_total",
                  "requests served by irdl_serve",
                  {{"type", TypeName}, {"status", std::string(StatusName)}})
      .inc();
  MetricsRegistry::instance()
      .getHistogram("irdl_serve_request_duration_ns",
                    "end-to-end server-side request handling time",
                    {{"type", TypeName}})
      .record(DurationNs);
}

Gauge &epochGauge() {
  return MetricsRegistry::instance().getGauge(
      "irdl_serve_epoch", "current dialect-registry epoch number");
}

Gauge &activeConnectionsGauge() {
  return MetricsRegistry::instance().getGauge(
      "irdl_serve_active_connections", "currently connected clients");
}

} // namespace

//===----------------------------------------------------------------------===//
// Streaming state
//===----------------------------------------------------------------------===//

/// State of one VERIFY_BEGIN..VERIFY_END stream. Chunk modules are kept
/// alive until the stream closes so recorded diagnostics can still render
/// against their source buffers at VERIFY_END.
struct VerifyServer::StreamState {
  bool Open = false;
  bool Failed = false;
  unsigned NumChunks = 0;
  std::string Name;
  std::shared_ptr<const Epoch> Pinned;
  std::unique_ptr<SourceMgr> SrcMgr;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::vector<OwningOpRef> Chunks;

  void reset() {
    Open = false;
    Failed = false;
    NumChunks = 0;
    Name.clear();
    Chunks.clear();
    Diags.reset();
    SrcMgr.reset();
    Pinned.reset();
  }
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

VerifyServer::VerifyServer(ServerOptions Opts) : Opts(std::move(Opts)) {
  epochGauge().set(static_cast<int64_t>(Epochs.currentEpochNumber()));
}

VerifyServer::~VerifyServer() {
  requestStop();
  // serve() joins the connection threads; if it never ran (start failed or
  // the owner stopped before serving), there are none to join — but guard
  // against an owner that destroys the server without returning from
  // serve()'s wind-down (impossible by construction: serve() runs on the
  // owner's thread).
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (std::thread &T : ConnThreads)
    if (T.joinable())
      T.join();
}

LogicalResult VerifyServer::start(std::string &Error) {
  ListenFd = listenUnixSocket(Opts.SocketPath, Error);
  if (!ListenFd.isValid())
    return failure();
  ListenFdRaw.store(ListenFd.get(), std::memory_order_release);
  return success();
}

void VerifyServer::requestStop() {
  StopFlag.store(true, std::memory_order_release);
  int Fd = ListenFdRaw.load(std::memory_order_acquire);
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void VerifyServer::serve() {
  while (!stopRequested()) {
    FileDescriptor Conn = acceptConnection(ListenFd.get());
    if (!Conn.isValid()) {
      if (stopRequested())
        break;
      continue; // Transient accept failure.
    }
    MetricsRegistry::instance()
        .getCounter("irdl_serve_connections_total",
                    "client connections accepted")
        .inc();
    activeConnectionsGauge().inc();
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ActiveFds.insert(Conn.get());
    ConnThreads.emplace_back(
        [this, Fd = std::move(Conn)]() mutable {
          handleConnection(std::move(Fd));
        });
  }

  // Wind-down: no new requests on live connections (SHUT_RD lets an
  // in-flight response still reach the client), then join everyone.
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (int Fd : ActiveFds)
      ::shutdown(Fd, SHUT_RD);
  }
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ToJoin.swap(ConnThreads);
  }
  for (std::thread &T : ToJoin)
    T.join();
  ListenFdRaw.store(-1, std::memory_order_release);
  ListenFd.reset();
  ::unlink(Opts.SocketPath.c_str());
}

//===----------------------------------------------------------------------===//
// Connection loop
//===----------------------------------------------------------------------===//

void VerifyServer::handleConnection(FileDescriptor Fd) {
  StreamState Stream;
  while (true) {
    RequestFrame Request;
    std::string Error;
    ReadOutcome Outcome = readRequestFrame(Fd.get(), Request, Error);
    if (Outcome == ReadOutcome::Disconnect)
      break;
    if (Outcome == ReadOutcome::Error) {
      // Best effort: a client that sent garbage may still be listening.
      writeResponseFrame(Fd.get(), FrameStatus::ProtocolError, Error);
      break;
    }
    uint64_t Begin = steadyNowNs();
    ResponseFrame Response = dispatch(Request, Stream);
    recordRequest(Request.Type, Response.Status, steadyNowNs() - Begin);
    if (!writeResponseFrame(Fd.get(), Response.Status, Response.Payload))
      break;
    if (Response.Status == FrameStatus::ProtocolError)
      break;
    if (Request.Type == FrameType::Shutdown) {
      requestStop();
      break;
    }
  }
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ActiveFds.erase(Fd.get());
  }
  activeConnectionsGauge().add(-1);
}

ResponseFrame VerifyServer::dispatch(const RequestFrame &Request,
                                     StreamState &Stream) {
  switch (Request.Type) {
  case FrameType::Verify:
    return handleVerify(Request.Payload);
  case FrameType::VerifyBegin:
    return handleVerifyBegin(Request.Payload, Stream);
  case FrameType::VerifyChunk:
    return handleVerifyChunk(Request.Payload, Stream);
  case FrameType::VerifyEnd:
    return handleVerifyEnd(Stream);
  case FrameType::LoadDialect:
    return handleLoadDialect(Request.Payload, /*Reload=*/false);
  case FrameType::ReloadDialect:
    return handleLoadDialect(Request.Payload, /*Reload=*/true);
  case FrameType::Metrics:
    return {FrameStatus::Ok, MetricsRegistry::instance().renderPrometheus()};
  case FrameType::Shutdown:
  case FrameType::Ping:
    return {FrameStatus::Ok, ""};
  }
  return {FrameStatus::ProtocolError, "unhandled frame type"};
}

//===----------------------------------------------------------------------===//
// VERIFY
//===----------------------------------------------------------------------===//

namespace {

/// Materializes a request payload into \p Ctx: textual IR through the
/// parser (buffer registered with \p SrcMgr for caret rendering), `.irbc`
/// through the bytecode reader. Mirrors the irdl_opt input path so the
/// recorded diagnostics are identical. Spec-bearing bytecode is rejected
/// up front: reading it would register dialects into the shared epoch
/// context mid-flight.
OwningOpRef materializeModule(IRContext &Ctx, std::string_view Name,
                              std::string_view Content, SourceMgr &SrcMgr,
                              DiagnosticEngine &Diags) {
  if (isBytecodeBuffer(Content)) {
    if (bytecodeBufferHasSpecs(Content)) {
      Diags.emitError(std::string(Name) +
                      ": VERIFY bytecode must be module-only; register "
                      "dialect specs through LOAD_DIALECT");
      return OwningOpRef();
    }
    BytecodeReader Reader(Ctx, Diags);
    BytecodeReadResult Result;
    if (failed(Reader.read(Content, Result)))
      return OwningOpRef();
    if (!Result.Module) {
      Diags.emitError(std::string(Name) +
                      ": bytecode buffer contains no IR module");
      return OwningOpRef();
    }
    return std::move(Result.Module);
  }
  return parseSourceString(Ctx, Content, SrcMgr, Diags, std::string(Name));
}

} // namespace

ResponseFrame VerifyServer::handleVerify(std::string_view Payload) {
  std::string_view Name, Content;
  if (!decodeNamedPayload(Payload, Name, Content))
    return {FrameStatus::ProtocolError, "malformed VERIFY payload header"};

  std::shared_ptr<const Epoch> Pinned = Epochs.current();
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  OwningOpRef M =
      materializeModule(*Pinned->Ctx, Name, Content, SrcMgr, Diags);
  if (!M)
    return {FrameStatus::Fail, Diags.renderAll()};

  // Byte-identical to irdl_opt with an empty pipeline: PassManager::run
  // verifies the root up front and tags a failure with this exact
  // trailing error (Pass.cpp), and irdl_opt prints renderAll() of an
  // engine that saw nothing else.
  DiagnosticEngine PipelineDiags(&SrcMgr);
  if (failed(verifyOp(M.get(), PipelineDiags))) {
    PipelineDiags.emitError(M->getLoc(),
                            "IR failed to verify before the pipeline");
    return {FrameStatus::Fail, PipelineDiags.renderAll()};
  }
  return {FrameStatus::Ok, ""};
}

ResponseFrame VerifyServer::handleVerifyBegin(std::string_view Payload,
                                              StreamState &Stream) {
  std::string_view Name, Content;
  if (!decodeNamedPayload(Payload, Name, Content))
    return {FrameStatus::ProtocolError,
            "malformed VERIFY_BEGIN payload header"};
  if (Stream.Open)
    return {FrameStatus::ProtocolError,
            "VERIFY_BEGIN inside an open verification stream"};
  Stream.reset();
  Stream.Open = true;
  Stream.Name = std::string(Name);
  Stream.Pinned = Epochs.current();
  Stream.SrcMgr = std::make_unique<SourceMgr>();
  Stream.Diags = std::make_unique<DiagnosticEngine>(Stream.SrcMgr.get());
  return {FrameStatus::Ok, ""};
}

ResponseFrame VerifyServer::handleVerifyChunk(std::string_view Payload,
                                              StreamState &Stream) {
  if (!Stream.Open)
    return {FrameStatus::ProtocolError,
            "VERIFY_CHUNK outside a verification stream"};
  unsigned Index = Stream.NumChunks++;
  // Fail-fast across chunks, mirroring whole-module verification: once a
  // chunk failed, later chunks are acknowledged but not verified (their
  // diagnostics would not exist in a sequential run either).
  if (Stream.Failed)
    return {FrameStatus::Ok, ""};

  std::string ChunkName =
      Stream.Name + ":chunk" + std::to_string(Index);
  OwningOpRef M = materializeModule(*Stream.Pinned->Ctx, ChunkName, Payload,
                                    *Stream.SrcMgr, *Stream.Diags);
  if (!M) {
    Stream.Failed = true;
    return {FrameStatus::Ok, ""};
  }

  // Verify this chunk's function-like top-level ops now, while the client
  // is still sending later frames; the pool fans the batch out.
  std::vector<Operation *> Ops;
  if (M->getNumRegions() != 0 && !M->getRegion(0).empty())
    for (Operation &Op : M->getRegion(0).front())
      Ops.push_back(&Op);
  if (failed(verifyOpsIncremental(Ops, *Stream.Diags)))
    Stream.Failed = true;
  // Keep the chunk (and its source buffer) alive until VERIFY_END: the
  // recorded diagnostics render lazily against the SourceMgr.
  Stream.Chunks.push_back(std::move(M));
  return {FrameStatus::Ok, ""};
}

ResponseFrame VerifyServer::handleVerifyEnd(StreamState &Stream) {
  if (!Stream.Open)
    return {FrameStatus::ProtocolError,
            "VERIFY_END outside a verification stream"};
  ResponseFrame Response{Stream.Failed ? FrameStatus::Fail : FrameStatus::Ok,
                         Stream.Failed ? Stream.Diags->renderAll() : ""};
  Stream.reset();
  return Response;
}

//===----------------------------------------------------------------------===//
// LOAD_DIALECT / RELOAD_DIALECT
//===----------------------------------------------------------------------===//

ResponseFrame VerifyServer::handleLoadDialect(std::string_view Payload,
                                              bool Reload) {
  std::string_view Name, Content;
  if (!decodeNamedPayload(Payload, Name, Content))
    return {FrameStatus::ProtocolError,
            Reload ? "malformed RELOAD_DIALECT payload header"
                   : "malformed LOAD_DIALECT payload header"};
  std::string DiagText;
  LogicalResult Result =
      Reload ? Epochs.reloadDialect(std::string(Name), std::string(Content),
                                    DiagText)
             : Epochs.loadDialect(std::string(Name), std::string(Content),
                                  DiagText);
  if (failed(Result))
    return {FrameStatus::Fail, DiagText};
  uint64_t EpochNumber = Epochs.currentEpochNumber();
  epochGauge().set(static_cast<int64_t>(EpochNumber));
  return {FrameStatus::Ok, std::to_string(EpochNumber)};
}
