//===- EpochRegistry.cpp ----------------------------------------------===//

#include "server/EpochRegistry.h"

#include "bytecode/Bytecode.h"
#include "bytecode/SpecCache.h"
#include "support/Metrics.h"

#include <algorithm>

using namespace irdl;
using namespace irdl::serve;

namespace {

/// Reload dedup accounting. Like the request counters in Server.cpp,
/// recorded unconditionally: the METRICS endpoint must show cache
/// behavior regardless of library instrumentation opt-in.
Counter &specCacheCounter(bool Hit) {
  return MetricsRegistry::instance().getCounter(
      Hit ? "irdl_serve_spec_cache_hits" : "irdl_serve_spec_cache_misses",
      Hit ? "dialect reloads skipped because the spec content hash matched "
            "an already loaded source"
          : "dialect loads/reloads that rebuilt the registry epoch");
}

} // namespace

EpochRegistry::EpochRegistry() {
  auto Boot = std::make_shared<Epoch>();
  Boot->Ctx = std::make_unique<IRContext>();
  Boot->SrcMgr = std::make_unique<SourceMgr>();
  Current = std::move(Boot);
}

std::shared_ptr<const Epoch> EpochRegistry::current() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Current;
}

uint64_t EpochRegistry::currentEpochNumber() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Current->Number;
}

LogicalResult EpochRegistry::loadInto(Epoch &E, const Source &S,
                                      std::vector<std::string> &DialectNames,
                                      std::string &DiagText) {
  DiagnosticEngine Diags(E.SrcMgr.get());
  std::unique_ptr<IRDLModule> Loaded;
  if (isBytecodeBuffer(S.Buffer)) {
    BytecodeReader Reader(*E.Ctx, Diags);
    BytecodeReadResult Result;
    if (failed(Reader.read(S.Buffer, Result)) || !Result.Specs) {
      if (!Diags.hadError())
        Diags.emitError("bytecode buffer '" + S.Name +
                        "' contains no dialect specs");
      DiagText = Diags.renderAll();
      return failure();
    }
    Loaded = std::move(Result.Specs);
  } else {
    Loaded = loadIRDL(*E.Ctx, S.Buffer, *E.SrcMgr, Diags, {}, S.Name);
    if (!Loaded) {
      DiagText = Diags.renderAll();
      return failure();
    }
  }
  for (const auto &D : Loaded->getDialects())
    DialectNames.push_back(D->Name);
  E.Modules.push_back(std::move(Loaded));
  return success();
}

LogicalResult EpochRegistry::rebuild(std::vector<Source> Sources,
                                     std::string &DiagText) {
  auto Next = std::make_shared<Epoch>();
  Next->Ctx = std::make_unique<IRContext>();
  Next->SrcMgr = std::make_unique<SourceMgr>();
  for (Source &S : Sources) {
    S.DialectNames.clear();
    if (failed(loadInto(*Next, S, S.DialectNames, DiagText)))
      return failure();
  }
  Next->Number = NextNumber++;
  this->Sources = std::move(Sources);
  Current = std::move(Next);
  return success();
}

LogicalResult EpochRegistry::loadDialect(std::string Name,
                                         std::string Buffer,
                                         std::string &DiagText) {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Discover the dialect names by loading into a scratch context first;
  // this also surfaces load errors without paying a full rebuild.
  Epoch Scratch;
  Scratch.Ctx = std::make_unique<IRContext>();
  Scratch.SrcMgr = std::make_unique<SourceMgr>();
  Source S{std::move(Name), std::move(Buffer), {}, 0};
  S.Hash = hashSpecBuffer(S.Buffer);
  std::vector<std::string> NewNames;
  if (failed(loadInto(Scratch, S, NewNames, DiagText)))
    return failure();
  for (const Source &Existing : Sources)
    for (const std::string &N : NewNames)
      if (std::find(Existing.DialectNames.begin(),
                    Existing.DialectNames.end(),
                    N) != Existing.DialectNames.end()) {
        DiagText = "dialect '" + N + "' is already loaded (from '" +
                   Existing.Name + "'); use RELOAD_DIALECT to replace it";
        return failure();
      }
  specCacheCounter(/*Hit=*/false).inc();
  std::vector<Source> NewSources = Sources;
  NewSources.push_back(std::move(S));
  return rebuild(std::move(NewSources), DiagText);
}

LogicalResult EpochRegistry::reloadDialect(std::string Name,
                                           std::string Buffer,
                                           std::string &DiagText) {
  std::lock_guard<std::mutex> Lock(Mutex);
  // Dedup before any scratch work: a reload whose content hash (and, to
  // rule out collisions, bytes) matches an already loaded source cannot
  // change the registry — skip the rebuild and keep the epoch published.
  uint64_t Hash = hashSpecBuffer(Buffer);
  for (const Source &Existing : Sources)
    if (Existing.Hash == Hash && Existing.Buffer == Buffer) {
      specCacheCounter(/*Hit=*/true).inc();
      return success();
    }
  Epoch Scratch;
  Scratch.Ctx = std::make_unique<IRContext>();
  Scratch.SrcMgr = std::make_unique<SourceMgr>();
  Source S{std::move(Name), std::move(Buffer), {}, Hash};
  std::vector<std::string> NewNames;
  if (failed(loadInto(Scratch, S, NewNames, DiagText)))
    return failure();
  std::vector<Source> NewSources;
  for (const Source &Existing : Sources) {
    bool Replaced = false;
    for (const std::string &N : NewNames)
      if (std::find(Existing.DialectNames.begin(),
                    Existing.DialectNames.end(),
                    N) != Existing.DialectNames.end())
        Replaced = true;
    if (!Replaced)
      NewSources.push_back(Existing);
  }
  specCacheCounter(/*Hit=*/false).inc();
  NewSources.push_back(std::move(S));
  return rebuild(std::move(NewSources), DiagText);
}
