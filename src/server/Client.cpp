//===- Client.cpp -----------------------------------------------------===//

#include "server/Client.h"

using namespace irdl;
using namespace irdl::serve;

LogicalResult ServeClient::connect(const std::string &Path,
                                   std::string &Error) {
  Fd = connectUnixSocket(Path, Error);
  return Fd.isValid() ? success() : failure();
}

LogicalResult ServeClient::call(FrameType Type, std::string_view Payload,
                                ResponseFrame &Response,
                                std::string &Error) {
  if (!Fd.isValid()) {
    Error = "not connected";
    return failure();
  }
  if (!writeRequestFrame(Fd.get(), Type, Payload)) {
    Error = "failed to send " + std::string(frameTypeName(Type)) +
            " request frame";
    Fd.reset();
    return failure();
  }
  ReadOutcome Outcome = readResponseFrame(Fd.get(), Response, Error);
  if (Outcome == ReadOutcome::Ok)
    return success();
  if (Outcome == ReadOutcome::Disconnect)
    Error = "server closed the connection";
  Fd.reset();
  return failure();
}
