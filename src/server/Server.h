//===- Server.h - The irdl_serve verification daemon -------------*- C++ -*-===//
///
/// \file
/// The persistent verification service: a unix-domain socket listener
/// serving the serve::Protocol frame catalogue against a warm, epoch-
/// versioned dialect registry. Each connection gets its own thread; each
/// request pins the then-current Epoch, so verification always runs
/// against a fully built, immutable IRContext while LOAD_DIALECT /
/// RELOAD_DIALECT publish new epochs concurrently. One-shot VERIFY
/// responses replay diagnostics byte-identically to an `irdl_opt` run
/// over the same input (locked by ServeDifferentialTest); streamed
/// verification (VERIFY_BEGIN/CHUNK/END) verifies each chunk's top-level
/// ops on the thread pool as the frames arrive. See docs/serving.md.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SERVER_SERVER_H
#define IRDL_SERVER_SERVER_H

#include "server/EpochRegistry.h"
#include "server/Protocol.h"
#include "support/Socket.h"

#include <atomic>
#include <set>
#include <thread>

namespace irdl {
namespace serve {

struct ServerOptions {
  /// Filesystem path of the unix-domain listening socket.
  std::string SocketPath;
};

class VerifyServer {
public:
  explicit VerifyServer(ServerOptions Opts);
  ~VerifyServer();
  VerifyServer(const VerifyServer &) = delete;
  VerifyServer &operator=(const VerifyServer &) = delete;

  /// Binds and listens on the socket. Must be called (successfully)
  /// before serve().
  LogicalResult start(std::string &Error);

  /// Runs the accept loop on the calling thread until requestStop() (or a
  /// SHUTDOWN request) fires, then winds down: stops reading on active
  /// connections (in-flight responses still flush), joins every
  /// connection thread, and unlinks the socket file.
  void serve();

  /// Asks the accept loop to exit. Async-signal-safe: an atomic store
  /// plus shutdown(2) on the listening socket — callable straight from a
  /// SIGINT/SIGTERM handler.
  void requestStop();

  bool stopRequested() const {
    return StopFlag.load(std::memory_order_acquire);
  }

  /// The dialect registry served by LOAD_DIALECT/RELOAD_DIALECT.
  EpochRegistry &epochs() { return Epochs; }

  const std::string &socketPath() const { return Opts.SocketPath; }

private:
  /// Per-connection streaming-verification state (VERIFY_BEGIN..END).
  struct StreamState;

  void handleConnection(FileDescriptor Fd);
  ResponseFrame dispatch(const RequestFrame &Request, StreamState &Stream);
  ResponseFrame handleVerify(std::string_view Payload);
  ResponseFrame handleVerifyBegin(std::string_view Payload,
                                  StreamState &Stream);
  ResponseFrame handleVerifyChunk(std::string_view Payload,
                                  StreamState &Stream);
  ResponseFrame handleVerifyEnd(StreamState &Stream);
  ResponseFrame handleLoadDialect(std::string_view Payload, bool Reload);

  ServerOptions Opts;
  EpochRegistry Epochs;

  std::atomic<bool> StopFlag{false};
  /// Raw listening fd mirrored into an atomic so requestStop() can
  /// shutdown(2) it from a signal handler.
  std::atomic<int> ListenFdRaw{-1};
  FileDescriptor ListenFd;

  /// Active connection fds + threads; guarded by ConnMutex. Threads are
  /// joined in serve() after the accept loop exits.
  std::mutex ConnMutex;
  std::set<int> ActiveFds;
  std::vector<std::thread> ConnThreads;
};

} // namespace serve
} // namespace irdl

#endif // IRDL_SERVER_SERVER_H
