//===- Render.cpp ------------------------------------------------------===//

#include "analysis/Render.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

using namespace irdl;

std::string irdl::formatPercent(double Fraction, unsigned Decimals) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Decimals) << Fraction * 100.0
     << "%";
  return OS.str();
}

void TextTable::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Update = [&Widths](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Update(Header);
  for (const auto &Row : Rows)
    Update(Row);

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      OS << "| " << std::left << std::setw(static_cast<int>(Widths[I]))
         << (I < Row.size() ? Row[I] : "") << " ";
    }
    OS << "|\n";
  };
  auto PrintSep = [&] {
    for (size_t I = 0; I < Widths.size(); ++I)
      OS << "+" << std::string(Widths[I] + 2, '-');
    OS << "+\n";
  };

  PrintSep();
  PrintRow(Header);
  PrintSep();
  for (const auto &Row : Rows)
    PrintRow(Row);
  PrintSep();
}

std::string irdl::stackedBar(const std::vector<double> &Fractions,
                             unsigned Width) {
  static const char Glyphs[] = {'#', '=', '-', '.', '~', '+'};
  std::string Bar;
  Bar.reserve(Width);
  unsigned Used = 0;
  for (size_t I = 0; I < Fractions.size(); ++I) {
    unsigned Len = static_cast<unsigned>(
        std::lround(Fractions[I] * Width));
    if (I + 1 == Fractions.size())
      Len = Width > Used ? Width - Used : 0;
    Len = std::min(Len, Width - Used);
    Bar.append(Len, Glyphs[I % sizeof(Glyphs)]);
    Used += Len;
  }
  if (Used < Width)
    Bar.append(Width - Used, ' ');
  return Bar;
}

std::string irdl::countBar(double Value, double MaxValue, unsigned Width,
                           bool LogScale) {
  if (MaxValue <= 0 || Value <= 0)
    return std::string();
  double Frac;
  if (LogScale)
    Frac = std::log(1.0 + Value) / std::log(1.0 + MaxValue);
  else
    Frac = Value / MaxValue;
  unsigned Len = std::max<unsigned>(
      1, static_cast<unsigned>(std::lround(Frac * Width)));
  return std::string(std::min(Len, Width), '#');
}

void irdl::printStackedFigure(
    std::ostream &OS, const std::string &Title,
    const std::vector<std::string> &BucketLabels,
    const std::vector<std::pair<std::string, std::vector<double>>> &Rows,
    const std::vector<double> &Overall) {
  OS << Title << "\n";
  OS << "  legend:";
  static const char Glyphs[] = {'#', '=', '-', '.', '~', '+'};
  for (size_t I = 0; I < BucketLabels.size(); ++I)
    OS << " [" << Glyphs[I % sizeof(Glyphs)] << "] " << BucketLabels[I];
  OS << "\n";

  size_t NameWidth = 7; // "overall"
  for (const auto &[Name, Fracs] : Rows)
    NameWidth = std::max(NameWidth, Name.size());

  auto PrintRow = [&](const std::string &Name,
                      const std::vector<double> &Fracs) {
    OS << "  " << std::left << std::setw(static_cast<int>(NameWidth))
       << Name << " |" << stackedBar(Fracs) << "|";
    for (size_t I = 0; I < Fracs.size(); ++I)
      OS << " " << formatPercent(Fracs[I]);
    OS << "\n";
  };

  for (const auto &[Name, Fracs] : Rows)
    PrintRow(Name, Fracs);
  OS << "  " << std::string(NameWidth + 44, '-') << "\n";
  PrintRow("overall", Overall);
}
