//===- Render.h - ASCII rendering of evaluation figures -----------*- C++ -*-===//
///
/// \file
/// Text rendering used by the bench harnesses to regenerate the paper's
/// tables and figures: aligned tables, stacked percentage bars (Figures
/// 5–7, 11), log-scale count bars (Figure 4), and simple count bars
/// (Figures 8–10, 12).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_ANALYSIS_RENDER_H
#define IRDL_ANALYSIS_RENDER_H

#include "analysis/DialectStatistics.h"

#include <ostream>
#include <string>
#include <vector>

namespace irdl {

/// Prints "12.3%" style.
std::string formatPercent(double Fraction, unsigned Decimals = 0);

/// A two-dimensional text table with a header row; columns auto-size.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header)
      : Header(std::move(Header)) {}

  void addRow(std::vector<std::string> Row) {
    Rows.push_back(std::move(Row));
  }

  void print(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Renders a stacked percentage bar of \p Width characters; \p Fractions
/// must (approximately) sum to one. Segment glyphs cycle through
/// '#', '=', '-', '.'.
std::string stackedBar(const std::vector<double> &Fractions,
                       unsigned Width = 40);

/// Renders a horizontal count bar scaled so that \p MaxValue fills
/// \p Width characters. When \p LogScale, lengths are log-proportional
/// (Figure 4's axis).
std::string countBar(double Value, double MaxValue, unsigned Width = 40,
                     bool LogScale = false);

/// Prints a per-dialect stacked-percentage figure: one row per dialect
/// (sorted by the first bucket's descending fraction, like the paper's
/// panels), plus an "overall" row.
void printStackedFigure(
    std::ostream &OS, const std::string &Title,
    const std::vector<std::string> &BucketLabels,
    const std::vector<std::pair<std::string, std::vector<double>>> &Rows,
    const std::vector<double> &Overall);

} // namespace irdl

#endif // IRDL_ANALYSIS_RENDER_H
