//===- DialectStatistics.cpp ------------------------------------------===//

#include "analysis/DialectStatistics.h"

#include "support/StringExtras.h"

using namespace irdl;

std::string_view irdl::paramKindName(ParamKind K) {
  switch (K) {
  case ParamKind::AttrOrType:
    return "attr/type";
  case ParamKind::Integer:
    return "integer";
  case ParamKind::String:
    return "string";
  case ParamKind::Float:
    return "float";
  case ParamKind::Enum:
    return "enum";
  case ParamKind::Location:
    return "location";
  case ParamKind::TypeId:
    return "type id";
  case ParamKind::DomainSpecific:
    return "domain-specific";
  }
  return "?";
}

std::string_view irdl::cppConstraintKindName(CppConstraintKind K) {
  switch (K) {
  case CppConstraintKind::IntegerInequality:
    return "integer inequality";
  case CppConstraintKind::StrideCheck:
    return "stride check";
  case CppConstraintKind::StructOpacity:
    return "struct opacity";
  case CppConstraintKind::Other:
    return "other";
  }
  return "?";
}

ParamKind irdl::classifyParamKind(const ConstraintPtr &C) {
  switch (C->getKind()) {
  case Constraint::Kind::AnyType:
  case Constraint::Kind::TypeParams:
  case Constraint::Kind::AnyAttr:
  case Constraint::Kind::AttrParams:
    return ParamKind::AttrOrType;
  case Constraint::Kind::IntKind:
  case Constraint::Kind::IntEq:
    return ParamKind::Integer;
  case Constraint::Kind::StringKind:
  case Constraint::Kind::StringEq:
    return ParamKind::String;
  case Constraint::Kind::FloatKind:
  case Constraint::Kind::FloatEq:
    return ParamKind::Float;
  case Constraint::Kind::EnumKind:
  case Constraint::Kind::EnumEq:
    return ParamKind::Enum;
  case Constraint::Kind::OpaqueKind:
    if (C->getString() == "location")
      return ParamKind::Location;
    if (C->getString() == "type_id")
      return ParamKind::TypeId;
    return ParamKind::DomainSpecific;
  case Constraint::Kind::ArrayOf:
    if (!C->getChildren().empty())
      return classifyParamKind(C->getChildren()[0]);
    return ParamKind::DomainSpecific;
  case Constraint::Kind::Cpp:
  case Constraint::Kind::Native:
  case Constraint::Kind::Named:
    return classifyParamKind(C->getChildren()[0]);
  case Constraint::Kind::AnyOf:
  case Constraint::Kind::And: {
    // Uniform child kinds classify as that kind; otherwise mixed params
    // count as domain-specific.
    std::optional<ParamKind> Kind;
    for (const ConstraintPtr &Child : C->getChildren()) {
      ParamKind CK = classifyParamKind(Child);
      if (!Kind)
        Kind = CK;
      else if (*Kind != CK)
        return ParamKind::DomainSpecific;
    }
    return Kind.value_or(ParamKind::DomainSpecific);
  }
  case Constraint::Kind::ArrayExact:
  case Constraint::Kind::Not:
  case Constraint::Kind::Var:
  case Constraint::Kind::AnyParam:
    return ParamKind::DomainSpecific;
  }
  return ParamKind::DomainSpecific;
}

//===----------------------------------------------------------------------===//
// Record construction
//===----------------------------------------------------------------------===//

namespace {

/// Categorizes a C++-requiring constraint into the Figure 12 buckets.
/// Named constraints carry the category in their name by convention
/// (which is how the corpus encodes them); anonymous expressions are
/// pattern-matched on their source.
CppConstraintKind categorizeCpp(const ConstraintPtr &C) {
  const std::string &Tag = C->getString();
  auto Contains = [&Tag](const char *Needle) {
    return Tag.find(Needle) != std::string::npos;
  };
  if (Contains("stride") || Contains("Stride"))
    return CppConstraintKind::StrideCheck;
  if (Contains("opaque") || Contains("Opacity") || Contains("opacity"))
    return CppConstraintKind::StructOpacity;
  if (Contains("<=") || Contains(">=") || Contains("<") || Contains(">") ||
      Contains("Bounded") || Contains("Inequality") ||
      Contains("inequality"))
    return CppConstraintKind::IntegerInequality;
  return CppConstraintKind::Other;
}

/// Walks a constraint tree collecting the categories of any C++ nodes.
void collectCppKinds(const ConstraintPtr &C,
                     std::vector<CppConstraintKind> &Out) {
  if (C->getKind() == Constraint::Kind::Cpp ||
      C->getKind() == Constraint::Kind::Native)
    Out.push_back(categorizeCpp(C));
  for (const ConstraintPtr &Child : C->getChildren())
    collectCppKinds(Child, Out);
}

OpRecord makeOpRecord(const DialectSpec &D, const OpSpec &Op) {
  OpRecord R;
  R.DialectName = D.Name;
  R.Name = Op.Name;
  R.NumOperandDefs = Op.Operands.size();
  for (const OperandSpec &O : Op.Operands)
    if (O.VK != VariadicKind::Single)
      ++R.NumVariadicOperandDefs;
  R.NumResultDefs = Op.Results.size();
  for (const OperandSpec &Res : Op.Results)
    if (Res.VK != VariadicKind::Single)
      ++R.NumVariadicResultDefs;
  R.NumAttrDefs = Op.Attributes.size();
  R.NumRegionDefs = Op.Regions.size();
  R.IsTerminator = Op.isTerminator();
  R.LocalConstraintsInIRDL = Op.localConstraintsInIRDL();
  R.NeedsCppVerifier = Op.requiresCppVerifier();

  for (const OperandSpec &O : Op.Operands)
    collectCppKinds(O.Constr, R.LocalCppKinds);
  for (const OperandSpec &Res : Op.Results)
    collectCppKinds(Res.Constr, R.LocalCppKinds);
  for (const ParamSpec &A : Op.Attributes)
    collectCppKinds(A.Constr, R.LocalCppKinds);
  return R;
}

TypeAttrRecord makeTypeAttrRecord(const DialectSpec &D,
                                  const TypeOrAttrSpec &T) {
  TypeAttrRecord R;
  R.DialectName = D.Name;
  R.Name = T.Name;
  R.IsAttr = T.IsAttr;
  for (const ParamSpec &P : T.Params)
    R.ParamKinds.push_back(classifyParamKind(P.Constr));
  R.ParamsInIRDL = !T.requiresCppParams();
  R.NeedsCppVerifier = T.requiresCppVerifier() ||
                       startsWith(T.CppConstraintSrc, "native:");
  return R;
}

} // namespace

unsigned DialectStatistics::numTypes() const {
  unsigned N = 0;
  for (const TypeAttrRecord &R : TypesAndAttrs)
    if (!R.IsAttr)
      ++N;
  return N;
}

unsigned DialectStatistics::numAttrs() const {
  unsigned N = 0;
  for (const TypeAttrRecord &R : TypesAndAttrs)
    if (R.IsAttr)
      ++N;
  return N;
}

double DialectStatistics::opFraction(bool (*Pred)(const OpRecord &)) const {
  if (Ops.empty())
    return 0.0;
  unsigned N = 0;
  for (const OpRecord &R : Ops)
    if (Pred(R))
      ++N;
  return static_cast<double>(N) / Ops.size();
}

CorpusStatistics CorpusStatistics::compute(
    const std::vector<std::shared_ptr<DialectSpec>> &Specs) {
  CorpusStatistics Stats;
  for (const auto &D : Specs) {
    DialectStatistics DS;
    DS.Name = D->Name;
    for (const OpSpec &Op : D->Ops)
      DS.Ops.push_back(makeOpRecord(*D, Op));
    for (const TypeOrAttrSpec &T : D->Types)
      DS.TypesAndAttrs.push_back(makeTypeAttrRecord(*D, T));
    for (const TypeOrAttrSpec &A : D->Attrs)
      DS.TypesAndAttrs.push_back(makeTypeAttrRecord(*D, A));
    Stats.Dialects.push_back(std::move(DS));
  }
  return Stats;
}

const DialectStatistics *
CorpusStatistics::lookup(std::string_view Name) const {
  for (const DialectStatistics &D : Dialects)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

unsigned CorpusStatistics::totalOps() const {
  unsigned N = 0;
  for (const DialectStatistics &D : Dialects)
    N += D.numOps();
  return N;
}

unsigned CorpusStatistics::totalTypes() const {
  unsigned N = 0;
  for (const DialectStatistics &D : Dialects)
    N += D.numTypes();
  return N;
}

unsigned CorpusStatistics::totalAttrs() const {
  unsigned N = 0;
  for (const DialectStatistics &D : Dialects)
    N += D.numAttrs();
  return N;
}

template <typename FieldFn>
Distribution CorpusStatistics::distOver(unsigned Buckets, FieldFn Field,
                                        std::string_view Dialect) const {
  Distribution Dist(Buckets);
  for (const DialectStatistics &D : Dialects) {
    if (!Dialect.empty() && D.Name != Dialect)
      continue;
    for (const OpRecord &R : D.Ops)
      Dist.add(Field(R));
  }
  return Dist;
}

Distribution CorpusStatistics::operandCountDist() const {
  return distOver(4, [](const OpRecord &R) { return R.NumOperandDefs; });
}
Distribution
CorpusStatistics::operandCountDist(std::string_view Dialect) const {
  return distOver(4, [](const OpRecord &R) { return R.NumOperandDefs; },
                  Dialect);
}
Distribution CorpusStatistics::variadicOperandDist() const {
  return distOver(
      3, [](const OpRecord &R) { return R.NumVariadicOperandDefs; });
}
Distribution
CorpusStatistics::variadicOperandDist(std::string_view Dialect) const {
  return distOver(
      3, [](const OpRecord &R) { return R.NumVariadicOperandDefs; },
      Dialect);
}
Distribution CorpusStatistics::resultCountDist() const {
  return distOver(3, [](const OpRecord &R) { return R.NumResultDefs; });
}
Distribution
CorpusStatistics::resultCountDist(std::string_view Dialect) const {
  return distOver(3, [](const OpRecord &R) { return R.NumResultDefs; },
                  Dialect);
}
Distribution CorpusStatistics::variadicResultDist() const {
  return distOver(
      2, [](const OpRecord &R) { return R.NumVariadicResultDefs; });
}
Distribution
CorpusStatistics::variadicResultDist(std::string_view Dialect) const {
  return distOver(
      2, [](const OpRecord &R) { return R.NumVariadicResultDefs; },
      Dialect);
}
Distribution CorpusStatistics::attrCountDist() const {
  return distOver(3, [](const OpRecord &R) { return R.NumAttrDefs; });
}
Distribution
CorpusStatistics::attrCountDist(std::string_view Dialect) const {
  return distOver(3, [](const OpRecord &R) { return R.NumAttrDefs; },
                  Dialect);
}
Distribution CorpusStatistics::regionCountDist() const {
  return distOver(3, [](const OpRecord &R) { return R.NumRegionDefs; });
}
Distribution
CorpusStatistics::regionCountDist(std::string_view Dialect) const {
  return distOver(3, [](const OpRecord &R) { return R.NumRegionDefs; },
                  Dialect);
}

std::map<ParamKind, unsigned> CorpusStatistics::typeParamKinds() const {
  std::map<ParamKind, unsigned> Kinds;
  for (const DialectStatistics &D : Dialects)
    for (const TypeAttrRecord &R : D.TypesAndAttrs)
      if (!R.IsAttr)
        for (ParamKind K : R.ParamKinds)
          ++Kinds[K];
  return Kinds;
}

std::map<ParamKind, unsigned> CorpusStatistics::attrParamKinds() const {
  std::map<ParamKind, unsigned> Kinds;
  for (const DialectStatistics &D : Dialects)
    for (const TypeAttrRecord &R : D.TypesAndAttrs)
      if (R.IsAttr)
        for (ParamKind K : R.ParamKinds)
          ++Kinds[K];
  return Kinds;
}

namespace {
template <typename Pred>
CorpusStatistics::Expressibility
typeAttrExpr(const std::vector<DialectStatistics> &Dialects, bool WantAttr,
             Pred NeedsCpp) {
  CorpusStatistics::Expressibility E;
  for (const DialectStatistics &D : Dialects)
    for (const TypeAttrRecord &R : D.TypesAndAttrs) {
      if (R.IsAttr != WantAttr)
        continue;
      if (NeedsCpp(R))
        ++E.NeedsCpp;
      else
        ++E.PureIRDL;
    }
  return E;
}
} // namespace

CorpusStatistics::Expressibility
CorpusStatistics::typeParamExpressibility() const {
  return typeAttrExpr(Dialects, false,
                      [](const TypeAttrRecord &R) { return !R.ParamsInIRDL; });
}
CorpusStatistics::Expressibility
CorpusStatistics::typeVerifierExpressibility() const {
  return typeAttrExpr(Dialects, false, [](const TypeAttrRecord &R) {
    return R.NeedsCppVerifier;
  });
}
CorpusStatistics::Expressibility
CorpusStatistics::attrParamExpressibility() const {
  return typeAttrExpr(Dialects, true,
                      [](const TypeAttrRecord &R) { return !R.ParamsInIRDL; });
}
CorpusStatistics::Expressibility
CorpusStatistics::attrVerifierExpressibility() const {
  return typeAttrExpr(Dialects, true, [](const TypeAttrRecord &R) {
    return R.NeedsCppVerifier;
  });
}

CorpusStatistics::Expressibility
CorpusStatistics::opLocalConstraintExpressibility() const {
  return opLocalConstraintExpressibility({});
}
CorpusStatistics::Expressibility
CorpusStatistics::opVerifierExpressibility() const {
  return opVerifierExpressibility({});
}

CorpusStatistics::Expressibility
CorpusStatistics::opLocalConstraintExpressibility(
    std::string_view Dialect) const {
  Expressibility E;
  for (const DialectStatistics &D : Dialects) {
    if (!Dialect.empty() && D.Name != Dialect)
      continue;
    for (const OpRecord &R : D.Ops) {
      if (R.LocalConstraintsInIRDL)
        ++E.PureIRDL;
      else
        ++E.NeedsCpp;
    }
  }
  return E;
}

CorpusStatistics::Expressibility
CorpusStatistics::opVerifierExpressibility(std::string_view Dialect) const {
  Expressibility E;
  for (const DialectStatistics &D : Dialects) {
    if (!Dialect.empty() && D.Name != Dialect)
      continue;
    for (const OpRecord &R : D.Ops) {
      if (R.NeedsCppVerifier)
        ++E.NeedsCpp;
      else
        ++E.PureIRDL;
    }
  }
  return E;
}

std::map<CppConstraintKind, unsigned>
CorpusStatistics::localCppConstraintKinds() const {
  std::map<CppConstraintKind, unsigned> Kinds;
  for (const DialectStatistics &D : Dialects)
    for (const OpRecord &R : D.Ops)
      for (CppConstraintKind K : R.LocalCppKinds)
        ++Kinds[K];
  return Kinds;
}

double CorpusStatistics::dialectFractionWithOp(
    bool (*Pred)(const OpRecord &)) const {
  if (Dialects.empty())
    return 0.0;
  unsigned N = 0;
  for (const DialectStatistics &D : Dialects) {
    for (const OpRecord &R : D.Ops) {
      if (Pred(R)) {
        ++N;
        break;
      }
    }
  }
  return static_cast<double>(N) / Dialects.size();
}
