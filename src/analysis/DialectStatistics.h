//===- DialectStatistics.h - Section 6 evaluation tooling ----------*- C++ -*-===//
///
/// \file
/// The dialect introspection/statistics library behind the paper's
/// evaluation (Section 6) and the "IR Statistics" tooling of Figure 1.
/// Operates on resolved DialectSpecs: per-op records (operand/result/
/// attribute/region/variadic shapes, IRDL vs IRDL-C++ classification),
/// per-type/attribute records (parameter kinds, verifier classification),
/// and corpus-level aggregations for every figure.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_ANALYSIS_DIALECTSTATISTICS_H
#define IRDL_ANALYSIS_DIALECTSTATISTICS_H

#include "irdl/IRDL.h"

#include <array>
#include <map>
#include <string>
#include <vector>

namespace irdl {

/// The parameter kinds of Figure 8.
enum class ParamKind {
  AttrOrType,
  Integer,
  String,
  Float,
  Enum,
  Location,
  TypeId,
  DomainSpecific,
};

std::string_view paramKindName(ParamKind K);

/// Classifies one parameter constraint into its Figure 8 kind.
ParamKind classifyParamKind(const ConstraintPtr &C);

/// The Figure 12 categories of local constraints that need IRDL-C++.
/// Detection is by naming convention on named constraints plus a generic
/// fallback for anonymous C++ constraints.
enum class CppConstraintKind {
  IntegerInequality,
  StrideCheck,
  StructOpacity,
  Other,
};

std::string_view cppConstraintKindName(CppConstraintKind K);

/// Per-operation record.
struct OpRecord {
  std::string DialectName;
  std::string Name;
  unsigned NumOperandDefs = 0;
  unsigned NumVariadicOperandDefs = 0; // Variadic or Optional
  unsigned NumResultDefs = 0;
  unsigned NumVariadicResultDefs = 0;
  unsigned NumAttrDefs = 0;
  unsigned NumRegionDefs = 0;
  bool IsTerminator = false;
  bool LocalConstraintsInIRDL = true; // Figure 11a
  bool NeedsCppVerifier = false;      // Figure 11b
  /// Categories of local C++ constraints found on this op (Figure 12).
  std::vector<CppConstraintKind> LocalCppKinds;
};

/// Per-type/attribute record.
struct TypeAttrRecord {
  std::string DialectName;
  std::string Name;
  bool IsAttr = false;
  std::vector<ParamKind> ParamKinds;
  bool ParamsInIRDL = true;      // Figures 9a / 10a
  bool NeedsCppVerifier = false; // Figures 9b / 10b
};

/// All records of one dialect.
struct DialectStatistics {
  std::string Name;
  std::vector<OpRecord> Ops;
  std::vector<TypeAttrRecord> TypesAndAttrs;

  unsigned numOps() const { return Ops.size(); }
  unsigned numTypes() const;
  unsigned numAttrs() const;

  /// Fraction (0..1) of ops satisfying \p Pred.
  double opFraction(bool (*Pred)(const OpRecord &)) const;
};

/// A simple bucketed distribution (e.g. #ops with 0/1/2/3+ operands).
struct Distribution {
  /// Buckets 0..N-1, where the last bucket aggregates ">= N-1".
  std::vector<unsigned> Counts;
  unsigned Total = 0;

  explicit Distribution(unsigned NumBuckets = 4)
      : Counts(NumBuckets, 0) {}
  void add(unsigned ValueToBucket) {
    unsigned B = std::min<unsigned>(ValueToBucket, Counts.size() - 1);
    ++Counts[B];
    ++Total;
  }
  double fraction(unsigned Bucket) const {
    return Total ? static_cast<double>(Counts[Bucket]) / Total : 0.0;
  }
};

/// Corpus-level statistics: everything the evaluation section reports.
class CorpusStatistics {
public:
  /// Computes records for every dialect of \p Module. Dialects named
  /// "builtin"/"std" that come from the context rather than IRDL are not
  /// included (the module only holds IRDL-loaded dialects anyway).
  static CorpusStatistics
  compute(const std::vector<std::shared_ptr<DialectSpec>> &Dialects);

  const std::vector<DialectStatistics> &getDialects() const {
    return Dialects;
  }
  const DialectStatistics *lookup(std::string_view Name) const;

  unsigned totalOps() const;
  unsigned totalTypes() const;
  unsigned totalAttrs() const;

  /// Figure 5a / 6a / 7a-style distribution over all ops.
  Distribution operandCountDist() const;          // buckets 0,1,2,3+
  Distribution variadicOperandDist() const;       // buckets 0,1,2+
  Distribution resultCountDist() const;           // buckets 0,1,2+
  Distribution variadicResultDist() const;        // buckets 0,1+
  Distribution attrCountDist() const;             // buckets 0,1,2+
  Distribution regionCountDist() const;           // buckets 0,1,2+

  /// Per-dialect variants (series of Figures 5–7), same bucketing.
  Distribution operandCountDist(std::string_view Dialect) const;
  Distribution variadicOperandDist(std::string_view Dialect) const;
  Distribution resultCountDist(std::string_view Dialect) const;
  Distribution variadicResultDist(std::string_view Dialect) const;
  Distribution attrCountDist(std::string_view Dialect) const;
  Distribution regionCountDist(std::string_view Dialect) const;

  /// Figure 8: parameter-kind histograms, split for types and attributes.
  std::map<ParamKind, unsigned> typeParamKinds() const;
  std::map<ParamKind, unsigned> attrParamKinds() const;

  /// Figures 9/10: (#definitions whose params are pure IRDL, #needing
  /// IRDL-C++), and same for verifiers.
  struct Expressibility {
    unsigned PureIRDL = 0;
    unsigned NeedsCpp = 0;
    double cppFraction() const {
      unsigned T = PureIRDL + NeedsCpp;
      return T ? static_cast<double>(NeedsCpp) / T : 0.0;
    }
  };
  Expressibility typeParamExpressibility() const;
  Expressibility typeVerifierExpressibility() const;
  Expressibility attrParamExpressibility() const;
  Expressibility attrVerifierExpressibility() const;

  /// Figure 11: op local constraints and op verifiers.
  Expressibility opLocalConstraintExpressibility() const;
  Expressibility opVerifierExpressibility() const;
  Expressibility opLocalConstraintExpressibility(std::string_view D) const;
  Expressibility opVerifierExpressibility(std::string_view D) const;

  /// Figure 12: counts per local-C++-constraint category.
  std::map<CppConstraintKind, unsigned> localCppConstraintKinds() const;

  /// Fraction of dialects with at least one op satisfying \p Pred.
  double dialectFractionWithOp(bool (*Pred)(const OpRecord &)) const;

private:
  template <typename FieldFn>
  Distribution distOver(unsigned Buckets, FieldFn Field,
                        std::string_view Dialect = {}) const;

  std::vector<DialectStatistics> Dialects;
};

} // namespace irdl

#endif // IRDL_ANALYSIS_DIALECTSTATISTICS_H
