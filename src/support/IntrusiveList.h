//===- IntrusiveList.h - Doubly-linked intrusive list ----------*- C++ -*-===//
///
/// \file
/// A small intrusive doubly-linked list in the spirit of llvm::ilist. Nodes
/// derive from IntrusiveListNode<T> (CRTP); the list owns its nodes and
/// deletes them on destruction or erase(). Iterators remain valid across
/// insertions and across removals of *other* nodes, which is the property
/// the IR rewriting infrastructure depends on.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_INTRUSIVELIST_H
#define IRDL_SUPPORT_INTRUSIVELIST_H

#include <cassert>
#include <cstddef>
#include <iterator>

namespace irdl {

template <typename T>
class IntrusiveList;

/// Customization point for how an owning IntrusiveList destroys its nodes.
/// The default uses `delete`; arena-allocated node types (Operation)
/// specialize this to route destruction back to their allocator.
template <typename T>
struct IntrusiveListTraits {
  static void deleteNode(T *N) { delete N; }
};

/// Base class for nodes stored in an IntrusiveList<T>.
template <typename T>
class IntrusiveListNode {
public:
  IntrusiveListNode() = default;
  IntrusiveListNode(const IntrusiveListNode &) = delete;
  IntrusiveListNode &operator=(const IntrusiveListNode &) = delete;

  /// Returns the next node in the list, or null at the end.
  T *getNextNode() const {
    return Next && !Next->IsSentinel ? static_cast<T *>(Next) : nullptr;
  }

  /// Returns the previous node in the list, or null at the beginning.
  T *getPrevNode() const {
    return Prev && !Prev->IsSentinel ? static_cast<T *>(Prev) : nullptr;
  }

  /// Returns true if this node is currently linked into a list.
  bool isLinked() const { return Next != nullptr; }

private:
  friend class IntrusiveList<T>;
  IntrusiveListNode *Prev = nullptr;
  IntrusiveListNode *Next = nullptr;
  bool IsSentinel = false;
};

/// An owning intrusive doubly-linked list.
template <typename T>
class IntrusiveList {
  using Node = IntrusiveListNode<T>;

public:
  class iterator {
  public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T *;
    using reference = T &;

    iterator() = default;
    explicit iterator(Node *N) : Cur(N) {}

    reference operator*() const { return *static_cast<T *>(Cur); }
    pointer operator->() const { return static_cast<T *>(Cur); }
    iterator &operator++() {
      Cur = Cur->Next;
      return *this;
    }
    iterator operator++(int) {
      iterator Tmp = *this;
      ++*this;
      return Tmp;
    }
    iterator &operator--() {
      Cur = Cur->Prev;
      return *this;
    }
    iterator operator--(int) {
      iterator Tmp = *this;
      --*this;
      return Tmp;
    }
    bool operator==(const iterator &RHS) const { return Cur == RHS.Cur; }
    bool operator!=(const iterator &RHS) const { return Cur != RHS.Cur; }

    /// Returns the underlying node pointer.
    T *getNodePtr() const { return static_cast<T *>(Cur); }

  private:
    Node *Cur = nullptr;
  };

  IntrusiveList() {
    Sentinel.Prev = Sentinel.Next = &Sentinel;
    Sentinel.IsSentinel = true;
  }
  IntrusiveList(const IntrusiveList &) = delete;
  IntrusiveList &operator=(const IntrusiveList &) = delete;
  ~IntrusiveList() { clear(); }

  iterator begin() { return iterator(Sentinel.Next); }
  iterator end() { return iterator(&Sentinel); }
  iterator begin() const {
    return iterator(const_cast<Node *>(Sentinel.Next));
  }
  iterator end() const { return iterator(const_cast<Node *>(&Sentinel)); }

  bool empty() const { return Sentinel.Next == &Sentinel; }

  /// Returns the number of elements; O(n).
  size_t size() const {
    size_t N = 0;
    for (Node *Cur = Sentinel.Next; Cur != &Sentinel; Cur = Cur->Next)
      ++N;
    return N;
  }

  T &front() {
    assert(!empty() && "front() on empty list");
    return *static_cast<T *>(Sentinel.Next);
  }
  T &back() {
    assert(!empty() && "back() on empty list");
    return *static_cast<T *>(Sentinel.Prev);
  }

  /// Inserts \p N before \p Pos, taking ownership. Returns an iterator to N.
  iterator insert(iterator Pos, T *N) {
    Node *Where = Pos.getNodePtr();
    Node *NewNode = N;
    assert(!NewNode->isLinked() && "node is already in a list");
    NewNode->Prev = Where->Prev;
    NewNode->Next = Where;
    Where->Prev->Next = NewNode;
    Where->Prev = NewNode;
    return iterator(NewNode);
  }

  iterator push_back(T *N) { return insert(end(), N); }
  iterator push_front(T *N) { return insert(begin(), N); }

  /// Unlinks \p N from the list without deleting it; the caller takes
  /// ownership.
  T *remove(T *N) {
    Node *Cur = N;
    assert(Cur->isLinked() && "node is not in a list");
    Cur->Prev->Next = Cur->Next;
    Cur->Next->Prev = Cur->Prev;
    Cur->Prev = Cur->Next = nullptr;
    return N;
  }

  /// Unlinks and deletes \p N. Returns an iterator to the following node.
  iterator erase(T *N) {
    iterator Following(static_cast<Node *>(N)->Next);
    IntrusiveListTraits<T>::deleteNode(remove(N));
    return Following;
  }

  /// Unlinks and deletes every element.
  void clear() {
    Node *Cur = Sentinel.Next;
    while (Cur != &Sentinel) {
      Node *NextNode = Cur->Next;
      Cur->Prev = Cur->Next = nullptr;
      IntrusiveListTraits<T>::deleteNode(static_cast<T *>(Cur));
      Cur = NextNode;
    }
    Sentinel.Prev = Sentinel.Next = &Sentinel;
  }

  /// Moves all elements of \p Other before \p Pos.
  void splice(iterator Pos, IntrusiveList &Other) {
    if (Other.empty())
      return;
    Node *Where = Pos.getNodePtr();
    Node *First = Other.Sentinel.Next;
    Node *Last = Other.Sentinel.Prev;
    Other.Sentinel.Prev = Other.Sentinel.Next = &Other.Sentinel;
    First->Prev = Where->Prev;
    Where->Prev->Next = First;
    Last->Next = Where;
    Where->Prev = Last;
  }

private:
  Node Sentinel;
};

} // namespace irdl

#endif // IRDL_SUPPORT_INTRUSIVELIST_H
