//===- StringExtras.cpp ---------------------------------------------===//

#include "support/StringExtras.h"

using namespace irdl;

bool irdl::isIdentifierStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}

bool irdl::isIdentifierChar(char C) {
  return isIdentifierStart(C) || (C >= '0' && C <= '9');
}

bool irdl::isIdentifier(std::string_view Str) {
  if (Str.empty() || !isIdentifierStart(Str[0]))
    return false;
  for (char C : Str.substr(1))
    if (!isIdentifierChar(C))
      return false;
  return true;
}

std::string irdl::escapeString(std::string_view Str) {
  std::string Result;
  Result.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\t':
      Result += "\\t";
      break;
    default:
      Result += C;
    }
  }
  return Result;
}

std::optional<std::string> irdl::unescapeString(std::string_view Body) {
  std::string Result;
  Result.reserve(Body.size());
  for (size_t I = 0, E = Body.size(); I != E; ++I) {
    if (Body[I] != '\\') {
      Result += Body[I];
      continue;
    }
    if (++I == E)
      return std::nullopt;
    switch (Body[I]) {
    case '"':
      Result += '"';
      break;
    case '\\':
      Result += '\\';
      break;
    case 'n':
      Result += '\n';
      break;
    case 't':
      Result += '\t';
      break;
    default:
      return std::nullopt;
    }
  }
  return Result;
}

std::vector<std::string_view> irdl::splitString(std::string_view Str,
                                                char Sep) {
  std::vector<std::string_view> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Str.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Pieces.push_back(Str.substr(Start));
      return Pieces;
    }
    Pieces.push_back(Str.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::optional<uint64_t> irdl::parseUInt(std::string_view Str) {
  if (Str.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : Str) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = C - '0';
    if (Value > (UINT64_MAX - Digit) / 10)
      return std::nullopt;
    Value = Value * 10 + Digit;
  }
  return Value;
}

std::string irdl::join(const std::vector<std::string> &Pieces,
                       std::string_view Sep) {
  std::string Result;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Pieces[I];
  }
  return Result;
}
