//===- Hashing.h - hash_combine helpers -------------------------*- C++ -*-===//
///
/// \file
/// Hash combinators used by the context-uniquing maps for types and
/// attributes, plus the stable 64-bit content hash (FNV-1a) used by the
/// spec cache and the `.irbc` Meta section.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_HASHING_H
#define IRDL_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace irdl {

/// Mixes \p Value into \p Seed (boost-style).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes each argument and combines them into one value.
template <typename... Ts>
size_t hashValues(const Ts &...Values) {
  size_t Seed = 0;
  (hashCombine(Seed, std::hash<Ts>{}(Values)), ...);
  return Seed;
}

/// FNV-1a offset basis: the seed for a fresh fnv1a64 chain.
inline constexpr uint64_t Fnv1a64Init = 0xcbf29ce484222325ULL;

/// 64-bit FNV-1a over \p Data, continuing from \p Seed. Unlike
/// hashValues this is a *stable* hash — the same bytes hash to the same
/// value on every platform and in every process — so it is safe to
/// persist (on-disk spec cache, `.irbc` Meta section) and to compare
/// across fleet members.
inline uint64_t fnv1a64(std::string_view Data, uint64_t Seed = Fnv1a64Init) {
  uint64_t H = Seed;
  for (char C : Data) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

} // namespace irdl

#endif // IRDL_SUPPORT_HASHING_H
