//===- Hashing.h - hash_combine helpers -------------------------*- C++ -*-===//
///
/// \file
/// Hash combinators used by the context-uniquing maps for types and
/// attributes.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_HASHING_H
#define IRDL_SUPPORT_HASHING_H

#include <cstddef>
#include <functional>

namespace irdl {

/// Mixes \p Value into \p Seed (boost-style).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes each argument and combines them into one value.
template <typename... Ts>
size_t hashValues(const Ts &...Values) {
  size_t Seed = 0;
  (hashCombine(Seed, std::hash<Ts>{}(Values)), ...);
  return Seed;
}

} // namespace irdl

#endif // IRDL_SUPPORT_HASHING_H
