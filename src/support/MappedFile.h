//===- MappedFile.h - Read-only memory-mapped files --------------*- C++ -*-===//
///
/// \file
/// RAII wrapper over a read-only `mmap` of a whole file. The bytecode
/// reader uses this to back compiled constraint-program storage directly
/// by the page cache — loading a spec becomes `open` + `mmap` + a hash
/// check instead of a copy of the whole buffer. When mapping is
/// unavailable (pipes, exotic filesystems, empty files) the class falls
/// back to an in-memory read, so callers always get a valid view.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_MAPPEDFILE_H
#define IRDL_SUPPORT_MAPPEDFILE_H

#include <memory>
#include <string>
#include <string_view>

namespace irdl {

/// An immutable view of a file's bytes, mmap-backed when possible. The
/// object owns the mapping; keep it (e.g. via shared_ptr) alive for as
/// long as any view into data() is dereferenced.
class MappedFile {
public:
  /// Opens and maps \p Path read-only. Returns nullptr and fills
  /// \p Error on failure (missing file, directory, I/O error).
  static std::shared_ptr<MappedFile> open(const std::string &Path,
                                          std::string &Error);

  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile();

  std::string_view data() const { return {Bytes, Size}; }
  size_t size() const { return Size; }

  /// True when data() aliases an actual mmap (as opposed to the
  /// read-into-memory fallback). Exposed for tests and benchmarks.
  bool isMapped() const { return Mapping != nullptr; }

private:
  MappedFile() = default;

  const char *Bytes = nullptr;
  size_t Size = 0;
  void *Mapping = nullptr;   // munmap target, null for the fallback
  std::string Fallback;      // owns the bytes when not mapped
};

} // namespace irdl

#endif // IRDL_SUPPORT_MAPPEDFILE_H
