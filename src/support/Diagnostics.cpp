//===- Diagnostics.cpp ----------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace irdl;

std::string_view irdl::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Remark:
    return "remark";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

Diagnostic &DiagnosticEngine::emit(Severity S, SMLoc Loc,
                                   std::string Message) {
  if (S == Severity::Error)
    ++NumErrors;
  Diags.emplace_back(S, Loc, std::move(Message));
  Diagnostic &D = Diags.back();
  if (Handler)
    Handler(D);
  return D;
}

Diagnostic &DiagnosticEngine::replay(const Diagnostic &D) {
  Diagnostic &New = emit(D.getSeverity(), D.getLocation(), D.getMessage());
  for (const auto &[NoteLoc, NoteMsg] : D.getNotes())
    New.attachNote(NoteLoc, NoteMsg);
  return New;
}

static void renderOne(std::ostringstream &OS, const SourceMgr *SrcMgr,
                      Severity S, SMLoc Loc, const std::string &Message) {
  if (SrcMgr && Loc.isValid()) {
    SMLineAndColumn LC = SrcMgr->getLineAndColumn(Loc);
    if (LC.Line != 0) {
      OS << LC.BufferName << ":" << LC.Line << ":" << LC.Column << ": "
         << severityName(S) << ": " << Message << "\n";
      OS << LC.LineText << "\n";
      for (unsigned I = 1; I < LC.Column; ++I)
        OS << (LC.LineText[I - 1] == '\t' ? '\t' : ' ');
      OS << "^";
      return;
    }
  }
  OS << severityName(S) << ": " << Message;
}

std::string DiagnosticEngine::render(const Diagnostic &D) const {
  std::ostringstream OS;
  renderOne(OS, SrcMgr, D.getSeverity(), D.getLocation(), D.getMessage());
  for (const auto &[NoteLoc, NoteMsg] : D.getNotes()) {
    OS << "\n";
    renderOne(OS, SrcMgr, Severity::Note, NoteLoc, NoteMsg);
  }
  return OS.str();
}

std::string DiagnosticEngine::renderAll() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << render(D) << "\n";
  return OS.str();
}
