//===- Statistic.h - Cheap named counters ------------------------*- C++ -*-===//
///
/// \file
/// LLVM-`STATISTIC`-style counters: a Statistic is a named atomic counter
/// that registers itself with a process-wide registry at construction and
/// costs one relaxed atomic increment per bump. Instrumented code declares
/// counters at file scope with
///
///   IRDL_STATISTIC(Verifier, NumConstraintEvals, "constraint evals");
///   ...
///   ++NumConstraintEvals;
///
/// and drivers dump the registry sorted by (group, name) as a table or as
/// machine-readable JSON. Statistics stay enabled regardless of
/// IRDL_ENABLE_TIMING — they are cheap enough to always collect.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_STATISTIC_H
#define IRDL_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace irdl {

/// One named counter. Construction registers it permanently with the
/// StatisticRegistry, so instances must have static storage duration.
class Statistic {
public:
  Statistic(const char *Group, const char *Name, const char *Desc);

  Statistic(const Statistic &) = delete;
  Statistic &operator=(const Statistic &) = delete;

  const char *getGroup() const { return Group; }
  const char *getName() const { return Name; }
  const char *getDesc() const { return Desc; }

  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  void inc(uint64_t N = 1) {
    Value.fetch_add(N, std::memory_order_relaxed);
  }
  Statistic &operator++() {
    inc();
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    inc(N);
    return *this;
  }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Value{0};
};

/// The process-wide set of all Statistic instances.
class StatisticRegistry {
public:
  static StatisticRegistry &instance();

  void add(Statistic *S);

  /// All registered statistics, sorted by (group, name).
  std::vector<Statistic *> getAll() const;

  /// Looks up one statistic; null if absent.
  Statistic *lookup(std::string_view Group, std::string_view Name) const;

  /// Aligned "value group.name - description" table; zero-valued
  /// counters are skipped unless \p IncludeZero.
  std::string renderTable(bool IncludeZero = false) const;

  /// JSON array [{"group":...,"name":...,"value":N,"desc":...},...].
  std::string renderJson(bool IncludeZero = false) const;

  /// Zeroes every registered counter (bench/test isolation).
  void resetAll();

private:
  StatisticRegistry() = default;
  mutable std::mutex Mu;
  std::vector<Statistic *> Stats;
};

/// Declares a file-local statistic named VARNAME in group GROUP.
#define IRDL_STATISTIC(GROUP, VARNAME, DESC)                                \
  static ::irdl::Statistic VARNAME(#GROUP, #VARNAME, DESC)

} // namespace irdl

#endif // IRDL_SUPPORT_STATISTIC_H
