//===- Metrics.h - Labeled runtime metrics -----------------------*- C++ -*-===//
///
/// \file
/// The service-telemetry layer of the observability stack: a process-wide
/// registry of labeled **counters**, **gauges**, and **log-bucketed
/// histograms**, built for a long-lived daemon (`irdl_serve`) where the
/// operational contract is rates (memo-cache hit ratio), distributions
/// (p50/p99 verification latency), and utilization (thread-pool queue
/// depth) — questions the run-scoped TimerGroup/Statistic layers cannot
/// answer.
///
/// Design points:
///
///  * **Labels.** A metric series is identified by (name, label set);
///    series of the same name form a family sharing one HELP/TYPE header
///    in the Prometheus exposition. `MetricsRegistry::getCounter(name,
///    help, labels)` returns the canonical instance, so call sites cache
///    it in a function-local `static Counter &`.
///
///  * **Per-thread sharding.** Every series holds a fixed array of
///    cache-line-aligned atomic cells; a thread records into the cell
///    picked by its (round-robin assigned) thread shard index and scrapes
///    merge all cells. This mirrors the 16-way sharding of the IRContext
///    uniquer and the constraint memo cache: concurrent recorders on
///    different threads almost never touch the same cache line, and a
///    record is a single relaxed RMW — no locks anywhere on the hot path.
///
///  * **Log-bucketed histograms.** 64 buckets, bucket `i` holding values
///    whose bit width is `i` (i.e. `[2^(i-1), 2^i)`; 0 lands in bucket 0,
///    everything >= 2^62 in bucket 63). p50/p90/p99/max come straight
///    from the merged bucket counts without sampling or reservoirs; a
///    percentile estimate is the upper edge of its bucket, so it is
///    always within one power-of-2 bucket boundary of the exact value.
///
///  * **Zero cost when off.** Recording is *unconditional* at the metric
///    object level; instrumented call sites guard with
///    `if (irdl::metricsEnabled())` — one relaxed atomic load and a
///    predictable branch — so a build with metrics disabled (the default
///    for one-shot runs) pays nothing measurable on the verifier hot
///    path. Drivers flip the flag with `--metrics` / `--metrics-json`.
///
/// Exporters: Prometheus text exposition format (`renderPrometheus`) and
/// JSON (`renderJson`, with precomputed p50/p90/p99 per histogram).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_METRICS_H
#define IRDL_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace irdl {

//===----------------------------------------------------------------------===//
// Global enable flag
//===----------------------------------------------------------------------===//

namespace detail {
extern std::atomic<bool> MetricsEnabledFlag;
/// The calling thread's shard slot, assigned round-robin on first use.
unsigned metricsShardIndex();
} // namespace detail

/// True when instrumented call sites should record. Library
/// instrumentation guards every record with this; direct users of metric
/// objects (benches, tests) may record unconditionally.
inline bool metricsEnabled() {
  return detail::MetricsEnabledFlag.load(std::memory_order_relaxed);
}
/// Flips collection on/off process-wide (drivers: --metrics).
void setMetricsEnabled(bool Enabled);

/// Label set of one series: (key, value) pairs. Canonicalized (sorted by
/// key) by the registry, so {{"a","1"},{"b","2"}} and the reverse name
/// the same series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

//===----------------------------------------------------------------------===//
// Series types
//===----------------------------------------------------------------------===//

namespace detail {
/// One cache-line-padded atomic cell of a sharded series.
struct alignas(64) MetricCell {
  std::atomic<uint64_t> V{0};
};
constexpr unsigned NumMetricShards = 16;
} // namespace detail

/// A monotonically increasing counter (merged over shards on read).
class Counter {
public:
  void inc(uint64_t N = 1) {
    Shards[detail::metricsShardIndex()].V.fetch_add(
        N, std::memory_order_relaxed);
  }
  /// Sum of all shards.
  uint64_t get() const;
  void reset();

  const MetricLabels &getLabels() const { return Labels; }

private:
  friend class MetricsRegistry;
  explicit Counter(MetricLabels L) : Labels(std::move(L)) {}
  MetricLabels Labels;
  std::array<detail::MetricCell, detail::NumMetricShards> Shards;
};

/// A value that can go up and down. add/sub are sharded deltas (safe
/// concurrently); set() rewrites the whole gauge and is only meaningful
/// when a single writer owns the series (e.g. pool size at startup).
class Gauge {
public:
  void add(int64_t N) {
    Shards[detail::metricsShardIndex()].V.fetch_add(
        (uint64_t)N, std::memory_order_relaxed);
  }
  void sub(int64_t N) { add(-N); }
  void inc() { add(1); }
  void dec() { add(-1); }
  void set(int64_t V);
  /// Sum of all shard deltas (two's complement wraps cancel out).
  int64_t get() const;
  void reset();

  const MetricLabels &getLabels() const { return Labels; }

private:
  friend class MetricsRegistry;
  explicit Gauge(MetricLabels L) : Labels(std::move(L)) {}
  MetricLabels Labels;
  std::array<detail::MetricCell, detail::NumMetricShards> Shards;
};

/// Merged point-in-time view of a histogram (all shards summed).
struct HistogramSnapshot {
  static constexpr unsigned NumBuckets = 64;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
  std::array<uint64_t, NumBuckets> Buckets{}; // incremental, not cumulative

  /// Upper edge (inclusive) of bucket \p I: 0 for bucket 0, 2^I - 1
  /// otherwise (bucket 63 is open-ended; its edge is 2^63 - 1).
  static uint64_t bucketUpperEdge(unsigned I) {
    return I == 0 ? 0 : (I >= 63 ? ~uint64_t(0) >> 1 : (uint64_t(1) << I) - 1);
  }

  /// The estimate for quantile \p Q in [0,1]: the upper edge of the
  /// bucket containing the Q-th ranked sample (0 when empty). Always
  /// within one bucket boundary of the exact order statistic.
  uint64_t quantile(double Q) const;
};

/// A log-bucketed (power-of-2) histogram of uint64 samples, typically
/// nanoseconds. Fixed 64-bucket layout; see HistogramSnapshot.
class Histogram {
public:
  void record(uint64_t V) {
    Shard &S = Shards[detail::metricsShardIndex()];
    S.Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(V, std::memory_order_relaxed);
    // Racy max via CAS: rarely contended (new maxima are rare).
    uint64_t Cur = S.Max.load(std::memory_order_relaxed);
    while (V > Cur &&
           !S.Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  HistogramSnapshot snapshot() const;
  void reset();

  const MetricLabels &getLabels() const { return Labels; }

  /// Bucket index of \p V: 0 for 0, bit_width(V) clamped to 63 otherwise.
  static unsigned bucketOf(uint64_t V);

private:
  friend class MetricsRegistry;
  explicit Histogram(MetricLabels L) : Labels(std::move(L)) {}

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, HistogramSnapshot::NumBuckets>
        Buckets{};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Max{0};
  };
  MetricLabels Labels;
  std::array<Shard, detail::NumMetricShards> Shards;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// The process-wide set of metric families. Series are created on first
/// request and live for the process (references stay valid forever), so
/// instrumented sites cache them in function-local statics:
///
///   static Counter &Hits = MetricsRegistry::instance().getCounter(
///       "irdl_constraint_memo_hits_total", "verification-cache hits");
///   ...
///   if (metricsEnabled())
///     Hits.inc();
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  /// Returns the canonical series of (name, labels), creating the family
  /// and/or series on first use. Requesting an existing name with a
  /// different type asserts.
  Counter &getCounter(std::string_view Name, std::string_view Help,
                      MetricLabels Labels = {});
  Gauge &getGauge(std::string_view Name, std::string_view Help,
                  MetricLabels Labels = {});
  Histogram &getHistogram(std::string_view Name, std::string_view Help,
                          MetricLabels Labels = {});

  /// Prometheus text exposition format, families sorted by name and
  /// series by label signature; histogram buckets are cumulative `le`
  /// series (sparse: empty buckets are skipped) plus _sum/_count.
  std::string renderPrometheus() const;

  /// {"counters":[{name,labels,value}...],"gauges":[...],
  ///  "histograms":[{name,labels,count,sum,max,p50,p90,p99,buckets}...]}
  /// with the same deterministic ordering as renderPrometheus.
  std::string renderJson() const;

  /// Zeroes every series' cells (bench/test isolation); series and
  /// families stay registered.
  void resetAll();

private:
  MetricsRegistry() = default;

  enum class Kind { Counter, Gauge, Histogram };
  struct Family {
    std::string Name;
    std::string Help;
    Kind K;
    /// (canonical label signature, series), insertion-ordered; rendering
    /// sorts by signature.
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>> Counters;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> Gauges;
    std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>
        Histograms;
  };

  Family &getFamily(std::string_view Name, std::string_view Help, Kind K);

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Family>> Families;
};

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string escapePrometheusLabelValue(std::string_view V);

} // namespace irdl

#endif // IRDL_SUPPORT_METRICS_H
