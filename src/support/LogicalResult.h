//===- LogicalResult.h - MLIR-style success/failure -------------*- C++ -*-===//
///
/// \file
/// A two-state result type for operations that can fail but report their
/// details through a DiagnosticEngine, mirroring mlir::LogicalResult.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_LOGICALRESULT_H
#define IRDL_SUPPORT_LOGICALRESULT_H

namespace irdl {

class LogicalResult {
public:
  static LogicalResult success(bool IsSuccess = true) {
    return LogicalResult(IsSuccess);
  }
  static LogicalResult failure(bool IsFailure = true) {
    return LogicalResult(!IsFailure);
  }

  bool succeeded() const { return IsSuccess; }
  bool failed() const { return !IsSuccess; }

private:
  explicit LogicalResult(bool IsSuccess) : IsSuccess(IsSuccess) {}
  bool IsSuccess;
};

inline LogicalResult success() { return LogicalResult::success(); }
inline LogicalResult failure() { return LogicalResult::failure(); }
inline bool succeeded(LogicalResult R) { return R.succeeded(); }
inline bool failed(LogicalResult R) { return R.failed(); }

} // namespace irdl

#endif // IRDL_SUPPORT_LOGICALRESULT_H
