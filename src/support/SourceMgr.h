//===- SourceMgr.h - Source buffers and locations --------------*- C++ -*-===//
///
/// \file
/// Owns source buffers and maps raw pointer locations (SMLoc) back to
/// buffer/line/column for diagnostics, in the spirit of llvm::SourceMgr.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_SOURCEMGR_H
#define IRDL_SUPPORT_SOURCEMGR_H

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace irdl {

/// A location in a source buffer, represented as a raw character pointer.
class SMLoc {
public:
  SMLoc() = default;

  static SMLoc getFromPointer(const char *Ptr) {
    SMLoc Loc;
    Loc.Ptr = Ptr;
    return Loc;
  }

  bool isValid() const { return Ptr != nullptr; }
  const char *getPointer() const { return Ptr; }

  bool operator==(const SMLoc &RHS) const { return Ptr == RHS.Ptr; }
  bool operator!=(const SMLoc &RHS) const { return Ptr != RHS.Ptr; }

private:
  const char *Ptr = nullptr;
};

/// A half-open range of locations within one buffer.
class SMRange {
public:
  SMRange() = default;
  SMRange(SMLoc Start, SMLoc End) : Start(Start), End(End) {}

  bool isValid() const { return Start.isValid(); }
  SMLoc getStart() const { return Start; }
  SMLoc getEnd() const { return End; }

private:
  SMLoc Start, End;
};

/// Line and column (both 1-based) of a location, plus its buffer name.
struct SMLineAndColumn {
  std::string_view BufferName;
  unsigned Line = 0;
  unsigned Column = 0;
  /// The full text of the line containing the location.
  std::string_view LineText;
};

/// Owns a set of source buffers and resolves SMLocs against them.
class SourceMgr {
public:
  /// Adds a buffer; returns its id (1-based). The contents are copied and
  /// remain valid for the lifetime of the SourceMgr.
  unsigned addBuffer(std::string Contents, std::string Name);

  unsigned getNumBuffers() const { return Buffers.size(); }

  /// Returns the contents of buffer \p Id.
  std::string_view getBufferContents(unsigned Id) const {
    assert(Id >= 1 && Id <= Buffers.size() && "invalid buffer id");
    return Buffers[Id - 1]->Contents;
  }

  std::string_view getBufferName(unsigned Id) const {
    assert(Id >= 1 && Id <= Buffers.size() && "invalid buffer id");
    return Buffers[Id - 1]->Name;
  }

  /// Returns the start-of-buffer location for buffer \p Id.
  SMLoc getBufferStart(unsigned Id) const {
    return SMLoc::getFromPointer(getBufferContents(Id).data());
  }

  /// Finds the buffer containing \p Loc, or 0 if unknown.
  unsigned findBufferContaining(SMLoc Loc) const;

  /// Resolves \p Loc to a (buffer name, line, column, line text) tuple.
  /// Returns a zeroed record if the location is not in any buffer.
  SMLineAndColumn getLineAndColumn(SMLoc Loc) const;

private:
  struct Buffer {
    std::string Contents;
    std::string Name;
  };
  std::vector<std::unique_ptr<Buffer>> Buffers;
};

} // namespace irdl

#endif // IRDL_SUPPORT_SOURCEMGR_H
