//===- Signal.cpp -----------------------------------------------------===//

#include "support/Signal.h"

#include <atomic>
#include <csignal>
#include <utility>

#include <unistd.h>

using namespace irdl;

namespace {

enum class Mode { None, ExitFlush, StopNotify };

// Signal handlers cannot carry closures, so the installed callback lives in
// a process-wide slot. Only one irdl handler is active at a time (drivers
// install exactly one, in main, before spawning work).
std::function<void()> &callbackSlot() {
  static std::function<void()> Callback;
  return Callback;
}

std::atomic<Mode> ActiveMode{Mode::None};
std::atomic<bool> HandlerEntered{false};

void handleSignal(int Signo) {
  // Second signal while the first is still being serviced: the flush (or
  // the graceful shutdown it requested) is stuck — bail out hard.
  if (HandlerEntered.exchange(true, std::memory_order_acq_rel))
    _exit(128 + Signo);
  Mode M = ActiveMode.load(std::memory_order_acquire);
  if (auto &Callback = callbackSlot())
    Callback();
  if (M == Mode::ExitFlush)
    _exit(128 + Signo);
  // StopNotify: return and let the interrupted thread resume; the server
  // loop observes its stop flag and unwinds normally.
  HandlerEntered.store(false, std::memory_order_release);
}

void installHandler(Mode M, std::function<void()> Callback) {
  callbackSlot() = std::move(Callback);
  ActiveMode.store(M, std::memory_order_release);
  struct sigaction SA;
  SA.sa_handler = handleSignal;
  sigemptyset(&SA.sa_mask);
  // Block the sibling signal while handling one so flush runs at most once.
  sigaddset(&SA.sa_mask, SIGINT);
  sigaddset(&SA.sa_mask, SIGTERM);
  SA.sa_flags = 0; // No SA_RESTART: blocking accept/recv must return EINTR.
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

} // namespace

void irdl::installExitFlushHandler(std::function<void()> Flush) {
  installHandler(Mode::ExitFlush, std::move(Flush));
}

void irdl::installStopNotifyHandler(std::function<void()> Notify) {
  installHandler(Mode::StopNotify, std::move(Notify));
}
