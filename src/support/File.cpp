//===- File.cpp -----------------------------------------------------===//

#include "support/File.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace irdl;

LogicalResult irdl::readFileToString(const std::string &Path,
                                     std::string &Out, std::string &Error) {
  std::error_code EC;
  std::filesystem::file_status Status = std::filesystem::status(Path, EC);
  if (EC || Status.type() == std::filesystem::file_type::not_found) {
    Error = "cannot open '" + Path + "': no such file";
    return failure();
  }
  if (std::filesystem::is_directory(Status)) {
    Error = "cannot read '" + Path + "': is a directory";
    return failure();
  }

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return failure();
  }
  std::ostringstream Contents;
  Contents << In.rdbuf();
  if (In.bad()) {
    Error = "error reading '" + Path + "'";
    return failure();
  }
  Out = Contents.str();
  return success();
}
