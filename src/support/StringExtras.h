//===- StringExtras.h - String helpers --------------------------*- C++ -*-===//
///
/// \file
/// Small string utilities shared across the project: identifier predicates,
/// escaping for the textual IR format, splitting, and formatting helpers.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_STRINGEXTRAS_H
#define IRDL_SUPPORT_STRINGEXTRAS_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace irdl {

/// Returns true for [a-zA-Z_].
bool isIdentifierStart(char C);
/// Returns true for [a-zA-Z0-9_].
bool isIdentifierChar(char C);
/// Returns true if \p Str is a non-empty identifier.
bool isIdentifier(std::string_view Str);

/// Escapes a string for inclusion in a double-quoted literal.
std::string escapeString(std::string_view Str);

/// Unescapes the body of a double-quoted literal (without the quotes).
/// Returns std::nullopt on a malformed escape.
std::optional<std::string> unescapeString(std::string_view Body);

/// Splits \p Str on \p Sep; empty pieces are kept.
std::vector<std::string_view> splitString(std::string_view Str, char Sep);

/// Returns true if \p Str starts with \p Prefix.
inline bool startsWith(std::string_view Str, std::string_view Prefix) {
  return Str.substr(0, Prefix.size()) == Prefix;
}

/// Parses a decimal unsigned integer; returns nullopt on failure/overflow.
std::optional<uint64_t> parseUInt(std::string_view Str);

/// Joins \p Pieces with \p Sep.
std::string join(const std::vector<std::string> &Pieces,
                 std::string_view Sep);

} // namespace irdl

#endif // IRDL_SUPPORT_STRINGEXTRAS_H
