//===- Timing.h - Hierarchical execution timers ------------------*- C++ -*-===//
///
/// \file
/// Hierarchical wall-clock timing in the spirit of MLIR's `-mlir-timing`:
/// a TimerGroup owns an aggregated tree of timing nodes, and TimingScope
/// is the RAII handle that opens one node for the duration of a scope.
/// Scopes nest (per thread, via thread-local cursors inside the group),
/// and scopes with the same name under the same parent aggregate into one
/// node with a count. The group renders either a human-readable tree
/// report (wall time, count, % of parent, exclusive time) or a Chrome
/// `chrome://tracing` / Perfetto-compatible trace-event JSON file.
///
/// Instrumentation sites in the library use IRDL_TIME_SCOPE("name"),
/// which times against the process-wide *active* timer group — a plain
/// pointer that drivers install around the work they want profiled and
/// that defaults to null (scopes are then single-branch no-ops). With the
/// CMake option IRDL_ENABLE_TIMING=OFF the macro and TimingScope compile
/// away entirely.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_TIMING_H
#define IRDL_SUPPORT_TIMING_H

// Defined to 0/1 by the build (CMake option IRDL_ENABLE_TIMING); default
// to enabled for out-of-tree includes.
#ifndef IRDL_ENABLE_TIMING
#define IRDL_ENABLE_TIMING 1
#endif

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace irdl {

/// Returns a monotonic timestamp in nanoseconds (steady_clock).
uint64_t steadyNowNs();

/// An aggregated tree of named timers plus the flat trace-event log
/// needed for Chrome trace export. Thread-safe: concurrent scopes on
/// different threads maintain independent nesting stacks.
class TimerGroup {
public:
  /// One node of the timing tree. Scopes with the same name under the
  /// same parent share a node; WallNs/Count accumulate.
  class Node {
  public:
    const std::string &getName() const { return Name; }
    uint64_t getWallNs() const { return WallNs; }
    uint64_t getCount() const { return Count; }
    const std::vector<std::unique_ptr<Node>> &getChildren() const {
      return Children;
    }
    /// Sum of the children's wall times.
    uint64_t getChildrenWallNs() const;
    /// Time spent in this node but not in any child (clamped at zero:
    /// concurrent child scopes on other threads can exceed the parent).
    uint64_t getExclusiveNs() const;
    /// Returns the child named \p Name, or null.
    const Node *findChild(std::string_view Name) const;

  private:
    friend class TimerGroup;
    Node *getOrCreateChild(std::string_view ChildName);

    std::string Name;
    uint64_t WallNs = 0;
    uint64_t Count = 0;
    Node *Parent = nullptr;
    std::vector<std::unique_ptr<Node>> Children;
  };

  explicit TimerGroup(std::string Name = "total");
  ~TimerGroup();

  TimerGroup(const TimerGroup &) = delete;
  TimerGroup &operator=(const TimerGroup &) = delete;

  const std::string &getName() const { return GroupName; }

  /// The synthetic root; its wall time is the sum of the top-level
  /// scopes and its children are the outermost timed scopes.
  const Node &getRoot() const { return *Root; }

  /// Opens a scope named \p Name under the calling thread's current
  /// cursor and returns its node; \p StartNsOut receives the start
  /// timestamp to pass back to endScope. Used by TimingScope.
  Node *startScope(std::string_view Name, uint64_t &StartNsOut);
  /// Closes \p N (which must be the innermost open scope of this
  /// thread), accumulating elapsed time and recording a trace event.
  void endScope(Node *N, uint64_t StartNs);

  /// The calling thread's innermost open node, or null at top level.
  /// parallelFor captures this on the submitting thread to re-parent the
  /// workers' scopes.
  Node *currentThreadNode() const;
  /// Pushes \p Cursor as a borrowed base frame of the calling thread's
  /// nesting stack: subsequent scopes on this thread nest under it, but
  /// no time is accumulated for the frame itself (the thread that really
  /// opened the scope accounts it). Must be balanced by popThreadFrame.
  void pushThreadFrame(Node *Cursor);
  void popThreadFrame();

  /// Drops all recorded timings, trace events, and open-scope state.
  void clear();

  /// Human-readable tree report: wall ms, count, % of parent, exclusive
  /// ms per node.
  std::string renderTree() const;

  /// Chrome trace-event JSON ("traceEvents" with complete 'X' events,
  /// microsecond timestamps) loadable by chrome://tracing and Perfetto.
  std::string renderTraceJson(std::string_view ProcessName = "irdl") const;

  /// Machine-readable summary of the aggregated tree:
  /// {"group":..., "total_wall_ms":..., "tree":{name,wall_ms,count,
  ///  children:[...]}}.
  std::string renderJsonSummary() const;

private:
  struct TraceEvent {
    std::string Name;
    uint64_t TsNs;  // relative to the group's epoch
    uint64_t DurNs;
    uint32_t Tid;
  };

  mutable std::mutex Mu;
  std::string GroupName;
  std::unique_ptr<Node> Root;
  std::unordered_map<std::thread::id, std::vector<Node *>> Stacks;
  std::unordered_map<std::thread::id, uint32_t> TidMap;
  std::vector<TraceEvent> Events;
  uint64_t EpochNs;
};

/// The process-wide group IRDL_TIME_SCOPE records into (null by default:
/// library scopes are no-ops until a driver installs a group).
TimerGroup *getActiveTimerGroup();
/// Installs \p G as the active group; pass null to disable. Returns the
/// previously active group so callers can restore it.
TimerGroup *setActiveTimerGroup(TimerGroup *G);

/// RAII handle for one timed scope. A null group makes it a no-op.
class TimingScope {
public:
#if IRDL_ENABLE_TIMING
  TimingScope(TimerGroup *Group, std::string_view Name) {
    if (Group) {
      G = Group;
      N = Group->startScope(Name, StartNs);
    }
  }
  TimingScope(TimerGroup &Group, std::string_view Name)
      : TimingScope(&Group, Name) {}
  ~TimingScope() { stop(); }

  /// Ends the scope early (idempotent).
  void stop() {
    if (G) {
      G->endScope(N, StartNs);
      G = nullptr;
    }
  }

private:
  TimerGroup *G = nullptr;
  TimerGroup::Node *N = nullptr;
  uint64_t StartNs = 0;
#else
  TimingScope(TimerGroup *, std::string_view) {}
  TimingScope(TimerGroup &, std::string_view) {}
  void stop() {}
#endif

public:
  TimingScope(const TimingScope &) = delete;
  TimingScope &operator=(const TimingScope &) = delete;
};

#if IRDL_ENABLE_TIMING
#define IRDL_TIME_CONCAT_IMPL(A, B) A##B
#define IRDL_TIME_CONCAT(A, B) IRDL_TIME_CONCAT_IMPL(A, B)
/// Times the enclosing scope under NAME in the active timer group.
#define IRDL_TIME_SCOPE(NAME)                                               \
  ::irdl::TimingScope IRDL_TIME_CONCAT(IrdlTimingScope_, __LINE__)(         \
      ::irdl::getActiveTimerGroup(), NAME)
#else
#define IRDL_TIME_SCOPE(NAME) ((void)0)
#endif

} // namespace irdl

#endif // IRDL_SUPPORT_TIMING_H
