//===- Socket.cpp -----------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace irdl;

void FileDescriptor::reset() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

namespace {
std::string errnoString() { return std::strerror(errno); }

/// Fills a sockaddr_un for \p Path; rejects paths longer than the
/// sun_path limit (typically 107 bytes) instead of silently truncating.
bool fillAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string &Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + Path + "' is empty or longer than " +
            std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}
} // namespace

FileDescriptor irdl::listenUnixSocket(const std::string &Path,
                                      std::string &Error, int Backlog) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return FileDescriptor();
  FileDescriptor Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Fd.isValid()) {
    Error = "socket: " + errnoString();
    return FileDescriptor();
  }
  // Stale socket files from a previous run would make bind fail.
  ::unlink(Path.c_str());
  if (::bind(Fd.get(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    Error = "bind '" + Path + "': " + errnoString();
    return FileDescriptor();
  }
  if (::listen(Fd.get(), Backlog) != 0) {
    Error = "listen '" + Path + "': " + errnoString();
    return FileDescriptor();
  }
  return Fd;
}

FileDescriptor irdl::connectUnixSocket(const std::string &Path,
                                       std::string &Error) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return FileDescriptor();
  FileDescriptor Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Fd.isValid()) {
    Error = "socket: " + errnoString();
    return FileDescriptor();
  }
  int Rc;
  do {
    Rc = ::connect(Fd.get(), reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0) {
    Error = "connect '" + Path + "': " + errnoString();
    return FileDescriptor();
  }
  return Fd;
}

FileDescriptor irdl::acceptConnection(int ListenFd) {
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0)
      return FileDescriptor(Fd);
    if (errno == EINTR)
      continue;
    return FileDescriptor();
  }
}

bool irdl::sendAll(int Fd, std::string_view Data) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-response must surface as
    // an error return, not a process-killing SIGPIPE.
    ssize_t N = ::send(Fd, Data.data() + Sent, Data.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

bool irdl::recvAll(int Fd, size_t N, std::string &Out, bool *CleanEof) {
  if (CleanEof)
    *CleanEof = false;
  Out.clear();
  Out.resize(N);
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::recv(Fd, Out.data() + Got, N - Got, 0);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Out.resize(Got);
      return false;
    }
    if (R == 0) {
      if (CleanEof && Got == 0)
        *CleanEof = true;
      Out.resize(Got);
      return false;
    }
    Got += static_cast<size_t>(R);
  }
  return true;
}
