//===- MappedFile.cpp - Read-only memory-mapped files ---------------------===//

#include "support/MappedFile.h"

#include "support/File.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace irdl;

std::shared_ptr<MappedFile> MappedFile::open(const std::string &Path,
                                             std::string &Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    Error = Path + ": " + std::strerror(errno);
    return nullptr;
  }

  struct stat St;
  if (fstat(Fd, &St) != 0) {
    Error = Path + ": " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  if (S_ISDIR(St.st_mode)) {
    Error = Path + ": is a directory";
    ::close(Fd);
    return nullptr;
  }

  auto File = std::shared_ptr<MappedFile>(new MappedFile());

  // Regular non-empty files get the real mapping; everything else (empty
  // files, pipes, device nodes) takes the read fallback so callers never
  // need to care which path they got.
  if (S_ISREG(St.st_mode) && St.st_size > 0) {
    size_t Size = static_cast<size_t>(St.st_size);
    void *Addr = mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
    if (Addr != MAP_FAILED) {
      ::close(Fd);
      File->Mapping = Addr;
      File->Bytes = static_cast<const char *>(Addr);
      File->Size = Size;
      return File;
    }
  }
  ::close(Fd);

  if (failed(readFileToString(Path, File->Fallback, Error)))
    return nullptr;
  File->Bytes = File->Fallback.data();
  File->Size = File->Fallback.size();
  return File;
}

MappedFile::~MappedFile() {
  if (Mapping)
    munmap(Mapping, Size);
}
