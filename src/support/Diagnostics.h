//===- Diagnostics.h - Diagnostic engine ------------------------*- C++ -*-===//
///
/// \file
/// A diagnostic engine shared by the IRDL frontend, the IR textual parser,
/// and the verifiers. Diagnostics carry a severity, a location, a message,
/// and attached notes; the engine renders them with source carets when a
/// SourceMgr is attached, and records them for programmatic inspection
/// (the test suites assert on emitted diagnostics).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_DIAGNOSTICS_H
#define IRDL_SUPPORT_DIAGNOSTICS_H

#include "support/SourceMgr.h"

#include <functional>
#include <string>
#include <vector>

namespace irdl {

enum class Severity { Note, Remark, Warning, Error };

/// Returns a human-readable name ("error", "warning", ...).
std::string_view severityName(Severity S);

/// A single diagnostic: severity, location, message, and notes.
class Diagnostic {
public:
  Diagnostic(Severity S, SMLoc Loc, std::string Message)
      : Sev(S), Loc(Loc), Message(std::move(Message)) {}

  Severity getSeverity() const { return Sev; }
  SMLoc getLocation() const { return Loc; }
  const std::string &getMessage() const { return Message; }

  /// Attaches a note to this diagnostic; returns *this for chaining.
  Diagnostic &attachNote(SMLoc NoteLoc, std::string NoteMessage) {
    Notes.emplace_back(NoteLoc, std::move(NoteMessage));
    return *this;
  }

  const std::vector<std::pair<SMLoc, std::string>> &getNotes() const {
    return Notes;
  }

private:
  Severity Sev;
  SMLoc Loc;
  std::string Message;
  std::vector<std::pair<SMLoc, std::string>> Notes;
};

/// Collects diagnostics and optionally renders them through a handler.
class DiagnosticEngine {
public:
  using HandlerFn = std::function<void(const Diagnostic &)>;

  DiagnosticEngine() = default;
  explicit DiagnosticEngine(const SourceMgr *SrcMgr) : SrcMgr(SrcMgr) {}

  void setSourceMgr(const SourceMgr *SM) { SrcMgr = SM; }
  const SourceMgr *getSourceMgr() const { return SrcMgr; }

  /// Installs a handler invoked for every emitted diagnostic (in addition
  /// to recording it).
  void setHandler(HandlerFn Fn) { Handler = std::move(Fn); }

  /// Emits a diagnostic; returns a reference so notes can be chained.
  Diagnostic &emit(Severity S, SMLoc Loc, std::string Message);

  Diagnostic &emitError(SMLoc Loc, std::string Message) {
    return emit(Severity::Error, Loc, std::move(Message));
  }
  Diagnostic &emitError(std::string Message) {
    return emitError(SMLoc(), std::move(Message));
  }
  Diagnostic &emitWarning(SMLoc Loc, std::string Message) {
    return emit(Severity::Warning, Loc, std::move(Message));
  }
  Diagnostic &emitRemark(SMLoc Loc, std::string Message) {
    return emit(Severity::Remark, Loc, std::move(Message));
  }

  unsigned getNumErrors() const { return NumErrors; }
  bool hadError() const { return NumErrors != 0; }
  void resetErrorCount() { NumErrors = 0; }

  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Re-emits a diagnostic recorded elsewhere (message, severity,
  /// location, and notes) into this engine. The parallel drivers give
  /// every task a private engine and replay them in task order, so the
  /// combined stream is byte-identical to a single-threaded run.
  Diagnostic &replay(const Diagnostic &D);

  /// Replays every diagnostic recorded by \p Other, in order.
  void replayAll(const DiagnosticEngine &Other) {
    for (const Diagnostic &D : Other.getDiagnostics())
      replay(D);
  }

  /// Renders \p D as text, with a source caret if the engine has a
  /// SourceMgr that knows the location.
  std::string render(const Diagnostic &D) const;

  /// Renders every recorded diagnostic, separated by newlines.
  std::string renderAll() const;

private:
  const SourceMgr *SrcMgr = nullptr;
  HandlerFn Handler;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace irdl

#endif // IRDL_SUPPORT_DIAGNOSTICS_H
