//===- File.h - Robust whole-file reading ------------------------*- C++ -*-===//
///
/// \file
/// One shared helper for slurping a file into memory with real error
/// reporting. `std::ifstream` alone is not enough: opening a directory
/// "succeeds" on POSIX and only the subsequent reads fail, which used to
/// surface as a silently empty module in drivers.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_FILE_H
#define IRDL_SUPPORT_FILE_H

#include "support/LogicalResult.h"

#include <string>

namespace irdl {

/// Reads the file at \p Path into \p Out (binary, exact bytes). On
/// failure returns failure() and fills \p Error with a human-readable
/// reason ("no such file", "is a directory", "read error").
LogicalResult readFileToString(const std::string &Path, std::string &Out,
                               std::string &Error);

} // namespace irdl

#endif // IRDL_SUPPORT_FILE_H
