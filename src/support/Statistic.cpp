//===- Statistic.cpp -------------------------------------------------===//

#include "support/Statistic.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace irdl;

Statistic::Statistic(const char *Group, const char *Name, const char *Desc)
    : Group(Group), Name(Name), Desc(Desc) {
  StatisticRegistry::instance().add(this);
}

StatisticRegistry &StatisticRegistry::instance() {
  static StatisticRegistry Registry;
  return Registry;
}

void StatisticRegistry::add(Statistic *S) {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats.push_back(S);
}

std::vector<Statistic *> StatisticRegistry::getAll() const {
  std::vector<Statistic *> Result;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Result = Stats;
  }
  std::sort(Result.begin(), Result.end(),
            [](const Statistic *A, const Statistic *B) {
              int G = std::strcmp(A->getGroup(), B->getGroup());
              if (G != 0)
                return G < 0;
              return std::strcmp(A->getName(), B->getName()) < 0;
            });
  return Result;
}

Statistic *StatisticRegistry::lookup(std::string_view Group,
                                     std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Statistic *S : Stats)
    if (Group == S->getGroup() && Name == S->getName())
      return S;
  return nullptr;
}

std::string StatisticRegistry::renderTable(bool IncludeZero) const {
  std::ostringstream OS;
  OS << "===-------------------------------------------------------"
        "---===\n";
  OS << "  statistics\n";
  OS << "===-------------------------------------------------------"
        "---===\n";
  char Buf[32];
  for (const Statistic *S : getAll()) {
    if (!IncludeZero && S->get() == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%12llu",
                  (unsigned long long)S->get());
    OS << Buf << "  " << S->getGroup() << "." << S->getName() << " - "
       << S->getDesc() << "\n";
  }
  return OS.str();
}

std::string StatisticRegistry::renderJson(bool IncludeZero) const {
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const Statistic *S : getAll()) {
    if (!IncludeZero && S->get() == 0)
      continue;
    if (!First)
      OS << ",";
    First = false;
    OS << "\n{\"group\":\"" << S->getGroup() << "\",\"name\":\""
       << S->getName() << "\",\"value\":" << S->get() << ",\"desc\":\""
       << S->getDesc() << "\"}";
  }
  OS << "\n]";
  return OS.str();
}

void StatisticRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Statistic *S : Stats)
    S->reset();
}
