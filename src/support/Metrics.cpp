//===- Metrics.cpp ---------------------------------------------------===//

#include "support/Metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace irdl;

//===----------------------------------------------------------------------===//
// Enable flag and thread shard assignment
//===----------------------------------------------------------------------===//

std::atomic<bool> irdl::detail::MetricsEnabledFlag{false};

void irdl::setMetricsEnabled(bool Enabled) {
  detail::MetricsEnabledFlag.store(Enabled, std::memory_order_relaxed);
}

unsigned irdl::detail::metricsShardIndex() {
  static std::atomic<unsigned> NextShard{0};
  thread_local unsigned Shard =
      NextShard.fetch_add(1, std::memory_order_relaxed) % NumMetricShards;
  return Shard;
}

//===----------------------------------------------------------------------===//
// Counter / Gauge
//===----------------------------------------------------------------------===//

uint64_t Counter::get() const {
  uint64_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S.V.load(std::memory_order_relaxed);
  return Sum;
}

void Counter::reset() {
  for (auto &S : Shards)
    S.V.store(0, std::memory_order_relaxed);
}

void Gauge::set(int64_t V) {
  // Single-writer operation: collapse everything into shard 0.
  for (auto &S : Shards)
    S.V.store(0, std::memory_order_relaxed);
  Shards[0].V.store((uint64_t)V, std::memory_order_relaxed);
}

int64_t Gauge::get() const {
  uint64_t Sum = 0;
  for (const auto &S : Shards)
    Sum += S.V.load(std::memory_order_relaxed);
  return (int64_t)Sum;
}

void Gauge::reset() {
  for (auto &S : Shards)
    S.V.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketOf(uint64_t V) {
  if (V == 0)
    return 0;
  unsigned W = (unsigned)std::bit_width(V);
  return W > 63 ? 63 : W;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Snap;
  for (const Shard &S : Shards) {
    for (unsigned I = 0; I != HistogramSnapshot::NumBuckets; ++I) {
      uint64_t N = S.Buckets[I].load(std::memory_order_relaxed);
      Snap.Buckets[I] += N;
      Snap.Count += N;
    }
    Snap.Sum += S.Sum.load(std::memory_order_relaxed);
    Snap.Max = std::max(Snap.Max, S.Max.load(std::memory_order_relaxed));
  }
  return Snap;
}

void Histogram::reset() {
  for (Shard &S : Shards) {
    for (auto &B : S.Buckets)
      B.store(0, std::memory_order_relaxed);
    S.Sum.store(0, std::memory_order_relaxed);
    S.Max.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Rank of the target order statistic, 1-based, ceil(Q * Count)
  // clamped into [1, Count].
  uint64_t Rank = (uint64_t)(Q * (double)Count + 0.9999999);
  if (Rank < 1)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Seen = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return bucketUpperEdge(I);
  }
  return bucketUpperEdge(NumBuckets - 1);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::instance() {
  // Leaked singleton: series references handed to function-local statics
  // in instrumented code must stay valid through process teardown.
  static MetricsRegistry *Registry = new MetricsRegistry();
  return *Registry;
}

/// Canonical signature of a label set: keys sorted, rendered as the
/// Prometheus selector body `k1="v1",k2="v2"`.
static std::string labelSignature(MetricLabels &Labels) {
  std::sort(Labels.begin(), Labels.end());
  std::string Sig;
  for (const auto &[K, V] : Labels) {
    if (!Sig.empty())
      Sig += ",";
    Sig += K + "=\"" + escapePrometheusLabelValue(V) + "\"";
  }
  return Sig;
}

MetricsRegistry::Family &MetricsRegistry::getFamily(std::string_view Name,
                                                    std::string_view Help,
                                                    Kind K) {
  for (auto &F : Families)
    if (F->Name == Name) {
      assert(F->K == K && "metric family re-registered with another type");
      return *F;
    }
  auto F = std::make_unique<Family>();
  F->Name = std::string(Name);
  F->Help = std::string(Help);
  F->K = K;
  Families.push_back(std::move(F));
  return *Families.back();
}

Counter &MetricsRegistry::getCounter(std::string_view Name,
                                     std::string_view Help,
                                     MetricLabels Labels) {
  std::string Sig = labelSignature(Labels);
  std::lock_guard<std::mutex> Lock(Mu);
  Family &F = getFamily(Name, Help, Kind::Counter);
  for (auto &[S, C] : F.Counters)
    if (S == Sig)
      return *C;
  F.Counters.emplace_back(
      Sig, std::unique_ptr<Counter>(new Counter(std::move(Labels))));
  return *F.Counters.back().second;
}

Gauge &MetricsRegistry::getGauge(std::string_view Name,
                                 std::string_view Help,
                                 MetricLabels Labels) {
  std::string Sig = labelSignature(Labels);
  std::lock_guard<std::mutex> Lock(Mu);
  Family &F = getFamily(Name, Help, Kind::Gauge);
  for (auto &[S, G] : F.Gauges)
    if (S == Sig)
      return *G;
  F.Gauges.emplace_back(
      Sig, std::unique_ptr<Gauge>(new Gauge(std::move(Labels))));
  return *F.Gauges.back().second;
}

Histogram &MetricsRegistry::getHistogram(std::string_view Name,
                                         std::string_view Help,
                                         MetricLabels Labels) {
  std::string Sig = labelSignature(Labels);
  std::lock_guard<std::mutex> Lock(Mu);
  Family &F = getFamily(Name, Help, Kind::Histogram);
  for (auto &[S, H] : F.Histograms)
    if (S == Sig)
      return *H;
  F.Histograms.emplace_back(
      Sig, std::unique_ptr<Histogram>(new Histogram(std::move(Labels))));
  return *F.Histograms.back().second;
}

void MetricsRegistry::resetAll() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &F : Families) {
    for (auto &[S, C] : F->Counters)
      C->reset();
    for (auto &[S, G] : F->Gauges)
      G->reset();
    for (auto &[S, H] : F->Histograms)
      H->reset();
  }
}

//===----------------------------------------------------------------------===//
// Exposition
//===----------------------------------------------------------------------===//

std::string irdl::escapePrometheusLabelValue(std::string_view V) {
  std::string Out;
  Out.reserve(V.size());
  for (char C : V) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

namespace {
/// Sorted (by label signature) view of one family's series.
template <typename T>
std::vector<const std::pair<std::string, std::unique_ptr<T>> *>
sortedSeries(const std::vector<std::pair<std::string, std::unique_ptr<T>>>
                 &Series) {
  std::vector<const std::pair<std::string, std::unique_ptr<T>> *> Out;
  Out.reserve(Series.size());
  for (const auto &S : Series)
    Out.push_back(&S);
  std::sort(Out.begin(), Out.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });
  return Out;
}

void appendSelector(std::string &Out, const std::string &Sig,
                    const std::string &Extra = {}) {
  if (Sig.empty() && Extra.empty())
    return;
  Out += "{";
  Out += Sig;
  if (!Extra.empty()) {
    if (!Sig.empty())
      Out += ",";
    Out += Extra;
  }
  Out += "}";
}

void appendJsonLabels(std::ostringstream &OS, const MetricLabels &Labels) {
  OS << "{";
  bool First = true;
  for (const auto &[K, V] : Labels) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << K << "\":\"" << escapePrometheusLabelValue(V) << "\"";
  }
  OS << "}";
}
} // namespace

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<const Family *> Sorted;
  Sorted.reserve(Families.size());
  for (const auto &F : Families)
    Sorted.push_back(F.get());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Family *A, const Family *B) { return A->Name < B->Name; });

  std::string Out;
  char Buf[64];
  for (const Family *F : Sorted) {
    Out += "# HELP " + F->Name + " " + F->Help + "\n";
    Out += "# TYPE " + F->Name + " ";
    Out += F->K == Kind::Counter
               ? "counter"
               : (F->K == Kind::Gauge ? "gauge" : "histogram");
    Out += "\n";
    switch (F->K) {
    case Kind::Counter:
      for (const auto *S : sortedSeries(F->Counters)) {
        Out += F->Name;
        appendSelector(Out, S->first);
        std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n",
                      S->second->get());
        Out += Buf;
      }
      break;
    case Kind::Gauge:
      for (const auto *S : sortedSeries(F->Gauges)) {
        Out += F->Name;
        appendSelector(Out, S->first);
        std::snprintf(Buf, sizeof(Buf), " %" PRId64 "\n",
                      S->second->get());
        Out += Buf;
      }
      break;
    case Kind::Histogram:
      for (const auto *S : sortedSeries(F->Histograms)) {
        HistogramSnapshot Snap = S->second->snapshot();
        uint64_t Cum = 0;
        for (unsigned I = 0; I != HistogramSnapshot::NumBuckets; ++I) {
          if (!Snap.Buckets[I])
            continue; // sparse cumulative exposition
          Cum += Snap.Buckets[I];
          Out += F->Name + "_bucket";
          std::snprintf(Buf, sizeof(Buf), "le=\"%" PRIu64 "\"",
                        HistogramSnapshot::bucketUpperEdge(I));
          appendSelector(Out, S->first, Buf);
          std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Cum);
          Out += Buf;
        }
        Out += F->Name + "_bucket";
        appendSelector(Out, S->first, "le=\"+Inf\"");
        std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Snap.Count);
        Out += Buf;
        Out += F->Name + "_sum";
        appendSelector(Out, S->first);
        std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Snap.Sum);
        Out += Buf;
        Out += F->Name + "_count";
        appendSelector(Out, S->first);
        std::snprintf(Buf, sizeof(Buf), " %" PRIu64 "\n", Snap.Count);
        Out += Buf;
      }
      break;
    }
  }
  return Out;
}

std::string MetricsRegistry::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<const Family *> Sorted;
  Sorted.reserve(Families.size());
  for (const auto &F : Families)
    Sorted.push_back(F.get());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Family *A, const Family *B) { return A->Name < B->Name; });

  std::ostringstream Counters, Gauges, Histograms;
  bool FirstC = true, FirstG = true, FirstH = true;
  for (const Family *F : Sorted) {
    switch (F->K) {
    case Kind::Counter:
      for (const auto *S : sortedSeries(F->Counters)) {
        if (!FirstC)
          Counters << ",";
        FirstC = false;
        Counters << "\n{\"name\":\"" << F->Name << "\",\"labels\":";
        appendJsonLabels(Counters, S->second->getLabels());
        Counters << ",\"value\":" << S->second->get() << "}";
      }
      break;
    case Kind::Gauge:
      for (const auto *S : sortedSeries(F->Gauges)) {
        if (!FirstG)
          Gauges << ",";
        FirstG = false;
        Gauges << "\n{\"name\":\"" << F->Name << "\",\"labels\":";
        appendJsonLabels(Gauges, S->second->getLabels());
        Gauges << ",\"value\":" << S->second->get() << "}";
      }
      break;
    case Kind::Histogram:
      for (const auto *S : sortedSeries(F->Histograms)) {
        if (!FirstH)
          Histograms << ",";
        FirstH = false;
        HistogramSnapshot Snap = S->second->snapshot();
        Histograms << "\n{\"name\":\"" << F->Name << "\",\"labels\":";
        appendJsonLabels(Histograms, S->second->getLabels());
        Histograms << ",\"count\":" << Snap.Count << ",\"sum\":" << Snap.Sum
                   << ",\"max\":" << Snap.Max
                   << ",\"p50\":" << Snap.quantile(0.50)
                   << ",\"p90\":" << Snap.quantile(0.90)
                   << ",\"p99\":" << Snap.quantile(0.99) << ",\"buckets\":[";
        bool FirstB = true;
        for (unsigned I = 0; I != HistogramSnapshot::NumBuckets; ++I) {
          if (!Snap.Buckets[I])
            continue;
          if (!FirstB)
            Histograms << ",";
          FirstB = false;
          Histograms << "{\"le\":"
                     << HistogramSnapshot::bucketUpperEdge(I)
                     << ",\"count\":" << Snap.Buckets[I] << "}";
        }
        Histograms << "]}";
      }
      break;
    }
  }
  std::ostringstream OS;
  OS << "{\"counters\":[" << Counters.str() << "\n],\"gauges\":["
     << Gauges.str() << "\n],\"histograms\":[" << Histograms.str()
     << "\n]}";
  return OS.str();
}
