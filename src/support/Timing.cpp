//===- Timing.cpp ----------------------------------------------------===//

#include "support/Timing.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <sstream>

using namespace irdl;

uint64_t irdl::steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// Active group
//===----------------------------------------------------------------------===//

static std::atomic<TimerGroup *> ActiveGroup{nullptr};

TimerGroup *irdl::getActiveTimerGroup() {
  return ActiveGroup.load(std::memory_order_relaxed);
}

TimerGroup *irdl::setActiveTimerGroup(TimerGroup *G) {
  return ActiveGroup.exchange(G, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// TimerGroup::Node
//===----------------------------------------------------------------------===//

uint64_t TimerGroup::Node::getChildrenWallNs() const {
  uint64_t Sum = 0;
  for (const auto &C : Children)
    Sum += C->WallNs;
  return Sum;
}

uint64_t TimerGroup::Node::getExclusiveNs() const {
  uint64_t ChildNs = getChildrenWallNs();
  return WallNs > ChildNs ? WallNs - ChildNs : 0;
}

const TimerGroup::Node *
TimerGroup::Node::findChild(std::string_view ChildName) const {
  for (const auto &C : Children)
    if (C->Name == ChildName)
      return C.get();
  return nullptr;
}

TimerGroup::Node *TimerGroup::Node::getOrCreateChild(
    std::string_view ChildName) {
  for (const auto &C : Children)
    if (C->Name == ChildName)
      return C.get();
  auto C = std::make_unique<Node>();
  C->Name = std::string(ChildName);
  C->Parent = this;
  Children.push_back(std::move(C));
  return Children.back().get();
}

//===----------------------------------------------------------------------===//
// TimerGroup
//===----------------------------------------------------------------------===//

TimerGroup::TimerGroup(std::string Name)
    : GroupName(std::move(Name)), Root(std::make_unique<Node>()),
      EpochNs(steadyNowNs()) {
  Root->Name = "<total>";
  Root->Count = 1;
}

TimerGroup::~TimerGroup() {
  // Make sure a dangling active pointer never outlives the group.
  TimerGroup *Self = this;
  ActiveGroup.compare_exchange_strong(Self, nullptr,
                                      std::memory_order_relaxed);
}

TimerGroup::Node *TimerGroup::startScope(std::string_view Name,
                                         uint64_t &StartNsOut) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Node *> &Stack = Stacks[std::this_thread::get_id()];
  Node *Parent = Stack.empty() ? Root.get() : Stack.back();
  Node *N = Parent->getOrCreateChild(Name);
  Stack.push_back(N);
  StartNsOut = steadyNowNs();
  return N;
}

void TimerGroup::endScope(Node *N, uint64_t StartNs) {
  uint64_t Now = steadyNowNs();
  uint64_t Elapsed = Now > StartNs ? Now - StartNs : 0;
  std::lock_guard<std::mutex> Lock(Mu);
  auto ThreadId = std::this_thread::get_id();
  std::vector<Node *> &Stack = Stacks[ThreadId];
  assert(!Stack.empty() && Stack.back() == N &&
         "TimingScope closed out of order");
  (void)N;
  Node *Top = Stack.back();
  Stack.pop_back();
  Top->WallNs += Elapsed;
  ++Top->Count;
  // Root time = sum of outermost scopes.
  if (Stack.empty())
    Root->WallNs += Elapsed;
  auto [It, Inserted] =
      TidMap.try_emplace(ThreadId, (uint32_t)TidMap.size() + 1);
  (void)Inserted;
  Events.push_back({Top->Name, StartNs - std::min(StartNs, EpochNs),
                    Elapsed, It->second});
}

TimerGroup::Node *TimerGroup::currentThreadNode() const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Stacks.find(std::this_thread::get_id());
  if (It == Stacks.end() || It->second.empty())
    return nullptr;
  return It->second.back();
}

void TimerGroup::pushThreadFrame(Node *Cursor) {
  assert(Cursor && "cannot adopt a null cursor");
  std::lock_guard<std::mutex> Lock(Mu);
  Stacks[std::this_thread::get_id()].push_back(Cursor);
}

void TimerGroup::popThreadFrame() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<Node *> &Stack = Stacks[std::this_thread::get_id()];
  assert(!Stack.empty() && "popThreadFrame without pushThreadFrame");
  Stack.pop_back();
}

void TimerGroup::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Root = std::make_unique<Node>();
  Root->Name = "<total>";
  Root->Count = 1;
  Stacks.clear();
  TidMap.clear();
  Events.clear();
  EpochNs = steadyNowNs();
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

static double nsToMs(uint64_t Ns) { return (double)Ns / 1e6; }

static void renderNode(std::ostringstream &OS, const TimerGroup::Node &N,
                       uint64_t ParentWallNs, unsigned Depth) {
  char Buf[96];
  double Pct = ParentWallNs
                   ? 100.0 * (double)N.getWallNs() / (double)ParentWallNs
                   : 100.0;
  std::snprintf(Buf, sizeof(Buf), "  %10.3f  %7llu  %6.1f%%  %10.3f  ",
                nsToMs(N.getWallNs()),
                (unsigned long long)N.getCount(), Pct,
                nsToMs(N.getExclusiveNs()));
  OS << Buf;
  for (unsigned I = 0; I != Depth; ++I)
    OS << "  ";
  OS << N.getName() << "\n";
  for (const auto &C : N.getChildren())
    renderNode(OS, *C, N.getWallNs(), Depth + 1);
}

std::string TimerGroup::renderTree() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "===-------------------------------------------------------"
        "---===\n";
  OS << "  execution timing report: " << GroupName << "\n";
  OS << "===-------------------------------------------------------"
        "---===\n";
  OS << "    wall (ms)    count  %parent   excl (ms)  name\n";
  renderNode(OS, *Root, Root->WallNs, 0);
  return OS.str();
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
static void appendJsonString(std::ostringstream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

std::string
TimerGroup::renderTraceJson(std::string_view ProcessName) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process-name metadata event, the idiom Perfetto expects.
  OS << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":";
  appendJsonString(OS, ProcessName);
  OS << "}}";
  char Buf[128];
  // Thread-name metadata events, so about://tracing shows labeled rows
  // instead of bare tids. Tid 1 is the submitting thread (it ends the
  // root scope); higher tids are pool workers in first-seen order.
  std::vector<uint32_t> Tids;
  Tids.reserve(TidMap.size());
  for (const auto &[ThreadId, Tid] : TidMap)
    Tids.push_back(Tid);
  std::sort(Tids.begin(), Tids.end());
  for (uint32_t Tid : Tids) {
    std::string Name =
        Tid == 1 ? "main" : "worker-" + std::to_string(Tid - 1);
    std::snprintf(Buf, sizeof(Buf),
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  Tid, Name.c_str());
    OS << Buf;
  }
  for (const TraceEvent &E : Events) {
    OS << ",\n{\"name\":";
    appendJsonString(OS, E.Name);
    std::snprintf(Buf, sizeof(Buf),
                  ",\"cat\":\"irdl\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  E.Tid, (double)E.TsNs / 1e3, (double)E.DurNs / 1e3);
    OS << Buf;
  }
  OS << "\n]}\n";
  return OS.str();
}

static void renderSummaryNode(std::ostringstream &OS,
                              const TimerGroup::Node &N) {
  char Buf[64];
  OS << "{\"name\":";
  appendJsonString(OS, N.getName());
  std::snprintf(Buf, sizeof(Buf), ",\"wall_ms\":%.3f,\"count\":%llu",
                nsToMs(N.getWallNs()), (unsigned long long)N.getCount());
  OS << Buf << ",\"children\":[";
  bool First = true;
  for (const auto &C : N.getChildren()) {
    if (!First)
      OS << ",";
    First = false;
    renderSummaryNode(OS, *C);
  }
  OS << "]}";
}

std::string TimerGroup::renderJsonSummary() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::ostringstream OS;
  OS << "{\"group\":";
  appendJsonString(OS, GroupName);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), ",\"total_wall_ms\":%.3f,",
                nsToMs(Root->WallNs));
  OS << Buf << "\"tree\":";
  renderSummaryNode(OS, *Root);
  OS << "}";
  return OS.str();
}
