//===- Threading.h - Thread pool and parallel loops --------------*- C++ -*-===//
///
/// \file
/// The threading layer behind the parallel verifier and pass drivers: a
/// plain fixed-size ThreadPool plus parallelFor/parallelForEach helpers
/// that fan an index range out over a process-wide pool.
///
/// The degree of parallelism is a process-wide setting resolved in this
/// order: an explicit setGlobalThreadCount() call (drivers wire their
/// `--mt=0|1|N` flag here), the IRDL_NUM_THREADS environment variable,
/// then std::thread::hardware_concurrency(). A count of 1 disables
/// threading entirely: every parallelFor runs inline on the calling
/// thread, which is the reference ordering the parallel drivers must
/// reproduce byte-for-byte (see docs/threading.md).
///
/// Determinism contract: parallelFor dispatches indices to workers in an
/// unspecified order, so tasks must write their results into per-index
/// slots (and emit diagnostics into per-index engines) that the caller
/// then reads back in index order. Tasks must not throw.
///
/// Worker threads cooperate with the timing layer: a parallelFor issued
/// inside an open TimingScope re-parents the workers' scopes under the
/// submitting thread's current timer node, so per-thread timers merge
/// into one tree (docs/observability.md).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_THREADING_H
#define IRDL_SUPPORT_THREADING_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace irdl {

//===----------------------------------------------------------------------===//
// Global thread-count configuration
//===----------------------------------------------------------------------===//

/// Sets the process-wide thread count. 0 means "auto": IRDL_NUM_THREADS
/// if set (itself with 0 = hardware concurrency), else hardware
/// concurrency. 1 disables multithreading. The global pool is rebuilt
/// lazily on the next parallel loop.
void setGlobalThreadCount(unsigned N);

/// The resolved process-wide thread count (always >= 1).
unsigned getGlobalThreadCount();

/// True when parallel loops may actually use more than one thread.
bool isMultithreadingEnabled();

/// Parses the value of the conventional `--mt=0|1|N` driver flag.
/// Returns nullopt for non-numeric input.
std::optional<unsigned> parseThreadCountValue(std::string_view Value);

/// True when called from a ThreadPool worker thread (parallel loops nest
/// inline there to avoid deadlocking the pool).
bool isThreadPoolWorker();

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

/// A fixed-size pool of worker threads draining one FIFO task queue.
/// Deliberately simple — no work stealing, no priorities: the parallel
/// drivers submit coarse (function-granularity) tasks where a shared
/// queue is not a bottleneck.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers (at least 1).
  explicit ThreadPool(unsigned NumThreads);
  /// Waits for queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned getNumThreads() const { return (unsigned)Workers.size(); }

  /// Enqueues \p Task for execution on some worker. Tasks must not throw.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has finished executing.
  void wait();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mu;
  std::condition_variable QueueCv;
  std::condition_variable IdleCv;
  unsigned NumRunning = 0;
  bool Stopping = false;
};

//===----------------------------------------------------------------------===//
// Parallel loops
//===----------------------------------------------------------------------===//

namespace detail {
/// Runs Fn(0..N-1) over the global pool (inline when multithreading is
/// off, N < 2, or the caller is itself a pool worker). Returns after
/// every index has completed.
void parallelForImpl(size_t N, const std::function<void(size_t)> &Fn);
} // namespace detail

/// Calls \p Fn(I) for every I in [Begin, End), potentially concurrently.
/// Completion of all indices is guaranteed on return; result ordering is
/// the caller's job (write to slot I - Begin).
template <typename FnT>
void parallelFor(size_t Begin, size_t End, FnT &&Fn) {
  if (Begin >= End)
    return;
  detail::parallelForImpl(End - Begin,
                          [&](size_t I) { Fn(Begin + I); });
}

/// Calls \p Fn(Element) for every element of a random-access \p Range.
template <typename RangeT, typename FnT>
void parallelForEach(RangeT &&Range, FnT &&Fn) {
  using std::begin;
  using std::end;
  auto B = begin(Range);
  size_t N = (size_t)std::distance(B, end(Range));
  detail::parallelForImpl(N, [&](size_t I) { Fn(*(B + (ptrdiff_t)I)); });
}

} // namespace irdl

#endif // IRDL_SUPPORT_THREADING_H
